# Build a minimal gsketch-serve image: static binary in a scratch runtime.
#
#   docker build -t gsketch-serve .
#   docker run -p 7071:7071 -v $(pwd)/data:/data gsketch-serve \
#     -sample /data/sample.txt -adapt -snapshot /data/state.gsk \
#     -compact-max-gens 8 -tier-dir /data/tiers -tier-resident 4
#
# The module is dependency-free, so the build needs no module download
# step and the runtime stage needs no libc, certificates or shell.

FROM golang:1.22 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
# Static binary: the serving stack is pure Go (net resolver included), so
# CGO off yields a from-scratch-runnable executable.
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/gsketch-serve ./cmd/gsketch-serve

FROM scratch
COPY --from=build /out/gsketch-serve /gsketch-serve
# Snapshot, tier spill and tenant state all default under /data; mount a
# volume there to persist across container restarts.
WORKDIR /data
# 65534:65534 = nobody; the server needs no privileges beyond its ports
# and the /data volume.
USER 65534:65534
EXPOSE 7071 7072
ENTRYPOINT ["/gsketch-serve", "-addr", ":7071"]
