package gsketch_test

// One benchmark per reproduced paper artifact (DESIGN.md §5). Each bench
// runs the corresponding experiment on the Small profile and reports the
// headline metrics (average relative error for both methods, effective
// queries) via b.ReportMetric, so `go test -bench=.` regenerates every
// table and figure series in miniature. cmd/gsketch-bench runs the full
// repro profile.
//
// Micro-benchmarks for the hot paths (update/estimate on both estimators
// and the partitioning step itself) follow the figure benches.

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/experiments"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/obs"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

var (
	benchOnce    sync.Once
	benchHarness *experiments.Harness
)

func harness() *experiments.Harness {
	benchOnce.Do(func() {
		benchHarness = experiments.NewHarness(experiments.NewRegistry(experiments.Small))
	})
	return benchHarness
}

// runExperiment executes one registered experiment per benchmark
// iteration; dataset generation is cached in the harness so the first
// iteration pays it and later ones measure the experiment itself.
func runExperiment(b *testing.B, id string) {
	e, ok := experiments.FindExperiment(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	h := harness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVarianceRatio(b *testing.B) { runExperiment(b, "varratio") }
func BenchmarkFig4(b *testing.B)          { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)          { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)          { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)          { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)         { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)         { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)         { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)         { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)         { runExperiment(b, "fig14") }
func BenchmarkTable1(b *testing.B)        { runExperiment(b, "table1") }

// BenchmarkFig4HeadlineMetrics runs one memory point of the Figure-4
// experiment and reports the accuracy numbers as benchmark metrics so the
// who-wins shape is visible straight from `go test -bench`.
func BenchmarkFig4HeadlineMetrics(b *testing.B) {
	reg := harness().Reg
	ds, err := reg.RMAT()
	if err != nil {
		b.Fatal(err)
	}
	var last []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunEdgeSweep(ds, experiments.EdgeSweepOptions{
			MemoryGrid: []int{ds.FixedMemory},
		})
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	if len(last) > 0 {
		b.ReportMetric(last[0].Global.AvgRelErr, "global-ARE")
		b.ReportMetric(last[0].GSketch.AvgRelErr, "gsketch-ARE")
		b.ReportMetric(float64(last[0].Global.Effective), "global-effective")
		b.ReportMetric(float64(last[0].GSketch.Effective), "gsketch-effective")
		b.ReportMetric(float64(last[0].Partitions), "partitions")
	}
}

// --- Micro-benchmarks: hot paths -----------------------------------------

func benchStream(n int) []stream.Edge {
	cfg := experiments.Small
	_ = cfg
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{Src: uint64(i % 4096), Dst: uint64(i % 65536), Weight: 1}
	}
	return edges
}

func BenchmarkGlobalSketchUpdate(b *testing.B) {
	g, err := core.BuildGlobalSketch(core.Config{TotalBytes: 1 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	edges := benchStream(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(edges[i&(1<<16-1)])
	}
}

func BenchmarkGSketchUpdate(b *testing.B) {
	edges := benchStream(1 << 16)
	g, err := core.BuildGSketch(core.Config{TotalBytes: 1 << 20, Seed: 1}, edges[:8192], nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Update(edges[i&(1<<16-1)])
	}
}

func BenchmarkGlobalSketchEstimate(b *testing.B) {
	g, err := core.BuildGlobalSketch(core.Config{TotalBytes: 1 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	edges := benchStream(1 << 16)
	core.Populate(g, edges)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		e := edges[i&(1<<16-1)]
		sink += g.EstimateEdge(e.Src, e.Dst)
	}
	_ = sink
}

func BenchmarkGSketchEstimate(b *testing.B) {
	edges := benchStream(1 << 16)
	g, err := core.BuildGSketch(core.Config{TotalBytes: 1 << 20, Seed: 1}, edges[:8192], nil)
	if err != nil {
		b.Fatal(err)
	}
	core.Populate(g, edges)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		e := edges[i&(1<<16-1)]
		sink += g.EstimateEdge(e.Src, e.Dst)
	}
	_ = sink
}

func BenchmarkPartitioning(b *testing.B) {
	edges := benchStream(1 << 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildGSketch(core.Config{TotalBytes: 1 << 20, Seed: uint64(i)}, edges[:8192], nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	cm, err := sketch.NewCountMin(1<<16, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Update(uint64(i), 1)
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	cm, err := sketch.NewCountMin(1<<16, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<20; i++ {
		cm.Update(uint64(i%65536), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += cm.Estimate(uint64(i % 65536))
	}
	_ = sink
}

// --- Ingest-pipeline benches ----------------------------------------------

// ingestBenchEdges is the 1M-edge synthetic stream the ingest benches run
// over (skewed sources, mixed arrival order).
func ingestBenchEdges() []stream.Edge {
	edges := make([]stream.Edge, 1<<20)
	for i := range edges {
		v := uint64(i)*0x9e3779b97f4a7c15 + 0x7f4a7c15
		edges[i] = stream.Edge{Src: (v >> 16) % 16384, Dst: v % 65536, Weight: 1}
	}
	return edges
}

func ingestBenchSketch(b *testing.B, edges []stream.Edge) *core.GSketch {
	g, err := core.BuildGSketch(core.Config{TotalBytes: 1 << 20, Seed: 42}, edges[:1<<15], nil)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// seedSketch replicates the seed's per-edge ingest structure exactly: a
// map[uint64]int32 vertex router in front of per-partition CountMin
// sketches, one interface dispatch per edge. Wrapped in NewConcurrent it
// takes the generic single-RWMutex path (it is not a *GSketch), so the
// pair reproduces the pre-refactor Concurrent.Update hot path that the
// acceptance speedup is measured against.
type seedSketch struct {
	router       map[uint64]int32
	parts        []sketch.Synopsis
	widths       []int
	outlier      sketch.Synopsis
	outlierWidth int
	total        int64
}

// newSeedSketch rebuilds the seed structure from a built gSketch: same
// partition layout and widths, same routed vertex set (recovered through
// PartitionOf over the source universe).
func newSeedSketch(b *testing.B, g *core.GSketch, sources int) *seedSketch {
	s := &seedSketch{router: make(map[uint64]int32)}
	for _, leaf := range g.Leaves() {
		cm, err := sketch.NewCountMin(leaf.Width, g.Depth(), 1)
		if err != nil {
			b.Fatal(err)
		}
		s.parts = append(s.parts, cm)
		s.widths = append(s.widths, leaf.Width)
	}
	out, err := sketch.NewCountMin(g.OutlierWidth(), g.Depth(), 2)
	if err != nil {
		b.Fatal(err)
	}
	s.outlier = out
	s.outlierWidth = g.OutlierWidth()
	for src := 0; src < sources; src++ {
		if i, ok := g.PartitionOf(uint64(src)); ok {
			s.router[uint64(src)] = int32(i)
		}
	}
	return s
}

func (s *seedSketch) Update(e stream.Edge) {
	w := e.Weight
	if w == 0 {
		w = 1
	}
	s.total += w
	syn := s.outlier
	if i, ok := s.router[e.Src]; ok {
		syn = s.parts[i]
	}
	syn.Update(stream.EdgeKey(e.Src, e.Dst), w)
}

func (s *seedSketch) UpdateBatch(edges []stream.Edge) {
	for _, e := range edges {
		s.Update(e)
	}
}

func (s *seedSketch) EstimateEdge(src, dst uint64) int64 {
	syn := s.outlier
	if i, ok := s.router[src]; ok {
		syn = s.parts[i]
	}
	return syn.Estimate(stream.EdgeKey(src, dst))
}

// EstimateBatch answers per edge with no provenance, mirroring the seed's
// read path (one lookup per query, bare numbers).
func (s *seedSketch) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	out := make([]core.Result, len(qs))
	for i, q := range qs {
		out[i] = core.Result{
			Estimate:    s.EstimateEdge(q.Src, q.Dst),
			Partition:   core.NoPartition,
			StreamTotal: s.total,
		}
	}
	return out
}

// ErrorBound replicates the seed-era per-query bound fetch (mirroring
// GSketch.ErrorBound): route through the map, read the answering sketch's
// local volume, divide by its width.
func (s *seedSketch) ErrorBound(src uint64) float64 {
	syn := s.outlier
	width := s.outlierWidth
	if i, ok := s.router[src]; ok {
		syn = s.parts[i]
		width = s.widths[i]
	}
	if width <= 0 {
		return 0
	}
	return math.E * float64(syn.Count()) / float64(width)
}

func (s *seedSketch) Count() int64     { return s.total }
func (s *seedSketch) MemoryBytes() int { return 0 }

// ingestBenchBatch is the batch size of the batched ingest benches.
const ingestBenchBatch = 8192

// runIngestWorkers splits b.N edges across 4 goroutines, each claiming
// ingestBenchBatch-sized ranges of the 1M-edge ring and applying them with
// apply. Wall-clock covers all workers, so ns/op is true per-edge cost
// under write concurrency.
func runIngestWorkers(b *testing.B, edges []stream.Edge, apply func(chunk []stream.Edge)) {
	const workers = 4
	var cursor atomic.Int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := cursor.Add(ingestBenchBatch) - ingestBenchBatch
				if lo >= int64(b.N) {
					return
				}
				n := int64(ingestBenchBatch)
				if lo+n > int64(b.N) {
					n = int64(b.N) - lo
				}
				off := int(lo) % (1<<20 - ingestBenchBatch)
				apply(edges[off : off+int(n)])
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
}

// BenchmarkConcurrentUpdatePerEdge is the seed ingest path under write
// concurrency: 4 goroutines pushing one edge at a time through a single
// global lock.
func BenchmarkConcurrentUpdatePerEdge(b *testing.B) {
	edges := ingestBenchEdges()
	c := core.NewConcurrent(newSeedSketch(b, ingestBenchSketch(b, edges), 16384))
	runIngestWorkers(b, edges, func(chunk []stream.Edge) {
		for _, e := range chunk {
			c.Update(e)
		}
	})
}

// BenchmarkUpdateBatch is the refactored path under the same concurrency:
// 4 goroutines pushing batches through the partition-sharded Concurrent.
// The acceptance bar for the ingest refactor is ≥2× the edges/sec of
// BenchmarkConcurrentUpdatePerEdge.
func BenchmarkUpdateBatch(b *testing.B) {
	edges := ingestBenchEdges()
	c := core.NewConcurrent(ingestBenchSketch(b, edges))
	runIngestWorkers(b, edges, func(chunk []stream.Edge) {
		c.UpdateBatch(chunk)
	})
}

// BenchmarkIngestorPipeline drives the full Push→channel→worker pipeline.
func BenchmarkIngestorPipeline(b *testing.B) {
	edges := ingestBenchEdges()
	c := core.NewConcurrent(ingestBenchSketch(b, edges))
	ing, err := ingest.New(c, ingest.Config{Workers: 4, BatchSize: 1024})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for lo := 0; lo < b.N; lo += 1 << 16 {
		hi := lo + 1<<16
		if hi > b.N {
			hi = b.N
		}
		for n := hi - lo; n > 0; {
			chunk := n
			if chunk > 1<<20 {
				chunk = 1 << 20
			}
			if err := ing.PushBatch(edges[:chunk]); err != nil {
				b.Fatal(err)
			}
			n -= chunk
		}
	}
	if err := ing.Close(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
}

// --- Query-path benches ---------------------------------------------------

// queryBenchSetup builds a populated 16-partition sharded sketch (the
// acceptance configuration of the batched read path) plus a query ring
// mixing routed and outlier sources.
func queryBenchSetup(b *testing.B) (*core.Concurrent, []core.EdgeQuery) {
	edges := ingestBenchEdges()
	g, err := core.BuildGSketch(core.Config{
		TotalBytes: 1 << 20, Seed: 42, MaxPartitions: 16,
	}, edges[:1<<15], nil)
	if err != nil {
		b.Fatal(err)
	}
	if g.NumPartitions() != 16 {
		b.Fatalf("bench sketch has %d partitions, want 16", g.NumPartitions())
	}
	c := core.NewConcurrent(g)
	core.Populate(c, edges)
	qs := make([]core.EdgeQuery, 1<<16)
	for i := range qs {
		e := edges[(i*37)&(1<<20-1)]
		qs[i] = core.EdgeQuery{Src: e.Src, Dst: e.Dst}
	}
	return c, qs
}

// queryBenchBatch is the batch size of the batched query benches.
const queryBenchBatch = 8192

// runQueryWorkers splits b.N queries across 4 reader goroutines, each
// claiming queryBenchBatch-sized ranges of the query ring — the read-side
// mirror of runIngestWorkers, so per-edge and batched readers face the same
// concurrent-serving load the Concurrent wrapper exists for.
func runQueryWorkers(b *testing.B, qs []core.EdgeQuery, apply func(chunk []core.EdgeQuery)) {
	const workers = 4
	var cursor atomic.Int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := cursor.Add(queryBenchBatch) - queryBenchBatch
				if lo >= int64(b.N) {
					return
				}
				n := int64(queryBenchBatch)
				if lo+n > int64(b.N) {
					n = int64(b.N) - lo
				}
				off := int(lo) % (len(qs) - queryBenchBatch)
				apply(qs[off : off+int(n)])
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkEstimateEdgePerQuery is the pre-redesign read path, mirroring
// how BenchmarkConcurrentUpdatePerEdge frames the write side: the seed-era
// structure (map vertex router, generic single-RWMutex Concurrent), one
// EstimateEdge call plus one ErrorBound fetch per query — producing per
// query the answer-plus-guarantee that one batched Result carries — under
// concurrent readers.
func BenchmarkEstimateEdgePerQuery(b *testing.B) {
	edges := ingestBenchEdges()
	g, err := core.BuildGSketch(core.Config{
		TotalBytes: 1 << 20, Seed: 42, MaxPartitions: 16,
	}, edges[:1<<15], nil)
	if err != nil {
		b.Fatal(err)
	}
	seed := newSeedSketch(b, g, 16384)
	for _, e := range edges {
		seed.Update(e)
	}
	c := core.NewConcurrent(seed)
	qs := make([]core.EdgeQuery, 1<<16)
	for i := range qs {
		e := edges[(i*37)&(1<<20-1)]
		qs[i] = core.EdgeQuery{Src: e.Src, Dst: e.Dst}
	}
	runQueryWorkers(b, qs, func(chunk []core.EdgeQuery) {
		var sink int64
		var bounds float64
		for _, q := range chunk {
			sink += c.EstimateEdge(q.Src, q.Dst)
			bounds += seed.ErrorBound(q.Src)
		}
		_, _ = sink, bounds
	})
}

// BenchmarkEstimateEdgeSharded is the intermediate point: the modern
// sharded Concurrent answering bound-carrying queries one edge at a time
// (flat router, striped read locks, but still one lock round-trip and two
// routed probes per query).
func BenchmarkEstimateEdgeSharded(b *testing.B) {
	c, qs := queryBenchSetup(b)
	g := c.Unwrap().(*core.GSketch)
	runQueryWorkers(b, qs, func(chunk []core.EdgeQuery) {
		var sink int64
		var bounds float64
		for _, q := range chunk {
			sink += c.EstimateEdge(q.Src, q.Dst)
			bounds += g.ErrorBound(q.Src)
		}
		_, _ = sink, bounds
	})
}

// BenchmarkEstimateBatch is the redesigned read path under the same
// concurrency: route-then-gather batches of bound-carrying Results with
// one stripe-lock acquisition per touched stripe per chunk. The acceptance
// bar is ≥1.5× the queries/sec of BenchmarkEstimateEdgePerQuery on this
// 16-partition sketch.
func BenchmarkEstimateBatch(b *testing.B) {
	c, qs := queryBenchSetup(b)
	runQueryWorkers(b, qs, func(chunk []core.EdgeQuery) {
		var sink int64
		for _, r := range c.EstimateBatch(chunk) {
			sink += r.Estimate
		}
		_ = sink
	})
}

// --- Ablation benches (DESIGN.md §6) --------------------------------------

// BenchmarkAblationRedistribution compares the trimmed-width reallocation
// policies on the RMAT stand-in at fixed memory.
func BenchmarkAblationRedistribution(b *testing.B) {
	reg := harness().Reg
	ds, err := reg.RMAT()
	if err != nil {
		b.Fatal(err)
	}
	queries := query.UniformEdgeQueries(ds.Exact, 2000, ds.Seed+12)
	for _, policy := range []core.Redistribution{
		core.RedistributeProportional, core.RedistributeEven, core.RedistributeNone,
	} {
		b.Run(policy.String(), func(b *testing.B) {
			var are float64
			for i := 0; i < b.N; i++ {
				g, err := core.BuildGSketch(core.Config{
					TotalBytes: ds.FixedMemory, Seed: ds.Seed, Redistribute: policy,
				}, ds.DataSample, nil)
				if err != nil {
					b.Fatal(err)
				}
				core.Populate(g, ds.Edges)
				are = query.EvaluateEdgeQueries(g, ds.Exact, queries, query.DefaultG0).AvgRelErr
			}
			b.ReportMetric(are, "ARE")
		})
	}
}

// BenchmarkAblationOutlierFraction sweeps the outlier width reservation.
func BenchmarkAblationOutlierFraction(b *testing.B) {
	reg := harness().Reg
	ds, err := reg.RMAT()
	if err != nil {
		b.Fatal(err)
	}
	queries := query.UniformEdgeQueries(ds.Exact, 2000, ds.Seed+12)
	for _, frac := range []float64{0.05, 0.10, 0.20} {
		b.Run(fmtFrac(frac), func(b *testing.B) {
			var are float64
			for i := 0; i < b.N; i++ {
				g, err := core.BuildGSketch(core.Config{
					TotalBytes: ds.FixedMemory, Seed: ds.Seed, OutlierFraction: frac,
				}, ds.DataSample, nil)
				if err != nil {
					b.Fatal(err)
				}
				core.Populate(g, ds.Edges)
				are = query.EvaluateEdgeQueries(g, ds.Exact, queries, query.DefaultG0).AvgRelErr
			}
			b.ReportMetric(are, "ARE")
		})
	}
}

// BenchmarkAblationBaseSynopsis runs gSketch over CountMin (plain and
// conservative) and CountSketch.
func BenchmarkAblationBaseSynopsis(b *testing.B) {
	reg := harness().Reg
	ds, err := reg.RMAT()
	if err != nil {
		b.Fatal(err)
	}
	queries := query.UniformEdgeQueries(ds.Exact, 2000, ds.Seed+12)
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"countmin", core.Config{TotalBytes: ds.FixedMemory, Seed: ds.Seed}},
		{"countmin-conservative", core.Config{TotalBytes: ds.FixedMemory, Seed: ds.Seed, Conservative: true}},
		{"countsketch", core.Config{TotalBytes: ds.FixedMemory, Seed: ds.Seed,
			Factory: func(w, d int, seed uint64) (sketch.Synopsis, error) {
				return sketch.NewCountSketch(w, d, seed)
			}}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var are float64
			for i := 0; i < b.N; i++ {
				g, err := core.BuildGSketch(c.cfg, ds.DataSample, nil)
				if err != nil {
					b.Fatal(err)
				}
				core.Populate(g, ds.Edges)
				are = query.EvaluateEdgeQueries(g, ds.Exact, queries, query.DefaultG0).AvgRelErr
			}
			b.ReportMetric(are, "ARE")
		})
	}
}

// BenchmarkAblationTermination sweeps the partitioning-tree termination
// constants: the minimum width w0 (criterion 1) and the Theorem-1 constant
// C (criterion 2).
func BenchmarkAblationTermination(b *testing.B) {
	reg := harness().Reg
	ds, err := reg.RMAT()
	if err != nil {
		b.Fatal(err)
	}
	queries := query.UniformEdgeQueries(ds.Exact, 2000, ds.Seed+12)
	cases := []struct {
		name string
		w0   int
		c    float64
	}{
		{"w0-16-C-0.5", 16, 0.5},
		{"w0-64-C-0.5", 64, 0.5},
		{"w0-256-C-0.5", 256, 0.5},
		{"w0-64-C-0.1", 64, 0.1},
		{"w0-64-C-0.9", 64, 0.9},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var are float64
			var parts int
			for i := 0; i < b.N; i++ {
				g, err := core.BuildGSketch(core.Config{
					TotalBytes: ds.FixedMemory, Seed: ds.Seed,
					MinWidth: c.w0, CollisionC: c.c,
				}, ds.DataSample, nil)
				if err != nil {
					b.Fatal(err)
				}
				core.Populate(g, ds.Edges)
				are = query.EvaluateEdgeQueries(g, ds.Exact, queries, query.DefaultG0).AvgRelErr
				parts = g.NumPartitions()
			}
			b.ReportMetric(are, "ARE")
			b.ReportMetric(float64(parts), "partitions")
		})
	}
}

// BenchmarkAblationMaxPartitions caps the number of localized sketches.
func BenchmarkAblationMaxPartitions(b *testing.B) {
	reg := harness().Reg
	ds, err := reg.RMAT()
	if err != nil {
		b.Fatal(err)
	}
	queries := query.UniformEdgeQueries(ds.Exact, 2000, ds.Seed+12)
	for _, cap := range []int{2, 4, 8, 0} {
		name := "unbounded"
		switch cap {
		case 2:
			name = "max-2"
		case 4:
			name = "max-4"
		case 8:
			name = "max-8"
		}
		b.Run(name, func(b *testing.B) {
			var are float64
			for i := 0; i < b.N; i++ {
				g, err := core.BuildGSketch(core.Config{
					TotalBytes: ds.FixedMemory, Seed: ds.Seed, MaxPartitions: cap,
				}, ds.DataSample, nil)
				if err != nil {
					b.Fatal(err)
				}
				core.Populate(g, ds.Edges)
				are = query.EvaluateEdgeQueries(g, ds.Exact, queries, query.DefaultG0).AvgRelErr
			}
			b.ReportMetric(are, "ARE")
		})
	}
}

func fmtFrac(f float64) string {
	switch f {
	case 0.05:
		return "outlier-5pct"
	case 0.10:
		return "outlier-10pct"
	case 0.20:
		return "outlier-20pct"
	default:
		return "outlier-other"
	}
}

// BenchmarkInstrumentedUpdate quantifies the observability tax on the
// wire ingest hot path: the same per-edge sketch update, bare and with
// the per-frame instrumentation internal/server adds (one accepted-count
// add and one histogram observation per 512-edge frame). The two ns/op
// figures must stay within a few percent of each other — compare the
// sub-benchmarks when reviewing a change to internal/obs.
func BenchmarkInstrumentedUpdate(b *testing.B) {
	edges := benchStream(1 << 16)
	build := func(b *testing.B) *core.GSketch {
		g, err := core.BuildGSketch(core.Config{TotalBytes: 1 << 20, Seed: 1}, edges[:8192], nil)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	const frame = 512

	b.Run("raw", func(b *testing.B) {
		g := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Update(edges[i&(1<<16-1)])
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		g := build(b)
		reg := obs.NewRegistry()
		accepted := reg.Counter("bench_edges_accepted_total", "bench")
		applied := reg.Histogram("bench_frame_apply_seconds", "bench", nil)
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			g.Update(edges[i&(1<<16-1)])
			if i%frame == frame-1 {
				accepted.Add(frame)
				applied.ObserveSince(start)
				start = time.Now()
			}
		}
	})
}

// TestInstrumentationAddsNoAllocations is the alloc half of the
// observability overhead budget: the instrumented loop above must
// allocate exactly as much as the bare one — nothing. (The throughput
// half lives in BenchmarkInstrumentedUpdate; wall-clock ratios are too
// machine-dependent to assert in CI.)
func TestInstrumentationAddsNoAllocations(t *testing.T) {
	edges := benchStream(1 << 12)
	g, err := core.BuildGSketch(core.Config{TotalBytes: 1 << 20, Seed: 1}, edges[:1024], nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	accepted := reg.Counter("bench_edges_accepted_total", "bench")
	applied := reg.Histogram("bench_frame_apply_seconds", "bench", nil)
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		start := time.Now()
		for j := 0; j < 512; j++ {
			g.Update(edges[(i+j)&(1<<12-1)])
		}
		accepted.Add(512)
		applied.ObserveSince(start)
		i += 512
	}); n != 0 {
		t.Fatalf("instrumented 512-edge frame allocates %v, want 0", n)
	}
}
