package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/graphgen"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/stream"
)

// adaptReport is the BENCH_adapt.json payload: accuracy recovery and swap
// latency of the generation-chained adaptive repartitioning path under a
// mid-stream workload pivot.
type adaptReport struct {
	Schema   int     `json:"schema"`
	Edges    int     `json:"edges"`
	Vertices int     `json:"vertices"`
	Alpha    float64 `json:"alpha"`
	Queries  int     `json:"queries"`
	SwapAt   int     `json:"swap_at"`

	DriftDivergence   float64 `json:"drift_divergence"`
	DriftOutlierShare float64 `json:"drift_outlier_share"`
	SwapMs            float64 `json:"swap_ms"`
	Generations       int     `json:"generations"`

	BaselineAvgRelErr float64 `json:"baseline_avg_rel_err"`
	BaselineEffective int     `json:"baseline_effective"`
	AdaptiveAvgRelErr float64 `json:"adaptive_avg_rel_err"`
	AdaptiveEffective int     `json:"adaptive_effective"`
	RecoveryFactor    float64 `json:"recovery_factor"`
}

// runAdaptBench replays a zipf workload pivot: source popularity flips
// mid-stream (the cold tail becomes the hot head), the pre-pivot
// partitioning starts answering the shifted-hot traffic from its crowded
// outlier sketch, and a drift-triggered rebuild + hot swap recovers the
// accuracy. The baseline is the same initial sketch serving the whole
// stream without repartitioning; both are judged on a post-pivot query set
// against exact truth over the full stream.
func runAdaptBench(nEdges, vertices, nQueries int, alpha float64, jsonPath string) error {
	cfg := graphgen.PivotConfig{
		Vertices:      vertices,
		Destinations:  64,
		Edges:         nEdges,
		Alpha:         alpha,
		PivotFraction: 0.5,
		Seed:          42,
	}
	edges, err := graphgen.ZipfPivotStream(cfg)
	if err != nil {
		return err
	}
	pivot := cfg.PivotAt()
	// The swap fires a little into phase 2, once the chain's data reservoir
	// has sampled enough shifted traffic to partition from.
	swapAt := pivot + nEdges/10

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)

	// Evaluation queries: the distinct post-pivot edges in arrival order —
	// Zipf puts the shifted-hot pairs first, with tail pairs mixed in.
	seen := make(map[[2]uint64]struct{})
	var evalQs []query.EdgeQuery
	for _, e := range edges[pivot:] {
		k := [2]uint64{e.Src, e.Dst}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		evalQs = append(evalQs, query.EdgeQuery{Src: e.Src, Dst: e.Dst})
		if len(evalQs) >= nQueries {
			break
		}
	}

	// Both runs bootstrap identically through the one-handle engine:
	// partitioned from a pre-pivot prefix sample under the pre-pivot query
	// workload (§4.2 objective).
	ctx := context.Background()
	sketchCfg := gsketch.Config{TotalBytes: 1 << 20, Seed: 42}
	preWorkload := cfg.PivotQueries(0, 4096, 1)
	postWorkload := cfg.PivotQueries(1, 4096, 2)
	prefixSample := edges[:pivot]
	if len(prefixSample) > 1<<14 {
		prefixSample = prefixSample[:1<<14]
	}
	bootstrap := []gsketch.Option{
		gsketch.WithSample(prefixSample),
		gsketch.WithWorkloadSample(preWorkload),
	}

	// Baseline: no repartitioning, whole stream into the initial sketch.
	base, err := gsketch.Open(sketchCfg, bootstrap...)
	if err != nil {
		return err
	}
	defer base.Close()
	if err := base.Ingest(ctx, edges...); err != nil {
		return err
	}
	baseAcc := query.EvaluateEdgeQueries(base.Estimator(), exact, evalQs, query.DefaultG0)

	// Adaptive: same start as a generation chain, drift-checked swap
	// shortly after the pivot. The engine's workload recorder is the live
	// drift source: the shifted query traffic served below is what the
	// rebuild partitions for — the record → rebuild → swap loop end to end.
	adaptive, err := gsketch.Open(sketchCfg, append(bootstrap,
		gsketch.WithAdaptive(
			gsketch.ChainConfig{SampleSize: 8192, Seed: 7},
			gsketch.AdaptConfig{Sketch: sketchCfg, Baseline: preWorkload},
		),
		gsketch.WithWorkloadRecorder(len(postWorkload)+len(evalQs), 2),
	)...)
	if err != nil {
		return err
	}
	defer adaptive.Close()
	if err := adaptive.Ingest(ctx, edges[:swapAt]...); err != nil {
		return err
	}
	// Serve the shifted query traffic through the stale head before the
	// swap, as a live server would: this populates both the read-side
	// routing counters (the outlier-share drift signal) and the workload
	// reservoir the rebuild optimizes for.
	postQs := make([]query.EdgeQuery, len(postWorkload))
	for i, e := range postWorkload {
		postQs[i] = query.EdgeQuery{Src: e.Src, Dst: e.Dst}
	}
	adaptive.QueryBatch(postQs)
	adaptive.QueryBatch(evalQs)
	drift, err := adaptive.Drift()
	if err != nil {
		return err
	}
	t0 := time.Now()
	res, err := adaptive.Repartition()
	if err != nil {
		return fmt.Errorf("repartition at edge %d: %w", swapAt, err)
	}
	swap := time.Since(t0)
	if err := adaptive.Ingest(ctx, edges[swapAt:]...); err != nil {
		return err
	}
	adaptAcc := query.EvaluateEdgeQueries(adaptive.Estimator(), exact, evalQs, query.DefaultG0)

	recovery := 0.0
	if adaptAcc.AvgRelErr > 0 {
		recovery = baseAcc.AvgRelErr / adaptAcc.AvgRelErr
	}
	rep := adaptReport{
		Schema:   1,
		Edges:    nEdges,
		Vertices: vertices,
		Alpha:    alpha,
		Queries:  len(evalQs),
		SwapAt:   swapAt,

		DriftDivergence:   drift.WorkloadDivergence,
		DriftOutlierShare: drift.OutlierShare,
		SwapMs:            float64(swap.Microseconds()) / 1e3,
		Generations:       res.Generations,

		BaselineAvgRelErr: baseAcc.AvgRelErr,
		BaselineEffective: baseAcc.Effective,
		AdaptiveAvgRelErr: adaptAcc.AvgRelErr,
		AdaptiveEffective: adaptAcc.Effective,
		RecoveryFactor:    recovery,
	}

	fmt.Printf("# adapt bench: zipf pivot at edge %d, swap at %d (%d vertices, alpha %.2f)\n\n",
		pivot, swapAt, vertices, alpha)
	fmt.Printf("drift before swap: divergence %.3f, outlier share %.3f\n",
		drift.WorkloadDivergence, drift.OutlierShare)
	fmt.Printf("swap latency: %.2f ms (build + hot rotate, %d generations after)\n\n",
		rep.SwapMs, rep.Generations)
	fmt.Printf("%-12s %14s %14s\n", "mode", "avg-rel-err", "effective")
	fmt.Printf("%-12s %14.4f %10d/%d\n", "baseline", baseAcc.AvgRelErr, baseAcc.Effective, baseAcc.Total)
	fmt.Printf("%-12s %14.4f %10d/%d\n", "adaptive", adaptAcc.AvgRelErr, adaptAcc.Effective, adaptAcc.Total)
	fmt.Printf("\naccuracy recovery: %.2fx lower error on the shifted workload\n", recovery)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
