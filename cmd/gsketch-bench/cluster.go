package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/cluster"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/server"
	"github.com/graphstream/gsketch/internal/stream"
)

// clusterRow is one topology size's sustained numbers, measured through
// the coordinator's wire frontend.
type clusterRow struct {
	Nodes int `json:"nodes"`
	protoResult
}

// clusterReport is the BENCH_cluster.json payload: a direct single-engine
// wire baseline plus one row per -nodes topology, all over the same
// stream, chunking and client count.
type clusterReport struct {
	Schema      int `json:"schema"`
	Edges       int `json:"edges"`
	Queries     int `json:"queries"`
	Conns       int `json:"conns"`
	IngestChunk int `json:"ingest_chunk"`
	QueryBatch  int `json:"query_batch"`
	GoMaxProcs  int `json:"gomaxprocs"`
	NumCPU      int `json:"num_cpu"`

	Baseline protoResult  `json:"baseline_single_engine"`
	Rows     []clusterRow `json:"rows"`
}

// benchCluster is one live topology: N shard servers, a coordinator, and
// a frontend serving the coordinator's wire protocol.
type benchCluster struct {
	shardSrvs []*server.Server
	coord     *cluster.Coordinator
	front     *server.Server
	addr      string
}

func (bc *benchCluster) close() {
	if bc.front != nil {
		bc.front.Close() // closes the coordinator through the backend
	}
	for _, s := range bc.shardSrvs {
		s.Close()
	}
}

// startBenchCluster boots nodes in-process shards — each a full engine
// behind its own loopback wire listener, built from the same sample and
// seed as the router — and fronts them with a coordinator wire server.
func startBenchCluster(nodes int, edges []stream.Edge, ingestChunk int) (*benchCluster, error) {
	bc := &benchCluster{}
	sample := ingestSample(edges)
	addrs := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		eng, err := gsketch.Open(ingestSketchConfig(),
			gsketch.WithSample(sample),
			gsketch.WithIngest(gsketch.IngestConfig{BatchSize: 8192}))
		if err != nil {
			bc.close()
			return nil, err
		}
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			eng.Close()
			bc.close()
			return nil, err
		}
		bc.shardSrvs = append(bc.shardSrvs, srv)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			bc.close()
			return nil, err
		}
		go srv.ServeWire(ln) //nolint:errcheck // ErrServerClosed after shutdown
		addrs[i] = ln.Addr().String()
	}

	router, err := core.BuildGSketch(ingestSketchConfig(), sample, nil)
	if err != nil {
		bc.close()
		return nil, err
	}
	coord, err := cluster.New(cluster.Config{
		Addrs:        addrs,
		Router:       router,
		BatchEdges:   ingestChunk,
		QueueBatches: 16,
		PingInterval: -1, // probes by hand, off the measured path
	})
	if err != nil {
		bc.close()
		return nil, err
	}
	bc.coord = coord
	front, err := server.New(server.Config{Cluster: coord})
	if err != nil {
		coord.Close()
		bc.close()
		return nil, err
	}
	bc.front = front
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		bc.close()
		return nil, err
	}
	go front.ServeWire(ln) //nolint:errcheck // ErrServerClosed after shutdown
	bc.addr = ln.Addr().String()
	return bc, nil
}

// runClusterBench measures scatter-gather serving at each -nodes topology
// size over loopback, against a direct single-engine wire baseline, and
// writes BENCH_cluster.json.
func runClusterBench(nodesSpec string, nEdges, nQueries, ingestChunk, queryBatch int, jsonPath string) error {
	nodesList, err := parseCores(nodesSpec) // same "1,2,4" syntax as -cores
	if err != nil {
		return fmt.Errorf("-nodes: %w", err)
	}
	conns := runtime.GOMAXPROCS(0)
	if conns < 2 {
		conns = 2 // a lone client would serialize the scatter paths
	}
	if nEdges < conns*ingestChunk {
		return fmt.Errorf("need at least conns*chunk = %d edges (got %d)", conns*ingestChunk, nEdges)
	}
	edges := ingestStream(nEdges)
	var total int64
	for _, e := range edges {
		total += e.Weight
	}

	rep := clusterReport{
		Schema:      1,
		Edges:       nEdges,
		Queries:     nQueries,
		Conns:       conns,
		IngestChunk: ingestChunk,
		QueryBatch:  queryBatch,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}

	// Baseline: the same phases against one engine's wire server, no
	// coordinator in the path.
	base, _, err := runServeProto("wire", edges, nQueries, conns, ingestChunk, queryBatch)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	base.Proto = "wire-direct"
	rep.Baseline = base
	fmt.Printf("# cluster bench baseline [wire-direct]: ingest %.0f edges/s, query %.0f queries/s\n",
		base.IngestEdgesPerSec, base.QueriesPerSec)

	for _, nodes := range nodesList {
		bc, err := startBenchCluster(nodes, edges, ingestChunk)
		if err != nil {
			return fmt.Errorf("%d nodes: %w", nodes, err)
		}
		res, err := measurePhases(&wireDriver{addr: bc.addr}, edges, nQueries, conns, ingestChunk, queryBatch)
		if err != nil {
			bc.close()
			return fmt.Errorf("%d nodes: %w", nodes, err)
		}
		res.Proto = "wire-cluster"

		// Lossless cross-check: after the flush barrier, the shards'
		// summed stream totals must equal the offered volume.
		bc.coord.Probe()
		got, _, _ := bc.coord.Health()
		bc.close()
		if got != total {
			return fmt.Errorf("%d nodes: cluster lost volume: stream total %d, want %d", nodes, got, total)
		}

		rep.Rows = append(rep.Rows, clusterRow{Nodes: nodes, protoResult: res})
		fmt.Printf("# cluster bench [%d node(s)]: %d conns over loopback\n", nodes, conns)
		fmt.Printf("ingest  %12.0f edges/s   (%.2fs, %d retries, p50 %.2fms p99 %.2fms)\n",
			res.IngestEdgesPerSec, res.IngestSeconds, res.IngestRetries, res.IngestP50Ms, res.IngestP99Ms)
		fmt.Printf("query   %12.0f queries/s (%.0f batches/s, p50 %.2fms p99 %.2fms)\n",
			res.QueriesPerSec, res.QueryBatchesPerSec, res.QueryP50Ms, res.QueryP99Ms)
		// Let the OS reap listeners before the next topology spins up.
		time.Sleep(50 * time.Millisecond)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
