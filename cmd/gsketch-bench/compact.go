package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/graphgen"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/stream"
)

// compactReport is the BENCH_compact.json payload: memory and query
// latency of a generation chain driven through many workload pivots with
// background compaction, against the same chain left to accumulate one
// generation per pivot.
type compactReport struct {
	Schema   int     `json:"schema"`
	Edges    int     `json:"edges"`
	Vertices int     `json:"vertices"`
	Alpha    float64 `json:"alpha"`
	Pivots   int     `json:"pivots"`
	Queries  int     `json:"queries"`

	Compacted   compactSide `json:"compacted"`
	Uncompacted compactSide `json:"uncompacted"`

	// MemoryRatio is uncompacted/compacted final counter bytes — how much
	// footprint the fold policy saved at equal stream volume.
	MemoryRatio float64 `json:"memory_ratio"`
}

// compactSide is one engine's half of the comparison.
type compactSide struct {
	Generations   int   `json:"generations"`
	Compactions   int64 `json:"compactions"`
	CompactedFrom int   `json:"compacted_from"`
	MemoryBytes   int   `json:"memory_bytes"`
	// MemoryByPivot and GenerationsByPivot are the trajectories sampled
	// after each repartition — the bounded-vs-linear growth evidence.
	MemoryByPivot      []int `json:"memory_by_pivot"`
	GenerationsByPivot []int `json:"generations_by_pivot"`

	AvgRelErr  float64 `json:"avg_rel_err"`
	Effective  int     `json:"effective"`
	QueryP50Ms float64 `json:"query_p50_ms"`
	QueryP99Ms float64 `json:"query_p99_ms"`
}

// runCompactBench replays a popularity carousel — the zipf hot set rotates
// at every phase boundary — repartitioning after each pivot. The compacted
// engine runs a MaxGenerations fold policy (the chain compacts under cap
// pressure instead of refusing rotations); the uncompacted engine keeps
// every generation. Both answer the same final-phase query set against
// exact truth, so the report shows what compaction costs in accuracy next
// to what it saves in memory and tail latency.
func runCompactBench(nEdges, vertices, nQueries, pivots int, alpha float64, jsonPath string) error {
	if pivots < 1 {
		return fmt.Errorf("need at least 1 pivot (got %d)", pivots)
	}
	phases := pivots + 1
	car := graphgen.CarouselConfig{
		Vertices:      vertices,
		Destinations:  64,
		Phases:        phases,
		EdgesPerPhase: nEdges / phases,
		Alpha:         alpha,
		Seed:          42,
	}
	edges, err := graphgen.ZipfCarouselStream(car)
	if err != nil {
		return err
	}

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)

	// Evaluation queries: distinct final-phase edges in arrival order.
	seen := make(map[[2]uint64]struct{})
	var evalQs []query.EdgeQuery
	for _, e := range edges[car.PhaseAt(phases-1):] {
		k := [2]uint64{e.Src, e.Dst}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		evalQs = append(evalQs, query.EdgeQuery{Src: e.Src, Dst: e.Dst})
		if len(evalQs) >= nQueries {
			break
		}
	}

	sketchCfg := gsketch.Config{TotalBytes: 1 << 20, Seed: 42}
	baseline := car.PhaseQueries(0, 4096, 1)
	prefixSample := edges[:car.EdgesPerPhase]
	if len(prefixSample) > 1<<14 {
		prefixSample = prefixSample[:1<<14]
	}
	workloadCap := 4096

	// drive replays the carousel through one engine: ingest a phase, serve
	// that phase's query traffic (feeding the workload recorder), then
	// repartition at the boundary — one rotation per pivot.
	drive := func(side *compactSide, extra ...gsketch.Option) (*gsketch.Engine, error) {
		ctx := context.Background()
		opts := append([]gsketch.Option{
			gsketch.WithSample(prefixSample),
			gsketch.WithWorkloadSample(baseline),
			gsketch.WithWorkloadRecorder(workloadCap, 2),
		}, extra...)
		eng, err := gsketch.Open(sketchCfg, opts...)
		if err != nil {
			return nil, err
		}
		for p := 0; p < phases; p++ {
			lo, hi := car.PhaseAt(p), car.PhaseAt(p+1)
			if p == phases-1 {
				hi = len(edges)
			}
			if err := eng.Ingest(ctx, edges[lo:hi]...); err != nil {
				eng.Close()
				return nil, err
			}
			phaseQs := make([]query.EdgeQuery, 0, 1024)
			for _, e := range car.PhaseQueries(p, 1024, uint64(100+p)) {
				phaseQs = append(phaseQs, query.EdgeQuery{Src: e.Src, Dst: e.Dst})
			}
			eng.QueryBatch(phaseQs)
			if p == phases-1 {
				break // final phase is served, not rotated past
			}
			if _, err := eng.Repartition(); err != nil {
				eng.Close()
				return nil, fmt.Errorf("repartition after phase %d: %w", p, err)
			}
			st := eng.Stats()
			side.MemoryByPivot = append(side.MemoryByPivot, st.MemoryBytes)
			side.GenerationsByPivot = append(side.GenerationsByPivot, st.Adapt.Generations)
		}
		st := eng.Stats()
		side.Generations = st.Adapt.Generations
		side.Compactions = st.Adapt.Compactions
		side.CompactedFrom = st.Adapt.CompactedFrom
		side.MemoryBytes = st.MemoryBytes
		acc := query.EvaluateEdgeQueries(eng.Estimator(), exact, evalQs, query.DefaultG0)
		side.AvgRelErr = acc.AvgRelErr
		side.Effective = acc.Effective
		side.QueryP50Ms, side.QueryP99Ms = queryQuantiles(eng, evalQs)
		return eng, nil
	}

	// Uncompacted: the chain keeps one generation per pivot; the cap sits
	// above the pivot count so it never interferes.
	var rep compactReport
	unc, err := drive(&rep.Uncompacted, gsketch.WithAdaptive(
		gsketch.ChainConfig{SampleSize: 8192, Seed: 7, MaxGenerations: phases + 2},
		gsketch.AdaptConfig{Sketch: sketchCfg, Baseline: baseline},
	))
	if err != nil {
		return fmt.Errorf("uncompacted: %w", err)
	}
	defer unc.Close()

	// Compacted: the cap sits far below the pivot count; every rotation
	// past it folds the two oldest frozen generations first, so the chain
	// is driven well past its former hard limit and keeps accepting.
	cap := 4
	cmp, err := drive(&rep.Compacted,
		gsketch.WithAdaptive(
			gsketch.ChainConfig{SampleSize: 8192, Seed: 7, MaxGenerations: cap},
			gsketch.AdaptConfig{Sketch: sketchCfg, Baseline: baseline},
		),
		gsketch.WithCompaction(gsketch.CompactionPolicy{
			MaxGenerations: cap,
			Fold:           2,
			Interval:       time.Hour, // cap pressure drives the folds; the ticker stays out of the way
		}, nil),
	)
	if err != nil {
		return fmt.Errorf("compacted: %w", err)
	}
	defer cmp.Close()

	rep.Schema = 1
	rep.Edges = len(edges)
	rep.Vertices = vertices
	rep.Alpha = alpha
	rep.Pivots = pivots
	rep.Queries = len(evalQs)
	if rep.Compacted.MemoryBytes > 0 {
		rep.MemoryRatio = float64(rep.Uncompacted.MemoryBytes) / float64(rep.Compacted.MemoryBytes)
	}

	fmt.Printf("# compact bench: %d pivots over %d edges (%d vertices, alpha %.2f)\n\n",
		pivots, len(edges), vertices, alpha)
	fmt.Printf("%-12s %11s %11s %14s %12s %11s %11s\n",
		"mode", "generations", "compactions", "memory-bytes", "avg-rel-err", "p50-ms", "p99-ms")
	for _, row := range []struct {
		name string
		s    *compactSide
	}{{"uncompacted", &rep.Uncompacted}, {"compacted", &rep.Compacted}} {
		fmt.Printf("%-12s %11d %11d %14d %12.4f %11.4f %11.4f\n",
			row.name, row.s.Generations, row.s.Compactions, row.s.MemoryBytes,
			row.s.AvgRelErr, row.s.QueryP50Ms, row.s.QueryP99Ms)
	}
	fmt.Printf("\nmemory ratio: %.2fx (compacted chain holds %d generations for %d source builds)\n",
		rep.MemoryRatio, rep.Compacted.Generations, rep.Compacted.CompactedFrom)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// queryQuantiles times single-edge queries through the full serving path
// (chain gather included) and reports p50/p99 in milliseconds.
func queryQuantiles(eng *gsketch.Engine, qs []query.EdgeQuery) (p50, p99 float64) {
	if len(qs) == 0 {
		return 0, 0
	}
	lat := make([]time.Duration, len(qs))
	for i, q := range qs {
		t0 := time.Now()
		eng.Query(q.Src, q.Dst)
		lat[i] = time.Since(t0)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds()) / 1e6
	}
	return pick(0.50), pick(0.99)
}
