package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// ingestResult is one row of the machine-readable ingest report.
type ingestResult struct {
	Mode          string  `json:"mode"`
	Goroutines    int     `json:"goroutines"`
	Edges         int64   `json:"edges"`
	Seconds       float64 `json:"seconds"`
	EdgesPerSec   float64 `json:"edges_per_sec"`
	NsPerEdge     float64 `json:"ns_per_edge"`
	AllocsPerEdge float64 `json:"allocs_per_edge"`
	Speedup       float64 `json:"speedup_vs_per_edge"`
}

// ingestReport is the BENCH_ingest.json payload, versioned so later PRs can
// extend it while keeping the perf trajectory comparable.
type ingestReport struct {
	Schema     int            `json:"schema"`
	Edges      int            `json:"edges"`
	BatchSize  int            `json:"batch_size"`
	Workers    int            `json:"workers"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Partitions int            `json:"partitions"`
	Results    []ingestResult `json:"results"`
}

// ingestStream builds a synthetic 1M-class stream with a skewed source
// population, the shape the router and partitions see in the paper's
// workloads.
func ingestStream(n int) []stream.Edge {
	edges := make([]stream.Edge, n)
	for i := range edges {
		// Mix the index so sources do not arrive in sorted runs.
		v := uint64(i)*0x9e3779b97f4a7c15 + 0x7f4a7c15
		edges[i] = stream.Edge{
			Src:    (v >> 16) % 16384,
			Dst:    v % 65536,
			Weight: 1,
		}
	}
	return edges
}

// ingestSketchConfig is the shared sketch budget of the ingest and serve
// benches.
func ingestSketchConfig() gsketch.Config {
	return gsketch.Config{TotalBytes: 1 << 20, Seed: 42}
}

// ingestSample bounds the partitioning sample like the pre-Engine benches
// did.
func ingestSample(edges []stream.Edge) []stream.Edge {
	if len(edges) > 1<<15 {
		return edges[:1<<15]
	}
	return edges
}

// openIngestEngine constructs the bench estimator through the one-handle
// path (gsketch.Open) and hands back both the engine and the underlying
// striped-lock Concurrent the measured loops drive directly — so the
// numbers stay comparable with the pre-Engine reports.
func openIngestEngine(edges []stream.Edge, opts ...gsketch.Option) (*gsketch.Engine, *core.Concurrent, error) {
	opts = append([]gsketch.Option{gsketch.WithSample(ingestSample(edges))}, opts...)
	eng, err := gsketch.Open(ingestSketchConfig(), opts...)
	if err != nil {
		return nil, nil, err
	}
	return eng, eng.Estimator().(*core.Concurrent), nil
}

// measure runs fn over the edge count and reports throughput plus the
// malloc delta per edge.
func measure(mode string, goroutines int, edges int64, fn func()) ingestResult {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	fn()
	dt := time.Since(t0)
	runtime.ReadMemStats(&after)
	secs := dt.Seconds()
	return ingestResult{
		Mode:          mode,
		Goroutines:    goroutines,
		Edges:         edges,
		Seconds:       secs,
		EdgesPerSec:   float64(edges) / secs,
		NsPerEdge:     float64(dt.Nanoseconds()) / float64(edges),
		AllocsPerEdge: float64(after.Mallocs-before.Mallocs) / float64(edges),
	}
}

// runIngestBench compares the three ingest paths on a fresh sketch each:
// per-edge locked Update (the seed hot path), single-threaded UpdateBatch,
// and the sharded-parallel Ingestor pipeline.
func runIngestBench(nEdges, batchSize, workers int, jsonPath string) error {
	if nEdges < 1 {
		return fmt.Errorf("need at least 1 edge (got %d)", nEdges)
	}
	if batchSize < 1 {
		return fmt.Errorf("batch size must be at least 1 (got %d)", batchSize)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		// The sharded-parallel mode measures the pipeline's fan-out, not
		// the scheduler: on a small GOMAXPROCS, 1 producer feeding 1 worker
		// degenerates into the batch mode with a queue in the middle. Keep
		// at least 4 so the mode exercises multi-producer contention even
		// on single-core machines.
		if workers < 4 {
			workers = 4
		}
	}
	edges := ingestStream(nEdges)
	n := int64(len(edges))

	var results []ingestResult

	eng, c, err := openIngestEngine(edges)
	if err != nil {
		return err
	}
	partitions := c.Unwrap().(*core.GSketch).NumPartitions()
	results = append(results, measure("per-edge", 1, n, func() {
		for _, e := range edges {
			c.Update(e)
		}
	}))
	_ = eng.Close()

	eng, c, err = openIngestEngine(edges)
	if err != nil {
		return err
	}
	results = append(results, measure("batch", 1, n, func() {
		for lo := 0; lo < len(edges); lo += batchSize {
			hi := lo + batchSize
			if hi > len(edges) {
				hi = len(edges)
			}
			c.UpdateBatch(edges[lo:hi])
		}
	}))
	_ = eng.Close()

	eng, _, err = openIngestEngine(edges,
		gsketch.WithIngest(gsketch.IngestConfig{Workers: workers, BatchSize: batchSize}))
	if err != nil {
		return err
	}
	// The mode truly runs producers+workers goroutines: `workers`
	// producers striping the stream into the pipeline plus `workers`
	// pipeline workers applying batches. Report that real count instead of
	// the worker knob alone.
	var ingErr error
	results = append(results, measure("sharded-parallel", 2*workers, n, func() {
		ctx := context.Background()
		var wg sync.WaitGroup
		producers := workers
		stripe := (len(edges) + producers - 1) / producers
		for p := 0; p < producers; p++ {
			lo := p * stripe
			hi := lo + stripe
			if hi > len(edges) {
				hi = len(edges)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(part []stream.Edge) {
				defer wg.Done()
				_ = eng.Ingest(ctx, part...)
			}(edges[lo:hi])
		}
		wg.Wait()
		ingErr = eng.Close()
	}))
	if ingErr != nil {
		return ingErr
	}

	base := results[0].EdgesPerSec
	for i := range results {
		results[i].Speedup = results[i].EdgesPerSec / base
	}

	fmt.Printf("# ingest throughput (%d edges, batch %d, %d workers, %d partitions)\n\n",
		nEdges, batchSize, workers, partitions)
	fmt.Printf("%-18s %10s %14s %12s %14s %8s\n",
		"mode", "goroutines", "edges/sec", "ns/edge", "allocs/edge", "speedup")
	for _, r := range results {
		fmt.Printf("%-18s %10d %14.0f %12.1f %14.4f %7.2fx\n",
			r.Mode, r.Goroutines, r.EdgesPerSec, r.NsPerEdge, r.AllocsPerEdge, r.Speedup)
	}

	report := ingestReport{
		Schema:     1,
		Edges:      nEdges,
		BatchSize:  batchSize,
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Partitions: partitions,
		Results:    results,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
	return nil
}
