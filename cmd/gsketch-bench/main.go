// Command gsketch-bench regenerates the paper's evaluation artifacts
// (Figures 4–14, Table 1 and the §6.1 variance ratios) on the synthetic
// stand-in datasets and prints them as aligned tables.
//
// Usage:
//
//	gsketch-bench [-profile repro|small] [-run id[,id...]] [-list] [-csv dir]
//	gsketch-bench -ingest [-ingest-edges n] [-ingest-batch n] [-ingest-workers n] [-ingest-json path]
//	gsketch-bench -query [-query-count n] [-query-batch n] [-query-readers n] [-query-partitions n] [-query-json path]
//	gsketch-bench -serve [-serve-proto json|wire|both] [-serve-json path]
//	gsketch-bench -scaling [-cores 1,4,16] [-scaling-json path]
//	gsketch-bench -cluster [-nodes 1,2,4] [-cluster-json path]
//	gsketch-bench -tenants 1,8,64 [-tenant-edges n] [-tenant-queries n] [-tenant-json path]
//	gsketch-bench -compact [-compact-pivots n] [-compact-edges n] [-compact-json path]
//
// Examples:
//
//	gsketch-bench -list
//	gsketch-bench -run fig4,fig5
//	gsketch-bench -profile small -run all
//	gsketch-bench -ingest -ingest-edges 1000000
//	gsketch-bench -query -query-count 4000000
//
// The -ingest mode compares single-edge, batched and sharded-parallel
// ingestion throughput (edges/sec, allocs/edge) and writes a
// machine-readable BENCH_ingest.json so the perf trajectory is tracked
// across PRs. The -query mode is its read-side mirror: it compares the
// seed-era per-edge bound-carrying query loop against the batched and
// concurrent-reader EstimateBatch paths (queries/sec, allocs/query) and
// writes BENCH_query.json. The -serve mode drives the serving subsystem
// over loopback — the HTTP/JSON endpoints, the binary wire protocol, or
// both for a head-to-head with p50/p99 request latencies — and writes
// BENCH_serve.json. The -scaling mode re-runs the ingest and wire-serving
// measurements at each GOMAXPROCS value of -cores and writes
// BENCH_scaling.json (num_cpu records the host's real core count, so a
// sweep past it is readable as scheduler pressure rather than speedup).
// The -cluster mode stands a scatter-gather coordinator over 1, 2 and 4
// in-process shard engines (see internal/cluster), drives the same wire
// phases through it against a direct single-engine baseline, and writes
// BENCH_cluster.json. The -tenants mode sweeps the multi-tenant registry
// (see internal/tenant) over the listed tenant counts: every tenant
// drives its own /t/{name}/... HTTP client concurrently (aggregate
// throughput plus per-tenant p50/p99 spread), and a resident-capped
// churn pass measures the snapshot-evict and reopen-from-snapshot
// latencies; the report lands in BENCH_tenant.json. The -compact mode
// replays a popularity carousel (the zipf hot set rotates at every phase
// boundary), repartitioning after each of its ≥8 pivots, and compares a
// chain running a MaxGenerations fold policy against one that keeps every
// generation — bounded memory and stable query tail latency versus linear
// growth — writing BENCH_compact.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/graphstream/gsketch/internal/experiments"
)

func main() {
	var (
		profileName = flag.String("profile", "repro", "dataset scale profile: repro or small")
		run         = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		csvDir      = flag.String("csv", "", "also write each table as CSV into this directory")

		ingestMode    = flag.Bool("ingest", false, "run the ingest throughput benchmark instead of experiments")
		ingestEdges   = flag.Int("ingest-edges", 1_000_000, "synthetic stream length for -ingest")
		ingestBatch   = flag.Int("ingest-batch", 8192, "batch size for the batched and parallel ingest modes")
		ingestWorkers = flag.Int("ingest-workers", 0, "worker count for the parallel ingest mode (0 = GOMAXPROCS)")
		ingestJSON    = flag.String("ingest-json", "BENCH_ingest.json", "machine-readable ingest report path")

		serveMode    = flag.Bool("serve", false, "run the HTTP serving benchmark instead of experiments")
		serveEdges   = flag.Int("serve-edges", 2_000_000, "stream length ingested over loopback for -serve")
		serveQueries = flag.Int("serve-queries", 1_000_000, "queries issued over loopback for -serve")
		serveConns   = flag.Int("serve-conns", 0, "concurrent HTTP clients for -serve (0 = GOMAXPROCS)")
		serveChunk   = flag.Int("serve-chunk", 8192, "edges per NDJSON ingest request for -serve")
		serveBatch   = flag.Int("serve-batch", 2048, "queries per /query request for -serve")
		serveProto   = flag.String("serve-proto", "both", "serving protocol(s) to measure: json, wire or both")
		serveJSON    = flag.String("serve-json", "BENCH_serve.json", "machine-readable serving report path")

		clusterMode    = flag.Bool("cluster", false, "run the scatter-gather cluster benchmark instead of experiments")
		clusterNodes   = flag.String("nodes", "1,2,4", "comma-separated shard counts for -cluster")
		clusterEdges   = flag.Int("cluster-edges", 500_000, "stream length per topology for -cluster")
		clusterQueries = flag.Int("cluster-queries", 200_000, "queries per topology for -cluster")
		clusterChunk   = flag.Int("cluster-chunk", 8192, "edges per wire ingest frame for -cluster")
		clusterBatch   = flag.Int("cluster-batch", 2048, "queries per wire frame for -cluster")
		clusterJSON    = flag.String("cluster-json", "BENCH_cluster.json", "machine-readable cluster report path")

		scalingMode    = flag.Bool("scaling", false, "sweep GOMAXPROCS over -cores and re-run the ingest/serve benches")
		coresSpec      = flag.String("cores", "1,4,16", "comma-separated GOMAXPROCS values for -scaling")
		scalingEdges   = flag.Int("scaling-edges", 500_000, "stream length per sweep point for -scaling")
		scalingQueries = flag.Int("scaling-queries", 200_000, "queries per sweep point for -scaling")
		scalingJSON    = flag.String("scaling-json", "BENCH_scaling.json", "machine-readable scaling report path")

		compactMode     = flag.Bool("compact", false, "run the generation-lifecycle compaction benchmark instead of experiments")
		compactEdges    = flag.Int("compact-edges", 360_000, "total carousel stream length for -compact")
		compactVertices = flag.Int("compact-vertices", 4096, "source population for -compact")
		compactQueries  = flag.Int("compact-queries", 2000, "final-phase evaluation queries for -compact")
		compactPivots   = flag.Int("compact-pivots", 8, "workload pivots (phase boundaries) for -compact")
		compactAlpha    = flag.Float64("compact-alpha", 1.1, "zipf skew of the carousel stream for -compact")
		compactJSON     = flag.String("compact-json", "BENCH_compact.json", "machine-readable compact report path")

		adaptMode     = flag.Bool("adapt", false, "run the adaptive repartitioning benchmark instead of experiments")
		adaptEdges    = flag.Int("adapt-edges", 400_000, "two-phase pivot stream length for -adapt")
		adaptVertices = flag.Int("adapt-vertices", 4096, "source population for -adapt")
		adaptQueries  = flag.Int("adapt-queries", 2000, "post-pivot evaluation queries for -adapt")
		adaptAlpha    = flag.Float64("adapt-alpha", 1.1, "zipf skew of the pivot stream for -adapt")
		adaptJSON     = flag.String("adapt-json", "BENCH_adapt.json", "machine-readable adapt report path")

		tenantsSpec   = flag.String("tenants", "", "comma-separated tenant counts (e.g. 1,8,64): run the multi-tenant serving bench")
		tenantEdges   = flag.Int("tenant-edges", 512_000, "total edges split across all tenants per sweep point for -tenants")
		tenantQueries = flag.Int("tenant-queries", 256_000, "total queries split across all tenants per sweep point for -tenants")
		tenantChunk   = flag.Int("tenant-chunk", 2048, "edges per NDJSON ingest request for -tenants")
		tenantBatch   = flag.Int("tenant-batch", 512, "queries per /query request for -tenants")
		tenantJSON    = flag.String("tenant-json", "BENCH_tenant.json", "machine-readable tenant report path")

		queryMode       = flag.Bool("query", false, "run the query throughput benchmark instead of experiments")
		queryCount      = flag.Int("query-count", 4_000_000, "number of queries per mode for -query")
		queryBatch      = flag.Int("query-batch", 8192, "batch size for the batched query modes")
		queryReaders    = flag.Int("query-readers", 0, "reader goroutines for the parallel query mode (0 = GOMAXPROCS)")
		queryPartitions = flag.Int("query-partitions", 16, "partition cap for the benchmark sketch")
		queryJSON       = flag.String("query-json", "BENCH_query.json", "machine-readable query report path")
	)
	flag.Parse()

	if *ingestMode {
		if err := runIngestBench(*ingestEdges, *ingestBatch, *ingestWorkers, *ingestJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gsketch-bench: ingest: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serveMode {
		if err := runServeBench(*serveEdges, *serveQueries, *serveConns, *serveChunk, *serveBatch, *serveProto, *serveJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gsketch-bench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clusterMode {
		if err := runClusterBench(*clusterNodes, *clusterEdges, *clusterQueries, *clusterChunk, *clusterBatch, *clusterJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gsketch-bench: cluster: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *tenantsSpec != "" {
		if err := runTenantBench(*tenantsSpec, *tenantEdges, *tenantQueries, *tenantChunk, *tenantBatch, *tenantJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gsketch-bench: tenants: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *scalingMode {
		if err := runScalingBench(*coresSpec, *scalingEdges, *scalingQueries, *scalingJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gsketch-bench: scaling: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *queryMode {
		if err := runQueryBench(*queryCount, *queryBatch, *queryReaders, *queryPartitions, *queryJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gsketch-bench: query: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *compactMode {
		if err := runCompactBench(*compactEdges, *compactVertices, *compactQueries, *compactPivots, *compactAlpha, *compactJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gsketch-bench: compact: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *adaptMode {
		if err := runAdaptBench(*adaptEdges, *adaptVertices, *adaptQueries, *adaptAlpha, *adaptJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gsketch-bench: adapt: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.AllExperiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var profile experiments.Profile
	switch *profileName {
	case "repro":
		profile = experiments.Repro
	case "small":
		profile = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "gsketch-bench: unknown profile %q (want repro or small)\n", *profileName)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.AllExperiments()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.FindExperiment(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "gsketch-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	h := experiments.NewHarness(experiments.NewRegistry(profile))
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsketch-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("# %s (%s, %v)\n\n", e.Title, profile.Name, time.Since(start).Round(time.Millisecond))
		for i := range tables {
			if err := tables[i].Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "gsketch-bench: print: %v\n", err)
				os.Exit(1)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, &tables[i]); err != nil {
					fmt.Fprintf(os.Stderr, "gsketch-bench: csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}

func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
