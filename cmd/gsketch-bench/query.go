package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

// queryResult is one row of the machine-readable query report.
type queryResult struct {
	Mode           string  `json:"mode"`
	Goroutines     int     `json:"goroutines"`
	Queries        int64   `json:"queries"`
	Seconds        float64 `json:"seconds"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	NsPerQuery     float64 `json:"ns_per_query"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
	Speedup        float64 `json:"speedup_vs_per_edge"`
}

// queryReport is the BENCH_query.json payload, versioned like the ingest
// report so the read-path perf trajectory is tracked across PRs.
type queryReport struct {
	Schema     int           `json:"schema"`
	Queries    int           `json:"queries"`
	BatchSize  int           `json:"batch_size"`
	Readers    int           `json:"readers"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Partitions int           `json:"partitions"`
	Results    []queryResult `json:"results"`
}

// seedReadSketch replicates the seed-era read structure the redesign
// replaces: a map vertex router in front of per-partition CountMin
// sketches. Wrapped in core.NewConcurrent it takes the generic
// single-RWMutex path, reproducing the pre-redesign bound-carrying query
// loop: one EstimateEdge call, one lock round-trip and one ErrorBound
// fetch per query.
type seedReadSketch struct {
	router       map[uint64]int32
	parts        []sketch.Synopsis
	widths       []int
	outlier      sketch.Synopsis
	outlierWidth int
	total        int64
}

func newSeedReadSketch(g *core.GSketch, sources uint64) (*seedReadSketch, error) {
	s := &seedReadSketch{router: make(map[uint64]int32)}
	for i, leaf := range g.Leaves() {
		cm, err := sketch.NewCountMin(leaf.Width, g.Depth(), uint64(i)+1)
		if err != nil {
			return nil, err
		}
		s.parts = append(s.parts, cm)
		s.widths = append(s.widths, leaf.Width)
	}
	out, err := sketch.NewCountMin(g.OutlierWidth(), g.Depth(), 999)
	if err != nil {
		return nil, err
	}
	s.outlier = out
	s.outlierWidth = g.OutlierWidth()
	for src := uint64(0); src < sources; src++ {
		if i, ok := g.PartitionOf(src); ok {
			s.router[src] = int32(i)
		}
	}
	return s, nil
}

func (s *seedReadSketch) route(src uint64) (sketch.Synopsis, int) {
	if i, ok := s.router[src]; ok {
		return s.parts[i], s.widths[i]
	}
	return s.outlier, s.outlierWidth
}

func (s *seedReadSketch) Update(e stream.Edge) {
	w := e.Weight
	if w == 0 {
		w = 1
	}
	s.total += w
	syn, _ := s.route(e.Src)
	syn.Update(stream.EdgeKey(e.Src, e.Dst), w)
}

func (s *seedReadSketch) UpdateBatch(edges []stream.Edge) {
	for _, e := range edges {
		s.Update(e)
	}
}

func (s *seedReadSketch) EstimateEdge(src, dst uint64) int64 {
	syn, _ := s.route(src)
	return syn.Estimate(stream.EdgeKey(src, dst))
}

// ErrorBound is the seed-era per-query bound fetch, mirroring
// core.GSketch.ErrorBound over the map router.
func (s *seedReadSketch) ErrorBound(src uint64) float64 {
	syn, width := s.route(src)
	if width <= 0 {
		return 0
	}
	return 2.718281828459045 * float64(syn.Count()) / float64(width)
}

func (s *seedReadSketch) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	out := make([]core.Result, len(qs))
	for i, q := range qs {
		out[i] = core.Result{
			Estimate:    s.EstimateEdge(q.Src, q.Dst),
			Partition:   core.NoPartition,
			ErrorBound:  s.ErrorBound(q.Src),
			StreamTotal: s.total,
		}
	}
	return out
}

func (s *seedReadSketch) Count() int64     { return s.total }
func (s *seedReadSketch) MemoryBytes() int { return 0 }

var _ core.Estimator = (*seedReadSketch)(nil)

// queryRing derives a bound-carrying query workload from the synthetic
// stream: every query asks for an edge that occurred (the paper's §6.3
// setting — queries are drawn from the stream).
func queryRing(edges []stream.Edge, n int) []core.EdgeQuery {
	qs := make([]core.EdgeQuery, n)
	for i := range qs {
		e := edges[(i*37)%len(edges)]
		qs[i] = core.EdgeQuery{Src: e.Src, Dst: e.Dst}
	}
	return qs
}

// measureQueries runs fn over the query count and reports throughput plus
// the malloc delta per query.
func measureQueries(mode string, goroutines int, queries int64, fn func()) queryResult {
	r := measure(mode, goroutines, queries, fn)
	return queryResult{
		Mode:           r.Mode,
		Goroutines:     r.Goroutines,
		Queries:        r.Edges,
		Seconds:        r.Seconds,
		QueriesPerSec:  r.EdgesPerSec,
		NsPerQuery:     r.NsPerEdge,
		AllocsPerQuery: r.AllocsPerEdge,
	}
}

// runQueryBench compares the read paths on the same populated 16-partition
// stream summary:
//
//   - per-edge: the seed-era bound-carrying query loop (map router, one
//     EstimateEdge + one ErrorBound + one generic-RWMutex round-trip per
//     query) — the pre-redesign path and the speedup baseline;
//   - per-edge-sharded: the same loop against the modern flat-router
//     sharded Concurrent;
//   - batch: Concurrent.EstimateBatch in fixed-size batches of
//     bound-carrying Results;
//   - batch-parallel: the batched path from N concurrent reader
//     goroutines.
func runQueryBench(nQueries, batchSize, readers, maxPartitions int, jsonPath string) error {
	if nQueries < 1 {
		return fmt.Errorf("need at least 1 query (got %d)", nQueries)
	}
	if batchSize < 1 {
		return fmt.Errorf("batch size must be at least 1 (got %d)", batchSize)
	}
	if readers <= 0 {
		readers = runtime.GOMAXPROCS(0)
	}
	edges := ingestStream(1 << 20)
	cfg := gsketch.Config{TotalBytes: 1 << 20, Seed: 42, MaxPartitions: maxPartitions}
	eng, err := gsketch.Open(cfg, gsketch.WithSample(edges[:1<<15]))
	if err != nil {
		return err
	}
	defer eng.Close()
	// The measured loops drive the striped-lock estimator directly, so the
	// numbers stay comparable with the pre-Engine reports; the engine is
	// the construction path.
	shared := eng.Estimator().(*core.Concurrent)
	g := shared.Unwrap().(*core.GSketch)
	partitions := g.NumPartitions()
	if err := eng.Ingest(context.Background(), edges...); err != nil {
		return err
	}

	seed, err := newSeedReadSketch(g, 16384)
	if err != nil {
		return err
	}
	seedEng, err := gsketch.Open(gsketch.Config{}, gsketch.WithEstimator(seed))
	if err != nil {
		return err
	}
	defer seedEng.Close()
	seedShared := seedEng.Estimator().(*core.Concurrent)
	for _, e := range edges {
		seed.Update(e)
	}

	// Size the ring so every batch-sized window fits: a -query-batch larger
	// than the default 64K ring grows the ring instead of slicing past it.
	ringSize := 1 << 16
	if ringSize < 2*batchSize {
		ringSize = 2 * batchSize
	}
	qs := queryRing(edges, ringSize)
	n := int64(nQueries)
	ringMask := len(qs) - batchSize

	var results []queryResult

	results = append(results, measureQueries("per-edge", 1, n, func() {
		var sink int64
		var bounds float64
		for i := 0; i < nQueries; i++ {
			q := qs[i%len(qs)]
			sink += seedShared.EstimateEdge(q.Src, q.Dst)
			bounds += seed.ErrorBound(q.Src)
		}
		_, _ = sink, bounds
	}))

	results = append(results, measureQueries("per-edge-sharded", 1, n, func() {
		var sink int64
		var bounds float64
		for i := 0; i < nQueries; i++ {
			q := qs[i%len(qs)]
			sink += shared.EstimateEdge(q.Src, q.Dst)
			bounds += g.ErrorBound(q.Src)
		}
		_, _ = sink, bounds
	}))

	results = append(results, measureQueries("batch", 1, n, func() {
		var sink int64
		for lo := 0; lo < nQueries; lo += batchSize {
			sz := batchSize
			if lo+sz > nQueries {
				sz = nQueries - lo
			}
			off := lo % ringMask
			for _, r := range shared.EstimateBatch(qs[off : off+sz]) {
				sink += r.Estimate
			}
		}
		_ = sink
	}))

	results = append(results, measureQueries("batch-parallel", readers, n, func() {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sink int64
				for {
					lo := cursor.Add(int64(batchSize)) - int64(batchSize)
					if lo >= n {
						_ = sink
						return
					}
					sz := int64(batchSize)
					if lo+sz > n {
						sz = n - lo
					}
					off := int(lo) % ringMask
					for _, r := range shared.EstimateBatch(qs[off : off+int(sz)]) {
						sink += r.Estimate
					}
				}
			}()
		}
		wg.Wait()
	}))

	base := results[0].QueriesPerSec
	for i := range results {
		results[i].Speedup = results[i].QueriesPerSec / base
	}

	fmt.Printf("# query throughput (%d queries, batch %d, %d readers, %d partitions)\n\n",
		nQueries, batchSize, readers, partitions)
	fmt.Printf("%-18s %10s %14s %12s %15s %8s\n",
		"mode", "goroutines", "queries/sec", "ns/query", "allocs/query", "speedup")
	for _, r := range results {
		fmt.Printf("%-18s %10d %14.0f %12.1f %15.4f %7.2fx\n",
			r.Mode, r.Goroutines, r.QueriesPerSec, r.NsPerQuery, r.AllocsPerQuery, r.Speedup)
	}

	report := queryReport{
		Schema:     1,
		Queries:    nQueries,
		BatchSize:  batchSize,
		Readers:    readers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Partitions: partitions,
		Results:    results,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
	return nil
}
