package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/stream"
)

// scalingRow is one (GOMAXPROCS, mode) cell of the core sweep.
type scalingRow struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	Mode       string  `json:"mode"`
	Goroutines int     `json:"goroutines"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	SpeedupVs1 float64 `json:"speedup_vs_gomaxprocs_1"`
}

// scalingReport is the BENCH_scaling.json payload: the same measurements
// re-run across GOMAXPROCS values, so contention shows up as a flat (or
// inverted) curve instead of hiding inside one number. NumCPU records the
// host's real core count — GOMAXPROCS beyond it adds scheduler pressure,
// not parallelism, and the curve must be read against it.
type scalingReport struct {
	Schema  int          `json:"schema"`
	NumCPU  int          `json:"num_cpu"`
	Cores   []int        `json:"cores"`
	Edges   int          `json:"edges"`
	Queries int          `json:"queries"`
	Note    string       `json:"note,omitempty"`
	Rows    []scalingRow `json:"rows"`
}

// parseCores parses the -cores flag ("1,4,16") into a sorted list.
func parseCores(spec string) ([]int, error) {
	var cores []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cores entry %q (want positive integers)", f)
		}
		cores = append(cores, n)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("empty -cores list")
	}
	sort.Ints(cores)
	return cores, nil
}

// runScalingBench sweeps GOMAXPROCS over cores and re-runs the ingest and
// wire-serving measurements at each setting.
func runScalingBench(coreSpec string, nEdges, nQueries int, jsonPath string) error {
	cores, err := parseCores(coreSpec)
	if err != nil {
		return err
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	rep := scalingReport{
		Schema:  1,
		NumCPU:  runtime.NumCPU(),
		Cores:   cores,
		Edges:   nEdges,
		Queries: nQueries,
	}
	if max := cores[len(cores)-1]; max > rep.NumCPU {
		rep.Note = fmt.Sprintf("host has %d CPU(s); GOMAXPROCS settings above that cannot add parallelism", rep.NumCPU)
	}

	edges := ingestStream(nEdges)
	for _, c := range cores {
		runtime.GOMAXPROCS(c)
		fmt.Printf("# GOMAXPROCS=%d (host CPUs: %d)\n", c, rep.NumCPU)

		// Single-threaded UpdateBatch: the flat baseline any parallel curve
		// is read against.
		eng, est, err := openIngestEngine(edges)
		if err != nil {
			return err
		}
		r := measure("ingest-batch", 1, int64(nEdges), func() {
			for lo := 0; lo < len(edges); lo += 8192 {
				hi := lo + 8192
				if hi > len(edges) {
					hi = len(edges)
				}
				est.UpdateBatch(edges[lo:hi])
			}
		})
		_ = eng.Close()
		rep.Rows = append(rep.Rows, scalingRow{GoMaxProcs: c, Mode: r.Mode, Goroutines: 1, OpsPerSec: r.EdgesPerSec})

		// The sharded pipeline with c producers and c workers.
		eng, _, err = openIngestEngine(edges,
			gsketch.WithIngest(gsketch.IngestConfig{Workers: c, BatchSize: 8192}))
		if err != nil {
			return err
		}
		var closeErr error
		r = measure("ingest-parallel", 2*c, int64(nEdges), func() {
			ctx := context.Background()
			var wg sync.WaitGroup
			stripe := (len(edges) + c - 1) / c
			for p := 0; p < c; p++ {
				lo, hi := p*stripe, (p+1)*stripe
				if hi > len(edges) {
					hi = len(edges)
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(part []stream.Edge) {
					defer wg.Done()
					_ = eng.Ingest(ctx, part...)
				}(edges[lo:hi])
			}
			wg.Wait()
			closeErr = eng.Close()
		})
		if closeErr != nil {
			return closeErr
		}
		rep.Rows = append(rep.Rows, scalingRow{GoMaxProcs: c, Mode: r.Mode, Goroutines: 2 * c, OpsPerSec: r.EdgesPerSec})

		// End-to-end wire serving with c client connections.
		res, _, err := runServeProto("wire", edges, nQueries, c, 8192, 2048)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows,
			scalingRow{GoMaxProcs: c, Mode: "serve-wire-ingest", Goroutines: c, OpsPerSec: res.IngestEdgesPerSec},
			scalingRow{GoMaxProcs: c, Mode: "serve-wire-query", Goroutines: c, OpsPerSec: res.QueriesPerSec})

		for _, row := range rep.Rows[len(rep.Rows)-4:] {
			fmt.Printf("%-20s %10d goroutines %14.0f ops/s\n", row.Mode, row.Goroutines, row.OpsPerSec)
		}
	}

	// Speedups relative to each mode's GOMAXPROCS=1 row (or the lowest
	// measured setting when 1 was not swept).
	base := map[string]float64{}
	for _, row := range rep.Rows {
		if _, ok := base[row.Mode]; !ok && row.GoMaxProcs == cores[0] {
			base[row.Mode] = row.OpsPerSec
		}
	}
	for i := range rep.Rows {
		if b := base[rep.Rows[i].Mode]; b > 0 {
			rep.Rows[i].SpeedupVs1 = rep.Rows[i].OpsPerSec / b
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
