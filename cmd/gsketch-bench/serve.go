package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/obs"
	"github.com/graphstream/gsketch/internal/server"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/wire"
)

// protoResult is one protocol's sustained loopback numbers: ingest and
// query throughput plus per-request latency quantiles (a request is one
// ingest chunk or one query batch, including any shed-retry rounds).
type protoResult struct {
	Proto string `json:"proto"` // "json" or "wire"

	IngestSeconds     float64 `json:"ingest_seconds"`
	IngestEdgesPerSec float64 `json:"ingest_edges_per_sec"`
	IngestRetries     int64   `json:"ingest_retries"`
	IngestP50Ms       float64 `json:"ingest_p50_ms"`
	IngestP99Ms       float64 `json:"ingest_p99_ms"`

	QuerySeconds       float64 `json:"query_seconds"`
	QueriesPerSec      float64 `json:"queries_per_sec"`
	QueryBatchesPerSec float64 `json:"query_batches_per_sec"`
	QueryP50Ms         float64 `json:"query_p50_ms"`
	QueryP99Ms         float64 `json:"query_p99_ms"`

	// Server-side quantiles, read back from the /metrics exposition after
	// the run: handler latency for json, frame-apply latency for wire. The
	// client/server gap is the protocol + loopback cost.
	ServerIngestP50Ms float64 `json:"server_ingest_p50_ms"`
	ServerIngestP99Ms float64 `json:"server_ingest_p99_ms"`
	ServerQueryP50Ms  float64 `json:"server_query_p50_ms"`
	ServerQueryP99Ms  float64 `json:"server_query_p99_ms"`
}

// serveReport is the BENCH_serve.json payload. Schema 2 replaced the flat
// schema-1 layout with one protoResult per measured protocol and the
// wire-vs-JSON speedups when both ran; schema 3 adds the server-side
// histogram quantiles scraped from /metrics.
type serveReport struct {
	Schema      int `json:"schema"`
	Edges       int `json:"edges"`
	Queries     int `json:"queries"`
	Conns       int `json:"conns"`
	IngestChunk int `json:"ingest_chunk"`
	QueryBatch  int `json:"query_batch"`
	GoMaxProcs  int `json:"gomaxprocs"`
	NumCPU      int `json:"num_cpu"`
	Partitions  int `json:"partitions"`

	Results []protoResult `json:"results"`

	WireIngestSpeedup float64 `json:"wire_ingest_speedup_vs_json,omitempty"`
	WireQuerySpeedup  float64 `json:"wire_query_speedup_vs_json,omitempty"`
}

// runServeBench drives the serving subsystem over loopback with conns
// concurrent clients, once per requested protocol ("json", "wire" or
// "both"), each against a fresh engine so the measured phases are
// identical. The final state of every run is cross-checked for lossless
// ingest before the report is written.
func runServeBench(nEdges, nQueries, conns, ingestChunk, queryBatch int, proto, jsonPath string) error {
	if conns <= 0 {
		conns = runtime.GOMAXPROCS(0)
	}
	if nEdges < conns*ingestChunk {
		return fmt.Errorf("need at least conns*chunk = %d edges (got %d)", conns*ingestChunk, nEdges)
	}
	var protos []string
	switch proto {
	case "json", "wire":
		protos = []string{proto}
	case "both":
		protos = []string{"json", "wire"}
	default:
		return fmt.Errorf("unknown -serve-proto %q (want json, wire or both)", proto)
	}

	edges := ingestStream(nEdges)
	rep := serveReport{
		Schema:      3,
		Edges:       nEdges,
		Queries:     nQueries,
		Conns:       conns,
		IngestChunk: ingestChunk,
		QueryBatch:  queryBatch,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	for _, p := range protos {
		res, partitions, err := runServeProto(p, edges, nQueries, conns, ingestChunk, queryBatch)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		rep.Partitions = partitions
		rep.Results = append(rep.Results, res)
		fmt.Printf("# serve bench [%s]: %d conns over loopback\n", p, conns)
		fmt.Printf("ingest  %12.0f edges/s   (%.2fs, %d retries, p50 %.2fms p99 %.2fms)\n",
			res.IngestEdgesPerSec, res.IngestSeconds, res.IngestRetries, res.IngestP50Ms, res.IngestP99Ms)
		fmt.Printf("query   %12.0f queries/s (%.0f batches/s, p50 %.2fms p99 %.2fms)\n",
			res.QueriesPerSec, res.QueryBatchesPerSec, res.QueryP50Ms, res.QueryP99Ms)
		fmt.Printf("server  ingest p50 %.2fms p99 %.2fms, query p50 %.2fms p99 %.2fms (from /metrics)\n",
			res.ServerIngestP50Ms, res.ServerIngestP99Ms, res.ServerQueryP50Ms, res.ServerQueryP99Ms)
	}
	if len(rep.Results) == 2 {
		rep.WireIngestSpeedup = rep.Results[1].IngestEdgesPerSec / rep.Results[0].IngestEdgesPerSec
		rep.WireQuerySpeedup = rep.Results[1].QueriesPerSec / rep.Results[0].QueriesPerSec
		fmt.Printf("# wire vs json: ingest %.2fx, query %.2fx\n", rep.WireIngestSpeedup, rep.WireQuerySpeedup)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// runServeProto measures one protocol against a fresh engine and server.
func runServeProto(proto string, edges []stream.Edge, nQueries, conns, ingestChunk, queryBatch int) (protoResult, int, error) {
	res := protoResult{Proto: proto}
	eng, _, err := openIngestEngine(edges,
		gsketch.WithIngest(gsketch.IngestConfig{BatchSize: 8192}),
		gsketch.WithWorkloadRecorder(4096, 0))
	if err != nil {
		return res, 0, err
	}
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		return res, 0, err
	}
	defer srv.Close()

	var drive driver
	switch proto {
	case "json":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, 0, err
		}
		go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
		drive = &jsonDriver{
			base: "http://" + ln.Addr().String(),
			client: &http.Client{Transport: &http.Transport{
				MaxIdleConnsPerHost: conns,
			}},
		}
	case "wire":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, 0, err
		}
		go srv.ServeWire(ln) //nolint:errcheck // ErrServerClosed after shutdown
		drive = &wireDriver{addr: ln.Addr().String()}
	}

	phases, err := measurePhases(drive, edges, nQueries, conns, ingestChunk, queryBatch)
	if err != nil {
		return res, 0, err
	}
	res = phases
	res.Proto = proto
	if err := scrapeServerQuantiles(srv, proto, &res); err != nil {
		return res, 0, fmt.Errorf("server-side quantiles: %w", err)
	}

	var total int64
	for _, e := range edges {
		total += e.Weight
	}
	if got := eng.Estimator().Count(); got != total {
		return res, 0, fmt.Errorf("served ingest lost volume: Count=%d want %d", got, total)
	}
	return res, eng.Sketch().NumPartitions(), nil
}

// measurePhases runs the two measured phases of a serving bench — conns
// concurrent clients pushing the stream in chunks, then issuing batched
// queries over the same key population — against any driver. Shared by
// the single-node serve bench and the cluster bench.
func measurePhases(drive driver, edges []stream.Edge, nQueries, conns, ingestChunk, queryBatch int) (protoResult, error) {
	var res protoResult

	// Ingest phase: shard the stream across conns workers, each pushing
	// chunks and retrying shed suffixes; per-chunk latencies feed p50/p99.
	nEdges := len(edges)
	var retries atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	lats := make([][]float64, conns)
	share := (nEdges + conns - 1) / conns
	t0 := time.Now()
	for c := 0; c < conns; c++ {
		lo, hi := c*share, (c+1)*share
		if hi > nEdges {
			hi = nEdges
		}
		wg.Add(1)
		go func(id int, part []stream.Edge) {
			defer wg.Done()
			w, err := drive.worker()
			if err != nil {
				errs <- err
				return
			}
			defer w.close()
			for len(part) > 0 {
				n := ingestChunk
				if n > len(part) {
					n = len(part)
				}
				r0 := time.Now()
				retried, err := w.ingestChunk(part[:n])
				lats[id] = append(lats[id], time.Since(r0).Seconds()*1e3)
				if err != nil {
					errs <- err
					return
				}
				retries.Add(retried)
				part = part[n:]
			}
		}(c, edges[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errs:
		return res, err
	default:
	}
	// Flush so the measured window covers every edge applied.
	fw, err := drive.worker()
	if err != nil {
		return res, err
	}
	if err := fw.flush(); err != nil {
		fw.close()
		return res, err
	}
	fw.close()
	res.IngestSeconds = time.Since(t0).Seconds()
	res.IngestEdgesPerSec = float64(nEdges) / res.IngestSeconds
	res.IngestRetries = retries.Load()
	res.IngestP50Ms, res.IngestP99Ms = percentiles(lats)

	// Query phase: conns clients issue batched queries over the same key
	// population.
	perConn := nQueries / conns
	batches := perConn / queryBatch
	if batches < 1 {
		batches = 1
	}
	qlats := make([][]float64, conns)
	t1 := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(id, seed int) {
			defer wg.Done()
			w, err := drive.worker()
			if err != nil {
				errs <- err
				return
			}
			defer w.close()
			qs := make([]core.EdgeQuery, queryBatch)
			for b := 0; b < batches; b++ {
				for i := range qs {
					e := edges[(seed+b*queryBatch+i)%len(edges)]
					qs[i] = core.EdgeQuery{Src: e.Src, Dst: e.Dst}
				}
				r0 := time.Now()
				err := w.queryChunk(qs)
				qlats[id] = append(qlats[id], time.Since(r0).Seconds()*1e3)
				if err != nil {
					errs <- err
					return
				}
			}
		}(c, c*7919)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return res, err
	default:
	}
	res.QuerySeconds = time.Since(t1).Seconds()
	answered := float64(conns) * float64(batches) * float64(queryBatch)
	res.QueriesPerSec = answered / res.QuerySeconds
	res.QueryBatchesPerSec = float64(conns*batches) / res.QuerySeconds
	res.QueryP50Ms, res.QueryP99Ms = percentiles(qlats)

	return res, nil
}

// scrapeServerQuantiles renders the server's /metrics exposition and
// pulls the server-side latency histograms for the measured protocol:
// per-route handler latency for json, per-type frame-apply latency for
// wire. Going through the text format (render + parse) keeps the bench
// honest about what an external scraper would see.
func scrapeServerQuantiles(srv *server.Server, proto string, res *protoResult) error {
	var buf bytes.Buffer
	if _, err := srv.Metrics().WriteTo(&buf); err != nil {
		return err
	}
	fams, err := obs.ParseFamilies(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	var ingestName, queryName string
	var ingestMatch, queryMatch map[string]string
	if proto == "wire" {
		ingestName, queryName = "gsketch_wire_frame_apply_duration_seconds", "gsketch_wire_frame_apply_duration_seconds"
		ingestMatch = map[string]string{"type": "ingest"}
		queryMatch = map[string]string{"type": "query"}
	} else {
		ingestName, queryName = "gsketch_http_request_duration_seconds", "gsketch_http_request_duration_seconds"
		ingestMatch = map[string]string{"route": "POST /ingest"}
		queryMatch = map[string]string{"route": "POST /query"}
	}
	ih, err := obs.FindHistogram(fams, ingestName, ingestMatch)
	if err != nil {
		return err
	}
	qh, err := obs.FindHistogram(fams, queryName, queryMatch)
	if err != nil {
		return err
	}
	res.ServerIngestP50Ms = ih.Quantile(0.50) * 1e3
	res.ServerIngestP99Ms = ih.Quantile(0.99) * 1e3
	res.ServerQueryP50Ms = qh.Quantile(0.50) * 1e3
	res.ServerQueryP99Ms = qh.Quantile(0.99) * 1e3
	return nil
}

// driver abstracts the two client protocols; worker() hands each bench
// goroutine its own connection-owning client.
type driver interface {
	worker() (serveWorker, error)
}

type serveWorker interface {
	ingestChunk(edges []stream.Edge) (retries int64, err error)
	queryChunk(qs []core.EdgeQuery) error
	flush() error
	close()
}

// jsonDriver drives the NDJSON/JSON HTTP endpoints.
type jsonDriver struct {
	base   string
	client *http.Client
}

func (d *jsonDriver) worker() (serveWorker, error) {
	return &jsonWorker{d: d}, nil
}

type jsonWorker struct {
	d   *jsonDriver
	buf bytes.Buffer
}

func (w *jsonWorker) ingestChunk(edges []stream.Edge) (int64, error) {
	w.buf.Reset()
	for _, e := range edges {
		fmt.Fprintf(&w.buf, `{"src":%d,"dst":%d,"weight":%d}`+"\n", e.Src, e.Dst, e.Weight)
	}
	accepted, retried, err := postIngestChunk(w.d.client, w.d.base, w.buf.Bytes())
	if err == nil && accepted != len(edges) {
		err = fmt.Errorf("ingest accepted %d of %d", accepted, len(edges))
	}
	return retried, err
}

func (w *jsonWorker) queryChunk(qs []core.EdgeQuery) error {
	w.buf.Reset()
	w.buf.WriteString(`{"queries":[`)
	for i, q := range qs {
		if i > 0 {
			w.buf.WriteByte(',')
		}
		fmt.Fprintf(&w.buf, `{"src":%d,"dst":%d}`, q.Src, q.Dst)
	}
	w.buf.WriteString(`]}`)
	resp, err := w.d.client.Post(w.d.base+"/query", "application/json", bytes.NewReader(w.buf.Bytes()))
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(new(json.RawMessage))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query status %d", resp.StatusCode)
	}
	return nil
}

func (w *jsonWorker) flush() error { return syncFlush(w.d.client, w.d.base) }
func (w *jsonWorker) close()       {}

// wireDriver drives the binary wire protocol over per-worker TCP
// connections.
type wireDriver struct{ addr string }

func (d *wireDriver) worker() (serveWorker, error) {
	c, err := wire.Dial(d.addr)
	if err != nil {
		return nil, err
	}
	return &wireWorker{c: c}, nil
}

type wireWorker struct {
	c       *wire.Client
	results []core.Result
}

func (w *wireWorker) ingestChunk(edges []stream.Edge) (int64, error) {
	return w.c.IngestAll(edges, len(edges))
}

func (w *wireWorker) queryChunk(qs []core.EdgeQuery) error {
	rs, err := w.c.Query(w.results[:0], qs)
	w.results = rs
	if err == nil && len(rs) != len(qs) {
		err = fmt.Errorf("query answered %d of %d", len(rs), len(qs))
	}
	return err
}

func (w *wireWorker) flush() error { return w.c.Flush() }
func (w *wireWorker) close()       { w.c.Close() }

// percentiles merges per-worker latency samples (milliseconds) and
// returns the p50 and p99 request latency.
func percentiles(lats [][]float64) (p50, p99 float64) {
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0
	}
	sort.Float64s(all)
	at := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	return at(0.50), at(0.99)
}

// postIngestChunk POSTs one NDJSON chunk, retrying the shed suffix until
// the whole chunk is accepted. It returns edges accepted from this chunk
// (always the full chunk on success) and how many 429 retries it took.
func postIngestChunk(client *http.Client, base string, body []byte) (int, int64, error) {
	accepted := 0
	var retried int64
	for {
		resp, err := client.Post(base+"/ingest", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			return accepted, retried, err
		}
		var ir struct {
			Accepted int `json:"accepted"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if err != nil {
			return accepted, retried, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return accepted + ir.Accepted, retried, nil
		case http.StatusTooManyRequests:
			accepted += ir.Accepted
			retried++
			// Re-render the rejected suffix: count accepted lines off the
			// front of the NDJSON body.
			body = skipNDJSONLines(body, ir.Accepted)
			time.Sleep(200 * time.Microsecond)
		default:
			return accepted, retried, fmt.Errorf("ingest status %d", resp.StatusCode)
		}
	}
}

// skipNDJSONLines drops the first n lines of an NDJSON payload.
func skipNDJSONLines(body []byte, n int) []byte {
	for ; n > 0; n-- {
		i := bytes.IndexByte(body, '\n')
		if i < 0 {
			return nil
		}
		body = body[i+1:]
	}
	return body
}

// syncFlush issues an empty sync ingest, which flushes the pipeline.
func syncFlush(client *http.Client, base string) error {
	resp, err := client.Post(base+"/ingest?sync=1", "application/x-ndjson", bytes.NewReader(nil))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sync flush status %d", resp.StatusCode)
	}
	return nil
}
