package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/server"
	"github.com/graphstream/gsketch/internal/stream"
)

// serveReport is the BENCH_serve.json payload: sustained loopback ingest
// and query throughput of the HTTP serving subsystem.
type serveReport struct {
	Schema      int `json:"schema"`
	Edges       int `json:"edges"`
	Queries     int `json:"queries"`
	Conns       int `json:"conns"`
	IngestChunk int `json:"ingest_chunk"`
	QueryBatch  int `json:"query_batch"`
	GoMaxProcs  int `json:"gomaxprocs"`
	Partitions  int `json:"partitions"`

	IngestSeconds      float64 `json:"ingest_seconds"`
	IngestEdgesPerSec  float64 `json:"ingest_edges_per_sec"`
	IngestRetries429   int64   `json:"ingest_retries_429"`
	QuerySeconds       float64 `json:"query_seconds"`
	QueriesPerSec      float64 `json:"queries_per_sec"`
	QueryBatchesPerSec float64 `json:"query_batches_per_sec"`
}

// runServeBench starts the serving subsystem on a loopback listener and
// drives it with conns concurrent HTTP clients: an NDJSON ingest phase
// (with 429 retries counted) followed by a batched query phase. The final
// state is cross-checked for lossless ingest before the report is written.
func runServeBench(nEdges, nQueries, conns, ingestChunk, queryBatch int, jsonPath string) error {
	if conns <= 0 {
		conns = runtime.GOMAXPROCS(0)
	}
	if nEdges < conns*ingestChunk {
		return fmt.Errorf("need at least conns*chunk = %d edges (got %d)", conns*ingestChunk, nEdges)
	}
	edges := ingestStream(nEdges)
	eng, _, err := openIngestEngine(edges,
		gsketch.WithIngest(gsketch.IngestConfig{BatchSize: 8192}),
		gsketch.WithWorkloadRecorder(4096, 0))
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: conns,
	}}

	// Ingest phase: shard the stream across conns workers, each POSTing
	// NDJSON chunks and retrying the shed suffix on 429.
	var retries atomic.Int64
	var wg sync.WaitGroup
	share := (nEdges + conns - 1) / conns
	t0 := time.Now()
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		lo, hi := c*share, (c+1)*share
		if hi > nEdges {
			hi = nEdges
		}
		wg.Add(1)
		go func(part []stream.Edge) {
			defer wg.Done()
			var buf bytes.Buffer
			for len(part) > 0 {
				n := ingestChunk
				if n > len(part) {
					n = len(part)
				}
				buf.Reset()
				for _, e := range part[:n] {
					fmt.Fprintf(&buf, `{"src":%d,"dst":%d,"weight":%d}`+"\n", e.Src, e.Dst, e.Weight)
				}
				accepted, retried, err := postIngestChunk(client, base, buf.Bytes())
				if err != nil {
					errs <- err
					return
				}
				retries.Add(retried)
				part = part[accepted:]
			}
		}(edges[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	// Flush so the measured window covers every edge applied.
	if err := syncFlush(client, base); err != nil {
		return err
	}
	ingestSecs := time.Since(t0).Seconds()

	var total int64
	for _, e := range edges {
		total += e.Weight
	}
	if got := eng.Estimator().Count(); got != total {
		return fmt.Errorf("served ingest lost volume: Count=%d want %d", got, total)
	}

	// Query phase: conns clients POST batched queries over the same key
	// population.
	perConn := nQueries / conns
	batches := perConn / queryBatch
	if batches < 1 {
		batches = 1
	}
	t1 := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var buf bytes.Buffer
			for b := 0; b < batches; b++ {
				buf.Reset()
				buf.WriteString(`{"queries":[`)
				for i := 0; i < queryBatch; i++ {
					if i > 0 {
						buf.WriteByte(',')
					}
					e := edges[(seed+b*queryBatch+i)%len(edges)]
					fmt.Fprintf(&buf, `{"src":%d,"dst":%d}`, e.Src, e.Dst)
				}
				buf.WriteString(`]}`)
				resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(buf.Bytes()))
				if err != nil {
					errs <- err
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(new(json.RawMessage)); err != nil {
					resp.Body.Close()
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}(c * 7919)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	querySecs := time.Since(t1).Seconds()
	answered := int64(conns) * int64(batches) * int64(queryBatch)

	rep := serveReport{
		Schema:      1,
		Edges:       nEdges,
		Queries:     int(answered),
		Conns:       conns,
		IngestChunk: ingestChunk,
		QueryBatch:  queryBatch,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Partitions:  eng.Sketch().NumPartitions(),

		IngestSeconds:      ingestSecs,
		IngestEdgesPerSec:  float64(nEdges) / ingestSecs,
		IngestRetries429:   retries.Load(),
		QuerySeconds:       querySecs,
		QueriesPerSec:      float64(answered) / querySecs,
		QueryBatchesPerSec: float64(conns*batches) / querySecs,
	}
	fmt.Printf("# serve bench: %d conns over loopback\n", conns)
	fmt.Printf("ingest  %12.0f edges/s   (%d edges, %.2fs, %d retries on 429)\n",
		rep.IngestEdgesPerSec, nEdges, ingestSecs, rep.IngestRetries429)
	fmt.Printf("query   %12.0f queries/s (%.0f batches/s, batch %d, %.2fs)\n",
		rep.QueriesPerSec, rep.QueryBatchesPerSec, queryBatch, querySecs)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(blob, '\n'), 0o644)
}

// postIngestChunk POSTs one NDJSON chunk, retrying the shed suffix until
// the whole chunk is accepted. It returns edges accepted from this chunk
// (always the full chunk on success) and how many 429 retries it took.
func postIngestChunk(client *http.Client, base string, body []byte) (int, int64, error) {
	accepted := 0
	var retried int64
	for {
		resp, err := client.Post(base+"/ingest", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			return accepted, retried, err
		}
		var ir struct {
			Accepted int `json:"accepted"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if err != nil {
			return accepted, retried, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return accepted + ir.Accepted, retried, nil
		case http.StatusTooManyRequests:
			accepted += ir.Accepted
			retried++
			// Re-render the rejected suffix: count accepted lines off the
			// front of the NDJSON body.
			body = skipNDJSONLines(body, ir.Accepted)
			time.Sleep(200 * time.Microsecond)
		default:
			return accepted, retried, fmt.Errorf("ingest status %d", resp.StatusCode)
		}
	}
}

// skipNDJSONLines drops the first n lines of an NDJSON payload.
func skipNDJSONLines(body []byte, n int) []byte {
	for ; n > 0; n-- {
		i := bytes.IndexByte(body, '\n')
		if i < 0 {
			return nil
		}
		body = body[i+1:]
	}
	return body
}

// syncFlush issues an empty sync ingest, which flushes the pipeline.
func syncFlush(client *http.Client, base string) error {
	resp, err := client.Post(base+"/ingest?sync=1", "application/x-ndjson", bytes.NewReader(nil))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sync flush status %d", resp.StatusCode)
	}
	return nil
}
