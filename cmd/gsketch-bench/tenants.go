package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/server"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/tenant"
)

// tenantLat is one tenant's client-side request latency quantiles during
// the mixed-tenant phases.
type tenantLat struct {
	Name        string  `json:"name"`
	IngestP50Ms float64 `json:"ingest_p50_ms"`
	IngestP99Ms float64 `json:"ingest_p99_ms"`
	QueryP50Ms  float64 `json:"query_p50_ms"`
	QueryP99Ms  float64 `json:"query_p99_ms"`
}

// tenantPoint is one tenant-count sweep point: every tenant drives its
// own HTTP client against /t/{name}/... concurrently, so the aggregate
// columns measure the registry under mixed-tenant load while the
// per-tenant quantiles expose noisy-neighbour spread. The eviction
// columns come from a separate churn pass over a resident-capped
// registry (cap 1), where every round-robin access pays one
// snapshot-evict plus one reopen-from-snapshot.
type tenantPoint struct {
	Tenants          int `json:"tenants"`
	EdgesPerTenant   int `json:"edges_per_tenant"`
	QueriesPerTenant int `json:"queries_per_tenant"`

	IngestSeconds    float64 `json:"ingest_seconds"`
	AggEdgesPerSec   float64 `json:"agg_ingest_edges_per_sec"`
	IngestP50Ms      float64 `json:"ingest_p50_ms"`
	IngestP99Ms      float64 `json:"ingest_p99_ms"`
	QuerySeconds     float64 `json:"query_seconds"`
	AggQueriesPerSec float64 `json:"agg_queries_per_sec"`
	QueryP50Ms       float64 `json:"query_p50_ms"`
	QueryP99Ms       float64 `json:"query_p99_ms"`

	PerTenant []tenantLat `json:"per_tenant"`

	Evictions   int     `json:"evictions"`
	Reopens     int     `json:"reopens"`
	EvictP50Ms  float64 `json:"evict_p50_ms"`
	EvictP99Ms  float64 `json:"evict_p99_ms"`
	ReopenP50Ms float64 `json:"reopen_p50_ms"`
	ReopenP99Ms float64 `json:"reopen_p99_ms"`
}

// tenantReport is the BENCH_tenant.json payload.
type tenantReport struct {
	Schema       int   `json:"schema"`
	TenantCounts []int `json:"tenant_counts"`
	EdgesTotal   int   `json:"edges_total"`
	QueriesTotal int   `json:"queries_total"`
	IngestChunk  int   `json:"ingest_chunk"`
	QueryBatch   int   `json:"query_batch"`
	GoMaxProcs   int   `json:"gomaxprocs"`
	NumCPU       int   `json:"num_cpu"`

	Points []tenantPoint `json:"points"`
}

// tenantStream derives a per-tenant edge stream from the shared mixed
// key population, shifted so tenants do not collide on identical keys.
func tenantStream(n int, tenantIdx int) []stream.Edge {
	edges := make([]stream.Edge, n)
	for i := range edges {
		v := uint64(i)*0x9e3779b97f4a7c15 + uint64(tenantIdx)*0xbf58476d1ce4e5b9 + 0x7f4a7c15
		edges[i] = stream.Edge{
			Src:    (v >> 16) % 16384,
			Dst:    v % 65536,
			Weight: 1,
		}
	}
	return edges
}

// runTenantBench sweeps the multi-tenant server over the comma-separated
// tenant counts of spec and writes BENCH_tenant.json.
func runTenantBench(spec string, nEdges, nQueries, chunk, batch int, jsonPath string) error {
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad tenant count %q in -tenants", f)
		}
		counts = append(counts, n)
	}
	rep := tenantReport{
		Schema:       1,
		TenantCounts: counts,
		EdgesTotal:   nEdges,
		QueriesTotal: nQueries,
		IngestChunk:  chunk,
		QueryBatch:   batch,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
	}
	for _, n := range counts {
		pt, err := runTenantPoint(n, nEdges/n, nQueries/n, chunk, batch)
		if err != nil {
			return fmt.Errorf("%d tenants: %w", n, err)
		}
		rep.Points = append(rep.Points, pt)
		fmt.Printf("# tenant bench: %d tenants, %d edges + %d queries each\n",
			n, pt.EdgesPerTenant, pt.QueriesPerTenant)
		fmt.Printf("ingest  %12.0f edges/s aggregate   (p50 %.2fms p99 %.2fms)\n",
			pt.AggEdgesPerSec, pt.IngestP50Ms, pt.IngestP99Ms)
		fmt.Printf("query   %12.0f queries/s aggregate (p50 %.2fms p99 %.2fms)\n",
			pt.AggQueriesPerSec, pt.QueryP50Ms, pt.QueryP99Ms)
		if pt.Reopens > 0 {
			fmt.Printf("churn   evict p50 %.2fms p99 %.2fms, reopen p50 %.2fms p99 %.2fms (%d evictions, %d reopens)\n",
				pt.EvictP50Ms, pt.EvictP99Ms, pt.ReopenP50Ms, pt.ReopenP99Ms, pt.Evictions, pt.Reopens)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// runTenantPoint measures one tenant count: the mixed HTTP load phases
// against an uncapped registry, then the eviction churn pass.
func runTenantPoint(n, edgesPer, queriesPer, chunk, batch int) (tenantPoint, error) {
	pt := tenantPoint{Tenants: n, EdgesPerTenant: edgesPer, QueriesPerTenant: queriesPer}
	if edgesPer < chunk {
		chunk = edgesPer
	}
	if queriesPer < batch {
		batch = queriesPer
	}
	if chunk < 1 || batch < 1 {
		return pt, fmt.Errorf("need at least one edge and one query per tenant (got %d, %d)", edgesPer, queriesPer)
	}

	dir, err := os.MkdirTemp("", "gsketch-bench-tenants-*")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)
	reg, err := tenant.New(tenant.Config{
		Dir:    dir,
		Sketch: gsketch.Config{TotalBytes: 1 << 20, Seed: 42},
		Ingest: gsketch.IngestConfig{BatchSize: 4096},
	})
	if err != nil {
		return pt, err
	}
	srv, err := server.New(server.Config{Tenants: reg})
	if err != nil {
		return pt, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: n + 1}}

	names := make([]string, n)
	streams := make([][]stream.Edge, n)
	for i := range names {
		names[i] = fmt.Sprintf("t%03d", i)
		streams[i] = tenantStream(edgesPer, i)
		if _, err := reg.Create(names[i], tenant.Overrides{}); err != nil {
			return pt, err
		}
	}

	// Mixed ingest phase: every tenant pushes its stream concurrently
	// through its own /t/{name}/ingest route.
	var wg sync.WaitGroup
	errs := make(chan error, n)
	ilats := make([][]float64, n)
	t0 := time.Now()
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &jsonWorker{d: &jsonDriver{base: base + "/t/" + names[i], client: client}}
			part := streams[i]
			for len(part) > 0 {
				m := chunk
				if m > len(part) {
					m = len(part)
				}
				r0 := time.Now()
				_, err := w.ingestChunk(part[:m])
				ilats[i] = append(ilats[i], time.Since(r0).Seconds()*1e3)
				if err != nil {
					errs <- fmt.Errorf("tenant %s ingest: %w", names[i], err)
					return
				}
				part = part[m:]
			}
			if err := w.flush(); err != nil {
				errs <- fmt.Errorf("tenant %s flush: %w", names[i], err)
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return pt, err
	default:
	}
	pt.IngestSeconds = time.Since(t0).Seconds()
	pt.AggEdgesPerSec = float64(n*edgesPer) / pt.IngestSeconds
	pt.IngestP50Ms, pt.IngestP99Ms = percentiles(ilats)

	// Mixed query phase over each tenant's own key population.
	batches := queriesPer / batch
	if batches < 1 {
		batches = 1
	}
	qlats := make([][]float64, n)
	t1 := time.Now()
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &jsonWorker{d: &jsonDriver{base: base + "/t/" + names[i], client: client}}
			qs := make([]core.EdgeQuery, batch)
			for b := 0; b < batches; b++ {
				for j := range qs {
					e := streams[i][(b*batch+j)%len(streams[i])]
					qs[j] = core.EdgeQuery{Src: e.Src, Dst: e.Dst}
				}
				r0 := time.Now()
				err := w.queryChunk(qs)
				qlats[i] = append(qlats[i], time.Since(r0).Seconds()*1e3)
				if err != nil {
					errs <- fmt.Errorf("tenant %s query: %w", names[i], err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return pt, err
	default:
	}
	pt.QuerySeconds = time.Since(t1).Seconds()
	pt.AggQueriesPerSec = float64(n*batches*batch) / pt.QuerySeconds
	pt.QueryP50Ms, pt.QueryP99Ms = percentiles(qlats)

	pt.PerTenant = make([]tenantLat, n)
	for i := range names {
		pt.PerTenant[i] = tenantLat{Name: names[i]}
		pt.PerTenant[i].IngestP50Ms, pt.PerTenant[i].IngestP99Ms = percentiles(ilats[i : i+1])
		pt.PerTenant[i].QueryP50Ms, pt.PerTenant[i].QueryP99Ms = percentiles(qlats[i : i+1])
	}
	sort.Slice(pt.PerTenant, func(a, b int) bool { return pt.PerTenant[a].Name < pt.PerTenant[b].Name })

	if n > 1 {
		if err := runTenantChurn(&pt, n); err != nil {
			return pt, err
		}
	}
	return pt, nil
}

// runTenantChurn measures the lifecycle cost directly: a registry capped
// at one resident engine, n tenants accessed round-robin, so every
// access after the first evicts the previous tenant (snapshot to disk)
// and reopens the next from its snapshot. The observer-fed durations
// are the evict/reopen latency columns of the report.
func runTenantChurn(pt *tenantPoint, n int) error {
	dir, err := os.MkdirTemp("", "gsketch-bench-tenant-churn-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	reg, err := tenant.New(tenant.Config{
		Dir:         dir,
		MaxResident: 1,
		Sketch:      gsketch.Config{TotalBytes: 1 << 20, Seed: 42},
		Ingest:      gsketch.IngestConfig{BatchSize: 4096},
	})
	if err != nil {
		return err
	}
	defer reg.Close()

	var mu sync.Mutex
	var reopenMs, evictMs []float64
	reg.AddObservers(
		func(d time.Duration) { mu.Lock(); reopenMs = append(reopenMs, d.Seconds()*1e3); mu.Unlock() },
		func(d time.Duration) { mu.Lock(); evictMs = append(evictMs, d.Seconds()*1e3); mu.Unlock() },
	)

	const bootstrapEdges = 2000
	handles := make([]*tenant.Handle, n)
	qs := make([]core.EdgeQuery, 0, 64)
	for i := range handles {
		name := fmt.Sprintf("t%03d", i)
		if _, err := reg.Create(name, tenant.Overrides{}); err != nil {
			return err
		}
		h, err := reg.Tenant(name)
		if err != nil {
			return err
		}
		handles[i] = h
		edges := tenantStream(bootstrapEdges, i)
		for lo := 0; lo < len(edges); {
			m, err := h.TryIngest(edges[lo:])
			lo += m
			if err != nil {
				return fmt.Errorf("churn bootstrap %s: %w", name, err)
			}
		}
		if i == 0 {
			for j := 0; j < 64; j++ {
				qs = append(qs, core.EdgeQuery{Src: edges[j].Src, Dst: edges[j].Dst})
			}
		}
	}

	const rounds = 8
	for r := 0; r < rounds; r++ {
		for _, h := range handles {
			if _, err := h.QueryBatch(qs); err != nil {
				return fmt.Errorf("churn query: %w", err)
			}
		}
	}

	mu.Lock()
	defer mu.Unlock()
	st := reg.RegistryStats()
	pt.Evictions = int(st.Evictions)
	pt.Reopens = int(st.Reopens)
	pt.EvictP50Ms, pt.EvictP99Ms = percentiles([][]float64{evictMs})
	pt.ReopenP50Ms, pt.ReopenP99Ms = percentiles([][]float64{reopenMs})
	return nil
}
