// Command gsketch-gen generates the synthetic graph-stream datasets used
// by the reproduction (DBLP-like co-authorship, IP-attack network, R-MAT)
// and writes them as text or binary edge files.
//
// Usage:
//
//	gsketch-gen -dataset dblp|ipattack|rmat [-out FILE] [-format text|binary]
//	            [-scale small|repro] [-seed N]
//
// Examples:
//
//	gsketch-gen -dataset rmat -scale small -out rmat.bin -format binary
//	gsketch-gen -dataset dblp -out - | head
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/graphstream/gsketch/internal/experiments"
	"github.com/graphstream/gsketch/internal/graphgen"
	"github.com/graphstream/gsketch/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "rmat", "dataset: dblp, ipattack or rmat")
		out     = flag.String("out", "-", "output file ('-' = stdout)")
		format  = flag.String("format", "text", "output format: text or binary")
		scale   = flag.String("scale", "small", "scale profile: small or repro")
		seed    = flag.Uint64("seed", 20111130, "generator seed")
	)
	flag.Parse()

	var profile experiments.Profile
	switch *scale {
	case "small":
		profile = experiments.Small
	case "repro":
		profile = experiments.Repro
	default:
		fatal("unknown scale %q", *scale)
	}

	var edges []stream.Edge
	var err error
	switch *dataset {
	case "dblp":
		cfg := graphgen.DBLPConfig{Authors: profile.DBLPAuthors, Papers: profile.DBLPPairs / 3, Seed: *seed}
		edges, err = cfg.Generate()
	case "ipattack":
		cfg := graphgen.DefaultIPAttack(profile.IPAttackers, profile.IPTargets, profile.IPPackets, *seed)
		edges, err = cfg.Generate()
	case "rmat":
		cfg := graphgen.DefaultRMAT(profile.RMATScale, profile.RMATEdges, *seed)
		edges, err = cfg.Generate()
	default:
		fatal("unknown dataset %q", *dataset)
	}
	if err != nil {
		fatal("generate: %v", err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("create: %v", err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = stream.WriteTextEdges(w, edges)
	case "binary":
		err = stream.WriteBinaryEdges(w, edges)
	default:
		fatal("unknown format %q", *format)
	}
	if err != nil {
		fatal("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "gsketch-gen: wrote %d edges (%s, %s scale)\n", len(edges), *dataset, *scale)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsketch-gen: "+format+"\n", args...)
	os.Exit(1)
}
