// Command gsketch-query builds a gSketch (or Global Sketch) over an edge
// file and answers edge queries from a query file or the command line.
//
// Usage:
//
//	gsketch-query -stream FILE [-queries FILE] [-edge "src dst"]
//	              [-memory BYTES] [-sample FRAC] [-global] [-save FILE]
//	              [-load FILE]
//
// The stream file may be text ("src dst [weight [time]]") or the binary
// format produced by gsketch-gen -format binary (auto-detected by
// extension .bin).
//
// Examples:
//
//	gsketch-gen -dataset rmat -out rmat.txt
//	gsketch-query -stream rmat.txt -edge "5 17" -memory 262144
//	gsketch-query -stream rmat.txt -queries q.txt -save sketch.gsk
//	gsketch-query -load sketch.gsk -edge "5 17"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/stream"
)

func main() {
	var (
		streamPath  = flag.String("stream", "", "edge file to summarize")
		queriesPath = flag.String("queries", "", "file of 'src dst' queries (text)")
		edge        = flag.String("edge", "", "single query: 'src dst'")
		memory      = flag.Int("memory", 1<<20, "sketch memory budget in bytes")
		sampleFrac  = flag.Float64("sample", 0.1, "data-sample fraction for partitioning")
		global      = flag.Bool("global", false, "use the Global Sketch baseline instead of gSketch")
		save        = flag.String("save", "", "save the populated gSketch to this file")
		load        = flag.String("load", "", "load a previously saved gSketch instead of building")
		seed        = flag.Uint64("seed", 42, "hash seed")
	)
	flag.Parse()

	var est gsketch.Estimator
	switch {
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			fatal("open: %v", err)
		}
		g, err := gsketch.Load(f)
		f.Close()
		if err != nil {
			fatal("load: %v", err)
		}
		est = g
	case *streamPath != "":
		edges := readEdges(*streamPath)
		cfg := gsketch.Config{TotalBytes: *memory, Seed: *seed}
		if *global {
			g, err := gsketch.NewGlobal(cfg)
			if err != nil {
				fatal("build: %v", err)
			}
			gsketch.Populate(g, edges)
			est = g
		} else {
			n := int(float64(len(edges)) * *sampleFrac)
			if n < 1 {
				n = 1
			}
			res := gsketch.NewReservoir(n, *seed+1)
			for _, e := range edges {
				res.Observe(e)
			}
			g, err := gsketch.New(cfg, res.Sample(), nil)
			if err != nil {
				fatal("build: %v", err)
			}
			gsketch.Populate(g, edges)
			fmt.Fprintf(os.Stderr, "gsketch-query: %d partitions over %d sampled vertices, %d bytes\n",
				g.NumPartitions(), len(res.Sample()), g.MemoryBytes())
			if *save != "" {
				f, err := os.Create(*save)
				if err != nil {
					fatal("create: %v", err)
				}
				if _, err := g.WriteTo(f); err != nil {
					fatal("save: %v", err)
				}
				if err := f.Close(); err != nil {
					fatal("save: %v", err)
				}
			}
			est = g
		}
	default:
		fatal("need -stream or -load (see -h)")
	}

	answer := func(src, dst uint64) {
		fmt.Printf("%d %d %d\n", src, dst, est.EstimateEdge(src, dst))
	}
	if *edge != "" {
		src, dst := parsePair(*edge)
		answer(src, dst)
	}
	if *queriesPath != "" {
		data, err := os.ReadFile(*queriesPath)
		if err != nil {
			fatal("queries: %v", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			src, dst := parsePair(line)
			answer(src, dst)
		}
	}
}

func readEdges(path string) []gsketch.Edge {
	f, err := os.Open(path)
	if err != nil {
		fatal("open: %v", err)
	}
	defer f.Close()
	var edges []gsketch.Edge
	if strings.HasSuffix(path, ".bin") {
		edges, err = stream.ReadBinaryEdges(f)
	} else {
		edges, err = stream.ReadTextEdges(f)
	}
	if err != nil {
		fatal("read: %v", err)
	}
	return edges
}

func parsePair(s string) (uint64, uint64) {
	var src, dst uint64
	if _, err := fmt.Sscanf(s, "%d %d", &src, &dst); err != nil {
		fatal("bad query %q: want 'src dst'", s)
	}
	return src, dst
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsketch-query: "+format+"\n", args...)
	os.Exit(1)
}
