// Command gsketch-query builds a gSketch (or Global Sketch) over an edge
// file and answers edge queries from a query file or the command line. All
// queries — from -edge and -queries combined — are answered in one batched
// EstimateBatch pass; -bounds additionally prints each answer's error
// bound, confidence and answering partition.
//
// Usage:
//
//	gsketch-query -stream FILE [-queries FILE] [-edge "src dst"] [-bounds]
//	              [-memory BYTES] [-sample FRAC] [-global] [-save FILE]
//	              [-load FILE]
//
// The stream file may be text ("src dst [weight [time]]") or the binary
// format produced by gsketch-gen -format binary (auto-detected by
// extension .bin).
//
// Output is one line per query: "src dst estimate", extended by -bounds to
// "src dst estimate ±bound confidence partition" where partition is a
// localized-sketch index, "outlier" or "global".
//
// Examples:
//
//	gsketch-gen -dataset rmat -out rmat.txt
//	gsketch-query -stream rmat.txt -edge "5 17" -memory 262144
//	gsketch-query -stream rmat.txt -queries q.txt -bounds -save sketch.gsk
//	gsketch-query -load sketch.gsk -edge "5 17"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/stream"
)

func main() {
	var (
		streamPath  = flag.String("stream", "", "edge file to summarize")
		queriesPath = flag.String("queries", "", "file of 'src dst' queries (text)")
		edge        = flag.String("edge", "", "single query: 'src dst'")
		bounds      = flag.Bool("bounds", false, "print error bound, confidence and answering partition per query")
		memory      = flag.Int("memory", 1<<20, "sketch memory budget in bytes")
		sampleFrac  = flag.Float64("sample", 0.1, "data-sample fraction for partitioning")
		global      = flag.Bool("global", false, "use the Global Sketch baseline instead of gSketch")
		save        = flag.String("save", "", "save the populated gSketch to this file")
		load        = flag.String("load", "", "load a previously saved gSketch instead of building")
		seed        = flag.Uint64("seed", 42, "hash seed")
	)
	flag.Parse()

	// Everything constructs through the one-handle engine: the bootstrap
	// source (snapshot, partitioned build or global baseline) is an Open
	// option, and ingest/query/save all go through the same handle.
	cfg := gsketch.Config{TotalBytes: *memory, Seed: *seed}
	var eng *gsketch.Engine
	var edges []gsketch.Edge
	switch {
	case *load != "":
		var err error
		eng, err = gsketch.Open(cfg, gsketch.WithRestoreFile(*load))
		if err != nil {
			fatal("load: %v", err)
		}
	case *streamPath != "":
		edges = readEdges(*streamPath)
		var err error
		if *global {
			eng, err = gsketch.Open(cfg, gsketch.WithGlobal())
		} else {
			n := int(float64(len(edges)) * *sampleFrac)
			if n < 1 {
				n = 1
			}
			res := gsketch.NewReservoir(n, *seed+1)
			for _, e := range edges {
				res.Observe(e)
			}
			eng, err = gsketch.Open(cfg, gsketch.WithSample(res.Sample()))
		}
		if err != nil {
			fatal("build: %v", err)
		}
		if err := eng.Ingest(context.Background(), edges...); err != nil {
			fatal("ingest: %v", err)
		}
		if !*global {
			st := eng.Stats()
			fmt.Fprintf(os.Stderr, "gsketch-query: %d shards, %d bytes\n",
				st.Partitions, st.MemoryBytes)
			if *save != "" {
				if _, err := eng.SaveSnapshot(*save); err != nil {
					fatal("save: %v", err)
				}
			}
		}
	default:
		fatal("need -stream or -load (see -h)")
	}
	defer eng.Close()

	// Collect every query — command-line edge plus the -queries file — and
	// answer them all with one batched, bound-carrying pass.
	var queries []gsketch.EdgeQuery
	if *edge != "" {
		src, dst := parsePair(*edge)
		queries = append(queries, gsketch.EdgeQuery{Src: src, Dst: dst})
	}
	if *queriesPath != "" {
		data, err := os.ReadFile(*queriesPath)
		if err != nil {
			fatal("queries: %v", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			src, dst := parsePair(line)
			queries = append(queries, gsketch.EdgeQuery{Src: src, Dst: dst})
		}
	}
	if len(queries) == 0 {
		return
	}
	results := eng.QueryBatch(queries)
	for i, q := range queries {
		r := results[i]
		if !*bounds {
			fmt.Printf("%d %d %d\n", q.Src, q.Dst, r.Estimate)
			continue
		}
		part := "global"
		switch {
		case r.Outlier:
			part = "outlier"
		case r.Partition != gsketch.NoPartition:
			part = fmt.Sprintf("p%d", r.Partition)
		}
		fmt.Printf("%d %d %d ±%.1f %.4f %s\n", q.Src, q.Dst, r.Estimate, r.ErrorBound, r.Confidence, part)
	}
}

func readEdges(path string) []gsketch.Edge {
	f, err := os.Open(path)
	if err != nil {
		fatal("open: %v", err)
	}
	defer f.Close()
	var edges []gsketch.Edge
	if strings.HasSuffix(path, ".bin") {
		edges, err = stream.ReadBinaryEdges(f)
	} else {
		edges, err = stream.ReadTextEdges(f)
	}
	if err != nil {
		fatal("read: %v", err)
	}
	return edges
}

func parsePair(s string) (uint64, uint64) {
	var src, dst uint64
	if _, err := fmt.Sscanf(s, "%d %d", &src, &dst); err != nil {
		fatal("bad query %q: want 'src dst'", s)
	}
	return src, dst
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsketch-query: "+format+"\n", args...)
	os.Exit(1)
}
