// Command gsketch-serve runs the gSketch serving subsystem: an HTTP/JSON
// frontend over a gsketch.Engine — the one-handle facade owning the sharded
// batch-ingest pipeline, the striped-lock estimator, snapshot persistence
// and live query-workload capture.
//
// Usage:
//
//	gsketch-serve -addr :7071 -sample edges.txt [-workload workload.txt]
//	gsketch-serve -addr :7071 -restore state.gsk
//	gsketch-serve -addr :7071 -global
//	gsketch-serve -addr :7071 -wire-addr :7072 -sample edges.txt
//
// Exactly one bootstrap source decides the estimator: -restore loads a
// snapshot, -sample builds a partitioned gSketch from an edge file (plus an
// optional -workload sample for the §4.2 objective), and -global runs the
// unpartitioned baseline (no sample needed, weaker per-partition bounds).
//
// Endpoints (see internal/server):
//
//	POST /ingest            NDJSON edges; 429 when the pipeline sheds load
//	POST /query             batched edge queries with error bounds
//	POST /query/window      time-range queries (with -window-span)
//	GET  /snapshot          stream the sketch state
//	POST /snapshot/save     persist a snapshot (default path: -snapshot)
//	POST /snapshot/restore  swap in a snapshot
//	GET  /workload          recorded query-workload sample (text edges)
//	POST /repartition       rebuild + hot-swap a new generation (-adapt)
//	POST /compact           fold the oldest frozen generations (-adapt)
//	GET  /healthz, /readyz  liveness / readiness (503 during state swaps)
//	GET  /stats, /metrics   JSON counters / Prometheus text exposition
//
// Logs are structured (log/slog): -log-level picks the floor
// (debug|info|warn|error), -log-format picks text or json. -pprof-addr
// mounts net/http/pprof on a separate private listener.
//
// With -wire-addr the same operations are additionally served as the
// binary wire protocol (see internal/wire) on a raw TCP listener —
// batched fixed-width frames with none of the JSON cost, driven by
// cmd/gsketch-wire or any client speaking the frame format. POST /ingest
// and /query also accept wire-framed bodies with Content-Type
// application/x-gsketch-wire.
//
// With -adapt the engine serves a generation chain: POST /repartition (or
// the -adapt-interval auto-trigger, when drift crosses -adapt-drift /
// -adapt-outlier) rebuilds the partitioning from the live data reservoir
// and the recorded query workload and hot-swaps it in as a new generation;
// queries keep answering over the whole stream with combined bounds, and
// snapshots carry the full chain.
//
// The chain's generation lifecycle is managed with the compaction, tiering
// and decay flags (all require -adapt). -compact-max-gens / -compact-age /
// -compact-mem set the background fold triggers (checked every
// -compact-interval; -compact-fold generations fold per pass, and the
// repartition manager also folds on demand before a rotation that would
// hit -adapt-max-gens, so the cap stops refusing). -tier-dir spills cold
// frozen generations to disk past -tier-resident resident ones, reloading
// them lazily on query. -decay-half-life down-weights frozen generations'
// contributions by 2^(-age/halfLife) at query time. POST /compact folds on
// demand.
//
// With -cluster the process runs as a scatter-gather coordinator instead
// of an engine: each listed address is one shard — a plain gsketch-serve
// -wire-addr process — and this frontend routes ingest by the gSketch
// partitioning (built from -sample, so every partition's substream lands
// wholly on one shard), fans queries out over persistent wire connections,
// and folds the per-shard answers into combined estimates and bounds.
// Coordinator mode serves the same /ingest, /query, /snapshot/save,
// /snapshot/restore, /healthz and /stats surface; engine-only endpoints
// (streaming GET /snapshot, /workload, /repartition, /query/window) are
// not mounted, so -restore, -global, -adapt and -window-span are refused.
// -snapshot names the local topology manifest; each shard persists to its
// own -snapshot path.
//
// With -tenants the process serves many isolated sketches from one
// registry (see internal/tenant): the data path moves under
// /t/{tenant}/... and an admin API (PUT|DELETE|GET /t/{tenant}, GET /t)
// manages the tenant set. Each tenant is an independent engine with its
// own quotas (-tenant-max-edges-per-sec / -tenant-burst registry-wide,
// overridable per tenant in the PUT body); -tenant-max-resident caps how
// many engines stay live — cold tenants are snapshotted into -tenant-dir
// and transparently reopened on access. On the wire listener, clients
// bind a connection to a tenant with a tenant-select frame (gsketch-wire
// -tenant). Engine-only flags (-restore, -global, -adapt, -window-span,
// -cluster) are refused; -sample optionally seeds every tenant's
// partitioning.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, the ingest
// queue drains, and (with -snapshot-on-exit) a final snapshot lands at
// -snapshot.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // handlers mounted on the -pprof-addr listener only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/cluster"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/obs"
	"github.com/graphstream/gsketch/internal/server"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/tenant"
)

// fatal logs at error level and exits; the slog replacement for
// log.Fatalf.
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		addr     = flag.String("addr", ":7071", "listen address")
		wireAddr = flag.String("wire-addr", "", "binary wire-protocol listen address (empty = disabled)")

		restorePath  = flag.String("restore", "", "bootstrap from this snapshot file")
		samplePath   = flag.String("sample", "", "bootstrap a partitioned gSketch from this edge file (text or binary)")
		workloadPath = flag.String("workload", "", "optional query-workload sample steering partitioning (§4.2)")
		global       = flag.Bool("global", false, "bootstrap the unpartitioned GlobalSketch baseline")
		sampleCap    = flag.Int("sample-cap", 1<<16, "max edges of -sample used for partitioning")

		totalBytes = flag.Int("bytes", 4<<20, "counter memory budget in bytes")
		depth      = flag.Int("depth", 0, "sketch depth d (0 = default)")
		seed       = flag.Uint64("seed", 42, "hash-family seed")
		partitions = flag.Int("partitions", 0, "partition cap (0 = unbounded)")

		workers   = flag.Int("workers", 0, "ingest workers (0 = GOMAXPROCS)")
		batchSize = flag.Int("batch", 0, "ingest batch size (0 = default 1024)")
		queue     = flag.Int("queue", 0, "ingest queue depth in batches (0 = 4x workers)")

		snapshotPath   = flag.String("snapshot", "gsketch.snap", "default snapshot path for /snapshot/save and -snapshot-on-exit")
		snapshotOnExit = flag.Bool("snapshot-on-exit", false, "save a final snapshot during graceful shutdown")

		workloadCap  = flag.Int("workload-cap", 4096, "query-workload reservoir capacity (negative disables capture)")
		windowSpan   = flag.Int64("window-span", 0, "enable the windowed store with this span (0 = disabled)")
		windowSample = flag.Int("window-sample", 1024, "per-window reservoir size for the windowed store")

		adaptOn       = flag.Bool("adapt", false, "serve a generation chain with adaptive repartitioning (POST /repartition; incompatible with -global)")
		adaptSample   = flag.Int("adapt-sample", 8192, "data-reservoir capacity feeding rebuilds (with -adapt)")
		adaptMaxGens  = flag.Int("adapt-max-gens", 8, "generation cap of the chain (with -adapt)")
		adaptInterval = flag.Duration("adapt-interval", 0, "auto-repartition check interval (0 = on-demand only)")
		adaptDrift    = flag.Float64("adapt-drift", 0.5, "workload-divergence threshold for auto repartitioning")
		adaptOutlier  = flag.Float64("adapt-outlier", 0.25, "outlier-share threshold for auto repartitioning")

		compactMaxGens  = flag.Int("compact-max-gens", 0, "fold old generations when the chain exceeds this length (0 = disabled; with -adapt)")
		compactAge      = flag.Duration("compact-age", 0, "fold when the oldest frozen generation exceeds this age (0 = disabled)")
		compactMem      = flag.Int64("compact-mem", 0, "fold when the chain's resident counter bytes exceed this (0 = disabled)")
		compactFold     = flag.Int("compact-fold", 0, "generations folded per compaction (0 = default 2)")
		compactInterval = flag.Duration("compact-interval", 0, "background compaction check interval (0 = default 30s)")
		tierDir         = flag.String("tier-dir", "", "spill cold frozen generations to files under this directory (with -adapt)")
		tierResident    = flag.Int("tier-resident", 0, "max frozen generations kept resident in RAM with -tier-dir")
		decayHalfLife   = flag.Duration("decay-half-life", 0, "age-decay half-life for frozen generations at query time (0 = disabled)")

		tenantsOn     = flag.Bool("tenants", false, "serve a multi-tenant registry: data path under /t/{tenant}/..., admin API at /t")
		tenantDir     = flag.String("tenant-dir", "tenants", "tenant registry root: manifest plus one snapshot dir per tenant (with -tenants)")
		tenantMaxRes  = flag.Int("tenant-max-resident", 0, "max tenants with a live engine; LRU-evict to disk past it (0 = unlimited)")
		tenantMaxRate = flag.Float64("tenant-max-edges-per-sec", 0, "default per-tenant ingest rate cap (0 = unlimited)")
		tenantBurst   = flag.Int("tenant-burst", 0, "default per-tenant token-bucket burst (0 = one second of rate)")

		clusterAddrs = flag.String("cluster", "", "comma-separated shard wire addresses; run as a scatter-gather coordinator (needs -sample)")
		clusterBatch = flag.Int("cluster-batch", 0, "coordinator per-shard ingest batch in edges (0 = default)")
		clusterQueue = flag.Int("cluster-queue", 0, "coordinator per-shard queue depth in batches (0 = default)")
		clusterPing  = flag.Duration("cluster-ping", 0, "shard health-probe interval (0 = default, negative disables)")

		shutdownTimeout = flag.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown deadline")

		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsketch-serve: %v\n", err)
		os.Exit(2)
	}
	// root stays untagged: server and cluster attach their own component
	// attrs; main's own lines carry component=serve.
	root := logger
	logger = logger.With("component", "serve")
	if *pprofAddr != "" {
		// net/http/pprof registers on DefaultServeMux at init; the serving
		// mux is separate, so profiling stays off the public listener.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	cfg := gsketch.Config{
		TotalBytes:    *totalBytes,
		Depth:         *depth,
		Seed:          *seed,
		MaxPartitions: *partitions,
	}

	if *tenantsOn {
		runTenants(logger, root, tenantFlags{
			addr:        *addr,
			wireAddr:    *wireAddr,
			dir:         *tenantDir,
			maxResident: *tenantMaxRes,
			maxRate:     *tenantMaxRate,
			burst:       *tenantBurst,
			sketch:      cfg,
			samplePath:  *samplePath,
			sampleCap:   *sampleCap,
			ingest:      gsketch.IngestConfig{Workers: *workers, BatchSize: *batchSize, QueueDepth: *queue},
			shutdown:    *shutdownTimeout,

			restore:    *restorePath != "",
			global:     *global,
			adapt:      *adaptOn,
			windowSpan: *windowSpan,
			cluster:    *clusterAddrs != "",
		})
		return
	}
	if *clusterAddrs != "" {
		runCoordinator(logger, root, coordinatorFlags{
			addr:           *addr,
			wireAddr:       *wireAddr,
			shards:         strings.Split(*clusterAddrs, ","),
			sketch:         cfg,
			samplePath:     *samplePath,
			workloadPath:   *workloadPath,
			sampleCap:      *sampleCap,
			batchEdges:     *clusterBatch,
			queueBatches:   *clusterQueue,
			pingInterval:   *clusterPing,
			snapshotPath:   *snapshotPath,
			snapshotOnExit: *snapshotOnExit,
			shutdown:       *shutdownTimeout,

			restore:    *restorePath != "",
			global:     *global,
			adapt:      *adaptOn,
			windowSpan: *windowSpan,
		})
		return
	}
	opts, err := engineOptions(cfg, bootstrapFlags{
		restorePath:  *restorePath,
		samplePath:   *samplePath,
		workloadPath: *workloadPath,
		global:       *global,
		sampleCap:    *sampleCap,
		adapt:        *adaptOn,
		adaptSample:  *adaptSample,
		adaptMaxGens: *adaptMaxGens,
		adaptDrift:   *adaptDrift,
		adaptOutlier: *adaptOutlier,
		seed:         *seed,
	})
	if err != nil {
		fatal(logger, "bootstrap failed", "error", err)
	}

	opts = append(opts,
		gsketch.WithIngest(gsketch.IngestConfig{Workers: *workers, BatchSize: *batchSize, QueueDepth: *queue}),
		gsketch.WithSnapshotFile(*snapshotPath),
	)
	if *workloadCap >= 0 {
		rcap := *workloadCap
		if rcap == 0 { // pre-Engine behavior: 0 falls through to the default
			rcap = 4096
		}
		opts = append(opts, gsketch.WithWorkloadRecorder(rcap, *seed))
	}
	if *windowSpan > 0 {
		opts = append(opts, gsketch.WithWindows(gsketch.WindowConfig{
			Span:       *windowSpan,
			SampleSize: *windowSample,
			Sketch:     cfg,
			Seed:       *seed,
		}))
	}
	if *adaptInterval > 0 {
		opts = append(opts, gsketch.WithAutoRepartition(*adaptInterval, func(err error) {
			logger.Warn("auto repartition failed", "error", err)
		}))
	}
	if *compactMaxGens > 0 || *compactAge > 0 || *compactMem > 0 || *compactFold > 0 {
		opts = append(opts, gsketch.WithCompaction(gsketch.CompactionPolicy{
			MaxGenerations: *compactMaxGens,
			MaxAge:         *compactAge,
			MaxMemoryBytes: *compactMem,
			Fold:           *compactFold,
			Interval:       *compactInterval,
		}, func(err error) {
			logger.Warn("background compaction failed", "error", err)
		}))
	}
	if *tierDir != "" {
		opts = append(opts, gsketch.WithTiering(*tierDir, *tierResident))
	}
	if *decayHalfLife > 0 {
		opts = append(opts, gsketch.WithDecay(*decayHalfLife))
	}

	eng, err := gsketch.Open(cfg, opts...)
	if err != nil {
		if errors.Is(err, gsketch.ErrNotAdaptive) {
			fatal(logger, "snapshot carries a generation chain; run with -adapt to serve it", "error", err)
		}
		fatal(logger, "engine open failed", "error", err)
	}
	st := eng.Stats()
	if g := eng.Sketch(); g != nil {
		logger.Info("engine up",
			"generations", eng.Generations(),
			"partitions", g.NumPartitions(),
			"order", fmt.Sprint(g.Order()),
			"stream_total", st.StreamTotal,
			"memory_bytes", st.MemoryBytes)
	} else {
		logger.Info("engine up (global baseline)",
			"stream_total", st.StreamTotal, "memory_bytes", st.MemoryBytes)
	}

	srv, err := server.New(server.Config{
		Engine:             eng,
		SnapshotOnShutdown: *snapshotOnExit,
		Logger:             root,
	})
	if err != nil {
		fatal(logger, "server init failed", "error", err)
	}

	serveUntilSignal(logger, srv, *addr, *wireAddr, *shutdownTimeout)
}

// serveUntilSignal runs the HTTP (and optional wire) listeners until
// SIGINT/SIGTERM, then drains through srv.Shutdown. Shared by the engine
// and coordinator paths.
func serveUntilSignal(logger *slog.Logger, srv *server.Server, addr, wireAddr string, shutdownTimeout time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 2)
	listeners := 1
	go func() { errc <- srv.ListenAndServe(addr) }()
	logger.Info("listening", "addr", addr)
	if wireAddr != "" {
		listeners++
		go func() { errc <- srv.ListenAndServeWire(wireAddr) }()
		logger.Info("wire protocol listening", "addr", wireAddr)
	}

	select {
	case <-ctx.Done():
		logger.Info("signal received, draining", "timeout", shutdownTimeout.String())
		sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fatal(logger, "shutdown failed", "error", err)
		}
		for i := 0; i < listeners; i++ {
			<-errc // both listeners return ErrServerClosed after Shutdown
		}
		logger.Info("drained, bye")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "listener failed", "error", err)
		}
	}
}

// tenantFlags is the -tenants slice of the flag set, plus the
// incompatible modes tenant mode must refuse.
type tenantFlags struct {
	addr, wireAddr string
	dir            string
	maxResident    int
	maxRate        float64
	burst          int
	sketch         gsketch.Config
	samplePath     string
	sampleCap      int
	ingest         gsketch.IngestConfig
	shutdown       time.Duration

	restore    bool
	global     bool
	adapt      bool
	windowSpan int64
	cluster    bool
}

// runTenants opens (or resumes) the tenant registry and serves the
// tenant-scoped surface until a signal.
func runTenants(logger, root *slog.Logger, f tenantFlags) {
	switch {
	case f.cluster:
		fatal(logger, "-tenants and -cluster are mutually exclusive; shard tenants behind a coordinator per tenant set instead")
	case f.restore:
		fatal(logger, "-tenants restores each tenant from its own snapshot directory; -restore is engine-only")
	case f.global:
		fatal(logger, "-tenants engines must snapshot for eviction; -global is engine-only")
	case f.adapt:
		fatal(logger, "-adapt is engine-only")
	case f.windowSpan != 0:
		fatal(logger, "-window-span is engine-only")
	}
	var sample []stream.Edge
	if f.samplePath != "" {
		var err error
		if sample, err = readEdgeFile(f.samplePath); err != nil {
			fatal(logger, "sample read failed", "path", f.samplePath, "error", err)
		}
		if len(sample) > f.sampleCap {
			sample = sample[:f.sampleCap]
		}
	}
	reg, err := tenant.New(tenant.Config{
		Dir:         f.dir,
		MaxResident: f.maxResident,
		Sketch:      f.sketch,
		Sample:      sample,
		Ingest:      f.ingest,
		Quotas:      tenant.Quotas{MaxEdgesPerSec: f.maxRate, Burst: f.burst},
	})
	if err != nil {
		fatal(logger, "tenant registry open failed", "dir", f.dir, "error", err)
	}
	logger.Info("tenant registry up",
		"dir", f.dir,
		"tenants", reg.RegistryStats().Tenants,
		"max_resident", f.maxResident)

	srv, err := server.New(server.Config{Tenants: reg, Logger: root})
	if err != nil {
		fatal(logger, "server init failed", "error", err)
	}
	serveUntilSignal(logger, srv, f.addr, f.wireAddr, f.shutdown)
}

// coordinatorFlags is the -cluster slice of the flag set, plus the
// engine-only flags coordinator mode must refuse.
type coordinatorFlags struct {
	addr, wireAddr string
	shards         []string
	sketch         gsketch.Config
	samplePath     string
	workloadPath   string
	sampleCap      int
	batchEdges     int
	queueBatches   int
	pingInterval   time.Duration
	snapshotPath   string
	snapshotOnExit bool
	shutdown       time.Duration

	restore    bool
	global     bool
	adapt      bool
	windowSpan int64
}

// runCoordinator builds the routing gSketch from the sample, connects the
// scatter-gather coordinator to every shard and serves until a signal.
func runCoordinator(logger, root *slog.Logger, f coordinatorFlags) {
	switch {
	case f.restore:
		fatal(logger, "-cluster routes to shards that restore their own snapshots; -restore is engine-only")
	case f.global:
		fatal(logger, "-cluster needs the partitioned router; -global is engine-only")
	case f.adapt:
		fatal(logger, "-adapt is engine-only (shards repartition, the coordinator's routing is static)")
	case f.windowSpan != 0:
		fatal(logger, "-window-span is engine-only")
	case f.samplePath == "":
		fatal(logger, "-cluster needs -sample to build the vertex router")
	}

	sample, err := readEdgeFile(f.samplePath)
	if err != nil {
		fatal(logger, "sample read failed", "path", f.samplePath, "error", err)
	}
	if len(sample) > f.sampleCap {
		sample = sample[:f.sampleCap]
	}
	var workload []stream.Edge
	if f.workloadPath != "" {
		if workload, err = readEdgeFile(f.workloadPath); err != nil {
			fatal(logger, "workload read failed", "path", f.workloadPath, "error", err)
		}
	}
	// The router is a zero-traffic gSketch: only its partitioning (the
	// vertex → partition map) is used, so every shard must be built from
	// the same sample, config and seed to agree with it.
	router, err := core.BuildGSketch(f.sketch, sample, workload)
	if err != nil {
		fatal(logger, "router build failed", "error", err)
	}

	coord, err := cluster.New(cluster.Config{
		Addrs:        f.shards,
		Router:       router,
		BatchEdges:   f.batchEdges,
		QueueBatches: f.queueBatches,
		PingInterval: f.pingInterval,
		SnapshotPath: f.snapshotPath,
		Logger:       root,
	})
	if err != nil {
		fatal(logger, "cluster connect failed", "error", err)
	}
	logger.Info("coordinator up",
		"shards", coord.NumShards(),
		"partitions", router.NumPartitions(),
		"order", fmt.Sprint(router.Order()))

	srv, err := server.New(server.Config{
		Cluster:            coord,
		SnapshotOnShutdown: f.snapshotOnExit,
		Logger:             root,
	})
	if err != nil {
		fatal(logger, "server init failed", "error", err)
	}
	serveUntilSignal(logger, srv, f.addr, f.wireAddr, f.shutdown)
}

// bootstrapFlags is the bootstrap slice of the flag set.
type bootstrapFlags struct {
	restorePath, samplePath, workloadPath string
	global                                bool
	sampleCap                             int
	adapt                                 bool
	adaptSample, adaptMaxGens             int
	adaptDrift, adaptOutlier              float64
	seed                                  uint64
}

// engineOptions resolves exactly one bootstrap source (plus the adaptive
// wiring) into gsketch.Open options.
func engineOptions(cfg gsketch.Config, f bootstrapFlags) ([]gsketch.Option, error) {
	set := 0
	for _, on := range []bool{f.restorePath != "", f.samplePath != "", f.global} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("pick exactly one of -restore, -sample or -global")
	}

	var opts []gsketch.Option
	var workload []stream.Edge

	switch {
	case f.restorePath != "":
		opts = append(opts, gsketch.WithRestoreFile(f.restorePath))
	case f.global:
		if f.adapt {
			return nil, errors.New("-adapt needs a partitioned gSketch; it is incompatible with -global")
		}
		opts = append(opts, gsketch.WithGlobal())
	default:
		sample, err := readEdgeFile(f.samplePath)
		if err != nil {
			return nil, fmt.Errorf("sample %s: %w", f.samplePath, err)
		}
		if len(sample) > f.sampleCap {
			sample = sample[:f.sampleCap]
		}
		if f.workloadPath != "" {
			workload, err = readEdgeFile(f.workloadPath)
			if err != nil {
				return nil, fmt.Errorf("workload %s: %w", f.workloadPath, err)
			}
		}
		opts = append(opts, gsketch.WithSample(sample))
		if workload != nil {
			opts = append(opts, gsketch.WithWorkloadSample(workload))
		}
	}

	if f.adapt {
		opts = append(opts, gsketch.WithAdaptive(
			gsketch.ChainConfig{
				SampleSize:     f.adaptSample,
				Seed:           f.seed,
				MaxGenerations: f.adaptMaxGens,
			},
			gsketch.AdaptConfig{
				Sketch:           cfg,
				DriftThreshold:   f.adaptDrift,
				OutlierThreshold: f.adaptOutlier,
				Baseline:         workload,
			},
		))
	}
	return opts, nil
}

// readEdgeFile loads a text or binary edge file, sniffing the "GSED" magic.
func readEdgeFile(path string) ([]stream.Edge, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 4 && binary.LittleEndian.Uint32(raw) == 0x47534544 {
		return stream.ReadBinaryEdges(bytes.NewReader(raw))
	}
	return stream.ReadTextEdges(bytes.NewReader(raw))
}
