// Command gsketch-serve runs the gSketch serving subsystem: an HTTP/JSON
// frontend over the sharded batch-ingest pipeline and the striped-lock
// estimator, with snapshot persistence and live query-workload capture.
//
// Usage:
//
//	gsketch-serve -addr :7071 -sample edges.txt [-workload workload.txt]
//	gsketch-serve -addr :7071 -restore state.gsk
//	gsketch-serve -addr :7071 -global
//
// Exactly one bootstrap source decides the estimator: -restore loads a
// snapshot, -sample builds a partitioned gSketch from an edge file (plus an
// optional -workload sample for the §4.2 objective), and -global runs the
// unpartitioned baseline (no sample needed, weaker per-partition bounds).
//
// Endpoints (see internal/server):
//
//	POST /ingest            NDJSON edges; 429 when the pipeline sheds load
//	POST /query             batched edge queries with error bounds
//	POST /query/window      time-range queries (with -window-span)
//	GET  /snapshot          stream the sketch state
//	POST /snapshot/save     persist a snapshot (default path: -snapshot)
//	POST /snapshot/restore  swap in a snapshot
//	GET  /workload          recorded query-workload sample (text edges)
//	POST /repartition       rebuild + hot-swap a new generation (-adapt)
//	GET  /healthz, /stats   liveness and counters
//
// With -adapt the estimator is a generation chain: POST /repartition (or
// the -adapt-interval auto-trigger, when drift crosses -adapt-drift /
// -adapt-outlier) rebuilds the partitioning from the live data reservoir
// and the recorded query workload and hot-swaps it in as a new generation;
// queries keep answering over the whole stream with combined bounds, and
// snapshots carry the full chain.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, the ingest
// queue drains, and (with -snapshot-on-exit) a final snapshot lands at
// -snapshot.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/graphstream/gsketch/internal/adapt"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/server"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/window"
)

func main() {
	var (
		addr = flag.String("addr", ":7071", "listen address")

		restorePath  = flag.String("restore", "", "bootstrap from this snapshot file")
		samplePath   = flag.String("sample", "", "bootstrap a partitioned gSketch from this edge file (text or binary)")
		workloadPath = flag.String("workload", "", "optional query-workload sample steering partitioning (§4.2)")
		global       = flag.Bool("global", false, "bootstrap the unpartitioned GlobalSketch baseline")
		sampleCap    = flag.Int("sample-cap", 1<<16, "max edges of -sample used for partitioning")

		totalBytes = flag.Int("bytes", 4<<20, "counter memory budget in bytes")
		depth      = flag.Int("depth", 0, "sketch depth d (0 = default)")
		seed       = flag.Uint64("seed", 42, "hash-family seed")
		partitions = flag.Int("partitions", 0, "partition cap (0 = unbounded)")

		workers   = flag.Int("workers", 0, "ingest workers (0 = GOMAXPROCS)")
		batchSize = flag.Int("batch", 0, "ingest batch size (0 = default 1024)")
		queue     = flag.Int("queue", 0, "ingest queue depth in batches (0 = 4x workers)")

		snapshotPath   = flag.String("snapshot", "gsketch.snap", "default snapshot path for /snapshot/save and -snapshot-on-exit")
		snapshotOnExit = flag.Bool("snapshot-on-exit", false, "save a final snapshot during graceful shutdown")

		workloadCap  = flag.Int("workload-cap", 4096, "query-workload reservoir capacity (negative disables capture)")
		windowSpan   = flag.Int64("window-span", 0, "enable the windowed store with this span (0 = disabled)")
		windowSample = flag.Int("window-sample", 1024, "per-window reservoir size for the windowed store")

		adaptOn       = flag.Bool("adapt", false, "serve a generation chain with adaptive repartitioning (POST /repartition; incompatible with -global)")
		adaptSample   = flag.Int("adapt-sample", 8192, "data-reservoir capacity feeding rebuilds (with -adapt)")
		adaptMaxGens  = flag.Int("adapt-max-gens", 8, "generation cap of the chain (with -adapt)")
		adaptInterval = flag.Duration("adapt-interval", 0, "auto-repartition check interval (0 = on-demand only)")
		adaptDrift    = flag.Float64("adapt-drift", 0.5, "workload-divergence threshold for auto repartitioning")
		adaptOutlier  = flag.Float64("adapt-outlier", 0.25, "outlier-share threshold for auto repartitioning")

		shutdownTimeout = flag.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown deadline")
	)
	flag.Parse()

	cfg := core.Config{
		TotalBytes:    *totalBytes,
		Depth:         *depth,
		Seed:          *seed,
		MaxPartitions: *partitions,
	}
	var chainCfg *adapt.ChainConfig
	if *adaptOn {
		chainCfg = &adapt.ChainConfig{
			SampleSize:     *adaptSample,
			Seed:           *seed,
			MaxGenerations: *adaptMaxGens,
		}
	}
	est, workload, err := bootstrap(cfg, *restorePath, *samplePath, *workloadPath, *global, *sampleCap, chainCfg)
	if err != nil {
		log.Fatalf("gsketch-serve: %v", err)
	}

	var win *window.Store
	if *windowSpan > 0 {
		win, err = window.NewStore(window.StoreConfig{
			Span:       *windowSpan,
			SampleSize: *windowSample,
			Sketch:     cfg,
			Seed:       *seed,
		})
		if err != nil {
			log.Fatalf("gsketch-serve: window store: %v", err)
		}
	}

	srv, err := server.New(server.Config{
		Estimator:          est,
		Ingest:             ingest.Config{Workers: *workers, BatchSize: *batchSize, QueueDepth: *queue},
		SnapshotPath:       *snapshotPath,
		SnapshotOnShutdown: *snapshotOnExit,
		WorkloadSampleSize: *workloadCap,
		WorkloadSeed:       *seed,
		Window:             win,
		Adapt: adapt.ManagerConfig{
			Sketch:           cfg,
			DriftThreshold:   *adaptDrift,
			OutlierThreshold: *adaptOutlier,
			Baseline:         workload,
		},
		AdaptInterval: *adaptInterval,
	})
	if err != nil {
		log.Fatalf("gsketch-serve: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	log.Printf("gsketch-serve: listening on %s", *addr)

	select {
	case <-ctx.Done():
		log.Printf("gsketch-serve: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatalf("gsketch-serve: shutdown: %v", err)
		}
		<-errc // ListenAndServe returns ErrServerClosed after Shutdown
		log.Printf("gsketch-serve: drained, bye")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("gsketch-serve: %v", err)
		}
	}
}

// bootstrap resolves the estimator from exactly one of the three sources.
// With a non-nil chainCfg (-adapt) the result is a generation chain: a
// restored snapshot keeps every generation it carries, a sample-built
// sketch starts a fresh single-generation chain. It also returns the
// workload sample used for partitioning, if any — the drift baseline.
func bootstrap(cfg core.Config, restorePath, samplePath, workloadPath string, global bool, sampleCap int, chainCfg *adapt.ChainConfig) (core.Estimator, []stream.Edge, error) {
	set := 0
	for _, on := range []bool{restorePath != "", samplePath != "", global} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, nil, errors.New("pick exactly one of -restore, -sample or -global")
	}

	switch {
	case restorePath != "":
		f, err := os.Open(restorePath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		gens, err := core.ReadChain(f)
		if err != nil {
			return nil, nil, fmt.Errorf("restore %s: %w", restorePath, err)
		}
		if chainCfg != nil {
			chain := adapt.NewChainFrom(gens, *chainCfg)
			log.Printf("gsketch-serve: restored %s (%d generations, %d head partitions, stream total %d)",
				restorePath, chain.Generations(), chain.Head().NumPartitions(), chain.Count())
			return chain, nil, nil
		}
		if len(gens) != 1 {
			return nil, nil, fmt.Errorf("restore %s: snapshot carries %d generations; run with -adapt to serve it", restorePath, len(gens))
		}
		g := gens[0]
		log.Printf("gsketch-serve: restored %s (%d partitions, stream total %d)",
			restorePath, g.NumPartitions(), g.Count())
		return g, nil, nil

	case global:
		if chainCfg != nil {
			return nil, nil, errors.New("-adapt needs a partitioned gSketch; it is incompatible with -global")
		}
		gl, err := core.BuildGlobalSketch(cfg)
		return gl, nil, err

	default:
		sample, err := readEdgeFile(samplePath)
		if err != nil {
			return nil, nil, fmt.Errorf("sample %s: %w", samplePath, err)
		}
		if len(sample) > sampleCap {
			sample = sample[:sampleCap]
		}
		var workload []stream.Edge
		if workloadPath != "" {
			workload, err = readEdgeFile(workloadPath)
			if err != nil {
				return nil, nil, fmt.Errorf("workload %s: %w", workloadPath, err)
			}
		}
		g, err := core.BuildGSketch(cfg, sample, workload)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("gsketch-serve: partitioned over %d sample edges → %d partitions (order %v)",
			len(sample), g.NumPartitions(), g.Order())
		if chainCfg != nil {
			return adapt.NewChain(g, *chainCfg), workload, nil
		}
		return g, workload, nil
	}
}

// readEdgeFile loads a text or binary edge file, sniffing the "GSED" magic.
func readEdgeFile(path string) ([]stream.Edge, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 4 && binary.LittleEndian.Uint32(raw) == 0x47534544 {
		return stream.ReadBinaryEdges(bytes.NewReader(raw))
	}
	return stream.ReadTextEdges(bytes.NewReader(raw))
}
