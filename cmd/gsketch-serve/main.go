// Command gsketch-serve runs the gSketch serving subsystem: an HTTP/JSON
// frontend over the sharded batch-ingest pipeline and the striped-lock
// estimator, with snapshot persistence and live query-workload capture.
//
// Usage:
//
//	gsketch-serve -addr :7071 -sample edges.txt [-workload workload.txt]
//	gsketch-serve -addr :7071 -restore state.gsk
//	gsketch-serve -addr :7071 -global
//
// Exactly one bootstrap source decides the estimator: -restore loads a
// snapshot, -sample builds a partitioned gSketch from an edge file (plus an
// optional -workload sample for the §4.2 objective), and -global runs the
// unpartitioned baseline (no sample needed, weaker per-partition bounds).
//
// Endpoints (see internal/server):
//
//	POST /ingest            NDJSON edges; 429 when the pipeline sheds load
//	POST /query             batched edge queries with error bounds
//	POST /query/window      time-range queries (with -window-span)
//	GET  /snapshot          stream the sketch state
//	POST /snapshot/save     persist a snapshot (default path: -snapshot)
//	POST /snapshot/restore  swap in a snapshot
//	GET  /workload          recorded query-workload sample (text edges)
//	GET  /healthz, /stats   liveness and counters
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, the ingest
// queue drains, and (with -snapshot-on-exit) a final snapshot lands at
// -snapshot.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/server"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/window"
)

func main() {
	var (
		addr = flag.String("addr", ":7071", "listen address")

		restorePath  = flag.String("restore", "", "bootstrap from this snapshot file")
		samplePath   = flag.String("sample", "", "bootstrap a partitioned gSketch from this edge file (text or binary)")
		workloadPath = flag.String("workload", "", "optional query-workload sample steering partitioning (§4.2)")
		global       = flag.Bool("global", false, "bootstrap the unpartitioned GlobalSketch baseline")
		sampleCap    = flag.Int("sample-cap", 1<<16, "max edges of -sample used for partitioning")

		totalBytes = flag.Int("bytes", 4<<20, "counter memory budget in bytes")
		depth      = flag.Int("depth", 0, "sketch depth d (0 = default)")
		seed       = flag.Uint64("seed", 42, "hash-family seed")
		partitions = flag.Int("partitions", 0, "partition cap (0 = unbounded)")

		workers   = flag.Int("workers", 0, "ingest workers (0 = GOMAXPROCS)")
		batchSize = flag.Int("batch", 0, "ingest batch size (0 = default 1024)")
		queue     = flag.Int("queue", 0, "ingest queue depth in batches (0 = 4x workers)")

		snapshotPath   = flag.String("snapshot", "gsketch.snap", "default snapshot path for /snapshot/save and -snapshot-on-exit")
		snapshotOnExit = flag.Bool("snapshot-on-exit", false, "save a final snapshot during graceful shutdown")

		workloadCap  = flag.Int("workload-cap", 4096, "query-workload reservoir capacity (negative disables capture)")
		windowSpan   = flag.Int64("window-span", 0, "enable the windowed store with this span (0 = disabled)")
		windowSample = flag.Int("window-sample", 1024, "per-window reservoir size for the windowed store")

		shutdownTimeout = flag.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown deadline")
	)
	flag.Parse()

	cfg := core.Config{
		TotalBytes:    *totalBytes,
		Depth:         *depth,
		Seed:          *seed,
		MaxPartitions: *partitions,
	}
	est, err := bootstrap(cfg, *restorePath, *samplePath, *workloadPath, *global, *sampleCap)
	if err != nil {
		log.Fatalf("gsketch-serve: %v", err)
	}

	var win *window.Store
	if *windowSpan > 0 {
		win, err = window.NewStore(window.StoreConfig{
			Span:       *windowSpan,
			SampleSize: *windowSample,
			Sketch:     cfg,
			Seed:       *seed,
		})
		if err != nil {
			log.Fatalf("gsketch-serve: window store: %v", err)
		}
	}

	srv, err := server.New(server.Config{
		Estimator:          est,
		Ingest:             ingest.Config{Workers: *workers, BatchSize: *batchSize, QueueDepth: *queue},
		SnapshotPath:       *snapshotPath,
		SnapshotOnShutdown: *snapshotOnExit,
		WorkloadSampleSize: *workloadCap,
		WorkloadSeed:       *seed,
		Window:             win,
	})
	if err != nil {
		log.Fatalf("gsketch-serve: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	log.Printf("gsketch-serve: listening on %s", *addr)

	select {
	case <-ctx.Done():
		log.Printf("gsketch-serve: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatalf("gsketch-serve: shutdown: %v", err)
		}
		<-errc // ListenAndServe returns ErrServerClosed after Shutdown
		log.Printf("gsketch-serve: drained, bye")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("gsketch-serve: %v", err)
		}
	}
}

// bootstrap resolves the estimator from exactly one of the three sources.
func bootstrap(cfg core.Config, restorePath, samplePath, workloadPath string, global bool, sampleCap int) (core.Estimator, error) {
	set := 0
	for _, on := range []bool{restorePath != "", samplePath != "", global} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("pick exactly one of -restore, -sample or -global")
	}

	switch {
	case restorePath != "":
		f, err := os.Open(restorePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := core.ReadGSketch(f)
		if err != nil {
			return nil, fmt.Errorf("restore %s: %w", restorePath, err)
		}
		log.Printf("gsketch-serve: restored %s (%d partitions, stream total %d)",
			restorePath, g.NumPartitions(), g.Count())
		return g, nil

	case global:
		return core.BuildGlobalSketch(cfg)

	default:
		sample, err := readEdgeFile(samplePath)
		if err != nil {
			return nil, fmt.Errorf("sample %s: %w", samplePath, err)
		}
		if len(sample) > sampleCap {
			sample = sample[:sampleCap]
		}
		var workload []stream.Edge
		if workloadPath != "" {
			workload, err = readEdgeFile(workloadPath)
			if err != nil {
				return nil, fmt.Errorf("workload %s: %w", workloadPath, err)
			}
		}
		g, err := core.BuildGSketch(cfg, sample, workload)
		if err != nil {
			return nil, err
		}
		log.Printf("gsketch-serve: partitioned over %d sample edges → %d partitions (order %v)",
			len(sample), g.NumPartitions(), g.Order())
		return g, nil
	}
}

// readEdgeFile loads a text or binary edge file, sniffing the "GSED" magic.
func readEdgeFile(path string) ([]stream.Edge, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 4 && binary.LittleEndian.Uint32(raw) == 0x47534544 {
		return stream.ReadBinaryEdges(bytes.NewReader(raw))
	}
	return stream.ReadTextEdges(bytes.NewReader(raw))
}
