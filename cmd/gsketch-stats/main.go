// Command gsketch-stats prints the §6.1 dataset statistics for an edge
// file — stream volume, distinct edges, sources, and the variance ratio
// σ_G/σ_V that quantifies the local-similarity property gSketch exploits —
// or inspects a sketch snapshot.
//
// Usage:
//
//	gsketch-stats -stream FILE
//	gsketch-stats -snapshot FILE
//
// -snapshot accepts any snapshot the engine writes: a single sketch, or a
// generation-chain container (version 2, 3 or 4). For a chain it prints one
// line per generation — stream volume, counter bytes, partition count, the
// build timestamp and how many source generations compaction folded into it
// (version-4 snapshots carry these lifecycle records; older versions print
// blanks).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

func main() {
	streamPath := flag.String("stream", "", "edge file to analyze")
	snapshotPath := flag.String("snapshot", "", "sketch or chain snapshot to inspect")
	flag.Parse()
	if (*streamPath == "") == (*snapshotPath == "") {
		fatal("need exactly one of -stream or -snapshot (see -h)")
	}
	if *snapshotPath != "" {
		snapshotStats(*snapshotPath)
		return
	}

	f, err := os.Open(*streamPath)
	if err != nil {
		fatal("open: %v", err)
	}
	defer f.Close()
	var edges []stream.Edge
	if strings.HasSuffix(*streamPath, ".bin") {
		edges, err = stream.ReadBinaryEdges(f)
	} else {
		edges, err = stream.ReadTextEdges(f)
	}
	if err != nil {
		fatal("read: %v", err)
	}

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	st := stream.ComputeVarianceStats(exact)

	fmt.Printf("arrivals:        %d\n", exact.Arrivals())
	fmt.Printf("stream volume:   %d\n", exact.Total())
	fmt.Printf("distinct edges:  %d\n", st.DistinctEdges)
	fmt.Printf("source vertices: %d\n", st.Sources)
	fmt.Printf("multiplicity:    %.2f\n", float64(exact.Total())/float64(st.DistinctEdges))
	fmt.Printf("sigma_G:         %.4f\n", st.GlobalVariance)
	fmt.Printf("sigma_V:         %.4f\n", st.LocalVariance)
	fmt.Printf("variance ratio:  %.3f\n", st.Ratio)
}

// snapshotStats prints the per-generation breakdown of a snapshot file.
func snapshotStats(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal("open: %v", err)
	}
	defer f.Close()
	gens, metas, err := core.ReadChainMeta(f)
	if err != nil {
		fatal("read snapshot: %v", err)
	}

	var total, bytes int64
	var folded int
	for i, g := range gens {
		total += g.Count()
		bytes += int64(g.MemoryBytes())
		folded += metas[i].CompactedFrom
	}
	fmt.Printf("generations:     %d\n", len(gens))
	fmt.Printf("compacted from:  %d\n", folded)
	fmt.Printf("stream volume:   %d\n", total)
	fmt.Printf("counter bytes:   %d\n", bytes)
	fmt.Println()
	fmt.Printf("%-4s %14s %14s %11s %8s %s\n",
		"gen", "stream", "bytes", "partitions", "folded", "built")
	for i, g := range gens {
		built := "-"
		if metas[i].BuiltAt != 0 {
			built = time.Unix(metas[i].BuiltAt, 0).UTC().Format(time.RFC3339)
		}
		role := ""
		if i == len(gens)-1 {
			role = "  (head)"
		}
		fmt.Printf("%-4d %14d %14d %11d %8d %s%s\n",
			i, g.Count(), g.MemoryBytes(), g.NumPartitions(),
			metas[i].CompactedFrom, built, role)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsketch-stats: "+format+"\n", args...)
	os.Exit(1)
}
