// Command gsketch-stats prints the §6.1 dataset statistics for an edge
// file: stream volume, distinct edges, sources, and the variance ratio
// σ_G/σ_V that quantifies the local-similarity property gSketch exploits.
//
// Usage:
//
//	gsketch-stats -stream FILE
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/graphstream/gsketch/internal/stream"
)

func main() {
	streamPath := flag.String("stream", "", "edge file to analyze")
	flag.Parse()
	if *streamPath == "" {
		fatal("need -stream (see -h)")
	}

	f, err := os.Open(*streamPath)
	if err != nil {
		fatal("open: %v", err)
	}
	defer f.Close()
	var edges []stream.Edge
	if strings.HasSuffix(*streamPath, ".bin") {
		edges, err = stream.ReadBinaryEdges(f)
	} else {
		edges, err = stream.ReadTextEdges(f)
	}
	if err != nil {
		fatal("read: %v", err)
	}

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	st := stream.ComputeVarianceStats(exact)

	fmt.Printf("arrivals:        %d\n", exact.Arrivals())
	fmt.Printf("stream volume:   %d\n", exact.Total())
	fmt.Printf("distinct edges:  %d\n", st.DistinctEdges)
	fmt.Printf("source vertices: %d\n", st.Sources)
	fmt.Printf("multiplicity:    %.2f\n", float64(exact.Total())/float64(st.DistinctEdges))
	fmt.Printf("sigma_G:         %.4f\n", st.GlobalVariance)
	fmt.Printf("sigma_V:         %.4f\n", st.LocalVariance)
	fmt.Printf("variance ratio:  %.3f\n", st.Ratio)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsketch-stats: "+format+"\n", args...)
	os.Exit(1)
}
