// Command gsketch-wire is a client for the binary wire protocol served by
// gsketch-serve -wire-addr (see internal/wire for the frame format). It
// exists for smoke tests and operational poking: ingest an edge file,
// answer ad-hoc queries with their ε·N_i bounds, or flush the server's
// ingest pipeline, all over one TCP connection.
//
// Usage:
//
//	gsketch-wire -addr host:port ingest [file]       edges from file or stdin
//	gsketch-wire -addr host:port query src dst ...   one query per src/dst pair
//	gsketch-wire -addr host:port flush               drain the ingest pipeline
//	gsketch-wire -addr host:port ping                health probe with RTT
//
// Against a multi-tenant server (gsketch-serve -tenants), -tenant NAME
// sends a tenant-select frame before the subcommand, binding the
// connection to that tenant's engine.
//
// Ingest reads the text edge format ("src dst [weight [time]]" per line,
// '#' comments) or the GSED binary format, sniffed by magic; "-" or no
// argument reads stdin. Chunks shed by a saturated pipeline are retried
// until accepted. Query prints one line per result:
//
//	src dst estimate error_bound confidence partition [outlier]
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gsketch-wire: ")
	var (
		addr   = flag.String("addr", "127.0.0.1:7072", "wire-protocol server address")
		chunk  = flag.Int("chunk", 8192, "edges per ingest frame")
		tenant = flag.String("tenant", "", "bind the connection to this tenant first (multi-tenant servers)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatalf("need a subcommand: ingest, query or flush")
	}

	c, err := wire.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if *tenant != "" {
		if err := c.SelectTenant(*tenant); err != nil {
			log.Fatalf("select tenant %q: %v", *tenant, err)
		}
	}

	switch cmd := flag.Arg(0); cmd {
	case "ingest":
		edges, err := readEdges(flag.Args()[1:])
		if err != nil {
			log.Fatal(err)
		}
		retries, err := c.IngestAll(edges, *chunk)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %d edges (%d shed retries)\n", len(edges), retries)
	case "query":
		qs, err := parseQueries(flag.Args()[1:])
		if err != nil {
			log.Fatal(err)
		}
		results, err := c.Query(nil, qs)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range results {
			outlier := ""
			if r.Outlier {
				outlier = " outlier"
			}
			fmt.Printf("%d %d %d %g %g %d%s\n",
				qs[i].Src, qs[i].Dst, r.Estimate, r.ErrorBound, r.Confidence, r.Partition, outlier)
		}
	case "flush":
		if err := c.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("flushed")
	case "ping":
		pong, rtt, err := c.Ping()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pong: stream_total %d queue_depth %d generations %d rtt %s\n",
			pong.StreamTotal, pong.QueueDepth, pong.Generations, rtt)
	default:
		log.Fatalf("unknown subcommand %q (want ingest, query, flush or ping)", cmd)
	}
}

// readEdges loads the edge stream named by args ("-" or nothing = stdin),
// sniffing the GSED binary magic against the text format.
func readEdges(args []string) ([]stream.Edge, error) {
	var src io.Reader = os.Stdin
	if len(args) > 1 {
		return nil, fmt.Errorf("ingest takes at most one file argument")
	}
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}
	raw, err := io.ReadAll(src)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 4 && binary.LittleEndian.Uint32(raw) == 0x47534544 {
		return stream.ReadBinaryEdges(bytes.NewReader(raw))
	}
	return stream.ReadTextEdges(bytes.NewReader(raw))
}

// parseQueries turns "src dst src dst ..." arguments into a query batch.
func parseQueries(args []string) ([]core.EdgeQuery, error) {
	if len(args) == 0 || len(args)%2 != 0 {
		return nil, fmt.Errorf("query takes src/dst pairs (got %d arguments)", len(args))
	}
	qs := make([]core.EdgeQuery, len(args)/2)
	for i := range qs {
		src, err := strconv.ParseUint(args[2*i], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad src %q: %v", args[2*i], err)
		}
		dst, err := strconv.ParseUint(args[2*i+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad dst %q: %v", args[2*i+1], err)
		}
		qs[i] = core.EdgeQuery{Src: src, Dst: dst}
	}
	return qs, nil
}
