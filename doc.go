// Package gsketch is a Go implementation of gSketch (Zhao, Aggarwal, Wang;
// PVLDB 5(3), 2011): partitioned CountMin sketches for edge-frequency and
// aggregate-subgraph query estimation over massive graph streams.
//
// # Model
//
// A graph stream is a sequence of directed edges (x, y; t), optionally
// weighted. Exact per-edge counting is infeasible — the distinct-edge
// universe is quadratic in the vertex count — so the stream is summarized
// in sub-linear space and queries are answered approximately:
//
//   - edge queries estimate the accumulated frequency of one edge;
//   - aggregate subgraph queries fold an aggregate Γ (SUM, MIN, MAX,
//     AVERAGE, COUNT) over the estimated frequencies of a bag of edges.
//
// # Why partitioning
//
// A single global CountMin sketch has additive error e·N/w for stream
// volume N and width w — crushing for the low-frequency edges real
// workloads care about. Real graph streams are globally skewed but locally
// similar: edges leaving the same vertex have correlated frequencies.
// gSketch exploits this by partitioning the sketch width across localized
// sketches chosen so each holds edges of similar expected frequency. The
// partitioning needs only compact per-vertex statistics estimated from a
// small stream sample (and, optionally, a query-workload sample), and is
// computed by a recursive pivot-scan over the paper's expected relative
// error objective.
//
// # Usage
//
// Build an estimator from a sample, stream edges through it, query any
// time:
//
//	sample := edges[:100_000] // or a stream.Reservoir sample
//	g, err := gsketch.New(gsketch.Config{TotalBytes: 1 << 20, Seed: 42}, sample, nil)
//	if err != nil { ... }
//	for _, e := range edges {
//		g.Update(e)
//	}
//	fmt.Println(g.EstimateEdge(alice, bob))
//
// Passing a workload sample as the third argument of New switches the
// partitioner to the workload-aware objective (§4.2 of the paper), which
// improves accuracy when query popularity is skewed.
//
// The package front-loads the most common operations; the full machinery
// (partitioning internals, synopses, generators, the experiment harness)
// lives in the internal packages and is documented in DESIGN.md.
package gsketch
