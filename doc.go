// Package gsketch is a Go implementation of gSketch (Zhao, Aggarwal, Wang;
// PVLDB 5(3), 2011): partitioned CountMin sketches for edge-frequency and
// aggregate-subgraph query estimation over massive graph streams.
//
// # Model
//
// A graph stream is a sequence of directed edges (x, y; t), optionally
// weighted. Exact per-edge counting is infeasible — the distinct-edge
// universe is quadratic in the vertex count — so the stream is summarized
// in sub-linear space and queries are answered approximately:
//
//   - edge queries estimate the accumulated frequency of one edge;
//   - aggregate subgraph queries fold an aggregate Γ (SUM, MIN, MAX,
//     AVERAGE, COUNT) over the estimated frequencies of a bag of edges.
//
// # Why partitioning
//
// A single global CountMin sketch has additive error e·N/w for stream
// volume N and width w — crushing for the low-frequency edges real
// workloads care about. Real graph streams are globally skewed but locally
// similar: edges leaving the same vertex have correlated frequencies.
// gSketch exploits this by partitioning the sketch width across localized
// sketches chosen so each holds edges of similar expected frequency. The
// partitioning needs only compact per-vertex statistics estimated from a
// small stream sample (and, optionally, a query-workload sample), and is
// computed by a recursive pivot-scan over the paper's expected relative
// error objective.
//
// # Usage: the one-handle Engine
//
// Open builds the Engine — the single lifecycle-managed handle that owns
// the estimator, the concurrency wrapper, the batch-ingest pipeline,
// snapshot persistence, live workload capture and (optionally) adaptive
// repartitioning. One construction path scales from the paper's bare
// estimator to a full serving engine:
//
//	sample := edges[:100_000] // or a stream.Reservoir sample
//	eng, err := gsketch.Open(gsketch.Config{TotalBytes: 1 << 20, Seed: 42},
//		gsketch.WithSample(sample),                  // partitioning sample (§4.1)
//		gsketch.WithWorkloadSample(workload),        // §4.2 objective (optional)
//		gsketch.WithIngest(gsketch.IngestConfig{}),  // parallel pipeline (optional)
//		gsketch.WithSnapshotDir("/var/lib/gsketch")) // persistence home (optional)
//	if err != nil { ... }
//	defer eng.Close()
//
//	_ = eng.Ingest(ctx, edges...)                // context-aware, batched
//	res := eng.Query(alice, bob)                 // bound-carrying Result
//	resp := eng.Answer(gsketch.SubgraphQuery{Edges: qs, Agg: gsketch.Sum})
//	fmt.Printf("%.0f ±%.0f\n", resp.Value, resp.ErrorBound)
//
// Exactly one bootstrap option picks the estimator: WithSample (the
// paper's partitioned gSketch), WithGlobal (the §3.2 baseline),
// WithRestore/WithRestoreFile (resume a snapshot) or WithEstimator (adopt
// one built elsewhere). Everything else composes: WithAdaptive +
// WithAutoRepartition mount the generation chain and its drift manager,
// WithWindows the §5 time-window store, WithWorkloadRecorder the live
// query-workload reservoir. With WithIngest, Ingest blocks with
// backpressure (and honors ctx cancellation while blocked); TryIngest
// never blocks and returns the typed ErrIngestQueueFull shed signal.
// Drain waits — bounded by ctx — until accepted edges are applied; Close
// stops the adaptive loop, drains the pipeline, and (with
// WithSnapshotOnClose) persists a final snapshot.
//
// The pre-Engine free functions (New, NewConcurrent, NewIngestor, Save,
// Load, NewChain, ...) remain as thin deprecated shims that answer
// byte-identically; see the migration table in README.md.
//
// # Querying
//
// The read path is batched and bound-carrying, mirroring the sharded
// write path. Estimator.EstimateBatch answers a slice of EdgeQuery values
// in one routed pass — the batch is grouped by answering partition against
// the flat router, each touched partition's counters are probed once per
// group, and every Result returns in input order carrying:
//
//   - the point estimate (identical to EstimateEdge on the same state);
//   - the answering partition index, or the outlier flag;
//   - that sketch's additive error bound e·N_i/w_i, where N_i is the
//     LOCAL stream volume of the answering partition — the per-localized-
//     sketch guarantee of the paper's Theorem 1 / §3.2 analysis;
//   - the confidence 1-δ = 1-e^{-d} of that bound;
//   - a snapshot of the total stream volume N.
//
// Above the estimator sits the Query sum type: EdgeQuery, SubgraphQuery
// (a bag of edges folded with an Aggregate Γ) and NodeQuery (one source
// vertex against a destination set — routed to a single partition). Answer
// resolves any of them with one batched pass and combines the constituent
// bounds per aggregate; AnswerBatch flattens a heterogeneous batch into a
// single estimator call:
//
//	responses := gsketch.AnswerBatch(est, []gsketch.Query{
//		gsketch.EdgeQuery{Src: a, Dst: b},
//		gsketch.SubgraphQuery{Edges: edges10, Agg: gsketch.Sum},
//		gsketch.NodeQuery{Node: a, Out: []uint64{b, c}, Agg: gsketch.Max},
//	})
//
// Under Concurrent, a batched read acquires each striped lock at most once
// per internal chunk instead of once per query, and observes each
// partition's counters and local volume in one consistent snapshot.
// Windowed range queries batch the same way via EstimateWindowBatch (one
// pass per overlapping window for the whole batch).
//
// Migration note: EstimateEdge(src, dst) remains on every estimator and is
// unchanged — one call, one bare point estimate, one lock round-trip under
// Concurrent. New code (and any loop over more than a handful of queries)
// should call EstimateBatch or Answer instead: same estimates, byte for
// byte, at better than 1.5× the throughput on a 16-partition sketch, plus
// the per-answer guarantees. EstimateSubgraph is deprecated; it now
// forwards to Answer and returns only the value.
//
// # Batched and parallel ingestion
//
// The ingest hot path is batched end to end. Estimator.UpdateBatch routes
// a whole slice of edges at once — one pass over the flat vertex→partition
// router groups the batch by destination partition, then each partition's
// synopsis absorbs its group in a single call. Within a partition the
// stream order is preserved, so batched counters are byte-identical to
// per-edge Update. Populate uses this path automatically.
//
// For concurrent writers, wrap the sketch in NewConcurrent: because the
// router is immutable after construction, each partition (plus the outlier
// sketch) is an independent update domain, and the wrapper shards its
// locks by partition instead of serializing every writer behind one mutex.
// NewIngestor adds a full pipeline on top — a bounded multi-producer queue
// drained by N workers:
//
//	shared := gsketch.NewConcurrent(g)
//	ing, err := gsketch.NewIngestor(shared, gsketch.IngestConfig{})
//	if err != nil { ... }
//	_ = ing.PushBatch(edges) // from any number of goroutines; blocks when full
//	_ = ing.Close()          // flush, drain, stop workers
//
// Throughput note: on a single core the batched sharded path sustains
// roughly twice the edges/sec of per-edge updates behind a single mutex
// (lock amortization plus partition-local cache residency); with multiple
// cores the sharded writers scale further because batches touching
// disjoint partitions never contend. `gsketch-bench -ingest` measures all
// three paths and writes a machine-readable BENCH_ingest.json;
// `gsketch-bench -query` is its read-side mirror, writing BENCH_query.json.
//
// # Serving and the workload-capture loop
//
// cmd/gsketch-serve (backed by internal/server) exposes an Engine over
// HTTP/JSON as a long-lived process: NDJSON batch ingest with backpressure
// mapped to 429 (Engine.TryIngest and its typed ErrIngestQueueFull),
// batched bound-carrying queries, consistent snapshots (Engine.Save under
// all lock stripes' read locks, Engine.Restore to swap one back in), and
// graceful drain-then-stop shutdown via Engine.Close.
//
// The engine also closes the paper's sample-collection loop: §4.2 assumes
// a query-workload sample is simply "available", and the serving layer is
// where it actually comes from. WithWorkloadRecorder mounts a reservoir
// over served queries (exported by GET /workload and Engine.Workload) in
// the exact text edge format WithWorkloadSample accepts, so a recorded
// workload feeds a rebuild with the workload-aware partitioning objective.
//
// # Adaptive repartitioning and generation bounds
//
// The recorded workload need not leave the process: a Chain plus
// Repartition rebuild and hot-swap the partitioning online. The chain
// keeps one live head sketch (absorbing all updates) and freezes each
// displaced generation; an edge's true frequency over the whole stream is
// exactly the sum of its per-generation frequencies, which gives the
// combination rule for answers gathered across a chain of k generations:
//
//   - estimates sum: each generation's CountMin upper-bounds its own
//     segment, so Σ f̃_g upper-bounds the whole stream;
//   - error bounds add: generation g's answer overshoots by at most
//     ε·N_g with probability 1-δ_g, so the summed estimate overshoots by
//     at most Σ ε·N_g when every generation's guarantee holds;
//   - confidence is a union bound: all k guarantees hold together with
//     probability at least 1 - Σ δ_g (floored at 0).
//
// The loop closes as record → rebuild → swap, entirely inside an adaptive
// engine: Engine.QueryBatch records live queries, the manager measures
// drift (total-variation divergence of the live workload against the
// build-time baseline, plus the outlier sketch's share of routed query
// traffic — see RouteCounts) and on threshold (WithAutoRepartition) or on
// demand (Engine.Repartition) rebuilds from fresh samples and rotates the
// result in as the new head. Chain snapshots serialize every generation
// in one container (Engine.Save on an adaptive engine); pre-chain
// snapshots load unchanged as single-generation chains.
//
// # Generation lifecycle
//
// Left unmanaged, a long-lived chain accumulates a generation per
// rotation until memory and the union-bound confidence degrade, then
// hits ErrMaxGenerations. The lifecycle options (backed by
// internal/compact) keep chains bounded: WithCompaction mounts a fold
// policy — the oldest frozen generations merge cell-wise when they share
// a hash layout (lossless; bounds combine to ε·ΣN_g) or re-partition
// from their retained reservoirs otherwise, and the repartition manager
// compacts before refusing a rotation at the cap — WithTiering spills
// cold frozen generations to file-backed segments with lazy reload on
// query, and WithDecay down-weights a frozen generation's estimates and
// bounds together by 2^(-age/halfLife) at gather time. Engine.Compact
// folds on demand (POST /compact when serving); chain snapshots carry
// the per-generation lifecycle records and older snapshot versions still
// load. See the README's Generation lifecycle section and the
// internal/compact package documentation.
//
// # Scaling past one machine
//
// One engine is bounded by one process; internal/cluster shards the
// stream across N full engines behind a scatter-gather coordinator on
// the binary wire protocol (cmd/gsketch-serve -cluster). Routing is
// partition-disjoint — each partition's whole substream lands on one
// shard — so gathered estimates and error bounds are byte-identical to a
// single engine over the same stream, with the confidence paying a union
// bound across shards. See the README's Cluster section and the
// internal/cluster package documentation.
//
// # Multi-tenant serving
//
// The inverse consolidation: internal/tenant packs many isolated
// sketches into one process (cmd/gsketch-serve -tenants). A registry of
// named engines scopes the whole serving surface under /t/{tenant}/...
// with an admin API for the tenant set, per-tenant token-bucket ingest
// quotas shedding with the same accepted-prefix 429 semantics as a full
// pipeline, and a lazy lifecycle: an LRU resident cap snapshots cold
// tenants to disk and transparently reopens them on next access with
// byte-identical answers. Wire connections bind to a tenant with a
// tenant-select frame. See the README's Multi-tenancy section and the
// internal/tenant package documentation.
//
// # Observability
//
// Serving processes are first-class scrape targets: internal/obs is a
// dependency-free metrics kit (atomic counters, gauges and fixed-bucket
// latency histograms rendered as Prometheus text exposition) that
// internal/server threads through every layer — per-route HTTP latency,
// wire frame decode/apply latency, ingest queue depth and shed counts,
// engine and per-shard cluster gauges — on GET /metrics, with GET /stats
// deriving its JSON counters from the same registry. GET /healthz
// (liveness) is split from GET /readyz (readiness): a server mid-restore
// or mid-swap, or a coordinator with zero healthy shards, reports 503 on
// /readyz while staying alive on /healthz. Logging is structured
// log/slog throughout (gsketch-serve -log-level, -log-format json), and
// -pprof-addr mounts net/http/pprof on a private listener. The hot-path
// instruments are allocation-free, so instrumentation does not tax the
// wire ingest path's allocs-per-edge guard.
//
// The package front-loads the most common operations; the full machinery
// (partitioning internals, synopses, generators, the experiment harness)
// lives in the internal packages and is documented in DESIGN.md.
package gsketch
