package gsketch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphstream/gsketch/internal/adapt"
	"github.com/graphstream/gsketch/internal/compact"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/window"
)

// Engine errors. All are matched with errors.Is.
var (
	// ErrEngineClosed reports an operation against a closed Engine.
	ErrEngineClosed = errors.New("gsketch: engine is closed")
	// ErrNotAdaptive reports an adaptive operation (Repartition, restoring
	// a multi-generation snapshot) against an engine opened without
	// WithAdaptive.
	ErrNotAdaptive = errors.New("gsketch: engine is not adaptive (open with WithAdaptive)")
	// ErrWindowMounted reports a snapshot restore refused because a window
	// store is mounted: snapshots carry no window state, so swapping the
	// primary estimator would leave window queries answering from a
	// different history.
	ErrWindowMounted = errors.New("gsketch: restore refused while a window store is mounted (snapshots do not carry window state)")
	// ErrNoWindow reports a window query against an engine opened without
	// WithWindows.
	ErrNoWindow = errors.New("gsketch: engine has no window store (open with WithWindows)")
	// ErrNoSnapshotPath reports a Save/Restore call with no explicit path
	// on an engine opened without WithSnapshotDir.
	ErrNoSnapshotPath = errors.New("gsketch: no snapshot path (open with WithSnapshotDir or pass a path)")
	// ErrBadSnapshot reports an unreadable or corrupt snapshot stream — a
	// problem with the input, as opposed to a failure applying a snapshot
	// that decoded fine.
	ErrBadSnapshot = errors.New("gsketch: bad snapshot")
)

// servingEstimator is the estimator surface the engine serves through: the
// batched read/write paths plus the shard gauge. Both *Concurrent and
// *Chain satisfy it, so one engine serves a bare wrapped sketch and a
// generation chain identically.
type servingEstimator interface {
	Estimator
	NumShards() int
}

// engineState is the swappable serving core: the estimator and the
// pipeline feeding it. Restore builds a fresh state and swaps it in under
// the engine's write lock.
type engineState struct {
	est servingEstimator
	// ing is the batch-ingest pipeline, nil when the engine was opened
	// without WithIngest (ingest then applies synchronously).
	ing *ingest.Ingestor
	// chain is non-nil when est is an adaptive generation chain.
	chain *adapt.Chain
}

// Engine is the one-handle production surface of the library: a single
// lifecycle-managed object owning the estimator (partitioned, global,
// generation-chained or windowed), the concurrency wrapper, the batch
// ingest pipeline, snapshot persistence, live workload capture and the
// adaptive repartitioning loop. Build one with Open; all methods are safe
// for concurrent use.
//
//	eng, err := gsketch.Open(cfg,
//	        gsketch.WithSample(sample),
//	        gsketch.WithIngest(gsketch.IngestConfig{}),
//	        gsketch.WithSnapshotDir("/var/lib/gsketch"))
//	defer eng.Close()
//	eng.Ingest(ctx, edges...)
//	res := eng.Query(src, dst)
type Engine struct {
	cfg  Config
	opts engineOptions

	mu sync.RWMutex // guards st swap (snapshot restore)
	st *engineState

	mgr *adapt.Manager  // nil unless adaptive
	rec *adapt.Recorder // nil unless recording
	win *window.Store   // nil unless windowed

	winMu sync.Mutex // serializes window-store access (single-writer store)

	autoStop chan struct{} // stops the auto-repartition loop; nil when off
	autoDone chan struct{} // closed when the loop goroutine has exited

	cmgr        *compact.Manager // nil unless a compaction policy is mounted
	compactStop chan struct{}    // stops the compaction loop; nil when off
	compactDone chan struct{}    // closed when the loop goroutine has exited
	compactions atomic.Int64     // completed folds, every trigger path

	// rebuildCfg is the sketch configuration compaction re-ingest rebuilds
	// use — the adaptive manager's rebuild config when one is mounted, the
	// Open configuration otherwise.
	rebuildCfg Config

	compactObsMu sync.Mutex
	compactObs   func(time.Duration)

	snapPath  string
	snapNanos atomic.Int64 // unix nanos of the last snapshot save/restore
	saved     atomic.Int64 // completed snapshot saves
	restored  atomic.Int64 // completed snapshot restores

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// Open builds an Engine from a sketch configuration and functional
// options. Exactly one bootstrap source must be given: WithSample (build a
// partitioned gSketch, the paper's estimator), WithGlobal (the §3.2
// baseline), WithRestore / WithRestoreFile (resume from a snapshot), or
// WithEstimator (adopt an estimator built elsewhere).
//
// Everything else is composition: WithIngest mounts the batched pipeline
// behind Ingest/TryIngest, WithAdaptive turns the estimator into a
// generation chain with a drift-watching repartition manager,
// WithWorkloadRecorder samples query traffic into the §4.2 workload
// format, WithWindows mounts a time-windowed store, and WithSnapshotDir
// gives Save/Restore a home. The zero-option Open(cfg, WithSample(s)) is
// byte-identical to the classic New + NewConcurrent wiring.
func Open(cfg Config, opts ...Option) (*Engine, error) {
	o := engineOptions{now: time.Now}
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}

	e := &Engine{cfg: cfg, opts: o, snapPath: o.snapshotPath}
	if o.recorderCap > 0 {
		e.rec = adapt.NewRecorder(o.recorderCap, o.recorderSeed, func() int64 { return e.opts.now().Unix() })
	}

	est, chain, err := o.buildEstimator(cfg)
	if err != nil {
		return nil, err
	}
	if o.lifecycleConfigured() && chain == nil {
		return nil, errors.New("gsketch: WithCompaction/WithTiering/WithDecay need a generation chain (WithAdaptive or an adopted *Chain)")
	}
	e.rebuildCfg = cfg
	if o.adaptive && (o.managerCfg.Sketch.TotalBytes != 0 || o.managerCfg.Sketch.TotalWidth != 0) {
		e.rebuildCfg = o.managerCfg.Sketch
	}
	if chain != nil {
		e.applyLifecycle(chain)
	}
	st := &engineState{est: est, chain: chain}

	if o.windowCfg != nil {
		wc := *o.windowCfg
		if wc.Sketch.TotalBytes == 0 && wc.Sketch.TotalWidth == 0 {
			wc.Sketch = cfg
		}
		win, err := window.NewStore(wc)
		if err != nil {
			return nil, fmt.Errorf("gsketch: window store: %w", err)
		}
		e.win = win
	} else if o.windowStore != nil {
		e.win = o.windowStore
	}

	// The pipeline spawns worker goroutines, so it is built after every
	// other fallible step — an Open that fails must not leak workers.
	if o.ingestCfg != nil {
		ing, err := ingest.New(est, *o.ingestCfg)
		if err != nil {
			return nil, err
		}
		st.ing = ing
	}
	e.st = st

	if chain != nil && o.adaptive {
		mc := o.managerCfg
		if mc.Sketch.TotalBytes == 0 && mc.Sketch.TotalWidth == 0 {
			mc.Sketch = cfg
		}
		if mc.Baseline == nil {
			mc.Baseline = o.workload
		}
		e.mgr = adapt.NewManager(chain, e.recordedWorkload, mc)
		if o.compactPolicy != nil {
			// Cap-pressure hook: the manager compacts instead of refusing a
			// rotation at the generation cap.
			fold := o.compactPolicy.WithDefaults().Fold
			e.mgr.SetCompactor(func() error {
				_, err := e.compactChain(fold)
				if errors.Is(err, adapt.ErrNothingToCompact) {
					return nil
				}
				return err
			})
		}
		if o.autoInterval > 0 {
			e.autoStop = make(chan struct{})
			e.autoDone = make(chan struct{})
			go func() {
				defer close(e.autoDone)
				e.mgr.Run(o.autoInterval, e.autoStop, o.autoErr)
			}()
		}
	}
	if chain != nil && o.compactPolicy != nil && o.compactPolicy.Enabled() {
		e.cmgr = compact.NewManager(engineCompactTarget{e}, *o.compactPolicy, o.now, o.compactErr)
		e.compactStop = make(chan struct{})
		e.compactDone = make(chan struct{})
		go func() {
			defer close(e.compactDone)
			e.cmgr.Run(e.compactStop)
		}()
	}
	return e, nil
}

// applyLifecycle copies the Open-time lifecycle options onto a chain. It
// runs before the chain is published (Open, Restore), so the chain's
// plain-field setters are safe.
func (e *Engine) applyLifecycle(c *adapt.Chain) {
	if e.opts.decayHalfLife > 0 {
		c.SetDecay(e.opts.decayHalfLife)
	}
	if e.opts.tierDir != "" {
		c.SetTiering(e.opts.tierDir, e.opts.tierResident)
	}
	c.SetClock(e.opts.now)
}

// engineCompactTarget adapts the engine to the compaction policy loop. It
// resolves the serving chain on every call, so the loop follows a snapshot
// restore to the replacement chain automatically.
type engineCompactTarget struct{ e *Engine }

func (t engineCompactTarget) LifecycleState(now time.Time) compact.State {
	st := t.e.state()
	if st.chain == nil {
		return compact.State{}
	}
	return st.chain.LifecycleState(now)
}

func (t engineCompactTarget) Compact(k int) (compact.Result, error) {
	res, err := t.e.compactChain(k)
	if errors.Is(err, adapt.ErrNothingToCompact) {
		return res, nil
	}
	return res, err
}

func (t engineCompactTarget) EnforceResidency() (int, error) {
	st := t.e.state()
	if st.chain == nil {
		return 0, nil
	}
	return st.chain.EnforceResidency()
}

// compactChain folds the oldest k frozen generations of the serving chain —
// the single funnel of every compaction path (manual Compact, the policy
// loop, rotation cap pressure), so the compaction counter and the duration
// observer see them all.
func (e *Engine) compactChain(k int) (compact.Result, error) {
	st := e.state()
	if st.chain == nil {
		return compact.Result{}, ErrNotAdaptive
	}
	res, err := st.chain.Compact(k, e.rebuildCfg, e.recordedWorkload())
	if err != nil {
		return res, err
	}
	if res.Folded > 0 {
		e.compactions.Add(1)
		e.compactObsMu.Lock()
		fn := e.compactObs
		e.compactObsMu.Unlock()
		if fn != nil {
			fn(res.Duration)
		}
	}
	return res, nil
}

// recordedWorkload is the repartition manager's live workload source: the
// recorder's current reservoir sample, or nil when recording is disabled.
func (e *Engine) recordedWorkload() []Edge {
	if e.rec == nil {
		return nil
	}
	return e.rec.Sample()
}

// state returns the current serving state under the read lock.
func (e *Engine) state() *engineState {
	e.mu.RLock()
	st := e.st
	e.mu.RUnlock()
	return st
}

// Estimator exposes the serving estimator — the concurrency wrapper (or
// generation chain) every engine method reads and writes through. It is
// the escape hatch for code that needs the raw batched surface without the
// engine's recording and lifecycle; treat it as shared with the engine.
func (e *Engine) Estimator() Estimator { return e.state().est }

// Adaptive reports whether the engine serves a generation chain with a
// repartition manager (opened with WithAdaptive).
func (e *Engine) Adaptive() bool { return e.mgr != nil }

// Generations returns the serving chain's length, or 1 for a single-sketch
// engine.
func (e *Engine) Generations() int {
	if st := e.state(); st.chain != nil {
		return st.chain.Generations()
	}
	return 1
}

// Sketch returns the serving partitioned sketch — the chain's live head,
// or the wrapped *GSketch — for callers reading layout and routing
// metadata (partition count, ordering objective). It is nil when the
// engine serves a non-gSketch estimator (WithGlobal, a custom
// WithEstimator). The sketch is shared — treat it as read-only.
func (e *Engine) Sketch() *GSketch {
	st := e.state()
	if st.chain != nil {
		return st.chain.Head()
	}
	if c, ok := st.est.(*core.Concurrent); ok {
		if g, ok := c.Unwrap().(*core.GSketch); ok {
			return g
		}
	}
	return nil
}

// HasWindow reports whether a window store is mounted (WithWindows).
func (e *Engine) HasWindow() bool { return e.win != nil }

// RecordsWorkload reports whether query traffic is being sampled into a
// workload reservoir (WithWorkloadRecorder).
func (e *Engine) RecordsWorkload() bool { return e.rec != nil }

// SnapshotPath returns the default snapshot file (WithSnapshotDir /
// WithSnapshotFile), or "" when none is configured.
func (e *Engine) SnapshotPath() string { return e.snapPath }

// Ingest folds edges into the engine. With a pipeline (WithIngest) it is
// the blocking, context-aware producer entry point: edges are batched into
// the bounded queue, and a producer blocked on a full queue unblocks when
// ctx is cancelled (accepted edges are never lost — they drain later).
// Without a pipeline the edges are applied synchronously. After Close it
// returns ErrEngineClosed.
//
// The blocking push runs outside the engine's state lock, so a wedged
// producer never stalls the read path behind a pending Restore. The
// trade-off mirrors Restore's own contract: edges accepted by a pipeline
// that a concurrent Restore then displaces are discarded with it (use
// TryIngest, which holds the state lock across its non-blocking push,
// when the ack must land in the serving state).
func (e *Engine) Ingest(ctx context.Context, edges ...Edge) error {
	if len(edges) == 0 {
		return ctx.Err()
	}
	e.mu.RLock()
	if e.closed.Load() {
		e.mu.RUnlock()
		return ErrEngineClosed
	}
	st := e.st
	if st.ing == nil {
		// The synchronous path never blocks on a queue, so applying under
		// the read lock is safe and keeps Restore strictly ordered.
		defer e.mu.RUnlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		st.est.UpdateBatch(edges)
		e.observeWindow(edges)
		return nil
	}
	e.mu.RUnlock()
	accepted, err := st.ing.PushBatchCtx(ctx, edges)
	// The accepted prefix will drain into the primary estimator even when
	// the push was cut short, so the window store must see it too — the
	// two read paths answer from one history.
	e.observeWindow(edges[:accepted])
	if err != nil {
		if errors.Is(err, ingest.ErrClosed) {
			if e.closed.Load() {
				return ErrEngineClosed
			}
			// The pipeline was displaced by a concurrent Restore, not
			// closed by Close: retry the remainder against the restored
			// state instead of failing a live engine.
			return e.Ingest(ctx, edges[accepted:]...)
		}
		return err
	}
	return nil
}

// TryIngest offers edges without ever blocking on a full queue. It returns
// the number of edges accepted (always a prefix, applied in order) and
// ErrIngestQueueFull when the pipeline shed the rest — the typed
// backpressure signal a serving frontend maps to 429/retry-later. Without
// a pipeline it applies synchronously and accepts everything.
func (e *Engine) TryIngest(edges []Edge) (int, error) {
	if len(edges) == 0 {
		return 0, nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed.Load() {
		return 0, ErrEngineClosed
	}
	st := e.st
	if st.ing == nil {
		st.est.UpdateBatch(edges)
		e.observeWindow(edges)
		return len(edges), nil
	}
	accepted, err := st.ing.TryPushBatch(edges)
	e.observeWindow(edges[:accepted])
	if errors.Is(err, ingest.ErrClosed) {
		return accepted, ErrEngineClosed
	}
	return accepted, err
}

// observeWindow feeds accepted edges to the optional window store. The
// store is single-writer, so access is serialized; ordering violations are
// the producer's (the store requires nondecreasing window indices) and are
// swallowed — the primary estimator already absorbed the edges.
func (e *Engine) observeWindow(edges []Edge) {
	if e.win == nil || len(edges) == 0 {
		return
	}
	e.winMu.Lock()
	_ = e.win.ObserveBatch(edges)
	e.winMu.Unlock()
}

// Query answers one edge query with the bound-carrying read path.
func (e *Engine) Query(src, dst uint64) Result {
	return e.QueryBatch([]EdgeQuery{{Src: src, Dst: dst}})[0]
}

// QueryBatch answers a batch of edge queries in one routed pass, returning
// one bound-carrying Result per query in input order. When a workload
// recorder is mounted the batch is sampled into the live workload
// reservoir — the raw material of the §4.2 objective and the adaptive
// drift signal.
func (e *Engine) QueryBatch(qs []EdgeQuery) []Result {
	if e.rec != nil {
		e.rec.Record(qs)
	}
	return e.state().est.EstimateBatch(qs)
}

// Answer resolves any Query — edge, subgraph or node — in one batched pass
// and returns the value with its combined error bound and confidence.
// Constituent edge queries are recorded into the workload reservoir like
// QueryBatch's.
func (e *Engine) Answer(q Query) Response {
	return e.AnswerBatch([]Query{q})[0]
}

// AnswerBatch resolves a batch of heterogeneous queries with one routed
// estimator pass, returning Responses in input order.
func (e *Engine) AnswerBatch(qs []Query) []Response {
	est := Estimator(e.state().est)
	if e.rec != nil {
		est = recordingEstimator{est: est, rec: e.rec}
	}
	return query.AnswerBatch(est, qs)
}

// recordingEstimator tees the flattened constituent queries of an Answer
// pass into the workload recorder on their way to the estimator.
type recordingEstimator struct {
	est Estimator
	rec *adapt.Recorder
}

func (r recordingEstimator) Update(e Edge)                  { r.est.Update(e) }
func (r recordingEstimator) UpdateBatch(edges []Edge)       { r.est.UpdateBatch(edges) }
func (r recordingEstimator) EstimateEdge(s, d uint64) int64 { return r.est.EstimateEdge(s, d) }
func (r recordingEstimator) Count() int64                   { return r.est.Count() }
func (r recordingEstimator) MemoryBytes() int               { return r.est.MemoryBytes() }
func (r recordingEstimator) EstimateBatch(qs []EdgeQuery) []Result {
	r.rec.Record(qs)
	return r.est.EstimateBatch(qs)
}

// QueryWindow answers a batch of edge queries over the time range [t1, t2]
// inclusive against the mounted window store. Each overlapping window
// answers the whole batch in one routed pass and contributes its
// fractional overlap.
func (e *Engine) QueryWindow(qs []EdgeQuery, t1, t2 int64) ([]float64, error) {
	if e.win == nil {
		return nil, ErrNoWindow
	}
	e.winMu.Lock()
	defer e.winMu.Unlock()
	return e.win.EstimateBatch(qs, t1, t2), nil
}

// Window exposes the mounted window store, or nil. Access is shared with
// the engine; serialize writes with the engine's own ingest path.
func (e *Engine) Window() *WindowStore { return e.win }

// Workload returns a copy of the recorded live query-workload sample, or
// nil when recording is disabled. The sample feeds BuildGSketch's §4.2
// objective directly.
func (e *Engine) Workload() []Edge { return e.recordedWorkload() }

// WriteWorkloadTo exports the recorded workload sample in the text edge
// format partitioning accepts ("src dst weight time" lines, the input of
// WithWorkloadSample). Without a recorder it writes nothing and returns
// (0, nil); use RecordsWorkload to tell a disabled recorder from an empty
// reservoir.
func (e *Engine) WriteWorkloadTo(w io.Writer) (int64, error) {
	if e.rec == nil {
		return 0, nil
	}
	return e.rec.WriteTo(w)
}

// Save streams a consistent snapshot of the serving estimator: a chain
// container for an adaptive engine (every generation, oldest first), the
// single-sketch format otherwise. The snapshot is taken under the striped
// read locks, so a save racing live writers is still internally
// consistent. Restore (or Load/LoadChain) reads it back.
func (e *Engine) Save(w io.Writer) (int64, error) {
	st := e.state()
	if st.chain != nil {
		return st.chain.WriteTo(w)
	}
	return core.Save(st.est, w)
}

// SaveSnapshot persists a snapshot to path (or the configured default when
// path is empty) via tmp-file + rename, so a crash mid-save never clobbers
// the previous snapshot. The ingest pipeline is flushed first: the
// snapshot covers every edge accepted before the save began.
func (e *Engine) SaveSnapshot(path string) (int64, error) {
	if path == "" {
		path = e.snapPath
	}
	if path == "" {
		return 0, ErrNoSnapshotPath
	}
	if st := e.state(); st.ing != nil {
		if err := st.ing.Flush(); err != nil && !errors.Is(err, ingest.ErrClosed) {
			return 0, err
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gsketch-snap-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	n, err := e.Save(tmp)
	if err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Close(); err != nil {
		return n, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return n, err
	}
	e.snapNanos.Store(e.opts.now().UnixNano())
	e.saved.Add(1)
	return n, nil
}

// Restore swaps the serving state for a snapshot read from r: a fresh
// pipeline is built around the restored estimator, the swap happens under
// the state write lock (so no edge is accepted into a displaced pipeline),
// and the old pipeline is drained and closed afterwards. Restore
// deliberately replaces live state: edges accepted after the snapshot
// being restored was taken are discarded with it.
//
// The snapshot may carry one or more sketch generations. An adaptive
// engine restores any snapshot as a chain and rebinds its repartition
// manager (current recorded workload becomes the new drift baseline); a
// non-adaptive engine refuses multi-generation snapshots with
// ErrNotAdaptive. An engine with a window store refuses all restores with
// ErrWindowMounted — snapshots carry no window state.
func (e *Engine) Restore(r io.Reader) error {
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if e.win != nil {
		return ErrWindowMounted
	}
	gens, metas, err := core.ReadChainMeta(r)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	return e.restoreGenerations(gens, metas)
}

// RestoreSnapshot is Restore from a file (or the configured default path
// when path is empty).
func (e *Engine) RestoreSnapshot(path string) error {
	if path == "" {
		path = e.snapPath
	}
	if path == "" {
		return ErrNoSnapshotPath
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return e.Restore(f)
}

func (e *Engine) restoreGenerations(gens []*GSketch, metas []core.GenerationMeta) error {
	cur := e.state()
	var est servingEstimator
	var chain *adapt.Chain
	if cur.chain != nil {
		chain = adapt.NewChainFromMeta(gens, metas, cur.chain.Config())
		e.applyLifecycle(chain)
		est = chain
	} else {
		if len(gens) != 1 {
			return fmt.Errorf("%w: snapshot carries %d generations", ErrNotAdaptive, len(gens))
		}
		est = core.NewConcurrent(gens[0])
	}
	neu := &engineState{est: est, chain: chain}
	if e.opts.ingestCfg != nil {
		ing, err := ingest.New(est, *e.opts.ingestCfg)
		if err != nil {
			return err
		}
		neu.ing = ing
	}
	var old *engineState
	var closed bool
	swap := func() {
		e.mu.Lock()
		// Re-checked under the write lock: a Close that landed after the
		// entry check must not have a fresh pipeline swapped in behind it
		// (nothing would ever stop those workers).
		if closed = e.closed.Load(); closed {
			e.mu.Unlock()
			return
		}
		old = e.st
		e.st = neu
		e.mu.Unlock()
	}
	if e.mgr != nil && chain != nil {
		// The state flip runs inside the manager's rebuild lock: an
		// in-flight drift check or repartition finishes against the old
		// chain while it is still serving, and none can start against a
		// displaced one.
		e.mgr.Rebind(chain, e.recordedWorkload(), swap)
	} else {
		swap()
	}
	if closed {
		if neu.ing != nil {
			_ = neu.ing.Close()
		}
		return ErrEngineClosed
	}
	if old.ing != nil {
		if err := old.ing.Close(); err != nil {
			return fmt.Errorf("gsketch: draining displaced pipeline: %w", err)
		}
	}
	e.snapNanos.Store(e.opts.now().UnixNano())
	e.restored.Add(1)
	return nil
}

// Repartition rebuilds the partitioning from the chain's live data
// reservoir and the recorded query workload, and hot-swaps the result in
// as a new sketch generation — the on-demand end of the record → rebuild →
// swap loop (the auto-trigger end is WithAutoRepartition). It returns
// ErrNotAdaptive on a non-adaptive engine.
func (e *Engine) Repartition() (*RepartitionResult, error) {
	if e.mgr == nil {
		return nil, ErrNotAdaptive
	}
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	return e.mgr.Repartition()
}

// Compact folds the oldest frozen generations of the serving chain into
// one, on demand — the manual end of the generation-lifecycle loop (the
// policy end is WithCompaction). The fold width is the mounted policy's
// (default 2). A chain with fewer than two frozen generations returns a
// zero-Folded result, not an error. It returns ErrNotAdaptive on an engine
// without a generation chain.
func (e *Engine) Compact() (*CompactionResult, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	k := 2
	if p := e.opts.compactPolicy; p != nil {
		k = p.WithDefaults().Fold
	}
	res, err := e.compactChain(k)
	if errors.Is(err, adapt.ErrNothingToCompact) {
		return &res, nil
	}
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// SetCompactObserver installs fn to be called with the duration of every
// completed compaction fold, manual or policy-triggered (nil uninstalls) —
// the hook a compaction-latency histogram hangs off.
func (e *Engine) SetCompactObserver(fn func(time.Duration)) {
	e.compactObsMu.Lock()
	e.compactObs = fn
	e.compactObsMu.Unlock()
}

// Drift evaluates the current drift signals — live-vs-baseline workload
// divergence and the head's outlier read share — without acting on them.
func (e *Engine) Drift() (Drift, error) {
	if e.mgr == nil {
		return Drift{}, ErrNotAdaptive
	}
	return e.mgr.Drift(), nil
}

// SetSwapObserver installs fn to be called with the build+rotate
// duration of every completed repartition swap, manual or
// auto-triggered (nil uninstalls) — the hook a latency histogram hangs
// off. A no-op on non-adaptive engines.
func (e *Engine) SetSwapObserver(fn func(time.Duration)) {
	if e.mgr != nil {
		e.mgr.SetSwapObserver(fn)
	}
}

// IngestStats is the pipeline slice of EngineStats.
type IngestStats struct {
	// EdgesApplied and BatchesApplied count work already folded into the
	// estimator.
	EdgesApplied, BatchesApplied int64
	// QueueDepth/QueueCap/Inflight/PendingEdges are the live backpressure
	// gauges: TryIngest starts shedding when the queue is at capacity.
	QueueDepth, QueueCap, Inflight, PendingEdges int
	// Sheds counts load-shedding events: non-blocking pushes refused
	// with a full queue (the pipeline-side view of HTTP 429s).
	Sheds int64
}

// WorkloadStats is the recorder slice of EngineStats.
type WorkloadStats struct {
	// Seen counts queries offered; Sample/Capacity describe the reservoir.
	Seen             int64
	Sample, Capacity int
}

// AdaptStats is the adaptive slice of EngineStats.
type AdaptStats struct {
	// Generations is the chain length; Repartitions counts completed
	// swaps.
	Generations  int
	Repartitions int64
	// Compactions counts completed generation folds across every trigger
	// path (manual, policy loop, rotation cap pressure).
	Compactions int64
	// ResidentGenerations counts generations whose counters are in RAM;
	// TieredGenerations counts frozen generations with a disk copy;
	// TieredBytes is the counter footprint currently off-RAM.
	ResidentGenerations int
	TieredGenerations   int
	TieredBytes         int64
	// CompactedFrom is the total source generations the current chain
	// represents — Generations plus everything compaction absorbed.
	CompactedFrom int
	// OldestFrozenAge is how long the oldest frozen generation has been
	// frozen.
	OldestFrozenAge time.Duration
	// Drift is the current drift evaluation.
	Drift Drift
}

// EngineStats is a point-in-time snapshot of the engine's gauges, the raw
// material of a /stats endpoint or metrics exporter.
type EngineStats struct {
	// StreamTotal is the stream volume folded in; Partitions the serving
	// estimator's shard count; MemoryBytes the counter footprint.
	StreamTotal int64
	Partitions  int
	MemoryBytes int
	// Ingest is nil without a pipeline (WithIngest).
	Ingest *IngestStats
	// Workload is nil without a recorder (WithWorkloadRecorder).
	Workload *WorkloadStats
	// Adapt is nil on non-adaptive engines (WithAdaptive).
	Adapt *AdaptStats
	// ReadRoutes/WriteRoutes are the routed-traffic counters when the
	// estimator exposes them — the raw drift signal.
	ReadRoutes, WriteRoutes *RouteCounts
	// LastSnapshot is the time of the last snapshot save or restore (zero
	// when none happened yet). SnapshotsSaved/SnapshotsRestored count
	// completed operations.
	LastSnapshot      time.Time
	SnapshotsSaved    int64
	SnapshotsRestored int64
}

// IngestStats reports only the pipeline gauges, or nil without a
// pipeline. Unlike Stats it never reads the estimator, so it stays
// responsive while writers hold the stripe locks.
func (e *Engine) IngestStats() *IngestStats {
	st := e.state()
	if st.ing == nil {
		return nil
	}
	return &IngestStats{
		EdgesApplied:   st.ing.Edges(),
		BatchesApplied: st.ing.Batches(),
		QueueDepth:     st.ing.QueueDepth(),
		QueueCap:       st.ing.QueueCap(),
		Inflight:       st.ing.Inflight(),
		PendingEdges:   st.ing.Pending(),
		Sheds:          st.ing.Sheds(),
	}
}

// Stats reports the engine's live gauges.
func (e *Engine) Stats() EngineStats {
	st := e.state()
	s := EngineStats{
		StreamTotal:       st.est.Count(),
		Partitions:        st.est.NumShards(),
		MemoryBytes:       st.est.MemoryBytes(),
		SnapshotsSaved:    e.saved.Load(),
		SnapshotsRestored: e.restored.Load(),
	}
	if ns := e.snapNanos.Load(); ns > 0 {
		s.LastSnapshot = time.Unix(0, ns)
	}
	s.Ingest = e.IngestStats()
	if e.rec != nil {
		s.Workload = &WorkloadStats{
			Seen:     e.rec.Seen(),
			Sample:   e.rec.Len(),
			Capacity: e.rec.Capacity(),
		}
	}
	if rs, ok := st.est.(core.RouteStatsSource); ok {
		rr, wr := rs.ReadRouteCounts(), rs.WriteRouteCounts()
		s.ReadRoutes, s.WriteRoutes = &rr, &wr
	}
	if e.mgr != nil && st.chain != nil {
		ls := st.chain.LifecycleStats()
		s.Adapt = &AdaptStats{
			Generations:         ls.Generations,
			Repartitions:        e.mgr.Repartitions(),
			Compactions:         e.compactions.Load(),
			ResidentGenerations: ls.Resident,
			TieredGenerations:   ls.Tiered,
			TieredBytes:         ls.TieredBytes,
			CompactedFrom:       ls.CompactedFrom,
			OldestFrozenAge:     ls.OldestFrozenAge,
			Drift:               e.mgr.Drift(),
		}
	}
	return s
}

// Drain flushes the ingest pipeline and waits — bounded by ctx — until
// every edge accepted before the call is applied to the estimator
// (read-your-writes). Without a pipeline it is a no-op. The drain
// condition is global: under sustained concurrent ingest the pipeline may
// not quiesce, so pass a ctx with a deadline when a bounded wait matters.
func (e *Engine) Drain(ctx context.Context) error {
	st := e.state()
	if st.ing == nil {
		return ctx.Err()
	}
	err := st.ing.FlushCtx(ctx)
	if errors.Is(err, ingest.ErrClosed) {
		return ErrEngineClosed
	}
	return err
}

// Close shuts the engine down in dependency order: the background
// compaction and adaptive auto-repartition loops are stopped first and
// awaited — so no fold or rebuild can race what follows — then the ingest
// pipeline is drained and closed (every
// accepted edge is applied), and finally, when WithSnapshotOnClose is set,
// a snapshot is persisted to the configured path. Close is idempotent;
// later calls return the first result. The read path stays usable on a
// closed engine.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		if e.compactStop != nil {
			close(e.compactStop)
			<-e.compactDone
		}
		if e.autoStop != nil {
			close(e.autoStop)
			<-e.autoDone
		}
		e.closed.Store(true)
		if st := e.state(); st.ing != nil {
			if err := st.ing.Close(); err != nil {
				e.closeErr = err
			}
		}
		if e.opts.snapshotOnClose {
			if _, err := e.SaveSnapshot(""); err != nil && e.closeErr == nil {
				e.closeErr = err
			}
		}
	})
	return e.closeErr
}
