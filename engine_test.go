package gsketch_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	gsketch "github.com/graphstream/gsketch"
)

// engineTestStream builds a deterministic skewed stream.
func engineTestStream(n int, seed int64) []gsketch.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]gsketch.Edge, n)
	for i := range edges {
		edges[i] = gsketch.Edge{
			Src:    uint64(rng.Intn(64)),
			Dst:    uint64(rng.Intn(512)),
			Weight: int64(1 + rng.Intn(3)),
		}
	}
	return edges
}

func engineTestQueries(edges []gsketch.Edge, n int) []gsketch.EdgeQuery {
	qs := make([]gsketch.EdgeQuery, n)
	for i := range qs {
		e := edges[(i*31)%len(edges)]
		qs[i] = gsketch.EdgeQuery{Src: e.Src, Dst: e.Dst}
	}
	return qs
}

var engineTestCfg = gsketch.Config{TotalBytes: 64 << 10, Seed: 21}

// TestOpenMatchesShimsByteIdentical is the shim-equivalence guard for the
// partitioned path: the classic New + NewConcurrent + Populate + Save
// wiring and the one-handle Open + Ingest + Save path must produce
// byte-identical snapshots and byte-identical batched answers.
func TestOpenMatchesShimsByteIdentical(t *testing.T) {
	edges := engineTestStream(20_000, 5)
	sample := edges[:2_000]
	qs := engineTestQueries(edges, 500)

	// Classic shims (PR 1-4 surface).
	g, err := gsketch.New(engineTestCfg, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	shim := gsketch.NewConcurrent(g)
	gsketch.Populate(shim, edges)
	var shimSnap bytes.Buffer
	if _, err := gsketch.Save(shim, &shimSnap); err != nil {
		t.Fatal(err)
	}
	shimRes := gsketch.EstimateBatch(shim, qs)

	// One-handle engine.
	eng, err := gsketch.Open(engineTestCfg, gsketch.WithSample(sample))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(context.Background(), edges...); err != nil {
		t.Fatal(err)
	}
	var engSnap bytes.Buffer
	if _, err := eng.Save(&engSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shimSnap.Bytes(), engSnap.Bytes()) {
		t.Fatalf("snapshot mismatch: shim %d bytes, engine %d bytes", shimSnap.Len(), engSnap.Len())
	}
	engRes := eng.QueryBatch(qs)
	for i := range qs {
		if shimRes[i] != engRes[i] {
			t.Fatalf("query %d: shim %+v, engine %+v", i, shimRes[i], engRes[i])
		}
	}

	// The deprecated Load shim reads the engine's snapshot.
	loaded, err := gsketch.Load(bytes.NewReader(engSnap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range gsketch.EstimateBatch(loaded, qs) {
		if r != shimRes[i] {
			t.Fatalf("loaded query %d: %+v want %+v", i, r, shimRes[i])
		}
	}
}

// TestOpenGlobalMatchesShim pins the §3.2 baseline path.
func TestOpenGlobalMatchesShim(t *testing.T) {
	edges := engineTestStream(10_000, 7)
	qs := engineTestQueries(edges, 200)

	gl, err := gsketch.NewGlobal(engineTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	gsketch.Populate(gl, edges)
	want := gsketch.EstimateBatch(gl, qs)

	eng, err := gsketch.Open(engineTestCfg, gsketch.WithGlobal())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(context.Background(), edges...); err != nil {
		t.Fatal(err)
	}
	got := eng.QueryBatch(qs)
	for i := range qs {
		if want[i] != got[i] {
			t.Fatalf("query %d: shim %+v, engine %+v", i, want[i], got[i])
		}
	}
}

// TestOpenWithIngestMatchesShimPipeline: the engine's mounted pipeline
// (WithIngest) lands exactly the same counters as the deprecated
// NewIngestor wiring over the same stream.
func TestOpenWithIngestMatchesShimPipeline(t *testing.T) {
	edges := engineTestStream(30_000, 9)
	sample := edges[:2_000]
	qs := engineTestQueries(edges, 300)
	icfg := gsketch.IngestConfig{Workers: 4, BatchSize: 512, QueueDepth: 8}

	g, err := gsketch.New(engineTestCfg, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	shim := gsketch.NewConcurrent(g)
	ing, err := gsketch.NewIngestor(shim, icfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	want := gsketch.EstimateBatch(shim, qs)

	eng, err := gsketch.Open(engineTestCfg, gsketch.WithSample(sample), gsketch.WithIngest(icfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(context.Background(), edges...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := eng.QueryBatch(qs)
	for i := range qs {
		if want[i] != got[i] {
			t.Fatalf("query %d: shim pipeline %+v, engine pipeline %+v", i, want[i], got[i])
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineChainMatchesShimChain drives the adaptive path both ways with
// identical inputs: the deprecated NewChain + Repartition shims and the
// engine's recorder-fed Repartition must produce byte-identical chain
// snapshots and answers.
func TestEngineChainMatchesShimChain(t *testing.T) {
	edges := engineTestStream(20_000, 11)
	sample := edges[:2_000]
	qs := engineTestQueries(edges[10_000:], 256)
	ccfg := gsketch.ChainConfig{SampleSize: 1024, Seed: 3, MaxGenerations: 4}
	clock := func() time.Time { return time.Unix(0, 0) }

	// Shim path: explicit chain, explicit workload slice.
	g0, err := gsketch.New(engineTestCfg, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	chain := gsketch.NewChain(g0, ccfg)
	chain.SetClock(clock) // v4 snapshots carry build times; match the engine's
	gsketch.Populate(chain, edges[:10_000])
	// The workload the engine will record: the served queries, weight 1,
	// timestamp 0 (the fixed clock).
	workload := make([]gsketch.Edge, len(qs))
	for i, q := range qs {
		workload[i] = gsketch.Edge{Src: q.Src, Dst: q.Dst, Weight: 1}
	}
	gsketch.EstimateBatch(chain, qs) // parity: routing counters see the reads
	if _, err := gsketch.Repartition(chain, engineTestCfg, workload); err != nil {
		t.Fatal(err)
	}
	gsketch.Populate(chain, edges[10_000:])
	want := gsketch.EstimateBatch(chain, qs)
	var wantSnap bytes.Buffer
	if _, err := chain.WriteTo(&wantSnap); err != nil {
		t.Fatal(err)
	}

	// Engine path: the served queries ARE the workload, via the recorder.
	eng, err := gsketch.Open(engineTestCfg,
		gsketch.WithSample(sample),
		gsketch.WithAdaptive(ccfg, gsketch.AdaptConfig{Sketch: engineTestCfg}),
		gsketch.WithWorkloadRecorder(len(qs), 0),
		gsketch.WithClock(clock),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(context.Background(), edges[:10_000]...); err != nil {
		t.Fatal(err)
	}
	eng.QueryBatch(qs)
	if _, err := eng.Repartition(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(context.Background(), edges[10_000:]...); err != nil {
		t.Fatal(err)
	}
	got := eng.QueryBatch(qs)
	for i := range qs {
		if want[i] != got[i] {
			t.Fatalf("query %d: shim chain %+v, engine chain %+v", i, want[i], got[i])
		}
	}
	var gotSnap bytes.Buffer
	if _, err := eng.Save(&gotSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantSnap.Bytes(), gotSnap.Bytes()) {
		t.Fatalf("chain snapshot mismatch: shim %d bytes, engine %d bytes", wantSnap.Len(), gotSnap.Len())
	}
	if eng.Generations() != 2 {
		t.Fatalf("generations = %d, want 2", eng.Generations())
	}
}

// TestEngineSnapshotRoundTrip: SaveSnapshot → Open(WithRestoreFile) →
// byte-identical answers, and the LoadChain shim reads the same file.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	edges := engineTestStream(10_000, 13)
	qs := engineTestQueries(edges, 200)

	eng, err := gsketch.Open(engineTestCfg,
		gsketch.WithSample(edges[:1_000]),
		gsketch.WithSnapshotDir(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(context.Background(), edges...); err != nil {
		t.Fatal(err)
	}
	want := eng.QueryBatch(qs)
	if _, err := eng.SaveSnapshot(""); err != nil {
		t.Fatal(err)
	}
	path := eng.SnapshotPath()
	if filepath.Dir(path) != dir {
		t.Fatalf("snapshot path %q not under %q", path, dir)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := gsketch.Open(engineTestCfg, gsketch.WithRestoreFile(path))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	got := back.QueryBatch(qs)
	for i := range qs {
		if want[i] != got[i] {
			t.Fatalf("query %d after round trip: %+v want %+v", i, got[i], want[i])
		}
	}

	// The deprecated LoadChain shim reads the same snapshot.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := gsketch.LoadChain(f, gsketch.ChainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range gsketch.EstimateBatch(c, qs) {
		// A restored single-generation chain answers with the same
		// estimates and bounds (stream totals included).
		if r != want[i] {
			t.Fatalf("LoadChain query %d: %+v want %+v", i, r, want[i])
		}
	}
}

// TestEngineLiveRestoreSwap: restoring into a serving engine swaps the
// state atomically and later ingest lands in the restored estimator.
func TestEngineLiveRestoreSwap(t *testing.T) {
	edges := engineTestStream(8_000, 17)
	eng, err := gsketch.Open(engineTestCfg,
		gsketch.WithSample(edges[:1_000]),
		gsketch.WithIngest(gsketch.IngestConfig{Workers: 2, BatchSize: 256}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(context.Background(), edges[:4_000]...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := eng.Save(&snap); err != nil {
		t.Fatal(err)
	}
	savedTotal := eng.Estimator().Count()

	// More traffic after the snapshot, then restore: the post-snapshot
	// edges are deliberately discarded with the displaced state.
	if err := eng.Ingest(context.Background(), edges[4_000:]...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := eng.Estimator().Count(); got != savedTotal {
		t.Fatalf("restored Count = %d, want %d", got, savedTotal)
	}
	// The restored state keeps serving and ingesting.
	if err := eng.Ingest(context.Background(), edges[:100]...); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := eng.Estimator().Count(); got <= savedTotal {
		t.Fatalf("post-restore ingest lost: Count = %d", got)
	}
	if st := eng.Stats(); st.SnapshotsRestored != 1 {
		t.Fatalf("SnapshotsRestored = %d, want 1", st.SnapshotsRestored)
	}
}

// TestEngineWindowMatchesShim: the engine's mounted window store answers
// exactly like a hand-fed WindowStore + EstimateWindowBatch.
func TestEngineWindowMatchesShim(t *testing.T) {
	wcfg := gsketch.WindowConfig{
		Span:       100,
		SampleSize: 256,
		Sketch:     engineTestCfg,
		Seed:       5,
	}
	edges := engineTestStream(5_000, 19)
	for i := range edges {
		edges[i].Time = int64(i) // nondecreasing timestamps
	}
	qs := engineTestQueries(edges, 100)

	shimStore, err := gsketch.NewWindowStore(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := shimStore.ObserveBatch(edges); err != nil {
		t.Fatal(err)
	}
	want := gsketch.EstimateWindowBatch(shimStore, qs, 1000, 4000)

	eng, err := gsketch.Open(engineTestCfg,
		gsketch.WithSample(edges[:500]),
		gsketch.WithWindows(wcfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(context.Background(), edges...); err != nil {
		t.Fatal(err)
	}
	got, err := eng.QueryWindow(qs, 1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("window query %d: shim %v, engine %v", i, want[i], got[i])
		}
	}
	// Restore is refused while the window store is mounted.
	if err := eng.Restore(bytes.NewReader(nil)); !errors.Is(err, gsketch.ErrWindowMounted) {
		t.Fatalf("Restore with window = %v, want ErrWindowMounted", err)
	}
}

// TestEngineAnswerRecordsWorkload: Answer/AnswerBatch constituents land in
// the workload reservoir like QueryBatch's.
func TestEngineAnswerRecordsWorkload(t *testing.T) {
	edges := engineTestStream(2_000, 23)
	eng, err := gsketch.Open(engineTestCfg,
		gsketch.WithSample(edges[:500]),
		gsketch.WithWorkloadRecorder(64, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Ingest(context.Background(), edges...); err != nil {
		t.Fatal(err)
	}
	resp := eng.Answer(gsketch.SubgraphQuery{
		Edges: []gsketch.EdgeQuery{{Src: edges[0].Src, Dst: edges[0].Dst}, {Src: edges[1].Src, Dst: edges[1].Dst}},
		Agg:   gsketch.Sum,
	})
	if len(resp.Results) != 2 {
		t.Fatalf("Answer folded %d results, want 2", len(resp.Results))
	}
	if st := eng.Stats(); st.Workload == nil || st.Workload.Seen != 2 {
		t.Fatalf("workload stats = %+v, want 2 seen", eng.Stats().Workload)
	}
}

// TestOpenValidation pins the option-combination errors.
func TestOpenValidation(t *testing.T) {
	if _, err := gsketch.Open(engineTestCfg); err == nil {
		t.Fatal("Open with no bootstrap source should fail")
	}
	if _, err := gsketch.Open(engineTestCfg, gsketch.WithGlobal(), gsketch.WithSample(nil)); err == nil {
		t.Fatal("Open with two bootstrap sources should fail")
	}
	if _, err := gsketch.Open(engineTestCfg, gsketch.WithGlobal(),
		gsketch.WithAdaptive(gsketch.ChainConfig{}, gsketch.AdaptConfig{})); err == nil {
		t.Fatal("WithGlobal + WithAdaptive should fail")
	}
	if _, err := gsketch.Open(engineTestCfg, gsketch.WithSample([]gsketch.Edge{{Src: 1, Dst: 2}}),
		gsketch.WithAutoRepartition(time.Second, nil)); err == nil {
		t.Fatal("WithAutoRepartition without WithAdaptive should fail")
	}

	eng, err := gsketch.Open(engineTestCfg, gsketch.WithSample([]gsketch.Edge{{Src: 1, Dst: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Repartition(); !errors.Is(err, gsketch.ErrNotAdaptive) {
		t.Fatalf("Repartition on non-adaptive = %v, want ErrNotAdaptive", err)
	}
	if _, err := eng.QueryWindow(nil, 0, 1); !errors.Is(err, gsketch.ErrNoWindow) {
		t.Fatalf("QueryWindow without store = %v, want ErrNoWindow", err)
	}
	if _, err := eng.SaveSnapshot(""); !errors.Is(err, gsketch.ErrNoSnapshotPath) {
		t.Fatalf("SaveSnapshot without path = %v, want ErrNoSnapshotPath", err)
	}
}

// TestEngineCloseDuringRepartition is the shutdown-ordering guard (run
// under -race in CI): Close must stop and await the auto-repartition loop
// before the final snapshot, so a rebuild can never race the save — even
// with manual Repartition calls and ingest in flight.
func TestEngineCloseDuringRepartition(t *testing.T) {
	dir := t.TempDir()
	edges := engineTestStream(12_000, 29)
	qs := engineTestQueries(edges[6_000:], 512)

	eng, err := gsketch.Open(engineTestCfg,
		gsketch.WithSample(edges[:1_000]),
		gsketch.WithIngest(gsketch.IngestConfig{Workers: 2, BatchSize: 128}),
		gsketch.WithAdaptive(
			gsketch.ChainConfig{SampleSize: 512, Seed: 7, MaxGenerations: 64},
			gsketch.AdaptConfig{
				Sketch:         engineTestCfg,
				DriftThreshold: 0.01, MinWorkload: 1, MinData: 1,
			},
		),
		gsketch.WithAutoRepartition(time.Millisecond, nil),
		gsketch.WithWorkloadRecorder(1024, 1),
		gsketch.WithSnapshotDir(dir),
		gsketch.WithSnapshotOnClose(),
	)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() { // ingest pressure keeps the data reservoir fresh
		defer wg.Done()
		for i := 0; ; i += 500 {
			select {
			case <-stop:
				return
			default:
			}
			_ = eng.Ingest(context.Background(), edges[i%10_000:i%10_000+500]...)
		}
	}()
	go func() { // query pressure feeds the drift signal and manual swaps
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			eng.QueryBatch(qs)
			_, _ = eng.Repartition()
		}
	}()

	time.Sleep(20 * time.Millisecond) // let swaps and the auto loop overlap
	if err := eng.Close(); err != nil {
		t.Fatalf("Close during repartition: %v", err)
	}
	close(stop)
	wg.Wait()

	// The final snapshot must be a loadable chain covering a consistent
	// state (Close stopped the loop before saving).
	f, err := os.Open(eng.SnapshotPath())
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	defer f.Close()
	if _, err := gsketch.LoadChain(f, gsketch.ChainConfig{}); err != nil {
		t.Fatalf("final snapshot unreadable: %v", err)
	}
	// Post-close ingest fails typed; reads stay usable.
	if err := eng.Ingest(context.Background(), edges[0]); !errors.Is(err, gsketch.ErrEngineClosed) {
		t.Fatalf("Ingest after Close = %v, want ErrEngineClosed", err)
	}
	eng.QueryBatch(qs[:8])
}
