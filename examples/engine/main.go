// Engine: the one-handle lifecycle — Open an adaptive, pipelined engine,
// stream edges through it with backpressure, serve bound-carrying queries
// (recorded as the live workload), repartition when the traffic drifts,
// snapshot, and resume from the snapshot.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/graphgen"
)

func main() {
	// A synthetic co-authorship stream stands in for a live feed.
	gen := graphgen.DBLPConfig{Authors: 2000, Papers: 20000, Seed: 1}
	edges, err := gen.Generate()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "gsketch-engine-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. One Open call composes the whole serving stack: partitioned
	//    estimator (from a stream-prefix sample), striped-lock concurrency,
	//    parallel ingest pipeline, generation-chained adaptive
	//    repartitioning fed by a live workload recorder, and snapshot
	//    persistence.
	cfg := gsketch.Config{TotalBytes: 32 << 10, Seed: 42}
	eng, err := gsketch.Open(cfg,
		gsketch.WithSample(edges[:len(edges)/10]),
		gsketch.WithIngest(gsketch.IngestConfig{}),
		gsketch.WithAdaptive(gsketch.ChainConfig{SampleSize: 4096}, gsketch.AdaptConfig{Sketch: cfg}),
		gsketch.WithWorkloadRecorder(2048, 7),
		gsketch.WithSnapshotDir(dir),
		gsketch.WithSnapshotOnClose(),
	)
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("engine: %d shards, %d bytes of counters\n", st.Partitions, st.MemoryBytes)

	// 2. Ingest with backpressure: producers block when the pipeline is
	//    full and unblock on ctx cancellation; TryIngest is the
	//    never-blocking variant (it sheds with ErrIngestQueueFull).
	if err := eng.Ingest(ctx, edges...); err != nil {
		log.Fatal(err)
	}
	if err := eng.Drain(ctx); err != nil { // read-your-writes barrier
		log.Fatal(err)
	}

	// 3. Query: every served batch is recorded into the workload reservoir
	//    — the drift signal and the §4.2 rebuild sample in one.
	queries := make([]gsketch.EdgeQuery, 0, 256)
	for _, e := range edges[:256] {
		queries = append(queries, gsketch.EdgeQuery{Src: e.Src, Dst: e.Dst})
	}
	results := eng.QueryBatch(queries)
	fmt.Printf("query:  f(%d→%d) ≈ %d ±%.1f at %.1f%% confidence\n",
		queries[0].Src, queries[0].Dst, results[0].Estimate,
		results[0].ErrorBound, 100*results[0].Confidence)

	resp := eng.Answer(gsketch.SubgraphQuery{Edges: queries[:8], Agg: gsketch.Sum})
	fmt.Printf("answer: SUM over 8 edges ≈ %.0f ±%.0f\n", resp.Value, resp.ErrorBound)

	// 4. The workload drifted? Rebuild the partitioning from the engine's
	//    live samples and hot-swap it in as a new generation — queries keep
	//    covering the whole stream with soundly combined bounds.
	rr, err := eng.Repartition()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swap:   generation %d live, %d partitions, build %s\n",
		rr.Generations, rr.Partitions, rr.BuildDuration.Round(0))
	if err := eng.Ingest(ctx, edges[:1000]...); err != nil { // keeps absorbing
		log.Fatal(err)
	}

	// 5. Close stops the adaptive loop, drains the pipeline, and persists a
	//    final snapshot (WithSnapshotOnClose). Reopen from it and the
	//    restored engine answers byte-identically.
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	before := eng.QueryBatch(queries) // read path stays usable after Close

	back, err := gsketch.Open(cfg,
		gsketch.WithRestoreFile(filepath.Join(dir, "gsketch.snap")),
		gsketch.WithAdaptive(gsketch.ChainConfig{SampleSize: 4096}, gsketch.AdaptConfig{Sketch: cfg}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer back.Close()
	after := back.QueryBatch(queries)
	for i := range before {
		if before[i].Estimate != after[i].Estimate {
			log.Fatalf("restore mismatch at %d: %d != %d", i, before[i].Estimate, after[i].Estimate)
		}
	}
	fmt.Printf("resume: %d generations restored, %d answers byte-identical\n",
		back.Generations(), len(after))
}
