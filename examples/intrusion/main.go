// Network-intrusion example (the paper's application 2): estimate attack
// frequencies between IP pairs on a sensor stream. Demonstrates the §4.2
// scenario — when a query-workload sample is available (here: the analyst
// repeatedly investigates the same suspicious sources), workload-aware
// partitioning beats data-only partitioning.
package main

import (
	"fmt"
	"log"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/graphgen"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/stream"
)

func main() {
	cfg := graphgen.DefaultIPAttack(2000, 12000, 300000, 9)
	edges, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)

	// The paper's sampling choice for this dataset: the first day's
	// packets are the data sample.
	dataSample := graphgen.FirstDay(edges)
	fmt.Printf("stream: %d packets over 5 days; first-day sample %d packets\n",
		len(edges), len(dataSample))

	// Analyst workload: Zipf-skewed queries over attack pairs (the same
	// suspicious pairs get re-investigated constantly).
	const alpha = 1.5
	workload := query.ZipfWorkloadSample(exact, 20000, alpha, 77, 78)
	queries := query.ZipfEdgeQueries(exact, 5000, alpha, 77, 79)

	const budget = 16 << 10
	base := gsketch.Config{TotalBytes: budget, Seed: 3}

	global, _ := gsketch.NewGlobal(base)
	dataOnly, err := gsketch.New(base, dataSample, nil)
	if err != nil {
		log.Fatal(err)
	}
	workloadAware, err := gsketch.New(base, dataSample, workload)
	if err != nil {
		log.Fatal(err)
	}
	gsketch.Populate(global, edges)
	gsketch.Populate(dataOnly, edges)
	gsketch.Populate(workloadAware, edges)

	fmt.Printf("\naccuracy on %d analyst queries (Zipf α=%.1f, %d-byte budget):\n",
		len(queries), alpha, budget)
	report := func(name string, est gsketch.Estimator) {
		acc := query.EvaluateEdgeQueries(est, exact, queries, query.DefaultG0)
		fmt.Printf("  %-22s avg relative error %8.3f   effective queries %5d/%d\n",
			name, acc.AvgRelErr, acc.Effective, acc.Total)
	}
	report("GlobalSketch", global)
	report("gSketch (data only)", dataOnly)
	report("gSketch (data+workload)", workloadAware)

	// Spot-check a heavy attacker pair.
	var src, dst uint64
	var f int64
	exact.RangeEdges(func(s, d uint64, freq int64) bool {
		if freq > f {
			src, dst, f = s, d, freq
		}
		return true
	})
	fmt.Printf("\nheaviest attack pair (%d -> %d): true %d, gSketch %d, within bound e·N_i/w_i = %.0f\n",
		src, dst, f, workloadAware.EstimateEdge(src, dst), workloadAware.ErrorBound(src))
}
