// Quickstart: build a gSketch from a stream sample, ingest the stream,
// and answer edge and subgraph queries — the minimal end-to-end flow.
package main

import (
	"fmt"
	"log"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/graphgen"
)

func main() {
	// A synthetic co-authorship stream stands in for a live feed.
	cfg := graphgen.DBLPConfig{Authors: 2000, Papers: 20000, Seed: 1}
	edges, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d author-pair arrivals\n", len(edges))

	// 1. Sample the stream with a reservoir (the sample steers sketch
	//    partitioning; 10% here).
	res := gsketch.NewReservoir(len(edges)/10, 7)
	for _, e := range edges {
		res.Observe(e)
	}

	// 2. Build the estimator with a deliberately tight 32 KiB budget (a
	//    generous budget would terminate partitioning at a single
	//    near-exact sketch via Theorem 1).
	g, err := gsketch.New(gsketch.Config{TotalBytes: 32 << 10, Seed: 42}, res.Sample(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gsketch: %d localized partitions, %d bytes of counters\n",
		g.NumPartitions(), g.MemoryBytes())

	// 3. Stream the edges through the parallel ingest pipeline: the
	//    Concurrent wrapper shards the locks by partition, and the
	//    Ingestor's workers apply batches in parallel (single pass,
	//    constant memory). For single-threaded use, gsketch.Populate(g,
	//    edges) does the same work inline.
	shared := gsketch.NewConcurrent(g)
	ing, err := gsketch.NewIngestor(shared, gsketch.IngestConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := ing.PushBatch(edges); err != nil {
		log.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d edges in %d batches across %d workers\n",
		ing.Edges(), ing.Batches(), ing.Workers())

	// 4. Edge query with guarantees: how often did the most frequent pair
	//    collaborate, and how much should we trust the answer? Answer
	//    resolves any query in one batched pass and reports the answering
	//    partition's error bound alongside the estimate.
	var top gsketch.Edge
	counts := map[[2]uint64]int64{}
	for _, e := range edges {
		counts[[2]uint64{e.Src, e.Dst}]++
		if counts[[2]uint64{e.Src, e.Dst}] > counts[[2]uint64{top.Src, top.Dst}] {
			top = e
		}
	}
	truth := counts[[2]uint64{top.Src, top.Dst}]
	resp := gsketch.Answer(shared, gsketch.EdgeQuery{Src: top.Src, Dst: top.Dst})
	fmt.Printf("edge (%d,%d): true %d, estimated %.0f ±%.1f at %.1f%% confidence\n",
		top.Src, top.Dst, truth, resp.Value, resp.ErrorBound, 100*resp.Confidence)

	// 5. Aggregate subgraph query: total collaboration volume of a 3-edge
	//    neighbourhood, decomposed and answered in a single batched pass.
	q := gsketch.SubgraphQuery{
		Edges: []gsketch.EdgeQuery{
			{Src: top.Src, Dst: top.Dst},
			{Src: top.Src, Dst: top.Dst + 1},
			{Src: top.Src, Dst: top.Dst + 2},
		},
		Agg: gsketch.Sum,
	}
	sub := gsketch.Answer(shared, q)
	fmt.Printf("subgraph SUM estimate: %.0f ±%.1f\n", sub.Value, sub.ErrorBound)

	// 6. Node query: this author's aggregate volume toward three named
	//    co-authors — all constituents share the source vertex, so one
	//    localized sketch answers the whole query.
	node := gsketch.Answer(shared, gsketch.NodeQuery{
		Node: top.Src,
		Out:  []uint64{top.Dst, top.Dst + 1, top.Dst + 2},
		Agg:  gsketch.Max,
	})
	fmt.Printf("node MAX estimate:     %.0f ±%.1f\n", node.Value, node.ErrorBound)
}
