// Social-network example (the paper's application 1): estimate
// communication frequencies between friends and within communities on a
// co-authorship-style interaction stream, comparing gSketch against the
// Global Sketch baseline at the same memory budget.
package main

import (
	"fmt"
	"log"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/graphgen"
	"github.com/graphstream/gsketch/internal/stream"
)

func main() {
	cfg := graphgen.DBLPConfig{Authors: 6000, Papers: 60000, Seed: 42}
	edges, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth for the demo report (a real deployment cannot afford
	// this; that is the point of sketching).
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	fmt.Printf("stream: %d interactions, %d distinct pairs, %d members\n",
		exact.Total(), exact.DistinctEdges(), exact.DistinctSources())

	const budget = 16 << 10 // deliberately tight: 16 KiB
	sample := reservoirSample(edges, 0.2, 7)

	g, err := gsketch.New(gsketch.Config{TotalBytes: budget, Seed: 1}, sample, nil)
	if err != nil {
		log.Fatal(err)
	}
	global, err := gsketch.NewGlobal(gsketch.Config{TotalBytes: budget, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	gsketch.Populate(g, edges)
	gsketch.Populate(global, edges)

	// "How often do these two friends interact?" — collect a spread of
	// true frequencies, then answer the whole set with one batched pass
	// per estimator. Each gSketch Result also names its answering
	// partition and the ε·N_i bound that partition guarantees.
	var probes []gsketch.EdgeQuery
	var truths []int64
	lastF := int64(-1)
	exact.RangeEdges(func(src, dst uint64, f int64) bool {
		if f == lastF || len(probes) >= 8 {
			return len(probes) < 8
		}
		lastF = f
		probes = append(probes, gsketch.EdgeQuery{Src: src, Dst: dst})
		truths = append(truths, f)
		return true
	})
	gRes := gsketch.EstimateBatch(g, probes)
	globalRes := gsketch.EstimateBatch(global, probes)
	fmt.Println("\npair-frequency estimates (16 KiB budget):")
	fmt.Println("true   gSketch  ±bound  GlobalSketch  ±bound")
	for i := range probes {
		fmt.Printf("%5d  %7d  %6.0f  %12d  %6.0f\n",
			truths[i], gRes[i].Estimate, gRes[i].ErrorBound,
			globalRes[i].Estimate, globalRes[i].ErrorBound)
	}

	// "What is the overall communication volume within a community?" —
	// an aggregate subgraph query over one member's neighbourhood.
	var hub uint64
	var best int64
	exact.RangeEdges(func(src, dst uint64, f int64) bool {
		if exact.VertexFrequency(src) > best {
			best = exact.VertexFrequency(src)
			hub = src
		}
		return true
	})
	var community gsketch.SubgraphQuery
	community.Agg = gsketch.Sum
	var truth float64
	exact.RangeEdges(func(src, dst uint64, f int64) bool {
		if src == hub {
			community.Edges = append(community.Edges, gsketch.EdgeQuery{Src: src, Dst: dst})
			truth += float64(f)
		}
		return true
	})
	gAns := gsketch.Answer(g, community)
	globalAns := gsketch.Answer(global, community)
	fmt.Printf("\ncommunity of member %d (%d edges): true volume %.0f\n", hub, len(community.Edges), truth)
	fmt.Printf("  gSketch estimate:      %.0f ±%.0f\n", gAns.Value, gAns.ErrorBound)
	fmt.Printf("  GlobalSketch estimate: %.0f ±%.0f\n", globalAns.Value, globalAns.ErrorBound)
}

func reservoirSample(edges []gsketch.Edge, frac float64, seed uint64) []gsketch.Edge {
	res := gsketch.NewReservoir(int(float64(len(edges))*frac), seed)
	for _, e := range edges {
		res.Observe(e)
	}
	out := make([]gsketch.Edge, len(res.Sample()))
	copy(out, res.Sample())
	return out
}
