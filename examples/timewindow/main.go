// Time-window example (§5 of the paper): summarize a stream in fixed time
// windows, each with its own partitioned sketch built from the previous
// window's reservoir sample, and answer interval queries by extrapolation.
package main

import (
	"fmt"
	"log"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/graphgen"
)

func main() {
	// Five "days" of attack traffic; the attacker population drifts over
	// time, which is what per-window partitioning absorbs.
	cfg := graphgen.DefaultIPAttack(1500, 8000, 200000, 4)
	edges, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}

	store, err := gsketch.NewWindowStore(gsketch.WindowConfig{
		Span:       1, // one window per generated "day"
		SampleSize: 5000,
		Sketch:     gsketch.Config{TotalBytes: 64 << 10, Seed: 11},
		Seed:       12,
	})
	if err != nil {
		log.Fatal(err)
	}
	// ObserveBatch hands each contiguous same-window run to the window
	// estimator in one batched update (per-edge Observe remains available).
	if err := store.ObserveBatch(edges); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stored %d windows:\n", len(store.Windows()))
	for _, w := range store.Windows() {
		kind := "global (bootstrap)"
		if w.Partitioned {
			kind = "partitioned gSketch"
		}
		fmt.Printf("  day %d: %7d arrivals, %s\n", w.Index, w.Arrivals, kind)
	}

	// Pick the heaviest pair of day 0 and track it across windows.
	counts := map[[2]uint64]int64{}
	var top [2]uint64
	for _, e := range edges {
		if e.Time != 0 {
			break
		}
		k := [2]uint64{e.Src, e.Dst}
		counts[k]++
		if counts[k] > counts[top] {
			top = k
		}
	}
	src, dst := top[0], top[1]
	fmt.Printf("\nattack pair (%d -> %d):\n", src, dst)
	// One batched pass per range: each overlapping window's sketch is
	// touched once for the whole query set.
	q := []gsketch.EdgeQuery{{Src: src, Dst: dst}}
	for day := int64(0); day < 5; day++ {
		fmt.Printf("  day %d estimate: %8.0f\n", day, gsketch.EstimateWindowBatch(store, q, day, day)[0])
	}
	fmt.Printf("  days 1-3:       %8.0f\n", gsketch.EstimateWindowBatch(store, q, 1, 3)[0])
	fmt.Printf("  lifetime:       %8.0f\n", store.EstimateEdgeAll(src, dst))
	fmt.Printf("total sketch memory across windows: %d bytes\n", store.MemoryBytes())
}
