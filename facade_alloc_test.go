package gsketch_test

import (
	"testing"

	gsketch "github.com/graphstream/gsketch"
)

// buildAllocSketch returns a populated gSketch plus a query batch hitting
// it, shared by the conversion-free read-path guards below.
func buildAllocSketch(tb testing.TB) (*gsketch.GSketch, []gsketch.EdgeQuery) {
	tb.Helper()
	var sample []gsketch.Edge
	for i := 0; i < 256; i++ {
		sample = append(sample, gsketch.Edge{Src: uint64(i % 32), Dst: uint64(i), Weight: 1})
	}
	g, err := gsketch.New(gsketch.Config{TotalBytes: 1 << 16, Seed: 7}, sample, nil)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	gsketch.Populate(g, sample)
	qs := make([]gsketch.EdgeQuery, 128)
	for i := range qs {
		qs[i] = gsketch.EdgeQuery{Src: uint64(i % 32), Dst: uint64(i)}
	}
	return g, qs
}

// TestEstimateBatchNoConversionAlloc guards the unified query type: the
// facade's EstimateBatch must hand the caller's []EdgeQuery to the
// estimator as-is, allocating exactly as much as a direct
// Estimator.EstimateBatch call — no conversion slice on the hot path.
func TestEstimateBatchNoConversionAlloc(t *testing.T) {
	g, qs := buildAllocSketch(t)
	direct := testing.AllocsPerRun(50, func() {
		_ = g.EstimateBatch(qs)
	})
	facade := testing.AllocsPerRun(50, func() {
		_ = gsketch.EstimateBatch(g, qs)
	})
	if facade != direct {
		t.Fatalf("facade EstimateBatch allocates %.1f objects/op, direct path %.1f — conversion copy crept back in", facade, direct)
	}
}

// BenchmarkFacadeEstimateBatch tracks the facade batch read path; its
// allocs/op must match the estimator's own EstimateBatch (see the test
// above for the hard guard).
func BenchmarkFacadeEstimateBatch(b *testing.B) {
	g, qs := buildAllocSketch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gsketch.EstimateBatch(g, qs)
	}
}
