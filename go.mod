module github.com/graphstream/gsketch

go 1.22
