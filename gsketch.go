package gsketch

import (
	"io"

	"github.com/graphstream/gsketch/internal/adapt"
	"github.com/graphstream/gsketch/internal/compact"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/window"
)

// Edge is one graph-stream element (x, y; t) with an optional frequency
// weight (0 counts as 1, the paper's default).
type Edge = stream.Edge

// Config parameterizes estimator construction. The zero value is not
// usable: set TotalBytes (or TotalWidth) and, for reproducibility, Seed.
// All other fields have sensible defaults.
type Config = core.Config

// Defaults re-exported from the core package.
const (
	// DefaultDepth is the sketch depth d used when Config.Depth is zero.
	DefaultDepth = core.DefaultDepth
	// DefaultOutlierFraction is the share of width reserved for the
	// outlier sketch when Config.OutlierFraction is zero.
	DefaultOutlierFraction = core.DefaultOutlierFraction
	// DefaultMinWidth is the partitioning threshold w0 used when
	// Config.MinWidth is zero.
	DefaultMinWidth = core.DefaultMinWidth
	// DefaultCollisionC is the Theorem-1 constant C used when
	// Config.CollisionC is zero.
	DefaultCollisionC = core.DefaultCollisionC
)

// Redistribution selects the policy for reallocating width freed by
// Theorem-1 leaf trimming.
type Redistribution = core.Redistribution

// Redistribution policies.
const (
	RedistributeProportional = core.RedistributeProportional
	RedistributeEven         = core.RedistributeEven
	RedistributeNone         = core.RedistributeNone
)

// Estimator is the common query surface of GSketch and GlobalSketch.
type Estimator = core.Estimator

// GSketch is the partitioned estimator — the paper's contribution.
type GSketch = core.GSketch

// GlobalSketch is the single-sketch baseline of §3.2.
type GlobalSketch = core.GlobalSketch

// Concurrent is a thread-safe estimator wrapper. Wrapping a *GSketch
// selects partition-sharded locking (the router is immutable, so each
// partition is an independent update domain); any other estimator gets a
// single read-write mutex.
type Concurrent = core.Concurrent

// Leaf describes one localized sketch of a partitioning.
type Leaf = core.Leaf

// New builds a gSketch from a data sample and an optional workload sample
// (nil selects the data-only objective of §4.1, non-nil the workload-aware
// objective of §4.2). The samples steer partitioning only; populate the
// estimator afterwards with Update.
//
// Deprecated: use Open(cfg, WithSample(dataSample),
// WithWorkloadSample(workloadSample)) — the one-handle Engine owns
// concurrency, ingest and snapshots too, and answers byte-identically.
func New(cfg Config, dataSample, workloadSample []Edge) (*GSketch, error) {
	return core.BuildGSketch(cfg, dataSample, workloadSample)
}

// NewGlobal builds the Global Sketch baseline with the same budget
// semantics as New.
//
// Deprecated: use Open(cfg, WithGlobal()).
func NewGlobal(cfg Config) (*GlobalSketch, error) {
	return core.BuildGlobalSketch(cfg)
}

// NewConcurrent wraps an estimator for concurrent use.
//
// Deprecated: Open wraps its estimator automatically; use Open(cfg,
// WithEstimator(est)) to adopt one built elsewhere.
func NewConcurrent(est Estimator) *Concurrent { return core.NewConcurrent(est) }

// Populate streams a slice of edges into an estimator in batches.
func Populate(est Estimator, edges []Edge) { core.Populate(est, edges) }

// Ingestor is the parallel batch-ingestion pipeline: a bounded
// multi-producer queue of edge batches drained by N workers into a shared
// estimator. Pair it with NewConcurrent(New(...)) so the workers write
// through partition-sharded locks.
type Ingestor = ingest.Ingestor

// IngestConfig parameterizes an Ingestor; the zero value selects defaults
// (GOMAXPROCS workers, 1024-edge batches, 4×Workers queue depth).
type IngestConfig = ingest.Config

// ErrIngestClosed reports a push against a closed Ingestor.
var ErrIngestClosed = ingest.ErrClosed

// ErrIngestQueueFull reports that a non-blocking TryPush/TryPushBatch could
// not enqueue because the pipeline is at capacity — the typed shed-load
// signal (retry later), as opposed to the hard failure ErrIngestClosed.
var ErrIngestQueueFull = ingest.ErrQueueFull

// NewIngestor starts a batch-ingestion pipeline feeding est. Close (or
// Flush) it before reading final results from est.
//
// Deprecated: use Open(cfg, ..., WithIngest(icfg)) — Engine.Ingest and
// Engine.TryIngest front the same pipeline with context-aware
// backpressure, and Engine.Close owns the drain.
func NewIngestor(est Estimator, cfg IngestConfig) (*Ingestor, error) {
	return ingest.New(est, cfg)
}

// Save serializes an estimator. It works for a bare *GSketch and for a
// *Concurrent wrapper — the latter snapshots under its striped read locks,
// so a save racing live writers is still internally consistent and a
// restored sketch answers byte-identically to the live one at save time.
// Estimators without a serialized form (GlobalSketch, custom synopses)
// return an error.
//
// Deprecated: use Engine.Save (or Engine.SaveSnapshot for atomic
// tmp+rename persistence); the byte format is identical.
func Save(est Estimator, w io.Writer) (int64, error) { return core.Save(est, w) }

// Load deserializes a gSketch previously saved with Save (or
// (*GSketch).WriteTo — the formats are identical). Wrap the result in
// NewConcurrent to resume serving shared traffic. Generation-chain
// snapshots (saved from a Chain) load with LoadChain instead.
//
// Deprecated: use Open(cfg, WithRestore(r)) — it loads single-sketch and
// chain snapshots alike and hands back a serving engine.
func Load(r io.Reader) (*GSketch, error) { return core.ReadGSketch(r) }

// Chain is a generation-chained estimator for adaptive repartitioning: one
// live head sketch absorbing the stream plus frozen prior generations
// still answering for the segments they saw. Updates go to the head;
// queries gather across every generation and combine soundly — estimates
// sum, per-generation ε·N_i bounds add, confidence combines by a union
// bound. Safe for concurrent use.
type Chain = adapt.Chain

// ChainConfig parameterizes a Chain (data-reservoir size and seed,
// generation cap). The zero value selects defaults.
type ChainConfig = adapt.ChainConfig

// RouteCounts is a snapshot of routed traffic per partition plus the
// outlier sketch — the raw drift signal adaptive repartitioning watches.
type RouteCounts = core.RouteCounts

// AdaptConfig parameterizes the adaptive repartitioning manager mounted by
// Open(..., WithAdaptive(...)): rebuild sketch configuration, drift and
// outlier-share thresholds, minimum sample sizes and the drift baseline.
type AdaptConfig = adapt.ManagerConfig

// Drift is one evaluation of how far live traffic has moved from the
// workload the serving partitioning was optimized for.
type Drift = adapt.Drift

// RepartitionResult reports one completed rebuild + hot swap.
type RepartitionResult = adapt.RepartitionResult

// CompactionPolicy parameterizes background generation compaction
// (WithCompaction): the fold triggers — chain length, resident memory,
// oldest-generation age — plus the fold width and check interval.
type CompactionPolicy = compact.Policy

// CompactionResult reports one completed generation fold: how many source
// generations merged away, whether the merge was the lossless cell-wise
// path, and the chain length and freed bytes after.
type CompactionResult = compact.Result

// ErrMaxGenerations reports a repartition refused because the chain is at
// its configured generation cap. Mount a CompactionPolicy (WithCompaction)
// and the cap stops being reachable: the manager folds old generations
// before refusing a rotation.
var ErrMaxGenerations = adapt.ErrMaxGenerations

// ErrEmptyReservoir reports a rebuild refused because no stream has been
// sampled since the last swap — ingest more, then repartition.
var ErrEmptyReservoir = adapt.ErrEmptyReservoir

// NewChain starts a generation chain with g as its only, live generation.
// Serve it like any estimator; when the workload drifts, Repartition hot-
// swaps a freshly partitioned generation in without forgetting the stream
// already summarized.
//
// Deprecated: use Open(cfg, WithSample(...), WithAdaptive(cfg, mc)) — the
// engine owns the chain, its repartition manager and the workload
// recorder feeding it.
func NewChain(g *GSketch, cfg ChainConfig) *Chain { return adapt.NewChain(g, cfg) }

// LoadChain deserializes a chain saved with (*Chain).WriteTo — or a plain
// pre-chain snapshot, which loads as a single-generation chain.
//
// Deprecated: use Open(cfg, WithRestore(r), WithAdaptive(cc, mc)).
func LoadChain(r io.Reader, cfg ChainConfig) (*Chain, error) {
	gens, err := core.ReadChain(r)
	if err != nil {
		return nil, err
	}
	return adapt.NewChainFrom(gens, cfg), nil
}

// Repartition rebuilds the partitioning from the chain's own data
// reservoir and an optional fresh query-workload sample (nil selects the
// data-only objective), then hot-swaps the result in as the chain's new
// live generation. It returns the new head sketch.
//
// Deprecated: use Engine.Repartition — it rebuilds from the recorded live
// workload and reports drift and swap latency.
func Repartition(c *Chain, cfg Config, workload []Edge) (*GSketch, error) {
	return adapt.Repartition(c, cfg, workload)
}

// EdgeQuery asks for the accumulated frequency of one directed edge. It is
// both the unit of the batched estimator read path (EstimateBatch) and a
// Query variant for Answer — one type end to end, so batched reads cross
// the facade without a conversion copy.
type EdgeQuery = core.EdgeQuery

// SubgraphQuery asks for the aggregate frequency behaviour of a bag of
// edges.
type SubgraphQuery = query.SubgraphQuery

// NodeQuery asks for the aggregate frequency behaviour of one source
// vertex's edges toward an explicit destination set. All constituents
// route to the same localized sketch, so the answer carries that single
// partition's guarantee.
type NodeQuery = query.NodeQuery

// Query is the sealed sum of the supported query kinds: EdgeQuery,
// SubgraphQuery and NodeQuery. Resolve one with Answer or a batch with
// AnswerBatch.
type Query = query.Query

// Result is one batched edge-query answer: the point estimate plus the
// answering partition, its ε·N_i error bound at confidence 1-δ, and a
// snapshot of the stream total.
type Result = core.Result

// NoPartition is the Result.Partition value of answers that did not come
// from a localized partition (outlier traffic, or a GlobalSketch).
const NoPartition = core.NoPartition

// Response is a resolved Query: the aggregate value, the per-edge Results
// it folded, and the combined error bound and confidence.
type Response = query.Response

// Aggregate is the Γ(·) of an aggregate subgraph or node query.
type Aggregate = query.Aggregate

// Supported aggregates.
const (
	Sum     = query.Sum
	Min     = query.Min
	Max     = query.Max
	Average = query.Average
	Count   = query.Count
)

// EstimateBatch answers a batch of edge queries in one routed pass over
// the estimator, returning one bound-carrying Result per query in input
// order. Point estimates are identical to per-edge EstimateEdge; routing,
// locking (under Concurrent) and per-partition counter passes are
// amortized across the batch.
func EstimateBatch(est Estimator, qs []EdgeQuery) []Result {
	return est.EstimateBatch(qs)
}

// Answer resolves any Query — edge, subgraph or node — against an
// estimator with a single batched pass and returns the value together with
// its combined error bound and confidence.
func Answer(est Estimator, q Query) Response {
	return query.Answer(est, q)
}

// AnswerBatch resolves a batch of heterogeneous queries with one routed
// estimator pass, returning Responses in input order.
func AnswerBatch(est Estimator, qs []Query) []Response {
	return query.AnswerBatch(est, qs)
}

// EstimateSubgraph resolves a subgraph query against an estimator by
// decomposing it into constituent edge queries and folding with Γ.
//
// Deprecated: use Answer(est, q), which resolves the same decomposition in
// one batched pass and also reports the combined error bound; this shim
// returns Answer(est, q).Value.
func EstimateSubgraph(est Estimator, q SubgraphQuery) float64 {
	return query.EstimateSubgraph(est, q)
}

// Reservoir maintains a uniform fixed-capacity sample of an unbounded
// stream (Vitter's Algorithm R) — the standard way to obtain the data
// sample New needs.
type Reservoir = stream.Reservoir

// NewReservoir returns a reservoir of the given capacity, deterministic
// under seed.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	return stream.NewReservoir(capacity, seed)
}

// Interner maps string vertex labels to dense uint64 ids and back.
type Interner = stream.Interner

// NewInterner returns an empty interner.
func NewInterner() *Interner { return stream.NewInterner() }

// WindowStore summarizes a stream in fixed time windows, each with its own
// partitioned sketch built from the previous window's reservoir sample
// (§5 of the paper).
type WindowStore = window.Store

// WindowConfig parameterizes a WindowStore.
type WindowConfig = window.StoreConfig

// NewWindowStore builds an empty windowed store.
func NewWindowStore(cfg WindowConfig) (*WindowStore, error) {
	return window.NewStore(cfg)
}

// EstimateWindowBatch answers a batch of edge queries over the time range
// [t1, t2] inclusive against a WindowStore: each overlapping window answers
// the whole batch in one routed pass and contributes its fractional
// overlap, so the per-window counters are touched once per batch instead of
// once per query. Values are identical to per-query WindowStore.EstimateEdge.
func EstimateWindowBatch(s *WindowStore, qs []EdgeQuery, t1, t2 int64) []float64 {
	return s.EstimateBatch(qs, t1, t2)
}
