package gsketch_test

import (
	"bytes"
	"fmt"
	"testing"

	gsketch "github.com/graphstream/gsketch"
)

// synthetic builds a small two-band stream: hub vertices with repeated
// heavy edges plus a tail of one-off edges.
func synthetic(n int) []gsketch.Edge {
	var edges []gsketch.Edge
	for i := 0; i < n; i++ {
		switch {
		case i%4 != 0:
			// Heavy band: few hub pairs repeated.
			hub := uint64(i % 8)
			edges = append(edges, gsketch.Edge{Src: hub, Dst: hub + 100, Weight: 1, Time: int64(i)})
		default:
			// Light band: fresh pair each time.
			edges = append(edges, gsketch.Edge{Src: uint64(1000 + i), Dst: uint64(2000 + i), Weight: 1, Time: int64(i)})
		}
	}
	return edges
}

func TestPublicAPIEndToEnd(t *testing.T) {
	edges := synthetic(20000)

	res := gsketch.NewReservoir(2000, 1)
	for _, e := range edges {
		res.Observe(e)
	}
	g, err := gsketch.New(gsketch.Config{TotalBytes: 64 << 10, Seed: 42}, res.Sample(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gsketch.Populate(g, edges)

	// Hub pair (1, 101): i%8 == 1 implies i%4 != 0, so it recurs
	// n/8 = 2500 times.
	est := g.EstimateEdge(1, 101)
	if est < 2500 {
		t.Errorf("hub estimate = %d, want ≥ 2500", est)
	}

	// Aggregate subgraph query over three hub pairs.
	q := gsketch.SubgraphQuery{
		Edges: []gsketch.EdgeQuery{{Src: 1, Dst: 101}, {Src: 2, Dst: 102}, {Src: 3, Dst: 103}},
		Agg:   gsketch.Sum,
	}
	if got := gsketch.EstimateSubgraph(g, q); got < 7000 {
		t.Errorf("subgraph SUM = %v, want ≥ 7000", got)
	}

	// Serialization round-trip through the facade.
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := gsketch.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.EstimateEdge(1, 101) != est {
		t.Error("loaded sketch disagrees")
	}
}

func TestPublicGlobalBaseline(t *testing.T) {
	edges := synthetic(5000)
	g, err := gsketch.NewGlobal(gsketch.Config{TotalBytes: 32 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gsketch.Populate(g, edges)
	if g.Count() != int64(len(edges)) {
		t.Errorf("count = %d", g.Count())
	}
}

func TestPublicConcurrent(t *testing.T) {
	edges := synthetic(5000)
	g, err := gsketch.New(gsketch.Config{TotalBytes: 32 << 10, Seed: 1}, edges[:500], nil)
	if err != nil {
		t.Fatal(err)
	}
	c := gsketch.NewConcurrent(g)
	done := make(chan struct{})
	go func() { defer close(done); gsketch.Populate(c, edges) }()
	for i := 0; i < 100; i++ {
		_ = c.EstimateEdge(1, 101)
	}
	<-done
	if c.Count() != int64(len(edges)) {
		t.Errorf("count = %d", c.Count())
	}
}

func TestPublicWindowStore(t *testing.T) {
	s, err := gsketch.NewWindowStore(gsketch.WindowConfig{
		Span:       1000,
		SampleSize: 100,
		Sketch:     gsketch.Config{TotalBytes: 16 << 10},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := s.Observe(gsketch.Edge{Src: 1, Dst: 2, Weight: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.EstimateEdgeAll(1, 2); got < 3000 {
		t.Errorf("windowed estimate = %v, want ≥ 3000", got)
	}
}

func TestPublicBatchedQueryAPI(t *testing.T) {
	edges := synthetic(20000)
	g, err := gsketch.New(gsketch.Config{TotalBytes: 64 << 10, Seed: 5}, edges[:2000], nil)
	if err != nil {
		t.Fatal(err)
	}
	gsketch.Populate(g, edges)

	// EstimateBatch matches per-edge EstimateEdge and carries guarantees.
	qs := []gsketch.EdgeQuery{{Src: 1, Dst: 101}, {Src: 2, Dst: 102}, {Src: 987654, Dst: 1}}
	res := gsketch.EstimateBatch(g, qs)
	if len(res) != len(qs) {
		t.Fatalf("EstimateBatch returned %d results", len(res))
	}
	for i, q := range qs {
		if res[i].Estimate != g.EstimateEdge(q.Src, q.Dst) {
			t.Fatalf("query %d: batch %d vs sequential %d", i, res[i].Estimate, g.EstimateEdge(q.Src, q.Dst))
		}
		if res[i].Confidence <= 0 || res[i].Confidence >= 1 {
			t.Fatalf("query %d: confidence %v", i, res[i].Confidence)
		}
		if res[i].StreamTotal != g.Count() {
			t.Fatalf("query %d: stream total %d, want %d", i, res[i].StreamTotal, g.Count())
		}
	}

	// Answer resolves each query kind through one batched pass.
	edge := gsketch.Answer(g, gsketch.EdgeQuery{Src: 1, Dst: 101})
	if edge.Value != float64(g.EstimateEdge(1, 101)) {
		t.Fatalf("Answer(edge) = %v", edge.Value)
	}
	sub := gsketch.Answer(g, gsketch.SubgraphQuery{
		Edges: []gsketch.EdgeQuery{{Src: 1, Dst: 101}, {Src: 2, Dst: 102}},
		Agg:   gsketch.Sum,
	})
	wantSum := float64(g.EstimateEdge(1, 101) + g.EstimateEdge(2, 102))
	if sub.Value != wantSum {
		t.Fatalf("Answer(subgraph SUM) = %v, want %v", sub.Value, wantSum)
	}
	if sub.ErrorBound <= 0 {
		t.Fatalf("subgraph bound %v", sub.ErrorBound)
	}
	node := gsketch.Answer(g, gsketch.NodeQuery{Node: 1, Out: []uint64{101, 102}, Agg: gsketch.Max})
	wantMax := float64(g.EstimateEdge(1, 101))
	if m := float64(g.EstimateEdge(1, 102)); m > wantMax {
		wantMax = m
	}
	if node.Value != wantMax {
		t.Fatalf("Answer(node MAX) = %v, want %v", node.Value, wantMax)
	}

	// AnswerBatch flattens heterogeneous queries into one estimator pass.
	batch := gsketch.AnswerBatch(g, []gsketch.Query{
		gsketch.EdgeQuery{Src: 1, Dst: 101},
		gsketch.SubgraphQuery{Edges: []gsketch.EdgeQuery{{Src: 2, Dst: 102}}, Agg: gsketch.Average},
	})
	if len(batch) != 2 || batch[0].Value != edge.Value {
		t.Fatalf("AnswerBatch = %+v", batch)
	}

	// The deprecated shim still answers through the batched path.
	if got := gsketch.EstimateSubgraph(g, gsketch.SubgraphQuery{
		Edges: []gsketch.EdgeQuery{{Src: 1, Dst: 101}, {Src: 2, Dst: 102}},
		Agg:   gsketch.Sum,
	}); got != wantSum {
		t.Fatalf("EstimateSubgraph shim = %v, want %v", got, wantSum)
	}
}

func TestPublicWindowBatch(t *testing.T) {
	s, err := gsketch.NewWindowStore(gsketch.WindowConfig{
		Span:       1000,
		SampleSize: 100,
		Sketch:     gsketch.Config{TotalBytes: 16 << 10},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := s.Observe(gsketch.Edge{Src: 1, Dst: 2, Weight: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	qs := []gsketch.EdgeQuery{{Src: 1, Dst: 2}, {Src: 9, Dst: 9}}
	got := gsketch.EstimateWindowBatch(s, qs, 0, 2999)
	if got[0] != s.EstimateEdge(1, 2, 0, 2999) {
		t.Fatalf("windowed batch %v vs sequential %v", got[0], s.EstimateEdge(1, 2, 0, 2999))
	}
	if got[1] != s.EstimateEdge(9, 9, 0, 2999) {
		t.Fatalf("windowed batch absent-edge %v", got[1])
	}
}

func TestPublicInterner(t *testing.T) {
	in := gsketch.NewInterner()
	alice := in.Intern("10.0.0.1")
	bob := in.Intern("10.0.0.2")
	g, err := gsketch.New(gsketch.Config{TotalBytes: 16 << 10, Seed: 1},
		[]gsketch.Edge{{Src: alice, Dst: bob, Weight: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Update(gsketch.Edge{Src: alice, Dst: bob, Weight: 7})
	if est := g.EstimateEdge(alice, bob); est < 7 {
		t.Errorf("estimate = %d", est)
	}
}

// ExampleNew demonstrates the quickstart flow: sample, build, stream,
// query.
func ExampleNew() {
	// A toy stream: the pair (1, 2) appears 6 times, (3, 4) once.
	stream := []gsketch.Edge{
		{Src: 1, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 2},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 2},
		{Src: 3, Dst: 4},
	}
	g, err := gsketch.New(gsketch.Config{TotalBytes: 1 << 16, Seed: 7}, stream, nil)
	if err != nil {
		panic(err)
	}
	gsketch.Populate(g, stream)
	fmt.Println(g.EstimateEdge(1, 2))
	// Output: 6
}

// ExampleEstimateSubgraph demonstrates an aggregate subgraph query.
func ExampleEstimateSubgraph() {
	stream := []gsketch.Edge{
		{Src: 1, Dst: 2, Weight: 5},
		{Src: 2, Dst: 3, Weight: 7},
	}
	g, err := gsketch.New(gsketch.Config{TotalBytes: 1 << 16, Seed: 7}, stream, nil)
	if err != nil {
		panic(err)
	}
	gsketch.Populate(g, stream)
	total := gsketch.EstimateSubgraph(g, gsketch.SubgraphQuery{
		Edges: []gsketch.EdgeQuery{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}},
		Agg:   gsketch.Sum,
	})
	fmt.Println(total)
	// Output: 12
}
