package gsketch_test

import (
	"bytes"
	"fmt"
	"testing"

	gsketch "github.com/graphstream/gsketch"
)

// synthetic builds a small two-band stream: hub vertices with repeated
// heavy edges plus a tail of one-off edges.
func synthetic(n int) []gsketch.Edge {
	var edges []gsketch.Edge
	for i := 0; i < n; i++ {
		switch {
		case i%4 != 0:
			// Heavy band: few hub pairs repeated.
			hub := uint64(i % 8)
			edges = append(edges, gsketch.Edge{Src: hub, Dst: hub + 100, Weight: 1, Time: int64(i)})
		default:
			// Light band: fresh pair each time.
			edges = append(edges, gsketch.Edge{Src: uint64(1000 + i), Dst: uint64(2000 + i), Weight: 1, Time: int64(i)})
		}
	}
	return edges
}

func TestPublicAPIEndToEnd(t *testing.T) {
	edges := synthetic(20000)

	res := gsketch.NewReservoir(2000, 1)
	for _, e := range edges {
		res.Observe(e)
	}
	g, err := gsketch.New(gsketch.Config{TotalBytes: 64 << 10, Seed: 42}, res.Sample(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gsketch.Populate(g, edges)

	// Hub pair (1, 101): i%8 == 1 implies i%4 != 0, so it recurs
	// n/8 = 2500 times.
	est := g.EstimateEdge(1, 101)
	if est < 2500 {
		t.Errorf("hub estimate = %d, want ≥ 2500", est)
	}

	// Aggregate subgraph query over three hub pairs.
	q := gsketch.SubgraphQuery{
		Edges: []gsketch.EdgeQuery{{Src: 1, Dst: 101}, {Src: 2, Dst: 102}, {Src: 3, Dst: 103}},
		Agg:   gsketch.Sum,
	}
	if got := gsketch.EstimateSubgraph(g, q); got < 7000 {
		t.Errorf("subgraph SUM = %v, want ≥ 7000", got)
	}

	// Serialization round-trip through the facade.
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := gsketch.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.EstimateEdge(1, 101) != est {
		t.Error("loaded sketch disagrees")
	}
}

func TestPublicGlobalBaseline(t *testing.T) {
	edges := synthetic(5000)
	g, err := gsketch.NewGlobal(gsketch.Config{TotalBytes: 32 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gsketch.Populate(g, edges)
	if g.Count() != int64(len(edges)) {
		t.Errorf("count = %d", g.Count())
	}
}

func TestPublicConcurrent(t *testing.T) {
	edges := synthetic(5000)
	g, err := gsketch.New(gsketch.Config{TotalBytes: 32 << 10, Seed: 1}, edges[:500], nil)
	if err != nil {
		t.Fatal(err)
	}
	c := gsketch.NewConcurrent(g)
	done := make(chan struct{})
	go func() { defer close(done); gsketch.Populate(c, edges) }()
	for i := 0; i < 100; i++ {
		_ = c.EstimateEdge(1, 101)
	}
	<-done
	if c.Count() != int64(len(edges)) {
		t.Errorf("count = %d", c.Count())
	}
}

func TestPublicWindowStore(t *testing.T) {
	s, err := gsketch.NewWindowStore(gsketch.WindowConfig{
		Span:       1000,
		SampleSize: 100,
		Sketch:     gsketch.Config{TotalBytes: 16 << 10},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := s.Observe(gsketch.Edge{Src: 1, Dst: 2, Weight: 1, Time: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.EstimateEdgeAll(1, 2); got < 3000 {
		t.Errorf("windowed estimate = %v, want ≥ 3000", got)
	}
}

func TestPublicInterner(t *testing.T) {
	in := gsketch.NewInterner()
	alice := in.Intern("10.0.0.1")
	bob := in.Intern("10.0.0.2")
	g, err := gsketch.New(gsketch.Config{TotalBytes: 16 << 10, Seed: 1},
		[]gsketch.Edge{{Src: alice, Dst: bob, Weight: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Update(gsketch.Edge{Src: alice, Dst: bob, Weight: 7})
	if est := g.EstimateEdge(alice, bob); est < 7 {
		t.Errorf("estimate = %d", est)
	}
}

// ExampleNew demonstrates the quickstart flow: sample, build, stream,
// query.
func ExampleNew() {
	// A toy stream: the pair (1, 2) appears 6 times, (3, 4) once.
	stream := []gsketch.Edge{
		{Src: 1, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 2},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 2}, {Src: 1, Dst: 2},
		{Src: 3, Dst: 4},
	}
	g, err := gsketch.New(gsketch.Config{TotalBytes: 1 << 16, Seed: 7}, stream, nil)
	if err != nil {
		panic(err)
	}
	gsketch.Populate(g, stream)
	fmt.Println(g.EstimateEdge(1, 2))
	// Output: 6
}

// ExampleEstimateSubgraph demonstrates an aggregate subgraph query.
func ExampleEstimateSubgraph() {
	stream := []gsketch.Edge{
		{Src: 1, Dst: 2, Weight: 5},
		{Src: 2, Dst: 3, Weight: 7},
	}
	g, err := gsketch.New(gsketch.Config{TotalBytes: 1 << 16, Seed: 7}, stream, nil)
	if err != nil {
		panic(err)
	}
	gsketch.Populate(g, stream)
	total := gsketch.EstimateSubgraph(g, gsketch.SubgraphQuery{
		Edges: []gsketch.EdgeQuery{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}},
		Agg:   gsketch.Sum,
	})
	fmt.Println(total)
	// Output: 12
}
