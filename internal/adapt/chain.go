// Package adapt is the online repartitioning subsystem: it keeps the
// paper's workload-optimized partitioning (§4.2) good as the stream and the
// query workload drift, without ever forgetting the stream already seen.
//
// gSketch builds its partitioning once, offline, from a data sample and a
// query-workload sample. A long-lived server accumulates both continuously
// — the serving layer records live /query traffic, and a chain-owned
// reservoir samples the live stream — so the build inputs can be refreshed
// at any time. What cannot be refreshed is the counters: a freshly
// partitioned sketch is empty, and CountMin counters from differently
// partitioned sketches cannot be merged cell-wise.
//
// The generation chain resolves this. A Chain is a core.Estimator holding
// one live head sketch plus frozen prior generations. Updates go only to
// the head; queries gather across every generation and combine soundly
// (estimates sum, per-generation ε·N_i bounds add, confidence via a union
// bound — see query.AccumulateResults). Repartitioning then becomes a hot
// swap: build a new gSketch from fresh samples, push it as the new head,
// and let the displaced head answer — frozen — for the stream it absorbed.
//
// The Manager closes the loop: it measures drift between the workload the
// current partitioning was built from and the live recorded workload
// (total-variation divergence over source-vertex query frequencies), plus
// the share of query traffic the outlier sketch absorbs, and triggers a
// rebuild + rotate when either crosses its threshold — or on demand.
package adapt

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/stream"
)

// ErrMaxGenerations reports a rotation refused because the chain is at its
// configured generation cap. Generations cannot be merged (their hash
// layouts differ), so the cap bounds per-query gather cost; compact by
// snapshotting and rebuilding offline if it is ever reached.
var ErrMaxGenerations = errors.New("adapt: generation cap reached")

// ErrEmptyReservoir reports a rebuild refused because no stream has been
// sampled since the last swap — there is no data to partition from. The
// retry-later signal: ingest more, then repartition.
var ErrEmptyReservoir = errors.New("adapt: data reservoir is empty")

// ChainConfig parameterizes a Chain. The zero value selects the defaults.
type ChainConfig struct {
	// SampleSize is the capacity of the chain's data reservoir — the fresh
	// data sample a rebuild partitions from (default 4096). The reservoir
	// resets on every rotation so the next rebuild sees the stream since
	// the last swap.
	SampleSize int
	// Seed makes the reservoir deterministic.
	Seed uint64
	// MaxGenerations caps the chain length (default 8). Rotate fails with
	// ErrMaxGenerations once reached.
	MaxGenerations int
}

func (c ChainConfig) withDefaults() ChainConfig {
	if c.SampleSize == 0 {
		c.SampleSize = 4096
	}
	if c.MaxGenerations == 0 {
		c.MaxGenerations = 8
	}
	return c
}

// generation pairs one sketch with its concurrency wrapper. The wrapper
// stays attached for the generation's whole life: writers in flight during
// a rotation may still land a final batch in a just-frozen generation
// through its striped locks, and queries keep reading every generation.
type generation struct {
	g    *core.GSketch
	conc *core.Concurrent
}

// Chain is a generation-chained estimator: one live head sketch absorbing
// the stream plus zero or more frozen prior generations still answering for
// the segments they saw. It implements core.Estimator (updates to the head,
// batched queries gathered and combined across all generations) and
// io.WriterTo (the version-3 chain container). All methods are safe for
// concurrent use; per-partition write parallelism inside the head is the
// wrapped Concurrent's usual striped locking.
type Chain struct {
	cfg ChainConfig

	mu   sync.RWMutex // guards gens; held shared across estimator calls
	gens []*generation

	resMu sync.Mutex // guards res; independent of mu so sampling never blocks rotation
	res   *stream.Reservoir
}

// NewChain starts a chain with g as its only (live) generation.
func NewChain(g *core.GSketch, cfg ChainConfig) *Chain {
	return NewChainFrom([]*core.GSketch{g}, cfg)
}

// NewChainFrom rebuilds a chain from deserialized generations, oldest
// first — the shape core.ReadChain returns. The last element becomes the
// live head. It panics on an empty slice.
func NewChainFrom(gens []*core.GSketch, cfg ChainConfig) *Chain {
	if len(gens) == 0 {
		panic("adapt: chain needs at least one generation")
	}
	cfg = cfg.withDefaults()
	c := &Chain{
		cfg: cfg,
		res: stream.NewReservoir(cfg.SampleSize, cfg.Seed),
	}
	for _, g := range gens {
		c.gens = append(c.gens, &generation{g: g, conc: core.NewConcurrent(g)})
	}
	return c
}

// Config returns the chain's resolved configuration.
func (c *Chain) Config() ChainConfig { return c.cfg }

// head returns the live generation under the shared lock.
func (c *Chain) head() *generation {
	c.mu.RLock()
	h := c.gens[len(c.gens)-1]
	c.mu.RUnlock()
	return h
}

// Update folds one edge arrival into the head and offers it to the data
// reservoir. An update racing a rotation may land in the just-frozen
// generation instead — harmless, since queries sum every generation.
func (c *Chain) Update(e stream.Edge) {
	c.head().conc.Update(e)
	c.resMu.Lock()
	c.res.Observe(e)
	c.resMu.Unlock()
}

// UpdateBatch folds a batch into the head (sharded route-then-scatter under
// the head's striped locks) and offers every edge to the data reservoir.
func (c *Chain) UpdateBatch(edges []stream.Edge) {
	if len(edges) == 0 {
		return
	}
	c.head().conc.UpdateBatch(edges)
	c.resMu.Lock()
	c.res.ObserveAll(edges)
	c.resMu.Unlock()
}

// EstimateEdge answers an edge query as the sum of every generation's
// estimate — each generation never underestimates its own stream segment,
// so the sum never underestimates the whole stream.
func (c *Chain) EstimateEdge(src, dst uint64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sum int64
	for _, gen := range c.gens {
		sum += gen.conc.EstimateEdge(src, dst)
	}
	return sum
}

// EstimateBatch answers a batch of edge queries across all generations: the
// head answers first (its Results carry the provenance of the partitioning
// currently serving), then every frozen generation's answers fold in via
// query.AccumulateResults — estimates sum, ε·N_i bounds add, confidence
// combines by union bound, stream totals sum to the chain-wide volume.
func (c *Chain) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := c.gens[len(c.gens)-1].conc.EstimateBatch(qs)
	for i := len(c.gens) - 2; i >= 0; i-- {
		query.AccumulateResults(out, c.gens[i].conc.EstimateBatch(qs))
	}
	return out
}

// Count returns the chain-wide stream volume: the sum over generations.
func (c *Chain) Count() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sum int64
	for _, gen := range c.gens {
		sum += gen.conc.Count()
	}
	return sum
}

// MemoryBytes reports the summed counter footprint of all generations.
func (c *Chain) MemoryBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, gen := range c.gens {
		total += gen.conc.MemoryBytes()
	}
	return total
}

// NumShards reports the head generation's independent writer domains.
func (c *Chain) NumShards() int { return c.head().conc.NumShards() }

// Generations returns the current chain length.
func (c *Chain) Generations() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.gens)
}

// AtCap reports whether the chain is at its generation cap, i.e. the next
// Rotate would fail with ErrMaxGenerations. Callers check it before paying
// for a rebuild.
func (c *Chain) AtCap() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.gens) >= c.cfg.MaxGenerations
}

// Head returns the live generation's sketch, for callers reading layout or
// routing statistics. The sketch is shared — treat it as read-only.
func (c *Chain) Head() *core.GSketch { return c.head().g }

// WriteRouteCounts forwards the head generation's routed write traffic.
func (c *Chain) WriteRouteCounts() core.RouteCounts { return c.head().g.WriteRouteCounts() }

// ReadRouteCounts forwards the head generation's routed query traffic.
func (c *Chain) ReadRouteCounts() core.RouteCounts { return c.head().g.ReadRouteCounts() }

// Sample returns a copy of the data reservoir — the fresh data sample a
// rebuild partitions from.
func (c *Chain) Sample() []stream.Edge {
	c.resMu.Lock()
	defer c.resMu.Unlock()
	s := c.res.Sample()
	out := make([]stream.Edge, len(s))
	copy(out, s)
	return out
}

// SampleSize returns the current data-reservoir fill without copying.
func (c *Chain) SampleSize() int {
	c.resMu.Lock()
	defer c.resMu.Unlock()
	return len(c.res.Sample())
}

// Rotate freezes the current head and installs g as the new live
// generation, then resets the data reservoir so the next rebuild samples
// only the stream after this swap. Updates racing the swap land in one
// generation or the other, never nowhere; queries racing the swap see
// either chain state, both of which cover the full stream.
func (c *Chain) Rotate(g *core.GSketch) error {
	gen := &generation{g: g, conc: core.NewConcurrent(g)}
	c.mu.Lock()
	if len(c.gens) >= c.cfg.MaxGenerations {
		c.mu.Unlock()
		return fmt.Errorf("%w (%d generations)", ErrMaxGenerations, len(c.gens))
	}
	c.gens = append(c.gens, gen)
	c.mu.Unlock()
	c.resMu.Lock()
	c.res.Reset()
	c.resMu.Unlock()
	return nil
}

// WriteTo serializes the whole chain as a version-3 container: every
// generation's consistent snapshot (stripe read locks per generation),
// oldest first. ReadChain + NewChainFrom restore it; a single-generation
// pre-chain snapshot also restores via the same path.
func (c *Chain) WriteTo(w io.Writer) (int64, error) {
	c.mu.RLock()
	writers := make([]io.WriterTo, len(c.gens))
	for i, gen := range c.gens {
		writers[i] = gen.conc
	}
	c.mu.RUnlock()
	return core.WriteChain(w, writers)
}

// Repartition builds a new generation from the chain's own data reservoir
// and the supplied query-workload sample (nil selects the data-only §4.1
// objective), then rotates it in as the live head. It returns the new
// head. Callers wanting drift-triggered rebuilds use a Manager instead.
func Repartition(c *Chain, cfg core.Config, workload []stream.Edge) (*core.GSketch, error) {
	// Check the cap up front: a build is expensive and Rotate would refuse
	// it anyway. Rotate re-checks under the lock, so a racing rotation
	// still cannot push the chain past the cap.
	if c.AtCap() {
		return nil, fmt.Errorf("%w (%d generations)", ErrMaxGenerations, c.Generations())
	}
	sample := c.Sample()
	if len(sample) == 0 {
		return nil, fmt.Errorf("%w; nothing to partition from", ErrEmptyReservoir)
	}
	g, err := core.BuildGSketch(cfg, sample, workload)
	if err != nil {
		return nil, err
	}
	if err := c.Rotate(g); err != nil {
		return nil, err
	}
	return g, nil
}

var (
	_ core.Estimator        = (*Chain)(nil)
	_ core.RouteStatsSource = (*Chain)(nil)
	_ io.WriterTo           = (*Chain)(nil)
)
