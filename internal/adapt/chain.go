// Package adapt is the online repartitioning subsystem: it keeps the
// paper's workload-optimized partitioning (§4.2) good as the stream and the
// query workload drift, without ever forgetting the stream already seen.
//
// gSketch builds its partitioning once, offline, from a data sample and a
// query-workload sample. A long-lived server accumulates both continuously
// — the serving layer records live /query traffic, and a chain-owned
// reservoir samples the live stream — so the build inputs can be refreshed
// at any time. What cannot be refreshed is the counters: a freshly
// partitioned sketch is empty, and CountMin counters from differently
// partitioned sketches cannot be merged cell-wise.
//
// The generation chain resolves this. A Chain is a core.Estimator holding
// one live head sketch plus frozen prior generations. Updates go only to
// the head; queries gather across every generation and combine soundly
// (estimates sum, per-generation ε·N_i bounds add, confidence via a union
// bound — see query.AccumulateResults). Repartitioning then becomes a hot
// swap: build a new gSketch from fresh samples, push it as the new head,
// and let the displaced head answer — frozen — for the stream it absorbed.
//
// The Manager closes the loop: it measures drift between the workload the
// current partitioning was built from and the live recorded workload
// (total-variation divergence over source-vertex query frequencies), plus
// the share of query traffic the outlier sketch absorbs, and triggers a
// rebuild + rotate when either crosses its threshold — or on demand.
//
// Long-lived chains are lifecycle-managed by internal/compact: Compact
// folds the oldest frozen generations into one (bounding chain length and
// memory), tiering spills cold frozen generations to disk with lazy
// reload, and optional age decay down-weights ancient generations at
// gather time.
package adapt

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"github.com/graphstream/gsketch/internal/compact"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/stream"
)

// ErrMaxGenerations reports a rotation refused because the chain is at its
// configured generation cap. The cap bounds per-query gather cost; a chain
// under a compaction policy folds old generations before the cap is hit,
// making this error unreachable in managed operation.
var ErrMaxGenerations = errors.New("adapt: generation cap reached")

// ErrEmptyReservoir reports a rebuild refused because no stream has been
// sampled since the last swap — there is no data to partition from. The
// retry-later signal: ingest more, then repartition.
var ErrEmptyReservoir = errors.New("adapt: data reservoir is empty")

// ErrNothingToCompact reports a compaction refused because the chain has
// fewer than two frozen generations to fold.
var ErrNothingToCompact = errors.New("adapt: nothing to compact")

// ChainConfig parameterizes a Chain. The zero value selects the defaults.
type ChainConfig struct {
	// SampleSize is the capacity of the chain's data reservoir — the fresh
	// data sample a rebuild partitions from (default 4096). The reservoir
	// resets on every rotation so the next rebuild sees the stream since
	// the last swap.
	SampleSize int
	// Seed makes the reservoir deterministic.
	Seed uint64
	// MaxGenerations caps the chain length (default 8). Rotate fails with
	// ErrMaxGenerations once reached.
	MaxGenerations int
}

func (c ChainConfig) withDefaults() ChainConfig {
	if c.SampleSize == 0 {
		c.SampleSize = 4096
	}
	if c.MaxGenerations == 0 {
		c.MaxGenerations = 8
	}
	return c
}

// ChainLifecycleStats is the chain's generation-lifecycle snapshot.
type ChainLifecycleStats struct {
	// Generations is the chain length (head + frozen).
	Generations int
	// Resident counts generations whose counters are in RAM.
	Resident int
	// Tiered counts frozen generations with a disk copy.
	Tiered int
	// TieredBytes is the counter footprint currently off-RAM: the summed
	// sketch bytes of tiered generations that are not resident.
	TieredBytes int64
	// OldestFrozenAge is how long the oldest frozen generation has been
	// frozen (0 when none or unknown).
	OldestFrozenAge time.Duration
	// CompactedFrom sums the source generations folded into the current
	// chain — Generations plus how many former generations compaction
	// absorbed.
	CompactedFrom int
}

// Chain is a generation-chained estimator: one live head sketch absorbing
// the stream plus zero or more frozen prior generations still answering for
// the segments they saw. It implements core.Estimator (updates to the head,
// batched queries gathered and combined across all generations) and
// io.WriterTo (the version-4 chain container with per-generation lifecycle
// records). All methods are safe for concurrent use; per-partition write
// parallelism inside the head is the wrapped Concurrent's usual striped
// locking.
//
// Frozen generations are immutable: updates run under the shared lock, so
// a rotation's exclusive lock drains every in-flight writer before the
// displaced head becomes frozen. That immutability is what makes
// compaction (snapshot, merge offline, install) and tiering (spill, lazy
// reload) race-free against concurrent ingest.
type Chain struct {
	cfg ChainConfig

	mu   sync.RWMutex // guards gens; held shared across estimator calls
	gens []*compact.Segment

	resMu sync.Mutex // guards res; independent of mu so sampling never blocks rotation
	res   *stream.Reservoir

	// compactMu serializes compactions (manual, policy-driven, and
	// rotation-pressure) so only one fold mutates the frozen prefix at a
	// time.
	compactMu sync.Mutex

	// Lifecycle configuration. Set via SetDecay/SetTiering/SetClock before
	// the chain is shared across goroutines (the engine configures a chain
	// fully before publishing it).
	decayHalfLife time.Duration
	tierDir       string
	tierResident  int
	now           func() time.Time
}

// NewChain starts a chain with g as its only (live) generation.
func NewChain(g *core.GSketch, cfg ChainConfig) *Chain {
	return NewChainFrom([]*core.GSketch{g}, cfg)
}

// NewChainFrom rebuilds a chain from deserialized generations, oldest
// first — the shape core.ReadChain returns. The last element becomes the
// live head. It panics on an empty slice.
func NewChainFrom(gens []*core.GSketch, cfg ChainConfig) *Chain {
	return NewChainFromMeta(gens, nil, cfg)
}

// NewChainFromMeta is NewChainFrom carrying the per-generation lifecycle
// records of a version-4 chain stream (core.ReadChainMeta). metas may be
// nil (all records default) or must match gens element-wise. A frozen
// generation's freeze time is inferred as its successor's build time.
func NewChainFromMeta(gens []*core.GSketch, metas []core.GenerationMeta, cfg ChainConfig) *Chain {
	if len(gens) == 0 {
		panic("adapt: chain needs at least one generation")
	}
	if metas != nil && len(metas) != len(gens) {
		panic(fmt.Sprintf("adapt: %d generations but %d metadata records", len(gens), len(metas)))
	}
	cfg = cfg.withDefaults()
	c := &Chain{
		cfg: cfg,
		res: stream.NewReservoir(cfg.SampleSize, cfg.Seed),
		now: time.Now,
	}
	for i, g := range gens {
		var m core.GenerationMeta
		if metas != nil {
			m = metas[i]
		}
		seg := compact.NewSegment(g, m)
		if i < len(gens)-1 {
			// Restored frozen generations carry no reservoir (samples are
			// not serialized), so they compact via the exact path only.
			frozenAt := int64(0)
			if metas != nil {
				frozenAt = metas[i+1].BuiltAt
			}
			seg.Freeze(frozenAt, nil, 0)
		}
		c.gens = append(c.gens, seg)
	}
	return c
}

// Config returns the chain's resolved configuration.
func (c *Chain) Config() ChainConfig { return c.cfg }

// SetDecay enables exponential age weighting at gather time: a frozen
// generation frozen `age` ago contributes with weight 2^(-age/halfLife).
// Zero disables decay. Set before the chain is shared.
func (c *Chain) SetDecay(halfLife time.Duration) { c.decayHalfLife = halfLife }

// DecayHalfLife returns the configured decay half-life (0 = disabled).
func (c *Chain) DecayHalfLife() time.Duration { return c.decayHalfLife }

// SetTiering configures disk tiering: frozen generations beyond the
// maxResident most recently queried are spilled to files under dir and
// reloaded lazily on query. maxResident counts frozen generations only —
// the live head always stays in RAM. Zero/empty disables tiering. Set
// before the chain is shared.
func (c *Chain) SetTiering(dir string, maxResident int) {
	c.tierDir = dir
	c.tierResident = maxResident
}

// TierDir returns the configured spill directory ("" = tiering disabled).
func (c *Chain) TierDir() string { return c.tierDir }

// SetClock overrides the chain's clock, for tests.
func (c *Chain) SetClock(now func() time.Time) {
	if now != nil {
		c.now = now
	}
}

// head returns the live generation under the shared lock.
func (c *Chain) head() *compact.Segment {
	c.mu.RLock()
	h := c.gens[len(c.gens)-1]
	c.mu.RUnlock()
	return h
}

// Update folds one edge arrival into the head and offers it to the data
// reservoir. The shared lock is held across the head update so a rotation
// or compaction install (exclusive lock) observes fully landed writes —
// the invariant that makes frozen generations immutable.
func (c *Chain) Update(e stream.Edge) {
	c.mu.RLock()
	c.gens[len(c.gens)-1].Update(e)
	c.mu.RUnlock()
	c.resMu.Lock()
	c.res.Observe(e)
	c.resMu.Unlock()
}

// UpdateBatch folds a batch into the head (sharded route-then-scatter under
// the head's striped locks) and offers every edge to the data reservoir.
func (c *Chain) UpdateBatch(edges []stream.Edge) {
	if len(edges) == 0 {
		return
	}
	c.mu.RLock()
	c.gens[len(c.gens)-1].UpdateBatch(edges)
	c.mu.RUnlock()
	c.resMu.Lock()
	c.res.ObserveAll(edges)
	c.resMu.Unlock()
}

// decayWeight returns the gather weight of a frozen segment: 1 without
// decay, else 2^(-age/halfLife) anchored at the freeze time (falling back
// to build time; unknown ages decay by nothing — the conservative choice).
func (c *Chain) decayWeight(seg *compact.Segment, nowUnix int64) float64 {
	if c.decayHalfLife <= 0 {
		return 1
	}
	anchor := seg.FrozenAt()
	if anchor == 0 {
		anchor = seg.Meta().BuiltAt
	}
	if anchor == 0 || nowUnix <= anchor {
		return 1
	}
	age := float64(nowUnix - anchor)
	return math.Exp2(-age / c.decayHalfLife.Seconds())
}

// EstimateEdge answers an edge query as the sum of every generation's
// estimate — each generation never underestimates its own stream segment,
// so the sum never underestimates the whole stream. Decay, when enabled,
// scales frozen generations' contributions.
func (c *Chain) EstimateEdge(src, dst uint64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	nowUnix := c.now().Unix()
	sum := c.gens[len(c.gens)-1].EstimateEdge(src, dst)
	for i := len(c.gens) - 2; i >= 0; i-- {
		est := c.gens[i].EstimateEdge(src, dst)
		if w := c.decayWeight(c.gens[i], nowUnix); w < 1 {
			est = int64(math.Round(w * float64(est)))
		}
		sum += est
	}
	return sum
}

// EstimateBatch answers a batch of edge queries across all generations: the
// head answers first (its Results carry the provenance of the partitioning
// currently serving), then every frozen generation's answers fold in via
// query.AccumulateResults — estimates sum, ε·N_i bounds add, confidence
// combines by union bound, stream totals sum to the chain-wide volume.
// With decay enabled, a frozen generation's estimates and bounds scale by
// its age weight before folding (query.AccumulateResultsWeighted).
func (c *Chain) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	c.mu.RLock()
	defer c.mu.RUnlock()
	nowUnix := c.now().Unix()
	out := c.gens[len(c.gens)-1].EstimateBatch(qs)
	for i := len(c.gens) - 2; i >= 0; i-- {
		gen := c.gens[i].EstimateBatch(qs)
		if w := c.decayWeight(c.gens[i], nowUnix); w < 1 {
			query.AccumulateResultsWeighted(out, gen, w)
		} else {
			query.AccumulateResults(out, gen)
		}
	}
	return out
}

// Count returns the chain-wide stream volume: the sum over generations
// (spilled generations answer from their freeze-time cache).
func (c *Chain) Count() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sum int64
	for _, gen := range c.gens {
		sum += gen.Count()
	}
	return sum
}

// MemoryBytes reports the resident counter footprint of all generations —
// spilled generations contribute zero, which is what tiering buys.
func (c *Chain) MemoryBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, gen := range c.gens {
		total += gen.MemoryBytes()
	}
	return total
}

// NumShards reports the head generation's independent writer domains.
func (c *Chain) NumShards() int { return c.head().NumShards() }

// Generations returns the current chain length.
func (c *Chain) Generations() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.gens)
}

// AtCap reports whether the chain is at its generation cap, i.e. the next
// Rotate would fail with ErrMaxGenerations. Callers check it before paying
// for a rebuild.
func (c *Chain) AtCap() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.gens) >= c.cfg.MaxGenerations
}

// Head returns the live generation's sketch, for callers reading layout or
// routing statistics. The sketch is shared — treat it as read-only.
func (c *Chain) Head() *core.GSketch { return c.head().Sketch() }

// WriteRouteCounts forwards the head generation's routed write traffic.
func (c *Chain) WriteRouteCounts() core.RouteCounts { return c.head().Sketch().WriteRouteCounts() }

// ReadRouteCounts forwards the head generation's routed query traffic.
func (c *Chain) ReadRouteCounts() core.RouteCounts { return c.head().Sketch().ReadRouteCounts() }

// Sample returns a copy of the data reservoir — the fresh data sample a
// rebuild partitions from.
func (c *Chain) Sample() []stream.Edge {
	c.resMu.Lock()
	defer c.resMu.Unlock()
	s := c.res.Sample()
	out := make([]stream.Edge, len(s))
	copy(out, s)
	return out
}

// SampleSize returns the current data-reservoir fill without copying.
func (c *Chain) SampleSize() int {
	c.resMu.Lock()
	defer c.resMu.Unlock()
	return len(c.res.Sample())
}

// Rotate freezes the current head and installs g as the new live
// generation, then resets the data reservoir so the next rebuild samples
// only the stream after this swap. The displaced head keeps the reservoir
// it was built over as its retained sample — the re-ingest source if a
// later compaction cannot merge it cell-wise. Updates racing the swap land
// in one generation or the other, never nowhere; queries racing the swap
// see either chain state, both of which cover the full stream.
func (c *Chain) Rotate(g *core.GSketch) error {
	nowUnix := c.now().Unix()
	seg := compact.NewSegment(g, core.GenerationMeta{BuiltAt: nowUnix, CompactedFrom: 1})
	c.mu.Lock()
	if len(c.gens) >= c.cfg.MaxGenerations {
		n := len(c.gens)
		c.mu.Unlock()
		return fmt.Errorf("%w (%d generations)", ErrMaxGenerations, n)
	}
	old := c.gens[len(c.gens)-1]
	c.gens = append(c.gens, seg)
	c.mu.Unlock()
	c.resMu.Lock()
	s := c.res.Sample()
	sample := make([]stream.Edge, len(s))
	copy(sample, s)
	seen := c.res.Seen()
	c.res.Reset()
	c.resMu.Unlock()
	old.Freeze(nowUnix, sample, seen)
	if _, err := c.EnforceResidency(); err != nil {
		// Tiering is best-effort on the rotation path: a spill failure
		// leaves the generation resident, costing memory, not correctness.
		_ = err
	}
	return nil
}

// Compact folds the oldest k frozen generations into one (see
// compact.Fold): cell-wise when the layouts match, else by re-partitioning
// from their retained reservoirs under cfg and workload. k is clamped to
// the available frozen generations; fewer than two returns
// ErrNothingToCompact with a zero Result. The fold runs off-lock against
// immutable snapshots; only the final install takes the exclusive lock.
func (c *Chain) Compact(k int, cfg core.Config, workload []stream.Edge) (compact.Result, error) {
	start := time.Now()
	c.compactMu.Lock()
	defer c.compactMu.Unlock()

	c.mu.RLock()
	frozen := len(c.gens) - 1
	if k > frozen {
		k = frozen
	}
	if k < 2 {
		n := len(c.gens)
		c.mu.RUnlock()
		return compact.Result{Generations: n}, ErrNothingToCompact
	}
	srcs := make([]*compact.Segment, k)
	copy(srcs, c.gens[:k])
	c.mu.RUnlock()

	var srcBytes int64
	for _, s := range srcs {
		srcBytes += int64(s.SketchBytes())
	}
	merged, exact, err := compact.Fold(srcs, cfg, workload, c.cfg.SampleSize)
	if err != nil {
		return compact.Result{}, err
	}

	c.mu.Lock()
	// compactMu means no other fold touched the prefix, and rotations only
	// append — but verify the sources are still in place before splicing.
	for i := range srcs {
		if i >= len(c.gens) || c.gens[i] != srcs[i] {
			c.mu.Unlock()
			return compact.Result{}, errors.New("adapt: chain mutated during compaction")
		}
	}
	c.gens = append([]*compact.Segment{merged}, c.gens[k:]...)
	gens := len(c.gens)
	c.mu.Unlock()

	for _, s := range srcs {
		s.Discard()
	}
	if _, err := c.EnforceResidency(); err != nil {
		_ = err // best-effort, as on the rotation path
	}
	return compact.Result{
		Folded:      k,
		Exact:       exact,
		Generations: gens,
		FreedBytes:  srcBytes - int64(merged.SketchBytes()),
		Duration:    time.Since(start),
	}, nil
}

// EnforceResidency spills cold frozen generations past the configured
// resident cap (least recently queried first), returning how many were
// spilled. A no-op unless SetTiering configured a directory and cap.
func (c *Chain) EnforceResidency() (int, error) {
	if c.tierDir == "" || c.tierResident <= 0 {
		return 0, nil
	}
	c.mu.RLock()
	frozen := make([]*compact.Segment, len(c.gens)-1)
	copy(frozen, c.gens[:len(c.gens)-1])
	c.mu.RUnlock()

	resident := frozen[:0]
	for _, s := range frozen {
		if s.Resident() {
			resident = append(resident, s)
		}
	}
	excess := len(resident) - c.tierResident
	if excess <= 0 {
		return 0, nil
	}
	// Oldest access first; untouched segments (access 0) go before any
	// queried one, oldest generation first thanks to the stable order.
	sortSegmentsByAccess(resident)
	spilled := 0
	for _, s := range resident[:excess] {
		if err := s.Spill(c.tierDir); err != nil {
			return spilled, err
		}
		spilled++
	}
	return spilled, nil
}

// sortSegmentsByAccess orders segments by last query touch ascending,
// stably (insertion sort: the slice is at most MaxGenerations long).
func sortSegmentsByAccess(segs []*compact.Segment) {
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].LastAccess() < segs[j-1].LastAccess(); j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}

// LifecycleStats snapshots the chain's generation-lifecycle state.
func (c *Chain) LifecycleStats() ChainLifecycleStats {
	c.mu.RLock()
	gens := make([]*compact.Segment, len(c.gens))
	copy(gens, c.gens)
	c.mu.RUnlock()
	st := ChainLifecycleStats{Generations: len(gens)}
	for i, s := range gens {
		st.CompactedFrom += s.Meta().CompactedFrom
		if s.Resident() {
			st.Resident++
		}
		if i < len(gens)-1 && s.Tiered() {
			st.Tiered++
			if !s.Resident() {
				st.TieredBytes += int64(s.SketchBytes())
			}
		}
	}
	if len(gens) > 1 {
		if fa := gens[0].FrozenAt(); fa > 0 {
			if age := c.now().Unix() - fa; age > 0 {
				st.OldestFrozenAge = time.Duration(age) * time.Second
			}
		}
	}
	return st
}

// LifecycleState adapts the chain to the compaction policy's view.
func (c *Chain) LifecycleState(now time.Time) compact.State {
	st := c.LifecycleStats()
	return compact.State{
		Generations: st.Generations,
		MemoryBytes: int64(c.MemoryBytes()),
		OldestAge:   st.OldestFrozenAge,
	}
}

// WriteTo serializes the whole chain as a version-4 container: every
// generation's consistent snapshot (stripe read locks per generation;
// spilled generations stream straight from their tier files), oldest
// first, each preceded by its lifecycle record. ReadChainMeta +
// NewChainFromMeta restore it; version-2 and version-3 snapshots restore
// via the same path.
func (c *Chain) WriteTo(w io.Writer) (int64, error) {
	c.mu.RLock()
	writers := make([]io.WriterTo, len(c.gens))
	metas := make([]core.GenerationMeta, len(c.gens))
	for i, gen := range c.gens {
		writers[i] = gen
		metas[i] = gen.Meta()
	}
	c.mu.RUnlock()
	return core.WriteChainMeta(w, writers, metas)
}

// Repartition builds a new generation from the chain's own data reservoir
// and the supplied query-workload sample (nil selects the data-only §4.1
// objective), then rotates it in as the live head. It returns the new
// head. Callers wanting drift-triggered rebuilds use a Manager instead.
func Repartition(c *Chain, cfg core.Config, workload []stream.Edge) (*core.GSketch, error) {
	// Check the cap up front: a build is expensive and Rotate would refuse
	// it anyway. Rotate re-checks under the lock, so a racing rotation
	// still cannot push the chain past the cap.
	if c.AtCap() {
		return nil, fmt.Errorf("%w (%d generations)", ErrMaxGenerations, c.Generations())
	}
	sample := c.Sample()
	if len(sample) == 0 {
		return nil, fmt.Errorf("%w; nothing to partition from", ErrEmptyReservoir)
	}
	g, err := core.BuildGSketch(cfg, sample, workload)
	if err != nil {
		return nil, err
	}
	if err := c.Rotate(g); err != nil {
		return nil, err
	}
	return g, nil
}

var (
	_ core.Estimator        = (*Chain)(nil)
	_ core.RouteStatsSource = (*Chain)(nil)
	_ io.WriterTo           = (*Chain)(nil)
	_ compact.Target        = (*chainTarget)(nil)
)

// chainTarget adapts a Chain plus its build inputs to compact.Target, for
// wiring a compact.Manager directly over a chain (the engine uses its own
// adapter carrying live workload samples).
type chainTarget struct {
	c        *Chain
	fold     int
	cfg      core.Config
	workload func() []stream.Edge
}

// NewCompactTarget adapts the chain to compact.Target: Compact folds with
// the build config cfg and the live workload sampled from workload (nil ⇒
// data-only rebuilds on the re-ingest path).
func NewCompactTarget(c *Chain, cfg core.Config, workload func() []stream.Edge) compact.Target {
	return &chainTarget{c: c, cfg: cfg, workload: workload}
}

func (t *chainTarget) LifecycleState(now time.Time) compact.State { return t.c.LifecycleState(now) }

func (t *chainTarget) Compact(k int) (compact.Result, error) {
	var wl []stream.Edge
	if t.workload != nil {
		wl = t.workload()
	}
	res, err := t.c.Compact(k, t.cfg, wl)
	if errors.Is(err, ErrNothingToCompact) {
		return res, nil
	}
	return res, err
}

func (t *chainTarget) EnforceResidency() (int, error) { return t.c.EnforceResidency() }
