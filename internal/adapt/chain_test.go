package adapt

import (
	"bytes"
	"errors"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

func testStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 256,
			Dst:    rng.Uint64() % 1024,
			Weight: 1,
		}
	}
	return edges
}

func buildSketch(t *testing.T, sample []stream.Edge, seed uint64) *core.GSketch {
	t.Helper()
	g, err := core.BuildGSketch(core.Config{TotalBytes: 64 << 10, Seed: seed}, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// A chain of k generations over a split stream must (a) never underestimate
// the whole stream, (b) stay within the combined ε·N bound of its answers,
// and (c) answer exactly the sum of the per-generation answers.
func TestChainEquivalenceAcrossSplitStream(t *testing.T) {
	const k = 3
	edges := testStream(30000, 11)
	seg := len(edges) / k

	chain := NewChain(buildSketch(t, edges[:2000], 7), ChainConfig{SampleSize: 2048, Seed: 1})
	gens := make([]*core.GSketch, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*seg, (i+1)*seg
		if i == k-1 {
			hi = len(edges)
		}
		if i > 0 {
			// Rotate into a generation partitioned from the chain's own
			// reservoir (sampled from the previous segment).
			g, err := Repartition(chain, core.Config{TotalBytes: 64 << 10, Seed: uint64(i)}, nil)
			if err != nil {
				t.Fatalf("repartition %d: %v", i, err)
			}
			gens = append(gens, g)
		}
		chain.UpdateBatch(edges[lo:hi])
	}
	if got := chain.Generations(); got != k {
		t.Fatalf("generations = %d, want %d", got, k)
	}

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	if chain.Count() != exact.Total() {
		t.Fatalf("chain count = %d, want %d", chain.Count(), exact.Total())
	}

	var qs []core.EdgeQuery
	exact.RangeEdges(func(src, dst uint64, _ int64) bool {
		qs = append(qs, core.EdgeQuery{Src: src, Dst: dst})
		return len(qs) < 2000
	})
	res := chain.EstimateBatch(qs)
	for i, q := range qs {
		truth := exact.EdgeFrequency(q.Src, q.Dst)
		if res[i].Estimate < truth {
			t.Fatalf("edge (%d,%d): chain estimate %d < truth %d", q.Src, q.Dst, res[i].Estimate, truth)
		}
		// The combined bound is the sum of per-generation ε·N_i bounds; the
		// realized overcount must not exceed it (deterministic seeds, ample
		// width — the probabilistic guarantee holds comfortably here).
		if over := float64(res[i].Estimate - truth); over > res[i].ErrorBound {
			t.Fatalf("edge (%d,%d): overcount %.0f exceeds combined bound %.1f",
				q.Src, q.Dst, over, res[i].ErrorBound)
		}
		if res[i].Confidence < 0 || res[i].Confidence >= 1 {
			t.Fatalf("edge (%d,%d): combined confidence %v out of [0,1)", q.Src, q.Dst, res[i].Confidence)
		}
		if res[i].StreamTotal != exact.Total() {
			t.Fatalf("edge (%d,%d): stream total %d, want chain-wide %d",
				q.Src, q.Dst, res[i].StreamTotal, exact.Total())
		}
		// The batched chain answer must equal the per-edge gather.
		if got := chain.EstimateEdge(q.Src, q.Dst); got != res[i].Estimate {
			t.Fatalf("edge (%d,%d): EstimateEdge %d != batched %d", q.Src, q.Dst, got, res[i].Estimate)
		}
	}
}

// Chain answers are exactly the sum of each generation queried alone.
func TestChainIsSumOfGenerations(t *testing.T) {
	edges := testStream(9000, 3)
	g1 := buildSketch(t, edges[:1000], 5)
	chain := NewChain(g1, ChainConfig{})
	chain.UpdateBatch(edges[:4500])
	g2 := buildSketch(t, edges[4000:5000], 6)
	if err := chain.Rotate(g2); err != nil {
		t.Fatal(err)
	}
	chain.UpdateBatch(edges[4500:])

	qs := []core.EdgeQuery{}
	for _, e := range edges[:200] {
		qs = append(qs, core.EdgeQuery{Src: e.Src, Dst: e.Dst})
	}
	res := chain.EstimateBatch(qs)
	r1 := g1.EstimateBatch(qs)
	r2 := g2.EstimateBatch(qs)
	for i := range qs {
		if want := r1[i].Estimate + r2[i].Estimate; res[i].Estimate != want {
			t.Fatalf("query %d: chain %d != g1+g2 %d", i, res[i].Estimate, want)
		}
		if want := r1[i].ErrorBound + r2[i].ErrorBound; res[i].ErrorBound != want {
			t.Fatalf("query %d: chain bound %v != summed %v", i, res[i].ErrorBound, want)
		}
		// Provenance comes from the head generation.
		if res[i].Partition != r2[i].Partition || res[i].Outlier != r2[i].Outlier {
			t.Fatalf("query %d: provenance %v/%v, want head's %v/%v",
				i, res[i].Partition, res[i].Outlier, r2[i].Partition, r2[i].Outlier)
		}
	}
}

func TestChainRotateCapAndReservoirReset(t *testing.T) {
	edges := testStream(2000, 9)
	chain := NewChain(buildSketch(t, edges[:500], 1), ChainConfig{SampleSize: 128, MaxGenerations: 2})
	chain.UpdateBatch(edges)
	if chain.SampleSize() == 0 {
		t.Fatal("reservoir empty after updates")
	}
	if err := chain.Rotate(buildSketch(t, edges[:500], 2)); err != nil {
		t.Fatal(err)
	}
	if got := chain.SampleSize(); got != 0 {
		t.Fatalf("reservoir not reset on rotate: %d", got)
	}
	if err := chain.Rotate(buildSketch(t, edges[:500], 3)); err == nil {
		t.Fatal("rotate beyond MaxGenerations succeeded")
	}
	// Repartition refuses at the cap BEFORE paying for a build.
	chain.UpdateBatch(edges)
	if _, err := Repartition(chain, core.Config{TotalBytes: 16 << 10, Seed: 4}, nil); !errors.Is(err, ErrMaxGenerations) {
		t.Fatalf("repartition at cap: err = %v, want ErrMaxGenerations", err)
	}
}

// A serialized chain restores byte-identically: same generations, same
// answers, same chain-wide totals.
func TestChainSerializationRoundTrip(t *testing.T) {
	edges := testStream(12000, 21)
	chain := NewChain(buildSketch(t, edges[:1500], 4), ChainConfig{SampleSize: 512, Seed: 9})
	chain.UpdateBatch(edges[:6000])
	if _, err := Repartition(chain, core.Config{TotalBytes: 64 << 10, Seed: 8}, edges[200:400]); err != nil {
		t.Fatal(err)
	}
	chain.UpdateBatch(edges[6000:])

	var buf bytes.Buffer
	if _, err := chain.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	gens, err := core.ReadChain(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored := NewChainFrom(gens, chain.Config())
	if restored.Generations() != chain.Generations() {
		t.Fatalf("generations = %d, want %d", restored.Generations(), chain.Generations())
	}
	if restored.Count() != chain.Count() {
		t.Fatalf("count = %d, want %d", restored.Count(), chain.Count())
	}
	var qs []core.EdgeQuery
	for _, e := range edges[:500] {
		qs = append(qs, core.EdgeQuery{Src: e.Src, Dst: e.Dst})
	}
	want := chain.EstimateBatch(qs)
	got := restored.EstimateBatch(qs)
	for i := range qs {
		if got[i].Estimate != want[i].Estimate || got[i].ErrorBound != want[i].ErrorBound {
			t.Fatalf("query %d: restored (%d, %v) != live (%d, %v)",
				i, got[i].Estimate, got[i].ErrorBound, want[i].Estimate, want[i].ErrorBound)
		}
	}
}
