package adapt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Compactions racing concurrent batch ingest and rotations must lose no
// stream volume: folds only touch frozen generations (immutable once the
// displacing rotation's exclusive lock drained in-flight writers), so the
// chain-wide count is conserved no matter how the three interleave. The
// compact-side mirror of TestChainSwapDuringIngestConservesCount; run
// under -race it also exercises compactMu against the chain locks.
func TestChainCompactDuringIngestConservesCount(t *testing.T) {
	edges := testStream(40000, 67)
	cfg := core.Config{TotalBytes: 32 << 10, Seed: 2}
	chain := NewChain(buildSketch(t, edges[:2000], 2), ChainConfig{SampleSize: 1024, MaxGenerations: 6})

	const writers = 4
	var pushed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	share := len(edges) / writers
	for w := 0; w < writers; w++ {
		part := edges[w*share : (w+1)*share]
		wg.Add(1)
		go func(part []stream.Edge) {
			defer wg.Done()
			for lo := 0; lo < len(part); lo += 256 {
				hi := lo + 256
				if hi > len(part) {
					hi = len(part)
				}
				chain.UpdateBatch(part[lo:hi])
				var vol int64
				for _, e := range part[lo:hi] {
					vol += e.Weight
				}
				pushed.Add(vol)
			}
		}(part)
	}

	// Rotator: keeps freezing generations so the compactor has fodder.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = Repartition(chain, core.Config{TotalBytes: 32 << 10, Seed: uint64(100 + i)}, nil)
		}
	}()

	// Compactor: folds whenever two frozen generations exist.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := chain.Compact(2, cfg, nil); err != nil && !errors.Is(err, ErrNothingToCompact) {
				t.Errorf("compact during ingest: %v", err)
				return
			}
		}
	}()

	for pushed.Load() < int64(writers*share) {
		_ = chain.EstimateBatch([]core.EdgeQuery{{Src: edges[0].Src, Dst: edges[0].Dst}})
	}
	close(stop)
	wg.Wait()

	if got := chain.Count(); got != pushed.Load() {
		t.Fatalf("chain lost volume across compactions: Count=%d pushed=%d (generations=%d)",
			got, pushed.Load(), chain.Generations())
	}
}

// Queries racing compactions (and rotations feeding them) must stay sound:
// estimates never drop below exact truth for the already-ingested prefix,
// whichever chain state a gather lands on. Mirror of
// TestChainSwapDuringQuery for the fold path.
func TestChainCompactDuringQuery(t *testing.T) {
	edges := testStream(20000, 71)
	cfg := core.Config{TotalBytes: 32 << 10, Seed: 3}
	// SampleSize exceeds any segment's stream slice, so every frozen
	// generation retains its whole slice and re-ingest folds replay
	// losslessly — the ≥truth assertion below is only valid then (an
	// undersampled reservoir folds to an approximation by design).
	chain := NewChain(buildSketch(t, edges[:2000], 5), ChainConfig{SampleSize: 16384, MaxGenerations: 8})
	chain.UpdateBatch(edges[:10000])

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges[:10000])
	var qs []core.EdgeQuery
	for _, e := range edges[:512] {
		qs = append(qs, core.EdgeQuery{Src: e.Src, Dst: e.Dst})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = Repartition(chain, core.Config{TotalBytes: 32 << 10, Seed: uint64(i)}, edges[:100])
			if _, err := chain.Compact(2, cfg, nil); err != nil && !errors.Is(err, ErrNothingToCompact) {
				t.Errorf("compact during query: %v", err)
				return
			}
			// Trickle more stream in so later rebuilds have a reservoir.
			chain.UpdateBatch(edges[10000+(i%100)*64 : 10000+(i%100)*64+64])
		}
	}()

	for round := 0; round < 50; round++ {
		res := chain.EstimateBatch(qs)
		for i, q := range qs {
			truth := exact.EdgeFrequency(q.Src, q.Dst)
			if res[i].Estimate < truth {
				t.Errorf("round %d edge (%d,%d): estimate %d < truth %d",
					round, q.Src, q.Dst, res[i].Estimate, truth)
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}
