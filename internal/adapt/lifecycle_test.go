package adapt

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// chainQueries turns the first n distinct edges into a query batch.
func chainQueries(edges []stream.Edge, n int) []core.EdgeQuery {
	seen := make(map[[2]uint64]struct{})
	var qs []core.EdgeQuery
	for _, e := range edges {
		k := [2]uint64{e.Src, e.Dst}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		qs = append(qs, core.EdgeQuery{Src: e.Src, Dst: e.Dst})
		if len(qs) >= n {
			break
		}
	}
	return qs
}

// Compacting a chain whose generations share a layout must fold exactly:
// volume conserved, lineage accumulated, and every answer still at least
// the uncompacted chain's (and within the combined ε·N bound of truth).
func TestChainCompactExactEquivalence(t *testing.T) {
	edges := testStream(24000, 41)
	cfg := core.Config{TotalBytes: 64 << 10, Seed: 9}
	build := func() *core.GSketch {
		g, err := core.BuildGSketch(cfg, edges[:1500], nil)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	// Three generations from the identical sample + config ⇒ identical
	// layouts ⇒ the fold must take the exact path.
	chain := NewChain(build(), ChainConfig{SampleSize: 1024, Seed: 3})
	chain.UpdateBatch(edges[:8000])
	if err := chain.Rotate(build()); err != nil {
		t.Fatal(err)
	}
	chain.UpdateBatch(edges[8000:16000])
	if err := chain.Rotate(build()); err != nil {
		t.Fatal(err)
	}
	chain.UpdateBatch(edges[16000:])

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	qs := chainQueries(edges, 1500)
	before := chain.EstimateBatch(qs)
	wantCount := chain.Count()

	res, err := chain.Compact(2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("identical layouts must compact via the exact path")
	}
	if res.Folded != 2 || res.Generations != 2 {
		t.Fatalf("result = %+v, want 2 folded into a 2-generation chain", res)
	}
	if chain.Generations() != 2 {
		t.Fatalf("generations = %d, want 2", chain.Generations())
	}
	if got := chain.Count(); got != wantCount {
		t.Fatalf("count = %d, want conserved %d", got, wantCount)
	}
	if st := chain.LifecycleStats(); st.CompactedFrom != 3 {
		t.Fatalf("compacted-from = %d, want 3", st.CompactedFrom)
	}

	after := chain.EstimateBatch(qs)
	for i, q := range qs {
		truth := exact.EdgeFrequency(q.Src, q.Dst)
		// Cell-wise merge takes min over summed rows: answers can only
		// stay or grow relative to the per-generation gather, never
		// shrink below it (and never below truth).
		if after[i].Estimate < before[i].Estimate {
			t.Fatalf("edge (%d,%d): estimate shrank %d -> %d across exact compaction",
				q.Src, q.Dst, before[i].Estimate, after[i].Estimate)
		}
		if after[i].Estimate < truth {
			t.Fatalf("edge (%d,%d): compacted estimate %d < truth %d", q.Src, q.Dst, after[i].Estimate, truth)
		}
		// The compacted bound is ε·ΣN_i — the same total mass the
		// uncompacted chain advertised; realized error must stay inside it.
		if over := float64(after[i].Estimate - truth); over > after[i].ErrorBound {
			t.Fatalf("edge (%d,%d): overcount %.0f exceeds combined bound %.1f",
				q.Src, q.Dst, over, after[i].ErrorBound)
		}
		if after[i].StreamTotal != wantCount {
			t.Fatalf("edge (%d,%d): stream total %d, want %d", q.Src, q.Dst, after[i].StreamTotal, wantCount)
		}
		// Fewer generations ⇒ the union bound over confidences tightens.
		if after[i].Confidence < before[i].Confidence {
			t.Fatalf("edge (%d,%d): confidence loosened %.4f -> %.4f",
				q.Src, q.Dst, before[i].Confidence, after[i].Confidence)
		}
	}
}

// Re-ingest compaction (incompatible layouts, lossless reservoirs) must
// conserve volume and keep every answer within the combined ε·N bound of
// exact truth — the bounds-equivalence acceptance check.
func TestChainCompactReingestWithinBounds(t *testing.T) {
	edges := testStream(18000, 43)
	cfg := core.Config{TotalBytes: 64 << 10, Seed: 5}
	// SampleSize ≥ every segment length ⇒ each frozen generation retains
	// its whole slice ⇒ the re-ingest replay is lossless.
	chain := NewChain(buildSketch(t, edges[:1200], 5), ChainConfig{SampleSize: 8000, Seed: 3})
	chain.UpdateBatch(edges[:6000])
	// Repartition builds from the chain's own reservoir with a different
	// seed: a different layout, so the later fold cannot merge cell-wise.
	if _, err := Repartition(chain, core.Config{TotalBytes: 32 << 10, Seed: 77}, nil); err != nil {
		t.Fatal(err)
	}
	chain.UpdateBatch(edges[6000:12000])
	if _, err := Repartition(chain, core.Config{TotalBytes: 48 << 10, Seed: 99}, nil); err != nil {
		t.Fatal(err)
	}
	chain.UpdateBatch(edges[12000:])

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	qs := chainQueries(edges, 1200)
	wantCount := chain.Count()

	res, err := chain.Compact(2, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("incompatible layouts cannot compact exactly")
	}
	if got := chain.Count(); got != wantCount {
		t.Fatalf("count = %d, want conserved %d", got, wantCount)
	}

	after := chain.EstimateBatch(qs)
	for i, q := range qs {
		truth := exact.EdgeFrequency(q.Src, q.Dst)
		if after[i].Estimate < truth {
			t.Fatalf("edge (%d,%d): re-ingested estimate %d < truth %d", q.Src, q.Dst, after[i].Estimate, truth)
		}
		if over := float64(after[i].Estimate - truth); over > after[i].ErrorBound {
			t.Fatalf("edge (%d,%d): overcount %.0f exceeds combined bound %.1f",
				q.Src, q.Dst, over, after[i].ErrorBound)
		}
	}

	// One frozen generation left: nothing further to fold.
	if _, err := chain.Compact(2, cfg, nil); !errors.Is(err, ErrNothingToCompact) {
		t.Fatalf("compact on a 2-generation chain: %v, want ErrNothingToCompact", err)
	}
}

// Driving a capped chain through many pivots with compact-on-pressure must
// never refuse a rotation: the generation count stays bounded, memory
// plateaus, and volume is never lost. This is the former-ErrMaxGenerations
// acceptance scenario at the chain level.
func TestChainPastCapWithCompaction(t *testing.T) {
	const cap = 3
	edges := testStream(52000, 47)
	cfg := core.Config{TotalBytes: 32 << 10, Seed: 9}
	chain := NewChain(buildSketch(t, edges[:1000], 9), ChainConfig{SampleSize: 2048, Seed: 3, MaxGenerations: cap})

	seg := len(edges) / 13
	var peak int
	for i := 0; i < 12; i++ {
		chain.UpdateBatch(edges[i*seg : (i+1)*seg])
		if chain.AtCap() {
			if _, err := chain.Compact(2, cfg, nil); err != nil {
				t.Fatalf("pivot %d: compact under cap pressure: %v", i, err)
			}
		}
		if _, err := Repartition(chain, cfg, nil); err != nil {
			t.Fatalf("pivot %d: rotation refused despite compaction: %v", i, err)
		}
		if g := chain.Generations(); g > cap {
			t.Fatalf("pivot %d: %d generations, cap %d", i, g, cap)
		}
		if m := chain.MemoryBytes(); m > peak {
			peak = m
		}
	}
	chain.UpdateBatch(edges[12*seg:])

	// Memory plateaued at the cap's footprint, not 13 generations' worth.
	if limit := (cap + 1) * (48 << 10); peak > limit {
		t.Fatalf("peak memory %d exceeds cap plateau %d", peak, limit)
	}
	var want int64
	for _, e := range edges {
		want += e.Weight
	}
	if got := chain.Count(); got != want {
		t.Fatalf("volume %d, want %d after 12 pivots with compaction", got, want)
	}
	if st := chain.LifecycleStats(); st.CompactedFrom != 13 {
		t.Fatalf("compacted-from = %d, want all 13 source builds", st.CompactedFrom)
	}
}

// Tiering: frozen generations past the resident cap spill to disk, queries
// lazily reload them with identical answers, and a chain snapshot written
// while generations are spilled still round-trips.
func TestChainTieringSpillReloadAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	edges := testStream(20000, 53)
	cfg := core.Config{TotalBytes: 32 << 10, Seed: 7}
	chain := NewChain(buildSketch(t, edges[:1000], 7), ChainConfig{SampleSize: 2048, Seed: 3, MaxGenerations: 8})
	chain.SetTiering(dir, 1)

	seg := len(edges) / 4
	for i := 0; i < 3; i++ {
		chain.UpdateBatch(edges[i*seg : (i+1)*seg])
		if _, err := Repartition(chain, cfg, nil); err != nil {
			t.Fatal(err)
		}
	}
	chain.UpdateBatch(edges[3*seg:])

	// 4 generations, 3 frozen, resident cap 1 ⇒ 2 spilled.
	st := chain.LifecycleStats()
	if st.Generations != 4 || st.Tiered < 2 {
		t.Fatalf("lifecycle = %+v, want 4 generations with ≥2 tiered", st)
	}
	if st.TieredBytes <= 0 {
		t.Fatalf("tiered bytes = %d, want > 0 while evicted", st.TieredBytes)
	}
	if full := 4 * (32 << 10); chain.MemoryBytes() >= full {
		t.Fatalf("resident footprint %d did not shrink under tiering", chain.MemoryBytes())
	}

	// Answers gather across spilled generations via lazy reload and still
	// cover the whole stream.
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	qs := chainQueries(edges, 800)
	res := chain.EstimateBatch(qs)
	for i, q := range qs {
		truth := exact.EdgeFrequency(q.Src, q.Dst)
		if res[i].Estimate < truth {
			t.Fatalf("edge (%d,%d): estimate %d < truth %d with tiered generations",
				q.Src, q.Dst, res[i].Estimate, truth)
		}
	}

	// Snapshot with spilled generations streams straight from tier files.
	chain.EnforceResidency()
	var buf bytes.Buffer
	if _, err := chain.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	gens, metas, err := core.ReadChainMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored := NewChainFromMeta(gens, metas, chain.Config())
	if restored.Count() != chain.Count() {
		t.Fatalf("restored count %d != live %d", restored.Count(), chain.Count())
	}
	got := restored.EstimateBatch(qs)
	for i := range qs {
		if got[i].Estimate != res[i].Estimate {
			t.Fatalf("query %d: restored %d != live %d", i, got[i].Estimate, res[i].Estimate)
		}
	}
}

// Decay: a frozen generation one half-life old contributes half its
// estimate; two half-lives, a quarter. Bounds scale alongside, and the
// chain-wide stream total stays unweighted.
func TestChainDecayWeighting(t *testing.T) {
	edges := testStream(10000, 59)
	base := time.Unix(1_700_000_000, 0)
	now := base
	chain := NewChain(buildSketch(t, edges[:1000], 3), ChainConfig{SampleSize: 1024, Seed: 3})
	chain.SetClock(func() time.Time { return now })
	chain.UpdateBatch(edges[:5000])

	qs := chainQueries(edges[:5000], 400)
	frozenOnly := chain.EstimateBatch(qs)

	// Freeze the first generation at `base`, rotate in an empty head.
	if _, err := Repartition(chain, core.Config{TotalBytes: 32 << 10, Seed: 4}, nil); err != nil {
		t.Fatal(err)
	}

	chain.SetDecay(time.Hour)
	for _, ages := range []struct {
		age    time.Duration
		weight float64
	}{{0, 1}, {time.Hour, 0.5}, {2 * time.Hour, 0.25}} {
		now = base.Add(ages.age)
		res := chain.EstimateBatch(qs)
		for i, q := range qs {
			wantEst := int64(ages.weight*float64(frozenOnly[i].Estimate) + 0.5)
			if res[i].Estimate != wantEst {
				t.Fatalf("age %v edge (%d,%d): estimate %d, want %d (weight %.2f of %d)",
					ages.age, q.Src, q.Dst, res[i].Estimate, wantEst, ages.weight, frozenOnly[i].Estimate)
			}
			if want := ages.weight * frozenOnly[i].ErrorBound; res[i].ErrorBound != want {
				t.Fatalf("age %v edge (%d,%d): bound %v, want scaled %v",
					ages.age, q.Src, q.Dst, res[i].ErrorBound, want)
			}
			// Decay reweights estimates, never the accounting of how much
			// stream the chain summarizes.
			if res[i].StreamTotal != chain.Count() {
				t.Fatalf("age %v: stream total %d, want unweighted %d", ages.age, res[i].StreamTotal, chain.Count())
			}
		}
		// The single-edge gather path applies the same weight.
		if got := chain.EstimateEdge(qs[0].Src, qs[0].Dst); got != res[0].Estimate {
			t.Fatalf("age %v: EstimateEdge %d != batched %d", ages.age, got, res[0].Estimate)
		}
	}

	// Disabled decay restores full weight.
	chain.SetDecay(0)
	now = base.Add(10 * time.Hour)
	res := chain.EstimateBatch(qs)
	for i := range qs {
		if res[i].Estimate != frozenOnly[i].Estimate {
			t.Fatalf("decay disabled: estimate %d != undecayed %d", res[i].Estimate, frozenOnly[i].Estimate)
		}
	}
}

// A chain snapshot taken AFTER a compaction must round-trip: the folded
// generation's lifecycle record (lineage, build time) survives the v4
// container and the restored chain answers identically.
func TestChainSnapshotRoundTripAfterCompaction(t *testing.T) {
	edges := testStream(15000, 61)
	cfg := core.Config{TotalBytes: 32 << 10, Seed: 5}
	chain := NewChain(buildSketch(t, edges[:1000], 5), ChainConfig{SampleSize: 4096, Seed: 3})
	chain.UpdateBatch(edges[:5000])
	if _, err := Repartition(chain, cfg, nil); err != nil {
		t.Fatal(err)
	}
	chain.UpdateBatch(edges[5000:10000])
	if _, err := Repartition(chain, cfg, nil); err != nil {
		t.Fatal(err)
	}
	chain.UpdateBatch(edges[10000:])
	if _, err := chain.Compact(2, cfg, nil); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := chain.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	gens, metas, err := core.ReadChainMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("snapshot carries %d generations, want 2 after compaction", len(gens))
	}
	if metas[0].CompactedFrom != 2 {
		t.Fatalf("restored lineage %d, want 2", metas[0].CompactedFrom)
	}
	restored := NewChainFromMeta(gens, metas, chain.Config())
	if restored.Count() != chain.Count() {
		t.Fatalf("restored count %d != live %d", restored.Count(), chain.Count())
	}
	if st := restored.LifecycleStats(); st.CompactedFrom != 3 {
		t.Fatalf("restored compacted-from %d, want 3", st.CompactedFrom)
	}
	qs := chainQueries(edges, 600)
	want := chain.EstimateBatch(qs)
	got := restored.EstimateBatch(qs)
	for i := range qs {
		if got[i].Estimate != want[i].Estimate || got[i].ErrorBound != want[i].ErrorBound {
			t.Fatalf("query %d: restored (%d, %v) != live (%d, %v)",
				i, got[i].Estimate, got[i].ErrorBound, want[i].Estimate, want[i].ErrorBound)
		}
	}

	// A restored chain (no retained reservoirs) still compacts when its
	// layouts allow the exact path; here they differ, so it must refuse
	// rather than fabricate volume.
	if res, err := restored.Compact(2, cfg, nil); err == nil {
		t.Fatalf("restored chain with incompatible layouts compacted: %+v", res)
	}
}
