package adapt

import (
	"sync"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// ManagerConfig parameterizes a Manager. The zero value selects the
// defaults: drift evaluated against a 0.5 divergence / 0.25 outlier-share
// threshold, rebuilds gated on minimum sample sizes, no auto-check loop.
type ManagerConfig struct {
	// Sketch is the build configuration of rebuilt generations (required:
	// it must validate under core.Config rules).
	Sketch core.Config
	// DriftThreshold triggers a rebuild when the total-variation divergence
	// between the baseline and live workload distributions reaches it
	// (default 0.5; range [0,1]).
	DriftThreshold float64
	// OutlierThreshold triggers a rebuild when the share of query traffic
	// answered by the head's outlier sketch since the last swap reaches it
	// (default 0.25).
	OutlierThreshold float64
	// MinWorkload is the smallest live workload sample drift is evaluated
	// on (default 64). Below it, ShouldRepartition always reports false.
	MinWorkload int
	// MinData is the smallest data reservoir a rebuild proceeds from
	// (default 256).
	MinData int
	// Baseline is the query-workload sample the chain's current head was
	// built from, if any — the distribution live traffic is compared
	// against. Empty means the head encodes no workload knowledge, and any
	// sufficient live workload reads as maximal divergence.
	Baseline []stream.Edge
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.5
	}
	if c.OutlierThreshold == 0 {
		c.OutlierThreshold = 0.25
	}
	if c.MinWorkload == 0 {
		c.MinWorkload = 64
	}
	if c.MinData == 0 {
		c.MinData = 256
	}
	return c
}

// Drift is one evaluation of how far live traffic has moved from the
// workload the serving partitioning was optimized for.
type Drift struct {
	// WorkloadDivergence is the total-variation distance, in [0, 1],
	// between the baseline and live source-vertex query distributions. 1
	// when the head was built with no workload sample but live workload
	// exists (the partitioning encodes no workload knowledge at all).
	WorkloadDivergence float64 `json:"workload_divergence"`
	// OutlierShare is the fraction of routed query traffic the head's
	// outlier sketch absorbed since the last swap (or manager creation).
	OutlierShare float64 `json:"outlier_share"`
	// LiveWorkload is the size of the live workload sample evaluated.
	LiveWorkload int `json:"live_workload"`
	// DataSample is the current fill of the chain's data reservoir.
	DataSample int `json:"data_sample"`
}

// RepartitionResult reports one completed rebuild + hot swap.
type RepartitionResult struct {
	// Generations is the chain length after the swap.
	Generations int `json:"generations"`
	// Partitions is the new head's localized-sketch count.
	Partitions int `json:"partitions"`
	// Before is the drift evaluation that preceded the swap.
	Before Drift `json:"before"`
	// BuildDuration is the time spent building and rotating the new
	// generation — the hot-swap latency.
	BuildDuration time.Duration `json:"-"`
}

// Manager watches drift between the workload the current partitioning was
// built from and the live recorded workload, and rebuilds + hot-swaps a new
// generation on threshold (via Check, typically driven by a ticker) or on
// demand (Repartition). All methods are safe for concurrent use; rebuilds
// are serialized, and the drift gauges (Drift, Repartitions, LastResult)
// never wait behind an in-flight rebuild — a monitoring endpoint stays
// responsive during the swap it is watching.
type Manager struct {
	cfg ManagerConfig
	// workload returns the live recorded query-workload sample (the serving
	// layer's reservoir over /query traffic). Nil or empty disables the
	// divergence signal; the outlier-share signal still works.
	workload func() []stream.Edge

	// rebuildMu serializes rebuilds and rebinds — the only lock held
	// across a (potentially long) partitioning build.
	rebuildMu sync.Mutex
	// mu guards the fields below and is never held across a build.
	mu         sync.Mutex
	chain      *Chain
	baseline   map[uint64]float64
	readsBase  core.RouteCounts // head read counts at last swap (or creation)
	lastResult *RepartitionResult

	repartitions int64
	// swapObs, when set, observes every completed swap's build+rotate
	// duration — the hook a metrics histogram hangs off.
	swapObs func(time.Duration)
	// compactor, when set, is invoked to fold old generations before a
	// rotation that would otherwise refuse at the generation cap — the
	// engine wires it to the chain's compaction when a lifecycle policy is
	// configured. With it in place ErrMaxGenerations is unreachable from
	// the manager's rebuild paths.
	compactor func() error
}

// NewManager builds a manager over chain. workload supplies the live
// recorded query sample and may be nil.
func NewManager(chain *Chain, workload func() []stream.Edge, cfg ManagerConfig) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		chain:    chain,
		workload: workload,
	}
	m.baseline = sourceDistribution(m.cfg.Baseline)
	m.readsBase = chain.ReadRouteCounts()
	return m
}

// Chain returns the chain the manager acts on.
func (m *Manager) Chain() *Chain {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.chain
}

// Rebind points the manager at a replacement chain (a snapshot restore
// swaps the serving chain wholesale), running swap — the caller's own
// switchover, e.g. the serving-engine pointer flip — inside the manager's
// rebuild lock. That makes the rebind atomic with respect to Check and
// Repartition: any in-flight rebuild finishes against the old chain while
// it is still serving, and none can start against a chain that has already
// been displaced. Baseline bookkeeping resets to the new chain's state.
func (m *Manager) Rebind(chain *Chain, baseline []stream.Edge, swap func()) {
	m.rebuildMu.Lock()
	defer m.rebuildMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if swap != nil {
		swap()
	}
	m.chain = chain
	m.baseline = sourceDistribution(baseline)
	m.readsBase = chain.ReadRouteCounts()
}

// SetCompactor installs fn as the cap-pressure compaction hook (nil
// uninstalls): Check and Repartition call it before a rebuild that finds
// the chain at its generation cap, so a chain under a compaction policy
// keeps rotating instead of refusing with ErrMaxGenerations.
func (m *Manager) SetCompactor(fn func() error) {
	m.mu.Lock()
	m.compactor = fn
	m.mu.Unlock()
}

// ensureHeadroom folds old generations when the chain is at its cap and a
// compactor is installed. The caller holds rebuildMu. It reports whether
// the chain has rotation headroom afterwards.
func (m *Manager) ensureHeadroom() (bool, error) {
	chain := m.Chain()
	if !chain.AtCap() {
		return true, nil
	}
	m.mu.Lock()
	fn := m.compactor
	m.mu.Unlock()
	if fn == nil {
		return false, nil
	}
	if err := fn(); err != nil {
		return false, err
	}
	return !chain.AtCap(), nil
}

// SetSwapObserver installs fn to be called with the BuildDuration of
// every completed repartition swap (nil uninstalls). Used by the
// serving layer to feed a swap-duration histogram; fn must be fast and
// must not call back into the manager.
func (m *Manager) SetSwapObserver(fn func(time.Duration)) {
	m.mu.Lock()
	m.swapObs = fn
	m.mu.Unlock()
}

// Repartitions returns the number of completed swaps.
func (m *Manager) Repartitions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.repartitions
}

// LastResult returns the most recent swap's result, or nil before the
// first.
func (m *Manager) LastResult() *RepartitionResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastResult
}

// Drift evaluates the current drift signals without acting on them. It
// never waits behind an in-flight rebuild.
func (m *Manager) Drift() Drift {
	d, _ := m.drift()
	return d
}

// drift evaluates the signals under the light state lock only, and also
// returns the live workload sample it evaluated — so a rebuild triggered
// by this evaluation partitions for exactly the workload the reported
// drift describes, with a single reservoir copy.
func (m *Manager) drift() (Drift, []stream.Edge) {
	var live []stream.Edge
	if m.workload != nil {
		live = m.workload()
	}
	m.mu.Lock()
	chain := m.chain
	baseline := m.baseline
	readsBase := m.readsBase
	m.mu.Unlock()
	d := Drift{
		LiveWorkload: len(live),
		DataSample:   chain.SampleSize(),
	}
	if len(live) >= m.cfg.MinWorkload {
		d.WorkloadDivergence = divergence(baseline, sourceDistribution(live))
	}
	now := chain.ReadRouteCounts()
	if dt := now.Total - readsBase.Total; dt > 0 {
		d.OutlierShare = float64(now.Outlier-readsBase.Outlier) / float64(dt)
	}
	return d, live
}

// ShouldRepartition reports whether a drift evaluation crosses the
// configured thresholds and the samples are big enough to rebuild from.
func (m *Manager) ShouldRepartition(d Drift) bool {
	if d.DataSample < m.cfg.MinData || d.LiveWorkload < m.cfg.MinWorkload {
		return false
	}
	return d.WorkloadDivergence >= m.cfg.DriftThreshold || d.OutlierShare >= m.cfg.OutlierThreshold
}

// Check evaluates drift and repartitions if the thresholds are crossed. It
// returns the swap result when one happened, nil otherwise — the auto-
// trigger entry point. At the chain's generation cap Check first compacts
// (when a compactor is installed) so drift can still be acted on; without
// one it is a cheap no-op: no rebuild is attempted (and none is wasted).
func (m *Manager) Check() (*RepartitionResult, error) {
	m.rebuildMu.Lock()
	defer m.rebuildMu.Unlock()
	ok, err := m.ensureHeadroom()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	d, live := m.drift()
	if !m.ShouldRepartition(d) {
		return nil, nil
	}
	return m.repartition(d, live)
}

// Repartition rebuilds and hot-swaps unconditionally (on demand), gated
// only on a non-empty data reservoir. The live workload sample — whatever
// its size — steers the new partitioning when present. At the generation
// cap it compacts first when a compactor is installed; otherwise the
// rebuild fails with ErrMaxGenerations as before.
func (m *Manager) Repartition() (*RepartitionResult, error) {
	m.rebuildMu.Lock()
	defer m.rebuildMu.Unlock()
	if _, err := m.ensureHeadroom(); err != nil {
		return nil, err
	}
	d, live := m.drift()
	return m.repartition(d, live)
}

// repartition runs the rebuild + swap; the caller holds rebuildMu, so the
// chain cannot be rebound mid-build and rebuilds are serialized. live is
// the same sample before describes.
func (m *Manager) repartition(before Drift, live []stream.Edge) (*RepartitionResult, error) {
	chain := m.Chain()
	start := time.Now()
	g, err := Repartition(chain, m.cfg.Sketch, live)
	if err != nil {
		return nil, err
	}
	res := &RepartitionResult{
		Generations:   chain.Generations(),
		Partitions:    g.NumPartitions(),
		Before:        before,
		BuildDuration: time.Since(start),
	}
	// The new head was optimized for today's workload: it becomes the
	// baseline tomorrow's drift is measured against, and the outlier share
	// restarts from the new head's (zeroed) counters.
	m.mu.Lock()
	m.baseline = sourceDistribution(live)
	m.readsBase = chain.ReadRouteCounts()
	m.lastResult = res
	m.repartitions++
	swapObs := m.swapObs
	m.mu.Unlock()
	if swapObs != nil {
		swapObs(res.BuildDuration)
	}
	return res, nil
}

// Run drives Check on a ticker until stop is closed — the embeddable
// auto-trigger loop. Check errors are delivered to onErr when non-nil and
// otherwise dropped (a failed rebuild leaves the serving chain untouched).
func (m *Manager) Run(interval time.Duration, stop <-chan struct{}, onErr func(error)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if _, err := m.Check(); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
}

// sourceDistribution normalizes a workload sample into a per-source-vertex
// query frequency distribution. Empty input yields nil (no knowledge).
func sourceDistribution(workload []stream.Edge) map[uint64]float64 {
	if len(workload) == 0 {
		return nil
	}
	dist := make(map[uint64]float64, len(workload))
	inc := 1 / float64(len(workload))
	for _, q := range workload {
		dist[q.Src] += inc
	}
	return dist
}

// divergence is the total-variation distance ½·Σ|p(v)-q(v)| between two
// source distributions, in [0, 1]. A nil baseline against a non-nil live
// distribution is maximal drift: the serving partitioning encodes no
// workload knowledge at all. Two nils are zero.
func divergence(base, live map[uint64]float64) float64 {
	if base == nil && live == nil {
		return 0
	}
	if base == nil || live == nil {
		return 1
	}
	var sum float64
	for v, p := range base {
		q := live[v]
		if p > q {
			sum += p - q
		} else {
			sum += q - p
		}
	}
	for v, q := range live {
		if _, seen := base[v]; !seen {
			sum += q
		}
	}
	if sum > 2 { // guard the [0,1] contract against float accumulation
		sum = 2
	}
	return sum / 2
}
