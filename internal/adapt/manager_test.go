package adapt

import (
	"errors"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// workloadOf builds a query-workload sample concentrated on the given
// source vertices.
func workloadOf(srcs ...uint64) []stream.Edge {
	var out []stream.Edge
	for i := 0; i < 100; i++ {
		s := srcs[i%len(srcs)]
		out = append(out, stream.Edge{Src: s, Dst: uint64(i % 7), Weight: 1})
	}
	return out
}

func TestDivergence(t *testing.T) {
	same := workloadOf(1, 2, 3)
	if d := divergence(sourceDistribution(same), sourceDistribution(same)); d != 0 {
		t.Fatalf("identical distributions diverge: %v", d)
	}
	disjoint := divergence(sourceDistribution(workloadOf(1, 2)), sourceDistribution(workloadOf(8, 9)))
	if disjoint != 1 {
		t.Fatalf("disjoint distributions: divergence %v, want 1", disjoint)
	}
	// Half the mass moved: TV distance 0.5.
	half := divergence(sourceDistribution(workloadOf(1, 2)), sourceDistribution(workloadOf(1, 9)))
	if half < 0.49 || half > 0.51 {
		t.Fatalf("half-moved distributions: divergence %v, want ~0.5", half)
	}
	if d := divergence(nil, sourceDistribution(same)); d != 1 {
		t.Fatalf("nil baseline vs live: %v, want 1 (no workload knowledge)", d)
	}
	if d := divergence(nil, nil); d != 0 {
		t.Fatalf("nil vs nil: %v, want 0", d)
	}
}

func TestManagerDriftAndThresholds(t *testing.T) {
	edges := testStream(8000, 41)
	chain := NewChain(buildSketch(t, edges[:1000], 3), ChainConfig{SampleSize: 1024})
	chain.UpdateBatch(edges)

	baseline := workloadOf(1, 2, 3, 4)
	live := baseline
	m := NewManager(chain, func() []stream.Edge { return live }, ManagerConfig{
		Sketch:      core.Config{TotalBytes: 32 << 10, Seed: 5},
		Baseline:    baseline,
		MinWorkload: 10,
		MinData:     10,
	})

	d := m.Drift()
	if d.WorkloadDivergence != 0 {
		t.Fatalf("no shift yet: divergence %v", d.WorkloadDivergence)
	}
	if m.ShouldRepartition(d) {
		t.Fatal("ShouldRepartition true with zero drift")
	}

	// Shift the live workload wholesale: divergence 1 crosses the default
	// 0.5 threshold.
	live = workloadOf(200, 201, 202)
	d = m.Drift()
	if d.WorkloadDivergence != 1 {
		t.Fatalf("disjoint live workload: divergence %v, want 1", d.WorkloadDivergence)
	}
	if !m.ShouldRepartition(d) {
		t.Fatal("ShouldRepartition false after full workload shift")
	}

	res, err := m.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("Check did not repartition despite drift")
	}
	if res.Generations != 2 || chain.Generations() != 2 {
		t.Fatalf("generations = %d/%d, want 2", res.Generations, chain.Generations())
	}
	if m.Repartitions() != 1 {
		t.Fatalf("repartitions = %d, want 1", m.Repartitions())
	}

	// The live workload became the new baseline: drift is back to zero and
	// Check is idle again (data reservoir also reset below MinData).
	d = m.Drift()
	if d.WorkloadDivergence != 0 {
		t.Fatalf("post-swap divergence %v, want 0", d.WorkloadDivergence)
	}
	if res, err := m.Check(); err != nil || res != nil {
		t.Fatalf("idle Check = (%v, %v), want (nil, nil)", res, err)
	}
}

func TestManagerOutlierShareSignal(t *testing.T) {
	// Partitioning sample covers sources 0..9 only; queries against unknown
	// sources are answered by the outlier sketch.
	var sample []stream.Edge
	for i := uint64(0); i < 10; i++ {
		for j := 0; j < 20; j++ {
			sample = append(sample, stream.Edge{Src: i, Dst: uint64(j), Weight: 1})
		}
	}
	chain := NewChain(buildSketch(t, sample, 7), ChainConfig{})
	chain.UpdateBatch(sample)

	m := NewManager(chain, nil, ManagerConfig{
		Sketch:  core.Config{TotalBytes: 32 << 10, Seed: 5},
		MinData: 10,
	})
	if d := m.Drift(); d.OutlierShare != 0 {
		t.Fatalf("outlier share before any query: %v", d.OutlierShare)
	}

	var qs []core.EdgeQuery
	for i := 0; i < 100; i++ {
		qs = append(qs, core.EdgeQuery{Src: uint64(1000 + i), Dst: 1}) // all unknown
	}
	chain.EstimateBatch(qs)
	if d := m.Drift(); d.OutlierShare != 1 {
		t.Fatalf("all-outlier query traffic: share %v, want 1", d.OutlierShare)
	}

	// Mixed traffic: half known, half unknown.
	qs = qs[:0]
	for i := 0; i < 100; i++ {
		src := uint64(i % 10)
		if i%2 == 0 {
			src = uint64(2000 + i)
		}
		qs = append(qs, core.EdgeQuery{Src: src, Dst: 1})
	}
	before := m.Drift().OutlierShare
	chain.EstimateBatch(qs)
	after := m.Drift().OutlierShare
	if after >= before {
		t.Fatalf("outlier share did not fall with mixed traffic: %v -> %v", before, after)
	}
}

func TestManagerRepartitionNeedsData(t *testing.T) {
	edges := testStream(500, 43)
	chain := NewChain(buildSketch(t, edges[:200], 3), ChainConfig{})
	m := NewManager(chain, nil, ManagerConfig{Sketch: core.Config{TotalBytes: 16 << 10, Seed: 2}})
	if _, err := m.Repartition(); !errors.Is(err, ErrEmptyReservoir) {
		t.Fatalf("repartition with an empty reservoir: err = %v, want ErrEmptyReservoir", err)
	}
	chain.UpdateBatch(edges)
	res, err := m.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 1 || res.Generations != 2 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.BuildDuration <= 0 {
		t.Fatalf("build duration not measured: %v", res.BuildDuration)
	}
}
