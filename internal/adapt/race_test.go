package adapt

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Rotations racing concurrent batch ingest must lose no stream volume: an
// update in flight across a swap lands in the old head or the new one,
// never nowhere. Run under -race this also exercises the chain's lock
// discipline.
func TestChainSwapDuringIngestConservesCount(t *testing.T) {
	edges := testStream(40000, 31)
	chain := NewChain(buildSketch(t, edges[:2000], 2), ChainConfig{SampleSize: 1024, MaxGenerations: 16})

	const writers = 4
	var pushed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	share := len(edges) / writers
	for w := 0; w < writers; w++ {
		part := edges[w*share : (w+1)*share]
		wg.Add(1)
		go func(part []stream.Edge) {
			defer wg.Done()
			for lo := 0; lo < len(part); lo += 256 {
				hi := lo + 256
				if hi > len(part) {
					hi = len(part)
				}
				chain.UpdateBatch(part[lo:hi])
				var vol int64
				for _, e := range part[lo:hi] {
					vol += e.Weight
				}
				pushed.Add(vol)
			}
		}(part)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := Repartition(chain, core.Config{TotalBytes: 32 << 10, Seed: uint64(100 + i)}, nil); err != nil {
				// Empty reservoir right after a rotate, or the generation
				// cap: both fine — keep spinning.
				continue
			}
		}
	}()

	// Let the rotator race the writers for the whole ingest, then stop it.
	wgWriters := make(chan struct{})
	go func() {
		wg.Wait() // wait for all (writers + rotator after stop)
		close(wgWriters)
	}()
	// Writers are the first `writers` goroutines; poll their progress via
	// pushed instead of a second WaitGroup.
	for pushed.Load() < int64(writers*share) {
		qs := []core.EdgeQuery{{Src: edges[0].Src, Dst: edges[0].Dst}}
		_ = chain.EstimateBatch(qs)
	}
	close(stop)
	<-wgWriters

	if got := chain.Count(); got != pushed.Load() {
		t.Fatalf("chain lost volume across swaps: Count=%d pushed=%d (generations=%d)",
			got, pushed.Load(), chain.Generations())
	}
}

// Queries and serialization racing rotations must stay internally sound:
// estimates never shrink below what a consistent chain would answer, and
// no -race report fires.
func TestChainSwapDuringQuery(t *testing.T) {
	edges := testStream(20000, 33)
	chain := NewChain(buildSketch(t, edges[:2000], 5), ChainConfig{SampleSize: 1024, MaxGenerations: 32})
	chain.UpdateBatch(edges[:10000])

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges[:10000])
	var qs []core.EdgeQuery
	for _, e := range edges[:512] {
		qs = append(qs, core.EdgeQuery{Src: e.Src, Dst: e.Dst})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = Repartition(chain, core.Config{TotalBytes: 32 << 10, Seed: uint64(i)}, edges[:100])
			// Trickle more stream into whichever head is current so later
			// rebuilds have a reservoir to partition from.
			chain.UpdateBatch(edges[10000+(i%100)*64 : 10000+(i%100)*64+64])
		}
	}()

	for round := 0; round < 50; round++ {
		res := chain.EstimateBatch(qs)
		for i, q := range qs {
			truth := exact.EdgeFrequency(q.Src, q.Dst)
			if res[i].Estimate < truth {
				t.Errorf("round %d edge (%d,%d): estimate %d < truth %d",
					round, q.Src, q.Dst, res[i].Estimate, truth)
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}
