package adapt

import (
	"io"
	"sync"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Recorder reservoir-samples the live query workload into the paper's
// query-workload-sample format — a bag of edges whose source vertices are
// the queried ones, exactly what vstats.ApplyWorkload (and therefore the
// §4.2 workload-aware partitioning objective) consumes. An engine serving
// real traffic thus produces the sample the paper assumes is "available"
// for partitioning: record for a while, export the sample, and feed it
// into a rebuild — the record → rebuild → swap loop the Manager closes
// in-process.
//
// Sampling is uniform over all queries seen (Vitter's Algorithm R via
// stream.Reservoir), so heavily queried vertices appear proportionally more
// often — the property the frequency counts of Eq. 10 rely on.
type Recorder struct {
	mu  sync.Mutex
	res *stream.Reservoir
	now func() int64 // arrival stamp for recorded queries (unix seconds)
}

// NewRecorder returns a recorder keeping a uniform sample of at most
// capacity queries, deterministic under seed. now stamps recorded queries
// (nil leaves timestamps zero).
func NewRecorder(capacity int, seed uint64, now func() int64) *Recorder {
	if now == nil {
		now = func() int64 { return 0 }
	}
	return &Recorder{res: stream.NewReservoir(capacity, seed), now: now}
}

// Record offers a batch of answered edge queries to the reservoir.
func (r *Recorder) Record(qs []core.EdgeQuery) {
	if len(qs) == 0 {
		return
	}
	t := r.now()
	r.mu.Lock()
	for _, q := range qs {
		r.res.Observe(stream.Edge{Src: q.Src, Dst: q.Dst, Weight: 1, Time: t})
	}
	r.mu.Unlock()
}

// Sample returns a copy of the current workload sample.
func (r *Recorder) Sample() []stream.Edge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.res.Sample()
	out := make([]stream.Edge, len(s))
	copy(out, s)
	return out
}

// Len returns the current sample size without copying the sample.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.res.Sample())
}

// Seen returns the number of queries offered so far.
func (r *Recorder) Seen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.res.Seen()
}

// Capacity returns the reservoir capacity.
func (r *Recorder) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.res.Capacity()
}

// WriteTo exports the sample in the text edge-file format ("src dst weight
// time" lines) that stream.ReadTextEdges parses and BuildGSketch accepts as
// a workloadSample — the sample-collection loop closed.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	cw := &stream.CountingWriter{W: w}
	err := stream.WriteTextEdges(cw, r.Sample())
	return cw.N, err
}
