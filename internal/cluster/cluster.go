package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"slices"
	"sync"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/obs"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/stream"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Addrs are the shard wire-protocol addresses. Order defines shard
	// identity: snapshots refuse to restore under a different ordered
	// list.
	Addrs []string

	// Router is the routing sketch — built from the same sample, config
	// and seed as every shard's engine, so shard(src) = Route(src) mod N
	// is partition-disjoint. Required.
	Router *core.GSketch

	// BatchEdges is the per-shard edge batch size (default 2048).
	BatchEdges int
	// QueueBatches bounds each shard's pending-batch queue (default 8);
	// a full queue is the coordinator's 429.
	QueueBatches int
	// PingInterval is the health-probe period (default 1s; negative
	// disables the prober).
	PingInterval time.Duration
	// DialTimeout bounds shard dials (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds each shard round trip (default 10s).
	OpTimeout time.Duration
	// SnapshotPath is the local manifest path of the snapshot fan-out.
	SnapshotPath string
	// Logger receives structured shard lifecycle events — degraded and
	// revived transitions, with shard/addr attributes. Nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.BatchEdges <= 0 {
		c.BatchEdges = 2048
	}
	if c.QueueBatches <= 0 {
		c.QueueBatches = 8
	}
	if c.PingInterval == 0 {
		c.PingInterval = time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// Coordinator fronts a static shard topology: it routes ingest, scatter-
// gathers queries, fans snapshots out and watches shard health. It
// implements server.Backend, so internal/server can serve a cluster
// behind the unchanged HTTP+wire surface. All methods are safe for
// concurrent use.
type Coordinator struct {
	cfg    Config
	shards []*shard

	// mu gates operations against Close: every operation holds the read
	// side for its full duration, so Close's write acquisition is the
	// drain barrier for in-flight gathers.
	mu     sync.RWMutex
	closed bool

	proberStop chan struct{}
	proberDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// New connects a coordinator to its shards. Every shard is dialed and
// pinged eagerly; a shard that cannot be reached fails construction with
// a *ShardError rather than starting a degraded cluster.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: no shard addresses")
	}
	if cfg.Router == nil {
		return nil, fmt.Errorf("cluster: nil routing sketch")
	}
	c := &Coordinator{cfg: cfg}
	for i, addr := range cfg.Addrs {
		sh := newShard(i, addr, &c.cfg)
		cl, err := sh.dial()
		if err != nil {
			return nil, &ShardError{ID: i, Addr: addr, Err: err}
		}
		cl.SetDeadline(time.Now().Add(cfg.OpTimeout))
		p, rtt, err := cl.Ping()
		if err != nil {
			cl.Close()
			return nil, &ShardError{ID: i, Addr: addr, Err: err}
		}
		sh.gmu.Lock()
		sh.pong, sh.rtt = p, rtt
		sh.gmu.Unlock()
		sh.putConn(cl)
		c.shards = append(c.shards, sh)
	}
	for _, sh := range c.shards {
		go sh.sender()
	}
	if cfg.PingInterval > 0 {
		c.proberStop = make(chan struct{})
		c.proberDone = make(chan struct{})
		go c.prober()
	}
	return c, nil
}

// NumShards returns the topology size.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Addrs returns the configured shard addresses, in shard-ID order.
func (c *Coordinator) Addrs() []string { return c.cfg.Addrs }

// shardFor routes a source vertex to its owning shard: the gSketch
// partition index (outlier shard for unrouted vertices) folded onto the
// topology, so each partition's substream lands wholly on one shard.
func (c *Coordinator) shardFor(src uint64) *shard {
	return c.shards[c.cfg.Router.Route(src)%len(c.shards)]
}

// TryIngest routes edges to their shards' batch buffers in order, never
// blocking. It keeps the engine's accepted-prefix contract: the first
// edge that cannot be buffered stops the scan, and the error says why —
// ingest.ErrQueueFull when the shard's sender queue is saturated (retry
// after backoff), a *ShardError wrapping ErrShardDown when the owning
// shard is degraded.
func (c *Coordinator) TryIngest(edges []stream.Edge) (int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return 0, ErrClosed
	}
	for i, e := range edges {
		sh := c.shardFor(e.Src)
		if sh.down.Load() {
			return i, &ShardError{ID: sh.id, Addr: sh.addr, Err: ErrShardDown}
		}
		if !sh.offer(e) {
			return i, ingest.ErrQueueFull
		}
	}
	return len(edges), nil
}

// QueryBatch scatters qs to every shard and folds the answers in shard
// order with query.AccumulateResults — estimates and ε·N_i bounds add,
// confidence union-bounds, stream totals sum — exactly how the adapt
// chain combines generations. Shards that fail are marked degraded and
// reported in a *PartialError; when at least one shard answered, the
// partial result is returned alongside it.
func (c *Coordinator) QueryBatch(qs []core.EdgeQuery) ([]core.Result, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	if len(qs) == 0 {
		return nil, nil
	}
	type answer struct {
		res []core.Result
		err error
	}
	answers := make([]answer, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			answers[i].res, answers[i].err = sh.query(qs)
		}(i, sh)
	}
	wg.Wait()

	var acc []core.Result
	var failed []*ShardError
	for i, a := range answers {
		if a.err != nil {
			se, ok := a.err.(*ShardError)
			if !ok {
				se = &ShardError{ID: c.shards[i].id, Addr: c.shards[i].addr, Err: a.err}
			}
			failed = append(failed, se)
			continue
		}
		if acc == nil {
			acc = a.res
		} else {
			query.AccumulateResults(acc, a.res)
		}
	}
	if len(failed) > 0 {
		return acc, &PartialError{Failed: failed, Shards: len(c.shards)}
	}
	return acc, nil
}

// Drain flushes every healthy shard: partial batch buffers are handed
// off, then a flush barrier round-trips through each sender so the
// shards' own pipelines quiesce. Degraded shards are skipped — their
// backlog is already counted lost.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClosed
	}
	return c.drainShards(ctx)
}

func (c *Coordinator) drainShards(ctx context.Context) error {
	var firstErr error
	for _, sh := range c.shards {
		if sh.down.Load() {
			continue
		}
		if err := sh.drain(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// manifest is the local snapshot record: which topology saved, and how
// many bytes each shard persisted to its own disk.
type manifest struct {
	Schema     int      `json:"schema"`
	Shards     []string `json:"shards"`
	ShardBytes []int64  `json:"shard_bytes"`
}

// manifestSchema versions the snapshot manifest format.
const manifestSchema = 1

// SaveSnapshot drains the write path, fans TypeSnapSave out to every
// shard in parallel — each persists to its own configured snapshot path —
// and records the topology in a local JSON manifest at path (default:
// the configured SnapshotPath). It returns the summed per-shard byte
// count. Any shard failure fails the save: a partial snapshot set is not
// a snapshot.
func (c *Coordinator) SaveSnapshot(path string) (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return 0, ErrClosed
	}
	if path == "" {
		path = c.cfg.SnapshotPath
	}
	if path == "" {
		return 0, ErrNoSnapshotPath
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.OpTimeout)
	err := c.drainShards(ctx)
	cancel()
	if err != nil {
		return 0, fmt.Errorf("cluster: snapshot drain: %w", err)
	}

	m := manifest{
		Schema:     manifestSchema,
		Shards:     slices.Clone(c.cfg.Addrs),
		ShardBytes: make([]int64, len(c.shards)),
	}
	if err := c.fanOut(func(sh *shard) error {
		cl, err := sh.getConn()
		if err != nil {
			sh.markDown(err)
			return err
		}
		cl.SetDeadline(time.Now().Add(c.cfg.OpTimeout))
		n, err := cl.SaveSnapshot()
		if err != nil {
			cl.Close()
			return err
		}
		sh.putConn(cl)
		m.ShardBytes[sh.id] = n
		return nil
	}); err != nil {
		return 0, err
	}

	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return 0, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	var total int64
	for _, n := range m.ShardBytes {
		total += n
	}
	return total, nil
}

// RestoreSnapshot reads the manifest at path (default: the configured
// SnapshotPath), refuses it when its ordered shard list does not match
// the running topology, and fans TypeSnapRestore out to every shard —
// each swaps in the snapshot on its own disk.
func (c *Coordinator) RestoreSnapshot(path string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClosed
	}
	if path == "" {
		path = c.cfg.SnapshotPath
	}
	if path == "" {
		return ErrNoSnapshotPath
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("cluster: manifest %s: %w", path, err)
	}
	if m.Schema != manifestSchema {
		return fmt.Errorf("cluster: manifest %s: schema %d, want %d", path, m.Schema, manifestSchema)
	}
	if !slices.Equal(m.Shards, c.cfg.Addrs) {
		return fmt.Errorf("%w: manifest lists %v, cluster is %v", ErrTopologyMismatch, m.Shards, c.cfg.Addrs)
	}
	return c.fanOut(func(sh *shard) error {
		cl, err := sh.getConn()
		if err != nil {
			sh.markDown(err)
			return err
		}
		cl.SetDeadline(time.Now().Add(c.cfg.OpTimeout))
		total, gens, err := cl.RestoreSnapshot()
		if err != nil {
			cl.Close()
			return err
		}
		sh.putConn(cl)
		sh.gmu.Lock()
		sh.pong.StreamTotal = total
		sh.pong.Generations = uint32(gens)
		sh.gmu.Unlock()
		return nil
	})
}

// fanOut runs op against every shard in parallel, collecting failures
// into a *PartialError (or the sole *ShardError when only one failed).
func (c *Coordinator) fanOut(op func(*shard) error) error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			errs[i] = op(sh)
		}(i, sh)
	}
	wg.Wait()
	var failed []*ShardError
	for i, err := range errs {
		if err == nil {
			continue
		}
		se, ok := err.(*ShardError)
		if !ok {
			se = &ShardError{ID: c.shards[i].id, Addr: c.shards[i].addr, Err: err}
		}
		failed = append(failed, se)
	}
	switch len(failed) {
	case 0:
		return nil
	case 1:
		return failed[0]
	default:
		return &PartialError{Failed: failed, Shards: len(c.shards)}
	}
}

// SnapshotPath returns the configured manifest path.
func (c *Coordinator) SnapshotPath() string { return c.cfg.SnapshotPath }

// Generations reports the highest generation count any shard has pinged
// back — shards repartition independently, so this is a cluster-wide
// upper bound, not an invariant.
func (c *Coordinator) Generations() int {
	gens := 1
	for _, sh := range c.shards {
		sh.gmu.Lock()
		if g := int(sh.pong.Generations); g > gens {
			gens = g
		}
		sh.gmu.Unlock()
	}
	return gens
}

// Health sums the last-pinged shard gauges: cluster stream total, queued
// work (shard queue depths plus the coordinator's own pending batches)
// and the generation upper bound. It never blocks on the network.
func (c *Coordinator) Health() (streamTotal int64, queueDepth, generations int) {
	generations = 1
	for _, sh := range c.shards {
		sh.gmu.Lock()
		p := sh.pong
		sh.gmu.Unlock()
		streamTotal += p.StreamTotal
		queueDepth += int(p.QueueDepth) + len(sh.sendCh)
		if g := int(p.Generations); g > generations {
			generations = g
		}
	}
	return streamTotal, queueDepth, generations
}

// Probe pings every shard once, synchronously — the prober's round, also
// exposed so tests and operators can refresh gauges (and revive healed
// shards) without waiting out PingInterval.
func (c *Coordinator) Probe() {
	for _, sh := range c.shards {
		sh.probe()
		sh.kick()
	}
}

func (c *Coordinator) prober() {
	defer close(c.proberDone)
	t := time.NewTicker(c.cfg.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-c.proberStop:
			return
		case <-t.C:
			c.Probe()
		}
	}
}

// ShardStats is one shard's live view for /stats.
type ShardStats struct {
	ID      int    `json:"id"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`

	// Last-probe gauges.
	RTTMillis   float64 `json:"rtt_ms"`
	StreamTotal int64   `json:"stream_total"`
	QueueDepth  int     `json:"queue_depth"`
	Generations int     `json:"generations"`
	LastError   string  `json:"last_error,omitempty"`

	// Coordinator-side counters.
	PendingEdges   int64 `json:"pending_edges"`
	PendingBatches int   `json:"pending_batches"`
	EdgesSent      int64 `json:"edges_sent"`
	EdgesLost      int64 `json:"edges_lost"`
	Sheds          int64 `json:"sheds"`
	BatchesSent    int64 `json:"batches_sent"`
	Queries        int64 `json:"queries"`
	QueryErrors    int64 `json:"query_errors"`
}

// Stats is the cluster-wide /stats payload.
type Stats struct {
	Shards      []ShardStats `json:"shards"`
	Healthy     int          `json:"healthy"`
	Degraded    int          `json:"degraded"`
	StreamTotal int64        `json:"stream_total"`
	EdgesLost   int64        `json:"edges_lost"`
}

// Stats snapshots per-shard gauges and counters. It never blocks on the
// network; gauges are as fresh as the last probe.
func (c *Coordinator) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(c.shards))}
	for i, sh := range c.shards {
		sh.gmu.Lock()
		p, rtt, lastErr := sh.pong, sh.rtt, sh.lastErr
		sh.gmu.Unlock()
		s := ShardStats{
			ID:             sh.id,
			Addr:           sh.addr,
			Healthy:        !sh.down.Load(),
			RTTMillis:      float64(rtt.Microseconds()) / 1e3,
			StreamTotal:    p.StreamTotal,
			QueueDepth:     int(p.QueueDepth),
			Generations:    int(p.Generations),
			LastError:      lastErr,
			PendingEdges:   sh.pendingEdges.Load(),
			PendingBatches: len(sh.sendCh),
			EdgesSent:      sh.edgesSent.Load(),
			EdgesLost:      sh.edgesLost.Load(),
			Sheds:          sh.sheds.Load(),
			BatchesSent:    sh.batchesSent.Load(),
			Queries:        sh.queries.Load(),
			QueryErrors:    sh.queryErrs.Load(),
		}
		if s.Healthy {
			st.Healthy++
		} else {
			st.Degraded++
		}
		st.StreamTotal += s.StreamTotal
		st.EdgesLost += s.EdgesLost
		st.Shards[i] = s
	}
	return st
}

// Close drains and stops the coordinator: new operations are refused,
// in-flight gathers finish (the write-lock acquisition is the barrier),
// the prober stops, buffered edges are flushed to healthy shards with a
// bounded final drain, and every sender and connection shuts down.
// Close is idempotent; later calls return the first result.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		if c.proberStop != nil {
			close(c.proberStop)
			<-c.proberDone
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.OpTimeout)
		for _, sh := range c.shards {
			if sh.down.Load() {
				continue
			}
			if err := sh.drain(ctx); err != nil && c.closeErr == nil {
				c.closeErr = err
			}
		}
		cancel()
		for _, sh := range c.shards {
			close(sh.sendCh)
		}
		for _, sh := range c.shards {
			<-sh.senderDone
		}
		for _, sh := range c.shards {
			sh.closeConns()
		}
	})
	return c.closeErr
}
