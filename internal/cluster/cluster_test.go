// Cluster tests live in an external package: they stand up real
// internal/server wire listeners per shard, and server imports cluster.
package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/cluster"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/obs"
	"github.com/graphstream/gsketch/internal/server"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/wire"
)

func testStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 3000,
			Dst:    rng.Uint64() % 9000,
			Weight: int64(rng.Uint64()%4) + 1,
			Time:   int64(i),
		}
	}
	return edges
}

func testSketchConfig() gsketch.Config {
	return gsketch.Config{TotalBytes: 64 << 10, Seed: 99}
}

// testShard is one in-process cluster node: a full engine behind a
// loopback wire listener, exactly what gsketch-serve -wire-addr runs.
type testShard struct {
	srv  *server.Server
	addr string
}

// startShard boots an engine (same config/sample/seed as every other
// shard, so routing agrees) and serves it on a loopback wire listener.
func startShard(t *testing.T, sample []stream.Edge, snapPath string) *testShard {
	t.Helper()
	opts := []gsketch.Option{
		gsketch.WithSample(sample),
		gsketch.WithIngest(gsketch.IngestConfig{Workers: 2, BatchSize: 256}),
	}
	if snapPath != "" {
		opts = append(opts, gsketch.WithSnapshotFile(snapPath))
	}
	eng, err := gsketch.Open(testSketchConfig(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(ln) //nolint:errcheck // ErrServerClosed after shutdown
	t.Cleanup(func() { srv.Close() })
	return &testShard{srv: srv, addr: ln.Addr().String()}
}

// startCluster boots n shards plus a coordinator routing over them.
func startCluster(t *testing.T, n int, sample []stream.Edge, cfg cluster.Config) (*cluster.Coordinator, []*testShard) {
	t.Helper()
	shards := make([]*testShard, n)
	for i := range shards {
		shards[i] = startShard(t, sample, "")
		cfg.Addrs = append(cfg.Addrs, shards[i].addr)
	}
	if cfg.Router == nil {
		router, err := core.BuildGSketch(testSketchConfig(), sample, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Router = router
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, shards
}

// clusterIngest pushes a stream through TryIngest, retrying shed suffixes.
func clusterIngest(t *testing.T, coord *cluster.Coordinator, edges []stream.Edge) {
	t.Helper()
	for rest := edges; len(rest) > 0; {
		n, err := coord.TryIngest(rest)
		rest = rest[n:]
		if err != nil && !errors.Is(err, gsketch.ErrIngestQueueFull) {
			t.Fatalf("TryIngest: %v", err)
		}
		if len(rest) > 0 && errors.Is(err, gsketch.ErrIngestQueueFull) {
			time.Sleep(time.Millisecond)
		}
	}
}

// drain flushes the coordinator's buffers through every shard's pipeline.
func drain(t *testing.T, coord *cluster.Coordinator) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// testQueries mixes sampled vertices (partition-routed) with vertex IDs
// far outside the sample range (outlier-routed) so both read paths are
// exercised.
func testQueries(edges []stream.Edge) []core.EdgeQuery {
	qs := make([]core.EdgeQuery, 0, 256)
	for i := 0; i < 200 && i < len(edges); i++ {
		e := edges[i*7%len(edges)]
		qs = append(qs, core.EdgeQuery{Src: e.Src, Dst: e.Dst})
	}
	for i := 0; i < 32; i++ {
		qs = append(qs, core.EdgeQuery{Src: 1 << 40, Dst: uint64(i)}) // absent from any sample
	}
	return qs
}

// TestClusterEquivalence is the acceptance check of the subsystem: a
// 4-shard loopback cluster fed a stream through the coordinator answers a
// mixed query batch with estimates and ε·N_i bounds byte-identical to a
// single-node engine fed the same stream, and the folded bound equals the
// sum of the per-shard bounds (so it is never looser than that sum).
func TestClusterEquivalence(t *testing.T) {
	edges := testStream(20_000, 11)
	sample := edges[:2000]

	coord, shards := startCluster(t, 4, sample, cluster.Config{
		BatchEdges:   512,
		PingInterval: -1, // probing adds nothing here
	})
	clusterIngest(t, coord, edges)
	drain(t, coord)

	single, err := gsketch.Open(testSketchConfig(),
		gsketch.WithSample(sample),
		gsketch.WithIngest(gsketch.IngestConfig{Workers: 2, BatchSize: 256}))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := single.Ingest(ctx, edges...); err != nil {
		t.Fatal(err)
	}
	if err := single.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	qs := testQueries(edges)
	got, err := coord.QueryBatch(qs)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	want := single.QueryBatch(qs)
	if len(got) != len(want) {
		t.Fatalf("cluster answered %d results, want %d", len(got), len(want))
	}

	// Per-shard answers, queried directly over the wire, to check the fold.
	perShard := make([][]core.Result, len(shards))
	for i, sh := range shards {
		cl, err := wire.Dial(sh.addr)
		if err != nil {
			t.Fatal(err)
		}
		perShard[i], err = cl.Query(nil, qs)
		cl.Close()
		if err != nil {
			t.Fatal(err)
		}
	}

	for i := range got {
		g, w := got[i], want[i]
		if g.Estimate != w.Estimate {
			t.Errorf("query %d (%d,%d): estimate %d, single node %d",
				i, qs[i].Src, qs[i].Dst, g.Estimate, w.Estimate)
		}
		if g.ErrorBound != w.ErrorBound {
			t.Errorf("query %d: bound %g, single node %g", i, g.ErrorBound, w.ErrorBound)
		}
		if g.StreamTotal != w.StreamTotal {
			t.Errorf("query %d: stream total %d, single node %d", i, g.StreamTotal, w.StreamTotal)
		}
		if g.Partition != w.Partition || g.Outlier != w.Outlier {
			t.Errorf("query %d: provenance (%d,%v), single node (%d,%v)",
				i, g.Partition, g.Outlier, w.Partition, w.Outlier)
		}
		var sum float64
		for _, res := range perShard {
			sum += res[i].ErrorBound
		}
		if g.ErrorBound > sum+1e-9 {
			t.Errorf("query %d: bound %g looser than per-shard sum %g", i, g.ErrorBound, sum)
		}
		// Union-bound confidence: never better than one shard's, never
		// worse than 1 - N·δ.
		delta := 1 - w.Confidence
		if g.Confidence > w.Confidence || g.Confidence < 1-float64(len(shards))*delta-1e-9 {
			t.Errorf("query %d: confidence %g outside [%g, %g]",
				i, g.Confidence, 1-float64(len(shards))*delta, w.Confidence)
		}
		if math.IsNaN(g.Confidence) {
			t.Errorf("query %d: NaN confidence", i)
		}
	}
}

// TestClusterDialFailure checks that New refuses to start degraded: a
// topology naming an unreachable shard fails with a *ShardError
// identifying it.
func TestClusterDialFailure(t *testing.T) {
	sample := testStream(500, 3)
	sh := startShard(t, sample, "")
	router, err := core.BuildGSketch(testSketchConfig(), sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A listener that is closed again immediately: the port is real but
	// nothing accepts.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	_, err = cluster.New(cluster.Config{
		Addrs:       []string{sh.addr, deadAddr},
		Router:      router,
		DialTimeout: 500 * time.Millisecond,
	})
	var se *cluster.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("New with dead shard = %v, want *ShardError", err)
	}
	if se.ID != 1 || se.Addr != deadAddr {
		t.Fatalf("ShardError identifies (%d, %s), want (1, %s)", se.ID, se.Addr, deadAddr)
	}
}

// TestClusterShardDeath kills one shard mid-run and checks the typed
// partial-failure surface: queries return the surviving shards' partial
// fold alongside a *PartialError, stats mark the shard degraded, and
// ingest routed at it sheds with a *ShardError wrapping ErrShardDown.
func TestClusterShardDeath(t *testing.T) {
	edges := testStream(4000, 7)
	sample := edges[:1000]
	coord, shards := startCluster(t, 2, sample, cluster.Config{
		BatchEdges:   256,
		PingInterval: -1, // no prober: nothing revives the shard behind our back
		OpTimeout:    2 * time.Second,
	})
	clusterIngest(t, coord, edges)
	drain(t, coord)

	qs := testQueries(edges)[:50]
	if _, err := coord.QueryBatch(qs); err != nil {
		t.Fatalf("healthy QueryBatch: %v", err)
	}

	// Kill shard 1 (server shutdown closes its listener and connections).
	shards[1].srv.Close()

	// The scatter hits the dead shard's connections and degrades it.
	res, err := coord.QueryBatch(qs)
	var pe *cluster.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("QueryBatch after shard death = %v, want *PartialError", err)
	}
	if len(pe.Failed) != 1 || pe.Failed[0].ID != 1 || pe.Shards != 2 {
		t.Fatalf("PartialError = %+v, want shard 1 of 2 failed", pe)
	}
	if len(res) != len(qs) {
		t.Fatalf("partial fold answered %d results, want %d from the surviving shard", len(res), len(qs))
	}

	st := coord.Stats()
	if st.Healthy != 1 || st.Degraded != 1 {
		t.Fatalf("Stats healthy/degraded = %d/%d, want 1/1", st.Healthy, st.Degraded)
	}
	if st.Shards[1].Healthy || st.Shards[1].LastError == "" {
		t.Fatalf("shard 1 stats = %+v, want unhealthy with a recorded error", st.Shards[1])
	}

	// Ingest: edges owned by the dead shard shed at their exact prefix.
	downEdge, upEdge := findRoutedEdges(t, coord, edges)
	n, err := coord.TryIngest([]stream.Edge{upEdge, downEdge, upEdge})
	if !errors.Is(err, cluster.ErrShardDown) {
		t.Fatalf("TryIngest at dead shard err = %v, want ErrShardDown", err)
	}
	var se *cluster.ShardError
	if !errors.As(err, &se) || se.ID != 1 {
		t.Fatalf("TryIngest err = %v, want *ShardError for shard 1", err)
	}
	if n != 1 {
		t.Fatalf("TryIngest accepted %d, want prefix 1", n)
	}
}

// findRoutedEdges picks one edge owned by shard 1 (down in the test) and
// one owned by shard 0, by probing TryIngest-visible routing through the
// per-shard stats deltas — avoiding any dependence on router internals.
func findRoutedEdges(t *testing.T, coord *cluster.Coordinator, edges []stream.Edge) (down, up stream.Edge) {
	t.Helper()
	var haveDown, haveUp bool
	for _, e := range edges {
		// Shard 1 is degraded: a single-edge offer either sheds with
		// ErrShardDown (owned by 1) or is buffered (owned by 0).
		n, err := coord.TryIngest([]stream.Edge{e})
		switch {
		case errors.Is(err, cluster.ErrShardDown):
			down, haveDown = e, true
		case err == nil && n == 1:
			up, haveUp = e, true
		}
		if haveDown && haveUp {
			return down, up
		}
	}
	t.Fatal("stream has no edges for both shards")
	return
}

// TestClusterCloseDrainsGathers closes the coordinator while query
// gathers are in flight: Close must wait them out (its write-lock
// acquisition is the drain barrier), after which every operation reports
// ErrClosed. Run with -race this is the coordinator's shutdown soundness
// test.
func TestClusterCloseDrainsGathers(t *testing.T) {
	edges := testStream(4000, 19)
	sample := edges[:1000]
	coord, _ := startCluster(t, 2, sample, cluster.Config{BatchEdges: 256})
	clusterIngest(t, coord, edges)

	qs := testQueries(edges)[:20]
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				res, err := coord.QueryBatch(qs)
				if errors.Is(err, cluster.ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("in-flight QueryBatch: %v", err)
					return
				}
				if len(res) != len(qs) {
					t.Errorf("in-flight QueryBatch answered %d, want %d", len(res), len(qs))
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let gathers get in flight
	if err := coord.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	if _, err := coord.TryIngest(edges[:1]); !errors.Is(err, cluster.ErrClosed) {
		t.Fatalf("TryIngest after Close = %v, want ErrClosed", err)
	}
	if _, err := coord.QueryBatch(qs); !errors.Is(err, cluster.ErrClosed) {
		t.Fatalf("QueryBatch after Close = %v, want ErrClosed", err)
	}
	if err := coord.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestClusterSnapshotFanOut saves through the coordinator (each shard to
// its own disk, topology manifest locally), mutates the cluster, restores,
// and checks the pre-snapshot answers come back. A coordinator with a
// different ordered topology must refuse the manifest.
func TestClusterSnapshotFanOut(t *testing.T) {
	dir := t.TempDir()
	edges := testStream(6000, 23)
	sample := edges[:1500]

	shards := []*testShard{
		startShard(t, sample, filepath.Join(dir, "shard0.snap")),
		startShard(t, sample, filepath.Join(dir, "shard1.snap")),
	}
	router, err := core.BuildGSketch(testSketchConfig(), sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "cluster.manifest")
	coord, err := cluster.New(cluster.Config{
		Addrs:        []string{shards[0].addr, shards[1].addr},
		Router:       router,
		BatchEdges:   256,
		PingInterval: -1,
		SnapshotPath: manifest,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	clusterIngest(t, coord, edges[:4000])
	drain(t, coord)
	qs := testQueries(edges)[:50]
	before, err := coord.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}

	n, err := coord.SaveSnapshot("")
	if err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if n <= 0 {
		t.Fatalf("SaveSnapshot bytes = %d, want > 0", n)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(filepath.Join(dir, "shard"+string(rune('0'+i))+".snap")); err != nil {
			t.Fatalf("shard %d snapshot missing: %v", i, err)
		}
	}

	// Mutate past the snapshot, then restore it.
	clusterIngest(t, coord, edges[4000:])
	drain(t, coord)
	after, err := coord.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range after {
		if after[i].Estimate != before[i].Estimate {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("post-snapshot ingest changed nothing; restore check would be vacuous")
	}

	if err := coord.RestoreSnapshot(""); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	restored, err := coord.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range restored {
		if restored[i].Estimate != before[i].Estimate || restored[i].ErrorBound != before[i].ErrorBound {
			t.Fatalf("query %d after restore = (%d, %g), want pre-mutation (%d, %g)",
				i, restored[i].Estimate, restored[i].ErrorBound, before[i].Estimate, before[i].ErrorBound)
		}
	}

	// A reordered topology is a different cluster: restoring must refuse.
	reversed, err := cluster.New(cluster.Config{
		Addrs:        []string{shards[1].addr, shards[0].addr},
		Router:       router,
		PingInterval: -1,
		SnapshotPath: manifest,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reversed.Close()
	if err := reversed.RestoreSnapshot(""); !errors.Is(err, cluster.ErrTopologyMismatch) {
		t.Fatalf("reordered RestoreSnapshot = %v, want ErrTopologyMismatch", err)
	}
}

// TestClusterProbeRevives checks the health loop end to end: a shard
// marked degraded by a failed query is revived by a probe once it answers
// pings again, and its gauges refresh.
func TestClusterProbeRevives(t *testing.T) {
	edges := testStream(2000, 31)
	sample := edges[:500]
	coord, _ := startCluster(t, 2, sample, cluster.Config{
		BatchEdges:   256,
		PingInterval: -1, // drive probes by hand for determinism
	})
	clusterIngest(t, coord, edges)
	drain(t, coord)

	coord.Probe()
	total, _, gens := coord.Health()
	var wantTotal int64
	for _, e := range edges {
		wantTotal += e.Weight
	}
	if total != wantTotal {
		t.Fatalf("Health stream total = %d, want %d", total, wantTotal)
	}
	if gens != 1 {
		t.Fatalf("Health generations = %d, want 1", gens)
	}
}

// TestCoordinatorMetricsAndReadiness stands a coordinator HTTP server
// over a live 2-shard cluster and asserts the /metrics exposition
// parses, carries per-shard labeled series that agree with the
// coordinator's Stats, and that /readyz tracks shard health: 200 while
// any shard answers, 503 once every shard is gone.
func TestCoordinatorMetricsAndReadiness(t *testing.T) {
	sample := testStream(400, 17)
	coord, shards := startCluster(t, 2, sample, cluster.Config{
		PingInterval: 20 * time.Millisecond,
		DialTimeout:  200 * time.Millisecond,
		OpTimeout:    time.Second,
	})
	srv, err := server.New(server.Config{Cluster: coord})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	edges := testStream(4000, 23)
	clusterIngest(t, coord, edges)
	drain(t, coord)

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, raw
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz with healthy shards: %d", code)
	}
	code, raw := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	fams, err := obs.ParseFamilies(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("coordinator exposition does not parse: %v\n%s", err, raw)
	}
	find := func(name string, labels map[string]string) float64 {
		t.Helper()
		for _, f := range fams {
			if f.Name != name {
				continue
			}
		next:
			for _, s := range f.Samples {
				for k, v := range labels {
					if s.Labels[k] != v {
						continue next
					}
				}
				return s.Value
			}
		}
		t.Fatalf("series %s%v not found", name, labels)
		return 0
	}
	if got := find("gsketch_cluster_shards", nil); got != 2 {
		t.Errorf("cluster_shards = %v, want 2", got)
	}
	if got := find("gsketch_cluster_healthy", nil); got != 2 {
		t.Errorf("cluster_healthy = %v, want 2", got)
	}
	st := coord.Stats()
	var sent float64
	for i, addr := range []string{shards[0].addr, shards[1].addr} {
		labels := map[string]string{"shard": strconv.Itoa(i), "addr": addr}
		if got := find("gsketch_shard_up", labels); got != 1 {
			t.Errorf("shard %d up = %v, want 1", i, got)
		}
		got := find("gsketch_shard_edges_sent_total", labels)
		if want := float64(st.Shards[i].EdgesSent); got != want {
			t.Errorf("shard %d edges_sent = %v, want %v", i, got, want)
		}
		sent += got
	}
	if sent != float64(len(edges)) {
		t.Errorf("summed shard edges_sent = %v, want %d", sent, len(edges))
	}

	// Kill every shard: readiness must go dark even though the
	// coordinator process itself is still alive.
	for _, sh := range shards {
		sh.srv.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := get("/readyz"); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 after all shards died")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after shard deaths: %d, want 200 (coordinator itself is alive)", code)
	}
}
