// Package cluster shards a gSketch deployment across processes: a static
// N-node topology where every shard runs a full engine behind the binary
// wire protocol (internal/wire), fronted by a coordinator that routes
// writes and scatter-gathers reads. It is the distribution layer the
// paper's estimator invites — the router is immutable and partitions are
// independent update domains, so a partition's whole substream can live
// on one node and the coordinator can merge per-shard answers exactly the
// way the adapt chain merges per-generation answers.
//
// # Routing
//
// The coordinator owns a routing sketch built from the same sample (and
// seed) as every shard's engine, and routes each edge by
//
//	shard(src) = Router.Route(src) mod N
//
// Route returns the gSketch partition index (the outlier shard for
// unrouted vertices), so the assignment is partition-disjoint: every
// partition's substream lands wholly on one cluster shard. A shard that
// does not own a vertex's partition never sees its edges — its partition
// sketch stays empty and answers estimate 0 with ε·N_i bound 0 — which is
// what makes the scatter-gather sum byte-identical to a single node fed
// the same stream (only the union-bound confidence is weaker, 1−N·δ
// instead of 1−δ).
//
// # Write path
//
// TryIngest keeps the accepted-prefix contract of the single-node engine:
// edges are routed in order into per-shard batch buffers, full batches
// are handed to a per-shard sender goroutine over a bounded queue, and
// the first edge that cannot be buffered — its shard's queue is full, or
// its shard is degraded — stops the scan. The caller gets the accepted
// prefix length plus ingest.ErrQueueFull (retry after backoff) or a
// *ShardError (shard down), so shard backpressure propagates to HTTP 429
// at the coordinator exactly as engine backpressure does on one node.
// Senders push batches with the wire shed-retry loop; a send failure
// marks the shard degraded and counts the batch as lost (at-most-once on
// shard failure, never reordered, never rerouted — rerouting would break
// partition-disjointness).
//
// # Read path
//
// QueryBatch scatters the whole batch to every shard over pooled wire
// connections and folds the answers in shard order with
// query.AccumulateResults: estimates and ε·N_i bounds add, confidence
// union-bounds, stream totals sum. Shards that fail mid-gather are marked
// degraded and reported in a typed *PartialError alongside the partial
// result, so callers can distinguish "the cluster's answer" from "most of
// the cluster's answer".
//
// # Health and snapshots
//
// A prober pings every shard each PingInterval, refreshing per-shard
// gauges (stream total, queue depth, generations, RTT) and reviving
// degraded shards that answer again. SaveSnapshot drains the write path
// and fans TypeSnapSave out to every shard — each persists to its own
// local disk — then writes a local JSON manifest recording the topology.
// RestoreSnapshot refuses a manifest whose ordered shard list differs
// from the running topology (ErrTopologyMismatch) and otherwise fans
// TypeSnapRestore out the same way. Streaming snapshot bytes through the
// coordinator is deliberately unsupported (ErrNoStream).
//
// The coordinator implements server.Backend, so internal/server exposes a
// cluster behind the unchanged HTTP+wire surface: clients cannot tell one
// node from N (gsketch-serve -cluster).
package cluster
