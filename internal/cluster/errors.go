package cluster

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("cluster: coordinator closed")
	// ErrShardDown marks a shard the coordinator cannot reach; it is
	// always wrapped in a *ShardError naming the shard.
	ErrShardDown = errors.New("cluster: shard unreachable")
	// ErrTopologyMismatch refuses a snapshot manifest recorded by a
	// different topology (shard count or ordered address list differ).
	ErrTopologyMismatch = errors.New("cluster: snapshot topology mismatch")
	// ErrNoStream rejects streaming snapshot bytes through the
	// coordinator; state lives on the shards' own disks.
	ErrNoStream = errors.New("cluster: streaming snapshots unsupported (snapshots fan out to per-shard disks)")
	// ErrNoSnapshotPath is returned by the snapshot fan-out when no
	// manifest path is configured or supplied.
	ErrNoSnapshotPath = errors.New("cluster: no snapshot manifest path")
)

// ShardError attributes a failure to one shard.
type ShardError struct {
	ID   int    // shard index in the configured topology
	Addr string // shard wire address
	Err  error  // underlying failure (ErrShardDown, a dial error, ...)
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d (%s): %v", e.ID, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// PartialError reports a scatter-gather that lost one or more shards. When
// any shard answered, the partial result is returned alongside it; when
// Failed covers the whole topology there is no result at all.
type PartialError struct {
	Failed []*ShardError // one entry per lost shard, in shard order
	Shards int           // topology size, for "k of n" reporting
}

func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: partial result: %d of %d shard(s) failed:", len(e.Failed), e.Shards)
	for _, f := range e.Failed {
		fmt.Fprintf(&b, " [%v]", f)
	}
	return b.String()
}

// Unwrap exposes the per-shard failures to errors.Is/As.
func (e *PartialError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		errs[i] = f
	}
	return errs
}
