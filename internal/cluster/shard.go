package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/wire"
)

// maxPooledConns bounds the per-shard query-connection free list.
const maxPooledConns = 4

// shedBackoff is the pause before retrying a shed suffix, matching the
// wire client's ingest retry cadence.
const shedBackoff = 200 * time.Microsecond

// sendJob is one unit of sender work: an edge batch to push, or — when
// flush is non-nil — a drain barrier. Channel order is the delivery
// order, so a flush job completes only after every batch queued before
// it has been acked by the shard.
type sendJob struct {
	edges []stream.Edge
	flush chan<- error
}

// shard is the coordinator's view of one cluster node: a batch buffer
// feeding a sender goroutine that owns the write connection, a pooled set
// of query connections, a degraded flag, and counters/gauges for /stats.
type shard struct {
	id   int
	addr string
	cfg  *Config
	log  *slog.Logger // scoped with shard/addr attributes

	// down marks the shard degraded: ingest sheds to it, queries fail
	// fast, and only a successful probe revives it.
	down atomic.Bool

	// Batch buffer between TryIngest and the sender.
	bmu sync.Mutex
	buf []stream.Edge

	sendCh     chan sendJob
	senderDone chan struct{}

	// Query-connection free list, dropped wholesale on markDown.
	pmu  sync.Mutex
	pool []*wire.Client

	// Monotonic counters.
	pendingEdges atomic.Int64 // edges queued but not yet acked by the shard
	edgesSent    atomic.Int64 // edges acked by the shard
	edgesLost    atomic.Int64 // edges dropped because the shard died
	sheds        atomic.Int64 // shard 429 rounds absorbed by the sender
	batchesSent  atomic.Int64 // batches fully delivered
	queries      atomic.Int64 // successful query round trips
	queryErrs    atomic.Int64 // failed query round trips

	// Gauges refreshed by the prober (and the initial dial check).
	gmu     sync.Mutex
	pong    wire.Pong
	rtt     time.Duration
	lastErr string
}

func newShard(id int, addr string, cfg *Config) *shard {
	return &shard{
		id:         id,
		addr:       addr,
		cfg:        cfg,
		log:        cfg.Logger.With("component", "cluster", "shard", id, "addr", addr),
		buf:        make([]stream.Edge, 0, cfg.BatchEdges),
		sendCh:     make(chan sendJob, cfg.QueueBatches),
		senderDone: make(chan struct{}),
	}
}

func (sh *shard) dial() (*wire.Client, error) {
	conn, err := net.DialTimeout("tcp", sh.addr, sh.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	return wire.NewClient(conn), nil
}

// markDown degrades the shard and drops its pooled connections (they
// share the peer's fate).
func (sh *shard) markDown(err error) {
	if !sh.down.Swap(true) {
		sh.log.Warn("shard degraded", "error", err)
	}
	sh.gmu.Lock()
	sh.lastErr = err.Error()
	sh.gmu.Unlock()
	sh.pmu.Lock()
	pool := sh.pool
	sh.pool = nil
	sh.pmu.Unlock()
	for _, c := range pool {
		c.Close()
	}
}

func (sh *shard) getConn() (*wire.Client, error) {
	sh.pmu.Lock()
	if n := len(sh.pool); n > 0 {
		c := sh.pool[n-1]
		sh.pool = sh.pool[:n-1]
		sh.pmu.Unlock()
		return c, nil
	}
	sh.pmu.Unlock()
	return sh.dial()
}

func (sh *shard) putConn(c *wire.Client) {
	c.SetDeadline(time.Time{})
	sh.pmu.Lock()
	if len(sh.pool) < maxPooledConns && !sh.down.Load() {
		sh.pool = append(sh.pool, c)
		sh.pmu.Unlock()
		return
	}
	sh.pmu.Unlock()
	c.Close()
}

func (sh *shard) closeConns() {
	sh.pmu.Lock()
	pool := sh.pool
	sh.pool = nil
	sh.pmu.Unlock()
	for _, c := range pool {
		c.Close()
	}
}

// offer buffers one routed edge, handing full batches to the sender. It
// returns false — rejecting the edge — only when the batch buffer is full
// and the sender queue cannot take it: the coordinator's queue-full
// signal.
func (sh *shard) offer(e stream.Edge) bool {
	sh.bmu.Lock()
	defer sh.bmu.Unlock()
	if len(sh.buf) >= sh.cfg.BatchEdges && !sh.handoffLocked() {
		return false
	}
	sh.buf = append(sh.buf, e)
	if len(sh.buf) >= sh.cfg.BatchEdges {
		sh.handoffLocked() // opportunistic; failure just defers to the next offer
	}
	return true
}

// handoffLocked moves the (possibly partial) batch buffer to the sender
// queue without blocking. Caller holds bmu.
func (sh *shard) handoffLocked() bool {
	if len(sh.buf) == 0 {
		return true
	}
	select {
	case sh.sendCh <- sendJob{edges: sh.buf}:
		sh.pendingEdges.Add(int64(len(sh.buf)))
		sh.buf = make([]stream.Edge, 0, sh.cfg.BatchEdges)
		return true
	default:
		return false
	}
}

// kick hands off a lingering partial batch so trickle traffic still
// reaches the shard within a prober tick.
func (sh *shard) kick() {
	sh.bmu.Lock()
	sh.handoffLocked()
	sh.bmu.Unlock()
}

// sender is the per-shard write loop: it owns one connection, delivers
// batches with the shed-retry protocol, and answers flush barriers. It
// exits when sendCh closes.
func (sh *shard) sender() {
	defer close(sh.senderDone)
	var cl *wire.Client
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	for job := range sh.sendCh {
		if job.flush != nil {
			job.flush <- sh.doFlush(&cl)
			continue
		}
		sh.pendingEdges.Add(-int64(len(job.edges)))
		sh.sendEdges(&cl, job.edges)
	}
}

// sendEdges delivers one batch, absorbing shard 429s with the retry loop
// and degrading the shard on connection failure (the undelivered suffix
// is counted lost — rerouting would break partition-disjointness).
func (sh *shard) sendEdges(cl **wire.Client, edges []stream.Edge) {
	if sh.down.Load() {
		sh.edgesLost.Add(int64(len(edges)))
		return
	}
	if *cl == nil {
		c, err := sh.dial()
		if err != nil {
			sh.markDown(err)
			sh.edgesLost.Add(int64(len(edges)))
			return
		}
		*cl = c
	}
	for lo := 0; lo < len(edges); {
		(*cl).SetDeadline(time.Now().Add(sh.cfg.OpTimeout))
		accepted, rejected, err := (*cl).Ingest(edges[lo:])
		sh.edgesSent.Add(int64(accepted))
		lo += accepted
		if err != nil {
			(*cl).Close()
			*cl = nil
			sh.markDown(err)
			sh.edgesLost.Add(int64(len(edges) - lo))
			return
		}
		if rejected > 0 {
			sh.sheds.Add(1)
			time.Sleep(shedBackoff)
		}
	}
	sh.batchesSent.Add(1)
}

// doFlush delivers a flush barrier: every batch queued before it has
// already been acked (channel order), so one wire Flush drains the shard
// engine's own pipeline.
func (sh *shard) doFlush(cl **wire.Client) error {
	if sh.down.Load() {
		return &ShardError{ID: sh.id, Addr: sh.addr, Err: ErrShardDown}
	}
	if *cl == nil {
		c, err := sh.dial()
		if err != nil {
			sh.markDown(err)
			return &ShardError{ID: sh.id, Addr: sh.addr, Err: err}
		}
		*cl = c
	}
	(*cl).SetDeadline(time.Now().Add(sh.cfg.OpTimeout))
	if err := (*cl).Flush(); err != nil {
		(*cl).Close()
		*cl = nil
		sh.markDown(err)
		return &ShardError{ID: sh.id, Addr: sh.addr, Err: err}
	}
	(*cl).SetDeadline(time.Time{})
	return nil
}

// drain pushes the partial batch buffer and a flush barrier through the
// sender, waiting — bounded by ctx — until the shard has applied
// everything queued before the call.
func (sh *shard) drain(ctx context.Context) error {
	sh.bmu.Lock()
	buf := sh.buf
	sh.buf = make([]stream.Edge, 0, sh.cfg.BatchEdges)
	sh.bmu.Unlock()
	if len(buf) > 0 {
		sh.pendingEdges.Add(int64(len(buf)))
		select {
		case sh.sendCh <- sendJob{edges: buf}:
		case <-ctx.Done():
			// Put the batch back in front so accepted edges are not
			// dropped and order is kept (anything offered meanwhile came
			// after it).
			sh.pendingEdges.Add(-int64(len(buf)))
			sh.bmu.Lock()
			sh.buf = append(buf, sh.buf...)
			sh.bmu.Unlock()
			return ctx.Err()
		}
	}
	done := make(chan error, 1)
	select {
	case sh.sendCh <- sendJob{flush: done}:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// query scatters one batch to this shard over a pooled connection.
func (sh *shard) query(qs []core.EdgeQuery) ([]core.Result, error) {
	if sh.down.Load() {
		sh.queryErrs.Add(1)
		return nil, ErrShardDown
	}
	cl, err := sh.getConn()
	if err != nil {
		sh.markDown(err)
		sh.queryErrs.Add(1)
		return nil, err
	}
	cl.SetDeadline(time.Now().Add(sh.cfg.OpTimeout))
	res, err := cl.Query(nil, qs)
	if err != nil {
		cl.Close()
		sh.markDown(err)
		sh.queryErrs.Add(1)
		return nil, err
	}
	if len(res) != len(qs) {
		cl.Close()
		sh.queryErrs.Add(1)
		return nil, fmt.Errorf("cluster: shard answered %d results, want %d", len(res), len(qs))
	}
	sh.putConn(cl)
	sh.queries.Add(1)
	return res, nil
}

// probe pings the shard, refreshing gauges and reviving a degraded shard
// that answers again.
func (sh *shard) probe() {
	cl, err := sh.getConn()
	if err != nil {
		sh.markDown(err)
		return
	}
	cl.SetDeadline(time.Now().Add(sh.cfg.OpTimeout))
	p, rtt, err := cl.Ping()
	if err != nil {
		cl.Close()
		sh.markDown(err)
		return
	}
	sh.gmu.Lock()
	sh.pong, sh.rtt, sh.lastErr = p, rtt, ""
	sh.gmu.Unlock()
	if sh.down.Swap(false) {
		sh.log.Info("shard revived", "rtt_ms", float64(rtt.Microseconds())/1e3)
	}
	sh.putConn(cl)
}
