// Package compact is the generation-lifecycle subsystem for adaptive
// chains: background compaction, disk tiering, and age-decay weighting.
//
// An adaptive chain freezes one generation per repartition. Without
// lifecycle management the chain grows monotonically: every query gathers
// across all generations with a union-bound confidence, memory never
// shrinks, and rotation hard-refuses at the generation cap. This package
// bounds all three:
//
//   - Compaction (Fold) merges the oldest K frozen generations into one —
//     cell-wise when their hash layouts match (lossless: CountMin counters
//     add, bounds stay ε·ΣN_i), else by re-partitioning from the segments'
//     retained reservoirs and replaying them at recorded volume. Fewer
//     generations also tightens the union bound.
//
//   - Tiering (Segment.Spill) moves cold frozen generations to file-backed
//     segments, reloading lazily on query, so the hot head plus a bounded
//     resident set stays in RAM.
//
//   - Decay is applied by the chain at gather time (see
//     query.AccumulateResultsWeighted): a frozen generation's contribution
//     scales by 2^(-age/halfLife) so ancient traffic stops dominating.
//
// The Manager runs the policy: a periodic check that compacts when the
// generation count, resident memory, or oldest-generation age crosses its
// trigger. The chain mechanism lives in internal/adapt (it owns the locks);
// this package owns the segments, the merge math, and the policy loop.
package compact

import (
	"sync/atomic"
	"time"
)

// Policy parameterizes background compaction. A trigger set to zero is
// disabled; a Policy with no trigger set disables background compaction
// entirely (manual compaction keeps working).
type Policy struct {
	// MaxGenerations compacts when the chain length exceeds it. Set it
	// below the chain's hard MaxGenerations cap and rotation never refuses:
	// the adapt manager also compacts on demand before a rotation that
	// would hit the cap.
	MaxGenerations int
	// MaxAge compacts when the oldest frozen generation has been frozen
	// longer than this.
	MaxAge time.Duration
	// MaxMemoryBytes compacts when the chain's resident counter footprint
	// exceeds it.
	MaxMemoryBytes int64
	// Fold is how many oldest generations one compaction folds (default 2,
	// minimum 2).
	Fold int
	// Interval is the background check period (default 30s).
	Interval time.Duration
}

// WithDefaults resolves the policy's zero values.
func (p Policy) WithDefaults() Policy {
	if p.Fold < 2 {
		p.Fold = 2
	}
	if p.Interval == 0 {
		p.Interval = 30 * time.Second
	}
	return p
}

// Enabled reports whether any background trigger is configured.
func (p Policy) Enabled() bool {
	return p.MaxGenerations > 0 || p.MaxAge > 0 || p.MaxMemoryBytes > 0
}

// State is the lifecycle snapshot a policy evaluates.
type State struct {
	// Generations is the chain length (head + frozen).
	Generations int
	// MemoryBytes is the resident counter footprint (spilled segments
	// excluded).
	MemoryBytes int64
	// OldestAge is how long the oldest frozen generation has been frozen
	// (zero when unknown or no frozen generations exist).
	OldestAge time.Duration
}

// Triggered reports whether the state crosses any configured trigger.
func (p Policy) Triggered(s State) bool {
	if p.MaxGenerations > 0 && s.Generations > p.MaxGenerations {
		return true
	}
	if p.MaxMemoryBytes > 0 && s.MemoryBytes > p.MaxMemoryBytes {
		return true
	}
	if p.MaxAge > 0 && s.OldestAge > p.MaxAge {
		return true
	}
	return false
}

// Result reports one compaction.
type Result struct {
	// Folded is the number of source generations merged away (0 = nothing
	// to do: fewer than two frozen generations).
	Folded int `json:"folded"`
	// Exact reports the lossless cell-wise path (vs re-ingest rebuild).
	Exact bool `json:"exact"`
	// Generations is the chain length after the compaction.
	Generations int `json:"generations"`
	// FreedBytes is the counter footprint removed (sources minus merged).
	FreedBytes int64 `json:"freed_bytes"`
	// Duration is the wall time of the fold (snapshot + merge + install).
	Duration time.Duration `json:"-"`
}

// Target is the chain surface the Manager drives — implemented by
// adapt.Chain via the engine's lifecycle adapter.
type Target interface {
	// LifecycleState snapshots the policy inputs.
	LifecycleState(now time.Time) State
	// Compact folds the oldest k frozen generations into one.
	Compact(k int) (Result, error)
	// EnforceResidency spills cold frozen generations past the resident
	// cap, returning how many were spilled.
	EnforceResidency() (int, error)
}

// Manager runs the compaction policy against a target on a fixed interval.
// It is deliberately thin: the chain owns all locking, the manager only
// decides when.
type Manager struct {
	policy Policy
	target Target
	now    func() time.Time
	onErr  func(error)

	compactions atomic.Int64
}

// NewManager builds a policy manager. now defaults to time.Now; onErr may
// be nil (errors are dropped — the next tick retries).
func NewManager(target Target, policy Policy, now func() time.Time, onErr func(error)) *Manager {
	if now == nil {
		now = time.Now
	}
	return &Manager{policy: policy.WithDefaults(), target: target, now: now, onErr: onErr}
}

// Policy returns the resolved policy.
func (m *Manager) Policy() Policy { return m.policy }

// Compactions returns how many compactions this manager triggered.
func (m *Manager) Compactions() int64 { return m.compactions.Load() }

// CheckOnce evaluates the policy and compacts at most once if triggered.
// It returns the compaction result, or nil when the policy did not fire
// (or fired with nothing to fold).
func (m *Manager) CheckOnce() (*Result, error) {
	if !m.policy.Enabled() {
		return nil, nil
	}
	st := m.target.LifecycleState(m.now())
	if !m.policy.Triggered(st) {
		// Residency is enforced even when no compaction fires: cold
		// generations keep spilling as they age out of the access window.
		if _, err := m.target.EnforceResidency(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	res, err := m.target.Compact(m.policy.Fold)
	if err != nil {
		return nil, err
	}
	if res.Folded > 0 {
		m.compactions.Add(1)
	}
	return &res, nil
}

// Run evaluates the policy every Interval until stop closes. Each tick
// compacts repeatedly until the policy stops triggering, so a burst of
// rotations converges in one tick.
func (m *Manager) Run(stop <-chan struct{}) {
	t := time.NewTicker(m.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			for i := 0; i < 8; i++ { // bounded convergence per tick
				res, err := m.CheckOnce()
				if err != nil {
					if m.onErr != nil {
						m.onErr(err)
					}
					break
				}
				if res == nil || res.Folded == 0 {
					break
				}
			}
		}
	}
}
