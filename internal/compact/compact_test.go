package compact

import (
	"errors"
	"os"
	"testing"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

func testStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 256,
			Dst:    rng.Uint64() % 1024,
			Weight: 1,
		}
	}
	return edges
}

func buildSketch(t *testing.T, sample []stream.Edge, seed uint64) *core.GSketch {
	t.Helper()
	g, err := core.BuildGSketch(core.Config{TotalBytes: 64 << 10, Seed: seed}, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// frozenSegment builds a frozen segment over its stream slice, retaining
// the slice itself as the reservoir (seen == len, a lossless sample).
func frozenSegment(t *testing.T, build []stream.Edge, seed uint64, slice []stream.Edge) *Segment {
	t.Helper()
	g := buildSketch(t, build, seed)
	core.Populate(g, slice)
	s := NewSegment(g, core.GenerationMeta{BuiltAt: 1000, CompactedFrom: 1})
	s.Freeze(2000, slice, int64(len(slice)))
	return s
}

func TestPolicyDefaultsEnabledTriggered(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.Fold != 2 || p.Interval != 30*time.Second {
		t.Fatalf("defaults: fold %d interval %v, want 2 / 30s", p.Fold, p.Interval)
	}
	if (Policy{}).Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if (Policy{Fold: 4, Interval: time.Minute}).Enabled() {
		t.Fatal("policy without triggers must be disabled")
	}

	cases := []struct {
		name string
		p    Policy
		s    State
		want bool
	}{
		{"gens under", Policy{MaxGenerations: 4}, State{Generations: 4}, false},
		{"gens over", Policy{MaxGenerations: 4}, State{Generations: 5}, true},
		{"mem under", Policy{MaxMemoryBytes: 1 << 20}, State{MemoryBytes: 1 << 20}, false},
		{"mem over", Policy{MaxMemoryBytes: 1 << 20}, State{MemoryBytes: 1<<20 + 1}, true},
		{"age under", Policy{MaxAge: time.Hour}, State{OldestAge: time.Hour}, false},
		{"age over", Policy{MaxAge: time.Hour}, State{OldestAge: time.Hour + time.Second}, true},
		{"any of several", Policy{MaxGenerations: 10, MaxAge: time.Hour}, State{Generations: 2, OldestAge: 2 * time.Hour}, true},
	}
	for _, tc := range cases {
		if got := tc.p.Triggered(tc.s); got != tc.want {
			t.Errorf("%s: Triggered = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// scaledReplay must conserve volume exactly: the replayed weights sum to
// the target no matter how the scale factor rounds.
func TestScaledReplayConservesVolume(t *testing.T) {
	sample := testStream(997, 3) // odd size to stress the remainder loop
	for _, target := range []int64{1, 996, 997, 1000, 12345, 1_000_003} {
		out := scaledReplay(sample, target)
		var sum int64
		for _, e := range out {
			if e.Weight <= 0 {
				t.Fatalf("target %d: zero-weight edge survived", target)
			}
			sum += e.Weight
		}
		if sum != target {
			t.Fatalf("target %d: replayed volume %d", target, sum)
		}
	}
	if out := scaledReplay(sample, 0); out != nil {
		t.Fatal("target 0 must replay nothing")
	}
	if out := scaledReplay(nil, 100); out != nil {
		t.Fatal("empty sample must replay nothing")
	}
	// A reservoir that retained its whole segment replays losslessly.
	out := scaledReplay(sample, int64(len(sample)))
	if len(out) != len(sample) {
		t.Fatalf("1:1 replay kept %d of %d edges", len(out), len(sample))
	}
	for i := range out {
		if out[i] != sample[i] {
			t.Fatalf("1:1 replay mutated edge %d", i)
		}
	}
}

// combineSamples caps retained memory at 2× the reservoir size so repeated
// compaction cannot grow it without bound, while seen totals still add.
func TestCombineSamplesCap(t *testing.T) {
	edges := testStream(6000, 5)
	a := frozenSegment(t, edges[:500], 1, edges[:3000])
	b := frozenSegment(t, edges[:500], 1, edges[3000:])
	combined, seen := combineSamples([]*Segment{a, b}, 1000)
	if len(combined) != 2000 {
		t.Fatalf("combined sample = %d edges, want capped 2000", len(combined))
	}
	if seen != 6000 {
		t.Fatalf("combined seen = %d, want 6000", seen)
	}
	// Under the cap the concatenation passes through whole.
	combined, _ = combineSamples([]*Segment{a, b}, 4000)
	if len(combined) != 6000 {
		t.Fatalf("uncapped combine = %d edges, want 6000", len(combined))
	}
}

// Fold's exact path: same hash layout → counters add cell-wise, volume is
// conserved, lineage accumulates, and estimates never fall below either
// source's answers.
func TestFoldExactMerge(t *testing.T) {
	edges := testStream(20000, 7)
	// Identical build sample + config ⇒ identical layouts.
	a := frozenSegment(t, edges[:1000], 9, edges[:10000])
	b := frozenSegment(t, edges[:1000], 9, edges[10000:])

	merged, exact, err := Fold([]*Segment{a, b}, core.Config{TotalBytes: 64 << 10, Seed: 9}, nil, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("identical layouts must merge exactly")
	}
	if got, want := merged.Count(), a.Count()+b.Count(); got != want {
		t.Fatalf("merged volume %d, want %d", got, want)
	}
	if got := merged.Meta().CompactedFrom; got != 2 {
		t.Fatalf("merged lineage %d, want 2", got)
	}
	for _, e := range edges[:300] {
		sum := a.EstimateEdge(e.Src, e.Dst) + b.EstimateEdge(e.Src, e.Dst)
		if got := merged.EstimateEdge(e.Src, e.Dst); got < sum {
			// min-of-sums ≥ sum-of-mins: the merged CountMin can only
			// answer at or above the gathered sum, never below.
			t.Fatalf("edge (%d,%d): merged %d < gathered sum %d", e.Src, e.Dst, got, sum)
		}
	}
}

// Fold's re-ingest path: different layouts force a rebuild from the
// retained reservoirs; volume is still conserved exactly.
func TestFoldReingestConservesVolume(t *testing.T) {
	edges := testStream(16000, 11)
	a := frozenSegment(t, edges[:1000], 1, edges[:8000])
	b := frozenSegment(t, edges[2000:3500], 2, edges[8000:]) // different sample+seed ⇒ different layout

	merged, exact, err := Fold([]*Segment{a, b}, core.Config{TotalBytes: 64 << 10, Seed: 3}, nil, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("different layouts cannot merge exactly")
	}
	if got, want := merged.Count(), a.Count()+b.Count(); got != want {
		t.Fatalf("merged volume %d, want %d", got, want)
	}

	// A segment with volume but no retained sample cannot re-ingest.
	g := buildSketch(t, edges[:1000], 4)
	core.Populate(g, edges[:2000])
	bare := NewSegment(g, core.GenerationMeta{})
	bare.Freeze(2000, nil, 0)
	if _, _, err := Fold([]*Segment{bare, b}, core.Config{TotalBytes: 64 << 10, Seed: 3}, nil, 1024); err == nil {
		t.Fatal("re-ingest without retained samples must fail")
	}

	if _, _, err := Fold([]*Segment{a}, core.Config{TotalBytes: 64 << 10, Seed: 3}, nil, 1024); err == nil {
		t.Fatal("folding fewer than two segments must fail")
	}
}

// Spill → evict → lazy reload must round-trip answers byte-identically,
// report residency honestly, and refuse live segments.
func TestSegmentSpillReloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	edges := testStream(8000, 13)

	g := buildSketch(t, edges[:800], 5)
	live := NewSegment(g, core.GenerationMeta{})
	live.UpdateBatch(edges)
	if err := live.Spill(dir); err == nil {
		t.Fatal("spilling a live segment must be refused")
	}

	want := make([]int64, 200)
	for i, e := range edges[:200] {
		want[i] = live.EstimateEdge(e.Src, e.Dst)
	}
	wantCount := live.Count()
	wantBytes := live.MemoryBytes()

	live.Freeze(1234, edges[:100], 100)
	if err := live.Spill(dir); err != nil {
		t.Fatal(err)
	}
	if live.Resident() {
		t.Fatal("segment still resident after spill")
	}
	if !live.Tiered() {
		t.Fatal("segment not tiered after spill")
	}
	if live.MemoryBytes() != 0 {
		t.Fatalf("spilled MemoryBytes = %d, want 0", live.MemoryBytes())
	}
	if live.SketchBytes() != wantBytes {
		t.Fatalf("spilled SketchBytes = %d, want %d", live.SketchBytes(), wantBytes)
	}
	if live.Count() != wantCount {
		t.Fatalf("spilled Count = %d, want cached %d", live.Count(), wantCount)
	}

	// First query lazily reloads; answers are byte-identical.
	for i, e := range edges[:200] {
		if got := live.EstimateEdge(e.Src, e.Dst); got != want[i] {
			t.Fatalf("edge (%d,%d): reloaded %d != original %d", e.Src, e.Dst, got, want[i])
		}
	}
	if !live.Resident() {
		t.Fatal("segment not resident after reload")
	}
	// Re-spill drops residency without rewriting the immutable file.
	ents, _ := os.ReadDir(dir)
	if err := live.Spill(dir); err != nil {
		t.Fatal(err)
	}
	ents2, _ := os.ReadDir(dir)
	if len(ents) != 1 || len(ents2) != 1 {
		t.Fatalf("tier dir holds %d then %d files, want 1 and 1", len(ents), len(ents2))
	}
	live.Discard()
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("tier dir holds %d files after discard, want 0", len(ents))
	}
}

// fakeTarget scripts the Target surface for Manager tests.
type fakeTarget struct {
	state    State
	compacts int
	enforces int
	err      error
}

func (f *fakeTarget) LifecycleState(time.Time) State { return f.state }
func (f *fakeTarget) Compact(k int) (Result, error) {
	f.compacts++
	if f.err != nil {
		return Result{}, f.err
	}
	f.state.Generations--
	return Result{Folded: k, Generations: f.state.Generations}, nil
}
func (f *fakeTarget) EnforceResidency() (int, error) { f.enforces++; return 0, nil }

func TestManagerCheckOnce(t *testing.T) {
	ft := &fakeTarget{state: State{Generations: 3}}
	m := NewManager(ft, Policy{MaxGenerations: 4}, nil, nil)

	// Under the trigger: no compaction, residency still enforced.
	if res, err := m.CheckOnce(); err != nil || res != nil {
		t.Fatalf("untriggered CheckOnce = (%v, %v)", res, err)
	}
	if ft.compacts != 0 || ft.enforces != 1 {
		t.Fatalf("untriggered: compacts=%d enforces=%d", ft.compacts, ft.enforces)
	}

	// Over the trigger: exactly one fold, counted.
	ft.state.Generations = 6
	res, err := m.CheckOnce()
	if err != nil || res == nil || res.Folded != 2 {
		t.Fatalf("triggered CheckOnce = (%+v, %v)", res, err)
	}
	if m.Compactions() != 1 {
		t.Fatalf("compactions = %d, want 1", m.Compactions())
	}

	// A disabled policy never touches the target.
	idle := NewManager(ft, Policy{}, nil, nil)
	if res, err := idle.CheckOnce(); err != nil || res != nil {
		t.Fatalf("disabled CheckOnce = (%v, %v)", res, err)
	}

	// Errors surface without counting a compaction.
	ft.err = errors.New("boom")
	ft.state.Generations = 9
	if _, err := m.CheckOnce(); err == nil {
		t.Fatal("target error swallowed")
	}
	if m.Compactions() != 1 {
		t.Fatalf("failed fold counted: %d", m.Compactions())
	}
}
