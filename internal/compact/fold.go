package compact

import (
	"fmt"
	"math"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Fold merges k frozen segments (oldest first) into one new frozen segment
// covering their union stream. Two paths:
//
//   - Exact: when every segment shares the oldest one's hash layout (same
//     router, widths, depth, seeds — the shape produced by rotations built
//     from identical samples and configs, and by prior compactions), the
//     CountMin counters add cell-wise. The merged generation answers with
//     estimates identical to the sum the chain gather would have produced,
//     and the additive bound ε·ΣN_i is exactly the sum of the per-segment
//     bounds.
//
//   - Re-ingest: when layouts differ, a fresh gSketch is partitioned from
//     the segments' combined retained reservoirs (the §4.1/§4.2 build) and
//     each segment's reservoir is replayed into it with weights scaled so
//     every segment contributes exactly its recorded stream volume. When a
//     reservoir retained its whole segment (seen ≤ capacity) the replay is
//     a lossless re-run of that slice; an undersampled reservoir yields the
//     sample's frequency shape at full volume — an approximation, which is
//     why the exact path is preferred whenever the layouts allow it.
//
// Either way the merged segment's stream total equals the sum of the
// sources', so chain-wide Count is conserved, and the post-compaction chain
// has fewer generations — the union bound over per-generation confidences
// tightens.
func Fold(segs []*Segment, cfg core.Config, workload []stream.Edge, sampleCap int) (*Segment, bool, error) {
	if len(segs) < 2 {
		return nil, false, fmt.Errorf("compact: fold needs at least 2 segments, got %d", len(segs))
	}
	meta := core.GenerationMeta{BuiltAt: segs[0].Meta().BuiltAt}
	var frozenAt int64
	var totalCount int64
	for _, s := range segs {
		meta.CompactedFrom += s.Meta().CompactedFrom
		if fa := s.FrozenAt(); fa > frozenAt {
			frozenAt = fa
		}
		totalCount += s.Count()
	}

	g, exact, err := foldSketch(segs, cfg, workload)
	if err != nil {
		return nil, false, err
	}
	if got := g.Count(); got != totalCount {
		return nil, false, fmt.Errorf("compact: folded volume %d does not match source volume %d", got, totalCount)
	}

	merged := NewSegment(g, meta)
	sample, seen := combineSamples(segs, sampleCap)
	merged.Freeze(frozenAt, sample, seen)
	return merged, exact, nil
}

// foldSketch produces the merged sketch, preferring the exact path.
func foldSketch(segs []*Segment, cfg core.Config, workload []stream.Edge) (*core.GSketch, bool, error) {
	// Exact path: clone the oldest segment and fold the rest in cell-wise.
	// The clone keeps the sources untouched until the chain installs the
	// result; the other segments are only read.
	base, err := segs[0].Snapshot()
	if err != nil {
		return nil, false, err
	}
	exact := true
	rest := make([]*core.GSketch, 0, len(segs)-1)
	for _, s := range segs[1:] {
		g, err := s.Snapshot()
		if err != nil {
			return nil, false, err
		}
		if base.CanMerge(g) != nil {
			exact = false
			break
		}
		rest = append(rest, g)
	}
	if exact {
		for i, g := range rest {
			if err := base.MergeFrom(g); err != nil {
				return nil, false, fmt.Errorf("compact: exact merge of segment %d: %w", i+1, err)
			}
		}
		return base, true, nil
	}

	// Re-ingest path: rebuild from the combined retained reservoirs, then
	// replay each segment's reservoir scaled to its recorded volume.
	var combined []stream.Edge
	for i, s := range segs {
		sample, _ := s.Sample()
		if len(sample) == 0 && s.Count() > 0 {
			return nil, false, fmt.Errorf("compact: segment %d has stream volume %d but no retained sample (layouts are not counter-mergeable and there is nothing to re-ingest; restored chains compact only via the exact path)", i, s.Count())
		}
		combined = append(combined, sample...)
	}
	if len(combined) == 0 {
		return nil, false, fmt.Errorf("compact: no retained samples to rebuild from")
	}
	g, err := core.BuildGSketch(cfg, combined, workload)
	if err != nil {
		return nil, false, fmt.Errorf("compact: rebuild for re-ingest: %w", err)
	}
	for _, s := range segs {
		sample, _ := s.Sample()
		core.Populate(g, scaledReplay(sample, s.Count()))
	}
	return g, false, nil
}

// scaledReplay returns sample rescaled so its total weight is exactly
// target: each edge's weight scales by target/Σw with the rounding
// remainder distributed one unit at a time, so no volume is created or
// lost. A reservoir that retained its entire segment scales by 1 — a
// lossless replay.
func scaledReplay(sample []stream.Edge, target int64) []stream.Edge {
	if target <= 0 || len(sample) == 0 {
		return nil
	}
	var sw int64
	for _, e := range sample {
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		sw += w
	}
	out := make([]stream.Edge, len(sample))
	var acc int64
	f := float64(target) / float64(sw)
	for i, e := range sample {
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		scaled := int64(math.Floor(float64(w) * f))
		out[i] = e
		out[i].Weight = scaled
		acc += scaled
	}
	for i := 0; acc < target; i = (i + 1) % len(out) {
		out[i].Weight++
		acc++
	}
	// Drop zero-weight survivors (their mass moved to the remainder).
	kept := out[:0]
	for _, e := range out {
		if e.Weight > 0 {
			kept = append(kept, e)
		}
	}
	return kept
}

// combineSamples concatenates the segments' retained reservoirs (capped by
// uniform stride at 2×cap so repeated compaction cannot grow retained
// memory without bound) so the merged segment can itself re-ingest later.
func combineSamples(segs []*Segment, sampleCap int) ([]stream.Edge, int64) {
	var combined []stream.Edge
	var seen int64
	for _, s := range segs {
		sample, sn := s.Sample()
		combined = append(combined, sample...)
		seen += sn
	}
	limit := 2 * sampleCap
	if sampleCap > 0 && len(combined) > limit {
		stride := float64(len(combined)) / float64(limit)
		kept := make([]stream.Edge, 0, limit)
		for i := 0; i < limit; i++ {
			kept = append(kept, combined[int(float64(i)*stride)])
		}
		combined = kept
	}
	return combined, seen
}
