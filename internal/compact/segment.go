package compact

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Segment is one generation of a chain under lifecycle management: the
// sketch, its concurrency wrapper, its lifecycle record, and — once frozen —
// the retained data-reservoir sample its stream segment was summarized
// from (the re-ingest source of layout-incompatible compaction) plus its
// disk-tier state.
//
// A segment starts live (the chain head, absorbing updates). Freeze marks
// it immutable: the chain guarantees no writer touches a generation after
// its displacing rotation completes (updates run under the chain's shared
// lock, so a rotation's exclusive lock drains them), which is what lets a
// frozen segment be snapshotted, spilled to disk and reloaded without
// counter races. Spilled segments answer queries by lazy reload; reloads
// and evictions race-protect each other with loadMu while readers go
// through the atomic live pointer, so a query that grabbed the wrapper just
// before an eviction finishes harmlessly on the still-valid memory.
type Segment struct {
	// live is the resident state, nil while spilled-and-evicted. Readers
	// load it lock-free; transitions (spill, reload) serialize on loadMu.
	live   atomic.Pointer[residentState]
	loadMu sync.Mutex
	// spillPath is the on-disk version-2 stream of this segment, written
	// once (frozen segments never change, so the file never goes stale).
	// Guarded by loadMu.
	spillPath string

	meta     core.GenerationMeta
	frozenAt atomic.Int64 // unix seconds of the displacing rotation; 0 = live or unknown

	// Retained freeze-time reservoir: the data sample summarizing this
	// segment's stream slice, kept so compaction can re-ingest when exact
	// merge is impossible. sampleSeen is the reservoir's Seen() — when it
	// does not exceed the sample's weight, the sample IS the segment.
	sampleMu   sync.Mutex
	sample     []stream.Edge
	sampleSeen int64

	// count/memBytes cache the frozen segment's totals so a spilled segment
	// still reports stream volume and its would-be footprint without IO.
	count    atomic.Int64
	memBytes atomic.Int64

	lastAccess atomic.Int64 // query-touch ordinal, eviction ordering
}

type residentState struct {
	g    *core.GSketch
	conc *core.Concurrent
}

// accessClock hands out monotone ordinals for lastAccess without needing a
// real clock on the query path.
var accessClock atomic.Int64

// NewSegment wraps a sketch as a live (head) segment.
func NewSegment(g *core.GSketch, meta core.GenerationMeta) *Segment {
	if meta.CompactedFrom < 1 {
		meta.CompactedFrom = 1
	}
	s := &Segment{meta: meta}
	s.live.Store(&residentState{g: g, conc: core.NewConcurrent(g)})
	s.count.Store(g.Count())
	s.memBytes.Store(int64(g.MemoryBytes()))
	return s
}

// Freeze marks the segment immutable, records when, and retains the
// freeze-time reservoir sample for later re-ingest compaction. The chain
// calls it after the displacing rotation's exclusive lock has drained all
// in-flight writers, so the cached totals are final.
func (s *Segment) Freeze(frozenAt int64, sample []stream.Edge, seen int64) {
	s.frozenAt.Store(frozenAt)
	s.sampleMu.Lock()
	s.sample = sample
	s.sampleSeen = seen
	s.sampleMu.Unlock()
	if ls := s.live.Load(); ls != nil {
		s.count.Store(ls.conc.Count())
		s.memBytes.Store(int64(ls.conc.MemoryBytes()))
	}
}

// Update folds one edge into the segment. Only the chain head is updated;
// it is never spilled, so live is always set there.
func (s *Segment) Update(e stream.Edge) { s.live.Load().conc.Update(e) }

// UpdateBatch folds a batch into the segment (head only).
func (s *Segment) UpdateBatch(edges []stream.Edge) { s.live.Load().conc.UpdateBatch(edges) }

// acquire returns the resident state, reloading from the spill file if the
// segment was evicted. The returned state stays valid for the caller even
// if an eviction races in afterwards.
func (s *Segment) acquire() (*residentState, error) {
	if ls := s.live.Load(); ls != nil {
		return ls, nil
	}
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	if ls := s.live.Load(); ls != nil {
		return ls, nil
	}
	f, err := os.Open(s.spillPath)
	if err != nil {
		return nil, fmt.Errorf("compact: reload spilled generation: %w", err)
	}
	defer f.Close()
	g, err := core.ReadGSketch(f)
	if err != nil {
		return nil, fmt.Errorf("compact: reload spilled generation %s: %w", s.spillPath, err)
	}
	ls := &residentState{g: g, conc: core.NewConcurrent(g)}
	s.live.Store(ls)
	return ls, nil
}

// EstimateBatch answers a query batch from the segment, lazily reloading a
// spilled segment. A reload failure degrades to zero contributions (with a
// zero confidence so combined answers advertise the loss) rather than
// failing the whole chain gather.
func (s *Segment) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	s.lastAccess.Store(accessClock.Add(1))
	ls, err := s.acquire()
	if err != nil {
		return make([]core.Result, len(qs))
	}
	return ls.conc.EstimateBatch(qs)
}

// EstimateEdge answers one edge query, lazily reloading a spilled segment.
func (s *Segment) EstimateEdge(src, dst uint64) int64 {
	s.lastAccess.Store(accessClock.Add(1))
	ls, err := s.acquire()
	if err != nil {
		return 0
	}
	return ls.conc.EstimateEdge(src, dst)
}

// Count returns the segment's stream volume: live when resident, the
// freeze-time cache when spilled.
func (s *Segment) Count() int64 {
	if ls := s.live.Load(); ls != nil {
		return ls.conc.Count()
	}
	return s.count.Load()
}

// MemoryBytes reports the resident counter footprint — zero while spilled,
// which is the point of tiering.
func (s *Segment) MemoryBytes() int {
	if ls := s.live.Load(); ls != nil {
		return ls.conc.MemoryBytes()
	}
	return 0
}

// SketchBytes reports the counter footprint regardless of residency.
func (s *Segment) SketchBytes() int {
	if ls := s.live.Load(); ls != nil {
		return ls.conc.MemoryBytes()
	}
	return int(s.memBytes.Load())
}

// Resident reports whether the segment's counters are in RAM.
func (s *Segment) Resident() bool { return s.live.Load() != nil }

// Tiered reports whether the segment has a disk copy (it may additionally
// be resident after a reload).
func (s *Segment) Tiered() bool {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	return s.spillPath != ""
}

// Meta returns the lifecycle record.
func (s *Segment) Meta() core.GenerationMeta { return s.meta }

// FrozenAt returns the unix-seconds freeze time (0 = live or unknown).
func (s *Segment) FrozenAt() int64 { return s.frozenAt.Load() }

// LastAccess returns the query-touch ordinal (0 = never queried).
func (s *Segment) LastAccess() int64 { return s.lastAccess.Load() }

// Sample returns the retained freeze-time reservoir and how much stream it
// summarizes. The slice is shared — callers must not mutate it.
func (s *Segment) Sample() ([]stream.Edge, int64) {
	s.sampleMu.Lock()
	defer s.sampleMu.Unlock()
	return s.sample, s.sampleSeen
}

// Sketch returns the live sketch for layout/routing reads. It is nil while
// the segment is spilled; the chain head — the only caller — is never
// spilled.
func (s *Segment) Sketch() *core.GSketch {
	if ls := s.live.Load(); ls != nil {
		return ls.g
	}
	return nil
}

// NumShards reports the live sketch's writer domains (head only).
func (s *Segment) NumShards() int { return s.live.Load().conc.NumShards() }

// Spill writes the frozen segment to a file under dir (creating it) and
// drops the resident counters. Idempotent: a segment spilled before only
// drops residency — the file is immutable, so it is never rewritten. Live
// (unfrozen) spill requests are refused.
func (s *Segment) Spill(dir string) error {
	if s.frozenAt.Load() == 0 {
		return fmt.Errorf("compact: refusing to spill a live generation")
	}
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	ls := s.live.Load()
	if ls == nil {
		return nil // already spilled and evicted
	}
	if s.spillPath == "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("compact: tier dir: %w", err)
		}
		f, err := os.CreateTemp(dir, "gen-*.gsk")
		if err != nil {
			return fmt.Errorf("compact: spill: %w", err)
		}
		if _, err := ls.conc.WriteTo(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("compact: spill %s: %w", f.Name(), err)
		}
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			return fmt.Errorf("compact: spill %s: %w", f.Name(), err)
		}
		s.spillPath = f.Name()
	}
	s.count.Store(ls.conc.Count())
	s.memBytes.Store(int64(ls.conc.MemoryBytes()))
	s.live.Store(nil)
	return nil
}

// Discard removes the segment's spill file, if any — called when compaction
// replaces the segment and its disk copy has no future reader.
func (s *Segment) Discard() {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	if s.spillPath != "" {
		os.Remove(s.spillPath)
		s.spillPath = ""
	}
}

// Snapshot returns a deep, private copy of the segment's sketch: from the
// spill file when evicted (no locking needed — the file is immutable),
// otherwise through the wrapper's consistent striped-lock serialization.
func (s *Segment) Snapshot() (*core.GSketch, error) {
	if ls := s.live.Load(); ls != nil {
		var buf bytes.Buffer
		if _, err := ls.conc.WriteTo(&buf); err != nil {
			return nil, err
		}
		return core.ReadGSketch(&buf)
	}
	s.loadMu.Lock()
	path := s.spillPath
	s.loadMu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("compact: snapshot spilled generation: %w", err)
	}
	defer f.Close()
	return core.ReadGSketch(f)
}

// WriteTo streams the segment's version-2 stream: straight from the spill
// file when evicted, else a consistent striped-lock serialization. This is
// how a chain snapshot includes tiered generations without reloading them.
func (s *Segment) WriteTo(w io.Writer) (int64, error) {
	if ls := s.live.Load(); ls != nil {
		return ls.conc.WriteTo(w)
	}
	s.loadMu.Lock()
	path := s.spillPath
	s.loadMu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("compact: serialize spilled generation: %w", err)
	}
	defer f.Close()
	return io.Copy(w, f)
}

var _ io.WriterTo = (*Segment)(nil)
