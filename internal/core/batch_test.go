package core

import (
	"bytes"
	"testing"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

// batchTestStream builds a skewed edge stream whose sources partly overlap
// the sample (router hits) and partly do not (outlier traffic).
func batchTestStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 3000,
			Dst:    rng.Uint64() % 8000,
			Weight: int64(rng.Uint64() % 4), // weight 0 exercises the default-1 path
		}
	}
	return edges
}

func buildBatchTestSketch(t *testing.T, seed uint64) *GSketch {
	t.Helper()
	sample := batchTestStream(4000, seed+100)
	g, err := BuildGSketch(Config{TotalWidth: 4096, Seed: seed}, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func serializeGSketch(t *testing.T, g *GSketch) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGSketchUpdateBatchByteIdentical proves the route-then-scatter batch
// path produces exactly the counters of per-edge Update, via full
// serialized state comparison.
func TestGSketchUpdateBatchByteIdentical(t *testing.T) {
	edges := batchTestStream(50_000, 7)
	seq := buildBatchTestSketch(t, 7)
	bat := buildBatchTestSketch(t, 7)

	for _, e := range edges {
		seq.Update(e)
	}
	for lo := 0; lo < len(edges); lo += 1000 {
		hi := lo + 1000
		if hi > len(edges) {
			hi = len(edges)
		}
		bat.UpdateBatch(edges[lo:hi])
	}
	if seq.Count() != bat.Count() {
		t.Fatalf("Count %d (sequential) vs %d (batch)", seq.Count(), bat.Count())
	}
	if !bytes.Equal(serializeGSketch(t, seq), serializeGSketch(t, bat)) {
		t.Fatal("batch counters are not byte-identical to sequential Update")
	}
}

// TestGSketchUpdateBatchConservative covers the order-sensitive
// conservative-update path: within-shard order preservation must keep it
// byte-identical too.
func TestGSketchUpdateBatchConservative(t *testing.T) {
	edges := batchTestStream(30_000, 9)
	sample := batchTestStream(4000, 109)
	build := func() *GSketch {
		g, err := BuildGSketch(Config{TotalWidth: 4096, Seed: 9, Conservative: true}, sample, nil)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	seq, bat := build(), build()
	for _, e := range edges {
		seq.Update(e)
	}
	Populate(bat, edges)
	for _, e := range edges {
		s := seq.EstimateEdge(e.Src, e.Dst)
		b := bat.EstimateEdge(e.Src, e.Dst)
		if s != b {
			t.Fatalf("conservative estimate (%d,%d): %d vs %d", e.Src, e.Dst, s, b)
		}
	}
}

func TestGlobalSketchUpdateBatchEquivalence(t *testing.T) {
	edges := batchTestStream(50_000, 11)
	build := func() *GlobalSketch {
		g, err := BuildGlobalSketch(Config{TotalWidth: 4096, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	seq, bat := build(), build()
	for _, e := range edges {
		seq.Update(e)
	}
	bat.UpdateBatch(edges)
	if seq.Count() != bat.Count() {
		t.Fatalf("Count %d vs %d", seq.Count(), bat.Count())
	}
	for _, e := range edges[:2000] {
		if s, b := seq.EstimateEdge(e.Src, e.Dst), bat.EstimateEdge(e.Src, e.Dst); s != b {
			t.Fatalf("estimate (%d,%d): %d vs %d", e.Src, e.Dst, s, b)
		}
	}
}

// TestConcurrentUpdateBatchByteIdentical proves the sharded Concurrent
// writer leaves the wrapped gSketch in the same state as unwrapped
// sequential updates.
func TestConcurrentUpdateBatchByteIdentical(t *testing.T) {
	edges := batchTestStream(50_000, 13)
	seq := buildBatchTestSketch(t, 13)
	shardedTarget := buildBatchTestSketch(t, 13)
	c := NewConcurrent(shardedTarget)
	if c.NumShards() < 2 {
		t.Fatalf("sharded path not selected (%d shards)", c.NumShards())
	}

	for _, e := range edges {
		seq.Update(e)
	}
	for lo := 0; lo < len(edges); lo += 500 {
		hi := lo + 500
		if hi > len(edges) {
			hi = len(edges)
		}
		if lo%1000 == 0 {
			c.UpdateBatch(edges[lo:hi])
		} else {
			for _, e := range edges[lo:hi] {
				c.Update(e)
			}
		}
	}
	if !bytes.Equal(serializeGSketch(t, seq), serializeGSketch(t, shardedTarget)) {
		t.Fatal("sharded Concurrent state differs from sequential Update")
	}
}

// TestPopulateMatchesUpdate guards the chunked Populate path.
func TestPopulateMatchesUpdate(t *testing.T) {
	edges := batchTestStream(populateChunk*2+123, 17)
	seq := buildBatchTestSketch(t, 17)
	pop := buildBatchTestSketch(t, 17)
	for _, e := range edges {
		seq.Update(e)
	}
	Populate(pop, edges)
	if !bytes.Equal(serializeGSketch(t, seq), serializeGSketch(t, pop)) {
		t.Fatal("Populate state differs from sequential Update")
	}
}

// TestRouterBytesIsCapacityBased pins the satellite fix: RouterBytes must
// report the flat table's allocated capacity, not a per-entry guess.
func TestRouterBytesIsCapacityBased(t *testing.T) {
	g := buildBatchTestSketch(t, 19)
	if got, want := g.RouterBytes(), g.router.Cap()*routerSlotBytes; got != want {
		t.Fatalf("RouterBytes = %d, want capacity-based %d", got, want)
	}
	if g.RouterBytes() < g.router.Len()*routerSlotBytes {
		t.Fatal("RouterBytes below live-entry footprint")
	}
}

// TestSerializeRoundTripBatchPopulated re-checks persistence through the
// new router representation.
func TestSerializeRoundTripBatchPopulated(t *testing.T) {
	edges := batchTestStream(20_000, 23)
	g := buildBatchTestSketch(t, 23)
	Populate(g, edges)
	raw := serializeGSketch(t, g)
	got, err := ReadGSketch(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != g.Count() {
		t.Fatalf("round-trip Count %d, want %d", got.Count(), g.Count())
	}
	for _, e := range edges[:2000] {
		if a, b := g.EstimateEdge(e.Src, e.Dst), got.EstimateEdge(e.Src, e.Dst); a != b {
			t.Fatalf("round-trip estimate (%d,%d): %d vs %d", e.Src, e.Dst, a, b)
		}
	}
	for src := uint64(0); src < 3000; src++ {
		pa, oka := g.PartitionOf(src)
		pb, okb := got.PartitionOf(src)
		if pa != pb || oka != okb {
			t.Fatalf("round-trip route of %d: (%d,%v) vs (%d,%v)", src, pa, oka, pb, okb)
		}
	}
}

// TestUpdateBatchWithExactFactory runs the batch paths over the Exact
// synopsis, giving a zero-error cross-check of routing and totals.
func TestUpdateBatchWithExactFactory(t *testing.T) {
	edges := batchTestStream(30_000, 29)
	sample := batchTestStream(4000, 129)
	cfg := Config{
		TotalWidth: 4096,
		Seed:       29,
		Factory: func(w, d int, seed uint64) (sketch.Synopsis, error) {
			return sketch.NewExact(), nil
		},
	}
	g, err := BuildGSketch(cfg, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	Populate(g, edges)

	truth := stream.NewExactCounter()
	truth.ObserveAll(edges)
	if g.Count() != truth.Total() {
		t.Fatalf("Count %d, want %d", g.Count(), truth.Total())
	}
	for _, e := range edges[:3000] {
		if got, want := g.EstimateEdge(e.Src, e.Dst), truth.EdgeFrequency(e.Src, e.Dst); got != want {
			t.Fatalf("exact-factory estimate (%d,%d) = %d, want %d", e.Src, e.Dst, got, want)
		}
	}
}
