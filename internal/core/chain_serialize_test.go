package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

// A pre-chain (PR 3-era) snapshot is exactly what GSketch.WriteTo still
// produces: a version-2 stream. ReadChain must load it as a one-generation
// chain answering byte-identically, and the on-disk version number must not
// have moved — that is the backward-compat contract.
func TestReadChainLoadsPreChainSnapshot(t *testing.T) {
	edges := testStream(8000, 17)
	g, err := BuildGSketch(Config{TotalBytes: 64 << 10, Seed: 7}, edges[:1000], nil)
	if err != nil {
		t.Fatal(err)
	}
	Populate(g, edges)

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != gskVersion {
		t.Fatalf("single-sketch snapshot version = %d, want %d (pre-chain byte streams must stay loadable)", v, gskVersion)
	}

	gens, err := ReadChain(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadChain on pre-chain stream: %v", err)
	}
	if len(gens) != 1 {
		t.Fatalf("generations = %d, want 1", len(gens))
	}
	if gens[0].Count() != g.Count() {
		t.Fatalf("count = %d, want %d", gens[0].Count(), g.Count())
	}
	for _, e := range edges[:200] {
		if got, want := gens[0].EstimateEdge(e.Src, e.Dst), g.EstimateEdge(e.Src, e.Dst); got != want {
			t.Fatalf("edge (%d,%d): restored %d != live %d", e.Src, e.Dst, got, want)
		}
	}
}

func TestWriteChainReadChainRoundTrip(t *testing.T) {
	edges := testStream(10000, 19)
	var gens []*GSketch
	var writers []io.WriterTo
	for i := 0; i < 3; i++ {
		g, err := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: uint64(i + 1)}, edges[i*1000:(i+1)*1000], nil)
		if err != nil {
			t.Fatal(err)
		}
		Populate(g, edges[i*3000:(i+1)*3000])
		gens = append(gens, g)
		writers = append(writers, g)
	}
	var buf bytes.Buffer
	if _, err := WriteChain(&buf, writers); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChain(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(gens) {
		t.Fatalf("generations = %d, want %d", len(got), len(gens))
	}
	for i := range gens {
		if got[i].Count() != gens[i].Count() {
			t.Fatalf("generation %d: count %d, want %d", i, got[i].Count(), gens[i].Count())
		}
		for _, e := range edges[:100] {
			if a, b := got[i].EstimateEdge(e.Src, e.Dst), gens[i].EstimateEdge(e.Src, e.Dst); a != b {
				t.Fatalf("generation %d edge (%d,%d): %d != %d", i, e.Src, e.Dst, a, b)
			}
		}
	}
}

func TestReadChainRejectsCorruptContainers(t *testing.T) {
	g, err := BuildGSketch(Config{TotalBytes: 16 << 10, Seed: 3}, testStream(500, 23), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteChain(&buf, []io.WriterTo{g}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Truncated mid-generation.
	if _, err := ReadChain(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated chain loaded")
	}
	// Implausible generation count.
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(bad[8:16], 1<<20)
	if _, err := ReadChain(bytes.NewReader(bad)); err == nil {
		t.Fatal("implausible generation count loaded")
	}
	// Unknown version.
	bad = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[4:8], 99)
	if _, err := ReadChain(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown version loaded")
	}
	// Bad magic.
	bad = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[0:4], 0xdeadbeef)
	if _, err := ReadChain(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic loaded")
	}
	// ReadGSketch stays strict: it must refuse the chain container.
	if _, err := ReadGSketch(bytes.NewReader(raw)); err == nil {
		t.Fatal("ReadGSketch accepted a chain container")
	}
	if _, err := WriteChain(io.Discard, nil); err == nil {
		t.Fatal("WriteChain accepted an empty chain")
	}
	// Corruption errors carry the sketch.ErrCorrupt sentinel for errors.Is.
	if _, err := ReadChain(bytes.NewReader(raw[:4])); !errors.Is(err, sketch.ErrCorrupt) {
		t.Fatalf("truncated header error %v does not wrap ErrCorrupt", err)
	}
}

// The version-4 container round-trips the per-generation lifecycle
// records — build times and compaction lineage — alongside the counters.
func TestWriteChainMetaRoundTrip(t *testing.T) {
	edges := testStream(9000, 29)
	var gens []*GSketch
	var writers []io.WriterTo
	metas := []GenerationMeta{
		{BuiltAt: 1_700_000_000, CompactedFrom: 3},
		{BuiltAt: 1_700_000_600, CompactedFrom: 1},
	}
	for i := 0; i < 2; i++ {
		g, err := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: uint64(i + 1)}, edges[i*1000:(i+1)*1000], nil)
		if err != nil {
			t.Fatal(err)
		}
		Populate(g, edges[i*4000:(i+1)*4000])
		gens = append(gens, g)
		writers = append(writers, g)
	}
	var buf bytes.Buffer
	if _, err := WriteChainMeta(&buf, writers, metas); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[4:8]); v != gskChainMetaVersion {
		t.Fatalf("container version = %d, want %d", v, gskChainMetaVersion)
	}

	got, gotMetas, err := ReadChainMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(gotMetas) != 2 {
		t.Fatalf("restored %d generations / %d metas, want 2 / 2", len(got), len(gotMetas))
	}
	for i := range gens {
		if gotMetas[i] != metas[i] {
			t.Fatalf("generation %d: meta %+v, want %+v", i, gotMetas[i], metas[i])
		}
		if got[i].Count() != gens[i].Count() {
			t.Fatalf("generation %d: count %d, want %d", i, got[i].Count(), gens[i].Count())
		}
		for _, e := range edges[:200] {
			if a, b := got[i].EstimateEdge(e.Src, e.Dst), gens[i].EstimateEdge(e.Src, e.Dst); a != b {
				t.Fatalf("generation %d edge (%d,%d): %d != %d", i, e.Src, e.Dst, a, b)
			}
		}
	}

	// Mismatched meta count is a caller bug, not a silent truncation.
	if _, err := WriteChainMeta(io.Discard, writers, metas[:1]); err == nil {
		t.Fatal("WriteChainMeta accepted a meta/generation count mismatch")
	}

	// A truncated lifecycle record must not load.
	raw := buf.Bytes()
	if _, _, err := ReadChainMeta(bytes.NewReader(raw[:20])); err == nil {
		t.Fatal("truncated v4 record loaded")
	}
}

// A version-3 chain stream (the pre-lifecycle writer) must keep loading
// through ReadChainMeta: zero-value lifecycle records, identical counters.
// That is the back-compat contract for snapshots taken before this PR.
func TestReadChainMetaLoadsVersion3Stream(t *testing.T) {
	edges := testStream(8000, 37)
	var gens []*GSketch
	var writers []io.WriterTo
	for i := 0; i < 3; i++ {
		g, err := BuildGSketch(Config{TotalBytes: 16 << 10, Seed: uint64(i + 5)}, edges[i*800:(i+1)*800], nil)
		if err != nil {
			t.Fatal(err)
		}
		Populate(g, edges[i*2500:(i+1)*2500])
		gens = append(gens, g)
		writers = append(writers, g)
	}
	var buf bytes.Buffer
	if _, err := WriteChain(&buf, writers); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[4:8]); v != gskChainVersion {
		t.Fatalf("legacy writer produced version %d, want pinned %d", v, gskChainVersion)
	}

	got, metas, err := ReadChainMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadChainMeta on v3 stream: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("restored %d generations, want 3", len(got))
	}
	for i := range gens {
		// Legacy streams carry no lifecycle data: unknown build time, and
		// each generation normalized to a single source build.
		if metas[i] != (GenerationMeta{CompactedFrom: 1}) {
			t.Fatalf("generation %d: v3 meta %+v, want {BuiltAt:0 CompactedFrom:1}", i, metas[i])
		}
		if got[i].Count() != gens[i].Count() {
			t.Fatalf("generation %d: count %d, want %d", i, got[i].Count(), gens[i].Count())
		}
		for _, e := range edges[:200] {
			if a, b := got[i].EstimateEdge(e.Src, e.Dst), gens[i].EstimateEdge(e.Src, e.Dst); a != b {
				t.Fatalf("generation %d edge (%d,%d): %d != %d", i, e.Src, e.Dst, a, b)
			}
		}
	}
}

func TestRouteStats(t *testing.T) {
	// Sample covers sources 0..9; everything else is outlier traffic.
	var sample []stream.Edge
	for i := uint64(0); i < 10; i++ {
		for j := 0; j < 10; j++ {
			sample = append(sample, stream.Edge{Src: i, Dst: uint64(j), Weight: 1})
		}
	}
	g, err := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: 5}, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(g)

	// Writes: 100 routed edges batched, 1 outlier edge single-path.
	c.UpdateBatch(sample)
	c.Update(stream.Edge{Src: 999, Dst: 1, Weight: 1})
	w := c.WriteRouteCounts()
	if w.Total != int64(len(sample))+1 {
		t.Fatalf("write total = %d, want %d", w.Total, len(sample)+1)
	}
	if w.Outlier != 1 {
		t.Fatalf("write outlier = %d, want 1", w.Outlier)
	}
	var partSum int64
	for _, n := range w.Partitions {
		partSum += n
	}
	if partSum != int64(len(sample)) {
		t.Fatalf("write partition hits = %d, want %d", partSum, len(sample))
	}

	// Reads: batched queries, half known half unknown, plus one single.
	var qs []EdgeQuery
	for i := 0; i < 40; i++ {
		src := uint64(i % 10)
		if i%2 == 1 {
			src = uint64(500 + i)
		}
		qs = append(qs, EdgeQuery{Src: src, Dst: 0})
	}
	c.EstimateBatch(qs)
	c.EstimateEdge(777, 0)
	r := c.ReadRouteCounts()
	if r.Total != 41 {
		t.Fatalf("read total = %d, want 41", r.Total)
	}
	if r.Outlier != 21 {
		t.Fatalf("read outlier = %d, want 21", r.Outlier)
	}
	if share := r.OutlierShare(); share < 0.5 || share > 0.52 {
		t.Fatalf("read outlier share = %v, want ~21/41", share)
	}
	if (RouteCounts{}).OutlierShare() != 0 {
		t.Fatal("zero RouteCounts share must be 0")
	}
}
