package core

import (
	"sync"

	"github.com/graphstream/gsketch/internal/stream"
)

// Concurrent wraps an Estimator with a read-write mutex so one writer
// (the stream ingester) and many readers (query threads) can share it. The
// router inside GSketch is immutable after construction, so a single lock
// around counter mutation is sufficient; per-partition locks would only
// help under multiple concurrent writers, which the single-pass stream
// model of the paper does not have.
type Concurrent struct {
	mu  sync.RWMutex
	est Estimator
}

// NewConcurrent wraps est. The wrapper owns synchronization; callers must
// not use est directly afterwards.
func NewConcurrent(est Estimator) *Concurrent {
	return &Concurrent{est: est}
}

// Update folds one edge arrival in under the write lock.
func (c *Concurrent) Update(e stream.Edge) {
	c.mu.Lock()
	c.est.Update(e)
	c.mu.Unlock()
}

// UpdateBatch folds a batch in under one lock acquisition, amortizing the
// lock cost for high-rate streams.
func (c *Concurrent) UpdateBatch(edges []stream.Edge) {
	c.mu.Lock()
	for _, e := range edges {
		c.est.Update(e)
	}
	c.mu.Unlock()
}

// EstimateEdge answers an edge query under the read lock.
func (c *Concurrent) EstimateEdge(src, dst uint64) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.est.EstimateEdge(src, dst)
}

// Count returns the stream volume under the read lock.
func (c *Concurrent) Count() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.est.Count()
}

// MemoryBytes reports the wrapped estimator's footprint.
func (c *Concurrent) MemoryBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.est.MemoryBytes()
}

// Unwrap returns the wrapped estimator. Callers must hold no concurrent
// operations while using it directly.
func (c *Concurrent) Unwrap() Estimator { return c.est }

var _ Estimator = (*Concurrent)(nil)
