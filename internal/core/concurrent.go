package core

import (
	"fmt"
	"io"
	"sync"

	"github.com/graphstream/gsketch/internal/stream"
)

// Concurrent wraps an Estimator for shared use by multiple writers and
// readers.
//
// When the wrapped estimator is a *GSketch, synchronization is sharded:
// the vertex→partition router is immutable after construction, so each
// partition (plus the outlier sketch) is an independent update domain. The
// domains are guarded by up to maxLockStripes RWMutexes, with partition p
// mapped to stripe p mod stripes — a partitioning can produce thousands of
// tiny leaves, and striping keeps the per-batch lock traffic bounded (one
// acquisition per touched stripe) while writers on different stripes still
// proceed in parallel. A batch is routed and grouped lock-free; each
// stripe's lock is held only while its partitions absorb their groups. The
// stream-volume total is atomic inside GSketch.
//
// Any other estimator falls back to a single RWMutex around the whole
// structure, the seed behaviour.
type Concurrent struct {
	est Estimator

	// Sharded fast path (nil g means generic path).
	g       *GSketch
	stripes []sync.RWMutex
	pool    sync.Pool // *scatter, one per in-flight write batch
	qpool   sync.Pool // *gather, one per in-flight query batch

	// Generic fallback path.
	mu sync.RWMutex
}

// maxLockStripes bounds the lock array of the sharded path. Far above any
// realistic worker count, far below pathological partition counts.
const maxLockStripes = 64

// NewConcurrent wraps est. The wrapper owns synchronization; callers must
// not use est directly afterwards.
func NewConcurrent(est Estimator) *Concurrent {
	c := &Concurrent{est: est}
	if g, ok := est.(*GSketch); ok {
		c.g = g
		n := g.NumShards()
		if n > maxLockStripes {
			n = maxLockStripes
		}
		c.stripes = make([]sync.RWMutex, n)
		c.pool.New = func() any { return newScatter(g.NumShards()) }
		c.qpool.New = func() any { return newGather(g.NumShards()) }
	}
	return c
}

// stripeOf maps a shard to its lock stripe.
func (c *Concurrent) stripeOf(shard int) int { return shard % len(c.stripes) }

// Update folds one edge arrival, locking only the destination shard on the
// sharded path.
func (c *Concurrent) Update(e stream.Edge) {
	if c.g == nil {
		c.mu.Lock()
		c.est.Update(e)
		c.mu.Unlock()
		return
	}
	w := e.Weight
	if w == 0 {
		w = 1
	}
	shard := c.g.Route(e.Src)
	addShardHits(c.g.writeHits, shard, 1)
	key := stream.EdgeKey(e.Src, e.Dst)
	st := c.stripeOf(shard)
	c.stripes[st].Lock()
	c.g.shardSynopsis(shard).Update(key, w)
	c.stripes[st].Unlock()
	c.g.addTotal(w)
}

// UpdateBatch folds a batch of edge arrivals. On the sharded path the batch
// is routed and grouped by destination shard without any lock (the router
// is immutable), then each shard's group is applied under that shard's
// lock — so concurrent batches serialize only where they actually collide.
func (c *Concurrent) UpdateBatch(edges []stream.Edge) {
	if len(edges) == 0 {
		return
	}
	if c.g == nil {
		c.mu.Lock()
		c.est.UpdateBatch(edges)
		c.mu.Unlock()
		return
	}
	sc := c.pool.Get().(*scatter)
	total := sc.route(c.g, edges)
	// Walk stripe by stripe so each lock is acquired at most once per
	// batch, covering every touched partition it guards.
	for st := range c.stripes {
		locked := false
		for shard := st; shard < len(sc.keys); shard += len(c.stripes) {
			if len(sc.keys[shard]) == 0 {
				continue
			}
			if !locked {
				c.stripes[st].Lock()
				locked = true
			}
			c.g.shardSynopsis(shard).UpdateBatch(sc.keys[shard], sc.counts[shard])
		}
		if locked {
			c.stripes[st].Unlock()
		}
	}
	c.pool.Put(sc)
	c.g.addTotal(total)
}

// EstimateEdge answers an edge query, read-locking only the shard the
// source vertex routes to.
func (c *Concurrent) EstimateEdge(src, dst uint64) int64 {
	if c.g == nil {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.est.EstimateEdge(src, dst)
	}
	shard := c.g.Route(src)
	addShardHits(c.g.readHits, shard, 1)
	key := stream.EdgeKey(src, dst)
	st := c.stripeOf(shard)
	c.stripes[st].RLock()
	v := c.g.shardSynopsis(shard).Estimate(key)
	c.stripes[st].RUnlock()
	return v
}

// Count returns the stream volume folded in so far.
func (c *Concurrent) Count() int64 {
	if c.g == nil {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.est.Count()
	}
	return c.g.Count()
}

// MemoryBytes reports the wrapped estimator's footprint.
func (c *Concurrent) MemoryBytes() int {
	if c.g == nil {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.est.MemoryBytes()
	}
	// Shard synopses may size dynamically (e.g. LossyCounting), so read
	// each one under its stripe lock.
	total := 0
	for shard := 0; shard < c.g.NumShards(); shard++ {
		st := c.stripeOf(shard)
		c.stripes[st].RLock()
		total += c.g.shardSynopsis(shard).MemoryBytes()
		c.stripes[st].RUnlock()
	}
	return total
}

// NumShards reports the number of independent writer domains (1 on the
// generic single-lock path).
func (c *Concurrent) NumShards() int {
	if c.g == nil {
		return 1
	}
	return c.g.NumShards()
}

// WriteTo serializes the wrapped estimator while holding a consistent read
// lock: on the sharded path every stripe's read lock is acquired for the
// whole serialization, so no partition counter can move mid-snapshot and a
// restored sketch answers byte-identically to the live one at snapshot
// time. Readers proceed concurrently; writers block for the duration.
//
// The stream total is folded in by writers after their counters land
// (outside the stripe locks), so a snapshot racing active writers can carry
// a total that lags the counters by the in-flight batches. Quiesce writers
// first (e.g. Ingestor.Flush) when the exact counters↔total correspondence
// matters; either way the snapshot itself is internally valid.
//
// Only gSketch-backed wrappers serialize, matching GSketch.WriteTo.
func (c *Concurrent) WriteTo(w io.Writer) (int64, error) {
	if c.g == nil {
		wt, ok := c.est.(io.WriterTo)
		if !ok {
			return 0, fmt.Errorf("core: wrapped %T does not serialize", c.est)
		}
		c.mu.RLock()
		defer c.mu.RUnlock()
		return wt.WriteTo(w)
	}
	for i := range c.stripes {
		c.stripes[i].RLock()
	}
	defer func() {
		for i := range c.stripes {
			c.stripes[i].RUnlock()
		}
	}()
	return c.g.WriteTo(w)
}

// Unwrap returns the wrapped estimator. Callers must hold no concurrent
// operations while using it directly.
func (c *Concurrent) Unwrap() Estimator { return c.est }

var _ Estimator = (*Concurrent)(nil)
