package core

import (
	"bytes"
	"sync"
	"testing"

	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

// TestConcurrentManyWritersExactCrossCheck drives many writer goroutines
// (mixing per-edge and batched pushes) plus concurrent readers through the
// sharded Concurrent, with Exact-synopsis partitions so final estimates
// must equal ground truth exactly. Run under -race this is the primary
// data-race test for the sharded ingest path.
func TestConcurrentManyWritersExactCrossCheck(t *testing.T) {
	const (
		writers       = 8
		edgesPerWrite = 20_000
	)
	sample := batchTestStream(4000, 41)
	cfg := Config{
		TotalWidth: 4096,
		Seed:       41,
		Factory: func(w, d int, seed uint64) (sketch.Synopsis, error) {
			return sketch.NewExact(), nil
		},
	}
	g, err := BuildGSketch(cfg, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(g)
	if c.NumShards() < 2 {
		t.Fatalf("sharded path not selected (%d shards)", c.NumShards())
	}

	streams := make([][]stream.Edge, writers)
	truth := stream.NewExactCounter()
	for w := range streams {
		streams[w] = batchTestStream(edgesPerWrite, uint64(1000+w))
		truth.ObserveAll(streams[w])
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	// Concurrent readers: results are unasserted mid-stream (counters are
	// in flux) but must be race-free.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			probe := batchTestStream(1000, seed)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := probe[i%len(probe)]
				_ = c.EstimateEdge(e.Src, e.Dst)
				_ = c.Count()
			}
		}(uint64(77 + r))
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(edges []stream.Edge, batched bool) {
			defer writerWG.Done()
			if batched {
				for lo := 0; lo < len(edges); lo += 512 {
					hi := lo + 512
					if hi > len(edges) {
						hi = len(edges)
					}
					c.UpdateBatch(edges[lo:hi])
				}
			} else {
				for _, e := range edges {
					c.Update(e)
				}
			}
		}(streams[w], w%2 == 0)
	}
	writerWG.Wait()
	close(stop)
	readers.Wait()
	if got, want := c.Count(), truth.Total(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}

	// Exact partitions ⇒ estimates equal ground truth.
	checked := 0
	truth.RangeEdges(func(src, dst uint64, f int64) bool {
		if got := c.EstimateEdge(src, dst); got != f {
			t.Errorf("estimate (%d,%d) = %d, want %d", src, dst, got, f)
			return false
		}
		checked++
		return checked < 20_000
	})
	if checked == 0 {
		t.Fatal("no edges cross-checked")
	}
}

// TestConcurrentGenericFallback checks the single-lock path still guards
// non-GSketch estimators.
func TestConcurrentGenericFallback(t *testing.T) {
	g, err := BuildGlobalSketch(Config{TotalWidth: 4096, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(g)
	if c.NumShards() != 1 {
		t.Fatalf("generic path NumShards = %d, want 1", c.NumShards())
	}
	edges := batchTestStream(10_000, 43)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(part []stream.Edge) {
			defer wg.Done()
			c.UpdateBatch(part)
			for _, e := range part[:100] {
				c.Update(e)
				_ = c.EstimateEdge(e.Src, e.Dst)
			}
		}(edges[w*2500 : (w+1)*2500])
	}
	wg.Wait()
	var want int64
	vol := func(e stream.Edge) int64 {
		if e.Weight == 0 {
			return 1
		}
		return e.Weight
	}
	for _, e := range edges {
		want += vol(e)
	}
	for w := 0; w < 4; w++ {
		for _, e := range edges[w*2500 : w*2500+100] {
			want += vol(e)
		}
	}
	if c.Count() != want {
		t.Fatalf("Count = %d, want %d", c.Count(), want)
	}
	if c.MemoryBytes() != g.MemoryBytes() {
		t.Fatal("MemoryBytes mismatch through wrapper")
	}
}

// TestConcurrentParallelPlainCountMinDeterministic: plain CountMin updates
// commute (saturating adds of non-negative counts), so even a racy-order
// parallel ingest must land on the same final counters as sequential.
func TestConcurrentParallelPlainCountMinDeterministic(t *testing.T) {
	edges := batchTestStream(60_000, 47)
	seq := buildBatchTestSketch(t, 47)
	for _, e := range edges {
		seq.Update(e)
	}

	par := buildBatchTestSketch(t, 47)
	c := NewConcurrent(par)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(part []stream.Edge) {
			defer wg.Done()
			for lo := 0; lo < len(part); lo += 777 {
				hi := lo + 777
				if hi > len(part) {
					hi = len(part)
				}
				c.UpdateBatch(part[lo:hi])
			}
		}(edges[w*10_000 : (w+1)*10_000])
	}
	wg.Wait()

	if seq.Count() != par.Count() {
		t.Fatalf("Count %d vs %d", seq.Count(), par.Count())
	}
	for _, e := range edges[:5000] {
		if s, p := seq.EstimateEdge(e.Src, e.Dst), par.EstimateEdge(e.Src, e.Dst); s != p {
			t.Fatalf("parallel estimate (%d,%d): %d vs %d", e.Src, e.Dst, s, p)
		}
	}
}

// TestConcurrentWriteToSnapshot checks that the locked Concurrent snapshot
// is byte-identical to the wrapped GSketch's own serialization once
// writers quiesce, and that the restored sketch answers byte-identically.
func TestConcurrentWriteToSnapshot(t *testing.T) {
	edges := batchTestStream(30_000, 71)
	g, err := BuildGSketch(Config{TotalBytes: 64 << 10, Seed: 71}, edges[:4000], nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(g)
	c.UpdateBatch(edges)

	var direct, locked bytes.Buffer
	if _, err := g.WriteTo(&direct); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(&locked); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), locked.Bytes()) {
		t.Fatal("Concurrent.WriteTo differs from GSketch.WriteTo on quiesced state")
	}

	restored, err := ReadGSketch(&locked)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]EdgeQuery, 0, 500)
	for i := 0; i < 500; i++ {
		qs = append(qs, EdgeQuery{Src: edges[i].Src, Dst: edges[i].Dst})
	}
	want := c.EstimateBatch(qs)
	got := NewConcurrent(restored).EstimateBatch(qs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: restored %+v != live %+v", i, got[i], want[i])
		}
	}
}

// TestConcurrentWriteToUnderWriters snapshots while writer goroutines keep
// pushing batches; every snapshot must deserialize into a valid sketch.
// Run with -race this exercises the stripe-lock acquisition ordering.
func TestConcurrentWriteToUnderWriters(t *testing.T) {
	g, err := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: 72}, batchTestStream(2000, 72), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(g)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			batch := batchTestStream(512, seed)
			for {
				select {
				case <-stop:
					return
				default:
					c.UpdateBatch(batch)
				}
			}
		}(uint64(100 + w))
	}
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadGSketch(&buf); err != nil {
			t.Fatalf("snapshot %d does not load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentWriteToGenericRejects checks the generic path rejects
// estimators without a serial form instead of writing garbage.
func TestConcurrentWriteToGenericRejects(t *testing.T) {
	gs, err := BuildGlobalSketch(Config{TotalWidth: 512, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(gs)
	if _, err := c.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("GlobalSketch-backed Concurrent serialized unexpectedly")
	}
}
