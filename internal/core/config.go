// Package core implements the paper's primary contribution: gSketch, a
// partitioned CountMin estimator for graph streams. A partitioning tree
// splits the width of a virtual global sketch into localized sketches by
// source vertex, minimizing the expected relative-error objective of Eq. 9
// (data sample only) or Eq. 11 (data + workload samples); a router maps
// vertices to their localized sketch; vertices unseen in the sample fall
// through to an outlier sketch. The GlobalSketch baseline of §3.2 is also
// provided for comparison.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/graphstream/gsketch/internal/sketch"
)

// Defaults used when Config fields are zero.
const (
	// DefaultDepth is the number of sketch rows d. d = 5 gives the
	// per-query guarantee probability 1 - e^-5 ≈ 0.993 (δ ≈ 0.007).
	DefaultDepth = 5
	// DefaultOutlierFraction is the share of total width reserved for the
	// outlier sketch (§5: "a fixed portion of the original space").
	DefaultOutlierFraction = 0.10
	// DefaultMinWidth is w0, the minimum width below which a node is
	// materialized rather than split (§4.1, termination criterion 1).
	DefaultMinWidth = 64
	// DefaultCollisionC is C in (0,1): a node with Σd̃(m) ≤ C·width is
	// materialized because its per-cell collision probability is bounded
	// by C (Theorem 1; termination criterion 2).
	DefaultCollisionC = 0.5
)

// ErrConfig reports an unusable estimator configuration.
var ErrConfig = errors.New("core: invalid configuration")

// ErrEmptySample reports that gSketch construction was attempted without
// any usable data sample.
var ErrEmptySample = errors.New("core: data sample is empty")

// Redistribution selects what happens to the width saved when Theorem-1
// trimming shrinks a leaf sketch ("It helps save extra space which can be
// allocated to other sketches", §4.1). The paper does not prescribe a
// policy; ProportionalLoad is the default and the alternatives exist for
// the ablation benches.
type Redistribution int

const (
	// RedistributeProportional gives saved width to untrimmed leaves in
	// proportion to their estimated load F̃(S_i).
	RedistributeProportional Redistribution = iota
	// RedistributeEven splits saved width equally among untrimmed leaves.
	RedistributeEven
	// RedistributeNone leaves the saved width unused (pure paper-text
	// baseline for ablation).
	RedistributeNone
)

// String implements fmt.Stringer.
func (r Redistribution) String() string {
	switch r {
	case RedistributeProportional:
		return "proportional"
	case RedistributeEven:
		return "even"
	case RedistributeNone:
		return "none"
	default:
		return fmt.Sprintf("Redistribution(%d)", int(r))
	}
}

// SynopsisFactory constructs the base synopsis for one partition. It
// exists so gSketch can run over CountMin (default), conservative-update
// CountMin, or CountSketch — the paper notes any sketch method can serve
// as the base (§3.2).
type SynopsisFactory func(width, depth int, seed uint64) (sketch.Synopsis, error)

// Config parameterizes construction of both GSketch and GlobalSketch.
type Config struct {
	// TotalBytes is the memory budget for counter cells. Exactly one of
	// TotalBytes and TotalWidth must be positive.
	TotalBytes int
	// TotalWidth is the explicit total column budget (cells per row).
	TotalWidth int
	// Depth is the number of rows d shared by every sketch (default
	// DefaultDepth). The per-partition guarantee 1-e^-d is uniform because
	// partitioning divides width only (§4.1).
	Depth int
	// OutlierFraction is the share of width reserved for the outlier
	// sketch (default DefaultOutlierFraction). Set negative to disable the
	// outlier partition entirely (unseen vertices then share partition 0,
	// only sensible for closed vertex universes).
	OutlierFraction float64
	// MinWidth is the w0 termination threshold (default DefaultMinWidth).
	MinWidth int
	// CollisionC is the Theorem-1 constant C in (0,1) (default
	// DefaultCollisionC).
	CollisionC float64
	// MaxPartitions caps the number of localized sketches; 0 means
	// unbounded (the tree then stops only via w0 / Theorem 1).
	MaxPartitions int
	// Conservative enables conservative update on CountMin partitions.
	Conservative bool
	// Redistribute selects the trimmed-width reallocation policy.
	Redistribute Redistribution
	// Factory overrides the base synopsis (default: CountMin honoring
	// Conservative).
	Factory SynopsisFactory
	// Seed fixes all hash families and makes construction deterministic.
	Seed uint64
}

// withDefaults returns a copy with defaults applied.
func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.OutlierFraction == 0 {
		c.OutlierFraction = DefaultOutlierFraction
	}
	if c.MinWidth == 0 {
		c.MinWidth = DefaultMinWidth
	}
	if c.CollisionC == 0 {
		c.CollisionC = DefaultCollisionC
	}
	if c.Factory == nil {
		conservative := c.Conservative
		c.Factory = func(width, depth int, seed uint64) (sketch.Synopsis, error) {
			cm, err := sketch.NewCountMin(width, depth, seed)
			if err != nil {
				return nil, err
			}
			cm.SetConservative(conservative)
			return cm, nil
		}
	}
	return c
}

// totalWidth resolves the column budget from the configuration.
func (c Config) totalWidth() (int, error) {
	switch {
	case c.TotalWidth > 0 && c.TotalBytes > 0:
		return 0, fmt.Errorf("%w: set TotalBytes or TotalWidth, not both", ErrConfig)
	case c.TotalWidth > 0:
		return c.TotalWidth, nil
	case c.TotalBytes > 0:
		return sketch.WidthFromMemory(c.TotalBytes, c.Depth)
	default:
		return 0, fmt.Errorf("%w: no memory budget (TotalBytes or TotalWidth)", ErrConfig)
	}
}

// Validate checks the configuration after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Depth < 1 {
		return fmt.Errorf("%w: depth %d", ErrConfig, c.Depth)
	}
	if _, err := c.totalWidth(); err != nil {
		return err
	}
	if c.OutlierFraction >= 1 {
		return fmt.Errorf("%w: outlier fraction %v must be < 1", ErrConfig, c.OutlierFraction)
	}
	if c.MinWidth < 2 {
		return fmt.Errorf("%w: min width %d must be ≥ 2", ErrConfig, c.MinWidth)
	}
	if !(c.CollisionC > 0 && c.CollisionC < 1) {
		return fmt.Errorf("%w: collision constant %v must be in (0,1)", ErrConfig, c.CollisionC)
	}
	if c.MaxPartitions < 0 {
		return fmt.Errorf("%w: negative partition cap", ErrConfig)
	}
	return nil
}

// DimsFromError mirrors the CountMin sizing of §3.2 for callers that think
// in (ε, δ) rather than bytes: w = ⌈e/ε⌉ columns, d = ⌈ln(1/δ)⌉ rows.
func DimsFromError(epsilon, delta float64) (width, depth int, err error) {
	return sketch.DimsFromError(epsilon, delta)
}

// errorBound returns the additive CountMin bound e·N/w.
func errorBound(n int64, width int) float64 {
	if width <= 0 {
		return math.Inf(1)
	}
	return math.E * float64(n) / float64(width)
}
