package core

import (
	"math"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

// EdgeQuery identifies one directed edge whose accumulated frequency is
// requested. It is the unit of the batched read path: a slice of them is
// answered in one routed pass by Estimator.EstimateBatch.
type EdgeQuery struct {
	Src, Dst uint64
}

// NoPartition is the Result.Partition value of answers that did not come
// from a localized partition: outlier-sketch answers and estimators without
// a partitioning (GlobalSketch).
const NoPartition = -1

// Result is one batched query answer: the point estimate plus the
// provenance and accuracy guarantee of the sketch that produced it. It
// surfaces per answer what Theorem 1 / §3.2 of the paper prove per
// localized sketch — an additive (ε, δ) guarantee whose ε·N_i term shrinks
// with the answering partition's local stream volume, not the global one.
type Result struct {
	// Estimate is the point estimate f̃ of the queried edge's frequency.
	Estimate int64
	// Partition is the index of the localized sketch that answered, or
	// NoPartition when the outlier sketch (or an unpartitioned estimator)
	// answered.
	Partition int
	// Outlier reports that the outlier sketch answered (the source vertex
	// was absent from the partitioning sample).
	Outlier bool
	// ErrorBound is the additive CountMin bound e·N_i/w_i of the answering
	// sketch: with probability Confidence, the true frequency lies in
	// [Estimate - ErrorBound, Estimate] (CountMin never underestimates).
	ErrorBound float64
	// Confidence is 1-δ = 1-e^{-d} for the shared sketch depth d.
	Confidence float64
	// StreamTotal is a snapshot of the total stream volume N folded into
	// the estimator when the batch was answered.
	StreamTotal int64
}

// confidence returns the per-query guarantee probability 1-e^{-d} of a
// depth-d sketch.
func confidence(depth int) float64 { return 1 - math.Exp(-float64(depth)) }

// shardMeta is the per-shard slice of Result that is constant across one
// gathered group: provenance and the ε·N_i bound.
type shardMeta struct {
	partition int
	outlier   bool
	bound     float64
}

// gather holds one routed query chunk in group-major flat layout: a
// counting sort over the per-position shard indices places every shard's
// edge keys contiguously in grouped, estimates land in vals at the same
// offsets, and the per-shard Result metadata sits in meta. All buffers are
// reused across chunks so steady-state batch querying allocates only the
// caller-visible []Result. Results are assembled by a sequential sweep over
// shardOf rather than scattered writes through saved positions — streaming
// 48-byte stores beat read-for-ownership misses on a strided scatter.
type gather struct {
	shardOf  []int32  // answering shard per chunk position
	flatKeys []uint64 // edge key per chunk position (input order)
	grouped  []uint64 // edge keys regrouped shard-major
	vals     []int64  // estimates aligned with grouped
	start    []int32  // per-shard group offset into grouped/vals
	count    []int32  // per-shard group length
	cursor   []int32  // per-shard consumption cursor (assemble scratch)
	meta     []shardMeta
}

func newGather(shards int) *gather {
	return &gather{
		start:  make([]int32, shards),
		count:  make([]int32, shards),
		cursor: make([]int32, shards),
		meta:   make([]shardMeta, shards),
	}
}

// route groups a query chunk by answering shard: one routing pass records
// each position's shard and edge key, a prefix sum lays out the groups, and
// a placement pass writes the keys group-major. Only the immutable router
// is read, so route is safe concurrently with shard-local counter writes —
// the same property the write-side scatter builds on.
func (gt *gather) route(g *GSketch, qs []EdgeQuery) {
	n := len(qs)
	if cap(gt.shardOf) < n {
		gt.shardOf = make([]int32, n)
		gt.flatKeys = make([]uint64, n)
		gt.grouped = make([]uint64, n)
		gt.vals = make([]int64, n)
	}
	gt.shardOf = gt.shardOf[:n]
	gt.flatKeys = gt.flatKeys[:n]
	gt.grouped = gt.grouped[:n]
	gt.vals = gt.vals[:n]
	for i := range gt.count {
		gt.count[i] = 0
	}
	for i, q := range qs {
		// One Mix64 of the source serves both the routing probe and the
		// edge-key derivation.
		mixed := hashutil.Mix64(q.Src)
		shard := g.routeMixed(mixed, q.Src)
		gt.shardOf[i] = int32(shard)
		gt.flatKeys[i] = hashutil.EdgeKeyMixed(mixed, q.Dst)
		gt.count[shard]++
	}
	off := int32(0)
	for s, c := range gt.count {
		gt.start[s] = off
		gt.cursor[s] = off
		off += c
	}
	for i, k := range gt.flatKeys {
		sh := gt.shardOf[i]
		gt.grouped[gt.cursor[sh]] = k
		gt.cursor[sh]++
	}
	for shard := range gt.count {
		addShardHits(g.readHits, shard, int64(gt.count[shard]))
	}
}

// gatherShard answers one shard's group in a single pass over its synopsis
// and records the group's shared Result metadata — answering partition and
// ε·N_i bound, read in the same critical section as the counters so the
// pair is one consistent snapshot. The caller owns synchronization; the
// assemble pass that fans results back out runs lock-free afterwards.
func (gt *gather) gatherShard(g *GSketch, shard int) {
	cnt := gt.count[shard]
	if cnt == 0 {
		return
	}
	lo := gt.start[shard]
	syn := g.shardSynopsis(shard)
	syn.EstimateBatch(gt.grouped[lo:lo+cnt], gt.vals[lo:lo+cnt])

	part, outlier, width := shard, false, 0
	if g.outlier != nil && shard == len(g.parts) {
		part, outlier, width = NoPartition, true, g.outlierWidth
	} else {
		width = g.leaves[shard].Width
	}
	gt.meta[shard] = shardMeta{
		partition: part,
		outlier:   outlier,
		bound:     errorBound(syn.Count(), width),
	}
}

// assemble fans the gathered estimates back out to input order with one
// sequential sweep: position i's shard comes from shardOf, its estimate
// from that shard's next unconsumed slot in the flat vals layout. out must
// be the chunk's slice of the caller-visible results.
func (gt *gather) assemble(out []Result, conf float64, streamTotal int64) {
	copy(gt.cursor, gt.start)
	vals := gt.vals
	for i, sh := range gt.shardOf {
		k := gt.cursor[sh]
		gt.cursor[sh] = k + 1
		m := &gt.meta[sh]
		out[i] = Result{
			Estimate:    vals[k],
			Partition:   m.partition,
			Outlier:     m.outlier,
			ErrorBound:  m.bound,
			Confidence:  conf,
			StreamTotal: streamTotal,
		}
	}
}

// estimateChunk bounds the slice of a query batch that is routed and
// gathered at once, so the gather scratch (keys, positions, values) stays
// cache-resident alongside the counters being probed instead of growing
// with the caller's batch and evicting them — the read-side analogue of
// populateChunk.
const estimateChunk = 2048

// EstimateBatch answers a batch of edge queries via route-then-gather: the
// batch is grouped by answering partition (one pass over the flat router),
// then each touched partition's counters are probed once for its whole
// group. Results are returned in input order and carry the answering
// partition, its ε·N_i error bound at confidence 1-e^{-d}, and a snapshot
// of the stream total. Estimates are identical to per-edge EstimateEdge.
func (g *GSketch) EstimateBatch(qs []EdgeQuery) []Result {
	out := make([]Result, len(qs))
	if len(qs) == 0 {
		return out
	}
	gt := g.qscratch
	if gt == nil {
		gt = newGather(g.NumShards())
		g.qscratch = gt
	}
	total := g.total.Load()
	conf := confidence(g.cfg.Depth)
	for lo := 0; lo < len(qs); lo += estimateChunk {
		hi := lo + estimateChunk
		if hi > len(qs) {
			hi = len(qs)
		}
		gt.route(g, qs[lo:hi])
		for shard := range gt.count {
			gt.gatherShard(g, shard)
		}
		gt.assemble(out[lo:hi], conf, total)
	}
	return out
}

// EstimateBatch answers a batch of edge queries against the single global
// sketch: edge keys are materialized once and the base synopsis is probed
// in one pass. Every Result carries the global e·N/w bound of Equation (1)
// and NoPartition provenance. Unlike the write path, the key and value
// buffers are per call, not reused fields: Concurrent's generic fallback
// serves EstimateBatch under a read lock, so the read path must not
// mutate shared state.
func (g *GlobalSketch) EstimateBatch(qs []EdgeQuery) []Result {
	out := make([]Result, len(qs))
	if len(qs) == 0 {
		return out
	}
	keys := make([]uint64, len(qs))
	vals := make([]int64, len(qs))
	for i, q := range qs {
		keys[i] = stream.EdgeKey(q.Src, q.Dst)
	}
	g.syn.EstimateBatch(keys, vals)

	bound := errorBound(g.total, g.width)
	conf := confidence(g.depth)
	for i := range out {
		out[i] = Result{
			Estimate:    vals[i],
			Partition:   NoPartition,
			ErrorBound:  bound,
			Confidence:  conf,
			StreamTotal: g.total,
		}
	}
	return out
}

// EstimateBatch answers a batch of edge queries under the wrapper's
// synchronization. On the sharded path the batch is routed and grouped
// lock-free, then the touched partitions are gathered stripe by stripe with
// one read-lock acquisition per stripe per batch — so a batch observes each
// partition's counters and local volume N_i in one consistent snapshot, and
// readers on disjoint stripes proceed in parallel with writers elsewhere.
func (c *Concurrent) EstimateBatch(qs []EdgeQuery) []Result {
	if c.g == nil {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.est.EstimateBatch(qs)
	}
	out := make([]Result, len(qs))
	if len(qs) == 0 {
		return out
	}
	gt := c.qpool.Get().(*gather)
	total := c.g.Count()
	conf := confidence(c.g.cfg.Depth)
	for lo := 0; lo < len(qs); lo += estimateChunk {
		hi := lo + estimateChunk
		if hi > len(qs) {
			hi = len(qs)
		}
		gt.route(c.g, qs[lo:hi])
		// Walk stripe by stripe, mirroring UpdateBatch: each stripe lock is
		// acquired at most once per chunk and covers every touched
		// partition it guards, so lock traffic is bounded by
		// stripes × ⌈batch/estimateChunk⌉ instead of one acquisition per
		// query. Each group's counters and local volume N_i are read in one
		// critical section; the assemble fan-out below runs lock-free over
		// the gathered private buffers.
		for st := range c.stripes {
			locked := false
			for shard := st; shard < len(gt.count); shard += len(c.stripes) {
				if gt.count[shard] == 0 {
					continue
				}
				if !locked {
					c.stripes[st].RLock()
					locked = true
				}
				gt.gatherShard(c.g, shard)
			}
			if locked {
				c.stripes[st].RUnlock()
			}
		}
		gt.assemble(out[lo:hi], conf, total)
	}
	c.qpool.Put(gt)
	return out
}
