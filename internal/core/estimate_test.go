package core

import (
	"math"
	"sync"
	"testing"

	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

// batchQueries derives a query batch from a stream: the stream's own edges
// (present keys) interleaved with never-seen edges (absent keys).
func batchQueries(edges []stream.Edge, n int) []EdgeQuery {
	qs := make([]EdgeQuery, 0, n)
	for i := 0; len(qs) < n; i++ {
		e := edges[i%len(edges)]
		qs = append(qs, EdgeQuery{Src: e.Src, Dst: e.Dst})
		if len(qs) < n {
			qs = append(qs, EdgeQuery{Src: e.Src + 500_000, Dst: e.Dst + 1})
		}
	}
	return qs
}

// assertBatchMatchesSequential requires EstimateBatch to return exactly the
// per-edge EstimateEdge values, in input order.
func assertBatchMatchesSequential(t *testing.T, name string, est Estimator, qs []EdgeQuery) {
	t.Helper()
	res := est.EstimateBatch(qs)
	if len(res) != len(qs) {
		t.Fatalf("%s: %d results for %d queries", name, len(res), len(qs))
	}
	for i, q := range qs {
		if want := est.EstimateEdge(q.Src, q.Dst); res[i].Estimate != want {
			t.Fatalf("%s: query %d (%d,%d): batch %d, sequential %d",
				name, i, q.Src, q.Dst, res[i].Estimate, want)
		}
	}
}

func TestGSketchEstimateBatchMatchesEstimateEdge(t *testing.T) {
	edges := batchTestStream(50_000, 71)
	g := buildBatchTestSketch(t, 71)
	Populate(g, edges)
	qs := batchQueries(edges, 10_000)
	assertBatchMatchesSequential(t, "gsketch", g, qs)
	// Second batch reuses the gather scratch.
	assertBatchMatchesSequential(t, "gsketch-reuse", g, qs[:100])
}

func TestGlobalSketchEstimateBatchMatchesEstimateEdge(t *testing.T) {
	edges := batchTestStream(50_000, 73)
	g, err := BuildGlobalSketch(Config{TotalWidth: 4096, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	Populate(g, edges)
	assertBatchMatchesSequential(t, "global", g, batchQueries(edges, 10_000))
}

func TestConcurrentEstimateBatchMatchesEstimateEdge(t *testing.T) {
	edges := batchTestStream(50_000, 79)
	c := NewConcurrent(buildBatchTestSketch(t, 79))
	Populate(c, edges)
	assertBatchMatchesSequential(t, "concurrent-sharded", c, batchQueries(edges, 10_000))

	// Generic single-mutex path (non-GSketch estimator).
	gl, err := BuildGlobalSketch(Config{TotalWidth: 4096, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	cg := NewConcurrent(gl)
	Populate(cg, edges)
	assertBatchMatchesSequential(t, "concurrent-generic", cg, batchQueries(edges, 5_000))
}

func TestEstimateBatchWithCountSketchFactory(t *testing.T) {
	edges := batchTestStream(30_000, 83)
	sample := batchTestStream(4000, 183)
	cfg := Config{
		TotalWidth: 4096,
		Seed:       83,
		Factory: func(w, d int, seed uint64) (sketch.Synopsis, error) {
			return sketch.NewCountSketch(w, d, seed)
		},
	}
	g, err := BuildGSketch(cfg, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	Populate(g, edges)
	assertBatchMatchesSequential(t, "countsketch-base", g, batchQueries(edges, 5_000))
}

func TestEstimateBatchEmptyAndSingleton(t *testing.T) {
	g := buildBatchTestSketch(t, 89)
	if res := g.EstimateBatch(nil); len(res) != 0 {
		t.Fatalf("nil batch returned %d results", len(res))
	}
	res := g.EstimateBatch([]EdgeQuery{{Src: 1, Dst: 2}})
	if len(res) != 1 || res[0].Estimate != g.EstimateEdge(1, 2) {
		t.Fatalf("singleton batch: %+v", res)
	}
}

// TestEstimateBatchMetadata pins the provenance and guarantee fields
// against the existing single-query accessors.
func TestEstimateBatchMetadata(t *testing.T) {
	edges := batchTestStream(50_000, 97)
	g := buildBatchTestSketch(t, 97)
	Populate(g, edges)

	qs := batchQueries(edges, 4_000)
	res := g.EstimateBatch(qs)
	wantConf := 1 - math.Exp(-float64(g.Depth()))
	var sawOutlier, sawPartition bool
	for i, q := range qs {
		r := res[i]
		part, routed := g.PartitionOf(q.Src)
		if routed {
			sawPartition = true
			if r.Outlier || r.Partition != part {
				t.Fatalf("routed query %d: Result{Partition: %d, Outlier: %v}, want partition %d",
					i, r.Partition, r.Outlier, part)
			}
		} else {
			sawOutlier = true
			if !r.Outlier || r.Partition != NoPartition {
				t.Fatalf("outlier query %d: Result{Partition: %d, Outlier: %v}", i, r.Partition, r.Outlier)
			}
		}
		if want := g.ErrorBound(q.Src); r.ErrorBound != want {
			t.Fatalf("query %d: ErrorBound %v, want %v", i, r.ErrorBound, want)
		}
		if r.Confidence != wantConf {
			t.Fatalf("query %d: Confidence %v, want %v", i, r.Confidence, wantConf)
		}
		if r.StreamTotal != g.Count() {
			t.Fatalf("query %d: StreamTotal %d, want %d", i, r.StreamTotal, g.Count())
		}
	}
	if !sawOutlier || !sawPartition {
		t.Fatalf("test stream exercised outlier=%v partition=%v; want both", sawOutlier, sawPartition)
	}
}

func TestGlobalSketchEstimateBatchMetadata(t *testing.T) {
	edges := batchTestStream(20_000, 101)
	g, err := BuildGlobalSketch(Config{TotalWidth: 4096, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	Populate(g, edges)
	res := g.EstimateBatch(batchQueries(edges, 100))
	for i, r := range res {
		if r.Partition != NoPartition || r.Outlier {
			t.Fatalf("result %d: global sketch reported partition %d outlier %v", i, r.Partition, r.Outlier)
		}
		if r.ErrorBound != g.ErrorBound() {
			t.Fatalf("result %d: bound %v, want %v", i, r.ErrorBound, g.ErrorBound())
		}
		if r.StreamTotal != g.Count() {
			t.Fatalf("result %d: total %d, want %d", i, r.StreamTotal, g.Count())
		}
	}
}

// TestConcurrentEstimateBatchParallelReaders runs several batch readers at
// once on both Concurrent paths — sharded (*GSketch, stripe read locks)
// and generic (GlobalSketch behind the single RWMutex) — pinning that the
// batched read path mutates no shared state under read locks (the -race
// proof for reader-vs-reader).
func TestConcurrentEstimateBatchParallelReaders(t *testing.T) {
	edges := batchTestStream(30_000, 107)
	qs := batchQueries(edges, 3_000)

	sharded := NewConcurrent(buildBatchTestSketch(t, 107))
	Populate(sharded, edges)
	gl, err := BuildGlobalSketch(Config{TotalWidth: 4096, Seed: 107})
	if err != nil {
		t.Fatal(err)
	}
	generic := NewConcurrent(gl)
	Populate(generic, edges)

	for _, c := range []*Concurrent{sharded, generic} {
		want := c.EstimateBatch(qs)
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					got := c.EstimateBatch(qs)
					for j := range got {
						if got[j].Estimate != want[j].Estimate {
							t.Errorf("reader saw %d for query %d, want %d", got[j].Estimate, j, want[j].Estimate)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestConcurrentEstimateBatchUnderWriters runs batch readers against
// concurrent batch writers (the -race proof), then checks final equivalence
// once the writers drain.
func TestConcurrentEstimateBatchUnderWriters(t *testing.T) {
	edges := batchTestStream(60_000, 103)
	c := NewConcurrent(buildBatchTestSketch(t, 103))
	qs := batchQueries(edges, 2_000)

	const writers = 4
	var wg sync.WaitGroup
	stripe := len(edges) / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(part []stream.Edge) {
			defer wg.Done()
			for lo := 0; lo < len(part); lo += 512 {
				hi := lo + 512
				if hi > len(part) {
					hi = len(part)
				}
				c.UpdateBatch(part[lo:hi])
			}
		}(edges[w*stripe : (w+1)*stripe])
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 50; i++ {
			res := c.EstimateBatch(qs)
			for j, r := range res {
				if r.Estimate < 0 {
					t.Errorf("iteration %d query %d: negative estimate %d", i, j, r.Estimate)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-readerDone

	assertBatchMatchesSequential(t, "concurrent-after-writers", c, qs)
}
