package core

import (
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

// GlobalSketch is the baseline of §3.2: a single CountMin sketch (or any
// Synopsis via Config.Factory) over the entire graph stream, blind to
// structure. Every edge hashes by its edge key l(x)⊕l(y); the relative
// error of a frequency-f edge is proportional to N/(w·f), which is what
// gSketch's partitioning attacks.
type GlobalSketch struct {
	syn   sketch.Synopsis
	depth int
	width int
	total int64

	// batchKeys/batchCounts are the reusable key-materialization buffers of
	// UpdateBatch. Like the sketch itself they are not safe for concurrent
	// mutation. EstimateBatch deliberately has no such buffers — reads must
	// stay pure so Concurrent's generic fallback can serve them under a
	// read lock.
	batchKeys   []uint64
	batchCounts []int64
}

// BuildGlobalSketch constructs the baseline with the same memory budget
// semantics as BuildGSketch (the whole width goes to one sketch; the
// outlier fraction is ignored).
func BuildGlobalSketch(cfg Config) (*GlobalSketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	width, err := cfg.totalWidth()
	if err != nil {
		return nil, err
	}
	syn, err := cfg.Factory(width, cfg.Depth, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &GlobalSketch{syn: syn, depth: cfg.Depth, width: width}, nil
}

// Update folds one edge arrival into the sketch.
func (g *GlobalSketch) Update(e stream.Edge) {
	w := e.Weight
	if w == 0 {
		w = 1
	}
	g.total += w
	g.syn.Update(stream.EdgeKey(e.Src, e.Dst), w)
}

// UpdateBatch folds a batch of edge arrivals: edge keys and weights are
// materialized once into reusable buffers, then the base synopsis absorbs
// them in a single UpdateBatch call. State is identical to sequential
// Update in slice order.
func (g *GlobalSketch) UpdateBatch(edges []stream.Edge) {
	if len(edges) == 0 {
		return
	}
	keys, counts := g.batchKeys[:0], g.batchCounts[:0]
	var total int64
	for _, e := range edges {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		total += w
		keys = append(keys, stream.EdgeKey(e.Src, e.Dst))
		counts = append(counts, w)
	}
	g.syn.UpdateBatch(keys, counts)
	g.batchKeys, g.batchCounts = keys, counts
	g.total += total
}

// EstimateEdge answers an edge query.
func (g *GlobalSketch) EstimateEdge(src, dst uint64) int64 {
	return g.syn.Estimate(stream.EdgeKey(src, dst))
}

// Count returns the total stream volume folded in.
func (g *GlobalSketch) Count() int64 { return g.total }

// MemoryBytes reports the counter storage footprint.
func (g *GlobalSketch) MemoryBytes() int { return g.syn.MemoryBytes() }

// Width returns the sketch's column count.
func (g *GlobalSketch) Width() int { return g.width }

// Depth returns the sketch's row count.
func (g *GlobalSketch) Depth() int { return g.depth }

// ErrorBound returns the additive CountMin bound e·N/w of Equation (1).
func (g *GlobalSketch) ErrorBound() float64 { return errorBound(g.total, g.width) }

var _ Estimator = (*GlobalSketch)(nil)
