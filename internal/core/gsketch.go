package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/vstats"
)

// Estimator is the query surface shared by GSketch and GlobalSketch: a
// frequency summary of a graph stream answering edge-frequency point
// queries.
type Estimator interface {
	// Update folds one edge arrival into the summary. A zero Weight counts
	// as 1 (the paper's default frequency).
	Update(e stream.Edge)
	// UpdateBatch folds a slice of edge arrivals in slice order, producing
	// the same state as the equivalent sequence of Update calls while
	// amortizing routing and dispatch across the batch.
	UpdateBatch(edges []stream.Edge)
	// EstimateEdge returns the estimated accumulated frequency of the
	// directed edge (src, dst) as a bare point estimate.
	EstimateEdge(src, dst uint64) int64
	// EstimateBatch answers a batch of edge queries in one routed pass,
	// returning one Result per query in input order. Each Result carries
	// the point estimate — identical to EstimateEdge on the same state —
	// plus the answering partition, that sketch's ε·N_i error bound with
	// its 1-δ confidence, and a snapshot of the stream total.
	EstimateBatch(qs []EdgeQuery) []Result
	// Count returns the total stream volume N folded in so far.
	Count() int64
	// MemoryBytes reports the counter storage footprint.
	MemoryBytes() int
}

// populateChunk bounds the batch size Populate hands to UpdateBatch so the
// scatter scratch stays cache-resident instead of growing with the stream.
const populateChunk = 8192

// Populate streams every edge of a slice into an estimator in batches.
func Populate(est Estimator, edges []stream.Edge) {
	for len(edges) > populateChunk {
		est.UpdateBatch(edges[:populateChunk])
		edges = edges[populateChunk:]
	}
	if len(edges) > 0 {
		est.UpdateBatch(edges)
	}
}

// GSketch is the partitioned estimator of the paper: localized sketches
// per vertex-population partition, a router H : V → S_i, and an outlier
// sketch for vertices outside the sample. Build it with BuildGSketch; it is
// not safe for concurrent mutation (see Concurrent for a locking wrapper).
type GSketch struct {
	cfg     Config
	parts   []sketch.Synopsis
	outlier sketch.Synopsis
	router  *Router
	leaves  []Leaf
	order   vstats.SortOrder
	// total is atomic so the sharded concurrent writer can fold volume in
	// from several goroutines without a lock (everything else it touches is
	// per-shard).
	total atomic.Int64
	// scratch holds the route-then-scatter buffers of UpdateBatch; lazily
	// allocated, reused across batches. Like the rest of GSketch it is not
	// safe for concurrent mutation — Concurrent keeps its own pool.
	scratch *scatter
	// qscratch is the read-side counterpart: the route-then-gather buffers
	// of EstimateBatch. Same lifecycle and (lack of) thread safety.
	qscratch *gather

	// writeHits / readHits count routed traffic per shard (outlier shard
	// last), split by direction. They are atomic so the batch route passes —
	// which run lock-free under Concurrent — can fold in per-shard group
	// sizes without synchronization. Runtime observability only: they are
	// not serialized.
	writeHits []atomic.Int64
	readHits  []atomic.Int64

	outlierWidth int
	totalWidth   int
}

// BuildGSketch constructs a gSketch from a data sample and, optionally, a
// query-workload sample (nil selects the scenario-A objective of §4.1;
// non-nil selects §4.2). The samples steer partitioning only — stream
// population happens afterwards via Update.
func BuildGSketch(cfg Config, dataSample, workloadSample []stream.Edge) (*GSketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(dataSample) == 0 {
		return nil, ErrEmptySample
	}

	stats := vstats.FromSample(dataSample)
	order := vstats.ByAvgFreq
	if len(workloadSample) > 0 {
		stats.ApplyWorkload(workloadSample)
		order = vstats.ByFreqPerWeight
	}
	return buildFromStats(cfg, stats, order)
}

// BuildGSketchFromStats constructs a gSketch from precomputed vertex
// statistics, for callers that maintain their own sampling pipeline (the
// window store does).
func BuildGSketchFromStats(cfg Config, stats *vstats.Stats, order vstats.SortOrder) (*GSketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return buildFromStats(cfg.withDefaults(), stats, order)
}

func buildFromStats(cfg Config, stats *vstats.Stats, order vstats.SortOrder) (*GSketch, error) {
	totalWidth, err := cfg.totalWidth()
	if err != nil {
		return nil, err
	}

	outlierWidth := 0
	if cfg.OutlierFraction > 0 {
		outlierWidth = int(math.Round(cfg.OutlierFraction * float64(totalWidth)))
		if outlierWidth < 1 {
			outlierWidth = 1
		}
	}
	partWidth := totalWidth - outlierWidth
	if partWidth < 1 {
		return nil, fmt.Errorf("%w: width %d leaves no room for partitions after outlier reservation", ErrConfig, totalWidth)
	}

	part, err := BuildPartitioning(stats, PartitionParams{
		Width:         partWidth,
		MinWidth:      cfg.MinWidth,
		CollisionC:    cfg.CollisionC,
		MaxPartitions: cfg.MaxPartitions,
		Order:         order,
		Redistribute:  cfg.Redistribute,
	})
	if err != nil {
		return nil, err
	}

	g := &GSketch{
		cfg:          cfg,
		router:       buildRouter(part.Assign),
		leaves:       part.Leaves,
		order:        order,
		outlierWidth: outlierWidth,
		totalWidth:   totalWidth,
	}
	g.parts = make([]sketch.Synopsis, len(part.Leaves))
	for i, leaf := range part.Leaves {
		// Each partition gets an independent hash family derived from the
		// master seed so cross-partition collisions are uncorrelated.
		s, err := cfg.Factory(leaf.Width, cfg.Depth, hashutil.Mix64(cfg.Seed+uint64(i)+1))
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", i, err)
		}
		g.parts[i] = s
	}
	if outlierWidth > 0 {
		s, err := cfg.Factory(outlierWidth, cfg.Depth, hashutil.Mix64(cfg.Seed^0xa11ce5))
		if err != nil {
			return nil, fmt.Errorf("core: outlier sketch: %w", err)
		}
		g.outlier = s
	}
	g.initRouteStats()
	return g, nil
}

// NumShards returns the number of independent update domains: one per
// partition, plus one for the outlier sketch when enabled. Shard i <
// NumPartitions() is partition i; the outlier shard (if any) is the last.
func (g *GSketch) NumShards() int {
	if g.outlier != nil {
		return len(g.parts) + 1
	}
	return len(g.parts)
}

// Route returns the shard index a source vertex's edges update. The router
// is immutable after construction, so Route is safe to call concurrently
// with shard-local writes — the property the sharded ingest path builds on.
func (g *GSketch) Route(src uint64) int {
	return g.routeMixed(hashutil.Mix64(src), src)
}

// routeMixed is Route with Mix64(src) precomputed (shared with edge-key
// derivation on the scatter pass).
func (g *GSketch) routeMixed(mixed, src uint64) int {
	if i, ok := g.router.getMixed(mixed, src); ok {
		return int(i)
	}
	if g.outlier != nil {
		return len(g.parts)
	}
	return 0
}

// shardSynopsis returns the synopsis backing one shard.
func (g *GSketch) shardSynopsis(shard int) sketch.Synopsis {
	if shard == len(g.parts) {
		return g.outlier
	}
	return g.parts[shard]
}

// addTotal folds stream volume into the atomic total on behalf of callers
// (Concurrent) that apply counter updates shard-by-shard.
func (g *GSketch) addTotal(n int64) { g.total.Add(n) }

// Update folds one edge arrival into its localized sketch.
func (g *GSketch) Update(e stream.Edge) {
	w := e.Weight
	if w == 0 {
		w = 1
	}
	g.total.Add(w)
	shard := g.Route(e.Src)
	addShardHits(g.writeHits, shard, 1)
	g.shardSynopsis(shard).Update(stream.EdgeKey(e.Src, e.Dst), w)
}

// UpdateBatch folds a batch of edge arrivals via route-then-scatter: the
// batch is first grouped by destination shard (touching only the flat
// router), then each shard's synopsis absorbs its group in one UpdateBatch
// call. Within a shard the stream order is preserved, so the resulting
// counters are byte-identical to sequential Update — partitions are
// independent, so cross-shard reordering is unobservable.
func (g *GSketch) UpdateBatch(edges []stream.Edge) {
	if len(edges) == 0 {
		return
	}
	sc := g.scratch
	if sc == nil {
		sc = newScatter(g.NumShards())
		g.scratch = sc
	}
	total := sc.route(g, edges)
	sc.apply(g)
	g.total.Add(total)
}

// EstimateEdge answers an edge query from the localized sketch the edge's
// source routes to.
func (g *GSketch) EstimateEdge(src, dst uint64) int64 {
	shard := g.Route(src)
	addShardHits(g.readHits, shard, 1)
	return g.shardSynopsis(shard).Estimate(stream.EdgeKey(src, dst))
}

// Count returns the total stream volume folded in.
func (g *GSketch) Count() int64 { return g.total.Load() }

// MemoryBytes reports the summed counter footprint of all partitions and
// the outlier sketch. The router is reported separately by RouterBytes.
func (g *GSketch) MemoryBytes() int {
	total := 0
	for _, p := range g.parts {
		total += p.MemoryBytes()
	}
	if g.outlier != nil {
		total += g.outlier.MemoryBytes()
	}
	return total
}

// RouterBytes reports the exact footprint of the vertex→partition table H:
// allocated capacity × 12-byte slot (8-byte key + 4-byte value). The paper
// treats this as marginal overhead (§5).
func (g *GSketch) RouterBytes() int { return g.router.Bytes() }

// NumPartitions returns the number of localized sketches (excluding the
// outlier sketch).
func (g *GSketch) NumPartitions() int { return len(g.parts) }

// Leaves returns the partition layout (copy; safe to retain).
func (g *GSketch) Leaves() []Leaf {
	out := make([]Leaf, len(g.leaves))
	copy(out, g.leaves)
	return out
}

// Order reports which scenario objective built the partitioning.
func (g *GSketch) Order() vstats.SortOrder { return g.order }

// PartitionOf returns the partition index a source vertex routes to, and
// whether it was present in the sample (false ⇒ outlier sketch).
func (g *GSketch) PartitionOf(src uint64) (int, bool) {
	i, ok := g.router.Get(src)
	return int(i), ok
}

// OutlierCount returns the stream volume absorbed by the outlier sketch.
func (g *GSketch) OutlierCount() int64 {
	if g.outlier == nil {
		return 0
	}
	return g.outlier.Count()
}

// OutlierWidth returns the column count of the outlier sketch (0 when
// disabled).
func (g *GSketch) OutlierWidth() int { return g.outlierWidth }

// ErrorBound returns the per-query additive CountMin bound e·N_i/w_i of
// the sketch the source vertex routes to — the per-partition confidence
// interval discussed in §5 ("the number of edges assigned to each of the
// partitions is known in advance of query processing").
func (g *GSketch) ErrorBound(src uint64) float64 {
	if i, ok := g.router.Get(src); ok {
		return errorBound(g.parts[i].Count(), g.leaves[i].Width)
	}
	if g.outlier != nil {
		return errorBound(g.outlier.Count(), g.outlierWidth)
	}
	return errorBound(g.parts[0].Count(), g.leaves[0].Width)
}

// Depth returns the shared sketch depth d.
func (g *GSketch) Depth() int { return g.cfg.Depth }

// TotalWidth returns the resolved total column budget (partitions +
// outlier).
func (g *GSketch) TotalWidth() int { return g.totalWidth }

var _ Estimator = (*GSketch)(nil)
