package core

import (
	"fmt"
	"math"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/vstats"
)

// Estimator is the query surface shared by GSketch and GlobalSketch: a
// frequency summary of a graph stream answering edge-frequency point
// queries.
type Estimator interface {
	// Update folds one edge arrival into the summary. A zero Weight counts
	// as 1 (the paper's default frequency).
	Update(e stream.Edge)
	// EstimateEdge returns the estimated accumulated frequency of the
	// directed edge (src, dst).
	EstimateEdge(src, dst uint64) int64
	// Count returns the total stream volume N folded in so far.
	Count() int64
	// MemoryBytes reports the counter storage footprint.
	MemoryBytes() int
}

// Populate streams every edge of a slice into an estimator.
func Populate(est Estimator, edges []stream.Edge) {
	for _, e := range edges {
		est.Update(e)
	}
}

// GSketch is the partitioned estimator of the paper: localized sketches
// per vertex-population partition, a router H : V → S_i, and an outlier
// sketch for vertices outside the sample. Build it with BuildGSketch; it is
// not safe for concurrent mutation (see Concurrent for a locking wrapper).
type GSketch struct {
	cfg     Config
	parts   []sketch.Synopsis
	outlier sketch.Synopsis
	router  map[uint64]int32
	leaves  []Leaf
	order   vstats.SortOrder
	total   int64

	outlierWidth int
	totalWidth   int
}

// BuildGSketch constructs a gSketch from a data sample and, optionally, a
// query-workload sample (nil selects the scenario-A objective of §4.1;
// non-nil selects §4.2). The samples steer partitioning only — stream
// population happens afterwards via Update.
func BuildGSketch(cfg Config, dataSample, workloadSample []stream.Edge) (*GSketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(dataSample) == 0 {
		return nil, ErrEmptySample
	}

	stats := vstats.FromSample(dataSample)
	order := vstats.ByAvgFreq
	if len(workloadSample) > 0 {
		stats.ApplyWorkload(workloadSample)
		order = vstats.ByFreqPerWeight
	}
	return buildFromStats(cfg, stats, order)
}

// BuildGSketchFromStats constructs a gSketch from precomputed vertex
// statistics, for callers that maintain their own sampling pipeline (the
// window store does).
func BuildGSketchFromStats(cfg Config, stats *vstats.Stats, order vstats.SortOrder) (*GSketch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return buildFromStats(cfg.withDefaults(), stats, order)
}

func buildFromStats(cfg Config, stats *vstats.Stats, order vstats.SortOrder) (*GSketch, error) {
	totalWidth, err := cfg.totalWidth()
	if err != nil {
		return nil, err
	}

	outlierWidth := 0
	if cfg.OutlierFraction > 0 {
		outlierWidth = int(math.Round(cfg.OutlierFraction * float64(totalWidth)))
		if outlierWidth < 1 {
			outlierWidth = 1
		}
	}
	partWidth := totalWidth - outlierWidth
	if partWidth < 1 {
		return nil, fmt.Errorf("%w: width %d leaves no room for partitions after outlier reservation", ErrConfig, totalWidth)
	}

	part, err := BuildPartitioning(stats, PartitionParams{
		Width:         partWidth,
		MinWidth:      cfg.MinWidth,
		CollisionC:    cfg.CollisionC,
		MaxPartitions: cfg.MaxPartitions,
		Order:         order,
		Redistribute:  cfg.Redistribute,
	})
	if err != nil {
		return nil, err
	}

	g := &GSketch{
		cfg:          cfg,
		router:       part.Assign,
		leaves:       part.Leaves,
		order:        order,
		outlierWidth: outlierWidth,
		totalWidth:   totalWidth,
	}
	g.parts = make([]sketch.Synopsis, len(part.Leaves))
	for i, leaf := range part.Leaves {
		// Each partition gets an independent hash family derived from the
		// master seed so cross-partition collisions are uncorrelated.
		s, err := cfg.Factory(leaf.Width, cfg.Depth, hashutil.Mix64(cfg.Seed+uint64(i)+1))
		if err != nil {
			return nil, fmt.Errorf("core: partition %d: %w", i, err)
		}
		g.parts[i] = s
	}
	if outlierWidth > 0 {
		s, err := cfg.Factory(outlierWidth, cfg.Depth, hashutil.Mix64(cfg.Seed^0xa11ce5))
		if err != nil {
			return nil, fmt.Errorf("core: outlier sketch: %w", err)
		}
		g.outlier = s
	}
	return g, nil
}

// synopsisFor routes a source vertex to its localized sketch, falling back
// to the outlier sketch (or partition 0 when the outlier is disabled).
func (g *GSketch) synopsisFor(src uint64) sketch.Synopsis {
	if i, ok := g.router[src]; ok {
		return g.parts[i]
	}
	if g.outlier != nil {
		return g.outlier
	}
	return g.parts[0]
}

// Update folds one edge arrival into its localized sketch.
func (g *GSketch) Update(e stream.Edge) {
	w := e.Weight
	if w == 0 {
		w = 1
	}
	g.total += w
	g.synopsisFor(e.Src).Update(stream.EdgeKey(e.Src, e.Dst), w)
}

// EstimateEdge answers an edge query from the localized sketch the edge's
// source routes to.
func (g *GSketch) EstimateEdge(src, dst uint64) int64 {
	return g.synopsisFor(src).Estimate(stream.EdgeKey(src, dst))
}

// Count returns the total stream volume folded in.
func (g *GSketch) Count() int64 { return g.total }

// MemoryBytes reports the summed counter footprint of all partitions and
// the outlier sketch. The router is reported separately by RouterBytes.
func (g *GSketch) MemoryBytes() int {
	total := 0
	for _, p := range g.parts {
		total += p.MemoryBytes()
	}
	if g.outlier != nil {
		total += g.outlier.MemoryBytes()
	}
	return total
}

// RouterBytes approximates the footprint of the vertex→partition hash
// structure H (~16 bytes per entry: 8-byte key, 4-byte value, load-factor
// overhead). The paper treats this as marginal overhead (§5).
func (g *GSketch) RouterBytes() int { return len(g.router) * 16 }

// NumPartitions returns the number of localized sketches (excluding the
// outlier sketch).
func (g *GSketch) NumPartitions() int { return len(g.parts) }

// Leaves returns the partition layout (copy; safe to retain).
func (g *GSketch) Leaves() []Leaf {
	out := make([]Leaf, len(g.leaves))
	copy(out, g.leaves)
	return out
}

// Order reports which scenario objective built the partitioning.
func (g *GSketch) Order() vstats.SortOrder { return g.order }

// PartitionOf returns the partition index a source vertex routes to, and
// whether it was present in the sample (false ⇒ outlier sketch).
func (g *GSketch) PartitionOf(src uint64) (int, bool) {
	i, ok := g.router[src]
	return int(i), ok
}

// OutlierCount returns the stream volume absorbed by the outlier sketch.
func (g *GSketch) OutlierCount() int64 {
	if g.outlier == nil {
		return 0
	}
	return g.outlier.Count()
}

// OutlierWidth returns the column count of the outlier sketch (0 when
// disabled).
func (g *GSketch) OutlierWidth() int { return g.outlierWidth }

// ErrorBound returns the per-query additive CountMin bound e·N_i/w_i of
// the sketch the source vertex routes to — the per-partition confidence
// interval discussed in §5 ("the number of edges assigned to each of the
// partitions is known in advance of query processing").
func (g *GSketch) ErrorBound(src uint64) float64 {
	if i, ok := g.router[src]; ok {
		return errorBound(g.parts[i].Count(), g.leaves[i].Width)
	}
	if g.outlier != nil {
		return errorBound(g.outlier.Count(), g.outlierWidth)
	}
	return errorBound(g.parts[0].Count(), g.leaves[0].Width)
}

// Depth returns the shared sketch depth d.
func (g *GSketch) Depth() int { return g.cfg.Depth }

// TotalWidth returns the resolved total column budget (partitions +
// outlier).
func (g *GSketch) TotalWidth() int { return g.totalWidth }

var _ Estimator = (*GSketch)(nil)
