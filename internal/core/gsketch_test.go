package core

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/vstats"
)

func testStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 128,
			Dst:    rng.Uint64() % 512,
			Weight: 1,
		}
	}
	return edges
}

func TestGSketchBuildAndQuery(t *testing.T) {
	edges := testStream(20000, 1)
	sample := edges[:2000]
	g, err := BuildGSketch(Config{TotalBytes: 64 << 10, Seed: 7}, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	Populate(g, edges)

	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)

	if g.Count() != exact.Total() {
		t.Errorf("count = %d, want %d", g.Count(), exact.Total())
	}
	// CountMin never underestimates, and routing is deterministic, so
	// every estimate must dominate the truth.
	exact.RangeEdges(func(src, dst uint64, f int64) bool {
		if est := g.EstimateEdge(src, dst); est < f {
			t.Fatalf("edge (%d,%d): estimate %d < truth %d", src, dst, est, f)
		}
		return true
	})
	if g.NumPartitions() < 1 {
		t.Error("no partitions built")
	}
	if g.Order() != vstats.ByAvgFreq {
		t.Errorf("order = %v, want ByAvgFreq without workload", g.Order())
	}
}

func TestGSketchWorkloadSelectsScenarioB(t *testing.T) {
	edges := testStream(5000, 2)
	g, err := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: 7}, edges[:500], edges[500:700])
	if err != nil {
		t.Fatal(err)
	}
	if g.Order() != vstats.ByFreqPerWeight {
		t.Errorf("order = %v, want ByFreqPerWeight with workload", g.Order())
	}
}

func TestGSketchOutlierRouting(t *testing.T) {
	// Sample covers only sources 0..9; stream also has 100..109, which
	// must route to the outlier sketch.
	var sample []stream.Edge
	for i := uint64(0); i < 10; i++ {
		sample = append(sample, stream.Edge{Src: i, Dst: 1, Weight: 1})
	}
	g, err := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: 3}, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if _, ok := g.PartitionOf(i); !ok {
			t.Errorf("sampled vertex %d not routed", i)
		}
	}
	if _, ok := g.PartitionOf(100); ok {
		t.Error("unsampled vertex claims a partition")
	}
	if g.OutlierWidth() == 0 {
		t.Fatal("outlier sketch missing")
	}
	for i := uint64(100); i < 110; i++ {
		g.Update(stream.Edge{Src: i, Dst: 5, Weight: 2})
	}
	if g.OutlierCount() != 20 {
		t.Errorf("outlier volume = %d, want 20", g.OutlierCount())
	}
	if est := g.EstimateEdge(100, 5); est < 2 {
		t.Errorf("outlier estimate = %d, want ≥ 2", est)
	}
}

func TestGSketchOutlierDisabled(t *testing.T) {
	sample := testStream(1000, 4)
	g, err := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: 3, OutlierFraction: -1}, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.OutlierWidth() != 0 {
		t.Errorf("outlier width = %d, want 0 when disabled", g.OutlierWidth())
	}
	// Unseen vertices fall back to partition 0; updates must not panic
	// and estimates stay sound.
	g.Update(stream.Edge{Src: 1 << 40, Dst: 1, Weight: 3})
	if est := g.EstimateEdge(1<<40, 1); est < 3 {
		t.Errorf("fallback estimate = %d, want ≥ 3", est)
	}
}

func TestGSketchMemoryWithinBudget(t *testing.T) {
	for _, budget := range []int{16 << 10, 64 << 10, 256 << 10} {
		g, err := BuildGSketch(Config{TotalBytes: budget, Seed: 5}, testStream(3000, 5), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.MemoryBytes(); got > budget {
			t.Errorf("budget %d: memory %d exceeds it", budget, got)
		}
		// Should also use most of the budget (≥ 80%): the partitioner
		// conserves width up to integer division effects.
		if got := g.MemoryBytes(); got < budget*8/10 {
			t.Errorf("budget %d: memory %d underuses it", budget, got)
		}
		if g.RouterBytes() <= 0 {
			t.Error("router bytes unreported")
		}
	}
}

func TestGSketchErrorBound(t *testing.T) {
	edges := testStream(10000, 6)
	g, _ := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: 5}, edges[:1000], nil)
	Populate(g, edges)
	if b := g.ErrorBound(edges[0].Src); b <= 0 {
		t.Errorf("error bound = %v, want > 0 after populate", b)
	}
	// Unseen vertex: bound comes from the outlier sketch.
	if b := g.ErrorBound(1 << 50); b < 0 {
		t.Errorf("outlier bound = %v", b)
	}
}

func TestGSketchZeroWeightCountsAsOne(t *testing.T) {
	g, _ := BuildGSketch(Config{TotalBytes: 16 << 10, Seed: 5}, testStream(100, 7), nil)
	g.Update(stream.Edge{Src: 1, Dst: 2}) // Weight 0
	if g.Count() != 1 {
		t.Errorf("count = %d, want 1 (zero weight defaults to 1)", g.Count())
	}
}

func TestGSketchConfigValidation(t *testing.T) {
	sample := testStream(100, 8)
	cases := []Config{
		{},                                   // no budget
		{TotalBytes: 1 << 20, TotalWidth: 5}, // both budgets
		{TotalBytes: 1 << 20, Depth: -1},
		{TotalBytes: 1 << 20, OutlierFraction: 1.5},
		{TotalBytes: 1 << 20, MinWidth: 1},
		{TotalBytes: 1 << 20, CollisionC: 2},
		{TotalBytes: 1 << 20, MaxPartitions: -2},
	}
	for i, cfg := range cases {
		if _, err := BuildGSketch(cfg, sample, nil); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := BuildGSketch(Config{TotalBytes: 1 << 20}, nil, nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("empty sample error = %v", err)
	}
	// Budget too small to fit outlier + partitions.
	if _, err := BuildGSketch(Config{TotalWidth: 1}, sample, nil); err == nil {
		t.Error("width 1 with outlier accepted")
	}
}

func TestGSketchCountSketchFactory(t *testing.T) {
	cfg := Config{
		TotalBytes: 64 << 10,
		Seed:       5,
		Factory: func(w, d int, seed uint64) (sketch.Synopsis, error) {
			return sketch.NewCountSketch(w, d, seed)
		},
	}
	edges := testStream(5000, 9)
	g, err := BuildGSketch(cfg, edges[:500], nil)
	if err != nil {
		t.Fatal(err)
	}
	Populate(g, edges)
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	// CountSketch is two-sided; just check the estimator is in the right
	// ballpark on a heavy edge.
	var heavySrc, heavyDst uint64
	var heavyF int64
	exact.RangeEdges(func(s, d uint64, f int64) bool {
		if f > heavyF {
			heavySrc, heavyDst, heavyF = s, d, f
		}
		return true
	})
	est := g.EstimateEdge(heavySrc, heavyDst)
	if est < heavyF/2 || est > heavyF*2 {
		t.Errorf("CountSketch-backed estimate %d far from truth %d", est, heavyF)
	}
}

func TestGSketchDeterministic(t *testing.T) {
	edges := testStream(5000, 10)
	build := func() *GSketch {
		g, err := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: 42}, edges[:500], nil)
		if err != nil {
			t.Fatal(err)
		}
		Populate(g, edges)
		return g
	}
	a, b := build(), build()
	f := func(src, dst uint64) bool {
		return a.EstimateEdge(src%128, dst%512) == b.EstimateEdge(src%128, dst%512)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGlobalSketchBaseline(t *testing.T) {
	edges := testStream(20000, 11)
	g, err := BuildGlobalSketch(Config{TotalBytes: 64 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	Populate(g, edges)
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	if g.Count() != exact.Total() {
		t.Errorf("count = %d, want %d", g.Count(), exact.Total())
	}
	exact.RangeEdges(func(src, dst uint64, f int64) bool {
		if est := g.EstimateEdge(src, dst); est < f {
			t.Fatalf("edge (%d,%d): estimate %d < truth %d", src, dst, est, f)
		}
		return true
	})
	if g.Width() <= 0 || g.Depth() != DefaultDepth {
		t.Errorf("dims = %dx%d", g.Depth(), g.Width())
	}
	if g.ErrorBound() <= 0 {
		t.Error("error bound not positive after populate")
	}
	if g.MemoryBytes() > 64<<10 {
		t.Error("memory exceeds budget")
	}
}

func TestGlobalSketchExplicitWidth(t *testing.T) {
	g, err := BuildGlobalSketch(Config{TotalWidth: 1000, Depth: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Width() != 1000 || g.Depth() != 4 {
		t.Errorf("dims = %dx%d, want 4x1000", g.Depth(), g.Width())
	}
}

func TestDimsFromErrorReexport(t *testing.T) {
	w, d, err := DimsFromError(0.001, 0.01)
	if err != nil || w <= 0 || d <= 0 {
		t.Errorf("DimsFromError = %d,%d,%v", w, d, err)
	}
}
