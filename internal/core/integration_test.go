package core

import (
	"testing"

	"github.com/graphstream/gsketch/internal/graphgen"
	"github.com/graphstream/gsketch/internal/stream"
)

// End-to-end accuracy: the paper's headline claim — gSketch beats the
// Global Sketch baseline on average relative error — must hold on all
// three (scaled-down) dataset stand-ins under memory pressure.

func evalARE(t *testing.T, est Estimator, exact *stream.ExactCounter, seed uint64) float64 {
	t.Helper()
	// Distinct-uniform edge queries, as in the experiment harness.
	edges := exact.Edges()
	if len(edges) == 0 {
		t.Fatal("empty stream")
	}
	var sum float64
	n := 0
	rng := newTestRNG(seed)
	for i := 0; i < 2000; i++ {
		e := edges[int(rng()%uint64(len(edges)))]
		truth := float64(exact.EdgeFrequency(e.Src, e.Dst))
		got := float64(est.EstimateEdge(e.Src, e.Dst))
		sum += got/truth - 1
		n++
	}
	return sum / float64(n)
}

func newTestRNG(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		return z
	}
}

func reservoir(edges []stream.Edge, frac float64, seed uint64) []stream.Edge {
	n := int(float64(len(edges)) * frac)
	r := stream.NewReservoir(n, seed)
	r.ObserveAll(edges)
	out := make([]stream.Edge, len(r.Sample()))
	copy(out, r.Sample())
	return out
}

func assertGSketchWins(t *testing.T, name string, edges, sample []stream.Edge, budget int, margin float64) {
	t.Helper()
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)

	cfg := Config{TotalBytes: budget, Seed: 7}
	global, err := BuildGlobalSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gsk, err := BuildGSketch(cfg, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	Populate(global, edges)
	Populate(gsk, edges)

	gARE := evalARE(t, global, exact, 1234)
	sARE := evalARE(t, gsk, exact, 1234)
	t.Logf("%s: Global ARE %.2f, gSketch ARE %.2f (%.2fx)", name, gARE, sARE, gARE/sARE)
	if sARE*margin >= gARE {
		t.Errorf("%s: gSketch ARE %.2f does not beat Global %.2f by margin %.2f", name, sARE, gARE, margin)
	}
}

func TestGSketchBeatsGlobalOnRMAT(t *testing.T) {
	cfg := graphgen.DefaultRMAT(12, 150_000, 42)
	edges, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	assertGSketchWins(t, "RMAT", edges, reservoir(edges, 0.2, 99), 16<<10, 1.5)
}

func TestGSketchBeatsGlobalOnDBLP(t *testing.T) {
	cfg := graphgen.DBLPConfig{Authors: 6_000, Papers: 60_000, Seed: 42}
	edges, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	assertGSketchWins(t, "DBLP", edges, reservoir(edges, 0.2, 99), 16<<10, 1.2)
}

func TestGSketchBeatsGlobalOnIPAttack(t *testing.T) {
	cfg := graphgen.DefaultIPAttack(2_000, 12_000, 300_000, 42)
	edges, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	assertGSketchWins(t, "IPAttack", edges, graphgen.FirstDay(edges), 16<<10, 1.1)
}

func TestPartitionedBandsAreProtected(t *testing.T) {
	// Craft a stream with two pure per-source frequency bands and verify
	// the partitioning actually separates them: light-band queries see
	// lower error under gSketch than under the global sketch.
	var edges []stream.Edge
	// Heavy band: 64 sources × 50 edges × frequency 40.
	for s := uint64(0); s < 64; s++ {
		for d := uint64(0); d < 50; d++ {
			for r := 0; r < 40; r++ {
				edges = append(edges, stream.Edge{Src: s, Dst: d, Weight: 1})
			}
		}
	}
	// Light band: 2000 sources × 4 edges × frequency 1.
	for s := uint64(1000); s < 3000; s++ {
		for d := uint64(0); d < 4; d++ {
			edges = append(edges, stream.Edge{Src: s, Dst: d, Weight: 1})
		}
	}
	// Deterministic interleave (stream order does not matter for CM).
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)

	sample := reservoir(edges, 0.3, 5)
	cfg := Config{TotalBytes: 8 << 10, Seed: 11}
	global, _ := BuildGlobalSketch(cfg)
	gsk, err := BuildGSketch(cfg, sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	Populate(global, edges)
	Populate(gsk, edges)

	// Average relative error over light-band edges only.
	var gSum, sSum float64
	n := 0
	for s := uint64(1000); s < 1400; s++ {
		for d := uint64(0); d < 4; d++ {
			truth := float64(exact.EdgeFrequency(s, d))
			if truth == 0 {
				continue
			}
			gSum += float64(global.EstimateEdge(s, d))/truth - 1
			sSum += float64(gsk.EstimateEdge(s, d))/truth - 1
			n++
		}
	}
	gARE, sARE := gSum/float64(n), sSum/float64(n)
	t.Logf("light band: global %.2f vs gsketch %.2f", gARE, sARE)
	if sARE >= gARE {
		t.Errorf("light band not protected: gSketch %.2f ≥ global %.2f", sARE, gARE)
	}
}
