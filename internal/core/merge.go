package core

import (
	"fmt"

	"github.com/graphstream/gsketch/internal/sketch"
)

// Exact generation merge. Two gSketches built from the same configuration
// and the same data sample lay out identically — BuildGSketch derives every
// partition's hash family deterministically from the master seed, so equal
// routers + equal widths + equal seeds mean every counter cell is addressed
// by the same hash in both sketches. CountMin counters are then additive
// cell-wise, and the merged sketch answers for the union stream with the
// combined ε·(N_a+N_b) bound. The compaction subsystem uses this as its
// lossless fast path and falls back to re-ingesting reservoirs when the
// layouts differ.

// ErrIncompatibleMerge reports a counter-wise merge refused because the two
// sketches do not share a hash layout (different partitioning, widths,
// depth, or seeds). Callers fall back to rebuild-and-reingest.
var ErrIncompatibleMerge = fmt.Errorf("core: gSketch layouts are not counter-mergeable")

// CanMerge reports whether other's counters can be folded into g cell-wise:
// same depth, same partition layout (leaf widths and router contents), same
// outlier width, and CountMin synopses with identical hash seeds on both
// sides. A nil error means MergeFrom will succeed.
func (g *GSketch) CanMerge(other *GSketch) error {
	if g.cfg.Depth != other.cfg.Depth {
		return fmt.Errorf("%w: depth %d vs %d", ErrIncompatibleMerge, g.cfg.Depth, other.cfg.Depth)
	}
	if len(g.parts) != len(other.parts) {
		return fmt.Errorf("%w: %d vs %d partitions", ErrIncompatibleMerge, len(g.parts), len(other.parts))
	}
	if g.outlierWidth != other.outlierWidth {
		return fmt.Errorf("%w: outlier width %d vs %d", ErrIncompatibleMerge, g.outlierWidth, other.outlierWidth)
	}
	for i := range g.parts {
		if g.leaves[i].Width != other.leaves[i].Width {
			return fmt.Errorf("%w: partition %d width %d vs %d", ErrIncompatibleMerge, i, g.leaves[i].Width, other.leaves[i].Width)
		}
		if _, _, err := mergeablePair(g.parts[i], other.parts[i]); err != nil {
			return fmt.Errorf("%w: partition %d: %v", ErrIncompatibleMerge, i, err)
		}
	}
	if (g.outlier == nil) != (other.outlier == nil) {
		return fmt.Errorf("%w: outlier sketch present on one side only", ErrIncompatibleMerge)
	}
	if g.outlier != nil {
		if _, _, err := mergeablePair(g.outlier, other.outlier); err != nil {
			return fmt.Errorf("%w: outlier: %v", ErrIncompatibleMerge, err)
		}
	}
	if g.router.Len() != other.router.Len() {
		return fmt.Errorf("%w: router size %d vs %d", ErrIncompatibleMerge, g.router.Len(), other.router.Len())
	}
	routersEqual := true
	other.router.Range(func(vertex uint64, part int32) bool {
		p, ok := g.router.Get(vertex)
		if !ok || p != part {
			routersEqual = false
			return false
		}
		return true
	})
	if !routersEqual {
		return fmt.Errorf("%w: routers assign vertices differently", ErrIncompatibleMerge)
	}
	return nil
}

// mergeablePair checks one synopsis pair is CountMin-backed with identical
// dimensions and seed — the preconditions of sketch.CountMin.Merge.
func mergeablePair(a, b sketch.Synopsis) (*sketch.CountMin, *sketch.CountMin, error) {
	ca, ok := a.(*sketch.CountMin)
	if !ok {
		return nil, nil, fmt.Errorf("synopsis %T is not CountMin", a)
	}
	cb, ok := b.(*sketch.CountMin)
	if !ok {
		return nil, nil, fmt.Errorf("synopsis %T is not CountMin", b)
	}
	if ca.Width() != cb.Width() || ca.Depth() != cb.Depth() || ca.Seed() != cb.Seed() {
		return nil, nil, fmt.Errorf("hash families differ (%dx%d seed %d vs %dx%d seed %d)",
			ca.Depth(), ca.Width(), ca.Seed(), cb.Depth(), cb.Width(), cb.Seed())
	}
	if ca.Conservative() || cb.Conservative() {
		return nil, nil, fmt.Errorf("conservative-update sketches are not mergeable")
	}
	return ca, cb, nil
}

// MergeFrom folds other's counters into g cell-wise. On success g answers
// for the concatenation of both streams: estimates stay overestimates of
// the union stream and the additive bound becomes ε·(N_g+N_other) — exactly
// the bound the generation chain would have reported for the two sketches
// separately. other is not modified. On error g is unchanged.
func (g *GSketch) MergeFrom(other *GSketch) error {
	if err := g.CanMerge(other); err != nil {
		return err
	}
	for i := range g.parts {
		ca, cb, err := mergeablePair(g.parts[i], other.parts[i])
		if err != nil {
			return fmt.Errorf("%w: partition %d: %v", ErrIncompatibleMerge, i, err)
		}
		if err := ca.Merge(cb); err != nil {
			return fmt.Errorf("core: merge partition %d: %w", i, err)
		}
	}
	if g.outlier != nil {
		ca, cb, err := mergeablePair(g.outlier, other.outlier)
		if err != nil {
			return fmt.Errorf("%w: outlier: %v", ErrIncompatibleMerge, err)
		}
		if err := ca.Merge(cb); err != nil {
			return fmt.Errorf("core: merge outlier: %w", err)
		}
	}
	// Sample statistics add: the merged sketch describes the union sample.
	for i := range g.leaves {
		g.leaves[i].SumF += other.leaves[i].SumF
		g.leaves[i].SumD += other.leaves[i].SumD
	}
	g.total.Add(other.total.Load())
	return nil
}
