package core

import (
	"fmt"
	"math"

	"github.com/graphstream/gsketch/internal/vstats"
)

// Leaf describes one materialized localized sketch of the partitioning.
type Leaf struct {
	// Width is the final column count after trimming and redistribution.
	Width int
	// Vertices is the number of sampled source vertices routed here.
	Vertices int
	// SumF is F̃(S_i): the summed estimated vertex frequency of the leaf.
	SumF float64
	// SumD is Σ d̃(m): the estimated number of distinct edges counted here.
	SumD float64
	// Trimmed records that the leaf met the Theorem-1 criterion and its
	// width was cut to Σ d̃(m).
	Trimmed bool
}

// Partitioning is the output of the partitioning tree: the leaf sketch
// layout plus the vertex→leaf assignment that becomes the router.
type Partitioning struct {
	Leaves []Leaf
	// Assign maps every sampled source vertex to its leaf index.
	Assign map[uint64]int32
	// Order records which scenario objective built this partitioning.
	Order vstats.SortOrder
	// WidthBudget is the input width; SavedWidth is what trimming freed
	// and redistribution could not place (nonzero only under
	// RedistributeNone or when every leaf was trimmed).
	WidthBudget int
	SavedWidth  int
}

// PartitionParams are the tree-construction inputs.
type PartitionParams struct {
	// Width is the total column budget to divide (excludes the outlier
	// sketch; the caller carves that out first).
	Width int
	// MinWidth is w0: nodes narrower than this materialize (criterion 1).
	MinWidth int
	// CollisionC is C: nodes with Σd̃ ≤ C·width materialize (criterion 2,
	// Theorem 1) and are trimmed to Σd̃.
	CollisionC float64
	// MaxPartitions caps the leaf count (0 = unbounded).
	MaxPartitions int
	// Order selects the scenario objective (Eq. 9 vs Eq. 11).
	Order vstats.SortOrder
	// Redistribute selects the trimmed-width reallocation policy.
	Redistribute Redistribution
}

// node is a contiguous range [lo, hi) of the sorted vertex array with its
// allocated width.
type node struct {
	lo, hi int
	width  int
}

// BuildPartitioning runs the partitioning tree of Figures 2 and 3 over the
// sample statistics. The vertex array is sorted once by the scenario key;
// every tree node is then a contiguous range, and the optimal pivot of the
// Eq. 9 / Eq. 11 objective is found in O(range) with prefix sums.
func BuildPartitioning(stats *vstats.Stats, p PartitionParams) (*Partitioning, error) {
	if stats.Len() == 0 {
		return nil, ErrEmptySample
	}
	if p.Width < 1 {
		return nil, fmt.Errorf("%w: partition width %d", ErrConfig, p.Width)
	}
	if p.MinWidth < 2 {
		return nil, fmt.Errorf("%w: min width %d must be ≥ 2", ErrConfig, p.MinWidth)
	}
	if !(p.CollisionC > 0 && p.CollisionC < 1) {
		return nil, fmt.Errorf("%w: collision constant %v", ErrConfig, p.CollisionC)
	}

	verts := stats.Sorted(p.Order)
	n := len(verts)

	// Prefix sums over the sorted order:
	//   prefF[i] = Σ_{j<i} f̃v(j)                 (F̃ of a range)
	//   prefD[i] = Σ_{j<i} d̃(j)                  (distinct-edge load)
	//   prefG[i] = Σ_{j<i} g(j), the objective weight:
	//     scenario A: g = d̃²/f̃v       (Eq. 9 term d̃·F̃/(f̃v/d̃) = F̃·d̃²/f̃v)
	//     scenario B: g = w̃·d̃/f̃v      (Eq. 11 term w̃·F̃/(f̃v/d̃))
	prefF := make([]float64, n+1)
	prefD := make([]float64, n+1)
	prefG := make([]float64, n+1)
	for i, v := range verts {
		g := 0.0
		if v.F > 0 {
			switch p.Order {
			case vstats.ByAvgFreq:
				g = v.D * v.D / v.F
			case vstats.ByFreqPerWeight:
				g = v.W * v.D / v.F
			default:
				return nil, fmt.Errorf("%w: unknown sort order %v", ErrConfig, p.Order)
			}
		}
		prefF[i+1] = prefF[i] + v.F
		prefD[i+1] = prefD[i] + v.D
		prefG[i+1] = prefG[i] + g
	}

	part := &Partitioning{
		Assign:      make(map[uint64]int32, n),
		Order:       p.Order,
		WidthBudget: p.Width,
	}

	splittable := func(nd node) bool {
		if nd.hi-nd.lo < 2 || nd.width < 2 {
			return false
		}
		if nd.width < p.MinWidth {
			return false // criterion 1
		}
		if prefD[nd.hi]-prefD[nd.lo] <= p.CollisionC*float64(nd.width) {
			return false // criterion 2 (Theorem 1)
		}
		return true
	}

	materialize := func(nd node) {
		leaf := Leaf{
			Width:    nd.width,
			Vertices: nd.hi - nd.lo,
			SumF:     prefF[nd.hi] - prefF[nd.lo],
			SumD:     prefD[nd.hi] - prefD[nd.lo],
		}
		// Theorem-1 trimming: a leaf whose distinct-edge load fits within
		// C·width is shrunk to Σd̃; the freed width is pooled for
		// redistribution.
		if leaf.SumD <= p.CollisionC*float64(nd.width) {
			tw := int(math.Ceil(leaf.SumD))
			if tw < 1 {
				tw = 1
			}
			if tw < leaf.Width {
				leaf.Width = tw
				leaf.Trimmed = true
			}
		}
		idx := int32(len(part.Leaves))
		for i := nd.lo; i < nd.hi; i++ {
			part.Assign[verts[i].ID] = idx
		}
		part.Leaves = append(part.Leaves, leaf)
	}

	active := []node{{0, n, p.Width}}
	if !splittable(active[0]) {
		materialize(active[0])
		active = nil
	}
	for len(active) > 0 {
		nd := active[len(active)-1]
		active = active[:len(active)-1]

		// Partition cap: splitting nd yields ≥2 eventual leaves, every
		// remaining active node ≥1, plus the leaves already built.
		if p.MaxPartitions > 0 && len(part.Leaves)+len(active)+2 > p.MaxPartitions {
			materialize(nd)
			continue
		}

		k := bestPivot(nd, prefF, prefG)
		w1 := nd.width / 2
		w2 := nd.width - w1
		children := [2]node{
			{nd.lo, k, w1},
			{k, nd.hi, w2},
		}
		for _, ch := range children {
			if splittable(ch) {
				active = append(active, ch)
			} else {
				materialize(ch)
			}
		}
	}

	redistribute(part.Leaves, p.Width, p.Redistribute)
	total := 0
	for _, l := range part.Leaves {
		total += l.Width
	}
	part.SavedWidth = p.Width - total
	if part.SavedWidth < 0 {
		return nil, fmt.Errorf("core: internal error: leaf widths exceed budget (%d > %d)", total, p.Width)
	}
	return part, nil
}

// bestPivot scans every split point of nd in sorted order and returns the k
// minimizing the scenario objective
//
//	E′(k) = F̃(S1)·G(S1) + F̃(S2)·G(S2)
//
// (Eq. 9 / Eq. 11 up to the constant terms dropped in Eq. 8). Ties resolve
// to the smallest k for determinism.
func bestPivot(nd node, prefF, prefG []float64) int {
	bestK := nd.lo + 1
	bestE := math.Inf(1)
	fLo, gLo := prefF[nd.lo], prefG[nd.lo]
	fHi, gHi := prefF[nd.hi], prefG[nd.hi]
	for k := nd.lo + 1; k <= nd.hi-1; k++ {
		e := (prefF[k]-fLo)*(prefG[k]-gLo) + (fHi-prefF[k])*(gHi-prefG[k])
		if e < bestE {
			bestE = e
			bestK = k
		}
	}
	return bestK
}

// redistribute reallocates the pooled trimmed width in place according to
// the policy. Untrimmed leaves are the preferred recipients; if every leaf
// was trimmed the pool is spread over all of them.
func redistribute(leaves []Leaf, budget int, policy Redistribution) {
	total := 0
	for _, l := range leaves {
		total += l.Width
	}
	pool := budget - total
	if pool <= 0 || policy == RedistributeNone || len(leaves) == 0 {
		return
	}
	recipients := make([]int, 0, len(leaves))
	for i, l := range leaves {
		if !l.Trimmed {
			recipients = append(recipients, i)
		}
	}
	if len(recipients) == 0 {
		for i := range leaves {
			recipients = append(recipients, i)
		}
	}
	switch policy {
	case RedistributeEven:
		each := pool / len(recipients)
		rem := pool % len(recipients)
		for j, i := range recipients {
			leaves[i].Width += each
			if j < rem {
				leaves[i].Width++
			}
		}
	case RedistributeProportional:
		var sumF float64
		for _, i := range recipients {
			sumF += leaves[i].SumF
		}
		if sumF <= 0 {
			// Degenerate: fall back to even.
			redistribute(leaves, budget, RedistributeEven)
			return
		}
		assigned := 0
		for _, i := range recipients {
			add := int(float64(pool) * leaves[i].SumF / sumF)
			leaves[i].Width += add
			assigned += add
		}
		// Hand out the integer remainder round-robin.
		for j := 0; assigned < pool; j++ {
			leaves[recipients[j%len(recipients)]].Width++
			assigned++
		}
	}
}
