package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/vstats"
)

func randomSample(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 64,
			Dst:    rng.Uint64() % 256,
			Weight: int64(rng.Uint64()%9) + 1,
		}
	}
	return edges
}

func defaultParams(width int) PartitionParams {
	return PartitionParams{
		Width:      width,
		MinWidth:   DefaultMinWidth,
		CollisionC: DefaultCollisionC,
		Order:      vstats.ByAvgFreq,
	}
}

func TestPartitioningWidthConservation(t *testing.T) {
	stats := vstats.FromSample(randomSample(2000, 1))
	for _, width := range []int{100, 512, 4096, 65536} {
		p, err := BuildPartitioning(stats, defaultParams(width))
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		total := 0
		for _, l := range p.Leaves {
			if l.Width < 1 {
				t.Fatalf("width %d: leaf with width %d", width, l.Width)
			}
			total += l.Width
		}
		if total+p.SavedWidth != width {
			t.Errorf("width %d: Σleaves(%d) + saved(%d) != budget", width, total, p.SavedWidth)
		}
		if total > width {
			t.Errorf("width %d: leaves exceed budget", width)
		}
		// Default redistribution is proportional: nothing left unplaced
		// unless there was only trimmed leaves.
		if p.SavedWidth != 0 {
			allTrimmed := true
			for _, l := range p.Leaves {
				if !l.Trimmed {
					allTrimmed = false
				}
			}
			if !allTrimmed {
				t.Errorf("width %d: saved width %d with untrimmed leaves present", width, p.SavedWidth)
			}
		}
	}
}

func TestPartitioningRouterTotality(t *testing.T) {
	sample := randomSample(3000, 2)
	stats := vstats.FromSample(sample)
	p, err := BuildPartitioning(stats, defaultParams(2048))
	if err != nil {
		t.Fatal(err)
	}
	// Every sampled source vertex routes to exactly one existing leaf.
	if len(p.Assign) != stats.Len() {
		t.Errorf("router covers %d vertices, sample has %d", len(p.Assign), stats.Len())
	}
	counts := make([]int, len(p.Leaves))
	for v, leaf := range p.Assign {
		if int(leaf) < 0 || int(leaf) >= len(p.Leaves) {
			t.Fatalf("vertex %d routed to nonexistent leaf %d", v, leaf)
		}
		counts[leaf]++
	}
	for i, l := range p.Leaves {
		if counts[i] != l.Vertices {
			t.Errorf("leaf %d: %d routed vertices, leaf records %d", i, counts[i], l.Vertices)
		}
	}
}

func TestPartitioningPivotMatchesBruteForce(t *testing.T) {
	// The prefix-sum pivot scan must agree with a brute-force evaluation
	// of the Eq. 9 objective at the root split.
	sample := randomSample(400, 3)
	stats := vstats.FromSample(sample)
	verts := stats.Sorted(vstats.ByAvgFreq)
	n := len(verts)

	prefF := make([]float64, n+1)
	prefG := make([]float64, n+1)
	for i, v := range verts {
		prefF[i+1] = prefF[i] + v.F
		prefG[i+1] = prefG[i] + v.D*v.D/v.F
	}
	got := bestPivot(node{0, n, 1024}, prefF, prefG)

	bruteBest, bruteE := -1, math.Inf(1)
	for k := 1; k <= n-1; k++ {
		var f1, g1, f2, g2 float64
		for _, v := range verts[:k] {
			f1 += v.F
			g1 += v.D * v.D / v.F
		}
		for _, v := range verts[k:] {
			f2 += v.F
			g2 += v.D * v.D / v.F
		}
		if e := f1*g1 + f2*g2; e < bruteE {
			bruteE = e
			bruteBest = k
		}
	}
	if got != bruteBest {
		t.Errorf("pivot scan chose %d, brute force %d", got, bruteBest)
	}
}

func TestPartitioningMinWidthTermination(t *testing.T) {
	stats := vstats.FromSample(randomSample(2000, 4))
	p, err := BuildPartitioning(stats, PartitionParams{
		Width: 1024, MinWidth: 256, CollisionC: 0.5, Order: vstats.ByAvgFreq,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per Figure 2 a child splits further while its width ≥ w0, so the
	// narrowest leaves are w0/2 wide: 1024 → 512 → 256 → 128(<w0 stops):
	// at most 8 leaves, none narrower than 128 (untrimmed).
	if len(p.Leaves) > 8 {
		t.Errorf("%d leaves with w0=256 from width 1024, want ≤ 8", len(p.Leaves))
	}
	for i, l := range p.Leaves {
		if !l.Trimmed && l.Width < 128 {
			t.Errorf("leaf %d: untrimmed width %d < w0/2", i, l.Width)
		}
	}
}

func TestPartitioningCollisionTermination(t *testing.T) {
	// A tiny sample (Σd̃ small) must terminate by Theorem 1 and trim.
	var sample []stream.Edge
	for i := 0; i < 10; i++ {
		sample = append(sample, stream.Edge{Src: uint64(i), Dst: 1, Weight: 1})
	}
	stats := vstats.FromSample(sample)
	p, err := BuildPartitioning(stats, PartitionParams{
		Width: 4096, MinWidth: 64, CollisionC: 0.5, Order: vstats.ByAvgFreq,
		Redistribute: RedistributeNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Leaves) != 1 {
		t.Fatalf("expected a single trimmed leaf, got %d", len(p.Leaves))
	}
	l := p.Leaves[0]
	if !l.Trimmed {
		t.Error("leaf not trimmed despite Σd̃ ≤ C·width")
	}
	if l.Width != 10 { // ceil(Σd̃) = 10 distinct edges
		t.Errorf("trimmed width = %d, want 10", l.Width)
	}
	if p.SavedWidth != 4096-10 {
		t.Errorf("saved = %d, want %d", p.SavedWidth, 4096-10)
	}
}

func TestPartitioningMaxPartitionsCap(t *testing.T) {
	stats := vstats.FromSample(randomSample(3000, 5))
	for _, cap := range []int{1, 2, 3, 7, 8} {
		p, err := BuildPartitioning(stats, PartitionParams{
			Width: 1 << 16, MinWidth: 4, CollisionC: 0.5,
			Order: vstats.ByAvgFreq, MaxPartitions: cap,
		})
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		if len(p.Leaves) > cap {
			t.Errorf("cap %d: got %d leaves", cap, len(p.Leaves))
		}
	}
}

func TestPartitioningSingleVertex(t *testing.T) {
	stats := vstats.FromSample([]stream.Edge{{Src: 1, Dst: 2, Weight: 5}})
	p, err := BuildPartitioning(stats, defaultParams(1024))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Leaves) != 1 || p.Leaves[0].Vertices != 1 {
		t.Errorf("single-vertex partitioning = %+v", p.Leaves)
	}
}

func TestPartitioningEmptySample(t *testing.T) {
	stats := vstats.FromSample(nil)
	if _, err := BuildPartitioning(stats, defaultParams(1024)); !errors.Is(err, ErrEmptySample) {
		t.Errorf("error = %v, want ErrEmptySample", err)
	}
}

func TestPartitioningInvalidParams(t *testing.T) {
	stats := vstats.FromSample(randomSample(10, 6))
	bad := []PartitionParams{
		{Width: 0, MinWidth: 64, CollisionC: 0.5},
		{Width: 100, MinWidth: 1, CollisionC: 0.5},
		{Width: 100, MinWidth: 64, CollisionC: 0},
		{Width: 100, MinWidth: 64, CollisionC: 1},
	}
	for i, params := range bad {
		if _, err := BuildPartitioning(stats, params); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestRedistributionPolicies(t *testing.T) {
	// Craft leaves with one trimmed leaf and two untrimmed.
	mk := func() []Leaf {
		return []Leaf{
			{Width: 10, Trimmed: true, SumF: 100},
			{Width: 50, SumF: 300},
			{Width: 40, SumF: 100},
		}
	}
	budget := 200 // pool = 100

	l := mk()
	redistribute(l, budget, RedistributeNone)
	if l[0].Width != 10 || l[1].Width != 50 || l[2].Width != 40 {
		t.Error("RedistributeNone mutated widths")
	}

	l = mk()
	redistribute(l, budget, RedistributeEven)
	if l[0].Width != 10 {
		t.Error("even policy gave width to the trimmed leaf")
	}
	if l[1].Width+l[2].Width != 190 {
		t.Errorf("even policy total = %d, want 190", l[1].Width+l[2].Width)
	}
	if diff := l[1].Width - l[2].Width; diff < 9 || diff > 11 {
		t.Errorf("even split unbalanced: %d vs %d", l[1].Width, l[2].Width)
	}

	l = mk()
	redistribute(l, budget, RedistributeProportional)
	if l[0].Width != 10 {
		t.Error("proportional policy gave width to the trimmed leaf")
	}
	if l[1].Width+l[2].Width != 190 {
		t.Errorf("proportional total = %d, want 190", l[1].Width+l[2].Width)
	}
	// Leaf 1 has 3x the load of leaf 2: it should get ~75 of the 100.
	if l[1].Width < 120 || l[1].Width > 130 {
		t.Errorf("proportional gave leaf 1 width %d, want ≈ 125", l[1].Width)
	}
}

func TestRedistributionAllTrimmed(t *testing.T) {
	l := []Leaf{
		{Width: 10, Trimmed: true, SumF: 1},
		{Width: 20, Trimmed: true, SumF: 1},
	}
	redistribute(l, 100, RedistributeEven)
	if l[0].Width+l[1].Width != 100 {
		t.Errorf("all-trimmed redistribution total = %d, want 100", l[0].Width+l[1].Width)
	}
}

func TestPartitioningProperty(t *testing.T) {
	// Random samples: width conservation + router totality always hold.
	f := func(seed uint64, widthSel uint16) bool {
		width := int(widthSel%8000) + 100
		stats := vstats.FromSample(randomSample(500, seed))
		p, err := BuildPartitioning(stats, defaultParams(width))
		if err != nil {
			return false
		}
		total := 0
		for _, l := range p.Leaves {
			if l.Width < 1 {
				return false
			}
			total += l.Width
		}
		if total > width {
			return false
		}
		return len(p.Assign) == stats.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPartitioningWorkloadOrder(t *testing.T) {
	sample := randomSample(1000, 8)
	stats := vstats.FromSample(sample)
	stats.ApplyWorkload(randomSample(200, 9))
	p, err := BuildPartitioning(stats, PartitionParams{
		Width: 2048, MinWidth: 64, CollisionC: 0.5, Order: vstats.ByFreqPerWeight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Order != vstats.ByFreqPerWeight {
		t.Error("order not recorded")
	}
	if len(p.Assign) != stats.Len() {
		t.Error("router incomplete under workload order")
	}
}
