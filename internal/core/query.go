package core

import "fmt"

// Query is the sealed sum of the supported query kinds — EdgeQuery,
// SubgraphQuery and NodeQuery (§3.1 of the paper). Every kind decomposes
// into constituent edge queries and is resolved through the batched read
// path by query.Answer / query.AnswerBatch; the unexported marker keeps the
// set closed to this package.
type Query interface {
	isQuery()
}

func (EdgeQuery) isQuery() {}

// Aggregate is the Γ(·) of an aggregate subgraph or node query.
type Aggregate int

// Supported aggregates. SUM is the paper's experimental default.
const (
	Sum Aggregate = iota
	Min
	Max
	Average
	Count
)

// String implements fmt.Stringer.
func (a Aggregate) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Average:
		return "AVERAGE"
	case Count:
		return "COUNT"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// Apply folds a slice of edge frequencies with the aggregate. An empty
// input yields 0.
func (a Aggregate) Apply(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	switch a {
	case Sum:
		s := 0.0
		for _, v := range values {
			s += v
		}
		return s
	case Min:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case Max:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case Average:
		s := 0.0
		for _, v := range values {
			s += v
		}
		return s / float64(len(values))
	case Count:
		return float64(len(values))
	default:
		panic(fmt.Sprintf("core: unknown aggregate %d", int(a)))
	}
}

// SubgraphQuery asks for the aggregate frequency behaviour of the
// constituent edges of a subgraph (a bag of edges, per §3.1).
type SubgraphQuery struct {
	Edges []EdgeQuery
	Agg   Aggregate
}

func (SubgraphQuery) isQuery() {}

// NodeQuery asks for the aggregate frequency behaviour of one source
// vertex's edges toward an explicit destination set — the vertex-centric
// special case of an aggregate subgraph query. Because every constituent
// edge shares the source vertex, the whole query routes to a single
// localized sketch and its answer carries that one partition's guarantee.
type NodeQuery struct {
	// Node is the shared source vertex.
	Node uint64
	// Out lists the destination vertices queried.
	Out []uint64
	// Agg is the aggregate Γ folded over the per-edge frequencies.
	Agg Aggregate
}

func (NodeQuery) isQuery() {}
