package core

import (
	"math/bits"
	"sort"

	"github.com/graphstream/gsketch/internal/hashutil"
)

// Router is the vertex→partition map H of the paper, stored as a flat
// open-addressing hash table with power-of-two capacity and linear probing.
// Keys and values live in separate parallel arrays so the probe loop — the
// per-edge routing lookup on the ingest hot path — walks a dense slab of
// 8-byte keys and touches the value array only on a hit. Key 0 cannot act
// as the empty-slot sentinel for itself, so it is carried in a dedicated
// side slot.
//
// The table is write-once: it is filled during sketch construction or
// deserialization and never mutated afterwards, which is what makes
// lock-free concurrent routing reads safe (see Concurrent).
type Router struct {
	keys []uint64 // 0 marks an empty slot
	vals []int32
	mask uint64
	n    int

	hasZero bool // vertex id 0, stored out of line
	zeroVal int32
}

// routerSlotBytes is the in-memory size of one table slot (8-byte key +
// 4-byte value).
const routerSlotBytes = 12

// routerMaxLoad is the numerator of the maximum load factor (x/16): the
// table grows once it is more than 13/16 ≈ 81% full, keeping linear-probe
// chains short.
const routerMaxLoad = 13

// NewRouter returns an empty router pre-sized for n entries.
func NewRouter(n int) *Router {
	capacity := 8
	for capacity*routerMaxLoad < n*16 {
		capacity <<= 1
	}
	return newRouterCap(capacity)
}

func newRouterCap(capacity int) *Router {
	if capacity&(capacity-1) != 0 {
		capacity = 1 << bits.Len(uint(capacity))
	}
	return &Router{
		keys: make([]uint64, capacity),
		vals: make([]int32, capacity),
		mask: uint64(capacity - 1),
	}
}

// buildRouter converts the partitioner's assignment map into a flat table.
// Keys are inserted in sorted order: linear-probe placement depends on
// insertion order, and a deterministic fill keeps slot layout — and thus
// serialized output — reproducible across runs despite Go's randomized map
// iteration.
func buildRouter(assign map[uint64]int32) *Router {
	keys := make([]uint64, 0, len(assign))
	for k := range assign {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	r := NewRouter(len(assign))
	for _, k := range keys {
		r.Insert(k, assign[k])
	}
	return r
}

// Insert adds or overwrites the partition index of key. val must be
// non-negative.
func (r *Router) Insert(key uint64, val int32) {
	if val < 0 {
		panic("core: negative partition index in router")
	}
	if key == 0 {
		if !r.hasZero {
			r.hasZero = true
			r.n++
		}
		r.zeroVal = val
		return
	}
	if (r.n+1)*16 > len(r.keys)*routerMaxLoad {
		r.grow()
	}
	i := hashutil.Mix64(key) & r.mask
	for {
		switch r.keys[i] {
		case 0:
			r.keys[i] = key
			r.vals[i] = val
			r.n++
			return
		case key:
			r.vals[i] = val
			return
		}
		i = (i + 1) & r.mask
	}
}

// Get returns the partition index of key and whether the key is present.
func (r *Router) Get(key uint64) (int32, bool) {
	return r.getMixed(hashutil.Mix64(key), key)
}

// getMixed is Get with the Mix64 of the key precomputed, so the scatter
// pass can share one mixing with edge-key derivation.
func (r *Router) getMixed(mixed, key uint64) (int32, bool) {
	if key == 0 {
		return r.zeroVal, r.hasZero
	}
	i := mixed & r.mask
	for {
		switch r.keys[i] {
		case key:
			return r.vals[i], true
		case 0:
			return 0, false
		}
		i = (i + 1) & r.mask
	}
}

func (r *Router) grow() {
	oldKeys, oldVals := r.keys, r.vals
	next := newRouterCap(len(oldKeys) * 2)
	next.hasZero, next.zeroVal = r.hasZero, r.zeroVal
	if next.hasZero {
		next.n = 1
	}
	for i, k := range oldKeys {
		if k != 0 {
			next.Insert(k, oldVals[i])
		}
	}
	*r = *next
}

// Len returns the number of routed vertices.
func (r *Router) Len() int { return r.n }

// Cap returns the allocated slot count.
func (r *Router) Cap() int { return len(r.keys) }

// Bytes reports the real table footprint: capacity × slot size.
func (r *Router) Bytes() int { return len(r.keys) * routerSlotBytes }

// Range calls fn for every (vertex, partition) pair in slot order (a fixed,
// deterministic order for a given insertion history; the zero vertex, if
// routed, comes first). Returning false stops the iteration.
func (r *Router) Range(fn func(key uint64, val int32) bool) {
	if r.hasZero && !fn(0, r.zeroVal) {
		return
	}
	for i, k := range r.keys {
		if k != 0 && !fn(k, r.vals[i]) {
			return
		}
	}
}
