package core

import (
	"testing"

	"github.com/graphstream/gsketch/internal/hashutil"
)

func TestRouterInsertGet(t *testing.T) {
	r := NewRouter(0)
	if _, ok := r.Get(42); ok {
		t.Fatal("empty router reports a hit")
	}
	rng := hashutil.NewRNG(7)
	want := make(map[uint64]int32)
	for i := 0; i < 10_000; i++ {
		k := rng.Uint64()
		v := int32(i % 257)
		want[k] = v
		r.Insert(k, v)
	}
	if r.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(want))
	}
	for k, v := range want {
		got, ok := r.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
	misses := 0
	for i := 0; i < 1000; i++ {
		k := rng.Uint64()
		if _, seen := want[k]; seen {
			continue
		}
		if _, ok := r.Get(k); ok {
			t.Fatalf("Get(%d) hit for unrouted key", k)
		}
		misses++
	}
	if misses == 0 {
		t.Fatal("miss probe never exercised")
	}
}

func TestRouterZeroKey(t *testing.T) {
	r := NewRouter(4)
	if _, ok := r.Get(0); ok {
		t.Fatal("zero key present in empty router")
	}
	r.Insert(0, 5)
	if v, ok := r.Get(0); !ok || v != 5 {
		t.Fatalf("Get(0) = (%d,%v), want (5,true)", v, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	r.Insert(0, 9)
	if v, _ := r.Get(0); v != 9 {
		t.Fatalf("overwrite of zero key lost: got %d", v)
	}
	if r.Len() != 1 {
		t.Fatalf("Len after overwrite = %d, want 1", r.Len())
	}
}

func TestRouterOverwrite(t *testing.T) {
	r := NewRouter(2)
	r.Insert(7, 1)
	r.Insert(7, 3)
	if v, _ := r.Get(7); v != 3 {
		t.Fatalf("overwrite lost: got %d", v)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRouterGrowKeepsEntries(t *testing.T) {
	r := newRouterCap(8)
	for i := uint64(1); i <= 1000; i++ {
		r.Insert(i, int32(i%13))
	}
	if r.Cap()&(r.Cap()-1) != 0 {
		t.Fatalf("capacity %d is not a power of two", r.Cap())
	}
	for i := uint64(1); i <= 1000; i++ {
		v, ok := r.Get(i)
		if !ok || v != int32(i%13) {
			t.Fatalf("after grow: Get(%d) = (%d,%v)", i, v, ok)
		}
	}
	// Load stays under the bound.
	if r.Len()*16 > r.Cap()*routerMaxLoad {
		t.Fatalf("load %d/%d above bound", r.Len(), r.Cap())
	}
}

func TestRouterRange(t *testing.T) {
	r := NewRouter(8)
	r.Insert(0, 2)
	for i := uint64(1); i <= 50; i++ {
		r.Insert(i*977, int32(i))
	}
	seen := make(map[uint64]int32)
	r.Range(func(k uint64, v int32) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 51 {
		t.Fatalf("Range visited %d entries, want 51", len(seen))
	}
	if seen[0] != 2 {
		t.Fatalf("zero key value %d, want 2", seen[0])
	}
	// Early termination.
	n := 0
	r.Range(func(k uint64, v int32) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("Range after stop visited %d, want 3", n)
	}
}

func TestRouterBytesReportsCapacity(t *testing.T) {
	r := NewRouter(1000)
	if r.Bytes() != r.Cap()*routerSlotBytes {
		t.Fatalf("Bytes = %d, want cap %d × %d", r.Bytes(), r.Cap(), routerSlotBytes)
	}
}
