package core

import "sync/atomic"

// Routing observability: per-shard traffic counters split by direction.
// They are the drift signal of the adaptive repartitioning subsystem — a
// partitioning built for yesterday's workload shows up here as a growing
// outlier share — and are cheap enough to keep always-on: the batch route
// passes fold one atomic add per touched shard per batch, and the
// single-edge paths one add per call.

// RouteCounts is a snapshot of routed traffic per shard in one direction
// (reads or writes).
type RouteCounts struct {
	// Partitions holds the per-partition routed hit counts, indexed like
	// Leaves().
	Partitions []int64
	// Outlier counts traffic routed to the outlier sketch (vertices absent
	// from the partitioning sample). Always 0 when the outlier sketch is
	// disabled — such traffic falls through to partition 0 and cannot be
	// told apart.
	Outlier int64
	// Total is the summed traffic across partitions and outlier.
	Total int64
}

// OutlierShare returns the fraction of routed traffic the outlier sketch
// absorbed, or 0 when nothing was routed.
func (rc RouteCounts) OutlierShare() float64 {
	if rc.Total == 0 {
		return 0
	}
	return float64(rc.Outlier) / float64(rc.Total)
}

// initRouteStats sizes the hit counters; called once at construction and
// deserialization, before the sketch is shared.
func (g *GSketch) initRouteStats() {
	n := g.NumShards()
	g.writeHits = make([]atomic.Int64, n)
	g.readHits = make([]atomic.Int64, n)
}

// addShardHits folds one batch's per-shard group sizes into a direction's
// counters.
func addShardHits(hits []atomic.Int64, shard int, n int64) {
	if n != 0 {
		hits[shard].Add(n)
	}
}

// snapshotHits copies a direction's counters into a RouteCounts.
func (g *GSketch) snapshotHits(hits []atomic.Int64) RouteCounts {
	rc := RouteCounts{Partitions: make([]int64, len(g.parts))}
	for shard := range hits {
		n := hits[shard].Load()
		if g.outlier != nil && shard == len(g.parts) {
			rc.Outlier = n
		} else if shard < len(g.parts) {
			rc.Partitions[shard] += n
		}
		rc.Total += n
	}
	return rc
}

// WriteRouteCounts snapshots the routed write (Update/UpdateBatch) traffic
// per shard since construction. Safe to call concurrently with writers.
func (g *GSketch) WriteRouteCounts() RouteCounts { return g.snapshotHits(g.writeHits) }

// ReadRouteCounts snapshots the routed query (EstimateEdge/EstimateBatch)
// traffic per shard since construction. Safe to call concurrently with
// readers.
func (g *GSketch) ReadRouteCounts() RouteCounts { return g.snapshotHits(g.readHits) }

// WriteRouteCounts forwards to the wrapped gSketch's counters (which are
// atomic, so no stripe lock is needed). The generic path has no routing and
// returns a zero snapshot.
func (c *Concurrent) WriteRouteCounts() RouteCounts {
	if c.g == nil {
		return RouteCounts{}
	}
	return c.g.WriteRouteCounts()
}

// ReadRouteCounts is the read-side counterpart of WriteRouteCounts.
func (c *Concurrent) ReadRouteCounts() RouteCounts {
	if c.g == nil {
		return RouteCounts{}
	}
	return c.g.ReadRouteCounts()
}

// RouteStatsSource is implemented by estimators that expose routed-traffic
// counters (GSketch, Concurrent, and the adapt chain's head); callers that
// may hold any Estimator assert against it.
type RouteStatsSource interface {
	WriteRouteCounts() RouteCounts
	ReadRouteCounts() RouteCounts
}

var (
	_ RouteStatsSource = (*GSketch)(nil)
	_ RouteStatsSource = (*Concurrent)(nil)
)
