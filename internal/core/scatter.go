package core

import (
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

// scatter holds the per-shard (key, count) groups of one routed batch. The
// buffers are reused across batches so steady-state batch ingestion does
// not allocate.
type scatter struct {
	keys   [][]uint64
	counts [][]int64
}

func newScatter(shards int) *scatter {
	return &scatter{
		keys:   make([][]uint64, shards),
		counts: make([][]int64, shards),
	}
}

// route groups a batch by destination shard, preserving stream order within
// each shard, and returns the batch's total stream volume. Only the
// immutable router is read, so route is safe concurrently with shard-local
// counter writes.
func (sc *scatter) route(g *GSketch, edges []stream.Edge) int64 {
	for i := range sc.keys {
		sc.keys[i] = sc.keys[i][:0]
		sc.counts[i] = sc.counts[i][:0]
	}
	var total int64
	for _, e := range edges {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		total += w
		// One Mix64 of the source serves both the routing probe and the
		// edge-key derivation.
		mixed := hashutil.Mix64(e.Src)
		shard := g.routeMixed(mixed, e.Src)
		sc.keys[shard] = append(sc.keys[shard], hashutil.EdgeKeyMixed(mixed, e.Dst))
		sc.counts[shard] = append(sc.counts[shard], w)
	}
	// One atomic add per touched shard records the batch in the routing
	// stats (the drift signal of adaptive repartitioning).
	for shard := range sc.keys {
		addShardHits(g.writeHits, shard, int64(len(sc.keys[shard])))
	}
	return total
}

// apply folds every non-empty shard group into its synopsis, in ascending
// shard order for determinism. The caller owns synchronization and the
// total-volume accounting.
func (sc *scatter) apply(g *GSketch) {
	for shard := range sc.keys {
		if len(sc.keys[shard]) > 0 {
			g.shardSynopsis(shard).UpdateBatch(sc.keys[shard], sc.counts[shard])
		}
	}
}
