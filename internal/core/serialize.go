package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/vstats"
)

// GSketch persistence. Layout (little-endian):
//
//	magic      uint32 'GSKP'
//	version    uint32
//	depth      uint64
//	order      uint64
//	total      uint64 (stream volume)
//	totalWidth uint64
//	outlierW   uint64 (0 = no outlier sketch)
//	numLeaves  uint64
//	leaves     numLeaves × {width u64, vertices u64, sumF f64, sumD f64, trimmed u8}
//	numRoutes  uint64
//	routes     numRoutes × {vertex u64, partition u32}
//	partitions numLeaves × CountMin (self-delimiting, own checksum)
//	outlier    CountMin if outlierW > 0
//
// Only CountMin-backed estimators serialize; alternative synopses are
// rejected with an error.

const (
	gskMagic = 0x47534b50 // "GSKP"
	// gskVersion 2: the row-hash range reduction changed (see
	// sketch.cmVersion), so counter cells written by version 1 are not
	// addressable by the current hash family. A single gSketch still
	// serializes as version 2, so pre-chain snapshots remain loadable
	// byte for byte.
	gskVersion = 2
	// gskChainVersion 3: a generation-chain container. The header
	// {magic, version, numGens} is followed by numGens self-delimiting
	// version-2 gSketch streams, oldest generation first (the last one is
	// the live head). ReadChain accepts both versions; ReadGSketch stays
	// strict so callers that cannot answer from a chain fail loudly.
	gskChainVersion = 3
	// gskChainMetaVersion 4: the chain container with a per-generation
	// lifecycle record — {builtAt i64 unix-seconds, compactedFrom u64,
	// reserved u64} — preceding each version-2 stream. compactedFrom counts
	// the source generations folded into this one by compaction (1 = never
	// compacted), so a restored chain keeps honest generation accounting.
	// Readers accept versions 2, 3 and 4; writers emit 4.
	gskChainMetaVersion = 4
)

// GenerationMeta is the per-generation lifecycle record of a version-4
// chain container.
type GenerationMeta struct {
	// BuiltAt is the generation's build time (unix seconds; 0 = unknown,
	// e.g. a generation restored from a pre-version-4 stream).
	BuiltAt int64
	// CompactedFrom counts the source generations this one absorbed via
	// compaction. 1 means the generation was built by a plain rotation and
	// never compacted; k > 1 means k former generations were folded into it.
	CompactedFrom int
}

// withDefaults normalizes a zero meta to the never-compacted shape.
func (m GenerationMeta) withDefaults() GenerationMeta {
	if m.CompactedFrom < 1 {
		m.CompactedFrom = 1
	}
	return m
}

// WriteTo serializes the gSketch: layout, router and all counter state.
func (g *GSketch) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	wr := func(v any) error {
		err := binary.Write(bw, binary.LittleEndian, v)
		if err == nil {
			n += int64(binary.Size(v))
		}
		return err
	}

	// Reject non-CountMin synopses up front.
	cms := make([]*sketch.CountMin, len(g.parts))
	for i, p := range g.parts {
		cm, ok := p.(*sketch.CountMin)
		if !ok {
			return 0, fmt.Errorf("core: only CountMin-backed gSketch serializes (partition %d is %T)", i, p)
		}
		cms[i] = cm
	}
	var outlierCM *sketch.CountMin
	if g.outlier != nil {
		cm, ok := g.outlier.(*sketch.CountMin)
		if !ok {
			return 0, fmt.Errorf("core: only CountMin-backed gSketch serializes (outlier is %T)", g.outlier)
		}
		outlierCM = cm
	}

	hdr := []any{
		uint32(gskMagic), uint32(gskVersion),
		uint64(g.cfg.Depth), uint64(g.order), uint64(g.total.Load()),
		uint64(g.totalWidth), uint64(g.outlierWidth), uint64(len(g.leaves)),
	}
	for _, v := range hdr {
		if err := wr(v); err != nil {
			return n, err
		}
	}
	for _, l := range g.leaves {
		t := uint8(0)
		if l.Trimmed {
			t = 1
		}
		for _, v := range []any{uint64(l.Width), uint64(l.Vertices),
			math.Float64bits(l.SumF), math.Float64bits(l.SumD), t} {
			if err := wr(v); err != nil {
				return n, err
			}
		}
	}
	if err := wr(uint64(g.router.Len())); err != nil {
		return n, err
	}
	var routeErr error
	g.router.Range(func(vertex uint64, part int32) bool {
		if routeErr = wr(vertex); routeErr != nil {
			return false
		}
		routeErr = wr(uint32(part))
		return routeErr == nil
	})
	if routeErr != nil {
		return n, routeErr
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	for _, cm := range cms {
		k, err := cm.WriteTo(w)
		n += k
		if err != nil {
			return n, err
		}
	}
	if outlierCM != nil {
		k, err := outlierCM.WriteTo(w)
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Save serializes an estimator to w. Estimators with a serialized form —
// a bare *GSketch, or a *Concurrent wrapper (snapshotted under its striped
// read locks so concurrent readers proceed and writers wait) — implement
// io.WriterTo; anything else is rejected with an error. The output is
// exactly GSketch.WriteTo's format, so ReadGSketch loads it regardless of
// which wrapper saved it.
func Save(est Estimator, w io.Writer) (int64, error) {
	wt, ok := est.(io.WriterTo)
	if !ok {
		return 0, fmt.Errorf("core: estimator %T does not serialize", est)
	}
	return wt.WriteTo(w)
}

// WriteChain serializes a generation chain: a version-3 container header
// followed by every generation's full version-2 stream, oldest first. Each
// gen is an io.WriterTo producing GSketch.WriteTo's format (a bare *GSketch
// or a *Concurrent wrapper, which snapshots under its stripe read locks).
//
// Deprecated: WriteChainMeta writes the version-4 container carrying
// per-generation lifecycle records. WriteChain stays as the version-3
// writer so back-compat tests can produce genuine version-3 streams.
func WriteChain(w io.Writer, gens []io.WriterTo) (int64, error) {
	if len(gens) == 0 {
		return 0, fmt.Errorf("core: empty generation chain")
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], gskMagic)
	binary.LittleEndian.PutUint32(hdr[4:], gskChainVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(gens)))
	k, err := w.Write(hdr[:])
	n := int64(k)
	if err != nil {
		return n, err
	}
	for i, gen := range gens {
		k, err := gen.WriteTo(w)
		n += k
		if err != nil {
			return n, fmt.Errorf("core: chain generation %d: %w", i, err)
		}
	}
	return n, nil
}

// WriteChainMeta serializes a generation chain as a version-4 container: the
// {magic, version, numGens} header, then for each generation (oldest first)
// its 24-byte lifecycle record followed by its full version-2 stream. metas
// must be nil (all defaults) or match gens element-wise.
func WriteChainMeta(w io.Writer, gens []io.WriterTo, metas []GenerationMeta) (int64, error) {
	if len(gens) == 0 {
		return 0, fmt.Errorf("core: empty generation chain")
	}
	if metas != nil && len(metas) != len(gens) {
		return 0, fmt.Errorf("core: %d generations but %d metadata records", len(gens), len(metas))
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], gskMagic)
	binary.LittleEndian.PutUint32(hdr[4:], gskChainMetaVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(gens)))
	k, err := w.Write(hdr[:])
	n := int64(k)
	if err != nil {
		return n, err
	}
	for i, gen := range gens {
		var m GenerationMeta
		if metas != nil {
			m = metas[i]
		}
		m = m.withDefaults()
		var rec [24]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(m.BuiltAt))
		binary.LittleEndian.PutUint64(rec[8:], uint64(m.CompactedFrom))
		// rec[16:24] is reserved (written zero, ignored on read).
		k, err := w.Write(rec[:])
		n += int64(k)
		if err != nil {
			return n, fmt.Errorf("core: chain generation %d meta: %w", i, err)
		}
		wk, err := gen.WriteTo(w)
		n += wk
		if err != nil {
			return n, fmt.Errorf("core: chain generation %d: %w", i, err)
		}
	}
	return n, nil
}

// ReadChain deserializes a generation chain written by WriteChain or
// WriteChainMeta — or a plain pre-chain gSketch stream written by WriteTo,
// which loads as a single-generation chain. The returned slice is
// oldest-first; the last element is the generation that was live when the
// snapshot was taken. Callers that also want the lifecycle records use
// ReadChainMeta.
func ReadChain(r io.Reader) ([]*GSketch, error) {
	gens, _, err := ReadChainMeta(r)
	return gens, err
}

// ReadChainMeta is ReadChain plus the per-generation lifecycle records.
// Version-2 and version-3 streams carry no records, so their metas come
// back defaulted (BuiltAt 0, CompactedFrom 1); version-4 streams return
// what WriteChainMeta stored. len(metas) always equals len(gens).
func ReadChainMeta(r io.Reader) ([]*GSketch, []GenerationMeta, error) {
	br := bufio.NewReader(r)
	hdr, err := br.Peek(8)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", sketch.ErrCorrupt, err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != gskMagic {
		return nil, nil, fmt.Errorf("%w: bad gSketch magic %#x", sketch.ErrCorrupt, magic)
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	switch version {
	case gskVersion:
		g, err := readGSketch(br)
		if err != nil {
			return nil, nil, err
		}
		return []*GSketch{g}, []GenerationMeta{{CompactedFrom: 1}}, nil
	case gskChainVersion, gskChainMetaVersion:
		if _, err := br.Discard(8); err != nil { // consume the peeked header
			return nil, nil, fmt.Errorf("%w: %v", sketch.ErrCorrupt, err)
		}
		var numGens uint64
		if err := binary.Read(br, binary.LittleEndian, &numGens); err != nil {
			return nil, nil, fmt.Errorf("%w: chain header: %v", sketch.ErrCorrupt, err)
		}
		const maxGens = 1 << 10
		if numGens == 0 || numGens > maxGens {
			return nil, nil, fmt.Errorf("%w: implausible generation count %d", sketch.ErrCorrupt, numGens)
		}
		gens := make([]*GSketch, numGens)
		metas := make([]GenerationMeta, numGens)
		for i := range gens {
			if version == gskChainMetaVersion {
				var rec [24]byte
				if _, err := io.ReadFull(br, rec[:]); err != nil {
					return nil, nil, fmt.Errorf("%w: chain generation %d meta: %v", sketch.ErrCorrupt, i, err)
				}
				metas[i] = GenerationMeta{
					BuiltAt:       int64(binary.LittleEndian.Uint64(rec[0:])),
					CompactedFrom: int(binary.LittleEndian.Uint64(rec[8:])),
				}
				const maxCompactedFrom = 1 << 20
				if metas[i].CompactedFrom < 1 || metas[i].CompactedFrom > maxCompactedFrom {
					return nil, nil, fmt.Errorf("%w: chain generation %d: implausible compaction count %d", sketch.ErrCorrupt, i, metas[i].CompactedFrom)
				}
			} else {
				metas[i] = GenerationMeta{CompactedFrom: 1}
			}
			// Every generation parse shares br: bufio.NewReader over an
			// existing *bufio.Reader returns it unchanged, so no generation
			// over-reads into the next one's bytes.
			g, err := readGSketch(br)
			if err != nil {
				return nil, nil, fmt.Errorf("chain generation %d: %w", i, err)
			}
			gens[i] = g
		}
		return gens, metas, nil
	default:
		return nil, nil, fmt.Errorf("%w: unsupported gSketch version %d", sketch.ErrCorrupt, version)
	}
}

// ReadGSketch deserializes a gSketch written by WriteTo.
func ReadGSketch(r io.Reader) (*GSketch, error) {
	return readGSketch(bufio.NewReader(r))
}

// readGSketch parses one full version-2 gSketch stream (including magic and
// version) from a shared buffered reader, leaving the reader positioned at
// the first byte after the stream — the property chain parsing relies on.
func readGSketch(br *bufio.Reader) (*GSketch, error) {
	rd := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic, version uint32
	if err := rd(&magic); err != nil {
		return nil, fmt.Errorf("%w: %v", sketch.ErrCorrupt, err)
	}
	if magic != gskMagic {
		return nil, fmt.Errorf("%w: bad gSketch magic %#x", sketch.ErrCorrupt, magic)
	}
	if err := rd(&version); err != nil {
		return nil, fmt.Errorf("%w: %v", sketch.ErrCorrupt, err)
	}
	if version != gskVersion {
		return nil, fmt.Errorf("%w: unsupported gSketch version %d", sketch.ErrCorrupt, version)
	}
	var depth, order, total, totalWidth, outlierW, numLeaves uint64
	for _, p := range []*uint64{&depth, &order, &total, &totalWidth, &outlierW, &numLeaves} {
		if err := rd(p); err != nil {
			return nil, fmt.Errorf("%w: header: %v", sketch.ErrCorrupt, err)
		}
	}
	const maxLeaves = 1 << 24
	if numLeaves == 0 || numLeaves > maxLeaves {
		return nil, fmt.Errorf("%w: implausible leaf count %d", sketch.ErrCorrupt, numLeaves)
	}
	g := &GSketch{
		cfg:          Config{Depth: int(depth)}.withDefaults(),
		order:        vstats.SortOrder(order),
		totalWidth:   int(totalWidth),
		outlierWidth: int(outlierW),
		leaves:       make([]Leaf, numLeaves),
	}
	g.total.Store(int64(total))
	g.cfg.TotalWidth = int(totalWidth)
	for i := range g.leaves {
		var width, vertices, fBits, dBits uint64
		var trimmed uint8
		for _, p := range []*uint64{&width, &vertices, &fBits, &dBits} {
			if err := rd(p); err != nil {
				return nil, fmt.Errorf("%w: leaf %d: %v", sketch.ErrCorrupt, i, err)
			}
		}
		if err := rd(&trimmed); err != nil {
			return nil, fmt.Errorf("%w: leaf %d: %v", sketch.ErrCorrupt, i, err)
		}
		g.leaves[i] = Leaf{
			Width:    int(width),
			Vertices: int(vertices),
			SumF:     math.Float64frombits(fBits),
			SumD:     math.Float64frombits(dBits),
			Trimmed:  trimmed != 0,
		}
	}
	var numRoutes uint64
	if err := rd(&numRoutes); err != nil {
		return nil, fmt.Errorf("%w: routes: %v", sketch.ErrCorrupt, err)
	}
	const maxRoutes = 1 << 32
	if numRoutes > maxRoutes {
		return nil, fmt.Errorf("%w: implausible route count %d", sketch.ErrCorrupt, numRoutes)
	}
	g.router = NewRouter(int(numRoutes))
	for i := uint64(0); i < numRoutes; i++ {
		var vertex uint64
		var part uint32
		if err := rd(&vertex); err != nil {
			return nil, fmt.Errorf("%w: route %d: %v", sketch.ErrCorrupt, i, err)
		}
		if err := rd(&part); err != nil {
			return nil, fmt.Errorf("%w: route %d: %v", sketch.ErrCorrupt, i, err)
		}
		if uint64(part) >= numLeaves {
			return nil, fmt.Errorf("%w: route %d targets nonexistent partition %d", sketch.ErrCorrupt, i, part)
		}
		g.router.Insert(vertex, int32(part))
	}
	g.parts = make([]sketch.Synopsis, numLeaves)
	for i := range g.parts {
		cm, err := sketch.ReadCountMin(br)
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", i, err)
		}
		if cm.Width() != g.leaves[i].Width {
			return nil, fmt.Errorf("%w: partition %d width %d does not match leaf %d", sketch.ErrCorrupt, i, cm.Width(), g.leaves[i].Width)
		}
		g.parts[i] = cm
	}
	if outlierW > 0 {
		cm, err := sketch.ReadCountMin(br)
		if err != nil {
			return nil, fmt.Errorf("outlier: %w", err)
		}
		g.outlier = cm
	}
	g.initRouteStats()
	return g, nil
}
