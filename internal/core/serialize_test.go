package core

import (
	"bytes"
	"testing"

	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

func TestGSketchSerializeRoundTrip(t *testing.T) {
	edges := testStream(10000, 20)
	g, err := BuildGSketch(Config{TotalBytes: 64 << 10, Seed: 9}, edges[:1000], nil)
	if err != nil {
		t.Fatal(err)
	}
	Populate(g, edges)

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.Count() != g.Count() {
		t.Errorf("count %d != %d", got.Count(), g.Count())
	}
	if got.NumPartitions() != g.NumPartitions() {
		t.Errorf("partitions %d != %d", got.NumPartitions(), g.NumPartitions())
	}
	if got.OutlierWidth() != g.OutlierWidth() {
		t.Errorf("outlier width %d != %d", got.OutlierWidth(), g.OutlierWidth())
	}
	if got.Order() != g.Order() {
		t.Errorf("order %v != %v", got.Order(), g.Order())
	}
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	exact.RangeEdges(func(src, dst uint64, _ int64) bool {
		if got.EstimateEdge(src, dst) != g.EstimateEdge(src, dst) {
			t.Fatalf("estimate mismatch on (%d,%d)", src, dst)
		}
		return true
	})
	// The loaded sketch keeps working for updates.
	got.Update(stream.Edge{Src: 1, Dst: 2, Weight: 5})
	if got.Count() != g.Count()+5 {
		t.Error("loaded sketch does not accept updates")
	}
}

func TestGSketchSerializeCorruption(t *testing.T) {
	g, err := BuildGSketch(Config{TotalBytes: 16 << 10, Seed: 9}, testStream(500, 21), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := ReadGSketch(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncation not detected")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if _, err := ReadGSketch(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic not detected")
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)-10] ^= 0xFF // inside the last CountMin's checksummed region
	if _, err := ReadGSketch(bytes.NewReader(flip)); err == nil {
		t.Error("cell corruption not detected")
	}
	if _, err := ReadGSketch(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestGSketchSerializeRejectsNonCountMin(t *testing.T) {
	cfg := Config{
		TotalBytes: 16 << 10,
		Seed:       9,
		Factory: func(w, d int, seed uint64) (sketch.Synopsis, error) {
			return sketch.NewCountSketch(w, d, seed)
		},
	}
	g, err := BuildGSketch(cfg, testStream(500, 22), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err == nil {
		t.Error("CountSketch-backed gSketch serialized; only CountMin is supported")
	}
}

func TestConcurrentWrapper(t *testing.T) {
	edges := testStream(5000, 23)
	g, err := BuildGSketch(Config{TotalBytes: 32 << 10, Seed: 9}, edges[:500], nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(g)

	done := make(chan struct{})
	go func() {
		defer close(done)
		c.UpdateBatch(edges[:2500])
		for _, e := range edges[2500:] {
			c.Update(e)
		}
	}()
	// Concurrent readers while the writer runs.
	for i := 0; i < 1000; i++ {
		_ = c.EstimateEdge(uint64(i%128), uint64(i%512))
		_ = c.Count()
	}
	<-done
	if c.Count() != int64(len(edges)) {
		t.Errorf("count = %d, want %d", c.Count(), len(edges))
	}
	if c.MemoryBytes() <= 0 {
		t.Error("memory unreported")
	}
	if c.Unwrap() != g {
		t.Error("unwrap identity lost")
	}
}
