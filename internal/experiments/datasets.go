package experiments

import (
	"fmt"
	"sync"

	"github.com/graphstream/gsketch/internal/graphgen"
	"github.com/graphstream/gsketch/internal/stream"
)

// Profile scales the reproduction. Paper-scale streams (10^9 edges) need
// hours; Repro preserves every N/w ratio of the paper at roughly 1/4 to
// 1/250 linear scale so the plots keep their shapes; Small is for tests.
type Profile struct {
	Name string

	// DBLP-like co-authorship stream.
	DBLPAuthors int
	DBLPPairs   int // approximate ordered-pair target
	DBLPGrid    []int
	DBLPFixed   int

	// IP-attack stream.
	IPAttackers int
	IPTargets   int
	IPPackets   int
	IPGrid      []int
	IPFixed     int

	// R-MAT (GTGraph) stream.
	RMATScale int
	RMATEdges int
	RMATGrid  []int
	RMATFixed int

	// SampleFraction is the reservoir data-sample size as a fraction of
	// the stream (DBLP and RMAT; the IP dataset samples its first day,
	// like the paper). DBLPSampleFraction overrides it for DBLP when
	// nonzero: scaled-down streams compress per-author activity, so the
	// per-vertex sampling rate must rise to preserve the paper's
	// heavy-band degree saturation (see EXPERIMENTS.md).
	SampleFraction     float64
	DBLPSampleFraction float64
	// WorkloadFraction sizes the §6.4 workload sample relative to the
	// stream.
	WorkloadFraction float64
	// QuerySize is |Qe| and |Qg| (paper: 10,000).
	QuerySize int
	// SubgraphEdges is the number of edges per subgraph query (paper: 10).
	SubgraphEdges int
	// Seed drives every generator and sampler in the profile.
	Seed uint64
}

// Repro is the default profile: a downscale of the paper's setup chosen so
// the collision regimes (stream volume and distinct-edge counts relative
// to sketch width) match the paper's across each memory grid, which is
// what preserves every plot's shape (DESIGN.md §4).
var Repro = Profile{
	Name: "repro",

	// Paper: 595,406 authors, 1,954,776 pairs, 100K-edge sample (5%);
	// 512K–8M bytes. Ours: ~950K pairs with a 10% sample (≈ the paper's
	// absolute sample size), grid positioned at the same N/width ratios.
	DBLPAuthors: 30_000,
	DBLPPairs:   1_050_000,
	DBLPGrid:    []int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10},
	DBLPFixed:   64 << 10,

	// Paper: 3,781,471 packets over 5 days, first day as sample;
	// 512K–8M. Ours: 1.2M packets, first day ≈ 20%.
	IPAttackers: 6_000,
	IPTargets:   40_000,
	IPPackets:   1_200_000,
	IPGrid:      []int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10},
	IPFixed:     128 << 10,

	// Paper: GTGraph R-MAT, 10^8 vertices, 10^9 edges; 128M–2G. Ours:
	// scale-16 R-MAT with 4M arrivals (burst overlay restores paper-scale
	// edge multiplicity; see graphgen.RMATConfig.BurstFraction).
	RMATScale: 16,
	RMATEdges: 4_000_000,
	RMATGrid:  []int{512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20},
	RMATFixed: 2 << 20,

	SampleFraction:     0.10,
	DBLPSampleFraction: 0.20,
	WorkloadFraction:   0.20,
	QuerySize:          10_000,
	SubgraphEdges:      10,
	Seed:               20111130, // the paper's arXiv date
}

// Small is a fast-test profile (seconds end to end) in the same collision
// regime as Repro.
var Small = Profile{
	Name: "small",

	DBLPAuthors: 6_000,
	DBLPPairs:   210_000,
	DBLPGrid:    []int{8 << 10, 16 << 10, 32 << 10},
	DBLPFixed:   16 << 10,

	IPAttackers: 2_000,
	IPTargets:   12_000,
	IPPackets:   300_000,
	IPGrid:      []int{8 << 10, 16 << 10, 32 << 10},
	IPFixed:     16 << 10,

	RMATScale: 12,
	RMATEdges: 150_000,
	RMATGrid:  []int{8 << 10, 16 << 10, 32 << 10},
	RMATFixed: 16 << 10,

	SampleFraction:   0.20,
	WorkloadFraction: 0.20,
	QuerySize:        2_000,
	SubgraphEdges:    10,
	Seed:             20111130,
}

// Dataset is one generated stream with its sampling artifacts and the
// memory grid its experiments sweep.
type Dataset struct {
	Name string
	// Edges is the full stream in arrival order.
	Edges []stream.Edge
	// DataSample is the partitioning sample (reservoir, or first day for
	// the IP dataset).
	DataSample []stream.Edge
	// Exact is the ground-truth oracle over the full stream.
	Exact *stream.ExactCounter
	// MemoryGrid and FixedMemory are the sweep points (bytes).
	MemoryGrid  []int
	FixedMemory int
	// WorkloadSize is the §6.4 workload-sample size.
	WorkloadSize int
	// QuerySize is |Qe| / |Qg|.
	QuerySize int
	// SubgraphEdges is the per-subgraph edge count.
	SubgraphEdges int
	// Seed namespaces every derived seed for this dataset.
	Seed uint64
}

// Registry builds and caches datasets for one profile. Safe for concurrent
// use.
type Registry struct {
	Profile Profile

	mu    sync.Mutex
	cache map[string]*Dataset
}

// NewRegistry returns an empty registry over the profile.
func NewRegistry(p Profile) *Registry {
	return &Registry{Profile: p, cache: make(map[string]*Dataset)}
}

func (r *Registry) get(name string, build func() (*Dataset, error)) (*Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ds, ok := r.cache[name]; ok {
		return ds, nil
	}
	ds, err := build()
	if err != nil {
		return nil, err
	}
	r.cache[name] = ds
	return ds, nil
}

// DBLP returns the DBLP-like co-authorship dataset.
func (r *Registry) DBLP() (*Dataset, error) {
	return r.get("dblp", func() (*Dataset, error) {
		p := r.Profile
		cfg := graphgen.DefaultDBLP(p.DBLPAuthors, p.DBLPPairs, p.Seed+1)
		edges, err := cfg.Generate()
		if err != nil {
			return nil, fmt.Errorf("experiments: dblp: %w", err)
		}
		frac := p.DBLPSampleFraction
		if frac == 0 {
			frac = p.SampleFraction
		}
		return r.finish("DBLP", edges, reservoirSample(edges, frac, p.Seed+2),
			p.DBLPGrid, p.DBLPFixed)
	})
}

// IPAttack returns the IP-attack dataset. Its data sample is the first
// day's prefix, as in the paper.
func (r *Registry) IPAttack() (*Dataset, error) {
	return r.get("ipattack", func() (*Dataset, error) {
		p := r.Profile
		cfg := graphgen.DefaultIPAttack(p.IPAttackers, p.IPTargets, p.IPPackets, p.Seed+3)
		edges, err := cfg.Generate()
		if err != nil {
			return nil, fmt.Errorf("experiments: ipattack: %w", err)
		}
		sample := graphgen.FirstDay(edges)
		return r.finish("IPAttack", edges, sample, p.IPGrid, p.IPFixed)
	})
}

// RMAT returns the GTGraph-substitute R-MAT dataset.
func (r *Registry) RMAT() (*Dataset, error) {
	return r.get("rmat", func() (*Dataset, error) {
		p := r.Profile
		cfg := graphgen.DefaultRMAT(p.RMATScale, p.RMATEdges, p.Seed+4)
		edges, err := cfg.Generate()
		if err != nil {
			return nil, fmt.Errorf("experiments: rmat: %w", err)
		}
		return r.finish("GTGraph", edges, reservoirSample(edges, p.SampleFraction, p.Seed+5),
			p.RMATGrid, p.RMATFixed)
	})
}

// All returns the three datasets in paper order (DBLP, IPAttack, GTGraph).
func (r *Registry) All() ([]*Dataset, error) {
	dblp, err := r.DBLP()
	if err != nil {
		return nil, err
	}
	ip, err := r.IPAttack()
	if err != nil {
		return nil, err
	}
	rmat, err := r.RMAT()
	if err != nil {
		return nil, err
	}
	return []*Dataset{dblp, ip, rmat}, nil
}

func (r *Registry) finish(name string, edges, sample []stream.Edge, grid []int, fixed int) (*Dataset, error) {
	p := r.Profile
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	workload := int(float64(len(edges)) * p.WorkloadFraction)
	if workload < 1 {
		workload = 1
	}
	return &Dataset{
		Name:          name,
		Edges:         edges,
		DataSample:    sample,
		Exact:         exact,
		MemoryGrid:    grid,
		FixedMemory:   fixed,
		WorkloadSize:  workload,
		QuerySize:     p.QuerySize,
		SubgraphEdges: p.SubgraphEdges,
		Seed:          p.Seed ^ (uint64(len(name)) << 32),
	}, nil
}

func reservoirSample(edges []stream.Edge, fraction float64, seed uint64) []stream.Edge {
	n := int(float64(len(edges)) * fraction)
	if n < 1 {
		n = 1
	}
	res := stream.NewReservoir(n, seed)
	res.ObserveAll(edges)
	out := make([]stream.Edge, len(res.Sample()))
	copy(out, res.Sample())
	return out
}
