package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := Table{
		ID:      "t1",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## t1 — demo", "long-column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := csv.String(); got != "a,long-column\n1,2\n333,4\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int]string{
		512:       "512",
		1 << 10:   "1K",
		512 << 10: "512K",
		2 << 20:   "2M",
		1 << 30:   "1G",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryCachesDatasets(t *testing.T) {
	reg := NewRegistry(Small)
	a, err := reg.DBLP()
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.DBLP()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("registry rebuilt a cached dataset")
	}
	if len(a.Edges) == 0 || len(a.DataSample) == 0 || a.Exact == nil {
		t.Error("dataset incomplete")
	}
	if a.Exact.Arrivals() != int64(len(a.Edges)) {
		t.Error("exact counter does not cover the stream")
	}
}

func TestAllDatasetsBuild(t *testing.T) {
	reg := NewRegistry(Small)
	dss, err := reg.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 3 {
		t.Fatalf("got %d datasets", len(dss))
	}
	names := []string{"DBLP", "IPAttack", "GTGraph"}
	for i, ds := range dss {
		if ds.Name != names[i] {
			t.Errorf("dataset %d name %q, want %q", i, ds.Name, names[i])
		}
		if len(ds.MemoryGrid) == 0 || ds.FixedMemory == 0 {
			t.Errorf("%s: memory grid missing", ds.Name)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := AllExperiments()
	if len(all) != 13 {
		t.Fatalf("got %d experiments, want 13 (varratio, fig4..fig14, table1)", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if _, ok := FindExperiment("fig4"); !ok {
		t.Error("fig4 not found")
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestVarianceRatioExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	h := NewHarness(NewRegistry(Small))
	tables, err := h.VarianceRatio()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("unexpected shape: %+v", tables)
	}
}

func TestEdgeSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	reg := NewRegistry(Small)
	ds, err := reg.RMAT()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := RunEdgeSweep(ds, EdgeSweepOptions{MemoryGrid: []int{16 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points", len(pts))
	}
	p := pts[0]
	if p.Global.Total == 0 || p.GSketch.Total == 0 {
		t.Fatal("no queries evaluated")
	}
	// The headline claim on the RMAT stand-in.
	if p.GSketch.AvgRelErr >= p.Global.AvgRelErr {
		t.Errorf("gSketch ARE %.2f not below Global %.2f", p.GSketch.AvgRelErr, p.Global.AvgRelErr)
	}
	if p.Partitions < 2 {
		t.Errorf("only %d partitions", p.Partitions)
	}
	if p.TcGSketch <= 0 || p.TpGlobal <= 0 {
		t.Error("timings not recorded")
	}
}

func TestOutlierSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	reg := NewRegistry(Small)
	ds, err := reg.RMAT()
	if err != nil {
		t.Fatal(err)
	}
	ds2 := *ds
	ds2.MemoryGrid = []int{16 << 10}
	pts, err := RunOutlierSweep(&ds2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Overall.Total == 0 {
		t.Error("no queries evaluated")
	}
}
