package experiments

import (
	"fmt"
	"sync"

	"github.com/graphstream/gsketch/internal/stream"
)

// DefaultAlpha is the workload skewness of Figures 7–9.
const DefaultAlpha = 1.5

// AlphaGrid is the skewness sweep of Figures 10–12.
var AlphaGrid = []float64{1.2, 1.4, 1.6, 1.8, 2.0}

// Harness runs experiments over one dataset registry, memoizing the
// expensive sweeps that several figures share (e.g. Figures 4, 5, 13 and
// 14 all read the scenario-A edge sweep).
type Harness struct {
	Reg *Registry

	mu        sync.Mutex
	edgeA     map[string][]SweepPoint
	edgeB     map[string][]SweepPoint
	subA      map[string][]SubgraphSweepPoint
	subB      map[string][]SubgraphSweepPoint
	alphaEdge map[string][]AlphaPoint
	alphaSub  map[string][]AlphaPoint
}

// NewHarness wraps a registry.
func NewHarness(reg *Registry) *Harness {
	return &Harness{
		Reg:       reg,
		edgeA:     make(map[string][]SweepPoint),
		edgeB:     make(map[string][]SweepPoint),
		subA:      make(map[string][]SubgraphSweepPoint),
		subB:      make(map[string][]SubgraphSweepPoint),
		alphaEdge: make(map[string][]AlphaPoint),
		alphaSub:  make(map[string][]AlphaPoint),
	}
}

func (h *Harness) edgeSweep(ds *Dataset, withWorkload bool) ([]SweepPoint, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cache := h.edgeA
	if withWorkload {
		cache = h.edgeB
	}
	if pts, ok := cache[ds.Name]; ok {
		return pts, nil
	}
	pts, err := RunEdgeSweep(ds, EdgeSweepOptions{WithWorkload: withWorkload, Alpha: DefaultAlpha})
	if err != nil {
		return nil, err
	}
	cache[ds.Name] = pts
	return pts, nil
}

func (h *Harness) subSweep(ds *Dataset, withWorkload bool) ([]SubgraphSweepPoint, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cache := h.subA
	if withWorkload {
		cache = h.subB
	}
	if pts, ok := cache[ds.Name]; ok {
		return pts, nil
	}
	pts, err := RunSubgraphSweep(ds, EdgeSweepOptions{WithWorkload: withWorkload, Alpha: DefaultAlpha})
	if err != nil {
		return nil, err
	}
	cache[ds.Name] = pts
	return pts, nil
}

func (h *Harness) alphaSweep(ds *Dataset, subgraph bool) ([]AlphaPoint, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cache := h.alphaEdge
	if subgraph {
		cache = h.alphaSub
	}
	if pts, ok := cache[ds.Name]; ok {
		return pts, nil
	}
	pts, err := RunAlphaSweep(ds, AlphaGrid, 0, subgraph)
	if err != nil {
		return nil, err
	}
	cache[ds.Name] = pts
	return pts, nil
}

func (h *Harness) scaleNote() string {
	return fmt.Sprintf("profile %q: synthetic stand-ins at reduced scale; see DESIGN.md §4", h.Reg.Profile.Name)
}

// VarianceRatio reproduces the §6.1 in-text statistics σ_G, σ_V and their
// ratio for all three datasets (paper: 3.674, 10.107, 4.156).
func (h *Harness) VarianceRatio() ([]Table, error) {
	dss, err := h.Reg.All()
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "varratio",
		Title:   "Edge-frequency variance ratio σ_G/σ_V (§6.1)",
		Columns: []string{"dataset", "distinct-edges", "sources", "sigma_G", "sigma_V", "ratio"},
		Notes:   []string{h.scaleNote(), "paper ratios: DBLP 3.674, IP Attack 10.107, GTGraph 4.156"},
	}
	for _, ds := range dss {
		st := stream.ComputeVarianceStats(ds.Exact)
		t.AddRow(ds.Name, fmt.Sprint(st.DistinctEdges), fmt.Sprint(st.Sources),
			fmtF(st.GlobalVariance), fmtF(st.LocalVariance), fmtF(st.Ratio))
	}
	return []Table{t}, nil
}

// panelLetter gives the paper's panel suffix for dataset i (a, b, c).
func panelLetter(i int) string { return string(rune('a' + i)) }

// Fig4 — average relative error of edge queries vs memory, scenario A.
func (h *Harness) Fig4() ([]Table, error) {
	return h.edgeAccuracyTables("fig4", "Avg relative error of edge queries Qe vs memory (data sample)", false, true)
}

// Fig5 — number of effective queries vs memory, scenario A.
func (h *Harness) Fig5() ([]Table, error) {
	return h.edgeAccuracyTables("fig5", "Number of effective queries (G0=5) for Qe vs memory (data sample)", false, false)
}

// Fig7 — average relative error vs memory with data+workload samples
// (α = 1.5).
func (h *Harness) Fig7() ([]Table, error) {
	return h.edgeAccuracyTables("fig7", "Avg relative error of edge queries Qe vs memory (data+workload, α=1.5)", true, true)
}

// Fig8 — effective queries vs memory with data+workload samples (α = 1.5).
func (h *Harness) Fig8() ([]Table, error) {
	return h.edgeAccuracyTables("fig8", "Number of effective queries (G0=5) for Qe vs memory (data+workload, α=1.5)", true, false)
}

func (h *Harness) edgeAccuracyTables(id, title string, withWorkload, are bool) ([]Table, error) {
	dss, err := h.Reg.All()
	if err != nil {
		return nil, err
	}
	var tables []Table
	for i, ds := range dss {
		pts, err := h.edgeSweep(ds, withWorkload)
		if err != nil {
			return nil, err
		}
		t := Table{
			ID:    fmt.Sprintf("%s%s", id, panelLetter(i)),
			Title: fmt.Sprintf("%s — %s", title, ds.Name),
			Notes: []string{h.scaleNote()},
		}
		if are {
			t.Columns = []string{"memory", "GlobalSketch-ARE", "gSketch-ARE", "improvement"}
			for _, p := range pts {
				t.AddRow(fmtBytes(p.Bytes), fmtF(p.Global.AvgRelErr), fmtF(p.GSketch.AvgRelErr),
					improvement(p.Global.AvgRelErr, p.GSketch.AvgRelErr))
			}
		} else {
			t.Columns = []string{"memory", "GlobalSketch-effective", "gSketch-effective"}
			for _, p := range pts {
				t.AddRow(fmtBytes(p.Bytes), fmt.Sprint(p.Global.Effective), fmt.Sprint(p.GSketch.Effective))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig6 — aggregate subgraph queries on DBLP, scenario A: (a) ARE,
// (b) effective queries.
func (h *Harness) Fig6() ([]Table, error) {
	return h.subgraphTables("fig6", "Subgraph queries Qg vs memory (data sample) — DBLP", false)
}

// Fig9 — aggregate subgraph queries on DBLP, scenario B (α = 1.5).
func (h *Harness) Fig9() ([]Table, error) {
	return h.subgraphTables("fig9", "Subgraph queries Qg vs memory (data+workload, α=1.5) — DBLP", true)
}

func (h *Harness) subgraphTables(id, title string, withWorkload bool) ([]Table, error) {
	ds, err := h.Reg.DBLP()
	if err != nil {
		return nil, err
	}
	pts, err := h.subSweep(ds, withWorkload)
	if err != nil {
		return nil, err
	}
	are := Table{
		ID:      id + "a",
		Title:   title + " — avg relative error",
		Columns: []string{"memory", "GlobalSketch-ARE", "gSketch-ARE", "improvement"},
		Notes:   []string{h.scaleNote()},
	}
	eff := Table{
		ID:      id + "b",
		Title:   title + " — effective queries (G0=5)",
		Columns: []string{"memory", "GlobalSketch-effective", "gSketch-effective"},
		Notes:   []string{h.scaleNote()},
	}
	for _, p := range pts {
		are.AddRow(fmtBytes(p.Bytes), fmtF(p.Global.AvgRelErr), fmtF(p.GSketch.AvgRelErr),
			improvement(p.Global.AvgRelErr, p.GSketch.AvgRelErr))
		eff.AddRow(fmtBytes(p.Bytes), fmt.Sprint(p.Global.Effective), fmt.Sprint(p.GSketch.Effective))
	}
	return []Table{are, eff}, nil
}

// Fig10 — edge-query ARE vs workload skewness α at fixed memory.
func (h *Harness) Fig10() ([]Table, error) {
	return h.alphaTables("fig10", "Avg relative error of edge queries Qe vs Zipf skewness α", false, true)
}

// Fig11 — effective edge queries vs α at fixed memory.
func (h *Harness) Fig11() ([]Table, error) {
	return h.alphaTables("fig11", "Number of effective queries (G0=5) for Qe vs Zipf skewness α", false, false)
}

func (h *Harness) alphaTables(id, title string, subgraph, are bool) ([]Table, error) {
	dss, err := h.Reg.All()
	if err != nil {
		return nil, err
	}
	var tables []Table
	for i, ds := range dss {
		pts, err := h.alphaSweep(ds, subgraph)
		if err != nil {
			return nil, err
		}
		t := Table{
			ID:    fmt.Sprintf("%s%s", id, panelLetter(i)),
			Title: fmt.Sprintf("%s — %s (memory %s)", title, ds.Name, fmtBytes(ds.FixedMemory)),
			Notes: []string{h.scaleNote()},
		}
		if are {
			t.Columns = []string{"alpha", "GlobalSketch-ARE", "gSketch-ARE", "improvement"}
			for _, p := range pts {
				t.AddRow(fmt.Sprintf("%.1f", p.Alpha), fmtF(p.Global.AvgRelErr), fmtF(p.GSketch.AvgRelErr),
					improvement(p.Global.AvgRelErr, p.GSketch.AvgRelErr))
			}
		} else {
			t.Columns = []string{"alpha", "GlobalSketch-effective", "gSketch-effective"}
			for _, p := range pts {
				t.AddRow(fmt.Sprintf("%.1f", p.Alpha), fmt.Sprint(p.Global.Effective), fmt.Sprint(p.GSketch.Effective))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig12 — subgraph queries on DBLP vs α at fixed memory: ARE and
// effective-query tables.
func (h *Harness) Fig12() ([]Table, error) {
	ds, err := h.Reg.DBLP()
	if err != nil {
		return nil, err
	}
	pts, err := h.alphaSweep(ds, true)
	if err != nil {
		return nil, err
	}
	are := Table{
		ID:      "fig12a",
		Title:   fmt.Sprintf("Subgraph queries Qg vs α — DBLP (memory %s) — avg relative error", fmtBytes(ds.FixedMemory)),
		Columns: []string{"alpha", "GlobalSketch-ARE", "gSketch-ARE", "improvement"},
		Notes:   []string{h.scaleNote()},
	}
	eff := Table{
		ID:      "fig12b",
		Title:   fmt.Sprintf("Subgraph queries Qg vs α — DBLP (memory %s) — effective queries (G0=5)", fmtBytes(ds.FixedMemory)),
		Columns: []string{"alpha", "GlobalSketch-effective", "gSketch-effective"},
		Notes:   []string{h.scaleNote()},
	}
	for _, p := range pts {
		are.AddRow(fmt.Sprintf("%.1f", p.Alpha), fmtF(p.Global.AvgRelErr), fmtF(p.GSketch.AvgRelErr),
			improvement(p.Global.AvgRelErr, p.GSketch.AvgRelErr))
		eff.AddRow(fmt.Sprintf("%.1f", p.Alpha), fmt.Sprint(p.Global.Effective), fmt.Sprint(p.GSketch.Effective))
	}
	return []Table{are, eff}, nil
}

// Fig13 — sketch construction time Tc vs memory for both scenarios.
func (h *Harness) Fig13() ([]Table, error) {
	dss, err := h.Reg.All()
	if err != nil {
		return nil, err
	}
	var tables []Table
	for i, ds := range dss {
		ptsA, err := h.edgeSweep(ds, false)
		if err != nil {
			return nil, err
		}
		ptsB, err := h.edgeSweep(ds, true)
		if err != nil {
			return nil, err
		}
		t := Table{
			ID:      "fig13" + panelLetter(i),
			Title:   fmt.Sprintf("Sketch construction time Tc vs memory — %s", ds.Name),
			Columns: []string{"memory", "Tc-data-sample-ms", "Tc-data+workload-ms", "partitions"},
			Notes:   []string{h.scaleNote(), "Tc is partitioning + sketch allocation (gSketch)"},
		}
		for j := range ptsA {
			t.AddRow(fmtBytes(ptsA[j].Bytes),
				fmtMs(float64(ptsA[j].TcGSketch.Microseconds())/1000),
				fmtMs(float64(ptsB[j].TcGSketch.Microseconds())/1000),
				fmt.Sprint(ptsA[j].Partitions))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig14 — query processing time Tp vs memory (per 10k-query batch). The
// DBLP panel additionally reports the subgraph-query series like the
// paper's Figure 14(a).
func (h *Harness) Fig14() ([]Table, error) {
	dss, err := h.Reg.All()
	if err != nil {
		return nil, err
	}
	var tables []Table
	for i, ds := range dss {
		pts, err := h.edgeSweep(ds, false)
		if err != nil {
			return nil, err
		}
		t := Table{
			ID:      "fig14" + panelLetter(i),
			Title:   fmt.Sprintf("Query processing time Tp vs memory — %s", ds.Name),
			Columns: []string{"memory", "Global-Tp-ms", "gSketch-Tp-ms"},
			Notes:   []string{h.scaleNote(), fmt.Sprintf("Tp per batch of %d queries", ds.QuerySize)},
		}
		if ds.Name == "DBLP" {
			sub, err := h.subSweep(ds, false)
			if err != nil {
				return nil, err
			}
			t.Columns = []string{"memory", "Global-Tp-Qe-ms", "gSketch-Tp-Qe-ms", "Global-Tp-Qg-ms", "gSketch-Tp-Qg-ms"}
			for j, p := range pts {
				t.AddRow(fmtBytes(p.Bytes),
					fmtMs(float64(p.TpGlobal.Microseconds())/1000),
					fmtMs(float64(p.TpGSketch.Microseconds())/1000),
					fmtMs(float64(sub[j].TpGlobal.Microseconds())/1000),
					fmtMs(float64(sub[j].TpGSketch.Microseconds())/1000))
			}
		} else {
			for _, p := range pts {
				t.AddRow(fmtBytes(p.Bytes),
					fmtMs(float64(p.TpGlobal.Microseconds())/1000),
					fmtMs(float64(p.TpGSketch.Microseconds())/1000))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Table1 — outlier-sketch accuracy vs overall gSketch accuracy on the
// GTGraph stand-in across the memory grid.
func (h *Harness) Table1() ([]Table, error) {
	ds, err := h.Reg.RMAT()
	if err != nil {
		return nil, err
	}
	pts, err := RunOutlierSweep(ds, 0)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "table1",
		Title:   "Avg relative error of gSketch and outlier sketch — " + ds.Name,
		Columns: []string{"memory", "gSketch-ARE", "outlier-ARE", "outlier-queries"},
		Notes:   []string{h.scaleNote()},
	}
	for _, p := range pts {
		t.AddRow(fmtBytes(p.Bytes), fmtF(p.Overall.AvgRelErr), fmtF(p.Outlier.AvgRelErr),
			fmt.Sprint(p.OutlierQueries))
	}
	return []Table{t}, nil
}

func improvement(global, gsk float64) string {
	if gsk <= 0 {
		if global <= 0 {
			return "1.0x"
		}
		return "inf"
	}
	return fmt.Sprintf("%.1fx", global/gsk)
}

// Experiment binds an id to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(h *Harness) ([]Table, error)
}

// AllExperiments lists every reproduced artifact in paper order.
func AllExperiments() []Experiment {
	return []Experiment{
		{"varratio", "§6.1 variance ratios", (*Harness).VarianceRatio},
		{"fig4", "Figure 4: edge-query ARE vs memory (data sample)", (*Harness).Fig4},
		{"fig5", "Figure 5: effective edge queries vs memory (data sample)", (*Harness).Fig5},
		{"fig6", "Figure 6: subgraph queries vs memory (DBLP, data sample)", (*Harness).Fig6},
		{"fig7", "Figure 7: edge-query ARE vs memory (data+workload, α=1.5)", (*Harness).Fig7},
		{"fig8", "Figure 8: effective edge queries vs memory (data+workload, α=1.5)", (*Harness).Fig8},
		{"fig9", "Figure 9: subgraph queries vs memory (DBLP, data+workload, α=1.5)", (*Harness).Fig9},
		{"fig10", "Figure 10: edge-query ARE vs α (fixed memory)", (*Harness).Fig10},
		{"fig11", "Figure 11: effective edge queries vs α (fixed memory)", (*Harness).Fig11},
		{"fig12", "Figure 12: subgraph queries vs α (DBLP, fixed memory)", (*Harness).Fig12},
		{"fig13", "Figure 13: sketch construction time Tc vs memory", (*Harness).Fig13},
		{"fig14", "Figure 14: query processing time Tp vs memory", (*Harness).Fig14},
		{"table1", "Table 1: outlier sketch vs overall gSketch (GTGraph)", (*Harness).Table1},
	}
}

// FindExperiment returns the experiment with the given id.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
