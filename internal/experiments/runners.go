package experiments

import (
	"fmt"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/query"
	"github.com/graphstream/gsketch/internal/stream"
)

// SweepPoint is the measurement at one memory size: both estimators'
// accuracy plus construction and query timing — the raw material for
// Figures 4, 5, 7, 8, 13 and 14.
type SweepPoint struct {
	Bytes int

	Global  query.Accuracy
	GSketch query.Accuracy

	// Construction times (Figure 13): global allocates only; gSketch
	// additionally partitions the sample — both as in the paper's Tc.
	TcGlobal  time.Duration
	TcGSketch time.Duration

	// Tp: wall time to answer the full query batch (Figure 14).
	TpGlobal  time.Duration
	TpGSketch time.Duration

	Partitions int
}

// EdgeSweepOptions configure RunEdgeSweep.
type EdgeSweepOptions struct {
	// WithWorkload selects scenario B: a Zipf workload sample steers
	// partitioning and queries are Zipf-skewed with the same Alpha.
	WithWorkload bool
	// Alpha is the Zipf skewness for workload and queries (§6.4; ignored
	// in scenario A).
	Alpha float64
	// G0 is the effectiveness threshold (0 → query.DefaultG0).
	G0 float64
	// MemoryGrid overrides the dataset grid when non-nil.
	MemoryGrid []int
}

func (o EdgeSweepOptions) g0() float64 {
	if o.G0 == 0 {
		return query.DefaultG0
	}
	return o.G0
}

// edgeQuerySet builds the query set for a scenario.
func edgeQuerySet(ds *Dataset, o EdgeSweepOptions) []query.EdgeQuery {
	if o.WithWorkload {
		return query.ZipfEdgeQueries(ds.Exact, ds.QuerySize, o.Alpha, ds.Seed+10, ds.Seed+11)
	}
	return query.UniformEdgeQueries(ds.Exact, ds.QuerySize, ds.Seed+12)
}

// workloadSample builds the scenario-B workload sample (same popularity
// permutation as the queries, independent draws).
func workloadSample(ds *Dataset, o EdgeSweepOptions) []stream.Edge {
	if !o.WithWorkload {
		return nil
	}
	return query.ZipfWorkloadSample(ds.Exact, ds.WorkloadSize, o.Alpha, ds.Seed+10, ds.Seed+13)
}

// RunEdgeSweep measures Global Sketch vs gSketch over the dataset's memory
// grid for edge queries.
func RunEdgeSweep(ds *Dataset, o EdgeSweepOptions) ([]SweepPoint, error) {
	queries := edgeQuerySet(ds, o)
	workload := workloadSample(ds, o)
	grid := ds.MemoryGrid
	if o.MemoryGrid != nil {
		grid = o.MemoryGrid
	}

	points := make([]SweepPoint, 0, len(grid))
	for _, bytes := range grid {
		pt, err := measurePoint(ds, bytes, workload, queries, o.g0())
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

// measurePoint builds, populates, times and evaluates both estimators at
// one memory size.
func measurePoint(ds *Dataset, bytes int, workload []stream.Edge, queries []query.EdgeQuery, g0 float64) (SweepPoint, error) {
	pt := SweepPoint{Bytes: bytes}

	cfg := core.Config{TotalBytes: bytes, Seed: ds.Seed}

	t0 := time.Now()
	global, err := core.BuildGlobalSketch(cfg)
	if err != nil {
		return pt, fmt.Errorf("experiments: %s/%s global: %w", ds.Name, fmtBytes(bytes), err)
	}
	pt.TcGlobal = time.Since(t0)

	t0 = time.Now()
	gsk, err := core.BuildGSketch(cfg, ds.DataSample, workload)
	if err != nil {
		return pt, fmt.Errorf("experiments: %s/%s gsketch: %w", ds.Name, fmtBytes(bytes), err)
	}
	pt.TcGSketch = time.Since(t0)
	pt.Partitions = gsk.NumPartitions()

	core.Populate(global, ds.Edges)
	core.Populate(gsk, ds.Edges)

	pt.TpGlobal = timeQueries(global, queries)
	pt.TpGSketch = timeQueries(gsk, queries)

	pt.Global = query.EvaluateEdgeQueries(global, ds.Exact, queries, g0)
	pt.GSketch = query.EvaluateEdgeQueries(gsk, ds.Exact, queries, g0)
	return pt, nil
}

// timeQueries measures the pure estimation wall time of a query batch.
func timeQueries(est core.Estimator, queries []query.EdgeQuery) time.Duration {
	t0 := time.Now()
	var sink int64
	for _, q := range queries {
		sink += est.EstimateEdge(q.Src, q.Dst)
	}
	_ = sink
	return time.Since(t0)
}

// SubgraphSweepPoint is the per-memory measurement for subgraph queries
// (Figures 6 and 9, plus the Qg timing series of Figure 14a).
type SubgraphSweepPoint struct {
	Bytes      int
	Global     query.Accuracy
	GSketch    query.Accuracy
	TpGlobal   time.Duration
	TpGSketch  time.Duration
	Partitions int
}

// RunSubgraphSweep measures both estimators on aggregate subgraph queries
// (Γ = SUM, BFS-grown, fixed edges per subgraph).
func RunSubgraphSweep(ds *Dataset, o EdgeSweepOptions) ([]SubgraphSweepPoint, error) {
	scfg := query.SubgraphConfig{
		Count:    ds.QuerySize,
		EdgesPer: ds.SubgraphEdges,
		Agg:      query.Sum,
		Seed:     ds.Seed + 20,
	}
	if o.WithWorkload {
		scfg.ZipfAlpha = o.Alpha
	}
	queries := query.BFSSubgraphQueries(ds.Exact, scfg)
	workload := workloadSample(ds, o)
	grid := ds.MemoryGrid
	if o.MemoryGrid != nil {
		grid = o.MemoryGrid
	}

	points := make([]SubgraphSweepPoint, 0, len(grid))
	for _, bytes := range grid {
		cfg := core.Config{TotalBytes: bytes, Seed: ds.Seed}
		global, err := core.BuildGlobalSketch(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s global: %w", ds.Name, fmtBytes(bytes), err)
		}
		gsk, err := core.BuildGSketch(cfg, ds.DataSample, workload)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s gsketch: %w", ds.Name, fmtBytes(bytes), err)
		}
		core.Populate(global, ds.Edges)
		core.Populate(gsk, ds.Edges)

		pt := SubgraphSweepPoint{Bytes: bytes, Partitions: gsk.NumPartitions()}
		pt.TpGlobal = timeSubgraphQueries(global, queries)
		pt.TpGSketch = timeSubgraphQueries(gsk, queries)
		pt.Global = query.EvaluateSubgraphQueries(global, ds.Exact, queries, o.g0())
		pt.GSketch = query.EvaluateSubgraphQueries(gsk, ds.Exact, queries, o.g0())
		points = append(points, pt)
	}
	return points, nil
}

func timeSubgraphQueries(est core.Estimator, queries []query.SubgraphQuery) time.Duration {
	t0 := time.Now()
	var sink float64
	for _, q := range queries {
		sink += query.EstimateSubgraph(est, q)
	}
	_ = sink
	return time.Since(t0)
}

// AlphaPoint is the measurement at one Zipf skewness (Figures 10–12).
type AlphaPoint struct {
	Alpha   float64
	Global  query.Accuracy
	GSketch query.Accuracy
}

// RunAlphaSweep fixes memory at the dataset's FixedMemory and sweeps the
// workload skewness α, rebuilding the gSketch partitioning (its workload
// sample changes with α) and regenerating the Zipf query set per point.
func RunAlphaSweep(ds *Dataset, alphas []float64, g0 float64, subgraph bool) ([]AlphaPoint, error) {
	if g0 == 0 {
		g0 = query.DefaultG0
	}
	cfg := core.Config{TotalBytes: ds.FixedMemory, Seed: ds.Seed}
	points := make([]AlphaPoint, 0, len(alphas))
	for _, alpha := range alphas {
		o := EdgeSweepOptions{WithWorkload: true, Alpha: alpha, G0: g0}
		workload := workloadSample(ds, o)

		global, err := core.BuildGlobalSketch(cfg)
		if err != nil {
			return nil, err
		}
		gsk, err := core.BuildGSketch(cfg, ds.DataSample, workload)
		if err != nil {
			return nil, err
		}
		core.Populate(global, ds.Edges)
		core.Populate(gsk, ds.Edges)

		pt := AlphaPoint{Alpha: alpha}
		if subgraph {
			scfg := query.SubgraphConfig{
				Count:     ds.QuerySize,
				EdgesPer:  ds.SubgraphEdges,
				Agg:       query.Sum,
				Seed:      ds.Seed + 20,
				ZipfAlpha: alpha,
			}
			queries := query.BFSSubgraphQueries(ds.Exact, scfg)
			pt.Global = query.EvaluateSubgraphQueries(global, ds.Exact, queries, g0)
			pt.GSketch = query.EvaluateSubgraphQueries(gsk, ds.Exact, queries, g0)
		} else {
			queries := edgeQuerySet(ds, o)
			pt.Global = query.EvaluateEdgeQueries(global, ds.Exact, queries, g0)
			pt.GSketch = query.EvaluateEdgeQueries(gsk, ds.Exact, queries, g0)
		}
		points = append(points, pt)
	}
	return points, nil
}

// OutlierPoint is the per-memory Table-1 measurement: overall gSketch ARE
// vs the ARE of only those queries answered by the outlier sketch.
type OutlierPoint struct {
	Bytes          int
	Overall        query.Accuracy
	Outlier        query.Accuracy
	OutlierQueries int
}

// RunOutlierSweep reproduces Table 1 on a dataset (the paper uses
// GTGraph): the estimation accuracy of the outlier sketch compared with
// gSketch overall, across the memory grid.
func RunOutlierSweep(ds *Dataset, g0 float64) ([]OutlierPoint, error) {
	if g0 == 0 {
		g0 = query.DefaultG0
	}
	queries := query.UniformEdgeQueries(ds.Exact, ds.QuerySize, ds.Seed+12)
	points := make([]OutlierPoint, 0, len(ds.MemoryGrid))
	for _, bytes := range ds.MemoryGrid {
		cfg := core.Config{TotalBytes: bytes, Seed: ds.Seed}
		gsk, err := core.BuildGSketch(cfg, ds.DataSample, nil)
		if err != nil {
			return nil, err
		}
		core.Populate(gsk, ds.Edges)

		isOutlier := func(q query.EdgeQuery) bool {
			_, sampled := gsk.PartitionOf(q.Src)
			return !sampled
		}
		pt := OutlierPoint{Bytes: bytes}
		pt.Overall = query.EvaluateEdgeQueries(gsk, ds.Exact, queries, g0)
		pt.Outlier = query.EvaluateEdgeQueriesFiltered(gsk, ds.Exact, queries, g0, isOutlier)
		pt.OutlierQueries = pt.Outlier.Total
		points = append(points, pt)
	}
	return points, nil
}
