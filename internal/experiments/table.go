// Package experiments is the reproduction harness: it regenerates every
// table and figure of the paper's evaluation (§6) as printable tables.
// Each experiment id (fig4 … fig14, table1, varratio) maps to a runner;
// DESIGN.md §5 is the index. Dataset scale is controlled by a Profile so
// the same harness drives quick CI runs and full reproductions.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one printable experiment artifact: a titled grid of rows, the
// in-code analogue of one paper plot panel or table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries caveats (scale profile, substitutions) printed under
	// the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table in aligned text form.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table as CSV (header + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatting helpers shared by the runners.

func fmtBytes(b int) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dG", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dK", b>>10)
	default:
		return fmt.Sprintf("%d", b)
	}
}

func fmtF(v float64) string   { return fmt.Sprintf("%.4g", v) }
func fmtMs(ms float64) string { return fmt.Sprintf("%.2f", ms) }
