package graphgen

import (
	"fmt"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

// CarouselConfig parameterizes ZipfCarouselStream: a stream of many equal
// phases whose source popularity rotates at every phase boundary. Each
// boundary is a workload pivot, which makes the carousel the natural
// driver for long-horizon scenarios — repeated repartitioning, generation
// accumulation, and compaction pressure — where ZipfPivotStream's single
// flip is not enough.
type CarouselConfig struct {
	// Vertices is the source-vertex population size.
	Vertices int
	// Destinations is the destination population per source (uniform).
	Destinations int
	// Phases is the number of workload phases; the stream pivots
	// Phases-1 times.
	Phases int
	// EdgesPerPhase is the stream length of each phase.
	EdgesPerPhase int
	// Alpha is the Zipf skew of source popularity in every phase.
	Alpha float64
	// Seed makes generation deterministic.
	Seed uint64
}

// Validate checks the configuration.
func (c CarouselConfig) Validate() error {
	if c.Vertices < 2 || c.Destinations < 1 || c.EdgesPerPhase < 1 {
		return fmt.Errorf("graphgen: carousel needs ≥2 vertices, ≥1 destinations, ≥1 edges/phase (got %d/%d/%d)",
			c.Vertices, c.Destinations, c.EdgesPerPhase)
	}
	if c.Phases < 2 {
		return fmt.Errorf("graphgen: carousel needs ≥2 phases (got %d)", c.Phases)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("graphgen: carousel needs alpha > 0 (got %v)", c.Alpha)
	}
	return nil
}

// Edges returns the total stream length.
func (c CarouselConfig) Edges() int { return c.Phases * c.EdgesPerPhase }

// PhaseAt returns the index of the first edge of the given phase.
func (c CarouselConfig) PhaseAt(phase int) int { return phase * c.EdgesPerPhase }

// SourceAt maps a popularity rank to its vertex id in the given phase.
// Rank 0 is the hottest source. The mapping rotates by Vertices/Phases
// per phase, so consecutive phases promote disjoint hot heads (as long as
// the rotation step exceeds the effective hot-set size).
func (c CarouselConfig) SourceAt(phase, rank int) uint64 {
	step := c.Vertices / c.Phases
	if step == 0 {
		step = 1
	}
	return uint64((rank + phase*step) % c.Vertices)
}

// ZipfCarouselStream generates the rotating-popularity stream. Timestamps
// are arrival indices; all weights are 1.
func ZipfCarouselStream(c CarouselConfig) ([]stream.Edge, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := hashutil.NewRNG(c.Seed)
	z := NewZipf(c.Vertices, c.Alpha, rng)
	edges := make([]stream.Edge, c.Edges())
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    c.SourceAt(i/c.EdgesPerPhase, z.Draw()),
			Dst:    uint64(uniform(rng, c.Destinations)),
			Weight: 1,
			Time:   int64(i),
		}
	}
	return edges, nil
}

// PhaseQueries draws a query workload over one phase's popularity
// distribution, mirroring PivotConfig.PivotQueries.
func (c CarouselConfig) PhaseQueries(phase, n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	z := NewZipf(c.Vertices, c.Alpha, rng)
	out := make([]stream.Edge, n)
	for i := range out {
		out[i] = stream.Edge{
			Src:    c.SourceAt(phase, z.Draw()),
			Dst:    uint64(uniform(rng, c.Destinations)),
			Weight: 1,
		}
	}
	return out
}
