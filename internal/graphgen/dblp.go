package graphgen

import (
	"fmt"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

// DBLPConfig parameterizes the co-authorship stream generator that stands
// in for the paper's DBLP dataset (595,406 authors; 1,954,776 ordered
// author pairs from papers in chronological order).
//
// The generative model preserves the two properties gSketch exploits
// (§3.3):
//
//   - Global heterogeneity and skewness: authors belong to persistent
//     teams that co-publish repeatedly, so team author-pairs accumulate
//     large frequencies while ad-hoc collaborations stay at frequency ~1 —
//     the cross-vertex spread of average edge frequency is wide;
//   - Local similarity: a given author's pairs are dominated by their
//     team, so frequencies of edges sharing a source are correlated.
//
// Papers arrive chronologically; each emits all ordered author pairs
// (a_i, a_j), i < j, exactly as the paper constructs its stream.
type DBLPConfig struct {
	// Authors is the size of the author universe.
	Authors int
	// Papers is the number of papers to generate.
	Papers int
	// Communities is the number of author communities. 0 selects
	// sqrt(Authors).
	Communities int
	// TeamSizeMax caps persistent-team sizes (teams are 2..TeamSizeMax
	// authors). Default 4.
	TeamSizeMax int
	// TeamFraction is the share of each community's authors organized
	// into persistent teams; the rest are "networkers" who only appear in
	// ad-hoc papers and as guests. Keeping the two populations disjoint
	// preserves per-source local similarity: a team author's pairs are
	// uniformly heavy, a networker's uniformly light. Default 0.65.
	TeamFraction float64
	// TeamZipf is the Zipf exponent of paper counts across teams within a
	// community: a few prolific teams publish most papers. Default 1.2.
	TeamZipf float64
	// CohesionMin/CohesionMax bound each team's cohesion — the
	// probability that a team paper is written by exactly the team
	// (otherwise the paper is an ad-hoc collaboration). Drawn uniformly
	// per team. Defaults 0.85 and 0.98.
	CohesionMin, CohesionMax float64
	// GuestProb is the chance a team paper carries one extra guest
	// networker, listed first. Default 0.12.
	GuestProb float64
	// ParticipationProb is the chance each team member appears on a given
	// team paper (at least two always do). Values below 1 vary pair
	// frequencies within a team, giving per-source frequency variance a
	// realistic (small but nonzero) level. Default 0.9.
	ParticipationProb float64
	// AdhocAuthorsMax caps ad-hoc author-list length (2..AdhocAuthorsMax).
	// Default 4.
	AdhocAuthorsMax int
	// AdhocAlpha is the Zipf exponent of author popularity for ad-hoc
	// papers; larger values concentrate ad-hoc pairs on popular (and thus
	// well-sampled) authors. Default 1.4.
	AdhocAlpha float64
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultDBLP returns a configuration producing roughly pairsTarget
// ordered author pairs over the given author universe.
func DefaultDBLP(authors, pairsTarget int, seed uint64) DBLPConfig {
	// A team paper of 3 authors emits 3 pairs; ad-hoc up to 10. The blend
	// averages ≈ 3.5 pairs per paper.
	papers := int(float64(pairsTarget) / 3.5)
	if papers < 1 {
		papers = 1
	}
	return DBLPConfig{
		Authors: authors,
		Papers:  papers,
		Seed:    seed,
	}
}

func (c DBLPConfig) withDefaults() DBLPConfig {
	if c.Communities == 0 {
		c.Communities = isqrt(c.Authors)
	}
	if c.TeamSizeMax == 0 {
		c.TeamSizeMax = 4
	}
	if c.TeamFraction == 0 {
		c.TeamFraction = 0.65
	}
	if c.TeamZipf == 0 {
		c.TeamZipf = 1.3
	}
	if c.CohesionMin == 0 {
		c.CohesionMin = 0.92
	}
	if c.CohesionMax == 0 {
		c.CohesionMax = 0.99
	}
	if c.GuestProb == 0 {
		c.GuestProb = 0.12
	}
	if c.ParticipationProb == 0 {
		c.ParticipationProb = 0.9
	}
	if c.AdhocAuthorsMax == 0 {
		c.AdhocAuthorsMax = 3
	}
	if c.AdhocAlpha == 0 {
		c.AdhocAlpha = 1.2
	}
	return c
}

// Validate checks the configuration.
func (c DBLPConfig) Validate() error {
	c = c.withDefaults()
	if c.Authors < 4 {
		return fmt.Errorf("graphgen: dblp needs at least 4 authors")
	}
	if c.Papers <= 0 {
		return fmt.Errorf("graphgen: dblp paper count must be positive")
	}
	if c.Communities < 1 || c.Communities > c.Authors {
		return fmt.Errorf("graphgen: dblp communities %d out of range [1,%d]", c.Communities, c.Authors)
	}
	if c.TeamSizeMax < 2 {
		return fmt.Errorf("graphgen: dblp team size max must be ≥ 2")
	}
	if c.AdhocAuthorsMax < 2 {
		return fmt.Errorf("graphgen: dblp ad-hoc author max must be ≥ 2")
	}
	if c.CohesionMin < 0 || c.CohesionMax > 1 || c.CohesionMin > c.CohesionMax {
		return fmt.Errorf("graphgen: dblp cohesion range [%v,%v] invalid", c.CohesionMin, c.CohesionMax)
	}
	if c.TeamFraction <= 0 || c.TeamFraction > 1 {
		return fmt.Errorf("graphgen: dblp team fraction %v out of (0,1]", c.TeamFraction)
	}
	if c.GuestProb < 0 || c.GuestProb > 1 {
		return fmt.Errorf("graphgen: dblp guest probability out of [0,1]")
	}
	return nil
}

// dblpTeam is one persistent collaboration group.
type dblpTeam struct {
	members  []uint64 // stable order ⇒ repeated papers emit identical pairs
	cohesion float64
}

// Generate produces the ordered author-pair stream. Timestamps are paper
// indices (papers are "published" in order).
func (c DBLPConfig) Generate() ([]stream.Edge, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	rng := hashutil.NewRNG(c.Seed)

	// Contiguous communities of near-equal size.
	commMembers := make([][]uint64, c.Communities)
	for a := 0; a < c.Authors; a++ {
		cm := a * c.Communities / c.Authors
		commMembers[cm] = append(commMembers[cm], uint64(a))
	}

	// Persistent teams from the first TeamFraction of each (shuffled)
	// community, grouped into consecutive runs of 2..TeamSizeMax; the
	// remaining members are the community's networkers.
	teams := make([][]dblpTeam, c.Communities)
	networkers := make([][]uint64, c.Communities)
	for cm, members := range commMembers {
		shuffle(rng, members)
		teamAuthors := int(c.TeamFraction * float64(len(members)))
		if teamAuthors < 2 {
			teamAuthors = min(2, len(members))
		}
		for i := 0; i+1 < teamAuthors; {
			size := 2 + uniform(rng, c.TeamSizeMax-1)
			if i+size > teamAuthors {
				size = teamAuthors - i
			}
			if size < 2 {
				break
			}
			team := dblpTeam{
				members:  members[i : i+size],
				cohesion: c.CohesionMin + (c.CohesionMax-c.CohesionMin)*float01(rng),
			}
			teams[cm] = append(teams[cm], team)
			i += size
		}
		if len(teams[cm]) == 0 {
			// Tiny community: one team of whatever is there.
			teams[cm] = append(teams[cm], dblpTeam{members: members, cohesion: c.CohesionMax})
		}
		networkers[cm] = members[teamAuthors:]
		if len(networkers[cm]) < 2 {
			// Degenerate community: networkers fall back to everyone.
			networkers[cm] = members
		}
	}

	// Per-community Zipf samplers over teams (prolific teams) and over
	// members (ad-hoc popularity), cached by size.
	teamZipf := make(map[int]*Zipf)
	zipfTeams := func(n int) *Zipf {
		z, ok := teamZipf[n]
		if !ok {
			z = NewZipf(n, c.TeamZipf, rng.Split())
			teamZipf[n] = z
		}
		return z
	}
	memberZipf := make(map[int]*Zipf)
	zipfMembers := func(n int) *Zipf {
		z, ok := memberZipf[n]
		if !ok {
			z = NewZipf(n, c.AdhocAlpha, rng.Split())
			memberZipf[n] = z
		}
		return z
	}

	var edges []stream.Edge
	listBuf := make([]uint64, 0, c.AdhocAuthorsMax+1)
	for p := 0; p < c.Papers; p++ {
		cm := uniform(rng, c.Communities)
		ct := teams[cm]
		team := ct[zipfTeams(len(ct)).Draw()]

		listBuf = listBuf[:0]
		if float01(rng) < team.cohesion {
			// Team paper: the persistent members in stable order, so the
			// same ordered pairs recur paper after paper. An occasional
			// guest networker is listed FIRST (a visiting first author),
			// so the guest's one-off pairs have the guest as source and
			// do not pollute the team members' otherwise-uniform edge
			// frequencies (preserving per-source local similarity).
			if float01(rng) < c.GuestProb {
				nw := networkers[cm]
				guest := nw[zipfMembers(len(nw)).Draw()]
				if !containsU64(team.members, guest) {
					listBuf = append(listBuf, guest)
				}
			}
			// Each member joins this paper with ParticipationProb; the
			// first two always do, keeping at least one pair per paper.
			for mi, m := range team.members {
				if mi < 2 || float01(rng) < c.ParticipationProb {
					listBuf = append(listBuf, m)
				}
			}
		} else {
			// Ad-hoc collaboration among the community's networkers,
			// popularity-weighted.
			k := 2 + uniform(rng, c.AdhocAuthorsMax-1)
			nw := networkers[cm]
			z := zipfMembers(len(nw))
			for len(listBuf) < k && len(listBuf) < len(nw) {
				a := nw[z.Draw()]
				if !containsU64(listBuf, a) {
					listBuf = append(listBuf, a)
				}
			}
		}
		// Emit ordered pairs (a_i, a_j) for i < j in list order, exactly
		// as the paper constructs the stream from author lists.
		for i := 0; i < len(listBuf); i++ {
			for j := i + 1; j < len(listBuf); j++ {
				edges = append(edges, stream.Edge{
					Src: listBuf[i], Dst: listBuf[j],
					Weight: 1, Time: int64(p),
				})
			}
		}
	}
	return edges, nil
}

func isqrt(n int) int {
	if n < 1 {
		return 1
	}
	x := 1
	for x*x < n {
		x++
	}
	return x
}

func shuffle(rng *hashutil.RNG, s []uint64) {
	for i := len(s) - 1; i > 0; i-- {
		j := uniform(rng, i+1)
		s[i], s[j] = s[j], s[i]
	}
}

func containsU64(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
