package graphgen

import (
	"testing"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

func TestZipfDistribution(t *testing.T) {
	rng := hashutil.NewRNG(1)
	z := NewZipf(100, 1.5, rng)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := z.Draw()
		if k < 0 || k >= 100 {
			t.Fatalf("draw %d out of range", k)
		}
		counts[k]++
	}
	// Rank 0 should dominate and counts should be non-increasing in
	// aggregate (allow local noise; compare decade sums).
	if counts[0] < counts[10] {
		t.Error("rank 0 not more frequent than rank 10")
	}
	first, last := 0, 0
	for i := 0; i < 10; i++ {
		first += counts[i]
		last += counts[90+i]
	}
	if first < 10*last {
		t.Errorf("top decade %d not ≫ bottom decade %d for α=1.5", first, last)
	}
}

func TestZipfPanics(t *testing.T) {
	rng := hashutil.NewRNG(1)
	for _, fn := range []func(){
		func() { NewZipf(0, 1, rng) },
		func() { NewZipf(10, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGeometricMean(t *testing.T) {
	rng := hashutil.NewRNG(2)
	var sum int
	const n = 50000
	for i := 0; i < n; i++ {
		v := geometric(rng, 8)
		if v < 1 {
			t.Fatalf("geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 7 || mean > 9 {
		t.Errorf("geometric mean = %.2f, want ≈ 8", mean)
	}
	if geometric(rng, 0.5) != 1 {
		t.Error("mean ≤ 1 should return 1")
	}
}

func TestRMATGenerate(t *testing.T) {
	cfg := DefaultRMAT(10, 5000, 42)
	edges, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 5000 {
		t.Fatalf("generated %d edges, want 5000", len(edges))
	}
	maxV := uint64(1)<<10 - 1
	for i, e := range edges {
		if e.Src > maxV || e.Dst > maxV {
			t.Fatalf("edge %d out of vertex range: %+v", i, e)
		}
		if e.Weight != 1 {
			t.Fatalf("edge %d weight = %d", i, e.Weight)
		}
	}
	// Timestamps are the arrival index.
	if edges[0].Time != 0 || edges[4999].Time != 4999 {
		t.Error("timestamps not sequential")
	}
}

func TestRMATDeterministic(t *testing.T) {
	cfg := DefaultRMAT(10, 2000, 7)
	a, _ := cfg.Generate()
	b, _ := cfg.Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c, _ := cfg2.Generate()
	same := 0
	for i := range a {
		if a[i].Src == c[i].Src && a[i].Dst == c[i].Dst {
			same++
		}
	}
	if same > len(a)/10 {
		t.Errorf("different seeds nearly identical: %d/%d", same, len(a))
	}
}

func TestRMATBurstsRaiseMultiplicity(t *testing.T) {
	bursty := DefaultRMAT(12, 50000, 3)
	quiet := bursty
	quiet.BurstFraction = 0
	be, _ := bursty.Generate()
	qe, _ := quiet.Generate()
	bd := distinctCount(be)
	qd := distinctCount(qe)
	if float64(bd) > 0.6*float64(qd) {
		t.Errorf("bursts did not concentrate stream: distinct %d (burst) vs %d (no burst)", bd, qd)
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	cfg := DefaultRMAT(12, 100000, 5)
	edges, _ := cfg.Generate()
	deg := make(map[uint64]int)
	for _, e := range edges {
		deg[e.Src]++
	}
	max, sum := 0, 0
	for _, d := range deg {
		if d > max {
			max = d
		}
		sum += d
	}
	mean := float64(sum) / float64(len(deg))
	if float64(max) < 10*mean {
		t.Errorf("max out-volume %d not ≫ mean %.1f; R-MAT should be skewed", max, mean)
	}
}

func TestRMATValidation(t *testing.T) {
	bad := []RMATConfig{
		{Scale: 0, Edges: 10, A: 0.45, B: 0.15, C: 0.15, D: 0.25},
		{Scale: 10, Edges: 0, A: 0.45, B: 0.15, C: 0.15, D: 0.25},
		{Scale: 10, Edges: 10, A: 0.9, B: 0.15, C: 0.15, D: 0.25},
		{Scale: 10, Edges: 10, A: 0.45, B: 0.15, C: 0.15, D: 0.25, Noise: 1.5},
		{Scale: 10, Edges: 10, A: 0.45, B: 0.15, C: 0.15, D: 0.25, BurstFraction: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDBLPGenerate(t *testing.T) {
	cfg := DBLPConfig{Authors: 500, Papers: 2000, Seed: 42}
	edges, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("no edges generated")
	}
	lastPaper := int64(-1)
	for _, e := range edges {
		if e.Src >= 500 || e.Dst >= 500 {
			t.Fatalf("author id out of range: %+v", e)
		}
		if e.Src == e.Dst {
			t.Fatalf("self pair: %+v", e)
		}
		if e.Time < lastPaper {
			t.Fatal("papers not chronological")
		}
		lastPaper = e.Time
	}
}

func TestDBLPDeterministic(t *testing.T) {
	cfg := DBLPConfig{Authors: 300, Papers: 500, Seed: 9}
	a, _ := cfg.Generate()
	b, _ := cfg.Generate()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDBLPRepeatCollaborations(t *testing.T) {
	// Team structure must concentrate the stream: multiplicity well
	// above 1.
	cfg := DBLPConfig{Authors: 500, Papers: 5000, Seed: 1}
	edges, _ := cfg.Generate()
	d := distinctCount(edges)
	if ratio := float64(len(edges)) / float64(d); ratio < 3 {
		t.Errorf("stream multiplicity N/D = %.1f, want ≥ 3 (persistent teams)", ratio)
	}
}

func TestDBLPValidation(t *testing.T) {
	bad := []DBLPConfig{
		{Authors: 1, Papers: 10},
		{Authors: 100, Papers: 0},
		{Authors: 100, Papers: 10, Communities: 1000},
		{Authors: 100, Papers: 10, TeamFraction: 1.5},
		{Authors: 100, Papers: 10, CohesionMin: 0.9, CohesionMax: 0.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestIPAttackGenerate(t *testing.T) {
	cfg := DefaultIPAttack(200, 1000, 20000, 42)
	edges, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 20000 {
		t.Fatalf("generated %d packets, want 20000", len(edges))
	}
	lastDay := int64(0)
	days := make(map[int64]int)
	for _, e := range edges {
		if e.Src >= 200 || e.Dst >= 1000 {
			t.Fatalf("ids out of range: %+v", e)
		}
		if e.Time < lastDay {
			t.Fatal("days not monotone")
		}
		lastDay = e.Time
		days[e.Time]++
	}
	if len(days) != 5 {
		t.Errorf("got %d days, want 5", len(days))
	}
}

func TestIPAttackFirstDay(t *testing.T) {
	cfg := DefaultIPAttack(200, 1000, 20000, 42)
	edges, _ := cfg.Generate()
	day1 := FirstDay(edges)
	for _, e := range day1 {
		if e.Time != 0 {
			t.Fatal("first-day sample contains later edges")
		}
	}
	// Five equal days → the prefix is ≈ 20%.
	frac := float64(len(day1)) / float64(len(edges))
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("first-day fraction = %.3f, want ≈ 0.2", frac)
	}
}

func TestIPAttackClassSeparation(t *testing.T) {
	cfg := DefaultIPAttack(1000, 5000, 100000, 42)
	edges, _ := cfg.Generate()
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	// Repeat offenders (ids < 500) should have far higher average edge
	// frequency than scanners.
	var repSum, repN, scanSum, scanN float64
	exact.RangeEdges(func(src, dst uint64, f int64) bool {
		if src < 500 {
			repSum += float64(f)
			repN++
		} else {
			scanSum += float64(f)
			scanN++
		}
		return true
	})
	if repN == 0 || scanN == 0 {
		t.Fatal("one class missing from stream")
	}
	repAvg, scanAvg := repSum/repN, scanSum/scanN
	if repAvg < 4*scanAvg {
		t.Errorf("repeat-offender avg freq %.1f not ≫ scanner avg %.1f", repAvg, scanAvg)
	}
}

func TestIPAttackValidation(t *testing.T) {
	bad := []IPAttackConfig{
		{Attackers: 0, Targets: 10, Packets: 10},
		{Attackers: 10, Targets: 0, Packets: 10},
		{Attackers: 10, Targets: 10, Packets: 0},
		{Attackers: 10, Targets: 10, Packets: 10, RepeaterFraction: 2},
		{Attackers: 10, Targets: 10, Packets: 10, ScannerPoolMin: 5, ScannerPoolMax: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func distinctCount(edges []stream.Edge) int {
	seen := make(map[[2]uint64]struct{}, len(edges))
	for _, e := range edges {
		seen[[2]uint64{e.Src, e.Dst}] = struct{}{}
	}
	return len(seen)
}

func TestZipfPivotStream(t *testing.T) {
	cfg := PivotConfig{Vertices: 256, Destinations: 32, Edges: 40000, Alpha: 1.2, PivotFraction: 0.5, Seed: 9}
	edges, err := ZipfPivotStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != cfg.Edges {
		t.Fatalf("len = %d, want %d", len(edges), cfg.Edges)
	}
	pivot := cfg.PivotAt()
	count := func(part []stream.Edge, src uint64) int {
		n := 0
		for _, e := range part {
			if e.Src == src {
				n++
			}
		}
		return n
	}
	// The hottest pre-pivot source (rank 0 → vertex 0) must dominate phase 1
	// and collapse in phase 2; the post-pivot hot vertex is the mirror.
	hotA, hotB := cfg.SourceAt(0, 0), cfg.SourceAt(1, 0)
	if hotA == hotB {
		t.Fatal("pivot mapping did not move the hot head")
	}
	if a, b := count(edges[:pivot], hotA), count(edges[pivot:], hotA); a < 4*b {
		t.Fatalf("pre-pivot hot source did not collapse: %d -> %d", a, b)
	}
	if a, b := count(edges[:pivot], hotB), count(edges[pivot:], hotB); b < 4*a {
		t.Fatalf("post-pivot hot source did not rise: %d -> %d", a, b)
	}
	// Deterministic under the seed.
	again, _ := ZipfPivotStream(cfg)
	for i := range edges {
		if edges[i] != again[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	// Query workloads follow the same mapping.
	qs := cfg.PivotQueries(1, 2000, 7)
	if count(qs, hotB) < count(qs, hotA) {
		t.Fatal("phase-2 queries do not favor the shifted hot head")
	}
	if _, err := ZipfPivotStream(PivotConfig{Vertices: 1, Destinations: 1, Edges: 10, Alpha: 1, PivotFraction: 0.5}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
