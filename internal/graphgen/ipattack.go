package graphgen

import (
	"fmt"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

// IPAttackConfig parameterizes the intrusion-stream generator that stands
// in for the paper's corporate sensor dataset (3,781,471 source→target IP
// attack packets over five days, with the first day used as the data
// sample).
//
// The model mixes two empirically motivated attacker behaviours, which
// yields the paper's headline property for this dataset — the highest
// variance ratio σ_G/σ_V of the three (10.107):
//
//   - repeat offenders hammer a tiny pool of targets in long bursts, so
//     their per-edge frequencies are huge and mutually similar;
//   - scanners sweep wide target pools with few repeats, so their edges
//     sit at frequency ~1.
//
// Across sources average edge frequency therefore varies by orders of
// magnitude (global heterogeneity) while within a source it is tightly
// clustered (local similarity).
type IPAttackConfig struct {
	// Attackers is the number of distinct source IPs.
	Attackers int
	// Targets is the number of distinct destination IPs.
	Targets int
	// Packets is the number of attack packets (edge arrivals).
	Packets int
	// Days structures timestamps into that many equal "days" (the paper's
	// 5-day window; the first day is the conventional data sample).
	// Default 5.
	Days int
	// AttackerAlpha is the Zipf exponent of attacker activity. Default 1.1.
	AttackerAlpha float64
	// RepeaterFraction is the share of the attacker population behaving
	// as repeat offenders. Default 0.5.
	RepeaterFraction float64
	// RepeaterVolumeFraction is the share of packet VOLUME sent by repeat
	// offenders (persistent attackers dominate traffic in real feeds even
	// where scanners dominate the address count). Default 0.9.
	RepeaterVolumeFraction float64
	// TargetEdgeFreq is the intended per-edge attack frequency of repeat
	// offenders: each repeater's pool is sized so that its expected packet
	// volume divided by pool size ≈ TargetEdgeFreq. This keeps repeated
	// edges in a narrow frequency band regardless of the attacker's
	// activity rank (the local-similarity property). Default 25.
	TargetEdgeFreq float64
	// RepeaterPoolMax caps a repeat offender's target-pool size (pool is
	// 4..RepeaterPoolMax). Default 4096.
	RepeaterPoolMax int
	// ScannerPoolMin/ScannerPoolMax bound a scanner's target-pool size.
	// Defaults 4 and 24: scanners probe few targets each before rotating
	// source addresses, so their edges stay at frequency ~1-3.
	ScannerPoolMin, ScannerPoolMax int
	// RepeaterBurstMean and ScannerBurstMean are the mean burst lengths
	// (consecutive identical source→target packets). Defaults 6 and 1.1.
	RepeaterBurstMean, ScannerBurstMean float64
	// PoolAlpha is the Zipf exponent for target choice within a pool.
	// Low values keep a repeat offender's per-edge frequencies in a
	// narrow band (strong local similarity). Default 0.3.
	PoolAlpha float64
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultIPAttack returns a configuration at the given scale.
func DefaultIPAttack(attackers, targets, packets int, seed uint64) IPAttackConfig {
	return IPAttackConfig{
		Attackers: attackers,
		Targets:   targets,
		Packets:   packets,
		Seed:      seed,
	}
}

func (c IPAttackConfig) withDefaults() IPAttackConfig {
	if c.Days == 0 {
		c.Days = 5
	}
	if c.AttackerAlpha == 0 {
		c.AttackerAlpha = 1.3
	}
	if c.RepeaterFraction == 0 {
		c.RepeaterFraction = 0.5
	}
	if c.RepeaterVolumeFraction == 0 {
		c.RepeaterVolumeFraction = 0.9
	}
	if c.TargetEdgeFreq == 0 {
		c.TargetEdgeFreq = 25
	}
	if c.RepeaterPoolMax == 0 {
		c.RepeaterPoolMax = 4096
	}
	if c.ScannerPoolMin == 0 {
		c.ScannerPoolMin = 4
	}
	if c.ScannerPoolMax == 0 {
		c.ScannerPoolMax = 16
	}
	if c.RepeaterBurstMean == 0 {
		c.RepeaterBurstMean = 6
	}
	if c.ScannerBurstMean == 0 {
		c.ScannerBurstMean = 1.1
	}
	if c.PoolAlpha == 0 {
		c.PoolAlpha = 0.3
	}
	return c
}

// Validate checks the configuration.
func (c IPAttackConfig) Validate() error {
	c = c.withDefaults()
	if c.Attackers < 1 || c.Targets < 1 {
		return fmt.Errorf("graphgen: ipattack needs positive attacker and target counts")
	}
	if c.Packets <= 0 {
		return fmt.Errorf("graphgen: ipattack packet count must be positive")
	}
	if c.Days < 1 {
		return fmt.Errorf("graphgen: ipattack needs at least one day")
	}
	if c.RepeaterFraction < 0 || c.RepeaterFraction > 1 {
		return fmt.Errorf("graphgen: ipattack repeater fraction out of [0,1]")
	}
	if c.RepeaterVolumeFraction < 0 || c.RepeaterVolumeFraction > 1 {
		return fmt.Errorf("graphgen: ipattack repeater volume fraction out of [0,1]")
	}
	if c.RepeaterPoolMax < 4 || c.ScannerPoolMin < 1 || c.ScannerPoolMax < c.ScannerPoolMin {
		return fmt.Errorf("graphgen: ipattack pool bounds invalid")
	}
	return nil
}

type ipAttacker struct {
	pool      []uint64
	poolZipf  *Zipf
	burstMean float64
}

// Generate produces the attack-packet stream. Timestamps are day indices
// (0-based): arrival i falls on day i·Days/Packets.
func (c IPAttackConfig) Generate() ([]stream.Edge, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	rng := hashutil.NewRNG(c.Seed)

	// Attacker ids [0, nRep) are repeat offenders, [nRep, Attackers) are
	// scanners. Each class has its own activity Zipf; packet volume is
	// split between the classes by RepeaterVolumeFraction.
	nRep := int(c.RepeaterFraction * float64(c.Attackers))
	if nRep < 1 {
		nRep = 1
	}
	nScan := c.Attackers - nRep
	if nScan < 1 {
		nScan = 1
		nRep = c.Attackers - 1
		if nRep < 1 {
			nRep = 1
		}
	}
	repZipf := NewZipf(nRep, c.AttackerAlpha, rng.Split())
	scanZipf := NewZipf(nScan, c.AttackerAlpha, rng.Split())

	// Zipf normalizer for expected per-rank repeater volume, used to size
	// repeater pools so per-edge frequency lands near TargetEdgeFreq.
	var zipfH float64
	for r := 0; r < nRep; r++ {
		zipfH += 1 / powF(float64(r+1), c.AttackerAlpha)
	}
	repVolume := c.RepeaterVolumeFraction * float64(c.Packets)

	// Lazily materialized attacker profiles, keyed by attacker id.
	profiles := make(map[int]*ipAttacker)
	profileFor := func(id int) *ipAttacker {
		if p, ok := profiles[id]; ok {
			return p
		}
		p := &ipAttacker{}
		var size int
		if id < nRep {
			expected := repVolume / powF(float64(id+1), c.AttackerAlpha) / zipfH
			size = int(expected / c.TargetEdgeFreq)
			if size < 4 {
				size = 4
			}
			if size > c.RepeaterPoolMax {
				size = c.RepeaterPoolMax
			}
			p.burstMean = c.RepeaterBurstMean
		} else {
			size = c.ScannerPoolMin + uniform(rng, c.ScannerPoolMax-c.ScannerPoolMin+1)
			p.burstMean = c.ScannerBurstMean
		}
		if size > c.Targets {
			size = c.Targets
		}
		p.pool = make([]uint64, size)
		for i := range p.pool {
			p.pool[i] = uint64(uniform(rng, c.Targets))
		}
		p.poolZipf = NewZipf(size, c.PoolAlpha, rng.Split())
		profiles[id] = p
		return p
	}

	edges := make([]stream.Edge, 0, c.Packets)
	for len(edges) < c.Packets {
		var rank int
		if float01(rng) < c.RepeaterVolumeFraction {
			rank = repZipf.Draw()
		} else {
			rank = nRep + scanZipf.Draw()
		}
		p := profileFor(rank)
		target := p.pool[p.poolZipf.Draw()]
		burst := geometric(rng, p.burstMean)
		for b := 0; b < burst && len(edges) < c.Packets; b++ {
			i := len(edges)
			day := int64(i) * int64(c.Days) / int64(c.Packets)
			edges = append(edges, stream.Edge{
				Src: uint64(rank), Dst: target,
				Weight: 1, Time: day,
			})
		}
	}
	return edges, nil
}

// FirstDay returns the prefix of edges with Time == 0, the paper's choice
// of data sample for this dataset ("IP pair streams from the first day").
func FirstDay(edges []stream.Edge) []stream.Edge {
	for i, e := range edges {
		if e.Time != 0 {
			return edges[:i]
		}
	}
	return edges
}
