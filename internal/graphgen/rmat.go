package graphgen

import (
	"fmt"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

// RMATConfig parameterizes the recursive-matrix (R-MAT) generator of
// Chakrabarti, Zhan & Faloutsos (SDM 2004), the model behind GTGraph's
// default generator which the paper uses for its synthetic dataset.
// Quadrant probabilities default to GTGraph's (0.45, 0.15, 0.15, 0.25).
type RMATConfig struct {
	// Scale is log2 of the vertex count; the graph has 2^Scale vertices.
	Scale int
	// Edges is the number of edge arrivals to generate.
	Edges int
	// A, B, C, D are the quadrant probabilities; they must be positive and
	// sum to 1 (within 1e-9).
	A, B, C, D float64
	// Noise perturbs the quadrant probabilities per recursion level by a
	// uniform factor in [1-Noise, 1+Noise], the standard smoothing that
	// avoids artefactual staircase degree distributions. 0 disables.
	Noise float64
	// BurstFraction is the share of source rows whose edges are emitted in
	// bursts (mean BurstMean repeats of the same cell). Graph streams are
	// activity streams overlaid on a graph — the same interaction recurs —
	// and R-MAT alone under-produces repeats at reduced scale; the burst
	// overlay restores the multiplicity profile of a paper-scale stream
	// while keeping R-MAT's structure. Bursty rows have uniformly heavy
	// edges, quiet rows light ones (the local-similarity property of
	// §3.3). 0 disables bursts. Default (via DefaultRMAT) 0.5.
	BurstFraction float64
	// BurstMean is the mean burst length for bursty rows. Default (via
	// DefaultRMAT) 16.
	BurstMean float64
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultRMAT returns GTGraph-default parameters at the given scale and
// edge count.
func DefaultRMAT(scale, edges int, seed uint64) RMATConfig {
	return RMATConfig{
		Scale: scale, Edges: edges,
		A: 0.45, B: 0.15, C: 0.15, D: 0.25,
		Noise:         0.1,
		BurstFraction: 0.5,
		BurstMean:     16,
		Seed:          seed,
	}
}

// Validate checks the configuration.
func (c RMATConfig) Validate() error {
	if c.Scale < 1 || c.Scale > 40 {
		return fmt.Errorf("graphgen: rmat scale %d out of range [1,40]", c.Scale)
	}
	if c.Edges <= 0 {
		return fmt.Errorf("graphgen: rmat edge count must be positive")
	}
	sum := c.A + c.B + c.C + c.D
	if c.A <= 0 || c.B <= 0 || c.C <= 0 || c.D <= 0 || sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("graphgen: rmat quadrant probabilities must be positive and sum to 1 (got %v)", sum)
	}
	if c.Noise < 0 || c.Noise >= 1 {
		return fmt.Errorf("graphgen: rmat noise %v out of range [0,1)", c.Noise)
	}
	if c.BurstFraction < 0 || c.BurstFraction > 1 {
		return fmt.Errorf("graphgen: rmat burst fraction out of [0,1]")
	}
	if c.BurstFraction > 0 && c.BurstMean < 1 {
		return fmt.Errorf("graphgen: rmat burst mean %v must be ≥ 1", c.BurstMean)
	}
	return nil
}

// Generate produces the edge stream. Timestamps are the arrival index.
func (c RMATConfig) Generate() ([]stream.Edge, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := hashutil.NewRNG(c.Seed)
	edges := make([]stream.Edge, 0, c.Edges)
	for len(edges) < c.Edges {
		src, dst := c.drawEdge(rng)
		repeats := 1
		if c.BurstFraction > 0 {
			// Burst class is a deterministic property of the source row.
			bursty := float64(hashutil.Mix64(c.Seed^(src*0x9e3779b97f4a7c15))%1024)/1024 < c.BurstFraction
			if bursty {
				repeats = geometric(rng, c.BurstMean)
			}
		}
		for r := 0; r < repeats && len(edges) < c.Edges; r++ {
			edges = append(edges, stream.Edge{Src: src, Dst: dst, Weight: 1, Time: int64(len(edges))})
		}
	}
	return edges, nil
}

func (c RMATConfig) drawEdge(rng *hashutil.RNG) (uint64, uint64) {
	var row, col uint64
	a, b, cc := c.A, c.B, c.C
	for level := 0; level < c.Scale; level++ {
		al, bl, cl := a, b, cc
		if c.Noise > 0 {
			al *= 1 - c.Noise + 2*c.Noise*float01(rng)
			bl *= 1 - c.Noise + 2*c.Noise*float01(rng)
			cl *= 1 - c.Noise + 2*c.Noise*float01(rng)
			dl := (c.D) * (1 - c.Noise + 2*c.Noise*float01(rng))
			norm := al + bl + cl + dl
			al, bl, cl = al/norm, bl/norm, cl/norm
		}
		u := float01(rng)
		row <<= 1
		col <<= 1
		switch {
		case u < al:
			// top-left quadrant
		case u < al+bl:
			col |= 1
		case u < al+bl+cl:
			row |= 1
		default:
			row |= 1
			col |= 1
		}
	}
	return row, col
}
