package graphgen

import (
	"fmt"

	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

// PivotConfig parameterizes ZipfPivotStream: a two-phase stream whose
// source popularity pivots mid-way — the workload-shift scenario adaptive
// repartitioning exists for.
type PivotConfig struct {
	// Vertices is the source-vertex population size.
	Vertices int
	// Destinations is the destination population per source (uniform).
	Destinations int
	// Edges is the total stream length across both phases.
	Edges int
	// Alpha is the Zipf skew of source popularity in both phases.
	Alpha float64
	// PivotFraction is the stream position, in (0, 1), at which the pivot
	// happens: before it, rank k maps to vertex k; after it, rank k maps to
	// vertex Vertices-1-k, so the cold tail becomes the hot head overnight.
	PivotFraction float64
	// Seed makes generation deterministic.
	Seed uint64
}

// Validate checks the configuration.
func (c PivotConfig) Validate() error {
	if c.Vertices < 2 || c.Destinations < 1 || c.Edges < 2 {
		return fmt.Errorf("graphgen: pivot stream needs ≥2 vertices, ≥1 destinations, ≥2 edges (got %d/%d/%d)",
			c.Vertices, c.Destinations, c.Edges)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("graphgen: pivot stream needs alpha > 0 (got %v)", c.Alpha)
	}
	if c.PivotFraction <= 0 || c.PivotFraction >= 1 {
		return fmt.Errorf("graphgen: pivot fraction %v out of (0, 1)", c.PivotFraction)
	}
	return nil
}

// PivotAt returns the index of the first post-pivot edge.
func (c PivotConfig) PivotAt() int { return int(float64(c.Edges) * c.PivotFraction) }

// SourceAt maps a popularity rank to its vertex id in the given phase
// (0 = pre-pivot, 1 = post-pivot). Rank 0 is the hottest source.
func (c PivotConfig) SourceAt(phase, rank int) uint64 {
	if phase == 0 {
		return uint64(rank)
	}
	return uint64(c.Vertices - 1 - rank)
}

// ZipfPivotStream generates the two-phase stream. Timestamps are arrival
// indices; all weights are 1.
func ZipfPivotStream(c PivotConfig) ([]stream.Edge, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := hashutil.NewRNG(c.Seed)
	z := NewZipf(c.Vertices, c.Alpha, rng)
	pivot := c.PivotAt()
	edges := make([]stream.Edge, c.Edges)
	for i := range edges {
		phase := 0
		if i >= pivot {
			phase = 1
		}
		edges[i] = stream.Edge{
			Src:    c.SourceAt(phase, z.Draw()),
			Dst:    uint64(uniform(rng, c.Destinations)),
			Weight: 1,
			Time:   int64(i),
		}
	}
	return edges, nil
}

// PivotQueries draws a query workload over one phase's popularity
// distribution: sources Zipf-ranked through that phase's mapping,
// destinations uniform — the shape a recorder in front of phase traffic
// would sample.
func (c PivotConfig) PivotQueries(phase, n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	z := NewZipf(c.Vertices, c.Alpha, rng)
	out := make([]stream.Edge, n)
	for i := range out {
		out[i] = stream.Edge{
			Src:    c.SourceAt(phase, z.Draw()),
			Dst:    uint64(uniform(rng, c.Destinations)),
			Weight: 1,
		}
	}
	return out
}
