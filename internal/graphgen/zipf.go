// Package graphgen generates the synthetic graph streams used by the
// reproduction: an R-MAT generator standing in for GTGraph, a DBLP-like
// co-authorship stream, and an IP-attack-network stream (see DESIGN.md §4
// for the substitution rationale). All generators are deterministic under a
// seed and emit edges in chronological order.
package graphgen

import (
	"math"
	"sort"

	"github.com/graphstream/gsketch/internal/hashutil"
)

// Zipf draws values in {0, …, n-1} with P(k) ∝ (k+1)^(-alpha), by inverse
// transform over a precomputed CDF. Deterministic under its RNG. This is
// the skew model the paper uses both for workload samples ("Zipf-based
// sampling … parameterized by a skewness factor α") and, internally here,
// for popularity distributions in the data generators.
type Zipf struct {
	cdf []float64
	rng *hashutil.RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha > 0.
func NewZipf(n int, alpha float64, rng *hashutil.RNG) *Zipf {
	if n <= 0 {
		panic("graphgen: Zipf needs n > 0")
	}
	if alpha <= 0 {
		panic("graphgen: Zipf needs alpha > 0")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += math.Pow(float64(k+1), -alpha)
		cdf[k] = acc
	}
	inv := 1 / acc
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples one rank in [0, n).
func (z *Zipf) Draw() int {
	u := float64(z.rng.Uint64()>>11) / (1 << 53)
	return sort.SearchFloat64s(z.cdf, u)
}

// uniform returns an integer in [0, n) from rng.
func uniform(rng *hashutil.RNG, n int) int {
	if n <= 0 {
		panic("graphgen: uniform over empty range")
	}
	return int(rng.Uint64() % uint64(n))
}

// float01 returns a float64 in [0, 1).
func float01(rng *hashutil.RNG) float64 {
	return float64(rng.Uint64()>>11) / (1 << 53)
}

// powF is math.Pow restricted to positive bases, aliased for brevity.
func powF(base, exp float64) float64 { return math.Pow(base, exp) }

// geometric returns a geometric variate with mean approximately mean
// (support {1, 2, …}), used for burst lengths.
func geometric(rng *hashutil.RNG, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := float01(rng)
	// Inverse CDF of the geometric distribution on {1,2,...}.
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	if k > 1<<20 {
		k = 1 << 20
	}
	return k
}
