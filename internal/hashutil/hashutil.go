// Package hashutil provides the hashing primitives used throughout gsketch:
// a pairwise-independent hash family over the Mersenne prime 2^61-1 for
// sketch row hashing, SplitMix64 mixing for key derivation, FNV-1a string
// keying, and a small deterministic RNG suitable for reproducible seeding.
//
// All hashing in this module is deterministic given a seed, which makes
// sketch construction, partitioning and the experiment harness fully
// reproducible.
package hashutil

import (
	"math/bits"
)

// MersennePrime61 is 2^61 - 1, a Mersenne prime. Arithmetic modulo this
// prime admits a fast reduction (shift + add) and leaves 3 spare bits in a
// uint64, which is why it is the standard choice for pairwise-independent
// hashing of 64-bit keys.
const MersennePrime61 = (1 << 61) - 1

// mod61 reduces x modulo 2^61-1. The input may be any uint64.
func mod61(x uint64) uint64 {
	x = (x >> 61) + (x & MersennePrime61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

// mulMod61 returns (a * b) mod (2^61 - 1) using a 128-bit intermediate
// product. Both operands must already be < 2^61-1.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo. 2^64 ≡ 2^3 (mod 2^61-1), so:
	//   a*b ≡ hi*8 + lo (mod 2^61-1)
	// hi < 2^58 here because a,b < 2^61, so hi*8 cannot overflow.
	return mod61(mod61(hi<<3) + mod61(lo))
}

// PairwiseHash is one member of a pairwise-independent (2-universal) hash
// family h(x) = ((a*x + b) mod p) mod w with p = 2^61-1. The zero value is
// not usable; construct members with NewPairwiseFamily.
type PairwiseHash struct {
	a, b  uint64
	width uint64
}

// Width returns the size of the hash's output range [0, w).
func (h PairwiseHash) Width() int { return int(h.width) }

// Hash maps a 64-bit key onto [0, width). The uniform value in [0, p) is
// mapped onto the output range with Lemire's multiply-shift reduction
// ((v·w)>>61 here, since v < 2^61) instead of a hardware divide — the
// row-hash runs on the ingest hot path five times per edge, and the
// division was its single largest cost.
func (h PairwiseHash) Hash(x uint64) int {
	v := mod61(mulMod61(h.a, mod61(x)) + h.b)
	hi, lo := bits.Mul64(v, h.width)
	return int(hi<<3 | lo>>61)
}

// Mod61 reduces an arbitrary 64-bit key modulo 2^61-1. It is the
// per-key half of Hash: batch gathers hoist it so d row hashes of the same
// key reduce the key once instead of d times (see HashReduced).
func Mod61(x uint64) uint64 { return mod61(x) }

// MulMod61 is the exported, inlinable (a*b) mod 2^61-1 for batch gather
// loops that hand-inline the row hash. Both operands must be < 2^61-1.
func MulMod61(a, b uint64) uint64 { return mulMod61(a, b) }

// Params exposes the member's (a, b) coefficients so batch gather loops
// can hand-inline the hash arithmetic (Hash itself is past the compiler's
// inlining budget, and a call per row per key is measurable on the query
// hot path). Mod61(MulMod61(a, Mod61(x)) + b) followed by the Lemire
// reduction onto Width() reproduces Hash(x) exactly.
func (h PairwiseHash) Params() (a, b uint64) { return h.a, h.b }

// HashReduced is Hash with Mod61(x) precomputed by the caller. Exposed
// alongside Mod61 so batch loops over one key's d rows can share the key
// reduction; HashReduced(Mod61(x)) == Hash(x) for every x.
func (h PairwiseHash) HashReduced(xr uint64) int {
	v := mod61(mulMod61(h.a, xr) + h.b)
	hi, lo := bits.Mul64(v, h.width)
	return int(hi<<3 | lo>>61)
}

// NewPairwiseFamily draws d independent members of the pairwise-independent
// family with output range [0, width), deterministically from seed.
// width and d must be positive.
func NewPairwiseFamily(d, width int, seed uint64) []PairwiseHash {
	if d <= 0 {
		panic("hashutil: family size must be positive")
	}
	if width <= 0 {
		panic("hashutil: hash width must be positive")
	}
	rng := NewRNG(seed)
	fam := make([]PairwiseHash, d)
	for i := range fam {
		// a must be nonzero for pairwise independence.
		a := rng.Uint64()%(MersennePrime61-1) + 1
		b := rng.Uint64() % MersennePrime61
		fam[i] = PairwiseHash{a: a, b: b, width: uint64(width)}
	}
	return fam
}

// SignHash is a pairwise-independent hash onto {-1,+1}, used by CountSketch.
type SignHash struct {
	a, b uint64
}

// NewSignFamily draws d independent sign hashes deterministically from seed.
func NewSignFamily(d int, seed uint64) []SignHash {
	if d <= 0 {
		panic("hashutil: family size must be positive")
	}
	rng := NewRNG(seed ^ 0x5ca1ab1e5ca1ab1e)
	fam := make([]SignHash, d)
	for i := range fam {
		a := rng.Uint64()%(MersennePrime61-1) + 1
		b := rng.Uint64() % MersennePrime61
		fam[i] = SignHash{a: a, b: b}
	}
	return fam
}

// Sign maps a key to -1 or +1.
func (h SignHash) Sign(x uint64) int64 {
	v := mod61(mulMod61(h.a, mod61(x)) + h.b)
	if v&1 == 0 {
		return 1
	}
	return -1
}

// Mix64 is the SplitMix64 finalizer: a fast, high-quality 64-bit mixing
// permutation. It is used to derive edge keys and to decorrelate seeds.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// EdgeKey derives a single 64-bit key for the directed edge (src, dst).
// The construction mixes src and dst asymmetrically so (a,b) and (b,a)
// collide no more often than random pairs.
func EdgeKey(src, dst uint64) uint64 {
	return EdgeKeyMixed(Mix64(src), dst)
}

// EdgeKeyMixed is EdgeKey with Mix64(src) precomputed. The batch router
// shares one source mixing between partition routing and key derivation.
func EdgeKeyMixed(mixedSrc, dst uint64) uint64 {
	return Mix64(mixedSrc*0x9e3779b97f4a7c15 + dst + 0x7f4a7c159e3779b9)
}

// StringKey hashes a vertex label to a 64-bit key using FNV-1a.
func StringKey(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// RNG is a small deterministic pseudo-random generator (SplitMix64 stream).
// It is intentionally independent of math/rand so that hashing seeds remain
// stable across Go releases. Not safe for concurrent use.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return Mix64(r.state)
}

// Split derives an independent child generator; the parent's stream is
// advanced by one step. Useful for giving each subsystem its own stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x1bad5eed1bad5eed)
}
