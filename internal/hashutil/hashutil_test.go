package hashutil

import (
	"math/big"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMod61MatchesBigInt(t *testing.T) {
	p := big.NewInt(MersennePrime61)
	cases := []uint64{0, 1, MersennePrime61 - 1, MersennePrime61, MersennePrime61 + 1, 1 << 62, ^uint64(0)}
	for _, x := range cases {
		want := new(big.Int).Mod(new(big.Int).SetUint64(x), p).Uint64()
		if got := mod61(x); got != want {
			t.Errorf("mod61(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestMod61Property(t *testing.T) {
	p := big.NewInt(MersennePrime61)
	f := func(x uint64) bool {
		want := new(big.Int).Mod(new(big.Int).SetUint64(x), p).Uint64()
		return mod61(x) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMulMod61MatchesBigInt(t *testing.T) {
	p := big.NewInt(MersennePrime61)
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		want := new(big.Int).Mod(
			new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)), p).Uint64()
		return mulMod61(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPairwiseFamilyRange(t *testing.T) {
	fam := NewPairwiseFamily(5, 97, 42)
	if len(fam) != 5 {
		t.Fatalf("family size = %d, want 5", len(fam))
	}
	rng := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := rng.Uint64()
		for r, h := range fam {
			v := h.Hash(x)
			if v < 0 || v >= 97 {
				t.Fatalf("row %d: hash(%d) = %d out of [0,97)", r, x, v)
			}
		}
	}
}

func TestPairwiseFamilyDeterministic(t *testing.T) {
	a := NewPairwiseFamily(4, 1024, 99)
	b := NewPairwiseFamily(4, 1024, 99)
	for i := 0; i < 1000; i++ {
		x := uint64(i) * 2654435761
		for r := range a {
			if a[r].Hash(x) != b[r].Hash(x) {
				t.Fatalf("row %d not deterministic for key %d", r, x)
			}
		}
	}
}

func TestPairwiseFamilySeedsDiffer(t *testing.T) {
	a := NewPairwiseFamily(1, 1<<20, 1)
	b := NewPairwiseFamily(1, 1<<20, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		x := Mix64(uint64(i))
		if a[0].Hash(x) == b[0].Hash(x) {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different seeds collide on %d/1000 keys; expected near 0", same)
	}
}

func TestPairwiseUniformity(t *testing.T) {
	// Chi-squared sanity check: hashed sequential keys should spread
	// nearly uniformly over a small range.
	const width, n = 64, 64 * 1000
	fam := NewPairwiseFamily(1, width, 5)
	counts := make([]int, width)
	for i := 0; i < n; i++ {
		counts[fam[0].Hash(uint64(i))]++
	}
	expected := float64(n) / width
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom; mean 63, sd ~11. 150 is a ~8-sigma guard.
	if chi2 > 150 {
		t.Errorf("chi-squared = %.1f, distribution too uneven", chi2)
	}
}

func TestSignHashBalanced(t *testing.T) {
	fam := NewSignFamily(1, 3)
	sum := int64(0)
	for i := 0; i < 100000; i++ {
		sum += fam[0].Sign(Mix64(uint64(i)))
	}
	if sum < -2000 || sum > 2000 {
		t.Errorf("sign sum = %d over 100000 draws; expected near 0", sum)
	}
}

func TestSignHashValues(t *testing.T) {
	fam := NewSignFamily(3, 11)
	for i := 0; i < 1000; i++ {
		for _, h := range fam {
			s := h.Sign(uint64(i))
			if s != 1 && s != -1 {
				t.Fatalf("sign = %d, want ±1", s)
			}
		}
	}
}

func TestEdgeKeyAsymmetric(t *testing.T) {
	if EdgeKey(1, 2) == EdgeKey(2, 1) {
		t.Error("EdgeKey(1,2) == EdgeKey(2,1): directed edges must not collide structurally")
	}
}

func TestEdgeKeyCollisions(t *testing.T) {
	seen := make(map[uint64][2]uint64)
	for s := uint64(0); s < 300; s++ {
		for d := uint64(0); d < 300; d++ {
			k := EdgeKey(s, d)
			if prev, ok := seen[k]; ok {
				t.Fatalf("EdgeKey collision: (%d,%d) and (%d,%d)", s, d, prev[0], prev[1])
			}
			seen[k] = [2]uint64{s, d}
		}
	}
}

func TestStringKeyDistinct(t *testing.T) {
	if StringKey("alice") == StringKey("bob") {
		t.Error("distinct labels hash equal")
	}
	if StringKey("") == StringKey("a") {
		t.Error("empty and non-empty labels hash equal")
	}
	if StringKey("ab") == StringKey("ba") {
		t.Error("StringKey ignores order")
	}
}

func TestRNGDeterministicAndSplit(t *testing.T) {
	a, b := NewRNG(11), NewRNG(11)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
	parent := NewRNG(12)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("parent and split child agree on %d/1000 draws", same)
	}
}

func TestMix64Bijective(t *testing.T) {
	// SplitMix64's finalizer is a permutation; spot-check injectivity.
	seen := make(map[uint64]uint64, 100000)
	for i := uint64(0); i < 100000; i++ {
		m := Mix64(i)
		if prev, ok := seen[m]; ok {
			t.Fatalf("Mix64 collision: %d and %d", i, prev)
		}
		seen[m] = i
	}
}

func TestPanics(t *testing.T) {
	assertPanics(t, "zero family", func() { NewPairwiseFamily(0, 10, 1) })
	assertPanics(t, "zero width", func() { NewPairwiseFamily(1, 0, 1) })
	assertPanics(t, "zero sign family", func() { NewSignFamily(0, 1) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestHashReducedMatchesHash pins the batch-gather decomposition: the
// hoisted key reduction and the hand-inlined (a·xr + b) arithmetic used by
// sketch.EstimateBatch must reproduce Hash exactly for every key.
func TestHashReducedMatchesHash(t *testing.T) {
	fam := NewPairwiseFamily(5, 3277, 99)
	rng := NewRNG(100)
	for i := 0; i < 200_000; i++ {
		x := rng.Uint64()
		if i < 4 {
			// Edge inputs: 0, max, the prime and its neighbour.
			x = []uint64{0, ^uint64(0), MersennePrime61, MersennePrime61 + 1}[i]
		}
		xr := Mod61(x)
		for _, h := range fam {
			want := h.Hash(x)
			if got := h.HashReduced(xr); got != want {
				t.Fatalf("HashReduced(Mod61(%#x)) = %d, Hash = %d", x, got, want)
			}
			// The fully decomposed form countmin.EstimateBatch inlines.
			a, b := h.Params()
			hi, lo := bits.Mul64(a, xr)
			v := Mod61(Mod61(hi<<3) + Mod61(lo) + b)
			vhi, vlo := bits.Mul64(v, uint64(h.Width()))
			if got := int(vhi<<3 | vlo>>61); got != want {
				t.Fatalf("decomposed hash of %#x = %d, Hash = %d", x, got, want)
			}
			if got := Mod61(MulMod61(a, xr) + b); got != Mod61(v) {
				t.Fatalf("MulMod61 path diverges for %#x", x)
			}
		}
	}
}
