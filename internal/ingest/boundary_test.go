package ingest

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// pickupEstimator blocks every UpdateBatch on a gate like gateEstimator,
// but additionally signals when a worker picks a batch up — so a test can
// wait until the worker is provably occupied and the queue provably empty.
type pickupEstimator struct {
	started chan struct{}
	gate    chan struct{}
	edges   atomic.Int64
}

func (p *pickupEstimator) Update(e stream.Edge) { p.UpdateBatch([]stream.Edge{e}) }
func (p *pickupEstimator) UpdateBatch(es []stream.Edge) {
	p.started <- struct{}{}
	<-p.gate
	p.edges.Add(int64(len(es)))
}
func (p *pickupEstimator) EstimateEdge(src, dst uint64) int64 { return 0 }
func (p *pickupEstimator) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	return make([]core.Result, len(qs))
}
func (p *pickupEstimator) Count() int64     { return p.edges.Load() }
func (p *pickupEstimator) MemoryBytes() int { return 0 }

// TestTryPushBatchExactFill drives every buffer to its exact boundary: an
// offer of precisely QueueDepth full batches must land entirely (nil
// error) with the queue exactly full, a follow-up of precisely BatchSize
// edges must park as an exactly-full pending batch (still nil error), and
// only the first edge past that point sheds. The cluster coordinator's
// accepted-prefix accounting leans on this exact-fit-accepts contract.
func TestTryPushBatchExactFill(t *testing.T) {
	const batch, depth = 4, 2
	dest := &pickupEstimator{started: make(chan struct{}, 16), gate: make(chan struct{})}
	ing, err := New(dest, Config{Workers: 1, BatchSize: batch, QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the lone worker and wait for pickup, leaving the queue empty.
	if err := ing.PushBatch(testStream(batch, 1)); err != nil {
		t.Fatal(err)
	}
	<-dest.started
	if d := ing.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth after pickup = %d, want 0", d)
	}

	// Boundary 1: exactly depth×batch edges — the offer that fills the
	// queue to its last slot must be accepted in full with no error.
	fill := testStream(batch*depth, 2)
	if n, err := ing.TryPushBatch(fill); err != nil || n != len(fill) {
		t.Fatalf("exact queue fill = (%d, %v), want (%d, nil)", n, err, len(fill))
	}
	if d := ing.QueueDepth(); d != depth {
		t.Fatalf("QueueDepth = %d, want %d (exactly full)", d, depth)
	}
	if p := ing.Pending(); p != 0 {
		t.Fatalf("Pending = %d, want 0 after exact fill", p)
	}

	// Boundary 2: exactly one more full batch parks in pending — accepted,
	// nil error, even though the queue itself has no room.
	park := testStream(batch, 3)
	if n, err := ing.TryPushBatch(park); err != nil || n != batch {
		t.Fatalf("exact pending fill = (%d, %v), want (%d, nil)", n, err, batch)
	}
	if p := ing.Pending(); p != batch {
		t.Fatalf("Pending = %d, want %d (exactly full)", p, batch)
	}

	// Boundary 3: the first edge past the exactly-full pipeline sheds, and
	// sheds completely.
	extra := testStream(1, 4)
	if n, err := ing.TryPushBatch(extra); !errors.Is(err, ErrQueueFull) || n != 0 {
		t.Fatalf("offer past full = (%d, %v), want (0, ErrQueueFull)", n, err)
	}

	// Release the worker; the shed edge retries in and everything lands.
	close(dest.gate)
	for rest := extra; len(rest) > 0; {
		n, err := ing.TryPushBatch(rest)
		rest = rest[n:]
		if err != nil && !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		if errors.Is(err, ErrQueueFull) {
			runtime.Gosched()
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	want := int64(batch + batch*depth + batch + 1)
	if got := dest.Count(); got != want {
		t.Fatalf("edges applied = %d, want %d", got, want)
	}
}
