package ingest

import (
	"context"

	"github.com/graphstream/gsketch/internal/stream"
)

// PushCtx is Push with cancellation: it buffers one edge, and when doing so
// completes a batch that must be enqueued, honors ctx while blocked on a
// full queue. On cancellation the edge stays accepted (it is re-buffered,
// and a later push or Flush carries it through); the returned error is the
// context's.
func (in *Ingestor) PushCtx(ctx context.Context, e stream.Edge) error {
	_, err := in.PushBatchCtx(ctx, []stream.Edge{e})
	return err
}

// PushBatchCtx is PushBatch with cancellation. It copies edges into the
// pipeline exactly like PushBatch, but a producer blocked on a full queue
// unblocks when ctx is cancelled instead of waiting forever. It returns the
// number of edges accepted — on a clean return, all of them.
//
// Cancellation never loses accepted edges: a completed batch that could not
// be enqueued is folded back into the pending buffer, where the next push
// or Flush moves it along. The error is ctx.Err() on cancellation,
// ErrClosed after Close, nil otherwise.
func (in *Ingestor) PushBatchCtx(ctx context.Context, edges []stream.Edge) (int, error) {
	accepted := 0
	for len(edges) > 0 {
		if err := ctx.Err(); err != nil {
			return accepted, err
		}
		in.mu.Lock()
		if in.closed {
			in.mu.Unlock()
			return accepted, ErrClosed
		}
		if in.pending == nil {
			in.pending = in.bufPool.Get().([]stream.Edge)
		}
		room := in.cfg.BatchSize - len(in.pending)
		if room > len(edges) {
			room = len(edges)
		}
		if room > 0 {
			in.pending = append(in.pending, edges[:room]...)
			edges = edges[room:]
			accepted += room
		}
		var full []stream.Edge
		if len(in.pending) >= in.cfg.BatchSize {
			full = in.pending
			in.pending = nil
			in.addInflight()
		}
		in.mu.Unlock()
		if full != nil {
			if err := in.sendCtx(ctx, full); err != nil {
				return accepted, err
			}
		}
	}
	return accepted, nil
}

// sendCtx enqueues a completed batch, unblocking on ctx cancellation. A
// cancelled send re-buffers the batch under the lock (prepended, preserving
// arrival order as far as a concurrent producer allows) and retracts its
// inflight registration, so no accepted edge is lost and Flush still
// drains it.
func (in *Ingestor) sendCtx(ctx context.Context, full []stream.Edge) error {
	select {
	case in.ch <- full:
		return nil
	case <-ctx.Done():
	}
	in.mu.Lock()
	if in.closed {
		// A racing Close is parked on this batch's inflight registration
		// and no future push or Flush can run: re-buffering would strand
		// the batch forever. Finish the send instead — the workers stay up
		// until every inflight batch lands, so this blocks only until the
		// queue drains, exactly like Close itself.
		in.mu.Unlock()
		in.ch <- full
		return ctx.Err()
	}
	if len(in.pending) > 0 {
		full = append(full, in.pending...)
		in.bufPool.Put(in.pending[:0])
	}
	in.pending = full
	in.mu.Unlock()
	in.subInflight()
	return ctx.Err()
}

// FlushCtx is Flush with cancellation: it enqueues any partial batch
// (honoring ctx while blocked on a full queue) and waits for the pipeline
// to drain or the context to be cancelled, whichever comes first. A
// cancelled wait returns ctx.Err(); everything already accepted still
// drains in the background — a partial batch whose enqueue was cut short
// is handed to a detached sender rather than re-buffered, so it applies
// as soon as the workers catch up, with no further traffic needed.
func (in *Ingestor) FlushCtx(ctx context.Context) error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return ErrClosed
	}
	partial := in.pending
	in.pending = nil
	if len(partial) > 0 {
		in.addInflight()
	}
	in.mu.Unlock()
	if len(partial) > 0 {
		select {
		case in.ch <- partial:
		case <-ctx.Done():
			// The batch keeps its inflight registration, so Close cannot
			// close the channel before this send lands: the flush's drain
			// guarantee survives the caller's deadline.
			go func() { in.ch <- partial }()
			return ctx.Err()
		}
	} else if partial != nil {
		in.bufPool.Put(partial[:0])
	}
	return in.waitDrainedCtx(ctx)
}

// waitDrainedCtx waits on the drain condition until inflight hits zero or
// ctx is cancelled. context.AfterFunc pokes the condition variable on
// cancellation so the waiter re-checks instead of sleeping through it.
func (in *Ingestor) waitDrainedCtx(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		in.inflightMu.Lock()
		in.drained.Broadcast()
		in.inflightMu.Unlock()
	})
	defer stop()
	in.inflightMu.Lock()
	defer in.inflightMu.Unlock()
	for in.inflight > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		in.drained.Wait()
	}
	return nil
}
