package ingest

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// gate is an estimator whose UpdateBatch blocks until released — it wedges
// the workers so the queue fills and producers hit real backpressure.
type gate struct {
	mu      sync.Mutex
	release chan struct{}
	applied int64
}

func newGate() *gate { return &gate{release: make(chan struct{})} }

func (g *gate) Update(e stream.Edge) { g.UpdateBatch([]stream.Edge{e}) }
func (g *gate) UpdateBatch(edges []stream.Edge) {
	<-g.release
	g.mu.Lock()
	g.applied += int64(len(edges))
	g.mu.Unlock()
}
func (g *gate) EstimateEdge(src, dst uint64) int64              { return 0 }
func (g *gate) EstimateBatch(qs []core.EdgeQuery) []core.Result { return make([]core.Result, len(qs)) }
func (g *gate) Count() int64                                    { return 0 }
func (g *gate) MemoryBytes() int                                { return 0 }

func (g *gate) total() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.applied
}

// TestPushBatchCtxCancelUnblocks is the satellite guarantee: a producer
// blocked on a full queue (which, without a context, blocks forever)
// unblocks when its context is cancelled — and no accepted edge is lost.
func TestPushBatchCtxCancelUnblocks(t *testing.T) {
	dest := newGate()
	in, err := New(dest, Config{Workers: 1, BatchSize: 4, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Wedge the pipeline: 1 batch in the stalled worker, 1 in the queue.
	edges := make([]stream.Edge, 8)
	for i := range edges {
		edges[i] = stream.Edge{Src: uint64(i), Dst: 1, Weight: 1}
	}
	if err := in.PushBatch(edges); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan struct{})
	done := make(chan error, 1)
	var accepted int
	go func() {
		close(blocked)
		n, err := in.PushBatchCtx(ctx, edges) // 2 more batches: the send must block
		accepted = n
		done <- err
	}()
	<-blocked

	select {
	case err := <-done:
		t.Fatalf("PushBatchCtx returned (%v) with a wedged pipeline; want it blocked", err)
	case <-time.After(50 * time.Millisecond):
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PushBatchCtx = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled PushBatchCtx still blocked — cancellation does not unblock a stalled producer")
	}

	// Release the workers: everything accepted (wedge batches + the
	// cancelled call's accepted prefix) must still drain through Close.
	close(dest.release)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	want := int64(len(edges) + accepted)
	if got := dest.total(); got != want {
		t.Fatalf("drained %d edges, want %d (accepted prefix %d lost)", got, want, accepted)
	}
}

// TestFlushCtxCancel verifies a bounded flush: with the workers wedged the
// drain cannot complete, and a cancelled context returns instead of
// waiting forever.
func TestFlushCtxCancel(t *testing.T) {
	dest := newGate()
	in, err := New(dest, Config{Workers: 1, BatchSize: 4, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]stream.Edge, 6)
	for i := range edges {
		edges[i] = stream.Edge{Src: uint64(i), Dst: 1, Weight: 1}
	}
	if err := in.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := in.FlushCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FlushCtx = %v, want context.DeadlineExceeded", err)
	}
	close(dest.release)
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dest.total(); got != int64(len(edges)) {
		t.Fatalf("drained %d edges, want %d", got, len(edges))
	}
}

// TestPushBatchCtxNoCancelMatchesPushBatch pins the zero-cost path: with a
// background context the context-aware entry point behaves exactly like
// PushBatch (everything accepted, then drained).
func TestPushBatchCtxNoCancelMatchesPushBatch(t *testing.T) {
	dest := newGate()
	close(dest.release) // workers never block
	in, err := New(dest, Config{Workers: 2, BatchSize: 8, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]stream.Edge, 100)
	for i := range edges {
		edges[i] = stream.Edge{Src: uint64(i), Dst: 2, Weight: 1}
	}
	n, err := in.PushBatchCtx(context.Background(), edges)
	if err != nil || n != len(edges) {
		t.Fatalf("PushBatchCtx = (%d, %v), want (%d, nil)", n, err, len(edges))
	}
	if err := in.FlushCtx(context.Background()); err != nil {
		t.Fatalf("FlushCtx = %v", err)
	}
	if got := dest.total(); got != int64(len(edges)) {
		t.Fatalf("drained %d edges, want %d", got, len(edges))
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelledSendThenCloseLosesNothing pins the sendCtx/Close race: a
// producer whose cancelled send races Close must not strand its batch —
// either Close's drain carries it, or the send completes against the
// still-running workers. Every accepted edge lands.
func TestCancelledSendThenCloseLosesNothing(t *testing.T) {
	for i := 0; i < 20; i++ { // the race window is narrow; hammer it
		dest := newGate()
		in, err := New(dest, Config{Workers: 1, BatchSize: 4, QueueDepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		edges := make([]stream.Edge, 8)
		for j := range edges {
			edges[j] = stream.Edge{Src: uint64(j), Dst: 1, Weight: 1}
		}
		if err := in.PushBatch(edges); err != nil { // wedge worker + queue
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		pushed := make(chan int, 1)
		go func() {
			n, _ := in.PushBatchCtx(ctx, edges[:4]) // blocks on the full queue
			pushed <- n
		}()
		closed := make(chan error, 1)
		go func() {
			time.Sleep(time.Millisecond)
			closed <- in.Close()
		}()
		time.Sleep(2 * time.Millisecond)
		cancel()
		close(dest.release)
		if err := <-closed; err != nil {
			t.Fatal(err)
		}
		accepted := <-pushed
		if got, want := dest.total(), int64(len(edges)+accepted); got != want {
			t.Fatalf("round %d: drained %d edges, want %d (cancelled send lost a batch)", i, got, want)
		}
	}
}

// TestPushBatchAfterCancelledSend pins the over-full pending interaction:
// a cancelled send can re-buffer pending past BatchSize, and a subsequent
// plain PushBatch must neither panic on the negative room nor drop edges.
func TestPushBatchAfterCancelledSend(t *testing.T) {
	dest := newGate()
	in, err := New(dest, Config{Workers: 1, BatchSize: 4, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]stream.Edge, 16)
	for j := range edges {
		edges[j] = stream.Edge{Src: uint64(j), Dst: 1, Weight: 1}
	}
	if err := in.PushBatch(edges[:8]); err != nil { // wedge worker + queue
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = in.PushBatchCtx(ctx, edges[8:12]) // full batch, blocked send
	}()
	time.Sleep(5 * time.Millisecond)                   // let the send block
	if err := in.PushBatch(edges[12:14]); err != nil { // refills pending
		t.Fatal(err)
	}
	cancel() // re-buffers 4 + 2 = 6 > BatchSize into pending
	<-done
	// The over-full pending must flow through a plain PushBatch unharmed
	// (the gate opens first: its enqueue is a normal blocking send).
	close(dest.release)
	if err := in.PushBatch(edges[14:16]); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dest.total(); got != int64(len(edges)) {
		t.Fatalf("drained %d edges, want %d", got, len(edges))
	}
}

// TestFlushCtxCancelStillDrainsPartial pins the background-drain guarantee:
// a partial batch whose enqueue was cut short by the flush deadline must
// still apply once the workers catch up, with NO further pushes or flushes.
func TestFlushCtxCancelStillDrainsPartial(t *testing.T) {
	dest := newGate()
	in, err := New(dest, Config{Workers: 1, BatchSize: 4, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]stream.Edge, 10) // 2 full batches wedge worker+queue, 2 pend
	for i := range edges {
		edges[i] = stream.Edge{Src: uint64(i), Dst: 3, Weight: 1}
	}
	if err := in.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := in.FlushCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FlushCtx = %v, want context.DeadlineExceeded", err)
	}
	close(dest.release)
	deadline := time.Now().Add(2 * time.Second)
	for dest.total() != int64(len(edges)) {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled flush stranded the partial batch: %d/%d edges applied", dest.total(), len(edges))
		}
		time.Sleep(time.Millisecond)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}
