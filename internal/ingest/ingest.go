// Package ingest provides the parallel batch-ingestion pipeline: a bounded
// multi-producer queue of edge batches drained by N workers into a shared
// estimator (normally a core.Concurrent wrapping a gSketch, whose
// partition-sharded locking lets the workers proceed in parallel).
//
// The pipeline decouples stream arrival from counter mutation:
//
//	producers ──Push/PushBatch──▶ bounded channel ──▶ N workers ──▶ Estimator.UpdateBatch
//
// Backpressure is the channel bound: when the workers fall behind, Push
// blocks instead of buffering unboundedly. Flush waits for everything
// accepted so far to be applied; Close flushes, stops the workers and makes
// further pushes fail with ErrClosed.
package ingest

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// ErrClosed reports a push or flush against a closed ingestor.
var ErrClosed = errors.New("ingest: ingestor is closed")

// ErrQueueFull reports that a non-blocking push could not enqueue a batch
// because the pipeline is at capacity. It is the typed shed-load signal:
// callers that must not block (a serving frontend mapping backpressure to
// 429, say) test for it with errors.Is and retry later, while ErrClosed
// stays a hard failure.
var ErrQueueFull = errors.New("ingest: queue full")

// Config parameterizes an Ingestor. The zero value selects sensible
// defaults for every field.
type Config struct {
	// Workers is the number of goroutines applying batches (default
	// GOMAXPROCS). With a sharded Concurrent target, workers contend only
	// when their batches collide on a partition.
	Workers int
	// BatchSize is the number of edges buffered per Push before a batch is
	// enqueued (default 1024). Larger batches amortize routing and locking
	// further at the cost of ingest-to-visibility latency.
	BatchSize int
	// QueueDepth is the bound of the batch channel (default 4×Workers).
	// Once QueueDepth batches are in flight, pushes block — the pipeline's
	// backpressure.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1024
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Workers < 0 || c.BatchSize < 0 || c.QueueDepth < 0 {
		return fmt.Errorf("ingest: negative config value (workers=%d batch=%d queue=%d)",
			c.Workers, c.BatchSize, c.QueueDepth)
	}
	return nil
}

// Ingestor is the multi-producer, N-worker batch pipeline. All methods are
// safe for concurrent use.
type Ingestor struct {
	dest core.Estimator
	cfg  Config

	ch      chan []stream.Edge
	workers sync.WaitGroup
	bufPool sync.Pool // []stream.Edge with cap = BatchSize

	mu      sync.Mutex
	pending []stream.Edge
	closed  bool
	done    chan struct{} // closed once the first Close fully drains

	// inflight counts batches enqueued but not yet applied; drained tracks
	// Flush waiters. A plain counter + cond (rather than a WaitGroup) keeps
	// concurrent Push/Flush free of the Add-after-Wait caveat.
	inflight   int
	inflightMu sync.Mutex
	drained    *sync.Cond

	edges   atomic.Int64
	batches atomic.Int64
	sheds   atomic.Int64
}

// New starts an ingestor feeding dest. Callers stream edges with Push or
// PushBatch and must Close (or at least Flush) before querying dest for
// final results.
func New(dest core.Estimator, cfg Config) (*Ingestor, error) {
	if dest == nil {
		return nil, errors.New("ingest: nil destination estimator")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	in := &Ingestor{
		dest: dest,
		cfg:  cfg,
		ch:   make(chan []stream.Edge, cfg.QueueDepth),
		done: make(chan struct{}),
	}
	in.bufPool.New = func() any { return make([]stream.Edge, 0, cfg.BatchSize) }
	in.drained = sync.NewCond(&in.inflightMu)
	in.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go in.worker()
	}
	return in, nil
}

func (in *Ingestor) worker() {
	defer in.workers.Done()
	for batch := range in.ch {
		in.dest.UpdateBatch(batch)
		in.edges.Add(int64(len(batch)))
		in.batches.Add(1)
		in.bufPool.Put(batch[:0])
		in.inflightMu.Lock()
		in.inflight--
		if in.inflight == 0 {
			in.drained.Broadcast()
		}
		in.inflightMu.Unlock()
	}
}

// addInflight registers a batch about to be sent. It is called while in.mu
// is held, so the closed check and the inflight increment are atomic with
// respect to Close — once Close observes inflight == 0 after setting
// closed, no further sends can occur and the channel is safe to close.
func (in *Ingestor) addInflight() {
	in.inflightMu.Lock()
	in.inflight++
	in.inflightMu.Unlock()
}

// subInflight retracts a registration made by addInflight when the
// non-blocking send it covered did not happen. The zero-crossing broadcast
// mirrors the worker's, so a Flush that started waiting between the add and
// the retraction still wakes.
func (in *Ingestor) subInflight() {
	in.inflightMu.Lock()
	in.inflight--
	if in.inflight == 0 {
		in.drained.Broadcast()
	}
	in.inflightMu.Unlock()
}

// Push buffers one edge, enqueuing a batch every BatchSize edges. It blocks
// when the pipeline is at capacity and returns ErrClosed after Close.
func (in *Ingestor) Push(e stream.Edge) error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return ErrClosed
	}
	if in.pending == nil {
		in.pending = in.bufPool.Get().([]stream.Edge)
	}
	in.pending = append(in.pending, e)
	var full []stream.Edge
	if len(in.pending) >= in.cfg.BatchSize {
		full = in.pending
		in.pending = nil
		in.addInflight()
	}
	in.mu.Unlock()
	if full != nil {
		in.ch <- full
	}
	return nil
}

// PushBatch copies a slice of edges into the pipeline (the caller keeps
// ownership of edges) and enqueues every full batch it completes.
//
// Full batches take a fast path: the producer mutex covers only the
// closed-check and the in-flight registration, and the copy into the
// pooled batch buffer happens outside it, so concurrent producers
// serialize on a few instructions instead of a BatchSize memcpy.
func (in *Ingestor) PushBatch(edges []stream.Edge) error {
	for len(edges) >= in.cfg.BatchSize {
		in.mu.Lock()
		if in.closed {
			in.mu.Unlock()
			return ErrClosed
		}
		if len(in.pending) != 0 {
			// A partial batch is buffered; fall through to the slow path so
			// this producer's earlier edges stay ahead of these.
			in.mu.Unlock()
			break
		}
		in.addInflight()
		in.mu.Unlock()
		buf := in.bufPool.Get().([]stream.Edge)
		buf = append(buf, edges[:in.cfg.BatchSize]...)
		edges = edges[in.cfg.BatchSize:]
		in.ch <- buf
	}
	for len(edges) > 0 {
		in.mu.Lock()
		if in.closed {
			in.mu.Unlock()
			return ErrClosed
		}
		if in.pending == nil {
			in.pending = in.bufPool.Get().([]stream.Edge)
		}
		// A cancelled PushBatchCtx may have re-buffered an over-full batch,
		// so room can be negative: buffer nothing this round and let the
		// enqueue below push the oversized pending through.
		room := in.cfg.BatchSize - len(in.pending)
		if room < 0 {
			room = 0
		}
		if room > len(edges) {
			room = len(edges)
		}
		in.pending = append(in.pending, edges[:room]...)
		edges = edges[room:]
		var full []stream.Edge
		if len(in.pending) >= in.cfg.BatchSize {
			full = in.pending
			in.pending = nil
			in.addInflight()
		}
		in.mu.Unlock()
		if full != nil {
			in.ch <- full
		}
	}
	return nil
}

// TryPush offers one edge without blocking. It returns ErrQueueFull when
// accepting the edge would complete a batch that the queue cannot take
// right now; the edge is not consumed and the caller may retry.
func (in *Ingestor) TryPush(e stream.Edge) error {
	accepted, err := in.TryPushBatch([]stream.Edge{e})
	if accepted == 1 {
		return nil
	}
	return err
}

// TryPushBatch copies as many edges as fit into the pipeline without ever
// blocking on a full queue. It returns the number of edges accepted (always
// a prefix of edges, applied in order) and ErrQueueFull when capacity ran
// out before the rest could be buffered, or ErrClosed after Close. Accepted
// edges are owned by the pipeline exactly as with PushBatch; rejected edges
// remain the caller's to retry.
func (in *Ingestor) TryPushBatch(edges []stream.Edge) (int, error) {
	accepted := 0
	// Fast path, mirroring PushBatch: full batches are copied outside the
	// producer mutex and offered to the queue directly. A full queue falls
	// back to the buffering loop below, so the accept/shed semantics stay
	// exactly those of the slow path (one batch can always park in
	// pending).
fast:
	for len(edges) >= in.cfg.BatchSize {
		in.mu.Lock()
		if in.closed {
			in.mu.Unlock()
			return accepted, ErrClosed
		}
		if len(in.pending) != 0 {
			in.mu.Unlock()
			break
		}
		in.addInflight()
		in.mu.Unlock()
		buf := in.bufPool.Get().([]stream.Edge)
		buf = append(buf, edges[:in.cfg.BatchSize]...)
		select {
		case in.ch <- buf:
			accepted += in.cfg.BatchSize
			edges = edges[in.cfg.BatchSize:]
		default:
			in.bufPool.Put(buf[:0])
			in.subInflight()
			break fast
		}
	}
	for {
		in.mu.Lock()
		if in.closed {
			in.mu.Unlock()
			return accepted, ErrClosed
		}
		// Drain a completed batch first (a previous TryPushBatch may have
		// left pending exactly full after a failed enqueue).
		if len(in.pending) >= in.cfg.BatchSize {
			full := in.pending
			in.addInflight()
			select {
			case in.ch <- full:
				in.pending = nil
			default:
				in.subInflight()
				in.mu.Unlock()
				if len(edges) == 0 {
					// Everything offered was buffered; the failed drain
					// was opportunistic, not a shed — Flush will push the
					// full pending batch through.
					return accepted, nil
				}
				in.sheds.Add(1)
				return accepted, ErrQueueFull
			}
		}
		if len(edges) == 0 {
			in.mu.Unlock()
			return accepted, nil
		}
		if in.pending == nil {
			in.pending = in.bufPool.Get().([]stream.Edge)
		}
		room := in.cfg.BatchSize - len(in.pending)
		if room > len(edges) {
			room = len(edges)
		}
		in.pending = append(in.pending, edges[:room]...)
		edges = edges[room:]
		accepted += room
		in.mu.Unlock()
	}
}

// Flush enqueues any partial batch and blocks until the pipeline is fully
// drained, which covers every batch accepted before the call. The drain
// condition is global: if other producers keep pushing concurrently, Flush
// also waits for their in-flight batches and may not return until the
// pipeline next idles — quiesce producers first when a bounded wait
// matters.
func (in *Ingestor) Flush() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return ErrClosed
	}
	partial := in.pending
	in.pending = nil
	if len(partial) > 0 {
		in.addInflight()
	}
	in.mu.Unlock()
	if len(partial) > 0 {
		in.ch <- partial
	} else if partial != nil {
		in.bufPool.Put(partial[:0])
	}
	in.waitDrained()
	return nil
}

func (in *Ingestor) waitDrained() {
	in.inflightMu.Lock()
	for in.inflight > 0 {
		in.drained.Wait()
	}
	in.inflightMu.Unlock()
}

// Close flushes buffered edges, waits for the queue to drain, stops the
// workers and releases the pipeline. Further pushes return ErrClosed.
// Close is idempotent, and every Close call blocks until the drain is
// complete — a second caller returns only once the first finishes, so
// "Close then read results" is safe from any goroutine.
func (in *Ingestor) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		<-in.done
		return nil
	}
	in.closed = true
	partial := in.pending
	in.pending = nil
	if len(partial) > 0 {
		in.addInflight()
	}
	in.mu.Unlock()
	if len(partial) > 0 {
		in.ch <- partial
	}
	in.waitDrained()
	close(in.ch)
	in.workers.Wait()
	close(in.done)
	return nil
}

// Edges returns the number of edges applied to the destination so far
// (buffered and in-flight edges are not yet counted).
func (in *Ingestor) Edges() int64 { return in.edges.Load() }

// Batches returns the number of batches applied so far.
func (in *Ingestor) Batches() int64 { return in.batches.Load() }

// Sheds counts TryPush/TryPushBatch calls that returned ErrQueueFull —
// the load-shedding events a 429-mapping frontend has surfaced.
func (in *Ingestor) Sheds() int64 { return in.sheds.Load() }

// QueueDepth returns the number of batches currently waiting in the queue
// (enqueued but not yet picked up by a worker). Together with QueueCap it
// is the load-shedding signal: TryPush starts failing when the queue is at
// capacity.
func (in *Ingestor) QueueDepth() int { return len(in.ch) }

// QueueCap returns the queue bound (Config.QueueDepth after defaulting).
func (in *Ingestor) QueueCap() int { return cap(in.ch) }

// Inflight returns the number of batches accepted into the queue but not
// yet fully applied to the destination — queued batches plus those a worker
// is currently folding in. It reaches 0 exactly when Flush would return
// immediately.
func (in *Ingestor) Inflight() int {
	in.inflightMu.Lock()
	n := in.inflight
	in.inflightMu.Unlock()
	return n
}

// Pending returns the number of edges buffered toward the next batch (not
// yet enqueued; Flush pushes them through).
func (in *Ingestor) Pending() int {
	in.mu.Lock()
	n := len(in.pending)
	in.mu.Unlock()
	return n
}

// Workers returns the resolved worker count.
func (in *Ingestor) Workers() int { return in.cfg.Workers }

// BatchSize returns the resolved batch size.
func (in *Ingestor) BatchSize() int { return in.cfg.BatchSize }
