package ingest

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

func testStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 2000,
			Dst:    rng.Uint64() % 6000,
			Weight: int64(rng.Uint64() % 3),
		}
	}
	return edges
}

// exactTarget builds a sharded Concurrent over Exact-synopsis partitions,
// so ingested estimates must equal ground truth exactly.
func exactTarget(t *testing.T) *core.Concurrent {
	t.Helper()
	cfg := core.Config{
		TotalWidth: 2048,
		Seed:       5,
		Factory: func(w, d int, seed uint64) (sketch.Synopsis, error) {
			return sketch.NewExact(), nil
		},
	}
	g, err := core.BuildGSketch(cfg, testStream(3000, 99), nil)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewConcurrent(g)
}

// TestIngestorManyProducersExact is the end-to-end pipeline test: several
// producers mixing Push and PushBatch, drained by several workers into the
// sharded estimator, cross-checked against an exact counter. Run with
// -race this is the primary concurrency test of the package.
func TestIngestorManyProducersExact(t *testing.T) {
	const producers = 6
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 4, BatchSize: 256, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}

	streams := make([][]stream.Edge, producers)
	truth := stream.NewExactCounter()
	for p := range streams {
		streams[p] = testStream(10_000, uint64(500+p))
		truth.ObserveAll(streams[p])
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(edges []stream.Edge, viaBatch bool) {
			defer wg.Done()
			if viaBatch {
				if err := ing.PushBatch(edges); err != nil {
					t.Errorf("PushBatch: %v", err)
				}
				return
			}
			for _, e := range edges {
				if err := ing.Push(e); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(streams[p], p%2 == 0)
	}
	wg.Wait()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	wantEdges := int64(producers * 10_000)
	if ing.Edges() != wantEdges {
		t.Fatalf("Edges = %d, want %d", ing.Edges(), wantEdges)
	}
	if c.Count() != truth.Total() {
		t.Fatalf("Count = %d, want %d", c.Count(), truth.Total())
	}
	checked := 0
	truth.RangeEdges(func(src, dst uint64, f int64) bool {
		if got := c.EstimateEdge(src, dst); got != f {
			t.Errorf("estimate (%d,%d) = %d, want %d", src, dst, got, f)
			return false
		}
		checked++
		return checked < 10_000
	})
	if checked == 0 {
		t.Fatal("nothing cross-checked")
	}
}

func TestIngestorFlushMakesVisible(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 2, BatchSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	e := stream.Edge{Src: 1, Dst: 2, Weight: 7}
	for i := 0; i < 5; i++ {
		if err := ing.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	// Batch (1000) not full: nothing guaranteed visible yet. Flush forces it.
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.EstimateEdge(1, 2); got != 35 {
		t.Fatalf("after Flush estimate = %d, want 35", got)
	}
	if ing.Edges() != 5 {
		t.Fatalf("Edges = %d, want 5", ing.Edges())
	}
	// Flush with nothing pending is a no-op.
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestIngestorCloseLifecycle(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 2, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(1000, 1)
	if err := ing.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Push(edges[0]); err != ErrClosed {
		t.Fatalf("Push after Close = %v, want ErrClosed", err)
	}
	if err := ing.PushBatch(edges); err != ErrClosed {
		t.Fatalf("PushBatch after Close = %v, want ErrClosed", err)
	}
	if err := ing.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	if ing.Edges() != 1000 {
		t.Fatalf("Edges = %d, want 1000", ing.Edges())
	}
}

// TestIngestorConcurrentClose races several Close calls: every one must
// block until the drain completes, so all callers observe final counts.
func TestIngestorConcurrentClose(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 2, BatchSize: 32, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(20_000, 3)
	truth := stream.NewExactCounter()
	truth.ObserveAll(edges)
	if err := ing.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ing.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			// Any returning Close must see the fully drained state.
			if got := c.Count(); got != truth.Total() {
				t.Errorf("Count after Close = %d, want %d", got, truth.Total())
			}
		}()
	}
	wg.Wait()
}

// TestIngestorBackpressure fills a depth-1 queue against slow workers and
// checks every edge still lands (pushes block rather than drop).
func TestIngestorBackpressure(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 1, BatchSize: 16, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(5000, 2)
	truth := stream.NewExactCounter()
	truth.ObserveAll(edges)
	if err := ing.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Count() != truth.Total() {
		t.Fatalf("Count = %d, want %d", c.Count(), truth.Total())
	}
}

func TestIngestorConfigDefaults(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	if ing.Workers() < 1 || ing.BatchSize() != 1024 {
		t.Fatalf("defaults not applied: workers=%d batch=%d", ing.Workers(), ing.BatchSize())
	}
}

func TestIngestorRejectsBadInput(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil destination accepted")
	}
	c := exactTarget(t)
	if _, err := New(c, Config{Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
}

// gateEstimator blocks every UpdateBatch on a gate channel, making
// queue-full states deterministic for the shed-load tests.
type gateEstimator struct {
	gate  chan struct{}
	edges atomic.Int64
}

func (g *gateEstimator) Update(e stream.Edge)               { g.UpdateBatch([]stream.Edge{e}) }
func (g *gateEstimator) UpdateBatch(es []stream.Edge)       { <-g.gate; g.edges.Add(int64(len(es))) }
func (g *gateEstimator) EstimateEdge(src, dst uint64) int64 { return 0 }
func (g *gateEstimator) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	return make([]core.Result, len(qs))
}
func (g *gateEstimator) Count() int64     { return g.edges.Load() }
func (g *gateEstimator) MemoryBytes() int { return 0 }

// TestTryPushBatchShedsLoad drives the pipeline into a deterministic
// queue-full state and checks that TryPushBatch accepts exactly the prefix
// it can buffer, reports ErrQueueFull for the rest, and that the counters
// expose the state the server's 429 mapping needs.
func TestTryPushBatchShedsLoad(t *testing.T) {
	dest := &gateEstimator{gate: make(chan struct{})}
	ing, err := New(dest, Config{Workers: 1, BatchSize: 4, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(8, 7)
	// Blocking path: batch 1 ends up held by the (gated) worker, batch 2
	// fills the depth-1 queue.
	if err := ing.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	if d, c := ing.QueueDepth(), ing.QueueCap(); d != 1 || c != 1 {
		t.Fatalf("QueueDepth/Cap = %d/%d, want 1/1", d, c)
	}
	if n := ing.Inflight(); n != 2 {
		t.Fatalf("Inflight = %d, want 2", n)
	}

	// Non-blocking path: exactly one batch still fits in the pending
	// buffer. Fully-buffered offers are not a shed, even though the
	// opportunistic enqueue failed...
	more := testStream(8, 8)
	if n, err := ing.TryPushBatch(more[:4]); err != nil || n != 4 {
		t.Fatalf("boundary TryPushBatch = (%d, %v), want (4, nil)", n, err)
	}
	// ...but the next offer has nowhere to go and must shed everything.
	accepted, err := ing.TryPushBatch(more[4:])
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TryPushBatch err = %v, want ErrQueueFull", err)
	}
	if accepted != 0 {
		t.Fatalf("accepted = %d, want 0", accepted)
	}
	accepted = 4 + accepted // prefix of `more` buffered so far
	if n := ing.Pending(); n != 4 {
		t.Fatalf("Pending = %d, want 4", n)
	}
	if err := ing.TryPush(more[4]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TryPush err = %v, want ErrQueueFull", err)
	}

	// Release the workers; the rejected suffix can now be retried and the
	// pipeline drains completely.
	close(dest.gate)
	for rest := more[accepted:]; len(rest) > 0; {
		n, err := ing.TryPushBatch(rest)
		rest = rest[n:]
		if err != nil && !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		if errors.Is(err, ErrQueueFull) {
			runtime.Gosched()
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dest.Count(); got != 16 {
		t.Fatalf("edges applied = %d, want 16", got)
	}
	if n := ing.Inflight(); n != 0 {
		t.Fatalf("Inflight after Close = %d, want 0", n)
	}
	if _, err := ing.TryPushBatch(more); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPushBatch after Close err = %v, want ErrClosed", err)
	}
}

// TestTryPushBatchEquivalence checks that a stream fed entirely through the
// non-blocking path (with retries) lands identically to ground truth.
func TestTryPushBatchEquivalence(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 2, BatchSize: 64, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(20_000, 11)
	truth := stream.NewExactCounter()
	truth.ObserveAll(edges)
	for rest := edges; len(rest) > 0; {
		n, err := ing.TryPushBatch(rest)
		rest = rest[n:]
		if err != nil && !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
		if errors.Is(err, ErrQueueFull) {
			runtime.Gosched()
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Count() != truth.Total() {
		t.Fatalf("Count = %d, want %d", c.Count(), truth.Total())
	}
	bad := 0
	truth.RangeEdges(func(src, dst uint64, want int64) bool {
		if got := c.EstimateEdge(src, dst); got != want {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Fatalf("%d edges differ from exact ground truth", bad)
	}
}
