package ingest

import (
	"sync"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/sketch"
	"github.com/graphstream/gsketch/internal/stream"
)

func testStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 2000,
			Dst:    rng.Uint64() % 6000,
			Weight: int64(rng.Uint64() % 3),
		}
	}
	return edges
}

// exactTarget builds a sharded Concurrent over Exact-synopsis partitions,
// so ingested estimates must equal ground truth exactly.
func exactTarget(t *testing.T) *core.Concurrent {
	t.Helper()
	cfg := core.Config{
		TotalWidth: 2048,
		Seed:       5,
		Factory: func(w, d int, seed uint64) (sketch.Synopsis, error) {
			return sketch.NewExact(), nil
		},
	}
	g, err := core.BuildGSketch(cfg, testStream(3000, 99), nil)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewConcurrent(g)
}

// TestIngestorManyProducersExact is the end-to-end pipeline test: several
// producers mixing Push and PushBatch, drained by several workers into the
// sharded estimator, cross-checked against an exact counter. Run with
// -race this is the primary concurrency test of the package.
func TestIngestorManyProducersExact(t *testing.T) {
	const producers = 6
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 4, BatchSize: 256, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}

	streams := make([][]stream.Edge, producers)
	truth := stream.NewExactCounter()
	for p := range streams {
		streams[p] = testStream(10_000, uint64(500+p))
		truth.ObserveAll(streams[p])
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(edges []stream.Edge, viaBatch bool) {
			defer wg.Done()
			if viaBatch {
				if err := ing.PushBatch(edges); err != nil {
					t.Errorf("PushBatch: %v", err)
				}
				return
			}
			for _, e := range edges {
				if err := ing.Push(e); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(streams[p], p%2 == 0)
	}
	wg.Wait()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	wantEdges := int64(producers * 10_000)
	if ing.Edges() != wantEdges {
		t.Fatalf("Edges = %d, want %d", ing.Edges(), wantEdges)
	}
	if c.Count() != truth.Total() {
		t.Fatalf("Count = %d, want %d", c.Count(), truth.Total())
	}
	checked := 0
	truth.RangeEdges(func(src, dst uint64, f int64) bool {
		if got := c.EstimateEdge(src, dst); got != f {
			t.Errorf("estimate (%d,%d) = %d, want %d", src, dst, got, f)
			return false
		}
		checked++
		return checked < 10_000
	})
	if checked == 0 {
		t.Fatal("nothing cross-checked")
	}
}

func TestIngestorFlushMakesVisible(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 2, BatchSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	e := stream.Edge{Src: 1, Dst: 2, Weight: 7}
	for i := 0; i < 5; i++ {
		if err := ing.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	// Batch (1000) not full: nothing guaranteed visible yet. Flush forces it.
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.EstimateEdge(1, 2); got != 35 {
		t.Fatalf("after Flush estimate = %d, want 35", got)
	}
	if ing.Edges() != 5 {
		t.Fatalf("Edges = %d, want 5", ing.Edges())
	}
	// Flush with nothing pending is a no-op.
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestIngestorCloseLifecycle(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 2, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(1000, 1)
	if err := ing.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Push(edges[0]); err != ErrClosed {
		t.Fatalf("Push after Close = %v, want ErrClosed", err)
	}
	if err := ing.PushBatch(edges); err != ErrClosed {
		t.Fatalf("PushBatch after Close = %v, want ErrClosed", err)
	}
	if err := ing.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	if ing.Edges() != 1000 {
		t.Fatalf("Edges = %d, want 1000", ing.Edges())
	}
}

// TestIngestorConcurrentClose races several Close calls: every one must
// block until the drain completes, so all callers observe final counts.
func TestIngestorConcurrentClose(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 2, BatchSize: 32, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(20_000, 3)
	truth := stream.NewExactCounter()
	truth.ObserveAll(edges)
	if err := ing.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ing.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			// Any returning Close must see the fully drained state.
			if got := c.Count(); got != truth.Total() {
				t.Errorf("Count after Close = %d, want %d", got, truth.Total())
			}
		}()
	}
	wg.Wait()
}

// TestIngestorBackpressure fills a depth-1 queue against slow workers and
// checks every edge still lands (pushes block rather than drop).
func TestIngestorBackpressure(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{Workers: 1, BatchSize: 16, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	edges := testStream(5000, 2)
	truth := stream.NewExactCounter()
	truth.ObserveAll(edges)
	if err := ing.PushBatch(edges); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Count() != truth.Total() {
		t.Fatalf("Count = %d, want %d", c.Count(), truth.Total())
	}
}

func TestIngestorConfigDefaults(t *testing.T) {
	c := exactTarget(t)
	ing, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	if ing.Workers() < 1 || ing.BatchSize() != 1024 {
		t.Fatalf("defaults not applied: workers=%d batch=%d", ing.Workers(), ing.BatchSize())
	}
}

func TestIngestorRejectsBadInput(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil destination accepted")
	}
	c := exactTarget(t)
	if _, err := New(c, Config{Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
}
