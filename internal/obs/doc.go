// Package obs is the serving stack's dependency-free observability
// kit: a metrics registry (counters, gauges, fixed-bucket latency
// histograms) that renders Prometheus text exposition format 0.0.4,
// plus component-scoped structured logging built on log/slog.
//
// Instruments are resolved once at registration and are lock-free and
// allocation-free to update afterwards — a histogram Observe is two
// atomic adds and a bucket-index binary search — so they can sit on the
// wire-protocol ingest hot path without moving the allocs-per-edge
// guards. Scrape-time collection (GaugeFunc/CounterFunc) runs under the
// scrape, never under ingest; AddPrepare hooks let many gauge funcs
// share one snapshot of an expensive stats call per scrape.
//
// Quantile derives p50/p99-style estimates by linear interpolation
// inside the crossing bucket, matching what Prometheus'
// histogram_quantile would compute from the exported buckets, so
// client-side and server-side latency views are comparable.
//
// ParseFamilies is the inverse of Registry.WriteTo — a small exposition
// parser used by tests to assert format validity (HELP/TYPE pairing,
// bucket monotonicity, le="+Inf" terminals) and by gsketch-bench to
// scrape server-side histograms into its reports.
package obs
