package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a component-ready *slog.Logger writing to w.
// level is one of debug|info|warn|error (default info), format is
// json or text (default text). Callers scope it per component with
// logger.With("component", ...).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(strings.TrimSpace(level)) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want json|text)", format)
	}
}

// NopLogger returns a logger that discards everything — the default
// for embedded use, so library components can log unconditionally.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
