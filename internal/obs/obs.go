package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, rendered as {key="value"}.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency bucket upper bounds in seconds,
// ~100µs to 10s: wide enough for a loopback wire frame and a cold
// cluster scatter alike.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Buckets are cumulative
// at render time but stored as per-bucket atomic counters, so Observe is
// lock-free and allocation-free on the hot path. The observed sum is
// kept in integer nanoseconds to stay a single atomic add.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records a duration in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(seconds * 1e9))
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.ObserveDuration(time.Since(start))
}

// ObserveDuration records a duration.
func (h *Histogram) ObserveDuration(d time.Duration) {
	i := sort.SearchFloat64s(h.bounds, d.Seconds())
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count is the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum is the sum of all observed values in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Quantile derives the q-quantile (0..1) by linear interpolation inside
// the bucket that crosses rank q·count, the same estimate Prometheus'
// histogram_quantile computes server-side. Returns 0 with no
// observations; the top bucket clamps to its lower bound (the
// conventional +Inf answer).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind is the Prometheus TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// SetSample is one dynamically labeled value, produced at scrape time
// by a GaugeSet/CounterSet collector — the shape for series that come
// and go at runtime (per-tenant gauges, say), where registering a
// static child per label set would leak series after the labeled thing
// is deleted.
type SetSample struct {
	Labels []Label
	Value  float64
}

// series is one labeled child of a family.
type series struct {
	labels []Label
	// exactly one of these is set, matching the family kind
	counter     *Counter
	counterFunc func() int64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
	setFunc     func() []SetSample
}

// family groups same-named series under one HELP/TYPE header.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format (version 0.0.4). Registration takes a lock; reads
// on registered instruments are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	prepare  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// AddPrepare registers a hook run once at the start of every scrape,
// before any GaugeFunc/CounterFunc is collected — the place to refresh
// a shared snapshot many gauge funcs read, instead of recomputing it
// per gauge.
func (r *Registry) AddPrepare(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prepare = append(r.prepare, fn)
}

func (r *Registry) register(name, help string, kind metricKind, s *series) {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	for _, prev := range f.series {
		if labelsEqual(prev.labels, s.labels) {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, renderLabels(s.labels)))
		}
	}
	f.series = append(f.series, s)
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or panics on duplicate) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: labels, counter: c})
	return c
}

// CounterFunc registers a counter collected by calling fn at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: labels, counterFunc: fn})
}

// Gauge registers a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge collected by calling fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: labels, gaugeFunc: fn})
}

// Histogram registers a histogram series with the given bucket upper
// bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, kindHistogram, &series{labels: labels, hist: h})
	return h
}

// GaugeSet registers a gauge family whose entire series set is produced
// by fn at scrape time — for label sets that change at runtime. The
// family owns its name: mixing a set with static series panics like any
// duplicate registration.
func (r *Registry) GaugeSet(name, help string, fn func() []SetSample) {
	r.register(name, help, kindGauge, &series{setFunc: fn})
}

// CounterSet is GaugeSet for counters. fn must return monotonically
// non-decreasing values per label set for the exposition to be a valid
// counter.
func (r *Registry) CounterSet(name, help string, fn func() []SetSample) {
	r.register(name, help, kindCounter, &series{setFunc: fn})
}

// WriteTo renders every family in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	prepare := append([]func(){}, r.prepare...)
	names := append([]string{}, r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, fn := range prepare {
		fn()
	}

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.series {
			renderSeries(&b, f, s)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func renderSeries(b *strings.Builder, f *family, s *series) {
	if s.setFunc != nil {
		for _, sm := range s.setFunc() {
			if f.kind == kindCounter {
				writeSample(b, f.name, sm.Labels, nil, strconv.FormatInt(int64(sm.Value), 10))
			} else {
				writeSample(b, f.name, sm.Labels, nil, formatFloat(sm.Value))
			}
		}
		return
	}
	switch f.kind {
	case kindCounter:
		v := int64(0)
		if s.counter != nil {
			v = s.counter.Value()
		} else if s.counterFunc != nil {
			v = s.counterFunc()
		}
		writeSample(b, f.name, s.labels, nil, strconv.FormatInt(v, 10))
	case kindGauge:
		v := 0.0
		if s.gauge != nil {
			v = s.gauge.Value()
		} else if s.gaugeFunc != nil {
			v = s.gaugeFunc()
		}
		writeSample(b, f.name, s.labels, nil, formatFloat(v))
	case kindHistogram:
		h := s.hist
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			writeSample(b, f.name+"_bucket", s.labels,
				&Label{Key: "le", Value: formatFloat(bound)},
				strconv.FormatInt(cum, 10))
		}
		cum += h.buckets[len(h.bounds)].Load()
		writeSample(b, f.name+"_bucket", s.labels,
			&Label{Key: "le", Value: "+Inf"},
			strconv.FormatInt(cum, 10))
		writeSample(b, f.name+"_sum", s.labels, nil, formatFloat(h.Sum()))
		writeSample(b, f.name+"_count", s.labels, nil, strconv.FormatInt(h.Count(), 10))
	}
}

func writeSample(b *strings.Builder, name string, labels []Label, extra *Label, value string) {
	b.WriteString(name)
	if len(labels) > 0 || extra != nil {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			writeLabel(b, l)
		}
		if extra != nil {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			writeLabel(b, *extra)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func writeLabel(b *strings.Builder, l Label) {
	b.WriteString(l.Key)
	b.WriteString(`="`)
	b.WriteString(escapeLabel(l.Value))
	b.WriteByte('"')
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		writeLabel(&b, l)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as text/plain exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
