package obs

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogramQuantileBracketsInjectedLatencies(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", nil)
	// 90 fast observations at ~2ms, 10 slow at ~80ms: p50 must land in
	// the 1ms–2.5ms bucket, p99 in the 50ms–100ms bucket.
	for i := 0; i < 90; i++ {
		h.Observe(0.002)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.080)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	wantSum := 90*0.002 + 10*0.080
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.001 || p50 > 0.0025 {
		t.Fatalf("p50 = %v, want within (0.001, 0.0025]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.05 || p99 > 0.1 {
		t.Fatalf("p99 = %v, want within (0.05, 0.1]", p99)
	}
	if q := h.Quantile(0); q < 0 || q > 0.0025 {
		t.Fatalf("q0 = %v out of low bucket", q)
	}
}

func TestHistogramObserveSinceAndOverflow(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	h.ObserveSince(time.Now().Add(-5 * time.Millisecond))
	h.Observe(100) // lands in +Inf
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	// +Inf observations clamp to the top finite bound.
	if q := h.Quantile(1); q != 0.01 {
		t.Fatalf("q1 = %v, want clamp to 0.01", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(nil)
	var wg sync.WaitGroup
	const per = 1000
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w+1) * 0.0001)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 8*per {
		t.Fatalf("count = %d, want %d", got, 8*per)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "requests served", Label{"route", "/ingest"})
	c.Add(7)
	r.Counter("app_requests_total", "requests served", Label{"route", "/query"}).Add(3)
	g := r.Gauge("app_queue_depth", "queued batches")
	g.Set(12)
	r.GaugeFunc("app_up", "always one", func() float64 { return 1 })
	r.CounterFunc("app_ticks_total", "ticks", func() int64 { return 42 })
	h := r.Histogram("app_latency_seconds", "request latency", []float64{0.01, 0.1, 1},
		Label{"route", "/ingest"})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP app_requests_total requests served",
		"# TYPE app_requests_total counter",
		`app_requests_total{route="/ingest"} 7`,
		`app_requests_total{route="/query"} 3`,
		"# TYPE app_queue_depth gauge",
		"app_queue_depth 12",
		"app_up 1",
		"app_ticks_total 42",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{route="/ingest",le="0.01"} 1`,
		`app_latency_seconds_bucket{route="/ingest",le="0.1"} 2`,
		`app_latency_seconds_bucket{route="/ingest",le="1"} 2`,
		`app_latency_seconds_bucket{route="/ingest",le="+Inf"} 3`,
		`app_latency_seconds_count{route="/ingest"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	fams, err := ParseFamilies(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["app_requests_total"]; f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("app_requests_total parsed as %+v", f)
	}
	snap, err := FindHistogram(fams, "app_latency_seconds", map[string]string{"route": "/ingest"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 3 {
		t.Fatalf("scraped count = %d, want 3", snap.Count)
	}
	if q := snap.Quantile(0.5); q <= 0.01 || q > 0.1 {
		t.Fatalf("scraped p50 = %v, want in (0.01, 0.1]", q)
	}
}

func TestGaugeSetAndCounterSetRenderDynamicSeries(t *testing.T) {
	r := NewRegistry()
	resident := []string{"acme", "globex"}
	r.GaugeSet("app_tenant_resident", "1 per resident tenant", func() []SetSample {
		out := make([]SetSample, 0, len(resident))
		for _, name := range resident {
			out = append(out, SetSample{Labels: []Label{{"tenant", name}}, Value: 1})
		}
		return out
	})
	r.CounterSet("app_tenant_edges_total", "edges per tenant", func() []SetSample {
		return []SetSample{{Labels: []Label{{"tenant", "acme"}}, Value: 99}}
	})

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE app_tenant_resident gauge",
		`app_tenant_resident{tenant="acme"} 1`,
		`app_tenant_resident{tenant="globex"} 1`,
		"# TYPE app_tenant_edges_total counter",
		`app_tenant_edges_total{tenant="acme"} 99`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	// Series must follow deletions: drop a tenant, scrape again.
	resident = resident[:1]
	buf.Reset()
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "globex") {
		t.Fatalf("deleted tenant still exposed:\n%s", buf.String())
	}
	if _, err := ParseFamilies(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("set exposition does not parse: %v\n%s", err, buf.String())
	}
}

func TestPrepareHookRunsOncePerScrape(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.AddPrepare(func() { calls++ })
	snap := 0.0
	r.GaugeFunc("a", "", func() float64 { return snap })
	r.GaugeFunc("b", "", func() float64 { return snap })
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("prepare ran %d times, want 1", calls)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "odd labels", Label{"path", `a"b\c` + "\n"}).Inc()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseFamilies(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("escaped exposition does not parse: %v\n%s", err, buf.String())
	}
	got := fams[0].Samples[0].Labels["path"]
	if got != `a"b\c`+"\n" {
		t.Fatalf("label round-trip = %q", got)
	}
}

func TestDuplicateAndMismatchedRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	for name, fn := range map[string]func(){
		"duplicate series": func() { r.Counter("dup_total", "x") },
		"kind mismatch":    func() { r.Gauge("dup_total", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_type_header 1\n",
		"# TYPE x wat\nx 1\n",
		"# TYPE x counter\nx{le=\"oops} 1\n",
		"# TYPE x counter\nx notanumber\n",
	} {
		if _, err := ParseFamilies(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseFamilies accepted %q", bad)
		}
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc_latency_seconds", "x", nil)
	c := r.Counter("alloc_total", "x")
	g := r.Gauge("alloc_gauge", "x")
	start := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(0.003)
		h.ObserveSince(start)
		c.Add(3)
		g.Set(1)
	}); n != 0 {
		t.Fatalf("hot-path instruments allocate %v per op, want 0", n)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "shard", 1)
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, `"shard":1`) {
		t.Fatalf("logger output: %q", out)
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
	if n := NopLogger(); n.Enabled(nil, slog.LevelError) {
		t.Fatal("nop logger claims enabled")
	}
}
