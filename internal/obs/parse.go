package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set
// (sorted rendering preserved as given), and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is a parsed metric family: the HELP/TYPE header plus every
// sample whose base name belongs to it (histogram _bucket/_sum/_count
// samples fold into their base family).
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseFamilies parses Prometheus text exposition format, strictly
// enough to serve as a validity check: every sample must follow a TYPE
// header for its family, label syntax must be well-formed, and values
// must parse as floats. It is the test-side inverse of
// Registry.WriteTo, not a general scrape client.
func ParseFamilies(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var fams []Family
	byName := map[string]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP with no metric name", lineNo)
			}
			if _, ok := byName[name]; ok {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			byName[name] = len(fams)
			fams = append(fams, Family{Name: name, Help: help})
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			i, ok := byName[name]
			if !ok {
				byName[name] = len(fams)
				fams = append(fams, Family{Name: name, Type: typ})
				continue
			}
			if fams[i].Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			fams[i].Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := s.Name
		i, ok := byName[base]
		if !ok {
			// histogram child samples fold into the base family
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(s.Name, suffix) {
					if j, ok2 := byName[strings.TrimSuffix(s.Name, suffix)]; ok2 {
						i, ok = j, true
						break
					}
				}
			}
		}
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s precedes its TYPE header", lineNo, s.Name)
		}
		fams[i].Samples = append(fams[i].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if fams[i].Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", fams[i].Name)
		}
	}
	return fams, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else if rest[i] == '{' {
		s.Name = rest[:i]
		rest = rest[i+1:]
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		s.Name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	// value, optionally followed by a timestamp we ignore
	val, _, _ := strings.Cut(rest, " ")
	v, err := parseValue(val)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", val, line)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(v, 64)
}

func parseLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("label pair missing '=' in %q", s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %q value not quoted", key)
		}
		s = s[1:]
		var b strings.Builder
		i := 0
		for ; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %q", s[i+1], key)
				}
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
			b.WriteByte(s[i])
		}
		if i == len(s) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		out[key] = b.String()
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

// HistogramSnapshot is a scraped histogram child: cumulative buckets by
// upper bound plus sum and count, with quantile derivation matching the
// live Histogram's.
type HistogramSnapshot struct {
	Bounds []float64 // ascending; +Inf excluded
	Cum    []int64   // cumulative count ≤ each bound
	Count  int64     // total observations (the +Inf bucket)
	Sum    float64   // seconds
}

// FindHistogram extracts one labeled histogram child from parsed
// families, validating bucket monotonicity and the +Inf terminal on the
// way. match selects the child: every key/value in match must be
// present in the sample's labels ("le" excluded).
func FindHistogram(fams []Family, name string, match map[string]string) (*HistogramSnapshot, error) {
	var fam *Family
	for i := range fams {
		if fams[i].Name == name {
			fam = &fams[i]
			break
		}
	}
	if fam == nil {
		return nil, fmt.Errorf("histogram %s not found", name)
	}
	if fam.Type != "histogram" {
		return nil, fmt.Errorf("%s is a %s, not a histogram", name, fam.Type)
	}
	snap := &HistogramSnapshot{}
	sawInf := false
	matches := func(labels map[string]string) bool {
		for k, v := range match {
			if labels[k] != v {
				return false
			}
		}
		return true
	}
	for _, s := range fam.Samples {
		if !matches(s.Labels) {
			continue
		}
		switch s.Name {
		case name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return nil, fmt.Errorf("%s bucket without le label", name)
			}
			if le == "+Inf" {
				sawInf = true
				snap.Count = int64(s.Value)
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad le %q", name, le)
			}
			snap.Bounds = append(snap.Bounds, bound)
			snap.Cum = append(snap.Cum, int64(s.Value))
		case name + "_sum":
			snap.Sum = s.Value
		case name + "_count":
			if sawInf && int64(s.Value) != snap.Count {
				return nil, fmt.Errorf("%s: _count %v disagrees with +Inf bucket %d", name, s.Value, snap.Count)
			}
			snap.Count = int64(s.Value)
		}
	}
	if !sawInf {
		return nil, fmt.Errorf("%s: no le=\"+Inf\" terminal bucket", name)
	}
	if !sort.Float64sAreSorted(snap.Bounds) {
		return nil, fmt.Errorf("%s: bucket bounds not ascending", name)
	}
	for i := 1; i < len(snap.Cum); i++ {
		if snap.Cum[i] < snap.Cum[i-1] {
			return nil, fmt.Errorf("%s: cumulative buckets not monotonic at le=%v", name, snap.Bounds[i])
		}
	}
	if len(snap.Cum) > 0 && snap.Count < snap.Cum[len(snap.Cum)-1] {
		return nil, fmt.Errorf("%s: +Inf bucket below last finite bucket", name)
	}
	return snap, nil
}

// Quantile mirrors Histogram.Quantile on scraped data.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	prevCum := int64(0)
	for i, cum := range s.Cum {
		n := cum - prevCum
		if n > 0 && float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - float64(prevCum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		prevCum = cum
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}
