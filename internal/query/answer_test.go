package query

import (
	"math"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/stream"
)

// answerTestSketch builds a populated gSketch with both routed and outlier
// traffic, plus the exact counter for ground truth.
func answerTestSketch(t *testing.T) (*core.GSketch, *stream.ExactCounter, []stream.Edge) {
	t.Helper()
	rng := hashutil.NewRNG(7)
	edges := make([]stream.Edge, 40_000)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 2000,
			Dst:    rng.Uint64() % 5000,
			Weight: int64(rng.Uint64()%3) + 1,
		}
	}
	g, err := core.BuildGSketch(core.Config{TotalWidth: 8192, Seed: 7}, edges[:5000], nil)
	if err != nil {
		t.Fatal(err)
	}
	core.Populate(g, edges)
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	return g, exact, edges
}

func TestAnswerEdgeQuery(t *testing.T) {
	g, _, edges := answerTestSketch(t)
	for _, e := range edges[:500] {
		q := EdgeQuery{Src: e.Src, Dst: e.Dst}
		resp := Answer(g, q)
		if want := float64(g.EstimateEdge(e.Src, e.Dst)); resp.Value != want {
			t.Fatalf("Answer(%v) = %v, want %v", q, resp.Value, want)
		}
		if len(resp.Results) != 1 {
			t.Fatalf("edge query produced %d results", len(resp.Results))
		}
		if want := g.ErrorBound(e.Src); resp.ErrorBound != want {
			t.Fatalf("edge bound %v, want %v", resp.ErrorBound, want)
		}
		if resp.Confidence != resp.Results[0].Confidence {
			t.Fatalf("edge confidence %v, want %v", resp.Confidence, resp.Results[0].Confidence)
		}
		if resp.StreamTotal != g.Count() {
			t.Fatalf("stream total %d, want %d", resp.StreamTotal, g.Count())
		}
	}
}

// TestAnswerSubgraphMatchesSequentialDecomposition proves the one-call
// batched decomposition returns exactly what N sequential EstimateEdge
// calls folded with Γ would (the old EstimateSubgraph semantics).
func TestAnswerSubgraphMatchesSequentialDecomposition(t *testing.T) {
	g, _, edges := answerTestSketch(t)
	for _, agg := range []Aggregate{Sum, Min, Max, Average, Count} {
		q := SubgraphQuery{Agg: agg}
		for _, e := range edges[:10] {
			q.Edges = append(q.Edges, EdgeQuery{Src: e.Src, Dst: e.Dst})
		}
		vals := make([]float64, len(q.Edges))
		for i, e := range q.Edges {
			vals[i] = float64(g.EstimateEdge(e.Src, e.Dst))
		}
		want := agg.Apply(vals)
		if got := Answer(g, q).Value; got != want {
			t.Fatalf("%v: Answer = %v, sequential fold = %v", agg, got, want)
		}
		// The deprecated shim must agree too.
		if got := EstimateSubgraph(g, q); got != want {
			t.Fatalf("%v: EstimateSubgraph = %v, want %v", agg, got, want)
		}
	}
}

func TestAnswerNodeQuery(t *testing.T) {
	g, _, edges := answerTestSketch(t)
	src := edges[0].Src
	q := NodeQuery{Node: src, Out: []uint64{edges[0].Dst, edges[0].Dst + 1, 99_999}, Agg: Sum}
	resp := Answer(g, q)
	var want float64
	for _, d := range q.Out {
		want += float64(g.EstimateEdge(src, d))
	}
	if resp.Value != want {
		t.Fatalf("node SUM = %v, want %v", resp.Value, want)
	}
	if len(resp.Results) != len(q.Out) {
		t.Fatalf("node query produced %d results, want %d", len(resp.Results), len(q.Out))
	}
	// All constituents share the source vertex, hence the same partition.
	for _, r := range resp.Results[1:] {
		if r.Partition != resp.Results[0].Partition || r.Outlier != resp.Results[0].Outlier {
			t.Fatalf("node query split across partitions: %+v vs %+v", r, resp.Results[0])
		}
	}
	// Single-partition SUM bound: per-edge bounds are equal, so the
	// combined bound is n times the partition bound.
	if want := float64(len(q.Out)) * resp.Results[0].ErrorBound; resp.ErrorBound != want {
		t.Fatalf("node SUM bound %v, want %v", resp.ErrorBound, want)
	}
}

func TestAnswerBatchMatchesAnswer(t *testing.T) {
	g, _, edges := answerTestSketch(t)
	qs := []Query{
		EdgeQuery{Src: edges[0].Src, Dst: edges[0].Dst},
		SubgraphQuery{
			Edges: []EdgeQuery{
				{Src: edges[1].Src, Dst: edges[1].Dst},
				{Src: edges[2].Src, Dst: edges[2].Dst},
			},
			Agg: Sum,
		},
		NodeQuery{Node: edges[3].Src, Out: []uint64{edges[3].Dst, 12345}, Agg: Max},
		EdgeQuery{Src: 900_000, Dst: 1}, // outlier traffic
	}
	batch := AnswerBatch(g, qs)
	if len(batch) != len(qs) {
		t.Fatalf("AnswerBatch returned %d responses for %d queries", len(batch), len(qs))
	}
	for i, q := range qs {
		single := Answer(g, q)
		if batch[i].Value != single.Value ||
			batch[i].ErrorBound != single.ErrorBound ||
			batch[i].Confidence != single.Confidence ||
			len(batch[i].Results) != len(single.Results) {
			t.Fatalf("query %d: AnswerBatch %+v vs Answer %+v", i, batch[i], single)
		}
	}
	if AnswerBatch(g, nil) != nil {
		t.Fatal("empty AnswerBatch should return nil")
	}
}

func TestCombineBoundsPerAggregate(t *testing.T) {
	res := []core.Result{
		{Estimate: 10, ErrorBound: 4, Confidence: 0.99},
		{Estimate: 20, ErrorBound: 6, Confidence: 0.99},
	}
	cases := []struct {
		agg  Aggregate
		want float64
	}{
		{Sum, 10}, {Average, 5}, {Min, 6}, {Max, 6}, {Count, 0},
	}
	for _, c := range cases {
		if got := combineBounds(c.agg, res); got != c.want {
			t.Errorf("combineBounds(%v) = %v, want %v", c.agg, got, c.want)
		}
	}
	// Union bound: 1 - (0.01 + 0.01).
	if got := unionConfidence(res); math.Abs(got-0.98) > 1e-12 {
		t.Errorf("unionConfidence = %v, want 0.98", got)
	}
	// Many low-confidence constituents floor at zero.
	weak := make([]core.Result, 10)
	for i := range weak {
		weak[i] = core.Result{Confidence: 0.5}
	}
	if got := unionConfidence(weak); got != 0 {
		t.Errorf("floored unionConfidence = %v, want 0", got)
	}
}

func TestResponseEmptyQuery(t *testing.T) {
	g, _, _ := answerTestSketch(t)
	resp := Answer(g, SubgraphQuery{Agg: Sum})
	if resp.Value != 0 || resp.ErrorBound != 0 || len(resp.Results) != 0 {
		t.Fatalf("empty subgraph Answer = %+v", resp)
	}
}

// TestEvaluateGuardsInfiniteRelativeError pins the metrics satellite: a
// zero-truth query answered nonzero must land in Skipped, not poison the
// Eq. 13 average nor count toward the Eq. 14 effective total.
func TestEvaluateGuardsInfiniteRelativeError(t *testing.T) {
	c := stream.NewExactCounter()
	c.Observe(stream.Edge{Src: 1, Dst: 2, Weight: 10})
	// overEstimator reports 5 for every edge, including zero-truth ones.
	est := constantEstimator{5}

	queries := []EdgeQuery{{Src: 1, Dst: 2}, {Src: 8, Dst: 9}} // (8,9) has zero truth
	acc := EvaluateEdgeQueries(est, c, queries, DefaultG0)
	if acc.Total != 1 || acc.Skipped != 1 {
		t.Fatalf("total=%d skipped=%d, want 1/1", acc.Total, acc.Skipped)
	}
	if math.IsInf(acc.AvgRelErr, 0) || math.IsNaN(acc.AvgRelErr) {
		t.Fatalf("ARE poisoned: %v", acc.AvgRelErr)
	}
	if acc.AvgRelErr != -0.5 { // 5/10 - 1
		t.Fatalf("ARE = %v, want -0.5", acc.AvgRelErr)
	}
	if acc.Effective != 1 {
		t.Fatalf("effective = %d, want 1 (zero-truth query must not count)", acc.Effective)
	}

	// Subgraph flavour: MIN over a bag whose true minimum is zero but whose
	// estimate is positive → truth 0, skipped; the aggregates stay finite.
	sub := []SubgraphQuery{
		{Edges: []EdgeQuery{{Src: 1, Dst: 2}, {Src: 8, Dst: 9}}, Agg: Min},
		{Edges: []EdgeQuery{{Src: 1, Dst: 2}}, Agg: Sum},
	}
	sacc := EvaluateSubgraphQueries(est, c, sub, DefaultG0)
	if sacc.Total != 1 || sacc.Skipped != 1 {
		t.Fatalf("subgraph total=%d skipped=%d, want 1/1", sacc.Total, sacc.Skipped)
	}
	if math.IsInf(sacc.AvgRelErr, 0) || math.IsNaN(sacc.AvgRelErr) {
		t.Fatalf("subgraph ARE poisoned: %v", sacc.AvgRelErr)
	}
}

// constantEstimator answers every query with a fixed value.
type constantEstimator struct{ v int64 }

func (e constantEstimator) Update(stream.Edge)             {}
func (e constantEstimator) UpdateBatch([]stream.Edge)      {}
func (e constantEstimator) EstimateEdge(s, d uint64) int64 { return e.v }
func (e constantEstimator) Count() int64                   { return 0 }
func (e constantEstimator) MemoryBytes() int               { return 0 }

func (e constantEstimator) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	out := make([]core.Result, len(qs))
	for i := range out {
		out[i] = core.Result{Estimate: e.v, Partition: core.NoPartition}
	}
	return out
}

var _ core.Estimator = constantEstimator{}
