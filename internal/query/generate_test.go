package query

import (
	"testing"

	"github.com/graphstream/gsketch/internal/stream"
)

func populatedCounter() *stream.ExactCounter {
	c := stream.NewExactCounter()
	for i := uint64(0); i < 200; i++ {
		c.Observe(stream.Edge{Src: i % 20, Dst: i, Weight: int64(i%7) + 1})
	}
	return c
}

func TestUniformEdgeQueries(t *testing.T) {
	c := populatedCounter()
	qs := UniformEdgeQueries(c, 1000, 5)
	if len(qs) != 1000 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if c.EdgeFrequency(q.Src, q.Dst) == 0 {
			t.Fatalf("query (%d,%d) not drawn from the stream", q.Src, q.Dst)
		}
	}
	// Determinism.
	qs2 := UniformEdgeQueries(c, 1000, 5)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("same seed produced different query sets")
		}
	}
	if UniformEdgeQueries(stream.NewExactCounter(), 10, 1) != nil {
		t.Error("empty counter should yield nil queries")
	}
}

func TestZipfEdgeQueriesSkew(t *testing.T) {
	c := populatedCounter()
	qs := ZipfEdgeQueries(c, 5000, 1.5, 7, 8)
	if len(qs) != 5000 {
		t.Fatalf("got %d queries", len(qs))
	}
	counts := make(map[EdgeQuery]int)
	for _, q := range qs {
		counts[q]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	// 200 distinct edges, α = 1.5: top edge should own far more than the
	// uniform share (25).
	if max < 100 {
		t.Errorf("top query repeated %d times; Zipf skew too weak", max)
	}
}

func TestZipfSharedPermutation(t *testing.T) {
	c := populatedCounter()
	// Same permSeed: the workload sample is predictive of the query set
	// (both favor the same popular edges).
	workload := ZipfWorkloadSample(c, 3000, 1.5, 7, 100)
	queries := ZipfEdgeQueries(c, 3000, 1.5, 7, 200)

	wCount := make(map[EdgeQuery]int)
	for _, e := range workload {
		wCount[EdgeQuery{Src: e.Src, Dst: e.Dst}]++
	}
	qCount := make(map[EdgeQuery]int)
	for _, q := range queries {
		qCount[q]++
	}
	// Top workload edge should be heavily queried too.
	var top EdgeQuery
	max := 0
	for q, n := range wCount {
		if n > max {
			max = n
			top = q
		}
	}
	if qCount[top] < max/4 {
		t.Errorf("top workload edge (%d times) queried only %d times: permutation not shared", max, qCount[top])
	}
	// Different permSeed: correlation should collapse.
	queriesOther := ZipfEdgeQueries(c, 3000, 1.5, 9999, 200)
	oCount := make(map[EdgeQuery]int)
	for _, q := range queriesOther {
		oCount[q]++
	}
	if oCount[top] > qCount[top]/2 {
		t.Logf("warning: independent permutation still correlates (%d vs %d)", oCount[top], qCount[top])
	}
}

func TestBFSSubgraphQueries(t *testing.T) {
	c := stream.NewExactCounter()
	// A connected-ish graph: chain plus fan-outs.
	for i := uint64(0); i < 100; i++ {
		c.Observe(stream.Edge{Src: i, Dst: i + 1, Weight: 1})
		c.Observe(stream.Edge{Src: i, Dst: i + 50, Weight: 1})
	}
	qs := BFSSubgraphQueries(c, SubgraphConfig{Count: 50, EdgesPer: 10, Agg: Sum, Seed: 1})
	if len(qs) != 50 {
		t.Fatalf("got %d subgraphs, want 50", len(qs))
	}
	for _, q := range qs {
		if len(q.Edges) != 10 {
			t.Fatalf("subgraph has %d edges, want 10", len(q.Edges))
		}
		if q.Agg != Sum {
			t.Fatal("aggregate not propagated")
		}
		seen := make(map[EdgeQuery]bool)
		for _, e := range q.Edges {
			if c.EdgeFrequency(e.Src, e.Dst) == 0 {
				t.Fatalf("subgraph edge (%d,%d) not in graph", e.Src, e.Dst)
			}
			if seen[e] {
				t.Fatal("duplicate edge within subgraph")
			}
			seen[e] = true
		}
	}
}

func TestBFSSubgraphZipfSeeds(t *testing.T) {
	c := populatedCounter()
	qs := BFSSubgraphQueries(c, SubgraphConfig{Count: 30, EdgesPer: 5, Agg: Sum, Seed: 2, ZipfAlpha: 1.5})
	if len(qs) != 30 {
		t.Fatalf("got %d subgraphs", len(qs))
	}
}

func TestBFSSubgraphEmptyGraph(t *testing.T) {
	if qs := BFSSubgraphQueries(stream.NewExactCounter(), SubgraphConfig{Count: 5, EdgesPer: 3, Seed: 1}); qs != nil {
		t.Error("empty graph should yield nil")
	}
}
