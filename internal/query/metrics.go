package query

import (
	"math"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// DefaultG0 is the effectiveness threshold of §6.2: a query estimate is
// "effective" when its relative error is at most G0.
const DefaultG0 = 5.0

// Accuracy aggregates the two §6.2 metrics over a query set.
type Accuracy struct {
	// AvgRelErr is e(Q): the mean relative error over all queries
	// (Eq. 13). Queries with zero true frequency are excluded (they cannot
	// occur when queries are drawn from the stream, but defensive callers
	// may pass arbitrary sets); Skipped counts them.
	AvgRelErr float64
	// Effective is g(Q): the number of queries with relative error ≤ G0
	// (Eq. 14).
	Effective int
	// Total is the number of evaluated queries.
	Total int
	// Skipped counts queries excluded for zero true frequency or a
	// non-finite relative error.
	Skipped int
	// MaxRelErr is the worst relative error observed.
	MaxRelErr float64
}

// observe folds one query's relative error into the accumulator, guarding
// the Eq. 13 mean against non-finite values: a single +Inf (zero-truth,
// nonzero-estimate) or NaN sample would otherwise poison the whole
// aggregate, so such queries are counted in Skipped and excluded from both
// the Eq. 13 average and the Eq. 14 effective count.
func (acc *Accuracy) observe(sum *float64, er, g0 float64) {
	if math.IsInf(er, 0) || math.IsNaN(er) {
		acc.Skipped++
		return
	}
	*sum += er
	if er <= g0 {
		acc.Effective++
	}
	if er > acc.MaxRelErr {
		acc.MaxRelErr = er
	}
	acc.Total++
}

// finish resolves the Eq. 13 mean.
func (acc *Accuracy) finish(sum float64) {
	if acc.Total > 0 {
		acc.AvgRelErr = sum / float64(acc.Total)
	}
}

// EvaluateEdgeQueries runs the whole edge-query set against the estimator
// in one EstimateBatch pass, compares with exact truth, and folds the §6.2
// metrics with threshold g0 (use DefaultG0 for the paper's setting).
func EvaluateEdgeQueries(est core.Estimator, exact *stream.ExactCounter, queries []EdgeQuery, g0 float64) Accuracy {
	var acc Accuracy
	if len(queries) == 0 {
		return acc
	}
	res := est.EstimateBatch(queries)

	var sum float64
	for i, q := range queries {
		truth := exact.EdgeFrequency(q.Src, q.Dst)
		if truth == 0 {
			acc.Skipped++
			continue
		}
		acc.observe(&sum, RelativeError(float64(res[i].Estimate), float64(truth)), g0)
	}
	acc.finish(sum)
	return acc
}

// EvaluateSubgraphQueries is the subgraph analogue of EvaluateEdgeQueries
// (Eq. 15 relative error, same two metrics). The whole query set resolves
// through one batched estimator pass via AnswerBatch.
func EvaluateSubgraphQueries(est core.Estimator, exact *stream.ExactCounter, queries []SubgraphQuery, g0 float64) Accuracy {
	var acc Accuracy
	if len(queries) == 0 {
		return acc
	}
	qs := make([]Query, len(queries))
	for i, q := range queries {
		qs[i] = q
	}
	responses := AnswerBatch(est, qs)

	var sum float64
	lookup := exact.EdgeFrequency
	for i, q := range queries {
		truth := ExactSubgraph(lookup, q)
		if truth == 0 {
			acc.Skipped++
			continue
		}
		acc.observe(&sum, RelativeError(responses[i].Value, truth), g0)
	}
	acc.finish(sum)
	return acc
}

// EvaluateEdgeQueriesFiltered evaluates only the queries selected by keep,
// used by the Table-1 experiment to isolate outlier-sketch queries.
func EvaluateEdgeQueriesFiltered(est core.Estimator, exact *stream.ExactCounter, queries []EdgeQuery, g0 float64, keep func(EdgeQuery) bool) Accuracy {
	sel := make([]EdgeQuery, 0, len(queries))
	for _, q := range queries {
		if keep(q) {
			sel = append(sel, q)
		}
	}
	return EvaluateEdgeQueries(est, exact, sel, g0)
}
