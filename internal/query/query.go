// Package query implements the paper's query model (§3.1) and evaluation
// methodology (§6.2): edge queries, aggregate subgraph queries with a
// pluggable aggregate Γ, generators for uniform query sets, Zipf-skewed
// workload samples and BFS-grown subgraph queries, and the two accuracy
// metrics — average relative error (Eq. 12–13) and number of effective
// queries (Eq. 14).
package query

import (
	"fmt"
	"math"

	"github.com/graphstream/gsketch/internal/core"
)

// EdgeQuery asks for the accumulated frequency of one directed edge.
type EdgeQuery struct {
	Src, Dst uint64
}

// Aggregate is the Γ(·) of an aggregate subgraph query.
type Aggregate int

// Supported aggregates. SUM is the paper's experimental default.
const (
	Sum Aggregate = iota
	Min
	Max
	Average
	Count
)

// String implements fmt.Stringer.
func (a Aggregate) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Average:
		return "AVERAGE"
	case Count:
		return "COUNT"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// Apply folds a slice of edge frequencies with the aggregate. An empty
// input yields 0.
func (a Aggregate) Apply(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	switch a {
	case Sum:
		s := 0.0
		for _, v := range values {
			s += v
		}
		return s
	case Min:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case Max:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case Average:
		s := 0.0
		for _, v := range values {
			s += v
		}
		return s / float64(len(values))
	case Count:
		return float64(len(values))
	default:
		panic(fmt.Sprintf("query: unknown aggregate %d", int(a)))
	}
}

// SubgraphQuery asks for the aggregate frequency behaviour of the
// constituent edges of a subgraph (a bag of edges, per §3.1).
type SubgraphQuery struct {
	Edges []EdgeQuery
	Agg   Aggregate
}

// EstimateSubgraph resolves a subgraph query against an estimator by
// decomposing it into constituent edge queries and folding with Γ (§5).
func EstimateSubgraph(est core.Estimator, q SubgraphQuery) float64 {
	vals := make([]float64, len(q.Edges))
	for i, e := range q.Edges {
		vals[i] = float64(est.EstimateEdge(e.Src, e.Dst))
	}
	return q.Agg.Apply(vals)
}

// ExactSubgraph resolves a subgraph query against exact frequencies
// provided by lookup.
func ExactSubgraph(lookup func(src, dst uint64) int64, q SubgraphQuery) float64 {
	vals := make([]float64, len(q.Edges))
	for i, e := range q.Edges {
		vals[i] = float64(lookup(e.Src, e.Dst))
	}
	return q.Agg.Apply(vals)
}

// RelativeError is e_r(q) = f̃(q)/f(q) - 1 (Eq. 12 / Eq. 15). A zero true
// value with a nonzero estimate yields +Inf; zero/zero yields 0.
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return estimate/truth - 1
}
