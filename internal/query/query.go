// Package query implements the paper's query model (§3.1) and evaluation
// methodology (§6.2): the sealed Query sum type (edge queries, aggregate
// subgraph queries with a pluggable aggregate Γ and vertex aggregate (node)
// queries — the types themselves live in internal/core so an edge query IS
// the unit of the batched read path, with no conversion layer), all
// resolved through the batched estimator read path by a single Answer entry
// point; plus generators for uniform query sets, Zipf-skewed workload
// samples and BFS-grown subgraph queries, and the two accuracy metrics —
// average relative error (Eq. 12–13) and number of effective queries
// (Eq. 14).
package query

import (
	"fmt"
	"math"

	"github.com/graphstream/gsketch/internal/core"
)

// Query is the sealed sum of the supported query kinds: EdgeQuery,
// SubgraphQuery and NodeQuery. Every kind decomposes into constituent edge
// queries and is resolved by Answer (or AnswerBatch) in one batched
// estimator pass.
type Query = core.Query

// EdgeQuery asks for the accumulated frequency of one directed edge. It is
// the same type as the batched read path's unit — a []EdgeQuery feeds
// Estimator.EstimateBatch directly, with no conversion copy.
type EdgeQuery = core.EdgeQuery

// Aggregate is the Γ(·) of an aggregate subgraph query.
type Aggregate = core.Aggregate

// Supported aggregates. SUM is the paper's experimental default.
const (
	Sum     = core.Sum
	Min     = core.Min
	Max     = core.Max
	Average = core.Average
	Count   = core.Count
)

// SubgraphQuery asks for the aggregate frequency behaviour of the
// constituent edges of a subgraph (a bag of edges, per §3.1).
type SubgraphQuery = core.SubgraphQuery

// NodeQuery asks for the aggregate frequency behaviour of one source
// vertex's edges toward an explicit destination set.
type NodeQuery = core.NodeQuery

// Response is a resolved Query: the aggregate value plus the per-edge
// batched results it folded and the combined accuracy guarantee.
type Response struct {
	// Value is the query answer: the point estimate for an EdgeQuery, the
	// Γ-fold for subgraph and node queries.
	Value float64
	// Results are the per-constituent-edge batched answers, in
	// decomposition order (a single element for an EdgeQuery). The slice
	// may alias a batch shared with other Responses from AnswerBatch.
	Results []core.Result
	// ErrorBound is the additive error bound on Value, combined across
	// constituents per the aggregate: summed for SUM, averaged for
	// AVERAGE, the worst constituent bound for MIN/MAX, 0 for COUNT.
	ErrorBound float64
	// Confidence lower-bounds the probability that Value is within
	// ErrorBound, via a union bound over the constituents' δ.
	Confidence float64
	// StreamTotal is the estimator's stream-volume snapshot for the batch
	// that answered this query.
	StreamTotal int64
}

// appendConstituents flattens a query onto dst as routed edge queries.
func appendConstituents(dst []core.EdgeQuery, q Query) []core.EdgeQuery {
	switch q := q.(type) {
	case EdgeQuery:
		return append(dst, q)
	case SubgraphQuery:
		return append(dst, q.Edges...)
	case NodeQuery:
		for _, d := range q.Out {
			dst = append(dst, core.EdgeQuery{Src: q.Node, Dst: d})
		}
		return dst
	default:
		// Unreachable: Query is sealed to the core package's types.
		panic(fmt.Sprintf("query: unknown query kind %T", q))
	}
}

// fold combines one query's constituent results into its Response.
func fold(q Query, res []core.Result) Response {
	r := Response{Results: res}
	if len(res) == 0 {
		return r
	}
	r.StreamTotal = res[0].StreamTotal

	if _, ok := q.(EdgeQuery); ok {
		r.Value = float64(res[0].Estimate)
		r.ErrorBound = res[0].ErrorBound
		r.Confidence = res[0].Confidence
		return r
	}
	var agg Aggregate
	switch q := q.(type) {
	case SubgraphQuery:
		agg = q.Agg
	case NodeQuery:
		agg = q.Agg
	}
	vals := make([]float64, len(res))
	for i, c := range res {
		vals[i] = float64(c.Estimate)
	}
	r.Value = agg.Apply(vals)
	r.ErrorBound = combineBounds(agg, res)
	r.Confidence = unionConfidence(res)
	return r
}

// combineBounds folds the per-constituent additive bounds per aggregate:
// additive errors add under SUM, average under AVERAGE, and an extremum is
// off by at most the worst constituent bound under MIN/MAX. COUNT is exact.
func combineBounds(agg Aggregate, res []core.Result) float64 {
	switch agg {
	case Sum, Average:
		s := 0.0
		for _, c := range res {
			s += c.ErrorBound
		}
		if agg == Average {
			s /= float64(len(res))
		}
		return s
	case Min, Max:
		m := 0.0
		for _, c := range res {
			if c.ErrorBound > m {
				m = c.ErrorBound
			}
		}
		return m
	case Count:
		return 0
	default:
		panic(fmt.Sprintf("query: unknown aggregate %d", int(agg)))
	}
}

// unionConfidence lower-bounds the joint guarantee 1 - Σ δ_i (union bound
// over constituent failure probabilities), floored at 0.
func unionConfidence(res []core.Result) float64 {
	deltas := 0.0
	for _, c := range res {
		deltas += 1 - c.Confidence
	}
	if deltas >= 1 {
		return 0
	}
	return 1 - deltas
}

// AccumulateResults folds one more generation's batch answers into acc,
// position-wise. It is the sound cross-generation combination the adaptive
// chain relies on: a stream split across k sketch generations has per-edge
// frequency equal to the sum of per-generation frequencies, so
//
//   - point estimates sum (each generation's CountMin never underestimates
//     its own segment, so the sum never underestimates the whole stream);
//   - the additive ε·N_i bounds add — the combined estimate is off by at
//     most the sum of the per-generation overcounts;
//   - confidence combines by a union bound over the per-generation failure
//     probabilities: 1 - Σ δ_g, floored at 0;
//   - stream-total snapshots sum to the chain-wide volume.
//
// Provenance (Partition, Outlier) stays acc's — by convention the live
// head generation answers first, so combined results carry the routing of
// the partitioning currently serving.
func AccumulateResults(acc, gen []core.Result) {
	if len(gen) != len(acc) {
		panic(fmt.Sprintf("query: generation answered %d results, want %d", len(gen), len(acc)))
	}
	for i := range acc {
		g := gen[i]
		acc[i].Estimate += g.Estimate
		acc[i].ErrorBound += g.ErrorBound
		deltas := (1 - acc[i].Confidence) + (1 - g.Confidence)
		if deltas >= 1 {
			acc[i].Confidence = 0
		} else {
			acc[i].Confidence = 1 - deltas
		}
		acc[i].StreamTotal += g.StreamTotal
	}
}

// AccumulateResultsWeighted is AccumulateResults with an age-decay weight w
// in (0, 1] applied to the incoming generation's contribution: estimates
// and error bounds scale by w before folding, so ancient stream segments
// stop dominating combined answers while the soundness shape is preserved
// (a w-scaled overestimate with a w-scaled additive bound still brackets
// the w-scaled true segment frequency). Confidence still combines by the
// union bound — decay does not improve a generation's failure probability —
// and StreamTotal stays the unweighted sum, reporting real stream volume
// rather than decayed volume. w outside (0, 1] is clamped; w == 1 is
// exactly AccumulateResults.
func AccumulateResultsWeighted(acc, gen []core.Result, w float64) {
	if w >= 1 {
		AccumulateResults(acc, gen)
		return
	}
	if len(gen) != len(acc) {
		panic(fmt.Sprintf("query: generation answered %d results, want %d", len(gen), len(acc)))
	}
	if w < 0 {
		w = 0
	}
	for i := range acc {
		g := gen[i]
		acc[i].Estimate += int64(math.Round(w * float64(g.Estimate)))
		acc[i].ErrorBound += w * g.ErrorBound
		deltas := (1 - acc[i].Confidence) + (1 - g.Confidence)
		if deltas >= 1 {
			acc[i].Confidence = 0
		} else {
			acc[i].Confidence = 1 - deltas
		}
		acc[i].StreamTotal += g.StreamTotal
	}
}

// Answer resolves any Query against an estimator in one batched pass: the
// query is decomposed into constituent edge queries, the estimator answers
// them all with a single EstimateBatch call, and the aggregate plus the
// combined (ε, δ) guarantee are folded from the per-edge Results.
func Answer(est core.Estimator, q Query) Response {
	return fold(q, est.EstimateBatch(appendConstituents(nil, q)))
}

// AnswerBatch resolves a batch of heterogeneous queries with ONE
// EstimateBatch call: every query's constituents are flattened into a
// single routed pass and each Response folds its own slice of the shared
// results. Responses are returned in input order.
func AnswerBatch(est core.Estimator, qs []Query) []Response {
	if len(qs) == 0 {
		return nil
	}
	offs := make([]int, len(qs)+1)
	var flat []core.EdgeQuery
	for i, q := range qs {
		flat = appendConstituents(flat, q)
		offs[i+1] = len(flat)
	}
	res := est.EstimateBatch(flat)
	out := make([]Response, len(qs))
	for i, q := range qs {
		out[i] = fold(q, res[offs[i]:offs[i+1]])
	}
	return out
}

// EstimateSubgraph resolves a subgraph query against an estimator by
// decomposing it into constituent edge queries and folding with Γ (§5).
//
// Deprecated: use Answer, which resolves the same decomposition through
// the batched read path and also reports the combined error bound.
func EstimateSubgraph(est core.Estimator, q SubgraphQuery) float64 {
	return Answer(est, q).Value
}

// ExactSubgraph resolves a subgraph query against exact frequencies
// provided by lookup.
func ExactSubgraph(lookup func(src, dst uint64) int64, q SubgraphQuery) float64 {
	vals := make([]float64, len(q.Edges))
	for i, e := range q.Edges {
		vals[i] = float64(lookup(e.Src, e.Dst))
	}
	return q.Agg.Apply(vals)
}

// RelativeError is e_r(q) = f̃(q)/f(q) - 1 (Eq. 12 / Eq. 15). A zero true
// value with a nonzero estimate yields +Inf; zero/zero yields 0.
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return estimate/truth - 1
}
