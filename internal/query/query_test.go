package query

import (
	"math"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

func TestAggregates(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	cases := []struct {
		agg  Aggregate
		want float64
	}{
		{Sum, 10}, {Min, 1}, {Max, 4}, {Average, 2.5}, {Count, 4},
	}
	for _, c := range cases {
		if got := c.agg.Apply(vals); got != c.want {
			t.Errorf("%v(%v) = %v, want %v", c.agg, vals, got, c.want)
		}
	}
	for _, a := range []Aggregate{Sum, Min, Max, Average, Count} {
		if got := a.Apply(nil); got != 0 {
			t.Errorf("%v(nil) = %v, want 0", a, got)
		}
		if a.String() == "" {
			t.Errorf("aggregate %d has no name", int(a))
		}
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(15, 10); got != 0.5 {
		t.Errorf("relerr(15,10) = %v, want 0.5", got)
	}
	if got := RelativeError(10, 10); got != 0 {
		t.Errorf("relerr(10,10) = %v, want 0", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("relerr(0,0) = %v, want 0", got)
	}
	if got := RelativeError(5, 0); !math.IsInf(got, 1) {
		t.Errorf("relerr(5,0) = %v, want +Inf", got)
	}
}

// exactEstimator answers queries from an exact counter (zero error).
type exactEstimator struct{ c *stream.ExactCounter }

func (e exactEstimator) Update(edge stream.Edge)            { e.c.Observe(edge) }
func (e exactEstimator) UpdateBatch(edges []stream.Edge)    { e.c.ObserveAll(edges) }
func (e exactEstimator) EstimateEdge(src, dst uint64) int64 { return e.c.EdgeFrequency(src, dst) }
func (e exactEstimator) Count() int64                       { return e.c.Total() }
func (e exactEstimator) MemoryBytes() int                   { return 0 }

func (e exactEstimator) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	out := make([]core.Result, len(qs))
	for i, q := range qs {
		out[i] = core.Result{
			Estimate:    e.c.EdgeFrequency(q.Src, q.Dst),
			Partition:   core.NoPartition,
			Confidence:  1,
			StreamTotal: e.c.Total(),
		}
	}
	return out
}

var _ core.Estimator = exactEstimator{}

func TestEstimateSubgraph(t *testing.T) {
	c := stream.NewExactCounter()
	c.Observe(stream.Edge{Src: 1, Dst: 2, Weight: 10})
	c.Observe(stream.Edge{Src: 2, Dst: 3, Weight: 20})
	est := exactEstimator{c}
	q := SubgraphQuery{
		Edges: []EdgeQuery{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}},
		Agg:   Sum,
	}
	if got := EstimateSubgraph(est, q); got != 30 {
		t.Errorf("subgraph SUM = %v, want 30", got)
	}
	q.Agg = Min
	if got := EstimateSubgraph(est, q); got != 10 {
		t.Errorf("subgraph MIN = %v, want 10", got)
	}
	if got := ExactSubgraph(c.EdgeFrequency, q); got != 10 {
		t.Errorf("exact subgraph MIN = %v, want 10", got)
	}
}

func TestEvaluateEdgeQueriesExactEstimator(t *testing.T) {
	c := stream.NewExactCounter()
	for i := uint64(0); i < 100; i++ {
		c.Observe(stream.Edge{Src: i % 10, Dst: i, Weight: int64(i%5) + 1})
	}
	est := exactEstimator{c}
	queries := UniformEdgeQueries(c, 500, 1)
	acc := EvaluateEdgeQueries(est, c, queries, DefaultG0)
	if acc.AvgRelErr != 0 {
		t.Errorf("exact estimator ARE = %v, want 0", acc.AvgRelErr)
	}
	if acc.Effective != acc.Total || acc.Total != 500 {
		t.Errorf("effective = %d of %d, want all", acc.Effective, acc.Total)
	}
	if acc.Skipped != 0 {
		t.Errorf("skipped = %d", acc.Skipped)
	}
}

func TestEvaluateSkipsZeroTruth(t *testing.T) {
	c := stream.NewExactCounter()
	c.Observe(stream.Edge{Src: 1, Dst: 2, Weight: 5})
	est := exactEstimator{c}
	queries := []EdgeQuery{{Src: 1, Dst: 2}, {Src: 9, Dst: 9}}
	acc := EvaluateEdgeQueries(est, c, queries, DefaultG0)
	if acc.Total != 1 || acc.Skipped != 1 {
		t.Errorf("total=%d skipped=%d, want 1/1", acc.Total, acc.Skipped)
	}
}

// biasedEstimator overestimates everything by a fixed factor.
type biasedEstimator struct {
	c      *stream.ExactCounter
	factor int64
}

func (e biasedEstimator) Update(stream.Edge)             {}
func (e biasedEstimator) UpdateBatch([]stream.Edge)      {}
func (e biasedEstimator) EstimateEdge(s, d uint64) int64 { return e.c.EdgeFrequency(s, d) * e.factor }
func (e biasedEstimator) Count() int64                   { return e.c.Total() }
func (e biasedEstimator) MemoryBytes() int               { return 0 }

func (e biasedEstimator) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	out := make([]core.Result, len(qs))
	for i, q := range qs {
		out[i] = core.Result{Estimate: e.EstimateEdge(q.Src, q.Dst), Partition: core.NoPartition}
	}
	return out
}

func TestEvaluateMetricsArithmetic(t *testing.T) {
	c := stream.NewExactCounter()
	c.Observe(stream.Edge{Src: 1, Dst: 2, Weight: 10})
	c.Observe(stream.Edge{Src: 3, Dst: 4, Weight: 10})
	est := biasedEstimator{c, 3} // relative error = 2 everywhere
	queries := []EdgeQuery{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}
	acc := EvaluateEdgeQueries(est, c, queries, DefaultG0)
	if acc.AvgRelErr != 2 {
		t.Errorf("ARE = %v, want 2", acc.AvgRelErr)
	}
	if acc.Effective != 2 { // 2 ≤ G0=5
		t.Errorf("effective = %d, want 2", acc.Effective)
	}
	if acc.MaxRelErr != 2 {
		t.Errorf("max = %v, want 2", acc.MaxRelErr)
	}
	strict := EvaluateEdgeQueries(est, c, queries, 1)
	if strict.Effective != 0 {
		t.Errorf("effective with G0=1 = %d, want 0", strict.Effective)
	}
}

func TestEvaluateSubgraphQueries(t *testing.T) {
	c := stream.NewExactCounter()
	for i := uint64(0); i < 50; i++ {
		c.Observe(stream.Edge{Src: i % 5, Dst: i + 10, Weight: 2})
	}
	est := exactEstimator{c}
	queries := BFSSubgraphQueries(c, SubgraphConfig{Count: 20, EdgesPer: 5, Agg: Sum, Seed: 3})
	if len(queries) != 20 {
		t.Fatalf("generated %d subgraph queries, want 20", len(queries))
	}
	acc := EvaluateSubgraphQueries(est, c, queries, DefaultG0)
	if acc.AvgRelErr != 0 || acc.Effective != acc.Total {
		t.Errorf("exact estimator subgraph accuracy: %+v", acc)
	}
}

func TestEvaluateFiltered(t *testing.T) {
	c := stream.NewExactCounter()
	c.Observe(stream.Edge{Src: 1, Dst: 2, Weight: 10})
	c.Observe(stream.Edge{Src: 3, Dst: 4, Weight: 10})
	est := exactEstimator{c}
	queries := []EdgeQuery{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}
	acc := EvaluateEdgeQueriesFiltered(est, c, queries, DefaultG0, func(q EdgeQuery) bool {
		return q.Src == 1
	})
	if acc.Total != 1 {
		t.Errorf("filtered total = %d, want 1", acc.Total)
	}
}
