package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/graphstream/gsketch/internal/adapt"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

func newTestChain(t *testing.T, sample []stream.Edge) *adapt.Chain {
	t.Helper()
	return adapt.NewChain(buildTestGSketch(t, sample), adapt.ChainConfig{SampleSize: 2048, Seed: 7})
}

// The full loop over HTTP: ingest, shifted queries recorded into the
// workload reservoir, POST /repartition hot-swapping a second generation,
// sound answers over the whole stream afterwards, and snapshot → restore
// with the chain intact.
func TestRepartitionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	edges := testStream(20000, 51)
	srv, ts := newTestServer(t, Config{
		Estimator:    newTestChain(t, edges[:1500]),
		SnapshotPath: filepath.Join(dir, "chain.gsk"),
		Adapt:        adapt.ManagerConfig{Sketch: testSketchConfig()},
	})

	ingestAll(t, ts.URL, edges[:10000])

	// Shifted live workload: query sources the partitioning sample never
	// saw, so the recorder sample diverges from the (empty) baseline.
	var qs []core.EdgeQuery
	for _, e := range edges[10000:10200] {
		qs = append(qs, core.EdgeQuery{Src: e.Src, Dst: e.Dst})
	}
	before := queryBatch(t, ts.URL, qs)

	resp, err := http.Post(ts.URL+"/repartition", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repartition: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"generations":2`)) {
		t.Fatalf("repartition reply: %s", body)
	}

	// Stream the rest through the new head; answers must cover the WHOLE
	// stream (CountMin never underestimates, and the chain sums
	// generations), with bounds and confidence attached.
	ingestAll(t, ts.URL, edges[10000:])
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	after := queryBatch(t, ts.URL, qs)
	for i, q := range qs {
		truth := exact.EdgeFrequency(q.Src, q.Dst)
		if after[i].Estimate < truth {
			t.Fatalf("edge (%d,%d): post-swap estimate %d < truth %d", q.Src, q.Dst, after[i].Estimate, truth)
		}
		if after[i].Estimate < before[i].Estimate {
			t.Fatalf("edge (%d,%d): estimate shrank across swap: %d -> %d",
				q.Src, q.Dst, before[i].Estimate, after[i].Estimate)
		}
		if after[i].ErrorBound <= 0 || after[i].Confidence <= 0 {
			t.Fatalf("edge (%d,%d): missing combined guarantee: %+v", q.Src, q.Dst, after[i])
		}
	}

	// Stats carry the adaptive gauges.
	st := getStats(t, ts.URL)
	if st["generations"].(float64) != 2 {
		t.Fatalf("stats generations = %v, want 2", st["generations"])
	}
	if st["repartitions"].(float64) != 1 {
		t.Fatalf("stats repartitions = %v, want 1", st["repartitions"])
	}
	for _, k := range []string{"drift_workload_divergence", "drift_outlier_share",
		"route_read_outlier_share", "route_write_outlier_share"} {
		if _, ok := st[k]; !ok {
			t.Fatalf("stats missing %q: %v", k, st)
		}
	}

	// Snapshot the chain, restore it, and check the generations and the
	// answers survive.
	resp, err = http.Post(ts.URL+"/snapshot/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot save: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/snapshot/restore", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot restore: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"generations":2`)) {
		t.Fatalf("restore reply: %s", body)
	}
	restored := queryBatch(t, ts.URL, qs)
	for i := range qs {
		if restored[i].Estimate != after[i].Estimate {
			t.Fatalf("query %d: restored estimate %d != live %d", i, restored[i].Estimate, after[i].Estimate)
		}
	}
	_ = srv
}

// A drift past the threshold triggers a rebuild without any POST: the
// auto-trigger loop closes the record → rebuild → swap loop by itself.
func TestAutoRepartitionOnDrift(t *testing.T) {
	edges := testStream(20000, 53)
	_, ts := newTestServer(t, Config{
		Estimator: newTestChain(t, edges[:1500]),
		Adapt: adapt.ManagerConfig{
			Sketch:      testSketchConfig(),
			MinWorkload: 32,
			MinData:     64,
		},
		AdaptInterval: 5 * time.Millisecond,
	})

	ingestAll(t, ts.URL, edges[:10000])
	// All-new query sources: baseline is empty, so divergence is maximal
	// once the recorder holds MinWorkload queries.
	var qs []core.EdgeQuery
	for i := 0; i < 64; i++ {
		qs = append(qs, core.EdgeQuery{Src: uint64(1 << 40), Dst: uint64(i)})
	}
	queryBatch(t, ts.URL, qs)

	waitFor(t, "auto repartition", func() bool {
		st := getStats(t, ts.URL)
		v, ok := st["repartitions"].(float64)
		return ok && v >= 1
	})
}

// A non-adaptive server must refuse a multi-generation snapshot: it has no
// chain to answer it soundly from.
func TestNonAdaptiveServerRefusesChainSnapshot(t *testing.T) {
	edges := testStream(8000, 57)
	chain := newTestChain(t, edges[:1000])
	core.Populate(chain, edges[:4000])
	if _, err := adapt.Repartition(chain, testSketchConfig(), nil); err != nil {
		t.Fatal(err)
	}
	core.Populate(chain, edges[4000:])
	var snap bytes.Buffer
	if _, err := chain.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "chain.gsk")
	if err := os.WriteFile(path, snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Estimator:    buildTestGSketch(t, edges[:1000]),
		SnapshotPath: path,
	})
	resp, err := http.Post(ts.URL+"/snapshot/restore", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d (%s), want 409 refusal", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("not adaptive")) {
		t.Fatalf("unexpected refusal body: %s", body)
	}

	// POST /repartition is not mounted without a chain.
	resp, err = http.Post(ts.URL+"/repartition", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("repartition on non-adaptive server: status %d, want 404", resp.StatusCode)
	}
}

// POST /compact over HTTP: pivot twice, fold the two frozen generations
// into one, keep answering soundly, then snapshot → restore with the
// compacted chain (and its lifecycle gauges) intact.
func TestCompactEndpointEndToEnd(t *testing.T) {
	dir := t.TempDir()
	edges := testStream(24000, 63)
	// The reservoir holds every segment's whole slice (SampleSize ≥ 8000),
	// so a layout-incompatible fold re-ingests losslessly and the ≥truth
	// assertions below stay valid.
	chain := adapt.NewChain(buildTestGSketch(t, edges[:1500]), adapt.ChainConfig{SampleSize: 16384, Seed: 7})
	_, ts := newTestServer(t, Config{
		Estimator:    chain,
		SnapshotPath: filepath.Join(dir, "chain.gsk"),
		Adapt:        adapt.ManagerConfig{Sketch: testSketchConfig()},
	})

	// Two pivots → three generations (two frozen, one live head).
	ingestAll(t, ts.URL, edges[:8000])
	postOK := func(path string) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		return body
	}
	postOK("/repartition")
	ingestAll(t, ts.URL, edges[8000:16000])
	postOK("/repartition")
	ingestAll(t, ts.URL, edges[16000:])

	var qs []core.EdgeQuery
	for _, e := range edges[:300] {
		qs = append(qs, core.EdgeQuery{Src: e.Src, Dst: e.Dst})
	}

	body := postOK("/compact")
	var res struct {
		Folded      int `json:"folded"`
		Generations int `json:"generations"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("compact reply %q: %v", body, err)
	}
	if res.Folded != 2 || res.Generations != 2 {
		t.Fatalf("compact reply %s, want 2 folded into 2 generations", body)
	}

	// Answers must still cover the whole stream after the fold. (They may
	// drop relative to the pre-compaction gather: a re-ingest rebuild can
	// shed collision overcount — only exact merges never shrink.)
	exact := stream.NewExactCounter()
	exact.ObserveAll(edges)
	after := queryBatch(t, ts.URL, qs)
	for i, q := range qs {
		truth := exact.EdgeFrequency(q.Src, q.Dst)
		if after[i].Estimate < truth {
			t.Fatalf("edge (%d,%d): post-compaction estimate %d < truth %d", q.Src, q.Dst, after[i].Estimate, truth)
		}
	}

	// The lifecycle gauges land in /stats.
	st := getStats(t, ts.URL)
	if st["generations"].(float64) != 2 || st["compactions"].(float64) != 1 {
		t.Fatalf("stats generations=%v compactions=%v, want 2 and 1", st["generations"], st["compactions"])
	}
	if st["compacted_from"].(float64) != 3 {
		t.Fatalf("stats compacted_from = %v, want 3", st["compacted_from"])
	}
	for _, k := range []string{"resident_generations", "tiered_generations", "tiered_bytes"} {
		if _, ok := st[k]; !ok {
			t.Fatalf("stats missing %q: %v", k, st)
		}
	}

	// A single frozen generation left: compacting again is a clean no-op.
	var again struct {
		Folded int `json:"folded"`
	}
	if err := json.Unmarshal(postOK("/compact"), &again); err != nil || again.Folded != 0 {
		t.Fatalf("idle compact: folded=%d err=%v, want 0-fold success", again.Folded, err)
	}

	// Snapshot → restore keeps the compacted chain and its answers.
	postOK("/snapshot/save")
	if body := postOK("/snapshot/restore"); !bytes.Contains(body, []byte(`"generations":2`)) {
		t.Fatalf("restore reply: %s", body)
	}
	restored := queryBatch(t, ts.URL, qs)
	for i := range qs {
		if restored[i].Estimate != after[i].Estimate {
			t.Fatalf("query %d: restored estimate %d != live %d", i, restored[i].Estimate, after[i].Estimate)
		}
	}

	// A non-adaptive server does not mount the route at all.
	_, plainTS := newTestServer(t, Config{Estimator: buildTestGSketch(t, edges[:500])})
	resp, err := http.Post(plainTS.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("compact on non-adaptive server: status %d, want 404", resp.StatusCode)
	}
}

// Shutdown must stop the adapt auto-trigger goroutine before the final
// snapshot (the engine's Close ordering), so a rebuild can never race the
// save. Run under -race in CI: the auto loop ticks aggressively, manual
// repartitions and ingest stay in flight, and the shutdown snapshot must
// come out a loadable, consistent chain.
func TestShutdownDuringAutoRepartition(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "final-chain.gsk")
	edges := testStream(20000, 59)
	srv, ts := newTestServer(t, Config{
		Estimator:    newTestChain(t, edges[:1500]),
		SnapshotPath: snap,
		Adapt: adapt.ManagerConfig{
			Sketch:         testSketchConfig(),
			DriftThreshold: 0.01,
			MinWorkload:    8,
			MinData:        8,
		},
		AdaptInterval:      time.Millisecond,
		SnapshotOnShutdown: true,
	})

	ingestAll(t, ts.URL, edges[:5000])
	var qs []core.EdgeQuery
	for i := 0; i < 64; i++ {
		qs = append(qs, core.EdgeQuery{Src: uint64(1 << 41), Dst: uint64(i)})
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { // keep drift high and swaps firing while shutdown lands
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			queryBatch(t, ts.URL, qs)
			postIngest(t, ts.URL, edges[5000+(i*100)%10000:5000+(i*100)%10000+100], false)
			resp, err := http.Post(ts.URL+"/repartition", "application/json", nil)
			if err == nil {
				resp.Body.Close()
			}
		}
	}()

	time.Sleep(15 * time.Millisecond) // let the auto loop overlap the traffic
	if err := srv.Close(); err != nil {
		t.Fatalf("shutdown during auto repartition: %v", err)
	}
	close(stop)
	<-done

	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	defer f.Close()
	gens, err := core.ReadChain(f)
	if err != nil {
		t.Fatalf("final snapshot unreadable: %v", err)
	}
	if len(gens) < 1 {
		t.Fatalf("final snapshot carries no generations")
	}
}
