package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/wire"
)

// TestIngestAllocsPerEdge is the regression guard for the pooled hot
// path: a warm server must not allocate parse or batch buffers per
// request, so the per-edge allocation count stays flat. NDJSON pays
// encoding/json's per-line cost; the wire path must be near zero.
func TestIngestAllocsPerEdge(t *testing.T) {
	const n = 2048
	edges := testStream(n, 31)
	g := buildTestGSketch(t, edges)
	srv, _ := newTestServer(t, Config{
		Estimator: core.NewConcurrent(g),
		Ingest:    ingest.Config{Workers: 1, BatchSize: 1024, QueueDepth: 16},
	})
	h := srv.Handler()

	ndjson := ndjsonBody(edges).Bytes()
	wireBody := wire.AppendIngest(nil, edges)

	post := func(contentType string, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/ingest?sync=1", bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
		}
	}

	// Warm the buffer pools before measuring.
	post("application/x-ndjson", ndjson)
	post(wire.ContentType, wireBody)

	ndjsonPerEdge := testing.AllocsPerRun(10, func() { post("application/x-ndjson", ndjson) }) / n
	wirePerEdge := testing.AllocsPerRun(10, func() { post(wire.ContentType, wireBody) }) / n
	t.Logf("allocs/edge: ndjson=%.3f wire=%.4f", ndjsonPerEdge, wirePerEdge)

	// NDJSON: json.Unmarshal costs ~5 allocs per line with pooled scan and
	// batch buffers; anything beyond 7 means a buffer stopped being pooled.
	if ndjsonPerEdge > 7 {
		t.Errorf("NDJSON ingest allocates %.3f allocs/edge, want <= 7 — a hot-path buffer is no longer pooled", ndjsonPerEdge)
	}
	// Wire: fixed-width decoding into pooled buffers; the request-constant
	// overhead (~tens of allocs) amortized over 2048 edges must stay well
	// under one allocation per edge.
	if wirePerEdge > 0.25 {
		t.Errorf("wire ingest allocates %.4f allocs/edge, want <= 0.25 — the frame path is allocating per record", wirePerEdge)
	}
}
