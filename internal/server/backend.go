package server

import (
	"context"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Backend is the serving surface the Server fronts — the operations every
// endpoint and wire frame shares, implemented by a single-node
// gsketch.Engine (via engineBackend) and by cluster.Coordinator. Engine-
// only concerns (workload capture, window queries, repartitioning,
// streaming snapshots) stay off the interface: their routes mount only
// when the backend is an engine.
type Backend interface {
	// TryIngest offers an edge batch without blocking, returning the
	// accepted prefix length (accepted-prefix semantics on every error).
	TryIngest(edges []stream.Edge) (int, error)
	// QueryBatch answers edge queries with bound-carrying results. A
	// cluster backend may return partial results alongside a typed
	// *cluster.PartialError.
	QueryBatch(qs []core.EdgeQuery) ([]core.Result, error)
	// Drain waits, bounded by ctx, until every accepted edge is applied.
	Drain(ctx context.Context) error
	// SaveSnapshot persists state (path empty = configured default).
	SaveSnapshot(path string) (int64, error)
	// RestoreSnapshot swaps state in from disk (path empty = default).
	RestoreSnapshot(path string) error
	// SnapshotPath is the configured default snapshot location.
	SnapshotPath() string
	// Generations counts sketch generations serving reads.
	Generations() int
	// Health reports the non-blocking liveness gauges a Pong carries.
	Health() (streamTotal int64, queueDepth, generations int)
	// Close shuts the backend down, draining accepted work.
	Close() error
}

// engineBackend adapts gsketch.Engine to Backend.
type engineBackend struct {
	eng *gsketch.Engine
}

func (b engineBackend) TryIngest(edges []stream.Edge) (int, error) { return b.eng.TryIngest(edges) }

func (b engineBackend) QueryBatch(qs []core.EdgeQuery) ([]core.Result, error) {
	return b.eng.QueryBatch(qs), nil
}

func (b engineBackend) Drain(ctx context.Context) error         { return b.eng.Drain(ctx) }
func (b engineBackend) SaveSnapshot(path string) (int64, error) { return b.eng.SaveSnapshot(path) }
func (b engineBackend) RestoreSnapshot(path string) error       { return b.eng.RestoreSnapshot(path) }
func (b engineBackend) SnapshotPath() string                    { return b.eng.SnapshotPath() }
func (b engineBackend) Generations() int                        { return b.eng.Generations() }
func (b engineBackend) Close() error                            { return b.eng.Close() }

func (b engineBackend) Health() (int64, int, int) {
	depth := 0
	if is := b.eng.IngestStats(); is != nil {
		depth = is.QueueDepth
	}
	return b.eng.Estimator().Count(), depth, b.eng.Generations()
}
