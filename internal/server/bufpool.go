package server

import (
	"sync"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Request-scoped parse and frame buffers, pooled so the hot serving paths
// (NDJSON and wire alike) allocate nothing per request once warm. The
// pools hand out pointers to slices — pooling the headers directly would
// re-box them on every Put.
//
// Contract: a pooled buffer is returned as soon as the data has been
// handed off (TryIngest and UpdateBatch copy; QueryBatch reads
// synchronously), and never retained past the request.

const (
	// edgeBufCap starts edge buffers at one pipeline batch; larger
	// requests grow the buffer once and the grown capacity is what gets
	// pooled.
	edgeBufCap = 8192
	// queryBufCap starts query/result buffers at the bench's batch size.
	queryBufCap = 4096
	// scanBufCap is the NDJSON scanner buffer: sized to the line bound so
	// bufio.Scanner never grows (and thereby discards) it.
	scanBufCap = maxNDJSONLine
	// frameBufCap starts wire frame encode buffers at 64 KiB.
	frameBufCap = 64 << 10
)

var (
	edgePool  = sync.Pool{New: func() any { s := make([]stream.Edge, 0, edgeBufCap); return &s }}
	queryPool = sync.Pool{New: func() any { s := make([]core.EdgeQuery, 0, queryBufCap); return &s }}
	scanPool  = sync.Pool{New: func() any { s := make([]byte, scanBufCap); return &s }}
	framePool = sync.Pool{New: func() any { s := make([]byte, 0, frameBufCap); return &s }}
)

func getEdgeBuf() *[]stream.Edge { return edgePool.Get().(*[]stream.Edge) }

func putEdgeBuf(p *[]stream.Edge) {
	*p = (*p)[:0]
	edgePool.Put(p)
}

func getQueryBuf() *[]core.EdgeQuery { return queryPool.Get().(*[]core.EdgeQuery) }

func putQueryBuf(p *[]core.EdgeQuery) {
	*p = (*p)[:0]
	queryPool.Put(p)
}

func getScanBuf() *[]byte { return scanPool.Get().(*[]byte) }

func putScanBuf(p *[]byte) { scanPool.Put(p) }

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(p *[]byte) {
	*p = (*p)[:0]
	framePool.Put(p)
}
