package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/hashutil"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/stream"
)

func testStream(n int, seed uint64) []stream.Edge {
	rng := hashutil.NewRNG(seed)
	edges := make([]stream.Edge, n)
	for i := range edges {
		edges[i] = stream.Edge{
			Src:    rng.Uint64() % 3000,
			Dst:    rng.Uint64() % 9000,
			Weight: int64(rng.Uint64()%4) + 1,
			Time:   int64(i),
		}
	}
	return edges
}

// testSketchConfig is shared by the direct and served estimators so both
// partition identically.
func testSketchConfig() core.Config {
	return core.Config{TotalBytes: 64 << 10, Seed: 99}
}

func buildTestGSketch(t *testing.T, sample []stream.Edge) *core.GSketch {
	t.Helper()
	g, err := core.BuildGSketch(testSketchConfig(), sample, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newTestServer starts a Server over httptest and arranges cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// ndjsonBody renders edges as NDJSON ingest lines.
func ndjsonBody(edges []stream.Edge) *bytes.Buffer {
	var buf bytes.Buffer
	for _, e := range edges {
		fmt.Fprintf(&buf, `{"src":%d,"dst":%d,"weight":%d,"time":%d}`+"\n", e.Src, e.Dst, e.Weight, e.Time)
	}
	return &buf
}

// ingestAll pushes a stream through POST /ingest in chunks, retrying any
// 429-shed suffix until everything is accepted.
func ingestAll(t *testing.T, baseURL string, edges []stream.Edge) {
	t.Helper()
	const chunk = 2048
	client := &http.Client{}
	for lo := 0; lo < len(edges); {
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		resp, err := client.Post(baseURL+"/ingest", "application/x-ndjson", ndjsonBody(edges[lo:hi]))
		if err != nil {
			t.Fatal(err)
		}
		var ir ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			lo = hi
		case http.StatusTooManyRequests:
			lo += ir.Accepted
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("ingest: unexpected status %d", resp.StatusCode)
		}
	}
}

// queryBatch answers qs over POST /query with sync semantics.
func queryBatch(t *testing.T, baseURL string, qs []core.EdgeQuery) []resultJSON {
	t.Helper()
	req := queryRequest{Queries: make([]queryJSON, len(qs)), Sync: true}
	for i, q := range qs {
		req.Queries[i] = queryJSON{Src: q.Src, Dst: q.Dst}
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("query: status %d: %s", resp.StatusCode, raw)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr.Results
}

// requireSameResults compares served answers against the in-process
// batched read path, field by field. JSON round-trips float64 losslessly
// (encoding/json emits the shortest representation that parses back to the
// same value), so equality here is byte-identity of the answers.
func requireSameResults(t *testing.T, got []resultJSON, want []core.Result, qs []core.EdgeQuery) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Src != qs[i].Src || g.Dst != qs[i].Dst {
			t.Fatalf("result %d echoes (%d,%d), want (%d,%d)", i, g.Src, g.Dst, qs[i].Src, qs[i].Dst)
		}
		if g.Estimate != w.Estimate || g.Partition != w.Partition || g.Outlier != w.Outlier ||
			g.ErrorBound != w.ErrorBound || g.Confidence != w.Confidence || g.StreamTotal != w.StreamTotal {
			t.Fatalf("result %d: served %+v != direct %+v", i, g, w)
		}
	}
}

// TestServeEquivalenceEndToEnd is the acceptance test: the same stream
// pushed over HTTP and directly through an in-process Concurrent estimator
// must answer identically, and identically again after snapshot →
// restart → restore.
func TestServeEquivalenceEndToEnd(t *testing.T) {
	edges := testStream(40_000, 7)
	sample := edges[:4000]

	// Direct in-process reference.
	direct := core.NewConcurrent(buildTestGSketch(t, sample))
	core.Populate(direct, edges)

	// Served twin, fed over loopback HTTP. Request-supplied snapshot
	// paths are confined to SnapshotPath's directory, so configure one.
	snapDir := t.TempDir()
	srv, ts := newTestServer(t, Config{
		Estimator:    buildTestGSketch(t, sample),
		Ingest:       ingest.Config{Workers: 4, BatchSize: 512, QueueDepth: 4},
		SnapshotPath: snapDir + "/default.gsk",
	})
	ingestAll(t, ts.URL, edges)

	qs := make([]core.EdgeQuery, 0, 2000)
	for i := 0; i < 1999; i++ {
		qs = append(qs, core.EdgeQuery{Src: edges[i].Src, Dst: edges[i].Dst})
	}
	// One vertex outside the sample, so the outlier path round-trips.
	qs = append(qs, core.EdgeQuery{Src: 1 << 61, Dst: 5})

	want := direct.EstimateBatch(qs)
	requireSameResults(t, queryBatch(t, ts.URL, qs), want, qs)

	// Snapshot the served state, then restore it into a brand-new server
	// (fresh, unpopulated estimator — the "restart") and compare again.
	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{
		Estimator: buildTestGSketch(t, sample),
		Ingest:    ingest.Config{Workers: 2, BatchSize: 512, QueueDepth: 4},
	})
	restoreResp, err := http.Post(ts2.URL+"/snapshot/restore", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if restoreResp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(restoreResp.Body)
		t.Fatalf("restore: status %d: %s", restoreResp.StatusCode, raw)
	}
	restoreResp.Body.Close()
	requireSameResults(t, queryBatch(t, ts2.URL, qs), want, qs)

	// Disk round-trip on the original server: save, restore from path,
	// query a third time.
	snapPath := snapDir + "/state.gsk"
	saveBody, _ := json.Marshal(snapshotRequest{Path: snapPath})
	saveResp, err := http.Post(ts.URL+"/snapshot/save", "application/json", bytes.NewReader(saveBody))
	if err != nil {
		t.Fatal(err)
	}
	if saveResp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(saveResp.Body)
		t.Fatalf("save: status %d: %s", saveResp.StatusCode, raw)
	}
	saveResp.Body.Close()
	restoreResp2, err := http.Post(ts.URL+"/snapshot/restore", "application/json",
		bytes.NewReader(saveBody))
	if err != nil {
		t.Fatal(err)
	}
	if restoreResp2.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(restoreResp2.Body)
		t.Fatalf("restore from path: status %d: %s", restoreResp2.StatusCode, raw)
	}
	restoreResp2.Body.Close()
	requireSameResults(t, queryBatch(t, ts.URL, qs), want, qs)

	if n := srv.stats.snapshotsSaved.Value(); n != 1 {
		t.Fatalf("snapshots_saved = %d, want 1", n)
	}

	// Path confinement: a request path outside the snapshot directory is
	// refused; a confined-but-missing file is a plain 404.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/etc/passwd", http.StatusForbidden},
		{snapDir + "/sub/../../escape.gsk", http.StatusForbidden},
		{snapDir + "/missing.gsk", http.StatusNotFound},
	} {
		body, _ := json.Marshal(snapshotRequest{Path: tc.path})
		resp, err := http.Post(ts.URL+"/snapshot/restore", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("restore %q: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}
