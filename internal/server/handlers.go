package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"github.com/graphstream/gsketch/internal/adapt"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/stream"
)

// routes builds the method-routed mux (Go 1.22 pattern syntax).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /snapshot", s.handleSnapshotGet)
	mux.HandleFunc("POST /snapshot/save", s.handleSnapshotSave)
	mux.HandleFunc("POST /snapshot/restore", s.handleSnapshotRestore)
	if s.rec != nil {
		mux.HandleFunc("GET /workload", s.handleWorkload)
	}
	if s.cfg.Window != nil {
		mux.HandleFunc("POST /query/window", s.handleWindowQuery)
	}
	if s.mgr != nil {
		mux.HandleFunc("POST /repartition", s.handleRepartition)
	}
	return mux
}

// handleRepartition rebuilds the partitioning from the chain's live data
// reservoir and the recorded query workload, and hot-swaps the result in as
// a new sketch generation — the on-demand end of the record → rebuild →
// swap loop (the auto-trigger end is Config.AdaptInterval).
func (s *Server) handleRepartition(w http.ResponseWriter, r *http.Request) {
	s.stats.repartitionRequests.Add(1)
	res, err := s.mgr.Repartition()
	if err != nil {
		code := http.StatusInternalServerError
		// Both are client-retriable states, not server faults: the
		// generation cap needs an operator decision, an empty reservoir
		// just needs more stream before the next attempt.
		if errors.Is(err, adapt.ErrMaxGenerations) || errors.Is(err, adapt.ErrEmptyReservoir) {
			code = http.StatusConflict
		}
		writeError(w, code, "repartition: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generations": res.Generations,
		"partitions":  res.Partitions,
		"build_ms":    float64(res.BuildDuration.Microseconds()) / 1e3,
		"drift":       res.Before,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleIngest accepts an NDJSON edge batch and hands it to the pipeline
// without ever blocking the handler on a full queue: backpressure becomes
// HTTP 429 with the accepted prefix length, so clients retry only what was
// shed. ?sync=1 additionally flushes before replying (read-your-writes).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.stats.ingestRequests.Add(1)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	edges, err := decodeEdgesNDJSON(body)
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "ingest: %v", err)
		return
	}
	// The engine read lock is held across the (non-blocking) push so a
	// concurrent snapshot restore cannot swap the engine between the ack
	// and the enqueue — every 200-acked edge lands in the engine that
	// serves subsequent queries, not a displaced pipeline.
	s.mu.RLock()
	eng := s.eng
	accepted, err := eng.ing.TryPushBatch(edges)
	s.mu.RUnlock()
	s.stats.edgesAccepted.Add(int64(accepted))
	s.observeWindow(edges[:accepted])
	rejected := len(edges) - accepted
	switch {
	case errors.Is(err, ingest.ErrClosed):
		// The accepted prefix (if any) was still taken by the pipeline;
		// report it so a retrying client does not double-send it.
		writeJSON(w, http.StatusServiceUnavailable, ingestResponse{
			Accepted: accepted,
			Rejected: rejected,
			Error:    "ingest pipeline closed",
		})
		return
	case errors.Is(err, ingest.ErrQueueFull):
		s.stats.edgesRejected.Add(int64(rejected))
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ingestResponse{
			Accepted: accepted,
			Rejected: rejected,
			Error:    "ingest queue full",
		})
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "ingest: %v", err)
		return
	}
	if r.URL.Query().Get("sync") != "" {
		if err := s.flushBounded(r, eng); err != nil {
			writeError(w, http.StatusServiceUnavailable, "ingest: flush: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: accepted})
}

// flushBounded flushes the pipeline with a deadline: Ingestor.Flush waits
// on the global drain condition, which under sustained ingest traffic may
// not quiesce — a handler must not hang on it indefinitely. The flush
// goroutine itself runs to completion either way; only the wait is bounded
// (by Config.FlushTimeout and the client disconnecting).
func (s *Server) flushBounded(r *http.Request, eng *engine) error {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.FlushTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.ing.Flush() }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ingest.ErrClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain did not quiesce: %w", ctx.Err())
	}
}

// observeWindow feeds accepted edges to the optional window store. The
// store is single-writer, so access is serialized; ordering violations are
// the client's (the store requires nondecreasing window indices) and are
// swallowed after counting — the primary estimator already absorbed the
// edges.
func (s *Server) observeWindow(edges []stream.Edge) {
	if s.cfg.Window == nil || len(edges) == 0 {
		return
	}
	s.winMu.Lock()
	_ = s.cfg.Window.ObserveBatch(edges)
	s.winMu.Unlock()
}

// handleQuery answers a batch of edge queries with the bound-carrying
// batched read path and records the batch into the workload reservoir.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.stats.queryRequests.Add(1)
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "query: empty batch")
		return
	}
	eng := s.engine()
	if req.Sync {
		if err := s.flushBounded(r, eng); err != nil {
			writeError(w, http.StatusServiceUnavailable, "query: flush: %v", err)
			return
		}
	}
	qs := toEdgeQueries(req.Queries)
	if s.rec != nil {
		s.rec.Record(qs)
	}
	results := eng.est.EstimateBatch(qs)
	s.stats.queriesAnswered.Add(int64(len(results)))
	resp := queryResponse{Results: make([]resultJSON, len(results))}
	for i, res := range results {
		resp.Results[i] = resultJSON{
			Src:         req.Queries[i].Src,
			Dst:         req.Queries[i].Dst,
			Estimate:    res.Estimate,
			Partition:   res.Partition,
			Outlier:     res.Outlier,
			ErrorBound:  res.ErrorBound,
			Confidence:  res.Confidence,
			StreamTotal: res.StreamTotal,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWindowQuery answers a time-range batch against the window store.
func (s *Server) handleWindowQuery(w http.ResponseWriter, r *http.Request) {
	s.stats.windowQueries.Add(1)
	var req windowQueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "window query: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "window query: empty batch")
		return
	}
	qs := toEdgeQueries(req.Queries)
	s.winMu.Lock()
	values := s.cfg.Window.EstimateBatch(qs, req.T1, req.T2)
	s.winMu.Unlock()
	writeJSON(w, http.StatusOK, windowQueryResponse{Values: values})
}

// handleSnapshotGet streams the serialized sketch, snapshotted under the
// striped read locks, directly to the client.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	eng := s.engine()
	// Write through a counter so an error before the first byte (an
	// estimator without a serial form, say) can still become a clean 500
	// instead of a 200 with an empty body the client mistakes for a
	// snapshot.
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countingWriter{w: w}
	if _, err := eng.est.WriteTo(cw); err != nil {
		if cw.n == 0 {
			// Headers not sent yet: writeError still owns the status line.
			writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
			return
		}
		// Mid-stream failure: the 200 header is gone; abort the connection
		// so the client sees a truncated transfer rather than a silent
		// success.
		panic(http.ErrAbortHandler)
	}
}

// handleSnapshotSave persists a snapshot to disk. The target path comes
// from the JSON body or falls back to the configured SnapshotPath.
func (s *Server) handleSnapshotSave(w http.ResponseWriter, r *http.Request) {
	path, ok := s.snapshotPath(w, r)
	if !ok {
		return
	}
	n, err := s.saveSnapshot(path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot save: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"path": path, "bytes": n})
}

// handleSnapshotRestore swaps the serving state for a snapshot, read from
// the raw request body (Content-Type: application/octet-stream) or from a
// path on disk.
func (s *Server) handleSnapshotRestore(w http.ResponseWriter, r *http.Request) {
	// Snapshots carry no window-store state, so swapping the estimator
	// under a mounted window store would leave /query and /query/window
	// answering from different histories. Refuse loudly; restore into a
	// fresh process without -window-span instead.
	if s.cfg.Window != nil {
		writeError(w, http.StatusConflict,
			"snapshot restore: refused while a window store is mounted (snapshots do not carry window state)")
		return
	}
	var src io.Reader
	var from string
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		src = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		from = "request body"
	} else {
		path, ok := s.snapshotPath(w, r)
		if !ok {
			return
		}
		f, err := os.Open(path)
		if err != nil {
			writeError(w, http.StatusNotFound, "snapshot restore: %v", err)
			return
		}
		defer f.Close()
		src, from = f, path
	}
	gens, err := core.ReadChain(src)
	if err != nil {
		writeError(w, http.StatusBadRequest, "snapshot restore from %s: %v", from, err)
		return
	}
	eng, err := s.restoreSnapshot(gens)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errNotAdaptive) {
			// The snapshot is fine; this server just cannot serve it.
			code = http.StatusConflict
		}
		writeError(w, code, "snapshot restore: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"restored":     from,
		"generations":  len(gens),
		"partitions":   gens[len(gens)-1].NumPartitions(),
		"stream_total": eng.est.Count(),
	})
}

// snapshotPath resolves the snapshot path from the request body or config,
// writing the error reply itself when none is usable. A request-supplied
// path is confined to the directory of Config.SnapshotPath: without the
// restriction, any HTTP client could write (save clobbers via rename) or
// probe (restore opens) arbitrary filesystem paths the process can reach.
func (s *Server) snapshotPath(w http.ResponseWriter, r *http.Request) (string, bool) {
	var req snapshotRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "snapshot: %v", err)
		return "", false
	}
	if req.Path == "" {
		if s.cfg.SnapshotPath == "" {
			writeError(w, http.StatusBadRequest, "snapshot: no path (set Config.SnapshotPath or pass {\"path\": ...})")
			return "", false
		}
		return s.cfg.SnapshotPath, true
	}
	if s.cfg.SnapshotPath == "" {
		writeError(w, http.StatusForbidden, "snapshot: request paths are disabled (no Config.SnapshotPath to confine them to)")
		return "", false
	}
	allowedDir, err := filepath.Abs(filepath.Dir(s.cfg.SnapshotPath))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return "", false
	}
	abs, err := filepath.Abs(req.Path)
	if err != nil || filepath.Dir(abs) != allowedDir {
		writeError(w, http.StatusForbidden, "snapshot: path %q is outside the snapshot directory %q", req.Path, allowedDir)
		return "", false
	}
	return abs, true
}

// handleWorkload exports the recorded query-workload sample in the text
// edge format the partitioning builder consumes.
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = s.rec.WriteTo(w)
}

// handleStats reports the expvar counters plus live gauges of the engine,
// queue and snapshot age.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	eng := s.engine()
	now := s.cfg.Now()
	stats := map[string]any{
		"uptime_seconds":  now.Sub(s.start).Seconds(),
		"stream_total":    eng.est.Count(),
		"partitions":      eng.est.NumShards(),
		"memory_bytes":    eng.est.MemoryBytes(),
		"edges_applied":   eng.ing.Edges(),
		"batches_applied": eng.ing.Batches(),
		"queue_depth":     eng.ing.QueueDepth(),
		"queue_cap":       eng.ing.QueueCap(),
		"inflight":        eng.ing.Inflight(),
		"pending_edges":   eng.ing.Pending(),
	}
	if s.rec != nil {
		stats["workload_seen"] = s.rec.Seen()
		stats["workload_sample"] = s.rec.Len()
		stats["workload_capacity"] = s.rec.Capacity()
	}
	// Routing observability: per-partition hit counts and the outlier
	// share, split by direction — the raw signal adaptive repartitioning
	// watches.
	if rs, ok := eng.est.(core.RouteStatsSource); ok {
		reads, writes := rs.ReadRouteCounts(), rs.WriteRouteCounts()
		stats["route_read_hits"] = reads.Partitions
		stats["route_read_outlier"] = reads.Outlier
		stats["route_read_outlier_share"] = reads.OutlierShare()
		stats["route_write_hits"] = writes.Partitions
		stats["route_write_outlier"] = writes.Outlier
		stats["route_write_outlier_share"] = writes.OutlierShare()
	}
	if s.mgr != nil && eng.chain != nil {
		d := s.mgr.Drift()
		stats["generations"] = eng.chain.Generations()
		stats["repartitions"] = s.mgr.Repartitions()
		stats["drift_workload_divergence"] = d.WorkloadDivergence
		stats["drift_outlier_share"] = d.OutlierShare
		stats["adapt_data_sample"] = d.DataSample
	}
	if ns := s.snapNanos.Load(); ns > 0 {
		stats["snapshot_age_seconds"] = float64(now.UnixNano()-ns) / 1e9
	} else {
		stats["snapshot_age_seconds"] = -1.0
	}
	s.stats.vars.Do(func(kv expvar.KeyValue) {
		stats[kv.Key] = json.RawMessage(kv.Value.String())
	})
	writeJSON(w, http.StatusOK, stats)
}
