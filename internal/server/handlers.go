package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/cluster"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/tenant"
)

// routes builds the method-routed mux (Go 1.22 pattern syntax). Every
// handler is wrapped with a per-route latency histogram; the histogram
// child is resolved here, once, so the per-request cost is two clock
// reads and an atomic bucket add.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		hist := s.metrics.routeHistogram(pattern)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h(w, r)
			hist.ObserveSince(start)
		})
	}
	handle("GET /healthz", s.handleHealthz)
	handle("GET /readyz", s.handleReadyz)
	handle("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	if s.tenants != nil {
		// Multi-tenant mode: the data path is tenant-scoped (the handlers
		// are the same functions — s.backend resolves the {tenant} wildcard
		// into a Backend per request) and the admin API mounts beside it.
		handle("POST /t/{tenant}/ingest", s.handleIngest)
		handle("POST /t/{tenant}/query", s.handleQuery)
		handle("POST /t/{tenant}/snapshot/save", s.handleSnapshotSave)
		handle("POST /t/{tenant}/snapshot/restore", s.handleSnapshotRestore)
		handle("PUT /t/{tenant}", s.handleTenantPut)
		handle("DELETE /t/{tenant}", s.handleTenantDelete)
		handle("GET /t/{tenant}", s.handleTenantGet)
		handle("GET /t", s.handleTenantList)
	} else {
		handle("POST /ingest", s.handleIngest)
		handle("POST /query", s.handleQuery)
		handle("GET /snapshot", s.handleSnapshotGet)
		handle("POST /snapshot/save", s.handleSnapshotSave)
		handle("POST /snapshot/restore", s.handleSnapshotRestore)
	}
	// Engine-only surfaces; cluster and tenant backends (s.eng == nil)
	// serve the shared endpoints above, unchanged.
	if s.eng != nil && s.eng.RecordsWorkload() {
		handle("GET /workload", s.handleWorkload)
	}
	if s.eng != nil && s.eng.HasWindow() {
		handle("POST /query/window", s.handleWindowQuery)
	}
	if s.eng != nil && s.eng.Adaptive() {
		handle("POST /repartition", s.handleRepartition)
		handle("POST /compact", s.handleCompact)
	}
	// Unmatched routes get the same JSON error envelope as every other
	// failure, not net/http's text 404. The catch-all also absorbs the
	// mux's method-mismatch handling, so it re-probes the route table
	// with the other methods to keep those replies 405 (with Allow).
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		var allowed []string
		for _, m := range []string{http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete} {
			if m == r.Method {
				continue
			}
			probe := r.Clone(r.Context())
			probe.Method = m
			if _, pattern := mux.Handler(probe); pattern != "" && pattern != "/" {
				allowed = append(allowed, m)
			}
		}
		if len(allowed) > 0 {
			w.Header().Set("Allow", strings.Join(allowed, ", "))
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed for %s", r.Method, r.URL.Path)
			return
		}
		writeError(w, http.StatusNotFound, "no route for %s %s", r.Method, r.URL.Path)
	})
	return mux
}

// backend resolves the request's serving surface: the process-wide
// backend, or — in tenant mode — the {tenant} wildcard's handle. It
// writes the 404 itself when the tenant does not exist.
func (s *Server) backend(w http.ResponseWriter, r *http.Request) (Backend, bool) {
	if s.tenants == nil {
		return s.be, true
	}
	name := r.PathValue("tenant")
	h, err := s.tenants.Tenant(name)
	if err != nil {
		s.writeTenantError(w, name, err)
		return nil, false
	}
	return h, true
}

// writeTenantError maps tenant registry errors onto HTTP statuses.
func (s *Server) writeTenantError(w http.ResponseWriter, name string, err error) {
	switch {
	case errors.Is(err, tenant.ErrNotFound):
		writeErrorCode(w, http.StatusNotFound, "tenant_not_found", "tenant %q not found", name)
	case errors.Is(err, tenant.ErrBadName):
		writeError(w, http.StatusBadRequest, "tenant: %v", err)
	case errors.Is(err, tenant.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "tenant: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "tenant: %v", err)
	}
}

// handleRepartition rebuilds the partitioning from the engine's live data
// reservoir and the recorded query workload, and hot-swaps the result in as
// a new sketch generation — the on-demand end of the record → rebuild →
// swap loop (the auto-trigger end is the engine's WithAutoRepartition).
func (s *Server) handleRepartition(w http.ResponseWriter, r *http.Request) {
	s.stats.repartitionRequests.Add(1)
	done := s.beginSwap()
	res, err := s.eng.Repartition()
	done()
	if err != nil {
		// Both 409s are client-retriable states, not server faults: the
		// generation cap needs an operator decision (compact, or mount a
		// compaction policy), an empty reservoir just needs more stream
		// before the next attempt. The machine-readable code tells the two
		// apart without string-matching the message.
		switch {
		case errors.Is(err, gsketch.ErrMaxGenerations):
			writeErrorCode(w, http.StatusConflict, "max_generations", "repartition: %v", err)
		case errors.Is(err, gsketch.ErrEmptyReservoir):
			writeErrorCode(w, http.StatusConflict, "empty_reservoir", "repartition: %v", err)
		default:
			writeError(w, http.StatusInternalServerError, "repartition: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generations": res.Generations,
		"partitions":  res.Partitions,
		"build_ms":    float64(res.BuildDuration.Microseconds()) / 1e3,
		"drift":       res.Before,
	})
}

// handleCompact folds the oldest frozen generations of the serving chain
// into one, on demand — the manual end of the generation-lifecycle loop
// (the policy end is the engine's WithCompaction). A chain with fewer than
// two frozen generations answers 200 with folded=0: nothing to do is not
// an error an operator script should have to special-case.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.stats.compactRequests.Add(1)
	res, err := s.eng.Compact()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, gsketch.ErrEngineClosed) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "compact: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"folded":      res.Folded,
		"exact":       res.Exact,
		"generations": res.Generations,
		"freed_bytes": res.FreedBytes,
		"duration_ms": float64(res.Duration.Microseconds()) / 1e3,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness half of the health split: alive is not
// the same as able to take traffic. 503s here tell a load balancer to
// route around a state swap in progress or a shardless cluster, while
// /healthz keeps reporting the process alive (no restart needed).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.ready(); err != nil {
		writeError(w, http.StatusServiceUnavailable, "not ready: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleIngest accepts an edge batch — NDJSON, or wire-framed when the
// body's Content-Type is the wire protocol's — and hands it to the engine
// without ever blocking the handler on a full queue: backpressure becomes
// HTTP 429 with the accepted prefix length, so clients retry only what was
// shed. ?sync=1 additionally drains before replying (read-your-writes).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.stats.ingestRequests.Add(1)
	be, ok := s.backend(w, r)
	if !ok {
		return
	}
	if isWireRequest(r) {
		s.handleWireIngestHTTP(w, r, be)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := getEdgeBuf()
	defer putEdgeBuf(buf)
	edges, err := decodeEdgesNDJSON(body, *buf)
	*buf = edges[:0]
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "ingest: %v", err)
		return
	}
	// TryIngest holds the engine's state read lock across the push, so a
	// concurrent snapshot restore cannot swap the pipeline between the ack
	// and the enqueue — every 200-acked edge lands in the engine state
	// that serves subsequent queries.
	accepted, err := be.TryIngest(edges)
	s.stats.edgesAccepted.Add(int64(accepted))
	rejected := len(edges) - accepted
	switch {
	case errors.Is(err, tenant.ErrNotFound):
		// The tenant was deleted between route resolution and the push.
		writeErrorCode(w, http.StatusNotFound, "tenant_not_found", "ingest: %v", err)
		return
	case errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, cluster.ErrClosed), errors.Is(err, tenant.ErrClosed):
		// The accepted prefix (if any) was still taken by the pipeline;
		// report it so a retrying client does not double-send it.
		writeJSON(w, http.StatusServiceUnavailable, ingestResponse{
			Accepted: accepted,
			Rejected: rejected,
			Error:    "ingest pipeline closed",
			Code:     "unavailable",
		})
		return
	case errors.Is(err, cluster.ErrShardDown):
		// A degraded shard owns the next edge's partition: 503 (not 429 —
		// an immediate retry hits the same wall) with the accepted prefix
		// and the typed shard attribution.
		s.stats.edgesRejected.Add(int64(rejected))
		writeJSON(w, http.StatusServiceUnavailable, ingestResponse{
			Accepted: accepted,
			Rejected: rejected,
			Error:    err.Error(),
			Code:     "unavailable",
		})
		return
	case errors.Is(err, tenant.ErrRateLimited):
		// The tenant's own quota, not server pressure — same 429 +
		// accepted-prefix contract, distinct machine code.
		s.stats.edgesRejected.Add(int64(rejected))
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ingestResponse{
			Accepted: accepted,
			Rejected: rejected,
			Error:    err.Error(),
			Code:     "rate_limited",
		})
		return
	case errors.Is(err, gsketch.ErrIngestQueueFull):
		s.stats.edgesRejected.Add(int64(rejected))
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ingestResponse{
			Accepted: accepted,
			Rejected: rejected,
			Error:    "ingest queue full",
			Code:     "too_many_requests",
		})
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "ingest: %v", err)
		return
	}
	if r.URL.Query().Get("sync") != "" {
		if err := s.drainBounded(r, be); err != nil {
			writeError(w, http.StatusServiceUnavailable, "ingest: flush: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: accepted})
}

// drainBounded drains the engine pipeline with a deadline: the drain
// condition is global, and under sustained ingest traffic it may not
// quiesce — a handler must not hang on it indefinitely.
func (s *Server) drainBounded(r *http.Request, be Backend) error {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.FlushTimeout)
	defer cancel()
	err := be.Drain(ctx)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return errors.New("drain did not quiesce: " + err.Error())
	}
	if errors.Is(err, gsketch.ErrEngineClosed) || errors.Is(err, cluster.ErrClosed) || errors.Is(err, tenant.ErrClosed) {
		return nil
	}
	return err
}

// writeQueryError maps backend query failures: a cluster gather that lost
// shards is 502 Bad Gateway with the typed per-shard attribution (the
// cluster is degraded, not the request), a closed backend 503, anything
// else 500.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var pe *cluster.PartialError
	switch {
	case errors.As(err, &pe):
		code = http.StatusBadGateway
	case errors.Is(err, tenant.ErrNotFound):
		// Tenant deleted between route resolution and the read.
		writeErrorCode(w, http.StatusNotFound, "tenant_not_found", "query: %v", err)
		return
	case errors.Is(err, cluster.ErrClosed), errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, tenant.ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeError(w, code, "query: %v", err)
}

// handleQuery answers a batch of edge queries with the bound-carrying
// batched read path; the engine records the batch into the workload
// reservoir.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.stats.queryRequests.Add(1)
	be, ok := s.backend(w, r)
	if !ok {
		return
	}
	if isWireRequest(r) {
		s.handleWireQueryHTTP(w, r, be)
		return
	}
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "query: empty batch")
		return
	}
	if req.Sync {
		if err := s.drainBounded(r, be); err != nil {
			writeError(w, http.StatusServiceUnavailable, "query: flush: %v", err)
			return
		}
	}
	qbuf := getQueryBuf()
	defer putQueryBuf(qbuf)
	qs := appendEdgeQueries(*qbuf, req.Queries)
	*qbuf = qs[:0]
	results, err := be.QueryBatch(qs)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	s.stats.queriesAnswered.Add(int64(len(results)))
	resp := queryResponse{Results: make([]resultJSON, len(results))}
	for i, res := range results {
		resp.Results[i] = resultJSON{
			Src:         req.Queries[i].Src,
			Dst:         req.Queries[i].Dst,
			Estimate:    res.Estimate,
			Partition:   res.Partition,
			Outlier:     res.Outlier,
			ErrorBound:  res.ErrorBound,
			Confidence:  res.Confidence,
			StreamTotal: res.StreamTotal,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWindowQuery answers a time-range batch against the window store.
func (s *Server) handleWindowQuery(w http.ResponseWriter, r *http.Request) {
	s.stats.windowQueries.Add(1)
	var req windowQueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "window query: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "window query: empty batch")
		return
	}
	qbuf := getQueryBuf()
	defer putQueryBuf(qbuf)
	qs := appendEdgeQueries(*qbuf, req.Queries)
	*qbuf = qs[:0]
	values, err := s.eng.QueryWindow(qs, req.T1, req.T2)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "window query: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, windowQueryResponse{Values: values})
}

// handleSnapshotGet streams the serialized sketch, snapshotted under the
// striped read locks, directly to the client.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	if s.eng == nil {
		// Cluster state lives on the shards' own disks; streaming it
		// through the coordinator is deliberately unsupported.
		writeError(w, http.StatusNotImplemented, "snapshot: %v", cluster.ErrNoStream)
		return
	}
	// Write through a counter so an error before the first byte (an
	// estimator without a serial form, say) can still become a clean 500
	// instead of a 200 with an empty body the client mistakes for a
	// snapshot.
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &stream.CountingWriter{W: w}
	if _, err := s.eng.Save(cw); err != nil {
		if cw.N == 0 {
			// Headers not sent yet: writeError still owns the status line.
			writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
			return
		}
		// Mid-stream failure: the 200 header is gone; abort the connection
		// so the client sees a truncated transfer rather than a silent
		// success.
		panic(http.ErrAbortHandler)
	}
}

// handleSnapshotSave persists a snapshot to disk. The target path comes
// from the JSON body or falls back to the engine's configured path.
func (s *Server) handleSnapshotSave(w http.ResponseWriter, r *http.Request) {
	be, ok := s.backend(w, r)
	if !ok {
		return
	}
	path, ok := s.snapshotPath(w, r, be)
	if !ok {
		return
	}
	n, err := be.SaveSnapshot(path)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		// A shard the coordinator cannot reach is an upstream fault.
		case errors.Is(err, cluster.ErrShardDown), isShardFailure(err):
			code = http.StatusBadGateway
		case errors.Is(err, tenant.ErrNotFound):
			writeErrorCode(w, http.StatusNotFound, "tenant_not_found", "snapshot save: %v", err)
			return
		case errors.Is(err, tenant.ErrClosed):
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "snapshot save: %v", err)
		return
	}
	s.stats.snapshotsSaved.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"path": path, "bytes": n})
}

// isShardFailure reports whether err carries per-shard attribution — a
// *cluster.ShardError or a *cluster.PartialError wrapping them.
func isShardFailure(err error) bool {
	var se *cluster.ShardError
	var pe *cluster.PartialError
	return errors.As(err, &se) || errors.As(err, &pe)
}

// handleSnapshotRestore swaps the serving state for a snapshot, read from
// the raw request body (Content-Type: application/octet-stream) or from a
// path on disk. The engine owns the swap semantics: an adaptive engine
// restores any snapshot as a chain and rebinds its manager; a non-adaptive
// engine refuses multi-generation snapshots; a windowed engine refuses all
// restores (snapshots carry no window state).
func (s *Server) handleSnapshotRestore(w http.ResponseWriter, r *http.Request) {
	if s.tenants != nil {
		s.handleTenantRestore(w, r)
		return
	}
	if s.eng == nil {
		s.handleClusterRestore(w, r)
		return
	}
	var src io.Reader
	var from string
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		src = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		from = "request body"
	} else {
		path, ok := s.snapshotPath(w, r, s.be)
		if !ok {
			return
		}
		f, err := os.Open(path)
		if err != nil {
			writeError(w, http.StatusNotFound, "snapshot restore: %v", err)
			return
		}
		defer f.Close()
		src, from = f, path
	}
	done := s.beginSwap()
	err := s.eng.Restore(src)
	done()
	if err != nil {
		// Default to a server fault: non-sentinel failures (a displaced
		// pipeline that would not drain, say) can arrive after the swap
		// took effect, and a 4xx would wrongly invite a blind retry.
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, gsketch.ErrBadSnapshot):
			code = http.StatusBadRequest
		case errors.Is(err, gsketch.ErrNotAdaptive), errors.Is(err, gsketch.ErrWindowMounted):
			// The snapshot may be fine; this server just cannot serve it.
			code = http.StatusConflict
		case errors.Is(err, gsketch.ErrEngineClosed):
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "snapshot restore from %s: %v", from, err)
		return
	}
	s.stats.snapshotsRestored.Add(1)
	st := s.eng.Stats()
	// The reply reports localized-sketch partitions (like the pre-Engine
	// server), not shard count — the two differ by the outlier shard.
	partitions := st.Partitions
	if g := s.eng.Sketch(); g != nil {
		partitions = g.NumPartitions()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"restored":     from,
		"generations":  s.eng.Generations(),
		"partitions":   partitions,
		"stream_total": st.StreamTotal,
	})
}

// handleTenantRestore swaps one tenant's state in from a snapshot path.
// Like the cluster path, raw octet-stream bodies are refused — tenant
// snapshots live under the registry tree, and the path restriction in
// snapshotPath confines requests to the tenant's own directory.
func (s *Server) handleTenantRestore(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		writeError(w, http.StatusNotImplemented, "snapshot restore: raw snapshot bodies are unsupported in tenant mode (pass {\"path\": ...})")
		return
	}
	be, ok := s.backend(w, r)
	if !ok {
		return
	}
	path, ok := s.snapshotPath(w, r, be)
	if !ok {
		return
	}
	if _, err := os.Stat(path); err != nil {
		writeError(w, http.StatusNotFound, "snapshot restore: %v", err)
		return
	}
	if err := be.RestoreSnapshot(path); err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, gsketch.ErrBadSnapshot):
			code = http.StatusBadRequest
		case errors.Is(err, tenant.ErrNotFound):
			writeErrorCode(w, http.StatusNotFound, "tenant_not_found", "snapshot restore: %v", err)
			return
		case errors.Is(err, gsketch.ErrEngineClosed), errors.Is(err, tenant.ErrClosed):
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "snapshot restore from %s: %v", path, err)
		return
	}
	s.stats.snapshotsRestored.Add(1)
	total, _, gens := be.Health()
	writeJSON(w, http.StatusOK, map[string]any{
		"restored":     path,
		"generations":  gens,
		"stream_total": total,
	})
}

// handleClusterRestore fans a snapshot restore out to every shard. Only
// manifest paths are restorable — a raw snapshot body has no home on the
// coordinator (state lives on shard disks), so octet-stream bodies are
// refused outright.
func (s *Server) handleClusterRestore(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		writeError(w, http.StatusNotImplemented, "snapshot restore: %v", cluster.ErrNoStream)
		return
	}
	path, ok := s.snapshotPath(w, r, s.be)
	if !ok {
		return
	}
	done := s.beginSwap()
	err := s.coord.RestoreSnapshot(path)
	done()
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, cluster.ErrTopologyMismatch):
			// The manifest may be fine; this topology cannot serve it.
			code = http.StatusConflict
		case errors.Is(err, os.ErrNotExist):
			code = http.StatusNotFound
		case errors.Is(err, cluster.ErrClosed):
			code = http.StatusServiceUnavailable
		case isShardFailure(err):
			code = http.StatusBadGateway
		}
		writeError(w, code, "snapshot restore from %s: %v", path, err)
		return
	}
	s.stats.snapshotsRestored.Add(1)
	total, _, gens := s.coord.Health()
	writeJSON(w, http.StatusOK, map[string]any{
		"restored":     path,
		"generations":  gens,
		"shards":       s.coord.NumShards(),
		"stream_total": total,
	})
}

// snapshotPath resolves the snapshot path from the request body or the
// engine default, writing the error reply itself when none is usable. A
// request-supplied path is confined to the directory of the engine's
// snapshot path: without the restriction, any HTTP client could write
// (save clobbers via rename) or probe (restore opens) arbitrary filesystem
// paths the process can reach.
func (s *Server) snapshotPath(w http.ResponseWriter, r *http.Request, be Backend) (string, bool) {
	var req snapshotRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "snapshot: %v", err)
		return "", false
	}
	deflt := be.SnapshotPath()
	if req.Path == "" {
		if deflt == "" {
			writeError(w, http.StatusBadRequest, "snapshot: no path (configure a snapshot path or pass {\"path\": ...})")
			return "", false
		}
		return deflt, true
	}
	if deflt == "" {
		writeError(w, http.StatusForbidden, "snapshot: request paths are disabled (no configured snapshot path to confine them to)")
		return "", false
	}
	allowedDir, err := filepath.Abs(filepath.Dir(deflt))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return "", false
	}
	abs, err := filepath.Abs(req.Path)
	if err != nil || filepath.Dir(abs) != allowedDir {
		writeError(w, http.StatusForbidden, "snapshot: path %q is outside the snapshot directory %q", req.Path, allowedDir)
		return "", false
	}
	return abs, true
}

// handleWorkload exports the recorded query-workload sample in the text
// edge format the partitioning builder consumes.
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = s.eng.WriteWorkloadTo(w)
}

// handleStats reports the expvar counters plus the backend's live gauges:
// engine pipeline/workload/routing gauges for a single node, per-shard
// depth/latency/health gauges for a cluster.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.Now()
	if s.tenants != nil {
		ts := s.tenants.RegistryStats()
		stats := map[string]any{
			"uptime_seconds":   now.Sub(s.start).Seconds(),
			"tenants":          ts.Tenants,
			"tenants_resident": ts.Resident,
			"tenant_evictions": ts.Evictions,
			"tenant_reopens":   ts.Reopens,
		}
		s.stats.vars.Do(func(kv expvar.KeyValue) {
			stats[kv.Key] = json.RawMessage(kv.Value.String())
		})
		writeJSON(w, http.StatusOK, stats)
		return
	}
	if s.coord != nil {
		cs := s.coord.Stats()
		_, depth, gens := s.coord.Health()
		stats := map[string]any{
			"uptime_seconds":     now.Sub(s.start).Seconds(),
			"stream_total":       cs.StreamTotal,
			"generations":        gens,
			"queue_depth":        depth,
			"cluster_shards":     len(cs.Shards),
			"cluster_healthy":    cs.Healthy,
			"cluster_degraded":   cs.Degraded,
			"cluster_edges_lost": cs.EdgesLost,
			"shards":             cs.Shards,
		}
		s.stats.vars.Do(func(kv expvar.KeyValue) {
			stats[kv.Key] = json.RawMessage(kv.Value.String())
		})
		writeJSON(w, http.StatusOK, stats)
		return
	}
	es := s.eng.Stats()
	stats := map[string]any{
		"uptime_seconds": now.Sub(s.start).Seconds(),
		"stream_total":   es.StreamTotal,
		"partitions":     es.Partitions,
		"memory_bytes":   es.MemoryBytes,
	}
	if es.Ingest != nil {
		stats["edges_applied"] = es.Ingest.EdgesApplied
		stats["batches_applied"] = es.Ingest.BatchesApplied
		stats["queue_depth"] = es.Ingest.QueueDepth
		stats["queue_cap"] = es.Ingest.QueueCap
		stats["inflight"] = es.Ingest.Inflight
		stats["pending_edges"] = es.Ingest.PendingEdges
		stats["sheds"] = es.Ingest.Sheds
	}
	if es.Workload != nil {
		stats["workload_seen"] = es.Workload.Seen
		stats["workload_sample"] = es.Workload.Sample
		stats["workload_capacity"] = es.Workload.Capacity
	}
	// Routing observability: per-partition hit counts and the outlier
	// share, split by direction — the raw signal adaptive repartitioning
	// watches.
	if es.ReadRoutes != nil && es.WriteRoutes != nil {
		stats["route_read_hits"] = es.ReadRoutes.Partitions
		stats["route_read_outlier"] = es.ReadRoutes.Outlier
		stats["route_read_outlier_share"] = es.ReadRoutes.OutlierShare()
		stats["route_write_hits"] = es.WriteRoutes.Partitions
		stats["route_write_outlier"] = es.WriteRoutes.Outlier
		stats["route_write_outlier_share"] = es.WriteRoutes.OutlierShare()
	}
	if es.Adapt != nil {
		stats["generations"] = es.Adapt.Generations
		stats["repartitions"] = es.Adapt.Repartitions
		stats["compactions"] = es.Adapt.Compactions
		stats["resident_generations"] = es.Adapt.ResidentGenerations
		stats["tiered_generations"] = es.Adapt.TieredGenerations
		stats["tiered_bytes"] = es.Adapt.TieredBytes
		stats["compacted_from"] = es.Adapt.CompactedFrom
		stats["drift_workload_divergence"] = es.Adapt.Drift.WorkloadDivergence
		stats["drift_outlier_share"] = es.Adapt.Drift.OutlierShare
		stats["adapt_data_sample"] = es.Adapt.Drift.DataSample
	}
	if !es.LastSnapshot.IsZero() {
		stats["snapshot_age_seconds"] = now.Sub(es.LastSnapshot).Seconds()
	} else {
		stats["snapshot_age_seconds"] = -1.0
	}
	s.stats.vars.Do(func(kv expvar.KeyValue) {
		stats[kv.Key] = json.RawMessage(kv.Value.String())
	})
	writeJSON(w, http.StatusOK, stats)
}
