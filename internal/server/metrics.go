package server

import (
	"strconv"
	"sync/atomic"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/cluster"
	"github.com/graphstream/gsketch/internal/obs"
	"github.com/graphstream/gsketch/internal/tenant"
	"github.com/graphstream/gsketch/internal/wire"
)

// serverMetrics holds the instruments resolved once at New: the hot
// paths (HTTP handlers, the wire pipeline) update them through direct
// pointers — no map lookups, no label formatting, no allocations.
type serverMetrics struct {
	reg *obs.Registry

	// httpLatency is keyed by mux route pattern, resolved at routes()
	// build time; handlers are wrapped once.
	httpLatency map[string]*obs.Histogram

	// wireDecode covers dec.Next + record decode per frame; wireApply
	// is indexed by request frame type (TypeIngest..TypeSnapRestore).
	wireDecode *obs.Histogram
	wireApply  [16]*obs.Histogram

	// swap observes adapt repartition build+rotate durations; compact
	// observes generation-fold durations (manual and policy-triggered).
	swap    *obs.Histogram
	compact *obs.Histogram
}

// wireTypeNames labels the wireApply children; only request types the
// server applies are registered.
var wireTypeNames = map[byte]string{
	wire.TypeIngest:       "ingest",
	wire.TypeQuery:        "query",
	wire.TypeFlush:        "flush",
	wire.TypePing:         "ping",
	wire.TypeSnapSave:     "snap_save",
	wire.TypeSnapRestore:  "snap_restore",
	wire.TypeTenantSelect: "tenant_select",
}

// newServerMetrics builds the registry skeleton shared by both
// backends: request counters (also exported through /stats), latency
// histograms and the uptime/readiness gauges. Backend-specific gauges
// are attached by registerEngineMetrics / registerClusterMetrics.
func (s *Server) newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:         reg,
		httpLatency: make(map[string]*obs.Histogram),
		wireDecode: reg.Histogram("gsketch_wire_frame_decode_duration_seconds",
			"Time parsing one wire frame payload into records (network wait excluded).", nil),
		swap: reg.Histogram("gsketch_adapt_swap_duration_seconds",
			"Build+rotate duration of adaptive repartition swaps.", nil),
		compact: reg.Histogram("gsketch_compact_duration_seconds",
			"Generation-fold duration of chain compactions.", nil),
	}
	for typ, name := range wireTypeNames {
		m.wireApply[typ] = reg.Histogram("gsketch_wire_frame_apply_duration_seconds",
			"Time applying one decoded wire frame against the backend.", nil,
			obs.Label{Key: "type", Value: name})
	}
	reg.GaugeFunc("gsketch_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return s.cfg.Now().Sub(s.start).Seconds() })
	reg.GaugeFunc("gsketch_ready",
		"1 when /readyz would answer 200, 0 otherwise.",
		func() float64 {
			if s.ready() == nil {
				return 1
			}
			return 0
		})
	return m
}

// routeHistogram resolves (registering on first use) the per-route
// HTTP latency histogram for a mux pattern.
func (m *serverMetrics) routeHistogram(pattern string) *obs.Histogram {
	h, ok := m.httpLatency[pattern]
	if !ok {
		h = m.reg.Histogram("gsketch_http_request_duration_seconds",
			"HTTP request latency by route.", nil,
			obs.Label{Key: "route", Value: pattern})
		m.httpLatency[pattern] = h
	}
	return h
}

// registerEngineMetrics attaches the single-node gauges: one
// EngineStats snapshot per scrape (via the prepare hook) feeds every
// gauge func, so a scrape costs one Stats() call, not one per series.
func (s *Server) registerEngineMetrics(eng *gsketch.Engine) {
	reg := s.metrics.reg
	var snap atomic.Pointer[gsketch.EngineStats]
	snap.Store(&gsketch.EngineStats{})
	reg.AddPrepare(func() {
		st := eng.Stats()
		snap.Store(&st)
	})
	gauge := func(name, help string, f func(*gsketch.EngineStats) float64) {
		reg.GaugeFunc(name, help, func() float64 { return f(snap.Load()) })
	}
	gauge("gsketch_engine_stream_total", "Stream volume folded into the estimator.",
		func(st *gsketch.EngineStats) float64 { return float64(st.StreamTotal) })
	gauge("gsketch_engine_partitions", "Serving estimator partition count.",
		func(st *gsketch.EngineStats) float64 { return float64(st.Partitions) })
	gauge("gsketch_engine_memory_bytes", "Estimator counter footprint in bytes.",
		func(st *gsketch.EngineStats) float64 { return float64(st.MemoryBytes) })
	gauge("gsketch_engine_generations", "Sketch generations serving reads.",
		func(st *gsketch.EngineStats) float64 {
			if st.Adapt != nil {
				return float64(st.Adapt.Generations)
			}
			return 1
		})
	gauge("gsketch_ingest_queue_depth", "Batches waiting in the ingest queue.",
		func(st *gsketch.EngineStats) float64 {
			if st.Ingest == nil {
				return 0
			}
			return float64(st.Ingest.QueueDepth)
		})
	gauge("gsketch_ingest_queue_cap", "Ingest queue bound (shedding starts at capacity).",
		func(st *gsketch.EngineStats) float64 {
			if st.Ingest == nil {
				return 0
			}
			return float64(st.Ingest.QueueCap)
		})
	gauge("gsketch_ingest_pending_edges", "Edges buffered toward the next batch.",
		func(st *gsketch.EngineStats) float64 {
			if st.Ingest == nil {
				return 0
			}
			return float64(st.Ingest.PendingEdges)
		})
	reg.CounterFunc("gsketch_ingest_sheds_total",
		"Load-shedding events: non-blocking pushes refused on a full queue.",
		func() int64 {
			if st := snap.Load(); st.Ingest != nil {
				return st.Ingest.Sheds
			}
			return 0
		})
	gauge("gsketch_adapt_drift_workload_divergence", "Live-vs-baseline workload divergence.",
		func(st *gsketch.EngineStats) float64 {
			if st.Adapt == nil {
				return 0
			}
			return st.Adapt.Drift.WorkloadDivergence
		})
	gauge("gsketch_adapt_drift_outlier_share", "Outlier share of head reads since last swap.",
		func(st *gsketch.EngineStats) float64 {
			if st.Adapt == nil {
				return 0
			}
			return st.Adapt.Drift.OutlierShare
		})
	reg.CounterFunc("gsketch_adapt_repartitions_total",
		"Completed repartition swaps.",
		func() int64 {
			if st := snap.Load(); st.Adapt != nil {
				return st.Adapt.Repartitions
			}
			return 0
		})
	// Generation-lifecycle gauges: chain residency and disk tiering. They
	// read zero on non-adaptive engines, like the drift gauges above.
	gauge("gsketch_engine_generations_resident", "Generations with counters in RAM.",
		func(st *gsketch.EngineStats) float64 {
			if st.Adapt == nil {
				return 1
			}
			return float64(st.Adapt.ResidentGenerations)
		})
	gauge("gsketch_engine_generations_tiered", "Frozen generations with a disk-tier copy.",
		func(st *gsketch.EngineStats) float64 {
			if st.Adapt == nil {
				return 0
			}
			return float64(st.Adapt.TieredGenerations)
		})
	gauge("gsketch_engine_tiered_bytes", "Counter footprint spilled off RAM to the disk tier.",
		func(st *gsketch.EngineStats) float64 {
			if st.Adapt == nil {
				return 0
			}
			return float64(st.Adapt.TieredBytes)
		})
	reg.CounterFunc("gsketch_compactions_total",
		"Completed generation folds (manual, policy loop, cap pressure).",
		func() int64 {
			if st := snap.Load(); st.Adapt != nil {
				return st.Adapt.Compactions
			}
			return 0
		})
	// Feed the swap- and compact-duration histograms from the engine's
	// observer hooks, covering manual requests and background loops alike.
	eng.SetSwapObserver(s.metrics.swap.ObserveDuration)
	eng.SetCompactObserver(s.metrics.compact.ObserveDuration)
}

// registerTenantMetrics attaches the multi-tenant gauges: registry
// aggregates, one labeled series set per tenant (tenants come and go,
// so the per-tenant series are dynamic — GaugeSet/CounterSet produce
// the whole set from the scrape-time snapshot), and the lifecycle
// latency histograms fed by the registry's observer hooks. One
// RegistryStats+List snapshot per scrape feeds every series.
func (s *Server) registerTenantMetrics(tr *tenant.Registry) {
	reg := s.metrics.reg
	var stats atomic.Pointer[tenant.Stats]
	var infos atomic.Pointer[[]tenant.Info]
	stats.Store(&tenant.Stats{})
	infos.Store(&[]tenant.Info{})
	reg.AddPrepare(func() {
		st := tr.RegistryStats()
		stats.Store(&st)
		in := tr.List()
		infos.Store(&in)
	})
	reg.GaugeFunc("gsketch_tenants", "Registered tenants.",
		func() float64 { return float64(stats.Load().Tenants) })
	reg.GaugeFunc("gsketch_tenants_resident", "Tenants with a live engine.",
		func() float64 { return float64(stats.Load().Resident) })
	reg.CounterFunc("gsketch_tenant_evictions_total",
		"Cold tenants snapshotted to disk and closed under the LRU cap.",
		func() int64 { return stats.Load().Evictions })
	reg.CounterFunc("gsketch_tenant_reopens_total",
		"Evicted tenants reopened from snapshot on access.",
		func() int64 { return stats.Load().Reopens })

	tenantSet := func(f func(*tenant.Info) float64) func() []obs.SetSample {
		return func() []obs.SetSample {
			in := *infos.Load()
			out := make([]obs.SetSample, len(in))
			for i := range in {
				out[i] = obs.SetSample{
					Labels: []obs.Label{{Key: "tenant", Value: in[i].Name}},
					Value:  f(&in[i]),
				}
			}
			return out
		}
	}
	reg.GaugeSet("gsketch_tenant_resident", "1 when the tenant's engine is live, 0 while evicted.",
		tenantSet(func(in *tenant.Info) float64 {
			if in.Resident {
				return 1
			}
			return 0
		}))
	reg.GaugeSet("gsketch_tenant_stream_total", "Tenant stream volume (0 while evicted; state is on disk).",
		tenantSet(func(in *tenant.Info) float64 { return float64(in.StreamTotal) }))
	reg.CounterSet("gsketch_tenant_edges_accepted_total", "Edges accepted into the tenant's pipeline.",
		tenantSet(func(in *tenant.Info) float64 { return float64(in.EdgesAccepted) }))
	reg.CounterSet("gsketch_tenant_queries_total", "Edge queries answered for the tenant.",
		tenantSet(func(in *tenant.Info) float64 { return float64(in.Queries) }))
	reg.CounterSet("gsketch_tenant_rate_limited_total", "Ingests cut short by the tenant's token bucket.",
		tenantSet(func(in *tenant.Info) float64 { return float64(in.RateLimited) }))

	reopenHist := reg.Histogram("gsketch_tenant_reopen_duration_seconds",
		"Engine open-on-access latency for evicted tenants.", nil)
	evictHist := reg.Histogram("gsketch_tenant_evict_duration_seconds",
		"Snapshot-to-disk eviction latency.", nil)
	tr.AddObservers(reopenHist.ObserveDuration, evictHist.ObserveDuration)
}

// registerClusterMetrics attaches the coordinator gauges: cluster
// aggregates plus one labeled series set per shard (the topology is
// static, so the series are too). One Stats() snapshot per scrape
// feeds every series.
func (s *Server) registerClusterMetrics(coord *cluster.Coordinator) {
	reg := s.metrics.reg
	var snap atomic.Pointer[cluster.Stats]
	snap.Store(&cluster.Stats{})
	reg.AddPrepare(func() {
		st := coord.Stats()
		snap.Store(&st)
	})
	reg.GaugeFunc("gsketch_cluster_shards", "Configured shard count.",
		func() float64 { return float64(coord.NumShards()) })
	reg.GaugeFunc("gsketch_cluster_healthy", "Shards currently healthy.",
		func() float64 { return float64(snap.Load().Healthy) })
	reg.GaugeFunc("gsketch_cluster_degraded", "Shards currently degraded.",
		func() float64 { return float64(snap.Load().Degraded) })
	reg.GaugeFunc("gsketch_engine_stream_total", "Cluster-wide stream volume (summed shard pings).",
		func() float64 { return float64(snap.Load().StreamTotal) })
	reg.CounterFunc("gsketch_cluster_edges_lost_total",
		"Edges dropped because their owning shard died.",
		func() int64 { return snap.Load().EdgesLost })

	shardStat := func(i int, f func(*cluster.ShardStats) float64) func() float64 {
		return func() float64 {
			st := snap.Load()
			if i >= len(st.Shards) {
				return 0
			}
			return f(&st.Shards[i])
		}
	}
	for i, addr := range coord.Addrs() {
		labels := []obs.Label{
			{Key: "shard", Value: strconv.Itoa(i)},
			{Key: "addr", Value: addr},
		}
		reg.GaugeFunc("gsketch_shard_up", "1 when the shard is healthy.",
			shardStat(i, func(ss *cluster.ShardStats) float64 {
				if ss.Healthy {
					return 1
				}
				return 0
			}), labels...)
		reg.GaugeFunc("gsketch_shard_rtt_seconds", "Last probe round-trip time.",
			shardStat(i, func(ss *cluster.ShardStats) float64 { return ss.RTTMillis / 1e3 }), labels...)
		reg.GaugeFunc("gsketch_shard_stream_total", "Shard stream volume at last ping.",
			shardStat(i, func(ss *cluster.ShardStats) float64 { return float64(ss.StreamTotal) }), labels...)
		reg.GaugeFunc("gsketch_shard_queue_depth", "Shard ingest queue depth at last ping.",
			shardStat(i, func(ss *cluster.ShardStats) float64 { return float64(ss.QueueDepth) }), labels...)
		reg.GaugeFunc("gsketch_shard_pending_edges", "Edges queued coordinator-side, unacked.",
			shardStat(i, func(ss *cluster.ShardStats) float64 { return float64(ss.PendingEdges) }), labels...)
		counter := func(name, help string, f func(*cluster.ShardStats) int64) {
			reg.CounterFunc(name, help, func() int64 {
				st := snap.Load()
				if i >= len(st.Shards) {
					return 0
				}
				return f(&st.Shards[i])
			}, labels...)
		}
		counter("gsketch_shard_edges_sent_total", "Edges acked by the shard.",
			func(ss *cluster.ShardStats) int64 { return ss.EdgesSent })
		counter("gsketch_shard_edges_lost_total", "Edges dropped because the shard died.",
			func(ss *cluster.ShardStats) int64 { return ss.EdgesLost })
		counter("gsketch_shard_sheds_total", "Shard 429 rounds absorbed by the sender.",
			func(ss *cluster.ShardStats) int64 { return ss.Sheds })
		counter("gsketch_shard_batches_sent_total", "Batches fully delivered to the shard.",
			func(ss *cluster.ShardStats) int64 { return ss.BatchesSent })
		counter("gsketch_shard_queries_total", "Successful query round trips.",
			func(ss *cluster.ShardStats) int64 { return ss.Queries })
		counter("gsketch_shard_query_errors_total", "Failed query round trips.",
			func(ss *cluster.ShardStats) int64 { return ss.QueryErrors })
	}
}
