package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/graphstream/gsketch/internal/obs"
	"github.com/graphstream/gsketch/internal/wire"
)

// scrapeMetrics fetches and parses GET /metrics, failing the test on
// any exposition-format violation the parser can detect.
func scrapeMetrics(t *testing.T, baseURL string) []obs.Family {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	fams, err := obs.ParseFamilies(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return fams
}

func familyValue(t *testing.T, fams []obs.Family, name string) float64 {
	t.Helper()
	for _, f := range fams {
		if f.Name == name {
			if len(f.Samples) != 1 {
				t.Fatalf("%s has %d samples, want 1", name, len(f.Samples))
			}
			return f.Samples[0].Value
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestMetricsExposition drives the engine backend through HTTP and wire
// traffic and asserts GET /metrics renders parse-valid Prometheus text
// exposition whose counters agree with /stats and whose histograms saw
// the traffic.
func TestMetricsExposition(t *testing.T) {
	edges := testStream(3000, 21)
	_, ts := newTestServer(t, Config{Estimator: buildTestGSketch(t, edges[:1000])})

	if code, _ := postIngest(t, ts.URL, edges, true); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	qbody := `{"queries":[{"src":1,"dst":101},{"src":2,"dst":102}]}`
	qresp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(qbody))
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	// One wire-framed HTTP ingest so the wire decode histogram has data.
	frame := wire.AppendIngest(nil, edges[:64])
	wresp, err := http.Post(ts.URL+"/ingest?sync=1", wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()

	fams := scrapeMetrics(t, ts.URL)

	if got := familyValue(t, fams, "gsketch_ingest_requests_total"); got != 2 {
		t.Errorf("ingest_requests_total = %v, want 2", got)
	}
	if got := familyValue(t, fams, "gsketch_edges_accepted_total"); got != float64(len(edges)+64) {
		t.Errorf("edges_accepted_total = %v, want %d", got, len(edges)+64)
	}
	if got := familyValue(t, fams, "gsketch_queries_answered_total"); got != 2 {
		t.Errorf("queries_answered_total = %v, want 2", got)
	}
	if got := familyValue(t, fams, "gsketch_engine_stream_total"); got <= 0 {
		t.Errorf("engine_stream_total = %v, want > 0", got)
	}
	if got := familyValue(t, fams, "gsketch_ready"); got != 1 {
		t.Errorf("gsketch_ready = %v, want 1", got)
	}

	// Per-route HTTP latency: the ingest route saw both requests.
	h, err := obs.FindHistogram(fams, "gsketch_http_request_duration_seconds",
		map[string]string{"route": "POST /ingest"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Count != 2 {
		t.Errorf("ingest route histogram count = %d, want 2", h.Count)
	}
	// Wire decode latency saw the framed body.
	wd, err := obs.FindHistogram(fams, "gsketch_wire_frame_decode_duration_seconds", nil)
	if err != nil {
		t.Fatal(err)
	}
	if wd.Count != 1 {
		t.Errorf("wire decode histogram count = %d, want 1", wd.Count)
	}

	// /stats derives from the same registry: its counter keys must agree
	// with the exposition (and keep their PR-era names).
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	stats := string(raw)
	for key, want := range map[string]float64{
		"ingest_requests": 2,
		"edges_accepted":  float64(len(edges) + 64),
		"query_requests":  1,
		"wire_frames":     1,
	} {
		if !strings.Contains(stats, fmt.Sprintf("%q:%d", key, int64(want))) {
			t.Errorf("/stats missing %q:%d in %s", key, int64(want), stats)
		}
	}
}

// TestMetricsQuantilesBracketInjectedLatencies injects known durations
// straight into a registry histogram and asserts the scraped quantiles
// bracket them — the end-to-end path of the bench's server-side view.
func TestMetricsQuantilesBracketInjectedLatencies(t *testing.T) {
	srv, ts := newTestServer(t, Config{Estimator: buildTestGSketch(t, testStream(500, 3))})
	h := srv.Metrics().Histogram("test_injected_seconds", "injected", nil)
	for i := 0; i < 98; i++ {
		h.ObserveDuration(3 * time.Millisecond)
	}
	h.ObserveDuration(600 * time.Millisecond)
	h.ObserveDuration(700 * time.Millisecond)

	fams := scrapeMetrics(t, ts.URL)
	snap, err := obs.FindHistogram(fams, "test_injected_seconds", nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 100 {
		t.Fatalf("scraped count = %d, want 100", snap.Count)
	}
	if p50 := snap.Quantile(0.50); p50 < 0.0025 || p50 > 0.005 {
		t.Errorf("p50 = %v, want within (0.0025, 0.005]", p50)
	}
	if p99 := snap.Quantile(0.99); p99 < 0.5 || p99 > 1.0 {
		t.Errorf("p99 = %v, want within (0.5, 1.0]", p99)
	}
}

// TestReadyzFlipsDuringRestore streams a snapshot restore body through
// a pipe, holding the swap window open: /readyz must answer 503 while
// the restore is in flight and 200 again after it lands, while
// /healthz stays 200 throughout (alive ≠ ready).
func TestReadyzFlipsDuringRestore(t *testing.T) {
	srv, ts := newTestServer(t, Config{Estimator: buildTestGSketch(t, testStream(2000, 7))})

	getCode := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := getCode("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before restore: %d", code)
	}

	var snap bytes.Buffer
	if _, err := srv.Engine().Save(&snap); err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	restored := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/snapshot/restore", "application/octet-stream", pr)
		if err != nil {
			restored <- -1
			return
		}
		resp.Body.Close()
		restored <- resp.StatusCode
	}()

	// The server is blocked reading the body inside the swap window.
	deadline := time.Now().Add(5 * time.Second)
	for getCode("/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during restore")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := getCode("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during restore: %d, want 200", code)
	}

	if _, err := pw.Write(snap.Bytes()); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if code := <-restored; code != http.StatusOK {
		t.Fatalf("restore: %d", code)
	}
	if code := getCode("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after restore: %d", code)
	}
}

// TestInstrumentedWireConnAllocs guards the TCP wire pipeline the same
// way alloc_test guards the HTTP path: per-frame instrumentation (two
// histograms + byte counters) must not add allocations.
func TestWireHistogramObserveIsAllocFree(t *testing.T) {
	srv, _ := newTestServer(t, Config{Estimator: buildTestGSketch(t, testStream(500, 5))})
	start := time.Now()
	if n := testing.AllocsPerRun(500, func() {
		srv.metrics.wireDecode.ObserveSince(start)
		srv.metrics.wireApply[wire.TypeIngest].ObserveSince(start)
		srv.stats.wireBytesIn.Add(64)
	}); n != 0 {
		t.Fatalf("wire instrumentation allocates %v per frame, want 0", n)
	}
}
