package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
)

// Wire types of the HTTP/JSON API.

// edgeJSON is one NDJSON ingest line: {"src":1,"dst":2,"weight":3,"time":4}.
// Weight and time are optional (weight 0 counts as 1, the paper's default).
type edgeJSON struct {
	Src    uint64 `json:"src"`
	Dst    uint64 `json:"dst"`
	Weight int64  `json:"weight,omitempty"`
	Time   int64  `json:"time,omitempty"`
}

// queryJSON is one edge query of a /query batch.
type queryJSON struct {
	Src uint64 `json:"src"`
	Dst uint64 `json:"dst"`
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Queries []queryJSON `json:"queries"`
	// Sync flushes the ingest pipeline before answering, giving
	// read-your-writes over everything already accepted by /ingest.
	Sync bool `json:"sync,omitempty"`
}

// resultJSON is one bound-carrying answer: the batched read path's Result
// plus the echoed query endpoints.
type resultJSON struct {
	Src         uint64  `json:"src"`
	Dst         uint64  `json:"dst"`
	Estimate    int64   `json:"estimate"`
	Partition   int     `json:"partition"`
	Outlier     bool    `json:"outlier,omitempty"`
	ErrorBound  float64 `json:"error_bound"`
	Confidence  float64 `json:"confidence"`
	StreamTotal int64   `json:"stream_total"`
}

// queryResponse is the POST /query reply.
type queryResponse struct {
	Results []resultJSON `json:"results"`
}

// windowQueryRequest is the POST /query/window body: a query batch over
// the inclusive time range [t1, t2].
type windowQueryRequest struct {
	Queries []queryJSON `json:"queries"`
	T1      int64       `json:"t1"`
	T2      int64       `json:"t2"`
}

// windowQueryResponse carries the fractional-overlap window estimates in
// input order.
type windowQueryResponse struct {
	Values []float64 `json:"values"`
}

// ingestResponse is the POST /ingest reply. Rejected > 0 comes with HTTP
// 429: the pipeline shed load and the client should retry the rejected
// suffix after a backoff.
type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected,omitempty"`
	Error    string `json:"error,omitempty"`
	Code     string `json:"code,omitempty"`
}

// snapshotRequest parameterizes POST /snapshot/save and /snapshot/restore.
type snapshotRequest struct {
	Path string `json:"path,omitempty"`
}

// maxNDJSONLine bounds one ingest line; far beyond any honest edge record.
const maxNDJSONLine = 1 << 16

// decodeEdgesNDJSON parses newline-delimited JSON edges, appending to dst
// (normally a pooled buffer). Blank lines are skipped. The whole body is
// parsed before anything is returned, so a syntax error rejects the
// request without a partial ingest. The scanner runs over a pooled buffer
// sized to the line bound, so a warm server allocates no parse buffers
// per request.
func decodeEdgesNDJSON(r io.Reader, dst []stream.Edge) ([]stream.Edge, error) {
	sc := bufio.NewScanner(r)
	sb := getScanBuf()
	defer putScanBuf(sb)
	sc.Buffer(*sb, maxNDJSONLine)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e edgeJSON
		if err := json.Unmarshal(raw, &e); err != nil {
			return dst, fmt.Errorf("line %d: %w", line, err)
		}
		dst = append(dst, stream.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight, Time: e.Time})
	}
	if err := sc.Err(); err != nil {
		return dst, fmt.Errorf("line %d: %w", line+1, err)
	}
	return dst, nil
}

// appendEdgeQueries converts JSON queries to the batched read path's
// unit, appending to dst (normally a pooled buffer).
func appendEdgeQueries(dst []core.EdgeQuery, qs []queryJSON) []core.EdgeQuery {
	for _, q := range qs {
		dst = append(dst, core.EdgeQuery{Src: q.Src, Dst: q.Dst})
	}
	return dst
}
