package server

import (
	"net/http"
	"testing"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/vstats"
)

// TestRecorderCapBound checks the reservoir invariant: sample size never
// exceeds capacity while seen keeps counting.
func TestRecorderCapBound(t *testing.T) {
	r := NewRecorder(64, 1, nil)
	qs := make([]core.EdgeQuery, 1000)
	for i := range qs {
		qs[i] = core.EdgeQuery{Src: uint64(i % 10), Dst: uint64(i)}
	}
	r.Record(qs)
	if got := len(r.Sample()); got != 64 {
		t.Fatalf("sample size %d, want 64", got)
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen %d, want 1000", r.Seen())
	}
}

// TestWorkloadCaptureClosesTheLoop is the sample-collection loop end to
// end: queries served over HTTP land in the reservoir, GET /workload
// exports them in the text edge format, and that exact payload feeds
// back into BuildGSketch as the workload sample that flips partitioning to
// the §4.2 workload-aware objective.
func TestWorkloadCaptureClosesTheLoop(t *testing.T) {
	edges := testStream(20_000, 23)
	_, ts := newTestServer(t, Config{
		Estimator:          buildTestGSketch(t, edges[:3000]),
		WorkloadSampleSize: 512,
		WorkloadSeed:       9,
	})

	// Serve a skewed workload: vertex edges[0].Src is queried far more
	// often than anything else.
	var qs []core.EdgeQuery
	for i := 0; i < 900; i++ {
		qs = append(qs, core.EdgeQuery{Src: edges[0].Src, Dst: edges[i%50].Dst})
	}
	for i := 0; i < 100; i++ {
		qs = append(qs, core.EdgeQuery{Src: edges[i].Src, Dst: edges[i].Dst})
	}
	queryBatch(t, ts.URL, qs)

	// Export the live sample.
	resp, err := http.Get(ts.URL + "/workload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workload: status %d", resp.StatusCode)
	}
	workload, err := stream.ReadTextEdges(resp.Body)
	if err != nil {
		t.Fatalf("exported workload does not parse as an edge file: %v", err)
	}
	if len(workload) == 0 || len(workload) > 512 {
		t.Fatalf("workload sample size %d out of bounds", len(workload))
	}
	// Uniform sampling over a 9:1 skew: the hot vertex must dominate.
	hot := 0
	for _, e := range workload {
		if e.Src == edges[0].Src {
			hot++
		}
	}
	if hot*2 < len(workload) {
		t.Fatalf("hot vertex only in %d/%d sampled queries", hot, len(workload))
	}

	// Feed the recorded sample back into an offline rebuild: partitioning
	// must pick the workload-aware objective.
	g, err := core.BuildGSketch(testSketchConfig(), edges[:3000], workload)
	if err != nil {
		t.Fatalf("rebuild from recorded workload: %v", err)
	}
	if g.Order() != vstats.ByFreqPerWeight {
		t.Fatalf("rebuild ignored the workload sample (order %v)", g.Order())
	}
}

// TestWorkloadDisabled checks that a negative capacity disables recording
// and unmounts the endpoint.
func TestWorkloadDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Estimator:          buildTestGSketch(t, testStream(1000, 29)),
		WorkloadSampleSize: -1,
	})
	resp, err := http.Get(ts.URL + "/workload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("workload endpoint mounted while disabled: %d", resp.StatusCode)
	}
	// Queries still serve fine without a recorder.
	queryBatch(t, ts.URL, []core.EdgeQuery{{Src: 1, Dst: 2}})
}
