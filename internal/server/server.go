// Package server is the serving subsystem: it wires the batch-ingest
// pipeline (ingest.Ingestor) and the striped-lock estimator
// (core.Concurrent) behind an HTTP/JSON API, owning the whole runtime
// lifecycle — backpressure, snapshot persistence, live workload capture and
// graceful drain-then-stop shutdown.
//
// Endpoints:
//
//	POST /ingest           NDJSON edge batch; 429 + typed JSON when the
//	                       pipeline sheds load (queue full)
//	POST /query            batched edge queries; estimates + error bounds +
//	                       confidence from the bound-carrying read path
//	POST /query/window     batched time-range queries (when a window store
//	                       is configured)
//	GET  /snapshot         stream the current sketch state (consistent
//	                       striped-read-lock snapshot)
//	POST /snapshot/save    persist a snapshot to disk (atomic rename)
//	POST /snapshot/restore swap in a snapshot from disk or request body
//	                       (409 while a window store is mounted — snapshots
//	                       carry no window state)
//	GET  /workload         the recorded query-workload sample, in the text
//	                       edge format BuildGSketch accepts
//	POST /repartition      rebuild the partitioning from live samples and
//	                       hot-swap it in as a new sketch generation (when
//	                       the estimator is an adapt.Chain)
//	GET  /healthz          liveness
//	GET  /stats            expvar counters + live gauges
//
// The server is embeddable: New + Handler slot into any http.Server or
// test harness; ListenAndServe/Serve + Shutdown run it standalone.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphstream/gsketch/internal/adapt"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/window"
)

// Config parameterizes a Server.
type Config struct {
	// Estimator is the estimator to serve (required). A *core.Concurrent is
	// used as-is; anything else is wrapped in one, so handlers always go
	// through the striped locks.
	Estimator core.Estimator
	// Ingest parameterizes the batch pipeline between POST /ingest and the
	// estimator. The zero value selects the ingest package defaults.
	Ingest ingest.Config
	// SnapshotPath is the default target of POST /snapshot/save and the
	// default source of POST /snapshot/restore.
	SnapshotPath string
	// SnapshotOnShutdown saves a final snapshot to SnapshotPath during
	// Shutdown, after the ingest queue drains.
	SnapshotOnShutdown bool
	// WorkloadSampleSize is the reservoir capacity of the live workload
	// recorder (default 4096; negative disables recording).
	WorkloadSampleSize int
	// WorkloadSeed makes the workload reservoir deterministic.
	WorkloadSeed uint64
	// Window optionally mounts POST /query/window over a windowed store.
	// Ingested edges are observed by the store synchronously in the ingest
	// handler (the store is not safe for concurrent use; the server
	// serializes access).
	Window *window.Store
	// Adapt configures the adaptive repartitioning manager, which is
	// mounted (with POST /repartition and the drift gauges in /stats)
	// whenever Estimator is an *adapt.Chain. Rebuilt generations use
	// Adapt.Sketch; the zero value leaves every threshold at the adapt
	// package defaults but makes rebuilds impossible (an invalid sketch
	// config), so set Adapt.Sketch when serving a chain.
	Adapt adapt.ManagerConfig
	// AdaptInterval enables the auto-trigger loop: drift is evaluated every
	// interval and a rebuild + hot swap fires when a threshold is crossed.
	// 0 leaves repartitioning on-demand only (POST /repartition).
	AdaptInterval time.Duration
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// FlushTimeout bounds the wait of sync requests (?sync=1 ingests and
	// {"sync":true} queries) on the pipeline drain, which under sustained
	// ingest traffic may not quiesce (default 30s).
	FlushTimeout time.Duration
	// Now overrides the clock, for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.WorkloadSampleSize == 0 {
		c.WorkloadSampleSize = 4096
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.FlushTimeout == 0 {
		c.FlushTimeout = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// serveEstimator is what the handlers need from the serving estimator:
// the batched estimator surface, a consistent snapshot, and the shard
// gauge. Both *core.Concurrent and *adapt.Chain satisfy it.
type serveEstimator interface {
	core.Estimator
	io.WriterTo
	NumShards() int
}

// engine is the swappable serving state: the estimator and the pipeline
// feeding it. Snapshot restore builds a fresh engine and swaps it in.
type engine struct {
	est serveEstimator
	ing *ingest.Ingestor
	// chain is non-nil when est is an adaptive generation chain; the
	// repartitioning manager acts on it.
	chain *adapt.Chain
}

// Server is the serving runtime. Create with New; all exported methods are
// safe for concurrent use.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	stats *counters
	rec   *Recorder      // nil when recording is disabled
	mgr   *adapt.Manager // nil when the estimator is not a chain

	mu  sync.RWMutex // guards eng swap (snapshot restore)
	eng *engine

	autoStop chan struct{} // stops the auto-repartition loop; nil when off

	winMu sync.Mutex // serializes window-store access

	// httpSrv is created in New (not lazily in Serve) so a Shutdown racing
	// startup still stops the listener: http.Server.Shutdown before Serve
	// makes the later Serve return ErrServerClosed immediately.
	httpSrv *http.Server

	start     time.Time
	snapNanos atomic.Int64 // unix nanos of the last snapshot save/restore
	closing   atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// New builds a server around an estimator. The server owns the ingest
// pipeline it creates; callers must not push to the estimator directly
// while the server runs.
func New(cfg Config) (*Server, error) {
	if cfg.Estimator == nil {
		return nil, errors.New("server: nil estimator")
	}
	cfg = cfg.withDefaults()
	eng, err := newEngine(cfg.Estimator, cfg.Ingest)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		stats: newCounters(),
		eng:   eng,
		start: cfg.Now(),
	}
	if cfg.WorkloadSampleSize > 0 {
		now := func() int64 { return s.cfg.Now().Unix() }
		s.rec = NewRecorder(cfg.WorkloadSampleSize, cfg.WorkloadSeed, now)
	}
	if eng.chain != nil {
		// The manager reads the live workload straight from the recorder
		// reservoir — the record → rebuild → swap loop closed in-process.
		s.mgr = adapt.NewManager(eng.chain, s.recordedWorkload, cfg.Adapt)
		if cfg.AdaptInterval > 0 {
			s.autoStop = make(chan struct{})
			go s.mgr.Run(cfg.AdaptInterval, s.autoStop, nil)
		}
	}
	s.mux = s.routes()
	s.httpSrv = &http.Server{
		Handler: s.mux,
		// Slow-loris hygiene; response writes stay unbounded because
		// /snapshot streams an arbitrarily large sketch.
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

func newEngine(est core.Estimator, icfg ingest.Config) (*engine, error) {
	var se serveEstimator
	var chain *adapt.Chain
	switch v := est.(type) {
	case *adapt.Chain:
		// The chain owns its own synchronization (a Concurrent per
		// generation); wrapping it again would serialize every reader and
		// writer behind one mutex.
		se, chain = v, v
	case *core.Concurrent:
		se = v
	default:
		se = core.NewConcurrent(est)
	}
	ing, err := ingest.New(se, icfg)
	if err != nil {
		return nil, err
	}
	return &engine{est: se, ing: ing, chain: chain}, nil
}

// recordedWorkload is the manager's live workload source: the recorder's
// current reservoir sample, or nil when recording is disabled.
func (s *Server) recordedWorkload() []stream.Edge {
	if s.rec == nil {
		return nil
	}
	return s.rec.Sample()
}

// engine returns the current serving state under the read lock.
func (s *Server) engine() *engine {
	s.mu.RLock()
	e := s.eng
	s.mu.RUnlock()
	return e
}

// Handler returns the server's HTTP handler, for embedding in an existing
// http.Server or test harness.
func (s *Server) Handler() http.Handler { return s.mux }

// Vars returns the expvar counter map, for callers that want to publish it
// on the process-global /debug/vars.
func (s *Server) Vars() *expvar.Map { return s.stats.vars }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains and stops the server gracefully: mark unhealthy, stop
// the listener (waiting for in-flight handlers), drain the ingest queue via
// Close so every accepted edge is applied, then optionally persist a final
// snapshot. Safe to call multiple times; later calls return the first
// result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		if s.autoStop != nil {
			close(s.autoStop)
		}
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			s.closeErr = err
			// Fall through: the ingest queue still drains below.
		}
		eng := s.engine()
		if err := eng.ing.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
		if s.cfg.SnapshotOnShutdown && s.cfg.SnapshotPath != "" {
			if _, err := s.saveSnapshot(s.cfg.SnapshotPath); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// Close is Shutdown without a deadline.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

// saveSnapshot writes a consistent snapshot to path via tmp-file + rename,
// so a crash mid-save never clobbers the previous snapshot. It flushes the
// ingest pipeline first: the snapshot covers every edge accepted by
// /ingest before the save began.
func (s *Server) saveSnapshot(path string) (int64, error) {
	eng := s.engine()
	if err := eng.ing.Flush(); err != nil && !errors.Is(err, ingest.ErrClosed) {
		return 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gsketch-snap-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	n, err := eng.est.WriteTo(tmp)
	if err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Close(); err != nil {
		return n, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return n, err
	}
	s.snapNanos.Store(s.cfg.Now().UnixNano())
	s.stats.snapshotsSaved.Add(1)
	return n, nil
}

// restoreSnapshot swaps in a restored estimator as the serving state: a
// fresh ingest pipeline is built around it, the swap happens under the
// engine write lock (which the ingest handler holds shared across its push,
// so no edge is 200-acked into a pipeline that is already displaced), and
// the old pipeline is closed afterwards. Restore deliberately replaces the
// live state: edges accepted after the snapshot being restored was taken
// are discarded with it.
//
// The snapshot carries one or more sketch generations (core.ReadChain
// loads both pre-chain and chain containers). A server serving an adaptive
// chain restores any snapshot as a chain — the repartitioning manager is
// rebound to it with the current recorded workload as the new drift
// baseline. A non-adaptive server refuses multi-generation snapshots: it
// has no chain to answer them soundly from.
func (s *Server) restoreSnapshot(gens []*core.GSketch) (*engine, error) {
	s.mu.RLock()
	cur := s.eng
	s.mu.RUnlock()

	var est core.Estimator
	var chain *adapt.Chain
	if cur.chain != nil {
		chain = adapt.NewChainFrom(gens, cur.chain.Config())
		est = chain
	} else {
		if len(gens) != 1 {
			return nil, fmt.Errorf("%w: snapshot carries %d generations", errNotAdaptive, len(gens))
		}
		est = core.NewConcurrent(gens[0])
	}
	neu, err := newEngine(est, s.cfg.Ingest)
	if err != nil {
		return nil, err
	}
	var old *engine
	swap := func() {
		s.mu.Lock()
		old = s.eng
		s.eng = neu
		s.mu.Unlock()
	}
	if s.mgr != nil && chain != nil {
		// The engine flip runs inside the manager's rebuild lock: an
		// in-flight drift check or repartition finishes against the old
		// chain while it is still serving, and none can start against a
		// displaced one.
		s.mgr.Rebind(chain, s.recordedWorkload(), swap)
	} else {
		swap()
	}
	if err := old.ing.Close(); err != nil {
		return neu, fmt.Errorf("server: draining displaced pipeline: %w", err)
	}
	s.snapNanos.Store(s.cfg.Now().UnixNano())
	s.stats.snapshotsRestored.Add(1)
	return neu, nil
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errNotAdaptive reports a restore of a multi-generation chain snapshot
// against a server without a chain to answer it soundly from — a request
// condition (restart with -adapt), not a server fault.
var errNotAdaptive = errors.New("server is not adaptive; restart with a chain (-adapt) to serve this snapshot")

// errorJSON is the error envelope of non-2xx replies.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}
