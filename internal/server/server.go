// Package server is the HTTP serving subsystem: a thin frontend over
// gsketch.Engine — the one-handle facade owning the estimator, the batch
// ingest pipeline, snapshot persistence, live workload capture and
// adaptive repartitioning. The server contributes the wire protocol,
// request hygiene, HTTP error mapping and expvar counters; every stateful
// concern lives in the engine.
//
// Endpoints:
//
//	POST /ingest           NDJSON edge batch; 429 + typed JSON when the
//	                       pipeline sheds load (queue full)
//	POST /query            batched edge queries; estimates + error bounds +
//	                       confidence from the bound-carrying read path
//	POST /query/window     batched time-range queries (when a window store
//	                       is configured)
//	GET  /snapshot         stream the current sketch state (consistent
//	                       striped-read-lock snapshot)
//	POST /snapshot/save    persist a snapshot to disk (atomic rename)
//	POST /snapshot/restore swap in a snapshot from disk or request body
//	                       (409 while a window store is mounted — snapshots
//	                       carry no window state)
//	GET  /workload         the recorded query-workload sample, in the text
//	                       edge format BuildGSketch accepts
//	POST /repartition      rebuild the partitioning from live samples and
//	                       hot-swap it in as a new sketch generation (when
//	                       the engine is adaptive)
//	GET  /healthz          liveness (alive and not shutting down)
//	GET  /readyz           readiness: 503 during snapshot restores and
//	                       repartition swaps, and when a cluster
//	                       coordinator has zero healthy shards
//	GET  /metrics          Prometheus text exposition: request counters,
//	                       per-route and wire-frame latency histograms,
//	                       engine/cluster gauges
//	GET  /stats            JSON counters + live engine gauges (the same
//	                       registry /metrics renders)
//
// The server is embeddable: New + Handler slot into any http.Server or
// test harness; ListenAndServe/Serve + Shutdown run it standalone.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/adapt"
	"github.com/graphstream/gsketch/internal/cluster"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/obs"
	"github.com/graphstream/gsketch/internal/tenant"
	"github.com/graphstream/gsketch/internal/window"
)

// Config parameterizes a Server.
type Config struct {
	// Engine is the serving engine, constructed with gsketch.Open. When
	// nil (and Cluster is nil), the deprecated wiring fields below are
	// assembled into one — the pre-Engine construction path, kept so
	// embedders keep compiling.
	Engine *gsketch.Engine

	// Cluster serves a shard topology instead of a local engine: the
	// coordinator fronts N remote engines behind the same HTTP+wire
	// surface, so clients cannot tell one node from a cluster. Mutually
	// exclusive with Engine and the deprecated estimator wiring.
	// Engine-only endpoints (/workload, /query/window, /repartition,
	// GET /snapshot streaming) are not mounted.
	Cluster *cluster.Coordinator

	// Tenants serves a multi-tenant registry instead of a single backend:
	// the data path moves under /t/{tenant}/... (plus the wire protocol's
	// tenant-select frame) and the admin API (PUT|DELETE|GET /t/{tenant},
	// GET /t) mounts beside it. Mutually exclusive with Engine, Cluster
	// and the deprecated estimator wiring. The server owns the registry
	// lifecycle: Shutdown snapshots every resident tenant and closes it.
	Tenants *tenant.Registry

	// Estimator is the estimator to serve. A *core.Concurrent or
	// *adapt.Chain is used as-is; anything else is wrapped so handlers
	// always go through the striped locks.
	//
	// Deprecated: build an Engine with gsketch.Open(cfg,
	// gsketch.WithEstimator(est), ...) and set Engine instead.
	Estimator core.Estimator
	// Ingest parameterizes the batch pipeline between POST /ingest and the
	// estimator. The zero value selects the ingest package defaults.
	//
	// Deprecated: gsketch.WithIngest.
	Ingest ingest.Config
	// SnapshotPath is the default target of POST /snapshot/save and the
	// default source of POST /snapshot/restore.
	//
	// Deprecated: gsketch.WithSnapshotFile / gsketch.WithSnapshotDir.
	SnapshotPath string
	// SnapshotOnShutdown saves a final snapshot to the snapshot path
	// during Shutdown, after the adaptive loop stops and the ingest queue
	// drains.
	SnapshotOnShutdown bool
	// WorkloadSampleSize is the reservoir capacity of the live workload
	// recorder (default 4096; negative disables recording).
	//
	// Deprecated: gsketch.WithWorkloadRecorder.
	WorkloadSampleSize int
	// WorkloadSeed makes the workload reservoir deterministic.
	WorkloadSeed uint64
	// Window optionally mounts POST /query/window over a windowed store.
	//
	// Deprecated: gsketch.WithWindows / gsketch.WithWindowStore.
	Window *window.Store
	// Adapt configures the adaptive repartitioning manager, applied when
	// Estimator is an *adapt.Chain.
	//
	// Deprecated: gsketch.WithAdaptive.
	Adapt adapt.ManagerConfig
	// AdaptInterval enables the drift auto-trigger loop.
	//
	// Deprecated: gsketch.WithAutoRepartition.
	AdaptInterval time.Duration

	// Logger receives the server's structured lifecycle events (slog).
	// Nil discards them; gsketch-serve passes its -log-level/-log-format
	// configured logger.
	Logger *slog.Logger

	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// FlushTimeout bounds the wait of sync requests (?sync=1 ingests and
	// {"sync":true} queries) on the pipeline drain, which under sustained
	// ingest traffic may not quiesce (default 30s).
	FlushTimeout time.Duration
	// Now overrides the clock, for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.WorkloadSampleSize == 0 {
		c.WorkloadSampleSize = 4096
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.FlushTimeout == 0 {
		c.FlushTimeout = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// buildEngine assembles an Engine from the deprecated wiring fields — the
// legacy construction path, expressed as one gsketch.Open call.
func (c Config) buildEngine() (*gsketch.Engine, error) {
	if c.Estimator == nil {
		return nil, errors.New("server: nil estimator (set Config.Engine or Config.Estimator)")
	}
	opts := []gsketch.Option{
		gsketch.WithEstimator(c.Estimator),
		gsketch.WithIngest(c.Ingest),
		gsketch.WithClock(c.Now),
	}
	if c.WorkloadSampleSize > 0 {
		opts = append(opts, gsketch.WithWorkloadRecorder(c.WorkloadSampleSize, c.WorkloadSeed))
	}
	if c.Window != nil {
		opts = append(opts, gsketch.WithWindowStore(c.Window))
	}
	if chain, ok := c.Estimator.(*adapt.Chain); ok {
		opts = append(opts, gsketch.WithAdaptive(chain.Config(), c.Adapt))
		if c.AdaptInterval > 0 {
			opts = append(opts, gsketch.WithAutoRepartition(c.AdaptInterval, nil))
		}
	}
	if c.SnapshotPath != "" {
		opts = append(opts, gsketch.WithSnapshotFile(c.SnapshotPath))
	}
	// The sketch config only steers estimator construction, which
	// WithEstimator bypasses — adaptive rebuild configs come in through
	// Config.Adapt.Sketch (a zero value keeps rebuilds impossible, as the
	// pre-Engine server documented).
	return gsketch.Open(gsketch.Config{}, opts...)
}

// Server is the serving runtime. Create with New; all exported methods are
// safe for concurrent use.
type Server struct {
	cfg Config
	// be is the serving surface shared by every endpoint. eng is non-nil
	// only for engine backends (engine-only routes key off it); coord is
	// non-nil only in cluster mode.
	be      Backend
	eng     *gsketch.Engine
	coord   *cluster.Coordinator
	tenants *tenant.Registry
	mux     *http.ServeMux
	stats   *counters
	metrics *serverMetrics
	log     *slog.Logger

	// notReady counts in-flight state swaps (snapshot restores,
	// repartitions): /readyz answers 503 while it is non-zero, so a load
	// balancer routes around the latency cliff of a swap in progress.
	notReady atomic.Int32

	// httpSrv is created in New (not lazily in Serve) so a Shutdown racing
	// startup still stops the listener: http.Server.Shutdown before Serve
	// makes the later Serve return ErrServerClosed immediately.
	httpSrv *http.Server

	// Wire-protocol listeners and connections (ServeWire), closed during
	// Shutdown.
	wireMu    sync.Mutex
	wireLns   map[net.Listener]struct{}
	wireConns map[net.Conn]struct{}
	wireWg    sync.WaitGroup

	start     time.Time
	closing   atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// New builds a server around an engine (or, on the deprecated path, an
// estimator). The server owns the engine lifecycle: Shutdown stops the
// adaptive loop, drains the pipeline and optionally persists a final
// snapshot. Callers must not push to the estimator directly while the
// server runs.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		log:       cfg.Logger.With("component", "server"),
		start:     cfg.Now(),
		wireLns:   make(map[net.Listener]struct{}),
		wireConns: make(map[net.Conn]struct{}),
	}
	s.metrics = s.newServerMetrics()
	s.stats = newCounters(s.metrics.reg)
	if cfg.Tenants != nil {
		if cfg.Engine != nil || cfg.Cluster != nil || cfg.Estimator != nil {
			return nil, errors.New("server: Config.Tenants is mutually exclusive with Engine/Cluster/Estimator")
		}
		// No process-wide backend: every request resolves its tenant's
		// handle (s.backend), and wire connections bind one per session.
		s.tenants = cfg.Tenants
		s.registerTenantMetrics(cfg.Tenants)
	} else if cfg.Cluster != nil {
		if cfg.Engine != nil || cfg.Estimator != nil {
			return nil, errors.New("server: Config.Cluster is mutually exclusive with Engine/Estimator")
		}
		s.coord = cfg.Cluster
		s.be = cfg.Cluster
		s.registerClusterMetrics(cfg.Cluster)
	} else {
		eng := cfg.Engine
		if eng == nil {
			var err error
			eng, err = cfg.buildEngine()
			if err != nil {
				return nil, err
			}
		}
		s.eng = eng
		s.be = engineBackend{eng: eng}
		s.registerEngineMetrics(eng)
	}
	s.mux = s.routes()
	s.httpSrv = &http.Server{
		Handler: s.mux,
		// Slow-loris hygiene; response writes stay unbounded because
		// /snapshot streams an arbitrarily large sketch.
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

// Engine returns the serving engine, for embedders that want the
// programmatic surface next to the HTTP one. It is nil in cluster mode.
func (s *Server) Engine() *gsketch.Engine { return s.eng }

// Cluster returns the cluster coordinator, or nil for an engine backend.
func (s *Server) Cluster() *cluster.Coordinator { return s.coord }

// Handler returns the server's HTTP handler, for embedding in an existing
// http.Server or test harness.
func (s *Server) Handler() http.Handler { return s.mux }

// Vars returns the expvar counter map, for callers that want to publish it
// on the process-global /debug/vars.
func (s *Server) Vars() *expvar.Map { return s.stats.vars }

// Metrics returns the server's metrics registry — the source of
// GET /metrics — for embedders that want to add their own instruments
// or mount the exposition handler elsewhere.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// ready reports why the server cannot take traffic right now, or nil
// when it can — the /readyz condition. Liveness (/healthz) only checks
// the process is up and not shutting down; readiness additionally
// fails during state swaps and when a cluster has no healthy shard
// left to answer from.
func (s *Server) ready() error {
	if s.closing.Load() {
		return errors.New("shutting down")
	}
	if s.notReady.Load() > 0 {
		return errors.New("state swap in progress")
	}
	if s.coord != nil {
		if st := s.coord.Stats(); st.Healthy == 0 {
			return fmt.Errorf("no healthy shards (%d configured)", len(st.Shards))
		}
	}
	return nil
}

// beginSwap marks a state swap (snapshot restore, repartition) in
// flight for /readyz; the returned func ends it.
func (s *Server) beginSwap() func() {
	s.notReady.Add(1)
	return func() { s.notReady.Add(-1) }
}

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains and stops the server gracefully: mark unhealthy, stop
// the listener (waiting for in-flight handlers), close the engine — which
// stops the adaptive auto-trigger loop first and then drains the ingest
// queue, so no rebuild can race what follows — and finally persist a
// snapshot when configured. Safe to call multiple times; later calls
// return the first result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		s.log.Info("shutdown started")
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			s.closeErr = err
			// Fall through: the engine still drains below.
		}
		// Wire connections are long-lived streams with no request
		// boundary to wait for: stop the listeners and cut the
		// connections. Edges already accepted by the pipeline drain in
		// the backend Close below.
		s.closeWire()
		// A cluster snapshot must fan out before Close severs the shard
		// connections; an engine saves after Close (the closed engine's
		// read path still serializes, and the close drain guarantees the
		// snapshot covers every accepted edge).
		if s.tenants != nil {
			// Registry close snapshots every resident tenant to its own
			// directory; SnapshotOnShutdown adds nothing on top.
			if err := s.tenants.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		} else {
			saveFinal := func() {
				if !s.cfg.SnapshotOnShutdown || s.be.SnapshotPath() == "" {
					return
				}
				if _, err := s.be.SaveSnapshot(""); err != nil {
					if s.closeErr == nil {
						s.closeErr = err
					}
				} else {
					s.stats.snapshotsSaved.Add(1)
				}
			}
			if s.coord != nil {
				saveFinal()
			}
			if err := s.be.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
			if s.coord == nil {
				saveFinal()
			}
		}
		if s.closeErr != nil {
			s.log.Error("shutdown finished", "error", s.closeErr)
		} else {
			s.log.Info("shutdown finished")
		}
	})
	return s.closeErr
}

// Close is Shutdown without a deadline.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorJSON is the error envelope of every non-2xx JSON reply: a human
// message plus a stable machine code, uniform across all handlers
// (including 404s from unknown tenants and routes).
type errorJSON struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// codeSlug maps an HTTP status to the default machine code of its error
// body. Handlers with a more specific cause use writeErrorCode instead.
func codeSlug(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusTooManyRequests:
		return "too_many_requests"
	case http.StatusNotImplemented:
		return "not_implemented"
	case http.StatusBadGateway:
		return "bad_gateway"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeErrorCode(w, status, codeSlug(status), format, args...)
}

// writeErrorCode is writeError with an explicit machine code, for
// statuses whose default slug is too coarse ("tenant_not_found" vs a
// route-level "not_found", say).
func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...), Code: code})
}

// Recorder re-exports the live workload recorder.
//
// Deprecated: use adapt.Recorder (or gsketch.WithWorkloadRecorder, which
// mounts one inside the engine).
type Recorder = adapt.Recorder

// NewRecorder builds a standalone workload recorder.
//
// Deprecated: use adapt.NewRecorder.
func NewRecorder(capacity int, seed uint64, now func() int64) *Recorder {
	return adapt.NewRecorder(capacity, seed, now)
}
