// Package server is the serving subsystem: it wires the batch-ingest
// pipeline (ingest.Ingestor) and the striped-lock estimator
// (core.Concurrent) behind an HTTP/JSON API, owning the whole runtime
// lifecycle — backpressure, snapshot persistence, live workload capture and
// graceful drain-then-stop shutdown.
//
// Endpoints:
//
//	POST /ingest           NDJSON edge batch; 429 + typed JSON when the
//	                       pipeline sheds load (queue full)
//	POST /query            batched edge queries; estimates + error bounds +
//	                       confidence from the bound-carrying read path
//	POST /query/window     batched time-range queries (when a window store
//	                       is configured)
//	GET  /snapshot         stream the current sketch state (consistent
//	                       striped-read-lock snapshot)
//	POST /snapshot/save    persist a snapshot to disk (atomic rename)
//	POST /snapshot/restore swap in a snapshot from disk or request body
//	                       (409 while a window store is mounted — snapshots
//	                       carry no window state)
//	GET  /workload         the recorded query-workload sample, in the text
//	                       edge format BuildGSketch accepts
//	GET  /healthz          liveness
//	GET  /stats            expvar counters + live gauges
//
// The server is embeddable: New + Handler slot into any http.Server or
// test harness; ListenAndServe/Serve + Shutdown run it standalone.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/window"
)

// Config parameterizes a Server.
type Config struct {
	// Estimator is the estimator to serve (required). A *core.Concurrent is
	// used as-is; anything else is wrapped in one, so handlers always go
	// through the striped locks.
	Estimator core.Estimator
	// Ingest parameterizes the batch pipeline between POST /ingest and the
	// estimator. The zero value selects the ingest package defaults.
	Ingest ingest.Config
	// SnapshotPath is the default target of POST /snapshot/save and the
	// default source of POST /snapshot/restore.
	SnapshotPath string
	// SnapshotOnShutdown saves a final snapshot to SnapshotPath during
	// Shutdown, after the ingest queue drains.
	SnapshotOnShutdown bool
	// WorkloadSampleSize is the reservoir capacity of the live workload
	// recorder (default 4096; negative disables recording).
	WorkloadSampleSize int
	// WorkloadSeed makes the workload reservoir deterministic.
	WorkloadSeed uint64
	// Window optionally mounts POST /query/window over a windowed store.
	// Ingested edges are observed by the store synchronously in the ingest
	// handler (the store is not safe for concurrent use; the server
	// serializes access).
	Window *window.Store
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// FlushTimeout bounds the wait of sync requests (?sync=1 ingests and
	// {"sync":true} queries) on the pipeline drain, which under sustained
	// ingest traffic may not quiesce (default 30s).
	FlushTimeout time.Duration
	// Now overrides the clock, for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.WorkloadSampleSize == 0 {
		c.WorkloadSampleSize = 4096
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.FlushTimeout == 0 {
		c.FlushTimeout = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// engine is the swappable serving state: the estimator and the pipeline
// feeding it. Snapshot restore builds a fresh engine and swaps it in.
type engine struct {
	est *core.Concurrent
	ing *ingest.Ingestor
}

// Server is the serving runtime. Create with New; all exported methods are
// safe for concurrent use.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	stats *counters
	rec   *Recorder // nil when recording is disabled

	mu  sync.RWMutex // guards eng swap (snapshot restore)
	eng *engine

	winMu sync.Mutex // serializes window-store access

	// httpSrv is created in New (not lazily in Serve) so a Shutdown racing
	// startup still stops the listener: http.Server.Shutdown before Serve
	// makes the later Serve return ErrServerClosed immediately.
	httpSrv *http.Server

	start     time.Time
	snapNanos atomic.Int64 // unix nanos of the last snapshot save/restore
	closing   atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// New builds a server around an estimator. The server owns the ingest
// pipeline it creates; callers must not push to the estimator directly
// while the server runs.
func New(cfg Config) (*Server, error) {
	if cfg.Estimator == nil {
		return nil, errors.New("server: nil estimator")
	}
	cfg = cfg.withDefaults()
	eng, err := newEngine(cfg.Estimator, cfg.Ingest)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		stats: newCounters(),
		eng:   eng,
		start: cfg.Now(),
	}
	if cfg.WorkloadSampleSize > 0 {
		now := func() int64 { return s.cfg.Now().Unix() }
		s.rec = NewRecorder(cfg.WorkloadSampleSize, cfg.WorkloadSeed, now)
	}
	s.mux = s.routes()
	s.httpSrv = &http.Server{
		Handler: s.mux,
		// Slow-loris hygiene; response writes stay unbounded because
		// /snapshot streams an arbitrarily large sketch.
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s, nil
}

func newEngine(est core.Estimator, icfg ingest.Config) (*engine, error) {
	conc, ok := est.(*core.Concurrent)
	if !ok {
		conc = core.NewConcurrent(est)
	}
	ing, err := ingest.New(conc, icfg)
	if err != nil {
		return nil, err
	}
	return &engine{est: conc, ing: ing}, nil
}

// engine returns the current serving state under the read lock.
func (s *Server) engine() *engine {
	s.mu.RLock()
	e := s.eng
	s.mu.RUnlock()
	return e
}

// Handler returns the server's HTTP handler, for embedding in an existing
// http.Server or test harness.
func (s *Server) Handler() http.Handler { return s.mux }

// Vars returns the expvar counter map, for callers that want to publish it
// on the process-global /debug/vars.
func (s *Server) Vars() *expvar.Map { return s.stats.vars }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains and stops the server gracefully: mark unhealthy, stop
// the listener (waiting for in-flight handlers), drain the ingest queue via
// Close so every accepted edge is applied, then optionally persist a final
// snapshot. Safe to call multiple times; later calls return the first
// result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			s.closeErr = err
			// Fall through: the ingest queue still drains below.
		}
		eng := s.engine()
		if err := eng.ing.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
		if s.cfg.SnapshotOnShutdown && s.cfg.SnapshotPath != "" {
			if _, err := s.saveSnapshot(s.cfg.SnapshotPath); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// Close is Shutdown without a deadline.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

// saveSnapshot writes a consistent snapshot to path via tmp-file + rename,
// so a crash mid-save never clobbers the previous snapshot. It flushes the
// ingest pipeline first: the snapshot covers every edge accepted by
// /ingest before the save began.
func (s *Server) saveSnapshot(path string) (int64, error) {
	eng := s.engine()
	if err := eng.ing.Flush(); err != nil && !errors.Is(err, ingest.ErrClosed) {
		return 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gsketch-snap-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	n, err := eng.est.WriteTo(tmp)
	if err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Close(); err != nil {
		return n, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return n, err
	}
	s.snapNanos.Store(s.cfg.Now().UnixNano())
	s.stats.snapshotsSaved.Add(1)
	return n, nil
}

// restoreSnapshot loads a sketch and swaps it in as the serving state: a
// fresh ingest pipeline is built around the restored estimator, the swap
// happens under the engine write lock (which the ingest handler holds
// shared across its push, so no edge is 200-acked into a pipeline that is
// already displaced), and the old pipeline is closed afterwards. Restore
// deliberately replaces the live state: edges accepted after the snapshot
// being restored was taken are discarded with it.
func (s *Server) restoreSnapshot(g *core.GSketch) (*engine, error) {
	neu, err := newEngine(core.NewConcurrent(g), s.cfg.Ingest)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	old := s.eng
	s.eng = neu
	s.mu.Unlock()
	if err := old.ing.Close(); err != nil {
		return neu, fmt.Errorf("server: draining displaced pipeline: %w", err)
	}
	s.snapNanos.Store(s.cfg.Now().UnixNano())
	s.stats.snapshotsRestored.Add(1)
	return neu, nil
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorJSON is the error envelope of non-2xx replies.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}
