package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/ingest"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/window"
)

// gateEstimator blocks UpdateBatch on a gate so queue-full states are
// deterministic.
type gateEstimator struct {
	gate  chan struct{}
	edges atomic.Int64
}

func (g *gateEstimator) Update(e stream.Edge)               { g.UpdateBatch([]stream.Edge{e}) }
func (g *gateEstimator) UpdateBatch(es []stream.Edge)       { <-g.gate; g.edges.Add(int64(len(es))) }
func (g *gateEstimator) EstimateEdge(src, dst uint64) int64 { return 0 }
func (g *gateEstimator) EstimateBatch(qs []core.EdgeQuery) []core.Result {
	return make([]core.Result, len(qs))
}
func (g *gateEstimator) Count() int64     { return g.edges.Load() }
func (g *gateEstimator) MemoryBytes() int { return 0 }

func getStats(t *testing.T, baseURL string) map[string]any {
	t.Helper()
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("%s never converged", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func postIngest(t *testing.T, baseURL string, edges []stream.Edge, sync bool) (int, ingestResponse) {
	t.Helper()
	url := baseURL + "/ingest"
	if sync {
		url += "?sync=1"
	}
	resp, err := http.Post(url, "application/x-ndjson", ndjsonBody(edges))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ir
}

// TestIngestBackpressure429 drives the pipeline into a deterministic
// queue-full state and checks the 429 mapping: typed shed-load with the
// accepted prefix, never a blocked handler.
func TestIngestBackpressure429(t *testing.T) {
	dest := &gateEstimator{gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{
		Estimator: dest,
		Ingest:    ingest.Config{Workers: 1, BatchSize: 4, QueueDepth: 1},
	})
	// While the gate is closed the generic-fallback worker holds the
	// estimator's write lock, so state polling goes straight to the
	// ingestor counters (the /stats gauges that read the estimator would
	// block, correctly, until the batch applies).
	ingStats := func() gsketch.IngestStats { return *srv.Engine().IngestStats() }
	edges := testStream(16, 3)

	// Batch 1 → held by the gated worker.
	if code, ir := postIngest(t, ts.URL, edges[:4], false); code != http.StatusOK || ir.Accepted != 4 {
		t.Fatalf("first batch: code %d, %+v", code, ir)
	}
	waitFor(t, "worker pickup", func() bool {
		st := ingStats()
		return st.QueueDepth == 0 && st.Inflight == 1
	})
	// Batch 2 → fills the depth-1 queue.
	if code, ir := postIngest(t, ts.URL, edges[4:8], false); code != http.StatusOK || ir.Accepted != 4 {
		t.Fatalf("second batch: code %d, %+v", code, ir)
	}
	// Batch 3+4 → one batch buffers, the second must be shed with 429.
	code, ir := postIngest(t, ts.URL, edges[8:16], false)
	if code != http.StatusTooManyRequests {
		t.Fatalf("code %d, want 429 (%+v)", code, ir)
	}
	if ir.Accepted != 4 || ir.Rejected != 4 {
		t.Fatalf("accepted/rejected = %d/%d, want 4/4", ir.Accepted, ir.Rejected)
	}

	// Open the gate: retrying the shed suffix (honoring each reply's
	// accepted prefix) drains, and every accepted edge lands.
	close(dest.gate)
	for rest := edges[12:16]; len(rest) > 0; {
		code, ir := postIngest(t, ts.URL, rest, true)
		rest = rest[ir.Accepted:]
		if code == http.StatusOK {
			continue
		}
		if code != http.StatusTooManyRequests {
			t.Fatalf("retry code %d", code)
		}
		time.Sleep(time.Millisecond)
	}
	if got := dest.Count(); got != 16 {
		t.Fatalf("edges applied = %d, want 16", got)
	}
	m := getStats(t, ts.URL)
	if m["edges_rejected"].(float64) != 4 || m["edges_accepted"].(float64) != 16 {
		t.Fatalf("counter mismatch: %v", m)
	}
}

// TestGracefulShutdownDrains checks Shutdown's drain-then-stop contract:
// edges accepted (but unflushed) before Shutdown are all applied, the
// final snapshot covers them, and post-shutdown requests fail typed.
func TestGracefulShutdownDrains(t *testing.T) {
	snap := t.TempDir() + "/final.gsk"
	edges := testStream(10_000, 5)
	srv, ts := newTestServer(t, Config{
		Estimator:          buildTestGSketch(t, edges[:2000]),
		Ingest:             ingest.Config{Workers: 2, BatchSize: 256, QueueDepth: 4},
		SnapshotPath:       snap,
		SnapshotOnShutdown: true,
	})
	ingestAll(t, ts.URL, edges)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	var want int64
	for _, e := range edges {
		want += e.Weight
	}
	if got := srv.Engine().Estimator().Count(); got != want {
		t.Fatalf("drained Count = %d, want %d", got, want)
	}

	// The shutdown snapshot must load and carry the full stream total.
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := core.ReadGSketch(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != want {
		t.Fatalf("snapshot Count = %d, want %d", g.Count(), want)
	}

	// Post-shutdown: health is 503, ingest reports the closed pipeline.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: %d", resp.StatusCode)
	}
	if code, _ := postIngest(t, ts.URL, edges[:4], false); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after shutdown: %d", code)
	}
	// Second Close is a no-op.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowQueryEndpoint checks the optional windowed read path: served
// answers must match an identically configured in-process store fed the
// same stream.
func TestWindowQueryEndpoint(t *testing.T) {
	wcfg := window.StoreConfig{
		Span:       1000,
		SampleSize: 512,
		Sketch:     core.Config{TotalBytes: 16 << 10, Seed: 11},
		Seed:       11,
	}
	served, err := window.NewStore(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := window.NewStore(wcfg)
	if err != nil {
		t.Fatal(err)
	}

	edges := testStream(8000, 13) // Time = index → 8 windows of span 1000
	if err := reference.ObserveBatch(edges); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{
		Estimator: buildTestGSketch(t, edges[:1000]),
		Window:    served,
	})
	for lo := 0; lo < len(edges); lo += 1000 {
		if code, _ := postIngest(t, ts.URL, edges[lo:lo+1000], true); code != http.StatusOK {
			t.Fatalf("ingest window chunk: %d", code)
		}
	}

	qs := make([]queryJSON, 200)
	cqs := make([]core.EdgeQuery, 200)
	for i := range qs {
		qs[i] = queryJSON{Src: edges[i].Src, Dst: edges[i].Dst}
		cqs[i] = core.EdgeQuery{Src: edges[i].Src, Dst: edges[i].Dst}
	}
	body, _ := json.Marshal(windowQueryRequest{Queries: qs, T1: 500, T2: 6500})
	resp, err := http.Post(ts.URL+"/query/window", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("window query: %d: %s", resp.StatusCode, raw)
	}
	var wr windowQueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	want := reference.EstimateBatch(cqs, 500, 6500)
	if len(wr.Values) != len(want) {
		t.Fatalf("value count %d != %d", len(wr.Values), len(want))
	}
	for i := range want {
		if wr.Values[i] != want[i] {
			t.Fatalf("window value %d: served %v != direct %v", i, wr.Values[i], want[i])
		}
	}

	// Snapshots carry no window state, so restore must refuse while a
	// window store is mounted instead of desynchronizing the two read
	// paths.
	rr, err := http.Post(ts.URL+"/snapshot/restore", "application/octet-stream", bytes.NewReader([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("restore with window store mounted: %d, want 409", rr.StatusCode)
	}
}

// TestBadRequests covers the defensive error paths.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Estimator: buildTestGSketch(t, testStream(1000, 17))})

	post := func(path, ctype, body string) int {
		resp, err := http.Post(ts.URL+path, ctype, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/ingest", "application/x-ndjson", "{not json}\n"); code != http.StatusBadRequest {
		t.Fatalf("malformed ingest line: %d", code)
	}
	if code := post("/query", "application/json", `{"queries":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty query batch: %d", code)
	}
	if code := post("/query", "application/json", "]["); code != http.StatusBadRequest {
		t.Fatalf("malformed query body: %d", code)
	}
	if code := post("/snapshot/save", "application/json", "{}"); code != http.StatusBadRequest {
		t.Fatalf("save without path: %d", code)
	}
	// Without a configured SnapshotPath, request paths are refused
	// outright — no arbitrary-path writes or existence probes.
	if code := post("/snapshot/save", "application/json", `{"path":"/tmp/evil.gsk"}`); code != http.StatusForbidden {
		t.Fatalf("save to unconfined path: %d", code)
	}
	if code := post("/snapshot/restore", "application/json", `{"path":"/nonexistent/x.gsk"}`); code != http.StatusForbidden {
		t.Fatalf("restore from unconfined path: %d", code)
	}
	if code := post("/snapshot/restore", "application/octet-stream", "garbage"); code != http.StatusBadRequest {
		t.Fatalf("restore garbage: %d", code)
	}
	// No window store configured → no route.
	if code := post("/query/window", "application/json", `{"queries":[{"src":1,"dst":2}]}`); code != http.StatusNotFound {
		t.Fatalf("window query without store: %d", code)
	}
	// Method mismatch.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: %d", resp.StatusCode)
	}

	// GET /snapshot on an estimator without a serial form must be a clean
	// 500, never a 200 with an empty body the client would save.
	gl, err := core.BuildGlobalSketch(core.Config{TotalWidth: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Estimator: gl})
	snapResp, err := http.Get(ts2.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer snapResp.Body.Close()
	if snapResp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("GET /snapshot on GlobalSketch: %d, want 500", snapResp.StatusCode)
	}
}

// TestStatsShape checks the /stats payload carries both the expvar
// counters and the live gauges.
func TestStatsShape(t *testing.T) {
	edges := testStream(5000, 19)
	_, ts := newTestServer(t, Config{Estimator: buildTestGSketch(t, edges[:1000])})
	if code, _ := postIngest(t, ts.URL, edges, true); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	queryBatch(t, ts.URL, []core.EdgeQuery{{Src: edges[0].Src, Dst: edges[0].Dst}})

	m := getStats(t, ts.URL)
	for _, key := range []string{
		"uptime_seconds", "stream_total", "partitions", "memory_bytes",
		"edges_applied", "queue_depth", "queue_cap", "inflight",
		"ingest_requests", "edges_accepted", "query_requests", "queries_answered",
		"workload_seen", "snapshot_age_seconds",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("stats missing %q: %v", key, m)
		}
	}
	if m["edges_accepted"].(float64) != 5000 || m["queries_answered"].(float64) != 1 {
		t.Fatalf("counters off: %v", m)
	}
	if m["snapshot_age_seconds"].(float64) != -1 {
		t.Fatalf("snapshot age should be -1 before any snapshot: %v", m["snapshot_age_seconds"])
	}
	var healthy struct{ Status string }
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&healthy); err != nil || healthy.Status != "ok" {
		t.Fatalf("healthz: %v %v", healthy, err)
	}
}
