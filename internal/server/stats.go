package server

import (
	"expvar"

	"github.com/graphstream/gsketch/internal/obs"
)

// counters are the server's monotonic request counters. They live in
// the server's obs registry (as gsketch_*_total Prometheus counters)
// and are mirrored into a per-server expvar.Map of expvar.Func views —
// one source of truth, two renderings — so /stats keeps its PR-era
// keys byte-for-byte and Vars() still hands embedders something they
// can expvar.Publish. The map is not published to the process-global
// expvar registry: expvar.Publish panics on duplicate names, and tests
// (or an embedding process) may run several servers side by side.
type counters struct {
	vars *expvar.Map

	ingestRequests      *obs.Counter // POST /ingest requests handled
	edgesAccepted       *obs.Counter // edges accepted into the pipeline
	edgesRejected       *obs.Counter // edges shed with 429 (queue full)
	queryRequests       *obs.Counter // POST /query requests handled
	queriesAnswered     *obs.Counter // individual edge queries answered
	windowQueries       *obs.Counter // POST /query/window requests handled
	snapshotsSaved      *obs.Counter // successful snapshot saves
	snapshotsRestored   *obs.Counter // successful snapshot restores
	repartitionRequests *obs.Counter // POST /repartition requests handled
	compactRequests     *obs.Counter // POST /compact requests handled

	// Wire-protocol counters, covering the TCP listener and wire-framed
	// HTTP bodies alike.
	wireFrames       *obs.Counter // request frames decoded
	wireDecodeErrors *obs.Counter // frames rejected as malformed
	wireBytesIn      *obs.Counter // bytes read off wire transports
	wireBytesOut     *obs.Counter // bytes written to wire transports
}

func newCounters(reg *obs.Registry) *counters {
	c := &counters{vars: new(expvar.Map).Init()}
	mk := func(statsKey, promName, help string) *obs.Counter {
		ctr := reg.Counter(promName, help)
		c.vars.Set(statsKey, expvar.Func(func() any { return ctr.Value() }))
		return ctr
	}
	c.ingestRequests = mk("ingest_requests",
		"gsketch_ingest_requests_total", "Ingest requests handled (HTTP and wire).")
	c.edgesAccepted = mk("edges_accepted",
		"gsketch_edges_accepted_total", "Edges accepted into the pipeline.")
	c.edgesRejected = mk("edges_rejected",
		"gsketch_edges_rejected_total", "Edges shed under backpressure.")
	c.queryRequests = mk("query_requests",
		"gsketch_query_requests_total", "Query requests handled (HTTP and wire).")
	c.queriesAnswered = mk("queries_answered",
		"gsketch_queries_answered_total", "Individual edge queries answered.")
	c.windowQueries = mk("window_query_requests",
		"gsketch_window_query_requests_total", "Window query requests handled.")
	c.snapshotsSaved = mk("snapshots_saved",
		"gsketch_snapshots_saved_total", "Successful snapshot saves.")
	c.snapshotsRestored = mk("snapshots_restored",
		"gsketch_snapshots_restored_total", "Successful snapshot restores.")
	c.repartitionRequests = mk("repartition_requests",
		"gsketch_repartition_requests_total", "Repartition requests handled.")
	c.compactRequests = mk("compact_requests",
		"gsketch_compact_requests_total", "Compaction requests handled.")
	c.wireFrames = mk("wire_frames",
		"gsketch_wire_frames_total", "Wire request frames decoded.")
	c.wireDecodeErrors = mk("wire_decode_errors",
		"gsketch_wire_decode_errors_total", "Wire frames rejected as malformed.")
	c.wireBytesIn = mk("wire_bytes_in",
		"gsketch_wire_bytes_in_total", "Bytes read off wire transports.")
	c.wireBytesOut = mk("wire_bytes_out",
		"gsketch_wire_bytes_out_total", "Bytes written to wire transports.")
	return c
}
