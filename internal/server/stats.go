package server

import "expvar"

// counters are the server's monotonic expvar counters. They live in a
// per-server expvar.Map that is not published to the process-global expvar
// registry — expvar.Publish panics on duplicate names, and tests (or an
// embedding process) may run several servers side by side. A process that
// wants the counters on /debug/vars can expvar.Publish(name, srv.Vars())
// itself, once.
type counters struct {
	vars *expvar.Map

	ingestRequests      *expvar.Int // POST /ingest requests handled
	edgesAccepted       *expvar.Int // edges accepted into the pipeline
	edgesRejected       *expvar.Int // edges shed with 429 (queue full)
	queryRequests       *expvar.Int // POST /query requests handled
	queriesAnswered     *expvar.Int // individual edge queries answered
	windowQueries       *expvar.Int // POST /query/window requests handled
	snapshotsSaved      *expvar.Int // successful snapshot saves
	snapshotsRestored   *expvar.Int // successful snapshot restores
	repartitionRequests *expvar.Int // POST /repartition requests handled

	// Wire-protocol counters, covering the TCP listener and wire-framed
	// HTTP bodies alike.
	wireFrames       *expvar.Int // request frames decoded
	wireDecodeErrors *expvar.Int // frames rejected as malformed
	wireBytesIn      *expvar.Int // bytes read off wire transports
	wireBytesOut     *expvar.Int // bytes written to wire transports
}

func newCounters() *counters {
	c := &counters{vars: new(expvar.Map).Init()}
	mk := func(name string) *expvar.Int {
		v := new(expvar.Int)
		c.vars.Set(name, v)
		return v
	}
	c.ingestRequests = mk("ingest_requests")
	c.edgesAccepted = mk("edges_accepted")
	c.edgesRejected = mk("edges_rejected")
	c.queryRequests = mk("query_requests")
	c.queriesAnswered = mk("queries_answered")
	c.windowQueries = mk("window_query_requests")
	c.snapshotsSaved = mk("snapshots_saved")
	c.snapshotsRestored = mk("snapshots_restored")
	c.repartitionRequests = mk("repartition_requests")
	c.wireFrames = mk("wire_frames")
	c.wireDecodeErrors = mk("wire_decode_errors")
	c.wireBytesIn = mk("wire_bytes_in")
	c.wireBytesOut = mk("wire_bytes_out")
	return c
}
