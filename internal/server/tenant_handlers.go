package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"github.com/graphstream/gsketch/internal/tenant"
)

// Tenant admin API, mounted only in multi-tenant mode:
//
//	PUT    /t/{tenant}   create (201) or update overrides (200)
//	DELETE /t/{tenant}   drop the tenant and its on-disk state
//	GET    /t/{tenant}   one tenant's Info
//	GET    /t            every tenant's Info, sorted by name
//
// The data path (/t/{tenant}/ingest etc.) reuses the single-tenant
// handlers through s.backend; these four are registry lifecycle only.

// handleTenantPut creates a tenant, or updates an existing one's
// overrides — the body is an optional tenant.Overrides JSON object.
func (s *Server) handleTenantPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	var ov tenant.Overrides
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&ov); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "tenant create: %v", err)
		return
	}
	created, err := s.tenants.Create(name, ov)
	if err != nil {
		s.writeTenantError(w, name, err)
		return
	}
	info, err := s.tenants.Get(name)
	if err != nil {
		s.writeTenantError(w, name, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, info)
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if err := s.tenants.Delete(name); err != nil {
		s.writeTenantError(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	info, err := s.tenants.Get(name)
	if err != nil {
		s.writeTenantError(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTenantList(w http.ResponseWriter, r *http.Request) {
	st := s.tenants.RegistryStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"tenants":   s.tenants.List(),
		"resident":  st.Resident,
		"evictions": st.Evictions,
		"reopens":   st.Reopens,
	})
}
