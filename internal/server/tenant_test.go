package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	gsketch "github.com/graphstream/gsketch"
	"github.com/graphstream/gsketch/internal/adapt"
	"github.com/graphstream/gsketch/internal/core"
	"github.com/graphstream/gsketch/internal/stream"
	"github.com/graphstream/gsketch/internal/tenant"
	"github.com/graphstream/gsketch/internal/wire"
)

// newTenantServer starts a multi-tenant server (HTTP + wire) over a
// fresh registry rooted in a temp dir.
func newTenantServer(t *testing.T, tcfg tenant.Config) (*Server, string, string) {
	t.Helper()
	if tcfg.Dir == "" {
		tcfg.Dir = t.TempDir()
	}
	if tcfg.Sketch.TotalBytes == 0 && tcfg.Sketch.TotalWidth == 0 {
		tcfg.Sketch = gsketch.Config{TotalBytes: 32 << 10, Seed: 7}
	}
	reg, err := tenant.New(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, httpURL, wireAddr := newWireServer(t, Config{Tenants: reg})
	return srv, httpURL, wireAddr
}

func doReq(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func createTenant(t *testing.T, baseURL, name, body string) {
	t.Helper()
	resp, data := doReq(t, http.MethodPut, baseURL+"/t/"+name, body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT /t/%s: %d %s", name, resp.StatusCode, data)
	}
}

// TestTenantEquivalenceHTTP is the acceptance criterion: two tenants
// ingesting disjoint streams over their scoped endpoints answer exactly
// like two standalone engines built from the same configuration.
func TestTenantEquivalenceHTTP(t *testing.T) {
	sketchCfg := gsketch.Config{TotalBytes: 32 << 10, Seed: 7}
	_, baseURL, _ := newTenantServer(t, tenant.Config{Sketch: sketchCfg})
	streams := map[string][]stream.Edge{
		"alpha": testStream(4000, 31),
		"beta":  testStream(4000, 32),
	}
	for name, edges := range streams {
		createTenant(t, baseURL, name, "")
		ingestAll(t, baseURL+"/t/"+name, edges)
	}
	for name, edges := range streams {
		qs := make([]core.EdgeQuery, 64)
		for i := range qs {
			qs[i] = core.EdgeQuery{Src: edges[i].Src, Dst: edges[i].Dst}
		}
		got := queryBatch(t, baseURL+"/t/"+name, qs)

		eng, err := gsketch.Open(sketchCfg, gsketch.WithSample(tenant.DefaultSample()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.TryIngest(edges); err != nil {
			t.Fatal(err)
		}
		drainEngine(t, eng)
		want := eng.QueryBatch(qs)
		eng.Close()
		for i := range qs {
			if got[i].Estimate != want[i].Estimate {
				t.Fatalf("tenant %s query %d: estimate %d, standalone %d", name, i, got[i].Estimate, want[i].Estimate)
			}
		}
	}
}

// TestTenantAdminAPI exercises the registry lifecycle endpoints.
func TestTenantAdminAPI(t *testing.T) {
	_, baseURL, _ := newTenantServer(t, tenant.Config{})

	resp, data := doReq(t, http.MethodPut, baseURL+"/t/acme", `{"max_edges_per_sec":50,"burst":100}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, data)
	}
	// Idempotent re-create updates overrides and answers 200.
	resp, data = doReq(t, http.MethodPut, baseURL+"/t/acme", `{"max_edges_per_sec":75}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-create: %d %s", resp.StatusCode, data)
	}
	var info tenant.Info
	resp, data = doReq(t, http.MethodGet, baseURL+"/t/acme", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "acme" || info.Overrides.MaxEdgesPerSec != 75 {
		t.Fatalf("info after update: %+v", info)
	}
	if info.Resident {
		t.Fatal("tenant resident before first data-path access")
	}

	createTenant(t, baseURL, "zeta", "")
	var list struct {
		Tenants []tenant.Info `json:"tenants"`
	}
	resp, data = doReq(t, http.MethodGet, baseURL+"/t", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tenants) != 2 || list.Tenants[0].Name != "acme" || list.Tenants[1].Name != "zeta" {
		t.Fatalf("list: %+v, want [acme zeta]", list.Tenants)
	}

	resp, data = doReq(t, http.MethodDelete, baseURL+"/t/zeta", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, data)
	}
	resp, _ = doReq(t, http.MethodGet, baseURL+"/t/zeta", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodDelete, baseURL+"/t/zeta", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d", resp.StatusCode)
	}
}

// TestTenantQuotaDoesNotShedOthers is the quota-isolation criterion: one
// tenant exhausting its token bucket gets 429s with the accepted prefix,
// while a sibling's traffic flows untouched.
func TestTenantQuotaDoesNotShedOthers(t *testing.T) {
	_, baseURL, _ := newTenantServer(t, tenant.Config{})
	createTenant(t, baseURL, "limited", `{"max_edges_per_sec":0.001,"burst":5}`)
	createTenant(t, baseURL, "free", "")

	edges := testStream(50, 41)
	code, ir := postIngest(t, baseURL+"/t/limited", edges, false)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota ingest: %d, want 429", code)
	}
	if ir.Accepted != 5 || ir.Rejected != 45 {
		t.Fatalf("over-quota ingest: accepted %d rejected %d, want 5/45", ir.Accepted, ir.Rejected)
	}
	if ir.Code != "rate_limited" {
		t.Fatalf("over-quota ingest: code %q, want rate_limited", ir.Code)
	}
	// The sibling is untouched by the limited tenant's quota state.
	for i := 0; i < 3; i++ {
		code, ir = postIngest(t, baseURL+"/t/free", edges, true)
		if code != http.StatusOK || ir.Accepted != len(edges) {
			t.Fatalf("free tenant ingest %d: %d accepted=%d, want 200 accepted=%d", i, code, ir.Accepted, len(edges))
		}
	}
	var info tenant.Info
	_, data := doReq(t, http.MethodGet, baseURL+"/t/free", "")
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.RateLimited != 0 {
		t.Fatalf("free tenant rate-limited %d times, want 0", info.RateLimited)
	}
}

// TestTenantWireSelect drives the tenant-select session protocol on the
// TCP wire: work before select is refused, unknown tenants answer
// CodeNotFound, and after a select the whole frame set is tenant-scoped
// (re-selecting switches tenants mid-connection).
func TestTenantWireSelect(t *testing.T) {
	_, baseURL, wireAddr := newTenantServer(t, tenant.Config{})
	createTenant(t, baseURL, "a", "")
	createTenant(t, baseURL, "b", "")

	wc := dialWire(t, wireAddr)

	// Work frame before any select: refused, connection stays open.
	wc.send(t, wire.AppendPing(nil))
	if f := wc.next(t); f.Type != wire.TypeError {
		t.Fatalf("ping before select: type 0x%02x, want error", f.Type)
	} else if code, _, _ := wire.DecodeError(f.Payload); code != wire.CodeUnsupported {
		t.Fatalf("ping before select: code %d, want CodeUnsupported", code)
	}

	wc.send(t, wire.AppendTenantSelect(nil, "ghost"))
	if f := wc.next(t); f.Type != wire.TypeError {
		t.Fatalf("select unknown: type 0x%02x, want error", f.Type)
	} else if code, _, _ := wire.DecodeError(f.Payload); code != wire.CodeNotFound {
		t.Fatalf("select unknown: code %d, want CodeNotFound", code)
	}

	wc.send(t, wire.AppendTenantSelect(nil, "a"))
	if f := wc.next(t); f.Type != wire.TypeTenantAck {
		t.Fatalf("select a: type 0x%02x, want tenant ack", f.Type)
	}
	edges := []stream.Edge{{Src: 1, Dst: 2, Weight: 5}, {Src: 1, Dst: 2, Weight: 5}}
	wc.ingestWire(t, edges)
	if est := wc.queryOne(t, 1, 2); est < 10 {
		t.Fatalf("tenant a estimate %d, want >= 10", est)
	}

	// Switching tenants mid-connection scopes later frames to b, which
	// never saw the edge.
	wc.send(t, wire.AppendTenantSelect(nil, "b"))
	if f := wc.next(t); f.Type != wire.TypeTenantAck {
		t.Fatalf("select b: type 0x%02x, want tenant ack", f.Type)
	}
	if est := wc.queryOne(t, 1, 2); est != 0 {
		t.Fatalf("tenant b estimate %d, want 0 (isolation)", est)
	}
}

// queryOne answers a single edge query over the wire connection.
func (c *wireClient) queryOne(t *testing.T, src, dst uint64) int64 {
	t.Helper()
	c.buf = wire.AppendQuery(c.buf[:0], []core.EdgeQuery{{Src: src, Dst: dst}})
	c.send(t, c.buf)
	f := c.next(t)
	if f.Type != wire.TypeResults {
		t.Fatalf("query reply type 0x%02x", f.Type)
	}
	rs, err := wire.DecodeResults(nil, f.Payload)
	if err != nil || len(rs) != 1 {
		t.Fatalf("decode results: %v (%d results)", err, len(rs))
	}
	return rs[0].Estimate
}

// TestErrorBodyShape pins the unified JSON error envelope: every failure
// reply across the surface is {"error": ..., "code": ...}, including
// route and tenant 404s.
func TestErrorBodyShape(t *testing.T) {
	_, tenantURL, _ := newTenantServer(t, tenant.Config{})
	createTenant(t, tenantURL, "acme", "")
	g, err := core.BuildGlobalSketch(core.Config{TotalWidth: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, plainTS := newTestServer(t, Config{Estimator: g})
	plainURL := plainTS.URL

	// Two adaptive servers pin the typed repartition refusals: one whose
	// chain sits at its generation cap (no compaction policy to make room),
	// one with headroom but an empty data reservoir.
	edges := testStream(2000, 91)
	capped := adapt.NewChain(buildTestGSketch(t, edges[:500]),
		adapt.ChainConfig{SampleSize: 512, Seed: 3, MaxGenerations: 1})
	_, cappedTS := newTestServer(t, Config{Estimator: capped, Adapt: adapt.ManagerConfig{Sketch: testSketchConfig()}})
	starved := adapt.NewChain(buildTestGSketch(t, edges[:500]),
		adapt.ChainConfig{SampleSize: 512, Seed: 3})
	_, starvedTS := newTestServer(t, Config{Estimator: starved, Adapt: adapt.ManagerConfig{Sketch: testSketchConfig()}})

	cases := []struct {
		name     string
		method   string
		url      string
		body     string
		wantCode int
		wantSlug string
	}{
		{"unknown route", http.MethodGet, plainURL + "/nope", "", http.StatusNotFound, "not_found"},
		{"unknown route tenant mode", http.MethodGet, tenantURL + "/nope", "", http.StatusNotFound, "not_found"},
		{"method mismatch", http.MethodGet, plainURL + "/ingest", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"unknown tenant ingest", http.MethodPost, tenantURL + "/t/ghost/ingest", `{"src":1,"dst":2}`, http.StatusNotFound, "tenant_not_found"},
		{"unknown tenant query", http.MethodPost, tenantURL + "/t/ghost/query", `{"queries":[{"src":1,"dst":2}]}`, http.StatusNotFound, "tenant_not_found"},
		{"unknown tenant info", http.MethodGet, tenantURL + "/t/ghost", "", http.StatusNotFound, "tenant_not_found"},
		{"bad tenant name", http.MethodPut, tenantURL + "/t/no..dots", "", http.StatusBadRequest, "bad_request"},
		{"bad ingest body", http.MethodPost, tenantURL + "/t/acme/ingest", "{not json}", http.StatusBadRequest, "bad_request"},
		{"empty query batch", http.MethodPost, tenantURL + "/t/acme/query", `{"queries":[]}`, http.StatusBadRequest, "bad_request"},
		{"bad query body plain", http.MethodPost, plainURL + "/query", "{not json}", http.StatusBadRequest, "bad_request"},
		{"unconfined snapshot path", http.MethodPost, plainURL + "/snapshot/save", `{"path":"/tmp/evil.gsk"}`, http.StatusForbidden, "forbidden"},
		{"repartition at generation cap", http.MethodPost, cappedTS.URL + "/repartition", "", http.StatusConflict, "max_generations"},
		{"repartition empty reservoir", http.MethodPost, starvedTS.URL + "/repartition", "", http.StatusConflict, "empty_reservoir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := doReq(t, tc.method, tc.url, tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("%s %s: %d, want %d (%s)", tc.method, tc.url, resp.StatusCode, tc.wantCode, data)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("content type %q, want application/json", ct)
			}
			var body struct {
				Error string `json:"error"`
				Code  string `json:"code"`
			}
			if err := json.Unmarshal(data, &body); err != nil {
				t.Fatalf("error body %q: %v", data, err)
			}
			if body.Error == "" {
				t.Fatalf("error body %q: empty error message", data)
			}
			if body.Code != tc.wantSlug {
				t.Fatalf("error body %q: code %q, want %q", data, body.Code, tc.wantSlug)
			}
		})
	}
}

// TestTenantEvictReopenHTTP runs the LRU lifecycle through the HTTP
// surface: with one resident slot, touching a second tenant evicts the
// first, whose next request transparently reopens it with identical
// answers.
func TestTenantEvictReopenHTTP(t *testing.T) {
	srv, baseURL, _ := newTenantServer(t, tenant.Config{MaxResident: 1})
	createTenant(t, baseURL, "hot", "")
	createTenant(t, baseURL, "cold", "")

	edges := testStream(3000, 51)
	ingestAll(t, baseURL+"/t/hot", edges)
	qs := make([]core.EdgeQuery, 32)
	for i := range qs {
		qs[i] = core.EdgeQuery{Src: edges[i].Src, Dst: edges[i].Dst}
	}
	before := queryBatch(t, baseURL+"/t/hot", qs)

	// Touching cold evicts hot (cap 1).
	ingestAll(t, baseURL+"/t/cold", testStream(100, 52))
	st := srv.tenants.RegistryStats()
	if st.Resident != 1 || st.Evictions == 0 {
		t.Fatalf("after touching cold: %+v, want 1 resident and >0 evictions", st)
	}

	after := queryBatch(t, baseURL+"/t/hot", qs)
	for i := range qs {
		if after[i].Estimate != before[i].Estimate {
			t.Fatalf("query %d: %d after reopen, %d before", i, after[i].Estimate, before[i].Estimate)
		}
	}
	if st := srv.tenants.RegistryStats(); st.Reopens == 0 {
		t.Fatalf("stats %+v, want >0 reopens", st)
	}
}

// drainEngine flushes an engine's pipeline with a bounded wait.
func drainEngine(t *testing.T, eng *gsketch.Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := eng.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
